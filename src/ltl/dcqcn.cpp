#include "ltl/dcqcn.hpp"

#include <algorithm>

namespace ccsim::ltl {

DcqcnController::DcqcnController(sim::EventQueue &eq, DcqcnConfig config)
    : queue(eq), cfg(config), rateTarget(config.lineRateGbps),
      rateCurrent(config.lineRateGbps)
{
}

DcqcnController::~DcqcnController()
{
    if (timerEvent != sim::kNoEvent)
        queue.cancel(timerEvent);
}

void
DcqcnController::armTimer()
{
    if (timerEvent != sim::kNoEvent)
        return;
    timerEvent = queue.scheduleAfter(cfg.timerPeriod, [this] {
        timerEvent = sim::kNoEvent;
        onTimer();
    });
}

void
DcqcnController::onCongestionNotification()
{
    ++cnpCount;
    alpha = (1.0 - cfg.g) * alpha + cfg.g;
    rateTarget = rateCurrent;
    rateCurrent = std::max(cfg.minRateGbps,
                           rateCurrent * (1.0 - alpha / 2.0));
    increaseStage = 0;
    armTimer();
}

void
DcqcnController::onTimer()
{
    // Alpha decays toward zero while no CNPs arrive.
    alpha = (1.0 - cfg.g) * alpha;

    ++increaseStage;
    if (increaseStage <= cfg.fastRecoverySteps) {
        // Fast recovery: converge halfway back to the target rate.
        rateCurrent = (rateTarget + rateCurrent) / 2.0;
    } else if (increaseStage <= 2 * cfg.fastRecoverySteps) {
        // Additive increase.
        rateTarget = std::min(cfg.lineRateGbps, rateTarget + cfg.raiGbps);
        rateCurrent = (rateTarget + rateCurrent) / 2.0;
    } else {
        // Hyper increase: congestion is long gone.
        rateTarget = std::min(cfg.lineRateGbps, rateTarget + cfg.rhaiGbps);
        rateCurrent = (rateTarget + rateCurrent) / 2.0;
    }
    rateCurrent = std::min(rateCurrent, cfg.lineRateGbps);

    if (rateCurrent < cfg.lineRateGbps - 1e-9 || alpha > 1e-6)
        armTimer();
    else
        rateCurrent = cfg.lineRateGbps;
}

}  // namespace ccsim::ltl
