/**
 * @file
 * DC-QCN end-to-end congestion control (Zhu et al., SIGCOMM 2015), as
 * implemented by the LTL protocol engine's reaction point.
 *
 * The receiver (notification point) emits CNPs when it sees ECN-marked
 * data frames; this controller (the sender-side reaction point) cuts its
 * rate multiplicatively on CNP arrival and recovers through the standard
 * fast-recovery / additive-increase stages.
 */
#pragma once

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ccsim::ltl {

/** DC-QCN reaction-point parameters (defaults from the DC-QCN paper). */
struct DcqcnConfig {
    double lineRateGbps = 40.0;
    double minRateGbps = 0.1;
    /** EWMA gain for the alpha (congestion severity) estimate. */
    double g = 1.0 / 16.0;
    /** Additive increase step (Gb/s). */
    double raiGbps = 0.4;
    /** Hyper-increase step (Gb/s) after prolonged absence of congestion. */
    double rhaiGbps = 4.0;
    /** Alpha decay / rate increase timer period. */
    sim::TimePs timerPeriod = 55 * sim::kMicrosecond;
    /** Fast-recovery stages before additive increase begins. */
    int fastRecoverySteps = 5;
};

/** Sender-side DC-QCN rate controller for one connection. */
class DcqcnController
{
  public:
    DcqcnController(sim::EventQueue &eq, DcqcnConfig cfg);
    ~DcqcnController();

    DcqcnController(const DcqcnController &) = delete;
    DcqcnController &operator=(const DcqcnController &) = delete;

    /** A CNP arrived: multiplicative decrease. */
    void onCongestionNotification();

    /** Current permitted sending rate, Gb/s. */
    double currentRateGbps() const { return rateCurrent; }

    /** True if at least one CNP has ever arrived (for stats). */
    bool sawCongestion() const { return cnpCount > 0; }

    std::uint64_t congestionNotifications() const { return cnpCount; }

  private:
    sim::EventQueue &queue;
    DcqcnConfig cfg;
    double alpha = 1.0;
    double rateTarget;
    double rateCurrent;
    int increaseStage = 0;
    std::uint64_t cnpCount = 0;
    sim::EventId timerEvent = sim::kNoEvent;

    void armTimer();
    void onTimer();
};

}  // namespace ccsim::ltl
