/**
 * @file
 * Bandwidth limiting via random early drops, used by the shell's network
 * tap (Section V-A: "bandwidth limiting via random early drops") to keep
 * role-generated traffic from starving host traffic.
 */
#pragma once

#include <algorithm>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ccsim::ltl {

/**
 * A token-bucket rate estimator with RED-style probabilistic drops as the
 * estimated rate approaches the configured limit.
 */
class RedPolicer
{
  public:
    /**
     * @param limit_gbps  Bandwidth limit.
     * @param burst_bytes Token bucket depth.
     * @param seed        Drop lottery seed.
     */
    RedPolicer(double limit_gbps, std::uint64_t burst_bytes,
               std::uint64_t seed = 7)
        : limitGbps(limit_gbps), burstBytes(static_cast<double>(burst_bytes)),
          tokens(static_cast<double>(burst_bytes)), rng(seed)
    {
    }

    /**
     * Account a packet of @p bytes at time @p now.
     *
     * @return true if the packet may pass, false if it must be dropped.
     */
    bool allow(sim::TimePs now, std::uint32_t bytes)
    {
        refill(now);
        const double need = static_cast<double>(bytes);
        if (tokens >= burstBytes * kRedStart) {
            tokens -= need;  // plenty of headroom: always pass
            return true;
        }
        if (tokens < need) {
            ++statDrops;
            return false;  // hard limit
        }
        // RED region: drop probability grows as tokens drain.
        const double fill = tokens / (burstBytes * kRedStart);
        const double p_drop = (1.0 - fill) * kMaxDropProb;
        if (rng.bernoulli(p_drop)) {
            ++statDrops;
            return false;
        }
        tokens -= need;
        return true;
    }

    std::uint64_t drops() const { return statDrops; }

  private:
    static constexpr double kRedStart = 0.5;     ///< RED engages below 50%
    static constexpr double kMaxDropProb = 0.2;  ///< at empty bucket

    double limitGbps;
    double burstBytes;
    double tokens;
    sim::TimePs lastRefill = 0;
    sim::Rng rng;
    std::uint64_t statDrops = 0;

    void refill(sim::TimePs now)
    {
        if (now <= lastRefill)
            return;
        const double dt_ns = sim::toNanos(now - lastRefill);
        tokens = std::min(burstBytes, tokens + dt_ns * limitGbps / 8.0);
        lastRefill = now;
    }
};

}  // namespace ccsim::ltl
