/**
 * @file
 * The LTL (Lightweight Transport Layer) protocol engine (Section V-A).
 *
 * LTL provides ordered, reliable, connection-based messaging between
 * FPGAs across the datacenter Ethernet fabric:
 *
 *  - UDP encapsulation, IP routing, lossless traffic class;
 *  - statically allocated, persistent send/receive connection tables;
 *  - an unacknowledged frame store with ACK/NACK-based retransmission
 *    (NACKs request timely retransmit when reordering is detected,
 *    without waiting for the 50 us timeout);
 *  - configurable retransmission timeout (default 50 us, as deployed),
 *    which doubles as fast failure detection for the HaaS layer;
 *  - DC-QCN end-to-end congestion control (ECN -> CNP -> rate cut);
 *  - bandwidth limiting so a donated FPGA cannot starve its host.
 */
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "ltl/dcqcn.hpp"
#include "ltl/ltl_frame.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace ccsim::ltl {

/** A fully reassembled LTL message handed to the local consumer. */
struct LtlMessage {
    std::uint16_t conn = 0;      ///< receive-connection index
    std::uint64_t msgId = 0;
    std::uint32_t bytes = 0;
    std::uint8_t vc = 0;         ///< VC for Elastic Router delivery
    std::shared_ptr<void> payload;
    sim::TimePs sentAt = 0;      ///< when the sender created the message
    obs::TraceContext trace;     ///< causal flow context (from the sender)
};

/** Engine configuration. */
struct LtlConfig {
    net::Ipv4Addr localIp;
    std::uint16_t udpPort = kLtlUdpPort;
    std::uint8_t trafficClass = net::kTcLossless;

    /** Packetizer + MAC egress latency (header generated -> on wire). */
    sim::TimePs txPathDelay = 400 * sim::kNanosecond;
    /** MAC ingress + depacketizer latency. */
    sim::TimePs rxPathDelay = 400 * sim::kNanosecond;
    /** Ack Generation module latency. */
    sim::TimePs ackGenDelay = 180 * sim::kNanosecond;

    /** Retransmission timeout; the deployed value is 50 us. */
    sim::TimePs retransmitTimeout = 50 * sim::kMicrosecond;
    /** Consecutive timeouts before the connection is declared failed. */
    int maxRetries = 16;

    /** Maximum unacknowledged frames in flight per connection. */
    std::uint32_t sendWindowFrames = 128;
    /** Unacked frame store capacity in bytes (per connection). */
    std::uint32_t unackedStoreBytes = 256 * 1024;
    /** Maximum LTL payload per frame (fits in one MTU with headers). */
    std::uint32_t maxFramePayload = 1408;

    /** Static bandwidth cap (configured by the Service Manager). */
    double bandwidthLimitGbps = 40.0;
    /** Enable DC-QCN reaction point. */
    bool enableDcqcn = true;
    /** Enable NACK fast retransmit (ablation knob; timeout-only if off). */
    bool enableNack = true;
    /** Minimum spacing between CNPs sent for one connection. */
    sim::TimePs cnpMinInterval = 50 * sim::kMicrosecond;
    DcqcnConfig dcqcn;

    std::uint16_t maxConnections = 1024;

    /**
     * How long beginQuiesce() waits for in-flight frames to drain before
     * abandoning the stragglers and declaring the engine quiesced.
     */
    sim::TimePs quiesceDrainTimeout = 200 * sim::kMicrosecond;
};

/**
 * One LTL protocol engine instance (one per FPGA shell).
 */
class LtlEngine
{
  public:
    /** How the engine puts frames on the wire (bound to the shell's tap). */
    using NetworkTx = std::function<void(const net::PacketPtr &)>;
    /** Delivery of a complete message to the local consumer. */
    using DeliveryFn = std::function<void(const LtlMessage &)>;
    /** Notification that a connection has been declared failed. */
    using FailureFn = std::function<void(std::uint16_t conn)>;

    LtlEngine(sim::EventQueue &eq, LtlConfig cfg, NetworkTx tx);

    // ------------------------------------------------------------------
    // Connection table management (driven by the control plane / HaaS FM).
    // ------------------------------------------------------------------

    /**
     * Allocate a send connection toward @p remote_ip whose frames will be
     * demultiplexed by the remote engine's receive connection
     * @p remote_conn.
     *
     * @return The local send-connection index.
     */
    std::uint16_t openSend(net::Ipv4Addr remote_ip, std::uint16_t remote_conn);

    /**
     * Allocate a receive connection.
     *
     * @param vc Virtual channel that delivered messages are tagged with.
     * @return The receive-connection index (give it to the remote sender).
     */
    std::uint16_t openReceive(std::uint8_t vc = 0);

    /**
     * Deallocate a send connection. Closing an already-closed (or failed
     * and reaped) connection is a no-op, so RAII handles and fault-driven
     * teardown can race without double-free hazards.
     */
    void closeSend(std::uint16_t conn);
    /** Deallocate a receive connection (no-op if already closed). */
    void closeReceive(std::uint16_t conn);

    // ------------------------------------------------------------------
    // Data path.
    // ------------------------------------------------------------------

    /**
     * Send a message on connection @p conn. Segmentation, windowing,
     * pacing, retransmission are handled internally.
     *
     * @param parent An existing flow context to continue. When it is not
     *   sampled and flow tracing is enabled, the engine begins (and later
     *   ends) a flow of its own for this message.
     */
    void sendMessage(std::uint16_t conn, std::uint32_t bytes,
                     std::shared_ptr<void> payload = nullptr,
                     std::uint8_t vc = 0,
                     obs::TraceContext parent = {});

    /** Entry point for LTL-addressed packets delivered by the shell. */
    void onNetworkPacket(const net::PacketPtr &pkt);

    /** Register the local message consumer. */
    void setDeliveryHandler(DeliveryFn fn) { deliver = std::move(fn); }

    /** Register the connection-failure consumer (HaaS). */
    void setFailureHandler(FailureFn fn) { onFailure = std::move(fn); }

    /**
     * Observer of retransmission-timeout streaks: called on every timeout
     * with the connection's consecutive-timeout count and its remote
     * address. Feeds passive failure suspicion (haas::HealthMonitor).
     */
    using TimeoutObserver = std::function<void(
        std::uint16_t conn, int streak, net::Ipv4Addr remote)>;
    void setTimeoutObserver(TimeoutObserver fn)
    {
        onTimeoutStreak = std::move(fn);
    }

    // ------------------------------------------------------------------
    // Quiesce / drain (planned-reconfiguration protocol).
    // ------------------------------------------------------------------

    /** Engine admission state. */
    enum class QuiesceState {
        kActive,    ///< normal operation
        kDraining,  ///< no new sends; in-flight frames completing
        kQuiesced,  ///< idle; incoming data answered with kFlagReject
    };

    /**
     * Stop admitting new sends and wait for every send connection to
     * drain (all queued frames transmitted and acknowledged), then call
     * @p drained. Connections that cannot drain within @p drain_timeout
     * have their remaining frames abandoned (counted) so reconfiguration
     * is never blocked by a dead peer. While quiesced, arriving data
     * frames are answered with kFlagReject instead of being silently
     * dropped — the sender fails over immediately.
     */
    void beginQuiesce(sim::TimePs drain_timeout,
                      std::function<void()> drained = {});

    /** Resume admitting sends (after reconfiguration completes). */
    void endQuiesce();

    QuiesceState quiesceState() const { return qState; }

    /**
     * Reset a send connection to a fresh handshake: sequence numbers
     * rewound, failure flag and retry budget cleared, any leftover
     * frames abandoned. Pair with resyncReceive() on the peer (see
     * core::LtlChannel::rehandshake) after the remote node rejoined.
     */
    void resyncSend(std::uint16_t conn);

    /** Reset a receive connection to expect a fresh handshake (seq 0). */
    void resyncReceive(std::uint16_t conn);

    // ------------------------------------------------------------------
    // Observability.
    // ------------------------------------------------------------------

    /**
     * Export this engine's statistics under `ltl.<node>.*` (probes for
     * the frame/ACK/CNP counters, a registry histogram `ltl.<node>.rtt_us`)
     * and emit trace spans/instants when @p o->trace is enabled. Pass
     * nullptr to detach. Attaching never changes protocol behaviour.
     */
    void attachObservability(obs::Observability *o, const std::string &node);

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    const LtlConfig &config() const { return cfg; }

    /** Data-frame RTT samples (header generated -> ACK received), in us. */
    const sim::SampleStats &rttUs() const { return statRtt; }

    /** Current DC-QCN rate of a send connection, Gb/s. */
    double currentRateGbps(std::uint16_t conn) const;

    std::uint64_t framesSent() const { return statFramesSent; }
    std::uint64_t framesRetransmitted() const { return statRetransmits; }
    std::uint64_t timeouts() const { return statTimeouts; }
    std::uint64_t acksSent() const { return statAcksSent; }
    std::uint64_t nacksSent() const { return statNacksSent; }
    std::uint64_t cnpsSent() const { return statCnpsSent; }
    std::uint64_t cnpsReceived() const { return statCnpsReceived; }
    std::uint64_t messagesDelivered() const { return statDelivered; }
    std::uint64_t duplicateFrames() const { return statDuplicates; }
    std::uint64_t outOfOrderFrames() const { return statOutOfOrder; }

    /** Distinct data frames cumulatively acknowledged by the peer. */
    std::uint64_t framesAcked() const { return statFramesAcked; }
    /** Frames written off when a connection failed or was closed. */
    std::uint64_t framesAbandoned() const { return statFramesAbandoned; }
    /** Transmitted frames currently awaiting acknowledgement. */
    std::uint64_t framesInFlight() const;

    /** Send connections declared failed (retry exhaustion or reject). */
    std::uint64_t connectionFailures() const { return statConnFailures; }

    /** Sends refused because the engine was draining or quiesced. */
    std::uint64_t sendsRejected() const { return statSendsRejected; }
    /** Reject control frames sent for data arriving while quiesced. */
    std::uint64_t rejectsSent() const { return statRejectsSent; }
    /** Reject frames received (each fails its send connection). */
    std::uint64_t rejectsReceived() const { return statRejectsReceived; }
    /** beginQuiesce() calls. */
    std::uint64_t quiesces() const { return statQuiesces; }

    /** True if @p conn is an open send connection declared failed. */
    bool sendConnectionFailed(std::uint16_t conn) const
    {
        return conn < sendTable.size() && sendTable[conn].valid &&
               sendTable[conn].failed;
    }

  private:
    struct PendingFrame {
        LtlHeaderPtr header;
        sim::TimePs queuedAt = 0;  ///< for congestion-window attribution
    };
    struct UnackedFrame {
        LtlHeaderPtr header;
        sim::TimePs firstSentAt = 0;
        sim::TimePs lastSentAt = 0;
        bool retransmitted = false;
    };
    struct SendConnection {
        bool valid = false;
        net::Ipv4Addr remoteIp;
        std::uint16_t remoteConn = 0;
        std::uint32_t nextSeq = 0;
        std::deque<PendingFrame> sendQueue;
        std::deque<UnackedFrame> unacked;
        std::uint32_t unackedBytes = 0;
        sim::TimePs nextSendTime = 0;
        sim::EventId pumpEvent = sim::kNoEvent;
        sim::EventId timeoutEvent = sim::kNoEvent;
        int consecutiveTimeouts = 0;
        bool failed = false;
        std::unique_ptr<DcqcnController> dcqcn;
        std::uint64_t nextMsgId = 1;
    };
    struct ReceiveConnection {
        bool valid = false;
        std::uint8_t vc = 0;
        std::uint32_t expectedSeq = 0;
        /** Last NACKed sequence, to avoid NACK storms for one gap. */
        std::uint32_t lastNackSeq = UINT32_MAX;
        sim::TimePs lastCnpAt = -(1 << 30);
    };

    sim::EventQueue &queue;
    LtlConfig cfg;
    NetworkTx networkTx;
    DeliveryFn deliver;
    FailureFn onFailure;
    TimeoutObserver onTimeoutStreak;

    std::vector<SendConnection> sendTable;
    std::vector<ReceiveConnection> recvTable;

    QuiesceState qState = QuiesceState::kActive;
    std::function<void()> drainedCb;
    sim::EventId drainDeadlineEvent = sim::kNoEvent;

    obs::Observability *obsHub = nullptr;
    std::string obsPrefix;                       ///< "ltl.<node>"
    sim::LogHistogram *obsRttHist = nullptr;     ///< registry-owned
    int obsTrack = 0;                            ///< trace timeline id

    sim::SampleStats statRtt;
    std::uint64_t statFramesSent = 0;
    std::uint64_t statRetransmits = 0;
    std::uint64_t statTimeouts = 0;
    std::uint64_t statAcksSent = 0;
    std::uint64_t statNacksSent = 0;
    std::uint64_t statCnpsSent = 0;
    std::uint64_t statCnpsReceived = 0;
    std::uint64_t statDelivered = 0;
    std::uint64_t statDuplicates = 0;
    std::uint64_t statOutOfOrder = 0;
    std::uint64_t statFramesAcked = 0;
    std::uint64_t statFramesAbandoned = 0;
    std::uint64_t statConnFailures = 0;
    std::uint64_t statSendsRejected = 0;
    std::uint64_t statRejectsSent = 0;
    std::uint64_t statRejectsReceived = 0;
    std::uint64_t statQuiesces = 0;

    SendConnection &sendConn(std::uint16_t conn);
    void abandonSendState(SendConnection &sc);
    ReceiveConnection &recvConn(std::uint16_t conn);
    void failConnection(std::uint16_t conn, const char *why);
    bool allDrained() const;
    void maybeFinishDrain();
    void finishQuiesce();

    void pumpSend(std::uint16_t conn);
    void transmitFrame(SendConnection &sc, const LtlHeaderPtr &header,
                       bool is_retransmit);
    void armTimeout(std::uint16_t conn);
    void onTimeout(std::uint16_t conn);
    void handleAck(std::uint16_t conn, std::uint32_t ack_seq, bool is_nack);
    void handleData(const net::PacketPtr &pkt, const LtlHeaderPtr &header);
    void sendControl(net::Ipv4Addr to, std::uint16_t dst_conn,
                     std::uint8_t flags, std::uint32_t ack_seq,
                     sim::TimePs delay, obs::TraceContext ctx = {});
    double effectiveRateGbps(const SendConnection &sc) const;
    net::PacketPtr buildPacket(const SendConnection &sc,
                               const LtlHeaderPtr &header) const;
};

}  // namespace ccsim::ltl
