#include "ltl/ltl_engine.hpp"

#include "sim/logging.hpp"

namespace ccsim::ltl {

LtlEngine::LtlEngine(sim::EventQueue &eq, LtlConfig config, NetworkTx tx)
    : queue(eq), cfg(std::move(config)), networkTx(std::move(tx))
{
    if (!networkTx)
        sim::fatal("LtlEngine: a network transmit function is required");
    sendTable.resize(cfg.maxConnections);
    recvTable.resize(cfg.maxConnections);
}

LtlEngine::SendConnection &
LtlEngine::sendConn(std::uint16_t conn)
{
    if (conn >= sendTable.size() || !sendTable[conn].valid)
        sim::panicf("LtlEngine: bad send connection ", conn);
    return sendTable[conn];
}

LtlEngine::ReceiveConnection &
LtlEngine::recvConn(std::uint16_t conn)
{
    if (conn >= recvTable.size() || !recvTable[conn].valid)
        sim::panicf("LtlEngine: bad receive connection ", conn);
    return recvTable[conn];
}

void
LtlEngine::attachObservability(obs::Observability *o, const std::string &node)
{
    obsHub = o;
    obsRttHist = nullptr;
    if (!o)
        return;
    obsPrefix = "ltl." + node;
    obsTrack = o->trace.track(obsPrefix);
    obsRttHist = &o->registry.histogram(obsPrefix + ".rtt_us");
    auto &reg = o->registry;
    reg.registerProbe(obsPrefix + ".frames_sent",
                      [this] { return double(statFramesSent); });
    reg.registerProbe(obsPrefix + ".frames_acked",
                      [this] { return double(statFramesAcked); });
    reg.registerProbe(obsPrefix + ".frames_abandoned",
                      [this] { return double(statFramesAbandoned); });
    reg.registerProbe(obsPrefix + ".frames_in_flight",
                      [this] { return double(framesInFlight()); });
    reg.registerProbe(obsPrefix + ".retransmits",
                      [this] { return double(statRetransmits); });
    reg.registerProbe(obsPrefix + ".timeouts",
                      [this] { return double(statTimeouts); });
    reg.registerProbe(obsPrefix + ".acks_sent",
                      [this] { return double(statAcksSent); });
    reg.registerProbe(obsPrefix + ".nacks_sent",
                      [this] { return double(statNacksSent); });
    reg.registerProbe(obsPrefix + ".cnps_sent",
                      [this] { return double(statCnpsSent); });
    reg.registerProbe(obsPrefix + ".cnps_received",
                      [this] { return double(statCnpsReceived); });
    reg.registerProbe(obsPrefix + ".messages_delivered",
                      [this] { return double(statDelivered); });
    reg.registerProbe(obsPrefix + ".duplicate_frames",
                      [this] { return double(statDuplicates); });
    reg.registerProbe(obsPrefix + ".out_of_order_frames",
                      [this] { return double(statOutOfOrder); });
    reg.registerProbe(obsPrefix + ".conn_failures",
                      [this] { return double(statConnFailures); });
    reg.registerProbe(obsPrefix + ".sends_rejected",
                      [this] { return double(statSendsRejected); });
    reg.registerProbe(obsPrefix + ".rejects_sent",
                      [this] { return double(statRejectsSent); });
    reg.registerProbe(obsPrefix + ".rejects_received",
                      [this] { return double(statRejectsReceived); });
    reg.registerProbe(obsPrefix + ".quiesces",
                      [this] { return double(statQuiesces); });
}

std::uint64_t
LtlEngine::framesInFlight() const
{
    std::uint64_t n = 0;
    for (const auto &sc : sendTable)
        if (sc.valid && !sc.failed)
            n += sc.unacked.size();
    return n;
}

void
LtlEngine::abandonSendState(SendConnection &sc)
{
    if (obsHub) {
        // Engine-begun flows whose closing frame is being written off will
        // never be acked; drop them from the recorder's active set.
        auto maybeAbandon = [this](const LtlHeader &h) {
            if (h.trace.sampled && h.traceEndsFlow &&
                h.msgOffset + h.frameBytes >= h.msgBytes)
                obsHub->flows.abandonFlow(h.trace);
        };
        for (const auto &uf : sc.unacked)
            maybeAbandon(*uf.header);
        for (const auto &pf : sc.sendQueue)
            maybeAbandon(*pf.header);
    }
    statFramesAbandoned += sc.unacked.size();
    sc.unacked.clear();
    sc.unackedBytes = 0;
    sc.sendQueue.clear();
}

std::uint16_t
LtlEngine::openSend(net::Ipv4Addr remote_ip, std::uint16_t remote_conn)
{
    for (std::uint16_t i = 0; i < sendTable.size(); ++i) {
        if (!sendTable[i].valid) {
            SendConnection &sc = sendTable[i];
            sc = SendConnection{};
            sc.valid = true;
            sc.remoteIp = remote_ip;
            sc.remoteConn = remote_conn;
            if (cfg.enableDcqcn) {
                DcqcnConfig dc = cfg.dcqcn;
                dc.lineRateGbps =
                    std::min(dc.lineRateGbps, cfg.bandwidthLimitGbps);
                sc.dcqcn = std::make_unique<DcqcnController>(queue, dc);
            }
            return i;
        }
    }
    sim::fatal("LtlEngine: send connection table exhausted");
}

std::uint16_t
LtlEngine::openReceive(std::uint8_t vc)
{
    for (std::uint16_t i = 0; i < recvTable.size(); ++i) {
        if (!recvTable[i].valid) {
            recvTable[i] = ReceiveConnection{};
            recvTable[i].valid = true;
            recvTable[i].vc = vc;
            return i;
        }
    }
    sim::fatal("LtlEngine: receive connection table exhausted");
}

void
LtlEngine::closeSend(std::uint16_t conn)
{
    if (conn >= sendTable.size() || !sendTable[conn].valid)
        return;
    SendConnection &sc = sendTable[conn];
    if (sc.timeoutEvent != sim::kNoEvent)
        queue.cancel(sc.timeoutEvent);
    if (sc.pumpEvent != sim::kNoEvent)
        queue.cancel(sc.pumpEvent);
    if (!sc.failed)
        abandonSendState(sc);  // frames still in flight are written off
    sc = SendConnection{};
}

void
LtlEngine::closeReceive(std::uint16_t conn)
{
    if (conn >= recvTable.size() || !recvTable[conn].valid)
        return;
    recvTable[conn] = ReceiveConnection{};
}

double
LtlEngine::currentRateGbps(std::uint16_t conn) const
{
    const SendConnection &sc = sendTable.at(conn);
    if (!sc.valid)
        return 0.0;
    return effectiveRateGbps(sc);
}

double
LtlEngine::effectiveRateGbps(const SendConnection &sc) const
{
    double rate = cfg.bandwidthLimitGbps;
    if (sc.dcqcn)
        rate = std::min(rate, sc.dcqcn->currentRateGbps());
    return rate;
}

void
LtlEngine::sendMessage(std::uint16_t conn, std::uint32_t bytes,
                       std::shared_ptr<void> payload, std::uint8_t vc,
                       obs::TraceContext parent)
{
    SendConnection &sc = sendConn(conn);
    if (qState != QuiesceState::kActive) {
        // Draining or quiesced for reconfiguration: refuse admission
        // loudly instead of queueing frames that could never drain.
        ++statSendsRejected;
        CCSIM_LOG(sim::LogLevel::kWarn, "ltl", queue.now(),
                  "sendMessage on connection ", conn,
                  " refused: engine quiescing");
        if (parent.sampled && obsHub)
            obsHub->flows.abandonFlow(parent);
        return;
    }
    if (sc.failed) {
        CCSIM_LOG(sim::LogLevel::kWarn, "ltl", queue.now(),
                  "sendMessage on failed connection ", conn);
        if (parent.sampled && obsHub)
            obsHub->flows.abandonFlow(parent);
        return;
    }
    obs::TraceContext ctx = parent;
    bool ends_flow = false;
    if (!ctx.sampled && obsHub && obsHub->flows.enabled()) {
        ctx = obsHub->flows.beginFlow(obsPrefix + ".msg", queue.now());
        ends_flow = ctx.sampled;
    }
    const std::uint64_t msg_id = sc.nextMsgId++;
    const std::uint32_t size = bytes == 0 ? 1 : bytes;
    std::uint32_t offset = 0;
    while (offset < size) {
        const std::uint32_t chunk =
            std::min(cfg.maxFramePayload, size - offset);
        auto header = std::make_shared<LtlHeader>();
        header->flags = kFlagData;
        header->srcConn = conn;
        header->dstConn = sc.remoteConn;
        header->createdAt = queue.now();
        header->seq = sc.nextSeq++;
        header->msgId = msg_id;
        header->msgBytes = size;
        header->msgOffset = offset;
        header->frameBytes = chunk;
        header->vc = vc;
        header->trace = ctx;
        header->traceEndsFlow = ends_flow;
        offset += chunk;
        if (offset >= size)
            header->appPayload = std::move(payload);
        sc.sendQueue.push_back(PendingFrame{std::move(header), queue.now()});
    }
    pumpSend(conn);
}

net::PacketPtr
LtlEngine::buildPacket(const SendConnection &sc,
                       const LtlHeaderPtr &header) const
{
    auto pkt = net::makePacket();
    pkt->ipSrc = cfg.localIp;
    pkt->ipDst = sc.remoteIp;
    pkt->ipProto = net::IpProto::kUdp;
    pkt->srcPort = cfg.udpPort;
    pkt->dstPort = cfg.udpPort;
    pkt->priority = cfg.trafficClass;
    pkt->ecnCapable = true;
    pkt->payloadBytes = kLtlHeaderBytes + header->frameBytes;
    pkt->meta = header;
    pkt->createdAt = queue.now();
    pkt->trace = header->trace;
    return pkt;
}

void
LtlEngine::pumpSend(std::uint16_t conn)
{
    SendConnection &sc = sendConn(conn);
    const sim::TimePs now = queue.now();
    while (!sc.sendQueue.empty() &&
           sc.unacked.size() < cfg.sendWindowFrames &&
           sc.unackedBytes < cfg.unackedStoreBytes) {
        if (sc.nextSendTime > now) {
            // Pacing: resume when the token interval elapses.
            if (sc.pumpEvent == sim::kNoEvent) {
                sc.pumpEvent =
                    queue.schedule(sc.nextSendTime, [this, conn] {
                        sendTable[conn].pumpEvent = sim::kNoEvent;
                        if (sendTable[conn].valid)
                            pumpSend(conn);
                    });
            }
            return;
        }
        LtlHeaderPtr header = sc.sendQueue.front().header;
        const sim::TimePs queued_at = sc.sendQueue.front().queuedAt;
        sc.sendQueue.pop_front();
        if (header->trace.sampled && obsHub && queued_at < now) {
            // Time spent waiting for the send window / pacing tokens.
            obsHub->flows.recordSpan(header->trace, obsPrefix + ".window",
                                     obs::Component::kCongestionWindow,
                                     queued_at, now);
        }

        UnackedFrame uf;
        uf.header = header;
        uf.firstSentAt = now;
        uf.lastSentAt = now;
        sc.unacked.push_back(uf);
        sc.unackedBytes += header->frameBytes;

        transmitFrame(sc, header, false);

        // Token-bucket pacing at the effective (DC-QCN) rate.
        const double rate = effectiveRateGbps(sc);
        const std::uint32_t wire_bytes =
            kLtlHeaderBytes + header->frameBytes + 46;  // L2-4 overheads
        const sim::TimePs interval =
            sim::serializationDelay(wire_bytes, rate);
        sc.nextSendTime = std::max(sc.nextSendTime, now) + interval;
    }
    armTimeout(conn);
}

void
LtlEngine::transmitFrame(SendConnection &sc, const LtlHeaderPtr &header,
                         bool is_retransmit)
{
    auto pkt = buildPacket(sc, header);
    if (is_retransmit) {
        ++statRetransmits;
        if (obsHub && obsHub->trace.enabled())
            obsHub->trace.instant(obsTrack, "ltl", obsPrefix + ".retransmit",
                                  queue.now());
    } else {
        ++statFramesSent;
    }
    if (header->trace.sampled && obsHub) {
        // Packetizer + MAC egress occupancy.
        obsHub->flows.recordSpan(header->trace, obsPrefix + ".tx",
                                 obs::Component::kCompute, queue.now(),
                                 queue.now() + cfg.txPathDelay);
    }
    queue.scheduleAfter(cfg.txPathDelay,
                        [this, pkt] { networkTx(pkt); });
}

void
LtlEngine::armTimeout(std::uint16_t conn)
{
    SendConnection &sc = sendTable[conn];
    if (!sc.valid || sc.unacked.empty() || sc.timeoutEvent != sim::kNoEvent)
        return;
    const sim::TimePs deadline =
        sc.unacked.front().lastSentAt + cfg.retransmitTimeout;
    sc.timeoutEvent = queue.schedule(
        std::max(deadline, queue.now()), [this, conn] {
            sendTable[conn].timeoutEvent = sim::kNoEvent;
            if (sendTable[conn].valid)
                onTimeout(conn);
        });
}

void
LtlEngine::onTimeout(std::uint16_t conn)
{
    SendConnection &sc = sendTable[conn];
    if (sc.unacked.empty())
        return;
    const sim::TimePs now = queue.now();
    if (sc.unacked.front().lastSentAt + cfg.retransmitTimeout > now) {
        // Newer transmission moved the deadline; re-arm.
        armTimeout(conn);
        return;
    }
    ++statTimeouts;
    ++sc.consecutiveTimeouts;
    if (obsHub && obsHub->trace.enabled())
        obsHub->trace.instant(obsTrack, "ltl", obsPrefix + ".timeout", now);
    if (onTimeoutStreak)
        onTimeoutStreak(conn, sc.consecutiveTimeouts, sc.remoteIp);
    if (sc.consecutiveTimeouts > cfg.maxRetries) {
        failConnection(conn, "retry exhaustion");
        return;
    }
    // Go-back-N: retransmit every unacknowledged frame.
    for (auto &uf : sc.unacked) {
        if (uf.header->trace.sampled && obsHub) {
            // The whole wait since the lost copy went out is retransmit
            // time; kRetransmit outranks every other component in the
            // attribution sweep so it can never inflate `queueing`.
            obsHub->flows.recordSpan(uf.header->trace,
                                     obsPrefix + ".retransmit",
                                     obs::Component::kRetransmit,
                                     uf.lastSentAt, now);
        }
        uf.retransmitted = true;
        uf.lastSentAt = now;
        transmitFrame(sc, uf.header, true);
    }
    armTimeout(conn);
}

void
LtlEngine::failConnection(std::uint16_t conn, const char *why)
{
    SendConnection &sc = sendTable[conn];
    if (!sc.valid || sc.failed)
        return;
    sc.failed = true;
    ++statConnFailures;
    if (sc.timeoutEvent != sim::kNoEvent) {
        queue.cancel(sc.timeoutEvent);
        sc.timeoutEvent = sim::kNoEvent;
    }
    if (sc.pumpEvent != sim::kNoEvent) {
        queue.cancel(sc.pumpEvent);
        sc.pumpEvent = sim::kNoEvent;
    }
    abandonSendState(sc);  // nothing will ever be ACKed now
    CCSIM_LOG(sim::LogLevel::kWarn, "ltl", queue.now(), "connection ",
              conn, " failed: ", why);
    if (obsHub && obsHub->trace.enabled())
        obsHub->trace.instant(obsTrack, "ltl", obsPrefix + ".conn_failed",
                              queue.now());
    if (onFailure)
        onFailure(conn);
    if (qState == QuiesceState::kDraining)
        maybeFinishDrain();  // a dead conn no longer blocks the drain
}

bool
LtlEngine::allDrained() const
{
    for (const auto &sc : sendTable) {
        if (sc.valid && !sc.failed &&
            (!sc.unacked.empty() || !sc.sendQueue.empty()))
            return false;
    }
    return true;
}

void
LtlEngine::maybeFinishDrain()
{
    if (qState != QuiesceState::kDraining || !allDrained())
        return;
    if (drainDeadlineEvent != sim::kNoEvent) {
        queue.cancel(drainDeadlineEvent);
        drainDeadlineEvent = sim::kNoEvent;
    }
    finishQuiesce();
}

void
LtlEngine::finishQuiesce()
{
    qState = QuiesceState::kQuiesced;
    CCSIM_LOG(sim::LogLevel::kInfo, "ltl", queue.now(), "engine quiesced");
    if (obsHub && obsHub->trace.enabled())
        obsHub->trace.instant(obsTrack, "ltl", obsPrefix + ".quiesced",
                              queue.now());
    auto cb = std::move(drainedCb);
    drainedCb = {};
    if (cb)
        cb();
}

void
LtlEngine::beginQuiesce(sim::TimePs drain_timeout,
                        std::function<void()> drained)
{
    if (qState == QuiesceState::kQuiesced) {
        if (drained)
            drained();  // already there
        return;
    }
    if (qState == QuiesceState::kDraining)
        sim::fatal("LtlEngine::beginQuiesce: a drain is already in "
                   "progress (one quiesce initiator at a time)");
    if (drain_timeout <= 0)
        sim::fatal("LtlEngine::beginQuiesce: drain_timeout must be "
                   "positive");
    ++statQuiesces;
    qState = QuiesceState::kDraining;
    drainedCb = std::move(drained);
    if (allDrained()) {
        finishQuiesce();
        return;
    }
    drainDeadlineEvent = queue.scheduleAfter(drain_timeout, [this] {
        drainDeadlineEvent = sim::kNoEvent;
        // Drain deadline: write off whatever refuses to complete so
        // reconfiguration is never held hostage by a dead peer.
        for (auto &sc : sendTable) {
            if (sc.valid && !sc.failed &&
                (!sc.unacked.empty() || !sc.sendQueue.empty()))
                abandonSendState(sc);
        }
        finishQuiesce();
    });
}

void
LtlEngine::endQuiesce()
{
    if (qState == QuiesceState::kDraining) {
        // Aborting an unfinished drain: keep the leftovers, drop the
        // pending deadline and completion callback.
        if (drainDeadlineEvent != sim::kNoEvent) {
            queue.cancel(drainDeadlineEvent);
            drainDeadlineEvent = sim::kNoEvent;
        }
        drainedCb = {};
    }
    qState = QuiesceState::kActive;
}

void
LtlEngine::resyncSend(std::uint16_t conn)
{
    SendConnection &sc = sendConn(conn);
    if (sc.timeoutEvent != sim::kNoEvent) {
        queue.cancel(sc.timeoutEvent);
        sc.timeoutEvent = sim::kNoEvent;
    }
    if (sc.pumpEvent != sim::kNoEvent) {
        queue.cancel(sc.pumpEvent);
        sc.pumpEvent = sim::kNoEvent;
    }
    abandonSendState(sc);
    sc.failed = false;
    sc.consecutiveTimeouts = 0;
    sc.nextSeq = 0;
    sc.nextSendTime = 0;
}

void
LtlEngine::resyncReceive(std::uint16_t conn)
{
    ReceiveConnection &rc = recvConn(conn);
    rc.expectedSeq = 0;
    rc.lastNackSeq = UINT32_MAX;
}

void
LtlEngine::handleAck(std::uint16_t conn, std::uint32_t ack_seq, bool is_nack)
{
    if (conn >= sendTable.size() || !sendTable[conn].valid ||
        sendTable[conn].failed)
        return;  // stale ACK for a closed or failed connection
    SendConnection &sc = sendTable[conn];
    const sim::TimePs now = queue.now();

    bool progressed = false;
    while (!sc.unacked.empty() && sc.unacked.front().header->seq < ack_seq) {
        const UnackedFrame &uf = sc.unacked.front();
        const LtlHeader &h = *uf.header;
        if (h.trace.sampled && h.traceEndsFlow && obsHub &&
            h.msgOffset + h.frameBytes >= h.msgBytes) {
            // The message's last frame is now cumulatively acknowledged:
            // the engine-begun flow is complete.
            obsHub->flows.endFlow(h.trace, now);
        }
        if (!uf.retransmitted) {
            // Karn's rule: only un-retransmitted frames give RTT samples.
            const double rtt_us = sim::toMicros(now - uf.firstSentAt);
            statRtt.add(rtt_us);
            if (obsRttHist)
                obsRttHist->add(rtt_us);
        }
        sc.unackedBytes -= uf.header->frameBytes;
        sc.unacked.pop_front();
        ++statFramesAcked;
        progressed = true;
    }
    if (progressed) {
        sc.consecutiveTimeouts = 0;
        if (sc.timeoutEvent != sim::kNoEvent) {
            queue.cancel(sc.timeoutEvent);
            sc.timeoutEvent = sim::kNoEvent;
        }
    }
    if (is_nack) {
        // Fast retransmit from the requested sequence (go-back-N).
        for (auto &uf : sc.unacked) {
            if (uf.header->seq >= ack_seq) {
                if (uf.header->trace.sampled && obsHub) {
                    obsHub->flows.recordSpan(uf.header->trace,
                                             obsPrefix + ".retransmit",
                                             obs::Component::kRetransmit,
                                             uf.lastSentAt, now);
                }
                uf.retransmitted = true;
                uf.lastSentAt = now;
                transmitFrame(sc, uf.header, true);
            }
        }
    }
    armTimeout(conn);
    pumpSend(conn);
    if (progressed && qState == QuiesceState::kDraining)
        maybeFinishDrain();
}

void
LtlEngine::sendControl(net::Ipv4Addr to, std::uint16_t dst_conn,
                       std::uint8_t flags, std::uint32_t ack_seq,
                       sim::TimePs delay, obs::TraceContext ctx)
{
    auto header = std::make_shared<LtlHeader>();
    header->flags = flags;
    header->dstConn = dst_conn;
    header->ackSeq = ack_seq;
    header->trace = ctx;

    auto pkt = net::makePacket();
    pkt->ipSrc = cfg.localIp;
    pkt->ipDst = to;
    pkt->ipProto = net::IpProto::kUdp;
    pkt->srcPort = cfg.udpPort;
    pkt->dstPort = cfg.udpPort;
    pkt->priority = cfg.trafficClass;
    pkt->payloadBytes = kLtlHeaderBytes;
    pkt->meta = header;
    pkt->createdAt = queue.now();
    pkt->trace = ctx;
    if (ctx.sampled && obsHub) {
        // ACK/NACK/CNP generation + egress occupancy on the reply path.
        obsHub->flows.recordSpan(ctx, obsPrefix + ".ctrl_tx",
                                 obs::Component::kCompute, queue.now(),
                                 queue.now() + delay + cfg.txPathDelay);
    }
    queue.scheduleAfter(delay + cfg.txPathDelay,
                        [this, pkt] { networkTx(pkt); });
}

void
LtlEngine::onNetworkPacket(const net::PacketPtr &pkt)
{
    if (pkt->trace.sampled && obsHub) {
        // MAC ingress + depacketizer occupancy.
        obsHub->flows.recordSpan(pkt->trace, obsPrefix + ".rx",
                                 obs::Component::kCompute, queue.now(),
                                 queue.now() + cfg.rxPathDelay);
    }
    queue.scheduleAfter(cfg.rxPathDelay, [this, pkt] {
        auto header = std::static_pointer_cast<LtlHeader>(pkt->meta);
        if (!header) {
            CCSIM_LOG(sim::LogLevel::kWarn, "ltl", queue.now(),
                      "non-LTL packet on LTL port");
            return;
        }
        if (header->flags & kFlagCnp) {
            ++statCnpsReceived;
            if (header->dstConn < sendTable.size() &&
                sendTable[header->dstConn].valid &&
                sendTable[header->dstConn].dcqcn) {
                SendConnection &sc = sendTable[header->dstConn];
                sc.dcqcn->onCongestionNotification();
                if (obsHub && obsHub->trace.enabled()) {
                    // Record the post-cut DC-QCN rate as a counter series.
                    obsHub->trace.counter(
                        "ltl",
                        obsPrefix + ".conn" +
                            std::to_string(header->dstConn) + ".rate_gbps",
                        queue.now(), effectiveRateGbps(sc));
                }
            }
            return;
        }
        if (header->flags & kFlagReject) {
            // The peer is quiesced for reconfiguration: fail this send
            // connection now instead of waiting out the retry budget.
            ++statRejectsReceived;
            if (header->dstConn < sendTable.size() &&
                sendTable[header->dstConn].valid)
                failConnection(header->dstConn, "rejected by peer");
            return;
        }
        if (header->flags & (kFlagAck | kFlagNack)) {
            handleAck(header->dstConn, header->ackSeq,
                      header->flags & kFlagNack);
            return;
        }
        if (header->flags & kFlagData) {
            handleData(pkt, header);
        }
    });
}

void
LtlEngine::handleData(const net::PacketPtr &pkt, const LtlHeaderPtr &header)
{
    if (header->dstConn >= recvTable.size() ||
        !recvTable[header->dstConn].valid) {
        CCSIM_LOG(sim::LogLevel::kDebug, "ltl", queue.now(),
                  "data frame for invalid receive connection ",
                  header->dstConn);
        return;
    }
    ReceiveConnection &rc = recvTable[header->dstConn];
    const net::Ipv4Addr sender_ip = pkt->ipSrc;
    const std::uint16_t sender_conn = header->srcConn;

    if (qState == QuiesceState::kQuiesced) {
        // Mid-reconfiguration: answer with an administrative reject so
        // the sender is not black-holed into 16 blind retransmissions.
        ++statRejectsSent;
        sendControl(sender_ip, sender_conn, kFlagReject, 0,
                    cfg.ackGenDelay, header->trace);
        return;
    }

    // DC-QCN notification point: reflect ECN marks as CNPs (rate-limited).
    if (pkt->ecnMarked &&
        queue.now() - rc.lastCnpAt >= cfg.cnpMinInterval) {
        rc.lastCnpAt = queue.now();
        ++statCnpsSent;
        sendControl(sender_ip, sender_conn, kFlagCnp, 0, 0,
                    header->trace);
    }

    if (header->seq == rc.expectedSeq) {
        rc.expectedSeq += 1;
        rc.lastNackSeq = UINT32_MAX;
        // Deliver the completed message when its final frame arrives.
        if (header->msgOffset + header->frameBytes >= header->msgBytes) {
            ++statDelivered;
            if (obsHub && obsHub->trace.enabled()) {
                // One span per delivered message: send-side header
                // generation through receive-side delivery.
                obsHub->trace.complete(obsTrack, "ltl", obsPrefix + ".msg",
                                       header->createdAt,
                                       queue.now() - header->createdAt);
            }
            if (deliver) {
                LtlMessage msg;
                msg.conn = header->dstConn;
                msg.msgId = header->msgId;
                msg.bytes = header->msgBytes;
                msg.vc = rc.vc;
                msg.payload = header->appPayload;
                msg.sentAt = header->createdAt;
                msg.trace = header->trace;
                deliver(msg);
            }
        }
        // Cumulative ACK after the Ack Generation latency.
        ++statAcksSent;
        sendControl(sender_ip, sender_conn, kFlagAck, rc.expectedSeq,
                    cfg.ackGenDelay, header->trace);
    } else if (header->seq > rc.expectedSeq) {
        // Gap: packet loss or reorder. NACK once per gap.
        ++statOutOfOrder;
        if (cfg.enableNack && rc.lastNackSeq != rc.expectedSeq) {
            rc.lastNackSeq = rc.expectedSeq;
            ++statNacksSent;
            if (obsHub && obsHub->trace.enabled())
                obsHub->trace.instant(obsTrack, "ltl", obsPrefix + ".nack",
                                      queue.now());
            sendControl(sender_ip, sender_conn, kFlagNack, rc.expectedSeq,
                        cfg.ackGenDelay, header->trace);
        }
    } else {
        // Duplicate (e.g. a retransmission raced the original): re-ACK.
        ++statDuplicates;
        ++statAcksSent;
        sendControl(sender_ip, sender_conn, kFlagAck, rc.expectedSeq,
                    cfg.ackGenDelay, header->trace);
    }
}

}  // namespace ccsim::ltl
