/**
 * @file
 * LTL (Lightweight Transport Layer) frame format.
 *
 * As in the paper, LTL frames are UDP datagrams routed with ordinary IP
 * across the datacenter network on a lossless traffic class. A frame is
 * either a data segment of a message, an ACK, a NACK (fast retransmit
 * request issued when reordering is detected), or a CNP (DC-QCN congestion
 * notification).
 */
#pragma once

#include <cstdint>
#include <memory>

#include "obs/flow_trace.hpp"

namespace ccsim::ltl {

/** UDP destination port LTL engines listen on. */
inline constexpr std::uint16_t kLtlUdpPort = 0xBEEF;

/** LTL frame types (flags may combine DATA with piggybacked ACK). */
enum LtlFlags : std::uint8_t {
    kFlagData = 1 << 0,
    kFlagAck = 1 << 1,
    kFlagNack = 1 << 2,
    kFlagCnp = 1 << 3,     ///< DC-QCN Congestion Notification Packet
    /**
     * Administrative rejection: the receiver is quiesced (draining for
     * reconfiguration) and will not accept data. The sender declares the
     * connection failed immediately instead of burning through its
     * retransmission budget against a peer that answered.
     */
    kFlagReject = 1 << 4,
};

/** Fixed LTL header size on the wire (modeled). */
inline constexpr std::uint32_t kLtlHeaderBytes = 32;

/** The LTL header + message framing metadata, attached to a Packet. */
struct LtlHeader {
    std::uint8_t flags = 0;
    /** Sender's connection index in its send table. */
    std::uint16_t srcConn = 0;
    /** Receiver's connection index in its receive table. */
    std::uint16_t dstConn = 0;
    /** Data sequence number (per connection, frame granularity). */
    std::uint32_t seq = 0;
    /** Cumulative acknowledgement: next sequence expected by receiver. */
    std::uint32_t ackSeq = 0;

    // --- message framing (valid on DATA frames) ---
    /** Id of the message this frame belongs to. */
    std::uint64_t msgId = 0;
    /** Total message payload size in bytes. */
    std::uint32_t msgBytes = 0;
    /** Offset of this frame's payload within the message. */
    std::uint32_t msgOffset = 0;
    /** Payload bytes carried by this frame. */
    std::uint32_t frameBytes = 0;
    /** Virtual channel for delivery into the remote Elastic Router. */
    std::uint8_t vc = 0;

    /** Application payload, carried once per message (on the last frame). */
    std::shared_ptr<void> appPayload;

    /**
     * Time the message was handed to the engine (ps). Survives
     * retransmission, so receivers measure true delivery latency.
     */
    std::int64_t createdAt = 0;

    /**
     * Causal flow context. Survives retransmission — a NACK'd frame's
     * retransmitted copy carries the original trace id.
     */
    obs::TraceContext trace;
    /**
     * True when the engine began the flow itself (no sampled parent
     * context was supplied); the engine then ends the flow when the
     * message's last frame is cumulatively acknowledged.
     */
    bool traceEndsFlow = false;
};

using LtlHeaderPtr = std::shared_ptr<LtlHeader>;

}  // namespace ccsim::ltl
