/**
 * @file
 * The LTL Packet Switch (Figure 4/5): the block between the LTL engine /
 * roles and the network bridge tap. Per the paper, the tap "supports
 * per-flow congestion management, traffic class based flow control, and
 * bandwidth limiting via random early drops. It also performs basic
 * packet classification and buffering to map packets to classes",
 * allowing the FPGA to safely insert and remove packets from the network
 * without disrupting existing flows and without host-side support.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "ltl/red_policer.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::ltl {

/** Packet switch configuration. */
struct PacketSwitchConfig {
    /** Traffic class LTL protocol frames are mapped to. */
    std::uint8_t ltlTrafficClass = net::kTcLossless;
    /** Traffic class role-generated raw packets are mapped to. */
    std::uint8_t roleTrafficClass = net::kTcLossy;
    /**
     * Bandwidth limit for role-generated traffic so a donated FPGA
     * cannot starve its host's traffic (enforced by random early drop).
     */
    double roleBandwidthLimitGbps = 10.0;
    std::uint64_t roleBurstBytes = 128 * 1024;
    std::uint64_t seed = 11;
};

/**
 * Classifies and polices FPGA-generated packets before they enter the
 * bump-in-the-wire toward the TOR.
 */
class LtlPacketSwitch
{
  public:
    /** Transmit into the bridge; returns false if the bridge is down. */
    using TxFn = std::function<bool(const net::PacketPtr &)>;

    LtlPacketSwitch(sim::EventQueue &eq, PacketSwitchConfig cfg, TxFn tx)
        : queue(eq), config(cfg), transmit(std::move(tx)),
          rolePolicer(cfg.roleBandwidthLimitGbps, cfg.roleBurstBytes,
                      cfg.seed)
    {
    }

    /**
     * Send an LTL protocol frame: classified onto the lossless class.
     * LTL traffic is congestion-managed end to end by DC-QCN and paced
     * by the engine, so it bypasses the RED policer.
     */
    bool sendLtl(const net::PacketPtr &pkt)
    {
        pkt->priority = config.ltlTrafficClass;
        pkt->ecnCapable = true;
        ++statLtlFrames;
        return transmit(pkt);
    }

    /**
     * Send a role-generated raw packet: classified onto the (lossy)
     * role class and subject to RED bandwidth limiting.
     *
     * @return false if policed away or the bridge is down.
     */
    bool sendRole(const net::PacketPtr &pkt)
    {
        pkt->priority = config.roleTrafficClass;
        if (!rolePolicer.allow(queue.now(), pkt->wireBytes())) {
            ++statRoleDropped;
            return false;
        }
        ++statRolePackets;
        return transmit(pkt);
    }

    std::uint64_t ltlFramesSent() const { return statLtlFrames; }
    std::uint64_t rolePacketsSent() const { return statRolePackets; }
    std::uint64_t rolePacketsDropped() const { return statRoleDropped; }

  private:
    sim::EventQueue &queue;
    PacketSwitchConfig config;
    TxFn transmit;
    RedPolicer rolePolicer;
    std::uint64_t statLtlFrames = 0;
    std::uint64_t statRolePackets = 0;
    std::uint64_t statRoleDropped = 0;
};

}  // namespace ccsim::ltl
