/**
 * @file
 * ConfigurableCloud: the top-level public API of ccsim.
 *
 * Builds a datacenter of servers, each with a NIC and a bump-in-the-wire
 * FPGA shell spliced between the NIC and its TOR switch, wires the
 * three-tier network, registers every FPGA with the HaaS Resource
 * Manager, and provides helpers for establishing LTL channels between
 * FPGAs. This is the entry point downstream users (and the examples and
 * benches) program against.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fpga/shell.hpp"
#include "haas/haas.hpp"
#include "net/nic.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::core {

/** Datacenter configuration. */
struct CloudConfig {
    net::TopologyConfig topology;
    /** Template applied to every server's shell (name/ip are overridden). */
    fpga::ShellConfig shellTemplate;
    /** Build a NIC + host link per server (disable for pure-LTL studies). */
    bool createNics = true;
    /** NIC-to-FPGA cable length. */
    double nicCableMeters = 2.0;
    /**
     * Observability hub to instrument the whole datacenter with
     * (`ltl.node<i>.*`, `router.node<i>.*`, `switch.*`, `fpga.node<i>.*`,
     * `nic.node<i>.*`). Must outlive the cloud; null disables.
     */
    obs::Observability *obs = nullptr;
};

/** A constructed Configurable Cloud instance. */
class ConfigurableCloud
{
  public:
    /** A one-directional LTL channel between two FPGAs. */
    struct LtlChannel {
        std::uint16_t sendConn = 0;  ///< on the source shell's engine
        std::uint16_t recvConn = 0;  ///< on the destination shell's engine
    };

    ConfigurableCloud(sim::EventQueue &eq, CloudConfig cfg);
    ~ConfigurableCloud();

    ConfigurableCloud(const ConfigurableCloud &) = delete;
    ConfigurableCloud &operator=(const ConfigurableCloud &) = delete;

    int numServers() const { return static_cast<int>(shells.size()); }

    fpga::Shell &shell(int host) { return *shells.at(host); }
    net::Nic &nic(int host) { return *nics.at(host); }
    net::Topology &topology() { return *topo; }
    haas::ResourceManager &resourceManager() { return *rm; }
    haas::FpgaManager &fpgaManager(int host) { return *fms.at(host); }

    /**
     * Open a one-directional LTL channel from @p from_host to @p to_host:
     * allocates a receive connection on the destination (delivering into
     * ER port @p deliver_to_er_port) and a send connection on the source.
     */
    LtlChannel openLtl(int from_host, int to_host, int deliver_to_er_port,
                       std::uint8_t vc = 0);

    /** The IP address of a server (shared by its NIC and FPGA). */
    net::Ipv4Addr addressOf(int host) const;

  private:
    sim::EventQueue &queue;
    CloudConfig config;
    std::unique_ptr<net::Topology> topo;
    std::vector<std::unique_ptr<fpga::Shell>> shells;
    std::vector<std::unique_ptr<net::Nic>> nics;
    std::vector<std::unique_ptr<net::Link>> nicLinks;
    std::unique_ptr<haas::ResourceManager> rm;
    std::vector<std::unique_ptr<haas::FpgaManager>> fms;
};

}  // namespace ccsim::core
