/**
 * @file
 * ConfigurableCloud: the top-level public API of ccsim.
 *
 * Builds a datacenter of servers, each with a NIC and a bump-in-the-wire
 * FPGA shell spliced between the NIC and its TOR switch, wires the
 * three-tier network, registers every FPGA with the HaaS Resource
 * Manager, and provides helpers for establishing LTL channels between
 * FPGAs. This is the entry point downstream users (and the examples and
 * benches) program against.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fpga/shell.hpp"
#include "haas/haas.hpp"
#include "haas/health_monitor.hpp"
#include "ltl/ltl_engine.hpp"
#include "net/nic.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "serving/cluster_client.hpp"
#include "sim/event_queue.hpp"
#include "sim/pool.hpp"
#include "sim/sharded_queue.hpp"

namespace ccsim::obs {
class ShardedObservability;
class TimeSeriesHub;
}

namespace ccsim::core {

/**
 * Datacenter configuration. Fields can be set directly or through the
 * fluent with*() setters; ConfigurableCloud validates the result at
 * construction and reports configuration errors via sim::fatal.
 */
struct CloudConfig {
    net::TopologyConfig topology;
    /** Template applied to every server's shell (name/ip are overridden). */
    fpga::ShellConfig shellTemplate;
    /** Build a NIC + host link per server (disable for pure-LTL studies). */
    bool createNics = true;
    /**
     * Flyweight servers: build() creates the fabric and registers every
     * host with the Resource Manager, but defers each server's heavy
     * state (shell, NIC, cables, FPGA manager — tens of KB) until the
     * host is first touched: an accessor, an LTL open, a lease deploy,
     * a heartbeat probe, or a fault injection. Untouched servers cost
     * tens of bytes, which is what lets a 250k-host L2 fabric fit in a
     * few GB. Materialization order follows touch order, so runs that
     * touch the same hosts in the same order stay byte-identical; a
     * run that eventually touches every host converges to the eager
     * build's state.
     */
    bool lazyHosts = false;
    /** NIC-to-FPGA cable length. */
    double nicCableMeters = 2.0;
    /**
     * Observability hub to instrument the whole datacenter with
     * (`ltl.node<i>.*`, `router.node<i>.*`, `switch.*`, `fpga.node<i>.*`,
     * `nic.node<i>.*`, `haas.*`). Must outlive the cloud; null disables.
     */
    obs::Observability *obs = nullptr;
    /**
     * When non-zero, the cloud starts periodic gauge sampling on the hub
     * at this period (requires obs). The caller must stopSampling()
     * before draining the event queue with runAll().
     */
    sim::TimePs obsSamplePeriod = 0;
    /**
     * When non-zero, enable causal flow tracing on the hub's
     * FlightRecorder: 1-in-N flow sampling (1 = every flow), counters
     * bound into the registry (requires obs).
     */
    std::uint32_t flowSampleEvery = 0;
    /** Worst-N exemplar traces the recorder keeps (with flow tracing). */
    std::size_t flowTailCapacity = 64;

    /**
     * Cluster-serving defaults applied to every ClusterClient built via
     * makeClusterClient(): balancer policy, admission limits, ejection
     * thresholds, request policy. Set through withServing(); validated
     * at cloud construction like the rest of the config.
     */
    serving::ServingConfig serving;
    /** True once withServing() was called (validates + enables). */
    bool servingEnabled = false;

    /**
     * Worker threads for the parallel kernel (sharded construction
     * only; used by shardPlan()). 0 or 1 runs the partitioned build on
     * a single thread — still byte-identical to any other thread count.
     */
    int shards = 0;
    /**
     * Explicit conservative-sync window (lookahead) in picoseconds for
     * the sharded kernel; 0 derives it from the shortest registered
     * cross-partition link (the L1<->L2 trunk propagation delay).
     */
    sim::TimePs shardWindow = 0;
    /**
     * Per-shard observability hubs for the sharded build (one hub per
     * partition: pods + spine). Mutually exclusive with `obs`; must
     * outlive the cloud. Null disables instrumentation.
     */
    obs::ShardedObservability *shardObs = nullptr;
    /**
     * Live windowed time-series: the hub watches every instrumented
     * registry (the single hub, or all per-shard hubs) and is driven on
     * its configured window — a periodic event on the legacy kernel, a
     * barrier hook on the sharded one. Requires obs or shardObs; must
     * outlive the cloud's simulation run. Null disables.
     */
    obs::TimeSeriesHub *timeSeries = nullptr;

    // --- fluent setters (each returns *this for chaining) ---

    CloudConfig &withTopology(net::TopologyConfig t)
    {
        topology = std::move(t);
        return *this;
    }
    CloudConfig &withShellTemplate(fpga::ShellConfig s)
    {
        shellTemplate = std::move(s);
        return *this;
    }
    CloudConfig &withNics(bool enabled)
    {
        createNics = enabled;
        return *this;
    }
    CloudConfig &withLazyHosts(bool enabled = true)
    {
        lazyHosts = enabled;
        return *this;
    }
    CloudConfig &withNicCableMeters(double meters)
    {
        nicCableMeters = meters;
        return *this;
    }
    CloudConfig &withObservability(obs::Observability *hub)
    {
        obs = hub;
        return *this;
    }
    CloudConfig &withObsSamplePeriod(sim::TimePs period)
    {
        obsSamplePeriod = period;
        return *this;
    }
    CloudConfig &withFlowTracing(std::uint32_t sample_every,
                                 std::size_t tail_capacity = 64)
    {
        flowSampleEvery = sample_every;
        flowTailCapacity = tail_capacity;
        return *this;
    }
    CloudConfig &withServing(serving::ServingConfig s)
    {
        serving = std::move(s);
        servingEnabled = true;
        return *this;
    }
    CloudConfig &withShards(int n)
    {
        shards = n;
        return *this;
    }
    CloudConfig &withShardWindow(sim::TimePs window)
    {
        shardWindow = window;
        return *this;
    }
    CloudConfig &withShardedObservability(obs::ShardedObservability *so)
    {
        shardObs = so;
        return *this;
    }
    CloudConfig &withTimeSeries(obs::TimeSeriesHub *hub)
    {
        timeSeries = hub;
        return *this;
    }
};

/**
 * A move-only RAII handle for a one-directional LTL channel between two
 * FPGAs: owns one send connection on the source engine and one receive
 * connection on the destination engine, and closes both on destruction
 * (so fault-triggered teardown cannot leak connection-table entries).
 *
 * Handles must not outlive the ConfigurableCloud that opened them.
 */
class LtlChannel
{
  public:
    /** An empty (closed) handle. */
    LtlChannel() = default;

    LtlChannel(const LtlChannel &) = delete;
    LtlChannel &operator=(const LtlChannel &) = delete;

    LtlChannel(LtlChannel &&other) noexcept { moveFrom(other); }
    LtlChannel &operator=(LtlChannel &&other) noexcept
    {
        if (this != &other) {
            close();
            moveFrom(other);
        }
        return *this;
    }

    ~LtlChannel() { close(); }

    /** The send-connection index on the source shell's engine. */
    std::uint16_t sendConn() const { return sendId; }
    /** The receive-connection index on the destination shell's engine. */
    std::uint16_t recvConn() const { return recvId; }

    /** The engine owning the send side (nullptr if closed). */
    ltl::LtlEngine *senderEngine() const { return sender; }

    /** True while the handle owns open connections. */
    bool isOpen() const { return sender != nullptr; }
    explicit operator bool() const { return isOpen(); }

    /** Convenience: send a message down this channel. */
    void send(std::uint32_t bytes, std::shared_ptr<void> payload = nullptr,
              std::uint8_t vc = 0)
    {
        if (sender)
            sender->sendMessage(sendId, bytes, std::move(payload), vc);
    }

    /** True if the send side has been declared failed by LTL. */
    bool failed() const
    {
        return sender != nullptr && sender->sendConnectionFailed(sendId);
    }

    /**
     * Re-handshake after the far end rejoined (repair or reconfiguration
     * complete): both ends rewind to sequence 0 and the send side's
     * failure flag and retry budget are cleared, as when the control
     * plane re-establishes the connection on real hardware. Any frames
     * still unaccounted for are written off.
     */
    void rehandshake()
    {
        if (sender)
            sender->resyncSend(sendId);
        if (receiver)
            receiver->resyncReceive(recvId);
    }

    /** Close both connections now (idempotent). */
    void close()
    {
        if (sender)
            sender->closeSend(sendId);
        if (receiver)
            receiver->closeReceive(recvId);
        sender = nullptr;
        receiver = nullptr;
        sendId = 0;
        recvId = 0;
    }

  private:
    friend class ConfigurableCloud;

    LtlChannel(ltl::LtlEngine *send_engine, std::uint16_t send_conn,
               ltl::LtlEngine *recv_engine, std::uint16_t recv_conn)
        : sender(send_engine), receiver(recv_engine), sendId(send_conn),
          recvId(recv_conn)
    {
    }

    void moveFrom(LtlChannel &other)
    {
        sender = other.sender;
        receiver = other.receiver;
        sendId = other.sendId;
        recvId = other.recvId;
        other.sender = nullptr;
        other.receiver = nullptr;
        other.sendId = 0;
        other.recvId = 0;
    }

    ltl::LtlEngine *sender = nullptr;
    ltl::LtlEngine *receiver = nullptr;
    std::uint16_t sendId = 0;
    std::uint16_t recvId = 0;
};

/** A constructed Configurable Cloud instance. */
class ConfigurableCloud
{
  public:
    ConfigurableCloud(sim::EventQueue &eq, CloudConfig cfg);

    /**
     * Partitioned construction on the parallel kernel: pod p's servers,
     * switches, and cables live on @p sq.partition(p) and the L2 spine
     * (plus the HaaS resource manager) on partition `pods`. Build
     * @p sq from shardPlan(cfg) so the partition count and window match
     * the topology. Instrumentation must come through
     * cfg.shardObs (one hub per partition) rather than cfg.obs. Health
     * monitoring (HealthMonitor::startSharded) and fault injection (the
     * injector's ShardedEventQueue constructor) both run as barrier
     * hooks on this kernel — see haas/health_monitor.hpp and
     * fault/fault.hpp for the modes each supports.
     */
    ConfigurableCloud(sim::ShardedEventQueue &sq, CloudConfig cfg);

    ~ConfigurableCloud();

    /**
     * The kernel shape a sharded build of @p cfg needs: one logical
     * process per pod plus one for the spine, cfg.shards worker
     * threads, and cfg.shardWindow lookahead (0 = derive from the
     * trunk cables at start).
     */
    static sim::ShardedEventQueue::Config shardPlan(const CloudConfig &cfg)
    {
        sim::ShardedEventQueue::Config qc;
        qc.partitions = cfg.topology.pods + 1;
        qc.threads = cfg.shards > 0 ? cfg.shards : 1;
        qc.window = cfg.shardWindow;
        return qc;
    }

    ConfigurableCloud(const ConfigurableCloud &) = delete;
    ConfigurableCloud &operator=(const ConfigurableCloud &) = delete;

    int numServers() const { return topo->numHosts(); }

    /** A server's shell; touching it materializes a flyweight stub. */
    fpga::Shell &shell(int host)
    {
        materializeServer(host);
        return *hostStates[host]->shell;
    }
    net::Nic &nic(int host)
    {
        materializeServer(host);
        return *hostStates[host]->nic;
    }
    net::Topology &topology() { return *topo; }
    haas::ResourceManager &resourceManager() { return *rm; }
    haas::FpgaManager &fpgaManager(int host)
    {
        materializeServer(host);
        return *hostStates[host]->fm;
    }

    // --- flyweight servers (lazyHosts) ---

    /**
     * Create a server's heavy state now (idempotent; every host is
     * already materialized in an eager build). Construction follows the
     * exact per-host sequence of the eager build — shell, observability
     * attach, fabric splice, NIC + cable, FPGA manager, RM binding —
     * so a lazy build that touches hosts in ascending order is
     * byte-identical to the eager one.
     */
    void materializeServer(int host);

    /** True once a server's heavy state exists. */
    bool serverMaterialized(int host) const
    {
        return hostStates.at(host) != nullptr;
    }

    /** Servers whose heavy state exists (== numServers() when eager). */
    int materializedServers() const { return materializedCount; }

    /**
     * Memory telemetry for the fabric (packetPoolStats-style helper):
     * live-object counts, an estimated resident footprint per host slot
     * amortized over the whole fleet, and the thread-local allocation
     * pool's counters. The same numbers back the `sim.mem.*` gauges.
     */
    struct FabricMemoryStats {
        int hosts = 0;               ///< host slots (stubs included)
        int materializedHosts = 0;   ///< slots with heavy state
        std::size_t switches = 0;    ///< always eager
        std::size_t fabricLinks = 0; ///< trunks + materialized cables
        /** Estimated bytes of heavy state per materialized server. */
        std::size_t bytesPerServer = 0;
        /** Estimated bytes per host slot amortized over the fleet. */
        double bytesPerHost = 0.0;
        sim::PoolStats pool;
    };
    FabricMemoryStats fabricMemoryStats() const;

    /**
     * Open a one-directional LTL channel from @p from_host to @p to_host:
     * allocates a receive connection on the destination (delivering into
     * ER port @p deliver_to_er_port) and a send connection on the source.
     * The returned RAII handle closes both connections when destroyed.
     */
    LtlChannel openLtl(int from_host, int to_host, int deliver_to_er_port,
                       std::uint8_t vc = 0);

    /** The IP address of a server (shared by its NIC and FPGA). */
    net::Ipv4Addr addressOf(int host) const;

    /** The host index owning @p addr, or -1 if no server has it. */
    int hostByAddress(net::Ipv4Addr addr) const;

    /**
     * Management-path reachability: true while the server's FPGA would
     * answer an FPGA-Manager probe (bridge up and FPGA<->TOR cable not
     * administratively down). This is what a HealthMonitor heartbeat
     * observes. Probing a flyweight stub materializes it (a heartbeat
     * is a management-path touch), so lazy and eager builds answer
     * identically.
     */
    bool nodeReachable(int host);

    /**
     * Wire @p hm to this cloud: installs the management-path
     * reachability probe and subscribes every shell's LTL engine so
     * retransmission-timeout streaks feed the monitor's passive
     * suspicion (remote IPs are resolved to host indices). Call before
     * hm.start(); @p hm must outlive the cloud's simulation run.
     */
    void attachHealthMonitor(haas::HealthMonitor &hm);

    /**
     * Build a serving facade over @p sm's lease set, configured from the
     * cloud-level ServingConfig (withServing): the instance source is
     * the service manager's live instance list, the client registers
     * with the cloud's observability hub under `serving.<name>`, and —
     * when @p hm is given — every outlier ejection feeds the monitor's
     * evidence score from source "serving.<name>" (idempotent per
     * episode). Callers still register a data-plane endpoint per
     * instance. @p sm and @p hm must outlive the returned client.
     * Not yet supported on a sharded cloud (rejected like health
     * monitoring).
     */
    std::unique_ptr<serving::ClusterClient> makeClusterClient(
        haas::ServiceManager &sm, const std::string &name,
        haas::HealthMonitor *hm = nullptr);

    /** The observability hub the cloud was built with (may be null). */
    obs::Observability *observability() const { return config.obs; }

    /** True when built on the parallel (sharded) kernel. */
    bool sharded() const { return shards != nullptr; }

    /** The sharded hubs the cloud was built with (null when legacy). */
    obs::ShardedObservability *shardedObservability() const
    {
        return config.shardObs;
    }

    /**
     * The logical process a server executes on (== its pod). Valid in
     * both modes; in the legacy build it is informational only.
     */
    int partitionOf(int host) const
    {
        const auto &t = config.topology;
        return host / (t.racksPerPod * t.hostsPerRack);
    }

    /** The event queue a server's devices schedule on. */
    sim::EventQueue &queueFor(int host)
    {
        return shards ? shards->partition(partitionOf(host)) : queue;
    }

    // --- fault injection hooks (ccsim::fault) ---

    /** Cut / restore a server's FPGA<->TOR cable (both directions). */
    void setHostLinkDown(int host, bool down);

    /**
     * Cut / restore a server's NIC<->FPGA cable. Requires createNics.
     */
    void setNicLinkDown(int host, bool down);

    /** The NIC<->FPGA cable of a host (nullptr when built without NICs). */
    net::Link *nicLink(int host)
    {
        if (!config.createNics)
            return nullptr;
        materializeServer(host);
        return hostStates[host]->nicLink.get();
    }

    /**
     * Register @p tag as this cloud's single active fault injector.
     * A second concurrent attach is a configuration error (two injectors
     * would fight over the same admin hooks).
     */
    void attachFaultInjector(const void *tag);

    /** Release the fault-injector slot (no-op if @p tag isn't attached). */
    void detachFaultInjector(const void *tag);

    /** The currently attached injector tag (nullptr when none). */
    const void *faultInjector() const { return injectorTag; }

  private:
    /**
     * A server's heavy (cold) state, allocated on first touch. The
     * flyweight split: everything class-invariant lives in the shared
     * CloudConfig (shell template, NIC policy, cable lengths); the
     * per-host warm facts (address, MAC, coordinates) live in the
     * topology's HostPort stub; this record is only born when the host
     * actually participates.
     */
    struct HostState {
        std::unique_ptr<fpga::Shell> shell;
        std::unique_ptr<net::Nic> nic;
        std::unique_ptr<net::Link> nicLink;
        std::unique_ptr<haas::FpgaManager> fm;
    };

    sim::EventQueue &queue;  ///< sharded mode: the spine partition
    CloudConfig config;
    sim::ShardedEventQueue *shards = nullptr;
    std::unique_ptr<net::Topology> topo;
    /** One slot per host; nullptr while the server is a stub. */
    std::vector<std::unique_ptr<HostState>> hostStates;
    std::unique_ptr<haas::ResourceManager> rm;
    int materializedCount = 0;
    haas::HealthMonitor *healthMon = nullptr;
    const void *injectorTag = nullptr;

    static void validate(const CloudConfig &cfg);
    void validateSharded() const;
    /** The hub components on @p partition register with (may be null). */
    obs::Observability *hubFor(int partition);
    void build();
    void registerMemoryProbes(obs::Observability *hub);
    void installTimeoutObserver(int host);
};

}  // namespace ccsim::core
