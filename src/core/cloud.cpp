#include "core/cloud.hpp"

#include "sim/logging.hpp"

namespace ccsim::core {

ConfigurableCloud::ConfigurableCloud(sim::EventQueue &eq, CloudConfig cfg)
    : queue(eq), config(std::move(cfg))
{
    topo = std::make_unique<net::Topology>(queue, config.topology);
    if (config.obs)
        topo->attachObservability(config.obs);
    rm = std::make_unique<haas::ResourceManager>(queue);

    const int n = topo->numHosts();
    shells.reserve(n);
    fms.reserve(n);
    for (int host = 0; host < n; ++host) {
        const auto &hp = topo->host(host);

        fpga::ShellConfig sc = config.shellTemplate;
        sc.name = "shell." + std::to_string(host);
        sc.ip = hp.addr;
        auto shell = std::make_unique<fpga::Shell>(queue, sc);
        if (config.obs)
            shell->attachObservability(config.obs,
                                       "node" + std::to_string(host));

        // Splice the FPGA between the TOR and (optionally) the NIC.
        topo->attachHostDevice(host, shell->torSideSink());
        shell->setTorTx(&topo->hostTx(host));

        if (config.createNics) {
            auto link = std::make_unique<net::Link>(
                queue, "niclink." + std::to_string(host),
                config.topology.linkGbps, config.nicCableMeters);
            auto nic = std::make_unique<net::Nic>(
                queue, "nic." + std::to_string(host), hp.mac, hp.addr);
            if (config.obs)
                nic->attachObservability(config.obs,
                                         "node" + std::to_string(host));
            nic->setTxChannel(&link->aToB());
            link->attachA(nic.get());
            link->attachB(shell->nicSideSink());
            shell->setNicTx(&link->bToA());
            nics.push_back(std::move(nic));
            nicLinks.push_back(std::move(link));
        }

        auto fm = std::make_unique<haas::FpgaManager>(queue, shell.get(),
                                                      host);
        rm->registerNode(host, fm.get(), hp.pod);

        shells.push_back(std::move(shell));
        fms.push_back(std::move(fm));
    }
}

ConfigurableCloud::~ConfigurableCloud() = default;

ConfigurableCloud::LtlChannel
ConfigurableCloud::openLtl(int from_host, int to_host,
                           int deliver_to_er_port, std::uint8_t vc)
{
    fpga::Shell &src = shell(from_host);
    fpga::Shell &dst = shell(to_host);
    if (src.ltlEngine() == nullptr || dst.ltlEngine() == nullptr)
        sim::fatal("ConfigurableCloud::openLtl: shells built without LTL");
    LtlChannel ch;
    ch.recvConn = dst.ltlEngine()->openReceive(vc);
    dst.bindReceiveConnection(ch.recvConn, deliver_to_er_port);
    ch.sendConn = src.ltlEngine()->openSend(dst.ip(), ch.recvConn);
    return ch;
}

net::Ipv4Addr
ConfigurableCloud::addressOf(int host) const
{
    return topo->host(host).addr;
}

}  // namespace ccsim::core
