#include "core/cloud.hpp"

#include "sim/logging.hpp"

namespace ccsim::core {

void
ConfigurableCloud::validate(const CloudConfig &cfg)
{
    const auto &t = cfg.topology;
    if (t.hostsPerRack < 1 || t.racksPerPod < 1 || t.pods < 1)
        sim::fatalf("CloudConfig: topology has no servers (hostsPerRack=",
                    t.hostsPerRack, ", racksPerPod=", t.racksPerPod,
                    ", pods=", t.pods, "); every dimension must be >= 1");
    if (t.l1PerPod < 1 || t.l2Count < 1)
        sim::fatalf("CloudConfig: need at least one switch per fabric "
                    "tier (l1PerPod=", t.l1PerPod, ", l2Count=", t.l2Count,
                    ")");
    if (t.linkGbps <= 0.0)
        sim::fatalf("CloudConfig: linkGbps must be positive (got ",
                    t.linkGbps, ")");
    if (t.hostCableMeters < 0.0 || t.torToL1Meters < 0.0 ||
        t.l1ToL2Meters < 0.0)
        sim::fatalf("CloudConfig: cable lengths must be non-negative "
                    "(host=", t.hostCableMeters, " m, tor-l1=",
                    t.torToL1Meters, " m, l1-l2=", t.l1ToL2Meters, " m)");
    if (cfg.createNics && cfg.nicCableMeters < 0.0)
        sim::fatalf("CloudConfig: nicCableMeters must be non-negative "
                    "(got ", cfg.nicCableMeters, ")");
    if (cfg.obsSamplePeriod < 0)
        sim::fatalf("CloudConfig: obsSamplePeriod must be non-negative "
                    "(got ", cfg.obsSamplePeriod, " ps)");
    if (cfg.obsSamplePeriod > 0 && cfg.obs == nullptr)
        sim::fatal("CloudConfig: obsSamplePeriod set but no observability "
                   "hub attached; call withObservability(&hub) first");
    if (cfg.flowSampleEvery > 0 && cfg.obs == nullptr)
        sim::fatal("CloudConfig: flowSampleEvery set but no observability "
                   "hub attached; call withObservability(&hub) first");
}

ConfigurableCloud::ConfigurableCloud(sim::EventQueue &eq, CloudConfig cfg)
    : queue(eq), config(std::move(cfg))
{
    validate(config);
    if (config.obs)
        obs::registerEventQueueProbes(config.obs->registry, queue);
    topo = std::make_unique<net::Topology>(queue, config.topology);
    if (config.obs)
        topo->attachObservability(config.obs);
    rm = std::make_unique<haas::ResourceManager>(queue);
    if (config.obs)
        rm->attachObservability(config.obs);

    const int n = topo->numHosts();
    shells.reserve(n);
    fms.reserve(n);
    for (int host = 0; host < n; ++host) {
        const auto &hp = topo->host(host);

        fpga::ShellConfig sc = config.shellTemplate;
        sc.name = "shell." + std::to_string(host);
        sc.ip = hp.addr;
        auto shell = std::make_unique<fpga::Shell>(queue, sc);
        if (config.obs)
            shell->attachObservability(config.obs,
                                       "node" + std::to_string(host));

        // Splice the FPGA between the TOR and (optionally) the NIC.
        topo->attachHostDevice(host, shell->torSideSink());
        shell->setTorTx(&topo->hostTx(host));

        if (config.createNics) {
            auto link = std::make_unique<net::Link>(
                queue, "niclink." + std::to_string(host),
                config.topology.linkGbps, config.nicCableMeters);
            if (config.obs)
                link->setFlowRecorder(&config.obs->flows);
            auto nic = std::make_unique<net::Nic>(
                queue, "nic." + std::to_string(host), hp.mac, hp.addr);
            if (config.obs)
                nic->attachObservability(config.obs,
                                         "node" + std::to_string(host));
            nic->setTxChannel(&link->aToB());
            link->attachA(nic.get());
            link->attachB(shell->nicSideSink());
            shell->setNicTx(&link->bToA());
            nics.push_back(std::move(nic));
            nicLinks.push_back(std::move(link));
        }

        auto fm = std::make_unique<haas::FpgaManager>(queue, shell.get(),
                                                      host);
        rm->registerNode(host, fm.get(), hp.pod);

        shells.push_back(std::move(shell));
        fms.push_back(std::move(fm));
    }

    if (config.obs && config.obsSamplePeriod > 0)
        config.obs->registry.startSampling(queue, config.obsSamplePeriod,
                                           &config.obs->trace);
    if (config.obs && config.flowSampleEvery > 0) {
        auto &flows = config.obs->flows;
        flows.setEnabled(true);
        flows.setSampleEvery(config.flowSampleEvery);
        flows.setTailCapacity(config.flowTailCapacity);
        flows.bindMetrics(config.obs->registry);
    }
}

ConfigurableCloud::~ConfigurableCloud() = default;

LtlChannel
ConfigurableCloud::openLtl(int from_host, int to_host,
                           int deliver_to_er_port, std::uint8_t vc)
{
    fpga::Shell &src = shell(from_host);
    fpga::Shell &dst = shell(to_host);
    if (src.ltlEngine() == nullptr || dst.ltlEngine() == nullptr)
        sim::fatal("ConfigurableCloud::openLtl: shells built without LTL");
    const std::uint16_t recv_conn = dst.ltlEngine()->openReceive(vc);
    dst.bindReceiveConnection(recv_conn, deliver_to_er_port);
    const std::uint16_t send_conn =
        src.ltlEngine()->openSend(dst.ip(), recv_conn);
    return LtlChannel(src.ltlEngine(), send_conn, dst.ltlEngine(),
                      recv_conn);
}

net::Ipv4Addr
ConfigurableCloud::addressOf(int host) const
{
    return topo->host(host).addr;
}

int
ConfigurableCloud::hostByAddress(net::Ipv4Addr addr) const
{
    for (int host = 0; host < numServers(); ++host) {
        if (topo->host(host).addr.value == addr.value)
            return host;
    }
    return -1;
}

bool
ConfigurableCloud::nodeReachable(int host) const
{
    return !shells.at(host)->bridge().down() &&
           !topo->hostLink(host).isAdminDown();
}

void
ConfigurableCloud::attachHealthMonitor(haas::HealthMonitor &hm)
{
    hm.setProbe([this](int host) { return nodeReachable(host); });
    for (int host = 0; host < numServers(); ++host) {
        ltl::LtlEngine *eng = shells[host]->ltlEngine();
        if (eng == nullptr)
            continue;
        eng->setTimeoutObserver(
            [this, &hm](std::uint16_t, int streak, net::Ipv4Addr remote) {
                const int peer = hostByAddress(remote);
                if (peer >= 0)
                    hm.reportTimeoutStreak(peer, streak);
            });
    }
}

void
ConfigurableCloud::setHostLinkDown(int host, bool down)
{
    topo->hostLink(host).setAdminDown(down);
}

void
ConfigurableCloud::setNicLinkDown(int host, bool down)
{
    if (nicLinks.empty())
        sim::fatal("ConfigurableCloud::setNicLinkDown: cloud was built "
                   "without NICs (createNics=false)");
    nicLinks.at(host)->setAdminDown(down);
}

void
ConfigurableCloud::attachFaultInjector(const void *tag)
{
    if (injectorTag != nullptr && injectorTag != tag)
        sim::fatal("ConfigurableCloud: a fault injector is already "
                   "attached; detach it before attaching another");
    injectorTag = tag;
}

void
ConfigurableCloud::detachFaultInjector(const void *tag)
{
    if (injectorTag == tag)
        injectorTag = nullptr;
}

}  // namespace ccsim::core
