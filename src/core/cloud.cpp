#include "core/cloud.hpp"

#include "obs/sharded_obs.hpp"
#include "obs/timeseries.hpp"
#include "sim/logging.hpp"

namespace ccsim::core {

void
ConfigurableCloud::validate(const CloudConfig &cfg)
{
    const auto &t = cfg.topology;
    if (t.hostsPerRack < 1 || t.racksPerPod < 1 || t.pods < 1)
        sim::fatalf("CloudConfig: topology has no servers (hostsPerRack=",
                    t.hostsPerRack, ", racksPerPod=", t.racksPerPod,
                    ", pods=", t.pods, "); every dimension must be >= 1");
    if (t.l1PerPod < 1 || t.l2Count < 1)
        sim::fatalf("CloudConfig: need at least one switch per fabric "
                    "tier (l1PerPod=", t.l1PerPod, ", l2Count=", t.l2Count,
                    ")");
    if (t.linkGbps <= 0.0)
        sim::fatalf("CloudConfig: linkGbps must be positive (got ",
                    t.linkGbps, ")");
    if (t.hostCableMeters < 0.0 || t.torToL1Meters < 0.0 ||
        t.l1ToL2Meters < 0.0)
        sim::fatalf("CloudConfig: cable lengths must be non-negative "
                    "(host=", t.hostCableMeters, " m, tor-l1=",
                    t.torToL1Meters, " m, l1-l2=", t.l1ToL2Meters, " m)");
    if (cfg.createNics && cfg.nicCableMeters < 0.0)
        sim::fatalf("CloudConfig: nicCableMeters must be non-negative "
                    "(got ", cfg.nicCableMeters, ")");
    if (cfg.obsSamplePeriod < 0)
        sim::fatalf("CloudConfig: obsSamplePeriod must be non-negative "
                    "(got ", cfg.obsSamplePeriod, " ps)");
    if (cfg.obsSamplePeriod > 0 && cfg.obs == nullptr &&
        cfg.shardObs == nullptr)
        sim::fatal("CloudConfig: obsSamplePeriod set but no observability "
                   "hub attached; call withObservability(&hub) first");
    if (cfg.flowSampleEvery > 0 && cfg.obs == nullptr &&
        cfg.shardObs == nullptr)
        sim::fatal("CloudConfig: flowSampleEvery set but no observability "
                   "hub attached; call withObservability(&hub) first");
    if (cfg.servingEnabled)
        serving::validateServingConfig(cfg.serving);
    if (cfg.timeSeries != nullptr && cfg.obs == nullptr &&
        cfg.shardObs == nullptr)
        sim::fatal("CloudConfig: timeSeries set but no observability hub "
                   "attached; the hub needs registries to watch");
}

ConfigurableCloud::ConfigurableCloud(sim::EventQueue &eq, CloudConfig cfg)
    : queue(eq), config(std::move(cfg))
{
    validate(config);
    if (config.shardObs != nullptr)
        sim::fatal("CloudConfig: shardObs set on a single-queue cloud; "
                   "construct with a ShardedEventQueue (shardPlan) or use "
                   "withObservability instead");
    build();
}

ConfigurableCloud::ConfigurableCloud(sim::ShardedEventQueue &sq,
                                     CloudConfig cfg)
    // The spine partition doubles as the "default" queue: it hosts the
    // L2 switches and the HaaS resource manager.
    : queue(sq.partition(cfg.topology.pods)), config(std::move(cfg)),
      shards(&sq)
{
    validate(config);
    validateSharded();
    build();
}

void
ConfigurableCloud::validateSharded() const
{
    if (config.obs != nullptr)
        sim::fatal("CloudConfig: a sharded cloud takes per-partition hubs "
                   "via withShardedObservability, not withObservability "
                   "(one hub per worker keeps the hot path lock-free)");
    if (shards->partitionCount() != config.topology.pods + 1)
        sim::fatalf("ConfigurableCloud: sharded build needs pods + 1 = ",
                    config.topology.pods + 1, " partitions (one per pod "
                    "plus the spine), got ", shards->partitionCount(),
                    "; build the queue from shardPlan(cfg)");
    if (config.shardObs != nullptr &&
        config.shardObs->shardCount() < config.topology.pods + 1)
        sim::fatalf("ConfigurableCloud: shardObs needs at least pods + 1 "
                    "= ", config.topology.pods + 1, " hubs, got ",
                    config.shardObs->shardCount());
}

obs::Observability *
ConfigurableCloud::hubFor(int partition)
{
    if (shards == nullptr)
        return config.obs;
    return config.shardObs ? &config.shardObs->shard(partition) : nullptr;
}

void
ConfigurableCloud::build()
{
    const int spinePartition = config.topology.pods;
    // One flag governs both layers: a lazy cloud implies a lazy fabric
    // and vice versa.
    if (config.lazyHosts)
        config.topology.lazyHosts = true;
    else if (config.topology.lazyHosts)
        config.lazyHosts = true;
    if (shards == nullptr) {
        if (config.obs)
            obs::registerEventQueueProbes(config.obs->registry, queue);
        topo = std::make_unique<net::Topology>(queue, config.topology);
        if (config.obs)
            topo->attachObservability(config.obs);
    } else {
        // Kernel-health probes land in shard 0's registry; they are read
        // only at barriers (sampleAt runs from a barrier hook), where the
        // per-partition counters are quiescent.
        if (config.shardObs)
            obs::registerShardProbes(config.shardObs->shard(0).registry,
                                     *shards);
        topo = std::make_unique<net::Topology>(*shards, config.topology);
        if (config.shardObs)
            topo->attachObservability(config.shardObs);
    }
    rm = std::make_unique<haas::ResourceManager>(queue);
    if (auto *hub = hubFor(spinePartition))
        rm->attachObservability(hub);
    registerMemoryProbes(shards == nullptr
                             ? config.obs
                             : (config.shardObs
                                    ? &config.shardObs->shard(0)
                                    : nullptr));

    const int n = topo->numHosts();
    hostStates.resize(n);
    if (config.lazyHosts) {
        // Every host joins the RM pool as a stub so leases, failure
        // reports, and pod/rack constraints see the full fleet; the
        // first manager() touch materializes through the resolver.
        for (int host = 0; host < n; ++host) {
            const auto &hp = topo->host(host);
            rm->registerNode(host, nullptr, hp.pod,
                             hp.pod * config.topology.racksPerPod + hp.rack);
        }
        rm->setManagerResolver([this](int host) {
            materializeServer(host);
            return hostStates[host]->fm.get();
        });
    } else {
        for (int host = 0; host < n; ++host)
            materializeServer(host);
    }

    if (shards == nullptr) {
        if (config.obs && config.obsSamplePeriod > 0)
            config.obs->registry.startSampling(queue, config.obsSamplePeriod,
                                               &config.obs->trace);
        if (config.obs && config.flowSampleEvery > 0) {
            auto &flows = config.obs->flows;
            flows.setEnabled(true);
            flows.setSampleEvery(config.flowSampleEvery);
            flows.setTailCapacity(config.flowTailCapacity);
            flows.bindMetrics(config.obs->registry);
        }
    } else if (config.shardObs) {
        if (config.obsSamplePeriod > 0)
            config.shardObs->startSampling(*shards, config.obsSamplePeriod);
        if (config.flowSampleEvery > 0) {
            for (int s = 0; s < config.shardObs->shardCount(); ++s) {
                auto &flows = config.shardObs->shard(s).flows;
                flows.setEnabled(true);
                flows.setSampleEvery(config.flowSampleEvery);
                flows.setTailCapacity(config.flowTailCapacity);
                // No bindMetrics: the trace.* counter paths would
                // collide across shard registries at snapshot merge.
            }
        }
    }

    if (config.timeSeries != nullptr) {
        obs::TimeSeriesHub &ts = *config.timeSeries;
        if (shards == nullptr) {
            ts.watchRegistry(&config.obs->registry);
            ts.registerSelfProbes(config.obs->registry);
            ts.attachTrace(&config.obs->trace);
            ts.startSampling(queue);
        } else if (config.shardObs) {
            // Watch every partition's registry (paths are disjoint by
            // construction); self probes land in shard 0 like the
            // kernel-health probes, and rolling runs from a barrier
            // hook so the series are byte-identical across thread
            // counts.
            for (int s = 0; s < config.shardObs->shardCount(); ++s)
                ts.watchRegistry(&config.shardObs->shard(s).registry);
            ts.registerSelfProbes(config.shardObs->shard(0).registry);
            ts.attachTrace(&config.shardObs->shard(0).trace);
            ts.startSampling(*shards);
        }
    }
}

ConfigurableCloud::~ConfigurableCloud() = default;

void
ConfigurableCloud::materializeServer(int host)
{
    if (host < 0 || host >= topo->numHosts())
        sim::fatalf("ConfigurableCloud::materializeServer: host ", host,
                    " out of range (cloud has ", topo->numHosts(),
                    " servers)");
    if (hostStates[host] != nullptr)
        return;
    // This is the exact per-host construction sequence of the pre-
    // flyweight eager build; the eager path now calls it in ascending
    // host order from build(), keeping those runs byte-identical.
    const auto &hp = topo->host(host);
    sim::EventQueue &hq = queueFor(host);
    obs::Observability *hub = hubFor(partitionOf(host));
    auto state = std::make_unique<HostState>();

    fpga::ShellConfig sc = config.shellTemplate;
    sc.name = "shell." + std::to_string(host);
    sc.ip = hp.addr;
    state->shell = std::make_unique<fpga::Shell>(hq, sc);
    if (hub)
        state->shell->attachObservability(hub,
                                          "node" + std::to_string(host));

    // Splice the FPGA between the TOR and (optionally) the NIC.
    topo->attachHostDevice(host, state->shell->torSideSink());
    state->shell->setTorTx(&topo->hostTx(host));

    if (config.createNics) {
        auto link = std::make_unique<net::Link>(
            hq, "niclink." + std::to_string(host),
            config.topology.linkGbps, config.nicCableMeters);
        if (hub)
            link->setFlowRecorder(&hub->flows);
        auto nic = std::make_unique<net::Nic>(
            hq, "nic." + std::to_string(host), hp.mac, hp.addr);
        if (hub)
            nic->attachObservability(hub, "node" + std::to_string(host));
        nic->setTxChannel(&link->aToB());
        link->attachA(nic.get());
        link->attachB(state->shell->nicSideSink());
        state->shell->setNicTx(&link->bToA());
        state->nic = std::move(nic);
        state->nicLink = std::move(link);
    }

    state->fm = std::make_unique<haas::FpgaManager>(
        hq, state->shell.get(), host);
    if (config.lazyHosts)
        rm->setNodeManager(host, state->fm.get());
    else
        rm->registerNode(host, state->fm.get(), hp.pod,
                         hp.pod * config.topology.racksPerPod + hp.rack);

    hostStates[host] = std::move(state);
    ++materializedCount;
    // Passive LTL timeout observers are legacy-only: on a sharded cloud
    // they would call into the monitor from a worker mid-window; there
    // the monitor's own barrier-driven sweeps are the only detector.
    if (healthMon != nullptr && shards == nullptr)
        installTimeoutObserver(host);
}

void
ConfigurableCloud::registerMemoryProbes(obs::Observability *hub)
{
    if (hub == nullptr)
        return;
    auto &reg = hub->registry;
    reg.registerProbe("sim.mem.hosts",
                      [this] { return double(topo->numHosts()); });
    reg.registerProbe("sim.mem.materialized_hosts",
                      [this] { return double(materializedCount); });
    reg.registerProbe("sim.mem.switches", [this] {
        return double(fabricMemoryStats().switches);
    });
    reg.registerProbe("sim.mem.fabric_links", [this] {
        return double(fabricMemoryStats().fabricLinks);
    });
    reg.registerProbe("sim.mem.bytes_per_host", [this] {
        return fabricMemoryStats().bytesPerHost;
    });
}

ConfigurableCloud::FabricMemoryStats
ConfigurableCloud::fabricMemoryStats() const
{
    FabricMemoryStats s;
    const auto &t = config.topology;
    s.hosts = topo->numHosts();
    s.materializedHosts = materializedCount;
    s.switches = static_cast<std::size_t>(t.pods) *
                     (t.racksPerPod + t.l1PerPod) +
                 t.l2Count;
    // Trunks + materialized access cables + materialized NIC cables.
    s.fabricLinks = static_cast<std::size_t>(topo->numTrunkLinks()) +
                    topo->materializedHosts() +
                    (config.createNics
                         ? static_cast<std::size_t>(materializedCount)
                         : 0);
    // sizeof() undercounts (owned buffers, queues, tables are behind
    // pointers) but tracks the same growth the RSS assertions bound;
    // treat it as an order-of-magnitude gauge, not an audit.
    s.bytesPerServer = sizeof(HostState) + sizeof(fpga::Shell) +
                       sizeof(haas::FpgaManager) + sizeof(net::Link) +
                       (config.createNics
                            ? sizeof(net::Nic) + sizeof(net::Link)
                            : 0);
    const std::size_t stub =
        sizeof(net::Topology::HostPort) + sizeof(void *);
    s.bytesPerHost =
        s.hosts == 0
            ? 0.0
            : (static_cast<double>(s.bytesPerServer) * materializedCount +
               static_cast<double>(stub) * s.hosts) /
                  s.hosts;
    s.pool = sim::poolStats();
    return s;
}

void
ConfigurableCloud::installTimeoutObserver(int host)
{
    ltl::LtlEngine *eng = hostStates[host]->shell->ltlEngine();
    if (eng == nullptr)
        return;
    eng->setTimeoutObserver(
        [this](std::uint16_t, int streak, net::Ipv4Addr remote) {
            const int peer = hostByAddress(remote);
            if (peer >= 0)
                healthMon->reportTimeoutStreak(peer, streak);
        });
}

LtlChannel
ConfigurableCloud::openLtl(int from_host, int to_host,
                           int deliver_to_er_port, std::uint8_t vc)
{
    fpga::Shell &src = shell(from_host);
    fpga::Shell &dst = shell(to_host);
    if (src.ltlEngine() == nullptr || dst.ltlEngine() == nullptr)
        sim::fatal("ConfigurableCloud::openLtl: shells built without LTL");
    const std::uint16_t recv_conn = dst.ltlEngine()->openReceive(vc);
    dst.bindReceiveConnection(recv_conn, deliver_to_er_port);
    const std::uint16_t send_conn =
        src.ltlEngine()->openSend(dst.ip(), recv_conn);
    return LtlChannel(src.ltlEngine(), send_conn, dst.ltlEngine(),
                      recv_conn);
}

net::Ipv4Addr
ConfigurableCloud::addressOf(int host) const
{
    return topo->host(host).addr;
}

int
ConfigurableCloud::hostByAddress(net::Ipv4Addr addr) const
{
    for (int host = 0; host < numServers(); ++host) {
        if (topo->host(host).addr.value == addr.value)
            return host;
    }
    return -1;
}

bool
ConfigurableCloud::nodeReachable(int host)
{
    // A heartbeat probe is a management-path touch: it materializes a
    // flyweight stub (deterministically — the probe schedule is part of
    // the simulation) rather than silently reporting on missing state.
    materializeServer(host);
    return !hostStates[host]->shell->bridge().down() &&
           !topo->hostLink(host).isAdminDown();
}

void
ConfigurableCloud::attachHealthMonitor(haas::HealthMonitor &hm)
{
    healthMon = &hm;
    hm.setProbe([this](int host) { return nodeReachable(host); });
    // Every host shares one failure domain with the whole rack behind
    // its TOR (global rack id); the monitor convicts at that granularity
    // when a rack goes fully dark (HealthMonitorConfig::domainConviction).
    const int hosts_per_rack = config.topology.hostsPerRack;
    hm.setDomainOf(
        [hosts_per_rack](int host) { return host / hosts_per_rack; });
    // Sharded clouds stop here: probes run at barriers (startSharded),
    // and passive timeout observers stay uninstalled — they would call
    // into the monitor from a worker mid-window.
    if (shards != nullptr)
        return;
    // Materialized shells subscribe now; flyweight stubs subscribe the
    // moment they materialize (installTimeoutObserver from
    // materializeServer), so passive suspicion never misses a server
    // that was born after the monitor attached.
    for (int host = 0; host < numServers(); ++host) {
        if (hostStates[host] != nullptr)
            installTimeoutObserver(host);
    }
}

std::unique_ptr<serving::ClusterClient>
ConfigurableCloud::makeClusterClient(haas::ServiceManager &sm,
                                     const std::string &name,
                                     haas::HealthMonitor *hm)
{
    if (shards != nullptr)
        sim::fatal("ConfigurableCloud::makeClusterClient: the serving "
                   "layer is not yet partition-aware; routing would read "
                   "another logical process's lease set mid-window. Use "
                   "the single-queue build for serving studies");
    auto client = std::make_unique<serving::ClusterClient>(
        queue, name, [&sm] { return sm.instances(); }, config.serving);
    if (hm != nullptr)
        client->outliers().setEvidenceSink(
            [hm, source = "serving." + name](int host, double weight) {
                hm->reportEvidence(host, source, weight);
            });
    if (config.obs != nullptr)
        client->attachObservability(config.obs);
    return client;
}

void
ConfigurableCloud::setHostLinkDown(int host, bool down)
{
    // On a sharded cloud this must be called only while the kernel is
    // quiescent (from a barrier hook or between runs) — the sharded
    // FaultInjector schedules every injection that way, so admin state
    // never changes while a worker owns the link.
    // A fault is a touch: cutting a stub's cable materializes the
    // server first so the fault lands on real state (and a later
    // accessor cannot resurrect a pristine shell behind a dead link).
    materializeServer(host);
    topo->hostLink(host).setAdminDown(down);
}

void
ConfigurableCloud::setNicLinkDown(int host, bool down)
{
    if (!config.createNics)
        sim::fatal("ConfigurableCloud::setNicLinkDown: cloud was built "
                   "without NICs (createNics=false)");
    materializeServer(host);
    hostStates[host]->nicLink->setAdminDown(down);
}

void
ConfigurableCloud::attachFaultInjector(const void *tag)
{
    if (injectorTag != nullptr && injectorTag != tag)
        sim::fatal("ConfigurableCloud: a fault injector is already "
                   "attached; detach it before attaching another");
    injectorTag = tag;
}

void
ConfigurableCloud::detachFaultInjector(const void *tag)
{
    if (injectorTag == tag)
        injectorTag = nullptr;
}

}  // namespace ccsim::core
