/**
 * @file
 * The canonical catalogue of every metric path the simulator registers.
 *
 * Each entry is a glob pattern (`*` matches any non-empty character
 * sequence, including dots) plus the metric kind and a one-line
 * description. `docs/METRICS.md` is generated from this table by
 * `tools/gen_metrics_md`; a registry cross-check test asserts that every
 * path a fully-instrumented cloud registers matches a documented
 * pattern, so adding a probe without documenting it fails CI.
 */
#pragma once

#include <cstddef>
#include <string_view>

namespace ccsim::obs {

/** One documented metric pattern. */
struct MetricPattern {
    /** Glob over dotted paths; `*` matches one or more characters. */
    const char *pattern;
    /** "counter", "gauge" (probe-backed), or "histogram". */
    const char *kind;
    /** One-line description for the generated reference. */
    const char *help;
};

/**
 * Every metric family, grouped by subsystem prefix. Order is the order
 * of the generated document.
 */
inline constexpr MetricPattern kMetricPatterns[] = {
    // --- sim.queue.* : DES kernel health (registerEventQueueProbes) ---
    {"sim.queue.events_per_sec", "gauge",
     "Events executed per simulated second (deterministic rate)."},
    {"sim.queue.live", "gauge",
     "Currently scheduled, uncancelled events."},
    {"sim.queue.cancelled", "gauge", "Total event cancellations."},
    {"sim.queue.wheel_overflow", "gauge",
     "Events parked in the far-future overflow heap."},

    // --- sim.shard.* : parallel kernel health (registerShardProbes) ---
    {"sim.shard.partitions", "gauge",
     "Logical processes (per-pod partitions) in the sharded kernel."},
    {"sim.shard.windows", "gauge",
     "Conservative synchronization windows executed."},
    {"sim.shard.cross_messages", "gauge",
     "Cross-partition messages delivered at window barriers."},
    {"sim.shard.events", "gauge",
     "Events executed, summed over all partitions."},
    {"sim.shard.partition*.events", "gauge",
     "Events executed by one partition (load-balance view)."},

    // --- sim.mem.* : fabric memory / live-object gauges
    //     (ConfigurableCloud::registerMemoryProbes; the numbers behind
    //     fabricMemoryStats()) ---
    {"sim.mem.hosts", "gauge",
     "Host slots in the fabric, flyweight stubs included."},
    {"sim.mem.materialized_hosts", "gauge",
     "Servers whose heavy state (shell/NIC/cables/FM) exists."},
    {"sim.mem.switches", "gauge",
     "Switches in the fabric (always eagerly built)."},
    {"sim.mem.fabric_links", "gauge",
     "Live Link objects: trunks plus materialized access/NIC cables."},
    {"sim.mem.bytes_per_host", "gauge",
     "Estimated resident bytes per host slot, amortized over the fleet "
     "(sizeof-based; an order-of-magnitude gauge, not an audit)."},

    // --- ts.* : live time-series hub health
    //     (TimeSeriesHub::registerSelfProbes) ---
    {"ts.windows", "gauge", "Base windows rolled by the time-series hub."},
    {"ts.series", "gauge",
     "Series tracked (concrete registry metrics plus aggregates)."},
    {"ts.points", "gauge",
     "Points retained across all ring buffers and levels."},
    {"ts.exported_lines", "gauge", "JSONL lines written to the CCSIM_TS "
     "stream."},

    // --- slo.<objective>.* : the SLO burn-rate engine (SloEngine) ---
    {"slo.*.alerts", "counter",
     "Burn-rate alerts fired for one objective (all matched series)."},
    {"slo.*.resolved", "counter",
     "Alerts resolved after the short burn window recovered."},
    {"slo.*.firing", "gauge",
     "Matched series currently in the firing state."},
    {"slo.*.burn_long", "gauge",
     "Worst long-window error-budget burn rate across matched series."},
    {"slo.*.burn_short", "gauge",
     "Worst short-window error-budget burn rate across matched series."},

    // --- trace.* : flow tracing (FlightRecorder::bindMetrics) ---
    {"trace.sampled_flows", "counter",
     "Flows admitted by the 1-in-N flow sampler."},
    {"trace.dropped_spans", "counter",
     "Spans discarded: late arrivals, per-trace cap, exemplar eviction."},

    // --- ltl.node<i>.* : LTL transport engines ---
    {"ltl.*.rtt_us", "histogram",
     "Data-frame RTT, header generation to ACK receipt (microseconds)."},
    {"ltl.*.frames_sent", "gauge", "Data frames transmitted (first try)."},
    {"ltl.*.frames_acked", "gauge", "Data frames cumulatively ACKed."},
    {"ltl.*.frames_abandoned", "gauge",
     "Frames dropped with their connection at retry exhaustion."},
    {"ltl.*.frames_in_flight", "gauge",
     "Unacknowledged frames currently outstanding."},
    {"ltl.*.retransmits", "gauge", "Frame retransmissions (go-back-N)."},
    {"ltl.*.timeouts", "gauge", "Retransmission-timer expirations."},
    {"ltl.*.acks_sent", "gauge", "Cumulative ACK control frames sent."},
    {"ltl.*.nacks_sent", "gauge", "NACK control frames sent."},
    {"ltl.*.cnps_sent", "gauge",
     "Congestion-notification packets sent (ECN echo)."},
    {"ltl.*.cnps_received", "gauge",
     "Congestion-notification packets received."},
    {"ltl.*.messages_delivered", "gauge",
     "Complete messages handed to the receiving role."},
    {"ltl.*.duplicate_frames", "gauge",
     "Received frames below the cumulative-ACK point."},
    {"ltl.*.out_of_order_frames", "gauge",
     "Received frames ahead of the expected sequence."},
    {"ltl.*.conn_failures", "gauge",
     "Send connections declared failed (retry exhaustion or reject)."},
    {"ltl.*.sends_rejected", "gauge",
     "sendMessage calls refused while the engine was quiescing."},
    {"ltl.*.rejects_sent", "gauge",
     "REJECT control frames sent to peers of a quiesced engine."},
    {"ltl.*.rejects_received", "gauge",
     "REJECT control frames received (peer quiesced; conn failed fast)."},
    {"ltl.*.quiesces", "gauge",
     "Quiesce/drain cycles started on this engine."},

    // --- switch.<name>.* : fabric switches ---
    {"switch.*.forwarded", "gauge", "Packets forwarded to an output port."},
    {"switch.*.dropped", "gauge",
     "Packets dropped (full queues, admin down)."},
    {"switch.*.ecn_marked", "gauge",
     "Packets ECN-marked above the marking threshold."},
    {"switch.*.pfc_frames", "gauge",
     "Priority-flow-control pause frames emitted."},
    {"switch.*.route_misses", "gauge",
     "Packets with no matching route entry."},
    {"switch.*.brownout_drops", "gauge",
     "Packets dropped by an injected brownout fault."},
    {"switch.*.q*.depth", "gauge",
     "Aggregate egress occupancy of one traffic class (bytes)."},

    // --- router.node<i>.* : Elastic Router crossbars ---
    {"router.*.flits_routed", "gauge", "Flits moved through the crossbar."},
    {"router.*.messages_routed", "gauge",
     "Complete messages (tail flits) routed."},
    {"router.*.busy_cycles", "gauge",
     "Cycles the allocator had at least one flit buffered."},
    {"router.*.buffered_flits", "gauge", "Flits currently buffered."},
    {"router.*.peak_buffered_flits", "gauge",
     "High-water mark of buffered flits."},
    {"router.*.port*.flits_in", "counter",
     "Flits injected on one input port."},
    {"router.*.port*.flits_out", "counter",
     "Flits granted to one output port."},
    {"router.*.port*.credit_stalls", "counter",
     "Injection attempts stalled waiting for credits."},

    // --- fpga.node<i>.* : shell infrastructure ---
    {"fpga.*.pcie_bytes", "gauge", "Bytes moved over the PCIe DMA engine."},
    {"fpga.*.pcie_transfers", "gauge", "PCIe DMA transfers completed."},
    {"fpga.*.pcie_util", "gauge",
     "PCIe busy fraction (full duplex counts as 2.0)."},
    {"fpga.*.dram_bytes", "gauge", "Bytes accessed in shell DRAM."},
    {"fpga.*.dram_reads", "gauge", "DRAM read transactions."},
    {"fpga.*.dram_writes", "gauge", "DRAM write transactions."},
    {"fpga.*.dram_util", "gauge", "DRAM controller busy fraction."},

    // --- nic.node<i>.* : host NICs ---
    {"nic.*.rx_packets", "gauge", "Packets received from the FPGA side."},
    {"nic.*.tx_packets", "gauge", "Packets transmitted toward the FPGA."},

    // --- host.<node>.* : ranking servers ---
    {"host.*.latency_ms", "histogram",
     "Query sojourn time, arrival to completion (milliseconds)."},
    {"host.*.completed", "gauge", "Queries completed."},
    {"host.*.in_flight", "gauge", "Queries admitted but not completed."},
    {"host.*.queue_depth", "gauge", "Queries waiting for a free core."},
    {"host.*.sw_feature_queries", "gauge",
     "Queries whose feature stage ran in software (incl. rescues)."},
    {"host.*.shed", "gauge",
     "Queries refused by the admission gate at submission."},
    {"host.*.accel_blocked", "gauge",
     "Queries currently blocked inside the accelerator."},
    {"host.*.retry.deadline_expired", "gauge",
     "Accelerator attempts that outlived their per-attempt deadline."},
    {"host.*.retry.attempts", "gauge",
     "Retry attempts issued after a deadline expiry."},
    {"host.*.retry.hedges", "gauge",
     "Hedged duplicate requests issued to a replica."},
    {"host.*.retry.hedge_wins", "gauge",
     "Queries completed by the hedged duplicate, not the primary."},
    {"host.*.retry.sw_fallbacks", "gauge",
     "Accelerated queries that fell back to the software feature path."},
    {"host.*.retry.hedge_delay_us", "gauge",
     "Hedge delay a query dispatched now would use (microseconds)."},

    // --- haas.* : Hardware-as-a-Service resource manager ---
    {"haas.free", "gauge", "FPGAs in the free pool."},
    {"haas.allocated", "gauge", "FPGAs held by active leases."},
    {"haas.failed", "gauge", "FPGAs currently marked failed."},
    {"haas.failures", "gauge", "Total failure reports."},
    {"haas.repairs", "gauge", "Total repair completions."},
    {"haas.sm.*.instances", "gauge",
     "Healthy instances backing one managed service."},
    {"haas.sm.*.failovers", "gauge",
     "Failovers performed for one managed service."},
    {"haas.sm.*.auto_heals", "gauge",
     "Instances re-acquired by auto-heal after node repairs."},
    {"haas.sm.*.migration_queue", "gauge",
     "Failovers currently waiting behind the migration rate limit."},
    {"haas.sm.*.migrations_queued", "gauge",
     "Cumulative failovers that had to queue behind the rate limit."},

    // --- haas.placement.* : failure-domain-aware placement ---
    {"haas.placement.affinity_skips", "gauge",
     "Free candidates passed over to honor rack/pod anti-affinity caps."},
    {"haas.placement.racks_used", "gauge",
     "Distinct (service, rack) placements currently allocated."},

    // --- haas.health.* : the failure detector (HealthMonitor) ---
    {"haas.health.heartbeats", "gauge",
     "FPGA-Manager heartbeat probes issued."},
    {"haas.health.misses", "gauge", "Heartbeat probes that went unanswered."},
    {"haas.health.detections", "gauge",
     "Nodes declared failed by the detector."},
    {"haas.health.domain_convictions", "gauge",
     "Whole failure domains convicted as one correlated event."},
    {"haas.health.domains", "gauge",
     "Failure domains (racks) covered by the watch set."},
    {"haas.health.rejoins", "gauge",
     "Nodes readmitted after sustained healthy heartbeats."},
    {"haas.health.streak_reports", "gauge",
     "LTL retransmit-timeout streaks credited as passive suspicion."},
    {"haas.health.evidence_reports", "gauge",
     "Named-source evidence reports credited (idempotent per episode)."},
    {"haas.health.suspected", "gauge",
     "Nodes currently above the suspicion threshold."},
    {"haas.health.monitored", "gauge", "Nodes under health monitoring."},
    {"haas.health.node*.suspicion", "gauge",
     "Current phi-style suspicion score of one node."},

    // --- serving.<service>.* : the cluster serving layer ---
    {"serving.*.routed", "gauge",
     "Requests routed to a backend by the cluster client."},
    {"serving.*.no_backend", "gauge",
     "Requests dropped because no routable backend remained."},
    {"serving.*.avoided", "gauge",
     "Routing candidates skipped by the failure-domain avoid predicate."},
    {"serving.*.latency_ms", "histogram",
     "Routed-request sojourn time, forward to response (milliseconds)."},
    {"serving.*.outstanding", "gauge",
     "Requests in flight across the pool."},
    {"serving.*.host.*.outstanding", "gauge",
     "Requests in flight toward one backend."},
    {"serving.*.admission.admitted", "gauge",
     "Requests admitted by the token-bucket gate."},
    {"serving.*.admission.shed", "gauge",
     "Requests refused by the token-bucket gate."},
    {"serving.*.admission.tenant.*.shed", "gauge",
     "Requests shed against one tenant's rate limit."},
    {"serving.*.outlier.ejections", "gauge",
     "Outlier ejections performed (all signals)."},
    {"serving.*.outlier.ejections_errors", "gauge",
     "Ejections triggered by consecutive routed-request errors."},
    {"serving.*.outlier.ejections_latency", "gauge",
     "Ejections triggered by the latency-percentile signal."},
    {"serving.*.outlier.ejections_suppressed", "gauge",
     "Ejections suppressed by the max-ejected-fraction guard."},
    {"serving.*.outlier.errors", "gauge",
     "Routed-request errors recorded by the outlier detector."},
    {"serving.*.outlier.ejected", "gauge",
     "Backends currently ejected from the routable set."},

    // --- chaos.* : the chaos-campaign engine (fault::ChaosEngine) ---
    {"chaos.phases", "gauge", "Phases in the scripted chaos scenario."},
    {"chaos.phases_fired", "gauge", "Scenario phases fired so far."},

    // --- fault.* : live fault injection (ccsim::fault) ---
    {"fault.injected", "gauge", "Faults injected so far."},
    {"fault.recovered", "gauge", "Faults fully recovered."},
    {"fault.link_flaps", "gauge", "Link-flap faults injected."},
    {"fault.corruption_bursts", "gauge",
     "Packet-corruption bursts injected."},
    {"fault.fpga_failures", "gauge", "FPGA hard-failure faults injected."},
    {"fault.reconfig_pauses", "gauge",
     "Reconfiguration-pause faults injected."},
    {"fault.graceful_reconfigs", "gauge",
     "Graceful (quiesce-first) reconfiguration faults injected."},
    {"fault.brownouts", "gauge", "Switch brownout faults injected."},
    {"fault.domain.injected", "gauge",
     "Correlated domain-level faults injected (TOR, pod, spine, drain)."},
    {"fault.domain.tor_fails", "gauge",
     "TOR hard-death faults injected (whole rack dark at once)."},
    {"fault.domain.pod_events", "gauge",
     "Pod power events injected (staggered host deaths)."},
    {"fault.domain.gray_faults", "gauge",
     "Gray spine degradations injected (loss/latency, heartbeats alive)."},
    {"fault.domain.maintenance", "gauge",
     "Rolling maintenance drains injected."},
    {"fault.domain.tors_dead", "gauge",
     "TOR switches currently held dark by the injector."},
    {"fault.nodes_down", "gauge", "Servers currently impaired."},
    {"fault.node*.down", "gauge", "1 while this server is impaired."},
    {"fault.node*.downtime_us", "gauge",
     "Accumulated impairment time of this server (microseconds)."},
};

inline constexpr std::size_t kNumMetricPatterns =
    sizeof(kMetricPatterns) / sizeof(kMetricPatterns[0]);

/**
 * True when @p path matches @p pattern, where `*` matches one or more
 * characters (including dots). Iterative glob with single-star
 * backtracking — patterns in the table only ever need one level.
 */
inline bool
matchesMetricPattern(std::string_view pattern, std::string_view path)
{
    std::size_t p = 0, s = 0;
    std::size_t starP = std::string_view::npos, starS = 0;
    while (s < path.size()) {
        if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starS = s + 1;  // '*' must consume at least one character
            ++s;
        } else if (p < pattern.size() && pattern[p] == path[s]) {
            ++p;
            ++s;
        } else if (starP != std::string_view::npos) {
            p = starP + 1;
            s = ++starS;
        } else {
            return false;
        }
    }
    // A leftover '*' would have to match zero characters — disallowed.
    return p == pattern.size();
}

/**
 * The first documented pattern matching @p path, or nullptr when the
 * path is undocumented.
 */
inline const MetricPattern *
findMetricPattern(std::string_view path)
{
    for (const auto &mp : kMetricPatterns) {
        if (matchesMetricPattern(mp.pattern, path))
            return &mp;
    }
    return nullptr;
}

}  // namespace ccsim::obs
