#include "obs/slo.hpp"

#include <cmath>
#include <sstream>
#include <string_view>

#include "obs/json_util.hpp"
#include "sim/logging.hpp"

namespace ccsim::obs {

namespace {

/** Same glob semantics as metric_names.hpp (`*` matches >= 1 chars). */
bool
globMatch(std::string_view pattern, std::string_view path)
{
    std::size_t p = 0, s = 0;
    std::size_t starP = std::string_view::npos, starS = 0;
    while (s < path.size()) {
        if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starS = s + 1;
            ++s;
        } else if (p < pattern.size() && pattern[p] == path[s]) {
            ++p;
            ++s;
        } else if (starP != std::string_view::npos) {
            p = starP + 1;
            s = ++starS;
        } else {
            return false;
        }
    }
    return p == pattern.size();
}

}  // namespace

SloEngine::SloEngine(TimeSeriesHub &h) : hub(h)
{
    hub.addWindowObserver(
        [this](sim::TimePs t, std::uint64_t seq) { onWindow(t, seq); });
}

SloEngine &
SloEngine::addObjective(SloObjective obj)
{
    if (obj.name.empty())
        sim::fatal("SloEngine::addObjective: empty name");
    if (obj.name.find('.') != std::string::npos)
        sim::fatal("SloEngine::addObjective: name must be a single dotted-"
                   "path segment");
    if (obj.series.empty())
        sim::fatal("SloEngine::addObjective: empty series pattern");
    if (!std::isfinite(obj.threshold))
        sim::fatal("SloEngine::addObjective: threshold must be finite");
    if (!(obj.errorBudget > 0.0 && obj.errorBudget <= 1.0))
        sim::fatal("SloEngine::addObjective: errorBudget must be in (0,1]");
    if (obj.shortWindows < 1 || obj.longWindows < obj.shortWindows)
        sim::fatal("SloEngine::addObjective: need longWindows >= "
                   "shortWindows >= 1");
    if (obj.burnThreshold <= 0.0)
        sim::fatal("SloEngine::addObjective: burnThreshold must be > 0");
    if (obj.evidenceWeight < 0.0)
        sim::fatal("SloEngine::addObjective: evidenceWeight must be >= 0");
    for (const auto &o : objectives) {
        if (o->spec.name == obj.name)
            sim::panicf("SloEngine::addObjective: duplicate objective ",
                        obj.name);
    }
    auto o = std::make_unique<Objective>();
    o->spec = std::move(obj);
    objectives.push_back(std::move(o));
    if (metrics != nullptr)
        bindMetrics(*objectives.back());
    return *this;
}

void
SloEngine::attachObservability(MetricsRegistry &reg)
{
    metrics = &reg;
    for (auto &obj : objectives)
        bindMetrics(*obj);
}

void
SloEngine::bindMetrics(Objective &obj)
{
    if (obj.alertCounter != nullptr)
        return;
    const std::string base = "slo." + obj.spec.name;
    obj.alertCounter = &metrics->counter(base + ".alerts");
    obj.resolveCounter = &metrics->counter(base + ".resolved");
    Objective *op = &obj;
    metrics->registerProbe(base + ".firing", [op] {
        double n = 0;
        for (const auto &[name, st] : op->states)
            n += st.firing ? 1 : 0;
        return n;
    });
    metrics->registerProbe(base + ".burn_long", [op] {
        double m = 0;
        for (const auto &[name, st] : op->states)
            m = std::max(m, st.burnLong);
        return m;
    });
    metrics->registerProbe(base + ".burn_short", [op] {
        double m = 0;
        for (const auto &[name, st] : op->states)
            m = std::max(m, st.burnShort);
        return m;
    });
}

double
SloEngine::statOf(const TsPoint &p, SloStat s)
{
    switch (s) {
    case SloStat::kValue:
        return p.value;
    case SloStat::kDelta:
        return p.delta;
    case SloStat::kRate:
        return p.rate;
    case SloStat::kCount:
        return static_cast<double>(p.count);
    case SloStat::kMean:
        return p.mean;
    case SloStat::kP50:
        return p.p50;
    case SloStat::kP90:
        return p.p90;
    case SloStat::kP99:
        return p.p99;
    case SloStat::kP999:
        return p.p999;
    }
    return 0.0;
}

int
SloEngine::hostFromSeries(const std::string &series)
{
    std::size_t pos = 0;
    while (pos < series.size()) {
        std::size_t dot = series.find('.', pos);
        if (dot == std::string::npos)
            dot = series.size();
        const std::string_view seg(series.data() + pos, dot - pos);
        if (seg.size() > 4 && seg.substr(0, 4) == "node") {
            int v = 0;
            bool digits = true;
            for (char c : seg.substr(4)) {
                if (c < '0' || c > '9') {
                    digits = false;
                    break;
                }
                v = v * 10 + (c - '0');
            }
            if (digits)
                return v;
        }
        pos = dot + 1;
    }
    return -1;
}

void
SloEngine::onWindow(sim::TimePs t, std::uint64_t seq)
{
    (void)seq;
    for (auto &objPtr : objectives) {
        Objective &obj = *objPtr;
        // Bind newly appeared series to this objective (hub series only
        // ever accumulate, so a count check suffices).
        if (hub.seriesCount() != obj.seenSeries) {
            obj.seenSeries = hub.seriesCount();
            for (const std::string &name : hub.seriesNames()) {
                if (globMatch(obj.spec.series, name))
                    obj.states.try_emplace(name);
            }
        }
        for (auto &[name, st] : obj.states) {
            const TsPoint *p = hub.latest(name);
            if (p == nullptr || p->t != t)
                continue;
            evaluate(obj, name, st, *p, t);
        }
    }
}

void
SloEngine::evaluate(Objective &obj, const std::string &name, SeriesState &st,
                    const TsPoint &p, sim::TimePs t)
{
    const SloObjective &spec = obj.spec;
    // A histogram window with no samples says nothing about latency
    // percentiles: count it as in-budget rather than inventing a zero.
    bool bad = false;
    const bool histStat = spec.stat >= SloStat::kMean;
    if (!(histStat && hub.kindOf(name) == SeriesKind::kHistogram &&
          p.count == 0)) {
        const double v = statOf(p, spec.stat);
        bad = spec.cmp == SloCmp::kLt ? !(v < spec.threshold)
                                      : !(v > spec.threshold);
    }

    // Push into the trailing ring and recount both burn windows.
    const auto cap = static_cast<std::size_t>(spec.longWindows);
    if (st.bad.size() < cap) {
        st.bad.push_back(bad ? 1 : 0);
        st.used = st.bad.size();
        st.head = st.used % cap;
    } else {
        st.bad[st.head] = bad ? 1 : 0;
        st.head = (st.head + 1) % cap;
        st.used = cap;
    }
    std::size_t badLong = 0, badShort = 0;
    const auto shortN =
        std::min(st.used, static_cast<std::size_t>(spec.shortWindows));
    for (std::size_t i = 0; i < st.used; ++i) {
        // i counts back from the newest entry.
        const std::size_t idx =
            (st.head + st.bad.size() - 1 - i) % st.bad.size();
        badLong += st.bad[idx];
        if (i < shortN)
            badShort += st.bad[idx];
    }
    st.burnLong = static_cast<double>(badLong) /
                  static_cast<double>(st.used) / spec.errorBudget;
    st.burnShort = static_cast<double>(badShort) /
                   static_cast<double>(shortN) / spec.errorBudget;

    const bool burning = st.burnLong >= spec.burnThreshold &&
                         st.burnShort >= spec.burnThreshold &&
                         st.used >= shortN;
    if (!st.firing && burning) {
        st.firing = true;
        ++firedCount;
        const int host = hostFromSeries(name);
        Alert a;
        a.objective = spec.name;
        a.series = name;
        a.firedAt = t;
        a.burnLong = st.burnLong;
        a.burnShort = st.burnShort;
        a.host = host;
        st.alertIdx = alerts.size();
        alerts.push_back(std::move(a));
        if (obj.alertCounter != nullptr)
            obj.alertCounter->inc();
        if (trace != nullptr && trace->enabled())
            trace->instant(trace->track("slo"), "slo",
                           spec.name + " fire: " + name, t);
        exportAlert(obj, name, st, t, true, host);
        if (evidence && spec.evidenceWeight > 0.0 && host >= 0)
            evidence(host, "slo." + spec.name, spec.evidenceWeight);
    } else if (st.firing && st.burnShort < spec.burnThreshold) {
        st.firing = false;
        ++resolvedCount;
        alerts[st.alertIdx].resolvedAt = t;
        if (obj.resolveCounter != nullptr)
            obj.resolveCounter->inc();
        if (trace != nullptr && trace->enabled())
            trace->instant(trace->track("slo"), "slo",
                           spec.name + " resolve: " + name, t);
        exportAlert(obj, name, st, t, false, hostFromSeries(name));
    }
}

void
SloEngine::exportAlert(const Objective &obj, const std::string &series,
                       const SeriesState &st, sim::TimePs t, bool fired,
                       int host)
{
    std::ostringstream line;
    line << "{\"type\":\"alert\",\"t_us\":";
    detail::jsonNumber(line, static_cast<double>(t) / 1e6);
    line << ",\"slo\":\"";
    detail::jsonEscape(line, obj.spec.name);
    line << "\",\"series\":\"";
    detail::jsonEscape(line, series);
    line << "\",\"state\":\"" << (fired ? "firing" : "resolved")
         << "\",\"burn_long\":";
    detail::jsonNumber(line, st.burnLong);
    line << ",\"burn_short\":";
    detail::jsonNumber(line, st.burnShort);
    line << ",\"host\":" << host << "}";
    hub.exportLine(line.str());
}

void
SloEngine::writeTimeline(std::ostream &os) const
{
    os << "{\"alerts\":[";
    for (std::size_t i = 0; i < alerts.size(); ++i) {
        const Alert &a = alerts[i];
        if (i)
            os << ",";
        os << "{\"slo\":\"";
        detail::jsonEscape(os, a.objective);
        os << "\",\"series\":\"";
        detail::jsonEscape(os, a.series);
        os << "\",\"fired_us\":";
        detail::jsonNumber(os, static_cast<double>(a.firedAt) / 1e6);
        os << ",\"resolved_us\":";
        if (a.resolvedAt == sim::kTimeNever)
            os << "null";
        else
            detail::jsonNumber(os, static_cast<double>(a.resolvedAt) / 1e6);
        os << ",\"burn_long\":";
        detail::jsonNumber(os, a.burnLong);
        os << ",\"burn_short\":";
        detail::jsonNumber(os, a.burnShort);
        os << ",\"host\":" << a.host << "}";
    }
    os << "]}";
}

std::string
SloEngine::timelineJson() const
{
    std::ostringstream oss;
    writeTimeline(oss);
    return oss.str();
}

}  // namespace ccsim::obs
