/**
 * @file
 * Live windowed time-series on top of the metrics registry.
 *
 * The registry (PR 1) answers "what are the totals now?"; figures read
 * it once at the end of a run. A 5-simulated-day, 250k-host campaign
 * needs the *trajectory*: ranking p99 per second, retransmit rate per
 * pod, lease churn per hour — while the run is still going. The
 * TimeSeriesHub closes that gap:
 *
 *  - On a fixed simulated-time cadence it rolls every watched registry
 *    metric into one fixed-width window: counters and probes become
 *    deltas and rates, gauges keep their last value, histograms become
 *    **windowed sketches** — exact per-bin count deltas of the
 *    cumulative LogHistogram, so windowed p50/p99/p999 cost O(bins) and
 *    sketches from different shards merge exactly (bin addition).
 *  - Each series is retained in bounded ring buffers at multiple
 *    resolutions (e.g. every window / every 16th / every 256th), so a
 *    full campaign's history fits in O(MB) no matter how long it runs.
 *  - Pattern aggregates (`defineAggregate("ltl.rtt_us", "ltl.*.rtt_us")`)
 *    merge per-node histograms (or sum per-node counters) into fleet
 *    series — the thing an SLO is written against.
 *  - A streaming JSONL exporter (gated by the `CCSIM_TS` environment
 *    variable, like CCSIM_TRACE/CCSIM_SPANS) writes one line per window
 *    in deterministic formatting, and an attached TraceWriter renders
 *    every series as Chrome counter events on the trace timeline.
 *
 * Driving: on a legacy EventQueue the hub schedules a periodic event;
 * on the parallel kernel it registers a ShardedEventQueue barrier hook
 * whose deadlines land exactly on window ends (the PR 6 mechanism), so
 * windowed series are byte-identical across 1/2/4/8 worker threads.
 * Rolling only ever *reads* simulation state: instrumented and bare
 * runs stay bit-identical.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ccsim::sim {
class ShardedEventQueue;
}

namespace ccsim::obs {

/**
 * A mergeable windowed histogram: exact per-bin count deltas between
 * two snapshots of a cumulative LogHistogram. Because bin counts only
 * ever grow, the delta is itself an exact histogram of the samples
 * recorded in the window, and sketches from disjoint histograms (e.g.
 * one per shard) merge by bin addition with no approximation beyond
 * the shared binning.
 */
class HistogramSketch
{
  public:
    HistogramSketch() = default;
    HistogramSketch(double min_value, int bins_per_octave)
        : minVal(min_value), octave(bins_per_octave)
    {
    }

    /**
     * The exact sub-histogram of samples @p cur recorded since the
     * snapshot (@p prev_bins, @p prev_sum). @p prev_bins may be shorter
     * than the current bin vector (bins grow lazily).
     */
    static HistogramSketch since(const sim::LogHistogram &cur,
                                 const std::vector<std::uint64_t> &prev_bins,
                                 double prev_sum);

    /**
     * The sketch of @p cur_bins minus @p prev_bins (cumulative bin
     * snapshots with @p binning), with window sample-sum @p sum_delta.
     * `since` is this applied to one live histogram; aggregates apply it
     * to member-summed bins.
     */
    static HistogramSketch diff(sim::LogHistogram::Binning binning,
                                const std::vector<std::uint64_t> &cur_bins,
                                const std::vector<std::uint64_t> &prev_bins,
                                double sum_delta);

    /** Fold @p other in (exact bin addition; panics on binning mismatch). */
    void merge(const HistogramSketch &other);

    /** Samples in the window. */
    std::uint64_t count() const { return total; }
    /** Sum of window samples. */
    double sum() const { return sumVal; }
    /** Mean of window samples (0 if empty). */
    double mean() const
    {
        return total ? sumVal / static_cast<double>(total) : 0.0;
    }

    /**
     * Approximate p-th percentile (p in [0,100]) of the window, using
     * the geometric bin-midpoint rule of LogHistogram::percentile but
     * clamped to bin edges only (a delta cannot recover the window's
     * exact min/max).
     */
    double percentile(double p) const;

    /** Binning parameters. */
    sim::LogHistogram::Binning binning() const { return {minVal, octave}; }

    /** Drop to an empty sketch, keeping the binning. */
    void clear();

  private:
    double minVal = 0.5;
    int octave = 96;
    std::vector<std::uint64_t> bins;
    std::uint64_t total = 0;
    double sumVal = 0.0;

    double binLowerEdge(std::size_t idx) const;
};

/** What a time series measures (determines which TsPoint fields are set). */
enum class SeriesKind : std::uint8_t {
    kCounter,    ///< monotone counter: value/delta/rate
    kGauge,      ///< explicit gauge: value/delta
    kProbe,      ///< callback gauge: value/delta/rate
    kHistogram,  ///< histogram: count/rate/mean/percentiles
};

/** One windowed sample of one series. */
struct TsPoint {
    sim::TimePs t = 0;  ///< window end (simulated)
    double value = 0.0; ///< cumulative value (histogram: cumulative count)
    double delta = 0.0; ///< increase over the window
    double rate = 0.0;  ///< delta per simulated second
    // --- histogram series only ---
    std::uint64_t count = 0; ///< samples in the window
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

/** One retention level: close a point every @p stride base windows. */
struct TsLevel {
    int stride = 1;
    std::size_t capacity = 512;
};

/** TimeSeriesHub tuning. */
struct TimeSeriesConfig {
    /** Base window width (simulated). */
    sim::TimePs window = sim::kMillisecond;
    /**
     * Retention levels, strides strictly increasing, first stride 1.
     * Defaults keep ~1k points at 1x/16x/256x the base window.
     */
    std::vector<TsLevel> levels = {{1, 1024}, {16, 1024}, {256, 1024}};
    /**
     * Registry paths to watch (metric_names-style globs, `*` matches one
     * or more characters including dots). Empty = watch every path.
     */
    std::vector<std::string> include;

    TimeSeriesConfig &withWindow(sim::TimePs w)
    {
        window = w;
        return *this;
    }
    TimeSeriesConfig &withLevels(std::vector<TsLevel> l)
    {
        levels = std::move(l);
        return *this;
    }
    TimeSeriesConfig &withInclude(std::vector<std::string> globs)
    {
        include = std::move(globs);
        return *this;
    }
};

/**
 * Rolls watched registries into windowed, multi-resolution, bounded
 * time series. Not thread-safe: on the sharded kernel it runs inside
 * barrier hooks on the coordinator thread, between windows, when no
 * worker is executing events.
 *
 * Lifetimes: watched registries, the export stream, and any attached
 * TraceWriter must outlive the hub's last roll; the hub must outlive
 * the queue run it is driving (barrier hooks cannot be deregistered).
 */
class TimeSeriesHub
{
  public:
    explicit TimeSeriesHub(TimeSeriesConfig cfg = {});

    TimeSeriesHub(const TimeSeriesHub &) = delete;
    TimeSeriesHub &operator=(const TimeSeriesHub &) = delete;

    // --- wiring -----------------------------------------------------------

    /**
     * Watch @p reg: every path it holds (now or later — discovery re-runs
     * each window) that passes the include filter becomes a series.
     * Paths must be disjoint across watched registries, as in
     * MetricsRegistry::writeMergedSnapshot.
     */
    void watchRegistry(const MetricsRegistry *reg);

    /**
     * Define a derived series @p name merging every concrete series
     * matching @p pattern: histogram members merge their windowed
     * sketches (identical binning required); counter/probe/gauge members
     * sum. Members may appear later; the kind is fixed by the first
     * match. @p name must not collide with a registry path.
     */
    void defineAggregate(const std::string &name, const std::string &pattern);

    /**
     * Stream JSONL to @p os (nullptr disables): a `meta` line now, a
     * `series` line when each series first appears, one `window` line
     * per base window, and `alert` lines appended by an SLO engine.
     * Deterministic formatting — same-seed runs produce byte-identical
     * streams.
     */
    void exportTo(std::ostream *os);

    /** Render every series as Chrome counter events on @p tw. */
    void attachTrace(TraceWriter *tw) { trace = tw; }

    /**
     * Register the hub's own `ts.*` probes (windows, series, points,
     * exported_lines) on @p reg — pick the shard-0 registry in a
     * sharded build.
     */
    void registerSelfProbes(MetricsRegistry &reg);

    /**
     * Observer invoked after each base window closes (points pushed,
     * window line exported): the SLO engine's hook.
     */
    using WindowObserver = std::function<void(sim::TimePs, std::uint64_t)>;
    void addWindowObserver(WindowObserver fn);

    // --- driving ----------------------------------------------------------

    /**
     * Roll one window ending now (manual driving for tests). @p now must
     * advance by exactly one window per call.
     */
    void rollAt(sim::TimePs now);

    /** Periodic driving on a legacy EventQueue (first window one period
     * from now). Call stopSampling() before draining with runAll(). */
    void startSampling(sim::EventQueue &eq);
    void stopSampling();

    /**
     * Barrier-hook driving on the parallel kernel: window ends become
     * hook deadlines, so rolls happen at exact simulated times on the
     * coordinator thread and the stream is byte-identical across worker
     * thread counts.
     */
    void startSampling(sim::ShardedEventQueue &sq);

    // --- queries ----------------------------------------------------------

    const TimeSeriesConfig &config() const { return cfg; }

    /** Base windows closed so far. */
    std::uint64_t windowsClosed() const { return windowSeq; }

    /** Concrete + aggregate series currently tracked. */
    std::size_t seriesCount() const;

    /** All series names (concrete then aggregate, each sorted). */
    std::vector<std::string> seriesNames() const;

    /** The kind of @p name; panics if unknown. */
    SeriesKind kindOf(const std::string &name) const;

    /** Latest base-window point of @p name (nullptr before its first
     * window or for unknown names). */
    const TsPoint *latest(const std::string &name) const;

    /** Ring contents of @p name at @p level, oldest first. */
    std::vector<TsPoint> history(const std::string &name, int level) const;

    /** Total points currently retained across all rings. */
    std::uint64_t pointsRetained() const;

    /** JSONL lines written so far. */
    std::uint64_t exportedLines() const { return linesOut; }

    /**
     * Append one already-serialized JSONL record (the SLO engine's alert
     * lines) to the export stream, if one is attached.
     */
    void exportLine(const std::string &json);

    /** The CCSIM_TS path, or "" when unset. */
    static std::string envPath();

  private:
    /** Fixed-capacity ring of points. */
    struct Ring {
        std::vector<TsPoint> buf;
        std::size_t head = 0;  ///< next write slot once full
        std::size_t used = 0;
        std::size_t cap = 0;

        void push(const TsPoint &p);
        const TsPoint *latestPoint() const
        {
            if (used == 0)
                return nullptr;
            return &buf[(head + buf.size() - 1) % buf.size()];
        }
    };

    /** Per-level rollup state of one series. */
    struct LevelState {
        double prevValue = 0.0;
        std::vector<std::uint64_t> prevBins;  ///< histogram series only
        double prevSum = 0.0;
        Ring ring;
    };

    /** One concrete series bound to a registry metric. */
    struct Series {
        SeriesKind kind = SeriesKind::kCounter;
        const sim::Counter *counter = nullptr;
        const Gauge *gauge = nullptr;
        const sim::LogHistogram *hist = nullptr;
        const MetricsRegistry *reg = nullptr;  ///< probe owner
        std::vector<LevelState> levels;
    };

    /** One derived series merging pattern-matched members. */
    struct Aggregate {
        std::string pattern;
        SeriesKind kind = SeriesKind::kCounter;
        std::vector<const Series *> members;
        std::vector<std::string> memberNames;
        std::size_t seenSeries = 0;  ///< concrete count at last refresh
        bool announced = false;
        std::vector<LevelState> levels;
    };

    TimeSeriesConfig cfg;
    std::vector<const MetricsRegistry *> regs;
    /** registry->version() at the last discover(), parallel to regs. */
    std::vector<std::uint64_t> regVersions;
    std::map<std::string, Series> series;
    std::map<std::string, Aggregate> aggregates;
    std::vector<WindowObserver> observers;

    std::ostream *out = nullptr;
    TraceWriter *trace = nullptr;

    std::uint64_t windowSeq = 0;
    std::uint64_t linesOut = 0;

    sim::EventQueue *samplerQueue = nullptr;
    sim::EventId samplerEvent = sim::kNoEvent;

    void scheduleTick();
    bool includes(const std::string &path) const;
    void discover();
    void refreshAggregate(const std::string &name, Aggregate &agg);
    void announceSeries(const std::string &name, SeriesKind kind);
    void rollSeries(const std::string &name, Series &s, sim::TimePs now);
    void rollAggregate(const std::string &name, Aggregate &agg,
                       sim::TimePs now);
    TsPoint scalarPoint(sim::TimePs now, double cur, LevelState &lv) const;
    void exportWindow(sim::TimePs now);
    void traceWindow(sim::TimePs now);
    static const char *kindName(SeriesKind k);
};

}  // namespace ccsim::obs
