/**
 * @file
 * Declarative SLOs with multi-window burn-rate alerting.
 *
 * An objective names a windowed statistic of a TimeSeriesHub series
 * (`ranking.latency_ms p99 < 9ms`, `ltl.retransmits rate < 1e3/s`) and
 * an **error budget**: the fraction of windows allowed to violate it.
 * Each closed base window is classified good/bad per matching series;
 * the burn rate is the observed bad-window fraction divided by the
 * budget, evaluated over a long and a short trailing window (the
 * SRE-workbook construction: the long window gives significance, the
 * short window fast reset). An alert fires when **both** burn rates
 * reach the threshold and resolves when the short one recovers.
 *
 * Alerts are deterministic simulated-time events: they fire at window
 * closes driven by the hub (barrier hooks on the parallel kernel), are
 * recorded on an inspectable timeline, exported as `alert` JSONL lines,
 * counted under `slo.*` metrics, and — through the evidence sink — file
 * named-source evidence into the PR 5 HealthMonitor (wire
 * `HealthMonitor::evidenceSink()`), so a burning SLO can drive failover
 * *before* the heartbeat detector's worst-case bound.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "sim/time.hpp"

namespace ccsim::obs {

/** Which TsPoint field an objective tests. */
enum class SloStat : std::uint8_t {
    kValue,  ///< cumulative value / gauge level
    kDelta,  ///< increase over the window
    kRate,   ///< delta per simulated second
    kCount,  ///< histogram samples in the window
    kMean,   ///< histogram window mean
    kP50,
    kP90,
    kP99,
    kP999,
};

/** Objective direction: good when stat < / > threshold. */
enum class SloCmp : std::uint8_t { kLt, kGt };

/** One service-level objective. */
struct SloObjective {
    /** Alert/metric name (one dotted-path segment, e.g. "ranking_p99"). */
    std::string name;
    /** Hub series glob the objective applies to (per matching series). */
    std::string series;
    SloStat stat = SloStat::kP99;
    SloCmp cmp = SloCmp::kLt;
    double threshold = 0.0;
    /** Tolerated bad-window fraction (error budget), in (0, 1]. */
    double errorBudget = 0.05;
    /** Long / short trailing evaluation windows, in base windows. */
    int longWindows = 60;
    int shortWindows = 5;
    /** Fire when both burn rates reach this multiple of the budget. */
    double burnThreshold = 2.0;
    /**
     * Evidence weight filed per fire against the series' host (parsed
     * from a `node<i>` path segment); 0 disables evidence.
     */
    double evidenceWeight = 0.0;

    // --- fluent setters ---

    SloObjective &on(std::string series_glob)
    {
        series = std::move(series_glob);
        return *this;
    }
    SloObjective &where(SloStat s, SloCmp c, double thresh)
    {
        stat = s;
        cmp = c;
        threshold = thresh;
        return *this;
    }
    SloObjective &withBudget(double budget)
    {
        errorBudget = budget;
        return *this;
    }
    SloObjective &withWindows(int long_w, int short_w)
    {
        longWindows = long_w;
        shortWindows = short_w;
        return *this;
    }
    SloObjective &withBurnThreshold(double t)
    {
        burnThreshold = t;
        return *this;
    }
    SloObjective &withEvidence(double weight)
    {
        evidenceWeight = weight;
        return *this;
    }
};

/**
 * Evaluates objectives at every hub window close. Construct after the
 * hub; both must outlive the simulation run. Not thread-safe (runs in
 * the hub's window observer, on the coordinator thread).
 */
class SloEngine
{
  public:
    /**
     * Evidence receiver: (host, source, weight). Matches
     * HealthMonitor::reportEvidence — wire hm.evidenceSink() — or any
     * custom sink (e.g. forwarding to an OutlierDetector).
     */
    using EvidenceFn =
        std::function<void(int, const std::string &, double)>;

    /** One fired alert (still firing while resolvedAt == kTimeNever). */
    struct Alert {
        std::string objective;
        std::string series;
        sim::TimePs firedAt = 0;
        sim::TimePs resolvedAt = sim::kTimeNever;
        double burnLong = 0.0;
        double burnShort = 0.0;
        int host = -1;
    };

    explicit SloEngine(TimeSeriesHub &hub);

    SloEngine(const SloEngine &) = delete;
    SloEngine &operator=(const SloEngine &) = delete;

    /** Add @p obj (validated; duplicate names panic). */
    SloEngine &addObjective(SloObjective obj);

    /** Register `slo.<name>.*` metrics for every objective on @p reg. */
    void attachObservability(MetricsRegistry &reg);

    /** Emit an instant event on the "slo" track per fire/resolve. */
    void attachTrace(TraceWriter *tw) { trace = tw; }

    /** Install the evidence receiver for objectives with evidence. */
    void setEvidenceSink(EvidenceFn fn) { evidence = std::move(fn); }

    // --- inspection -------------------------------------------------------

    /** Every alert ever fired, in fire order. */
    const std::vector<Alert> &timeline() const { return alerts; }

    std::uint64_t alertsFired() const { return firedCount; }
    std::uint64_t alertsResolved() const { return resolvedCount; }

    /** Alerts currently firing. */
    std::size_t firingCount() const
    {
        return static_cast<std::size_t>(firedCount - resolvedCount);
    }

    /**
     * Deterministic JSON of the full alert timeline (the CI
     * byte-identical artifact).
     */
    void writeTimeline(std::ostream &os) const;
    std::string timelineJson() const;

    /**
     * The host index embedded in a series name as a `node<i>` dotted
     * segment ("ltl.node17.retransmits" -> 17), or -1 when absent.
     */
    static int hostFromSeries(const std::string &series);

  private:
    /** Trailing good/bad ring of one (objective, series) pair. */
    struct SeriesState {
        std::vector<std::uint8_t> bad;  ///< ring, capacity longWindows
        std::size_t head = 0;
        std::size_t used = 0;
        bool firing = false;
        std::size_t alertIdx = 0;  ///< into alerts while firing
        double burnLong = 0.0;
        double burnShort = 0.0;
    };

    struct Objective {
        SloObjective spec;
        std::map<std::string, SeriesState> states;
        std::size_t seenSeries = 0;
        sim::Counter *alertCounter = nullptr;
        sim::Counter *resolveCounter = nullptr;
    };

    TimeSeriesHub &hub;
    /** unique_ptr: registered probes capture stable Objective pointers. */
    std::vector<std::unique_ptr<Objective>> objectives;
    MetricsRegistry *metrics = nullptr;
    TraceWriter *trace = nullptr;
    EvidenceFn evidence;
    std::vector<Alert> alerts;
    std::uint64_t firedCount = 0;
    std::uint64_t resolvedCount = 0;

    void onWindow(sim::TimePs t, std::uint64_t seq);
    void evaluate(Objective &obj, const std::string &name, SeriesState &st,
                  const TsPoint &p, sim::TimePs t);
    void bindMetrics(Objective &obj);
    void exportAlert(const Objective &obj, const std::string &series,
                     const SeriesState &st, sim::TimePs t, bool fired,
                     int host);
    static double statOf(const TsPoint &p, SloStat s);
};

}  // namespace ccsim::obs
