/**
 * @file
 * Chrome trace-event exporter.
 *
 * Records spans ("X" complete events), instants ("i") and counter series
 * ("C") in *simulated* time and serializes them as Chrome trace-event
 * JSON (the array-of-events format understood by chrome://tracing and
 * Perfetto). Timestamps are emitted in microseconds of simulated time.
 *
 * The writer is enable-gated: all record calls are no-ops while disabled,
 * so instrumented components can call unconditionally without perturbing
 * (or paying for) un-traced runs. Recording only ever *reads* simulation
 * state, which keeps traced and untraced runs bit-identical.
 */
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ccsim::obs {

/** One recorded trace event (internal representation, pre-serialization). */
struct TraceEvent {
    char phase = 'i';        ///< 'X' complete, 'i' instant, 'C' counter,
                             ///< 's'/'t'/'f' flow start/step/finish
    int tid = 0;             ///< track id (see TraceWriter::track)
    sim::TimePs ts = 0;      ///< event start, simulated picoseconds
    sim::TimePs dur = 0;     ///< duration for 'X' events
    double value = 0.0;      ///< counter value for 'C' events
    std::uint64_t flowId = 0; ///< flow binding id for 's'/'t'/'f' events
    /** Named sub-series of a multi-value 'C' event (empty = use value). */
    std::vector<std::pair<std::string, double>> multi;
    std::string cat;         ///< category (top-level component family)
    std::string name;        ///< event name
};

/**
 * Collects trace events in memory and writes Chrome trace-event JSON.
 */
class TraceWriter
{
  public:
    TraceWriter() = default;
    /** Flushes via the auto-flush path if one is armed and dirty. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Enable or disable recording (disabled by default). */
    void setEnabled(bool on) { recording = on; }
    /** True if record calls are currently captured. */
    bool enabled() const { return recording; }

    /**
     * A stable integer track ("thread") id for a named timeline, created
     * on first use. Spans and instants on one track render as one row.
     */
    int track(const std::string &name);

    /** Record a completed span: [start, start+duration). */
    void complete(int tid, std::string_view cat, std::string_view name,
                  sim::TimePs start, sim::TimePs duration);

    /** Record an instantaneous event. */
    void instant(int tid, std::string_view cat, std::string_view name,
                 sim::TimePs ts);

    /** Record one point of a counter series. */
    void counter(std::string_view cat, std::string_view name, sim::TimePs ts,
                 double value);

    /**
     * Record one point of a *multi-value* counter series: all named
     * sub-series render stacked on one timeline row (Chrome counter
     * events carry one args entry per sub-series), e.g. p50/p99 of a
     * windowed latency series. @p values must be non-empty.
     */
    void counterMulti(std::string_view cat, std::string_view name,
                      sim::TimePs ts,
                      std::vector<std::pair<std::string, double>> values);

    /**
     * Record one point of a Chrome *flow* ('s' start, 't' step, 'f'
     * finish). Points sharing @p flow_id render as one arrow chain across
     * tracks; the finish point binds to the enclosing slice ("bp":"e").
     */
    void flowPoint(char phase, int tid, std::string_view cat,
                   std::string_view name, sim::TimePs ts,
                   std::uint64_t flow_id);

    /** Number of events recorded so far. */
    std::size_t eventCount() const { return events.size(); }

    /** Categories seen so far (sorted, deduplicated). */
    std::vector<std::string> categories() const;

    /** Drop all recorded events (track ids are retained). */
    void clear() { events.clear(); }

    /** Serialize everything as Chrome trace-event JSON. */
    void write(std::ostream &os) const;

    /** write() to a string. */
    std::string json() const;

    /** write() to a file. @return false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /**
     * Arm an abnormal-termination flush: if the process exits (normally
     * or via std::exit, e.g. sim::fatal) while this writer still holds
     * unwritten events, they are flushed to @p path so truncated runs
     * yield a loadable trace. Safe against static destruction order: the
     * flush registry is a function-local static constructed before the
     * std::atexit handler is registered, and the writer deregisters
     * itself on destruction. Writing (write/writeFile/json) marks the
     * buffer clean; new record calls re-dirty it.
     */
    void autoFlushOnExit(const std::string &path);

    /** Disarm a previously armed auto-flush. */
    void cancelAutoFlush();

    /** True if events were recorded since the last write. */
    bool dirty() const { return hasUnwritten; }

    /**
     * The trace output path requested via the CCSIM_TRACE environment
     * variable, or "" if unset. Benches use this to gate trace export.
     */
    static std::string envPath();

  private:
    bool recording = false;
    mutable bool hasUnwritten = false;
    std::string flushPath;  ///< non-empty while auto-flush is armed
    std::vector<TraceEvent> events;
    std::map<std::string, int> tracks;
    int nextTid = 1;

    void flushIfDirty();
    friend void traceWriterFlushAllAtExit();
};

}  // namespace ccsim::obs
