#include "obs/flow_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ccsim::obs {

namespace {

/** Minimal JSON string escaping (hop/flow names are ASCII identifiers). */
void
escapeTo(std::ostream &os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

void
intTo(std::ostream &os, std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    os << buf;
}

/** A span clipped to the flow window. */
struct ClippedSpan {
    sim::TimePs start;
    sim::TimePs end;
    const Span *span;
};

/**
 * Timeline sweep over [t.start, t.end): cut the window at every clipped
 * span boundary and hand each segment to @p emit together with the
 * winning span (highest priority = lowest Component ordinal, ties broken
 * by lowest span id) or nullptr when no span covers the segment. The
 * segments partition the window, which is what makes the attribution sum
 * exact by construction.
 */
template <typename Fn>
void
sweepTimeline(const FlowTrace &t, Fn &&emit)
{
    const sim::TimePs t0 = t.start;
    const sim::TimePs t1 = t.end;
    if (t1 <= t0)
        return;
    std::vector<ClippedSpan> clipped;
    std::vector<sim::TimePs> cuts;
    cuts.push_back(t0);
    cuts.push_back(t1);
    for (const Span &s : t.spans) {
        const sim::TimePs a = std::max(s.start, t0);
        const sim::TimePs b = std::min(s.end, t1);
        if (b <= a)
            continue;
        clipped.push_back(ClippedSpan{a, b, &s});
        cuts.push_back(a);
        cuts.push_back(b);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        const sim::TimePs a = cuts[i];
        const sim::TimePs b = cuts[i + 1];
        const Span *best = nullptr;
        for (const ClippedSpan &c : clipped) {
            if (c.start > a || c.end < b)
                continue;
            if (best == nullptr ||
                static_cast<int>(c.span->comp) <
                    static_cast<int>(best->comp) ||
                (c.span->comp == best->comp && c.span->id < best->id))
                best = c.span;
        }
        emit(best, b - a);
    }
}

}  // namespace

const char *
componentName(Component c)
{
    switch (c) {
    case Component::kRetransmit:
        return "retransmit";
    case Component::kPfcPause:
        return "pfc_pause";
    case Component::kCompute:
        return "compute";
    case Component::kSerialization:
        return "serialization";
    case Component::kPropagation:
        return "propagation";
    case Component::kCongestionWindow:
        return "congestion_window";
    case Component::kQueueing:
        return "queueing";
    }
    return "unknown";
}

LatencyAttribution
attributeLatency(const FlowTrace &t)
{
    LatencyAttribution a;
    a.total = t.latency() < 0 ? 0 : t.latency();
    sweepTimeline(t, [&a](const Span *best, sim::TimePs dur) {
        const Component c = best ? best->comp : Component::kQueueing;
        a.byComponent[static_cast<int>(c)] += dur;
    });
    return a;
}

std::vector<HopAttribution>
attributeByHop(const FlowTrace &t)
{
    std::vector<HopAttribution> rows;
    auto row = [&rows](std::string_view hop) -> HopAttribution & {
        for (auto &r : rows)
            if (r.hop == hop)
                return r;
        rows.push_back(HopAttribution{std::string(hop), {}});
        return rows.back();
    };
    sweepTimeline(t, [&](const Span *best, sim::TimePs dur) {
        if (best) {
            row(best->hop)
                .byComponent[static_cast<int>(best->comp)] += dur;
        } else {
            row("(unattributed)")
                .byComponent[static_cast<int>(Component::kQueueing)] += dur;
        }
    });
    return rows;
}

std::string
formatAttributionTable(const FlowTrace &t)
{
    const auto rows = attributeByHop(t);
    const auto attr = attributeLatency(t);
    std::ostringstream os;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "flow %s (id %llu): total %.3f us%s\n", t.flow.c_str(),
                  static_cast<unsigned long long>(t.traceId),
                  sim::toMicros(attr.total),
                  attr.consistent() ? "" : "  [INCONSISTENT]");
    os << buf;
    std::snprintf(buf, sizeof buf,
                  "  %-28s %9s %9s %9s %9s %9s %9s %9s %10s\n", "hop",
                  "retx", "pfc", "compute", "serial", "prop", "cwnd",
                  "queue", "total(us)");
    os << buf;
    auto us = [](sim::TimePs ps) { return sim::toMicros(ps); };
    for (const auto &r : rows) {
        std::snprintf(
            buf, sizeof buf,
            "  %-28s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %10.3f\n",
            r.hop.c_str(),
            us(r.byComponent[static_cast<int>(Component::kRetransmit)]),
            us(r.byComponent[static_cast<int>(Component::kPfcPause)]),
            us(r.byComponent[static_cast<int>(Component::kCompute)]),
            us(r.byComponent[static_cast<int>(Component::kSerialization)]),
            us(r.byComponent[static_cast<int>(Component::kPropagation)]),
            us(r.byComponent[static_cast<int>(
                Component::kCongestionWindow)]),
            us(r.byComponent[static_cast<int>(Component::kQueueing)]),
            us(r.total()));
        os << buf;
    }
    std::snprintf(
        buf, sizeof buf,
        "  %-28s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %10.3f\n",
        "(total)", us(attr.of(Component::kRetransmit)),
        us(attr.of(Component::kPfcPause)), us(attr.of(Component::kCompute)),
        us(attr.of(Component::kSerialization)),
        us(attr.of(Component::kPropagation)),
        us(attr.of(Component::kCongestionWindow)),
        us(attr.of(Component::kQueueing)), us(attr.sum()));
    os << buf;
    return os.str();
}

// ---------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------

void
FlightRecorder::setTailCapacity(std::size_t n)
{
    tailCap = n;
    while (kept.size() > tailCap) {
        // Evict the least-bad exemplar (lowest latency; ties: newest).
        std::size_t min_i = 0;
        for (std::size_t i = 1; i < kept.size(); ++i) {
            if (kept[i].latency() < kept[min_i].latency() ||
                (kept[i].latency() == kept[min_i].latency() &&
                 kept[i].traceId > kept[min_i].traceId))
                min_i = i;
        }
        dropSpans(kept[min_i].spans.size());
        kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(min_i));
    }
}

void
FlightRecorder::bindMetrics(MetricsRegistry &reg)
{
    mSampled = &reg.counter("trace.sampled_flows");
    mDropped = &reg.counter("trace.dropped_spans");
    // Fold in anything recorded before the bind.
    if (sampledCount > mSampled->get())
        mSampled->inc(sampledCount - mSampled->get());
    if (droppedCount > mDropped->get())
        mDropped->inc(droppedCount - mDropped->get());
}

FlowTrace *
FlightRecorder::findActive(const TraceContext &ctx)
{
    auto it = active.find(ctx.traceId);
    return it == active.end() ? nullptr : &it->second;
}

void
FlightRecorder::dropSpans(std::uint64_t n)
{
    if (n == 0)
        return;
    droppedCount += n;
    if (mDropped)
        mDropped->inc(n);
}

TraceContext
FlightRecorder::beginFlow(std::string_view flow, sim::TimePs now)
{
    if (!on)
        return TraceContext{};
    ++started;
    if (decimator++ % every != 0)
        return TraceContext{};
    TraceContext ctx;
    ctx.traceId = nextTraceId++;
    ctx.sampled = true;
    FlowTrace t;
    t.traceId = ctx.traceId;
    t.flow = std::string(flow);
    t.start = now;
    t.end = now;
    active.emplace(ctx.traceId, std::move(t));
    ++sampledCount;
    if (mSampled)
        mSampled->inc();
    return ctx;
}

void
FlightRecorder::recordSpan(const TraceContext &ctx, std::string_view hop,
                           Component comp, sim::TimePs start,
                           sim::TimePs end)
{
    if (!ctx.sampled)
        return;
    FlowTrace *t = findActive(ctx);
    if (t == nullptr) {
        // Late span: the flow already completed (e.g. an ER delivery
        // racing the flow-ending ACK) or was abandoned.
        dropSpans(1);
        return;
    }
    if (t->spans.size() >= maxSpans) {
        ++t->droppedSpans;
        dropSpans(1);
        return;
    }
    Span s;
    s.id = t->nextSpanId++;
    s.parent = ctx.parentSpan;
    s.comp = comp;
    s.start = start;
    s.end = end < start ? start : end;
    s.hop = std::string(hop);
    t->spans.push_back(std::move(s));
}

std::uint32_t
FlightRecorder::openSpan(const TraceContext &ctx, std::string_view hop,
                         Component comp, sim::TimePs start)
{
    if (!ctx.sampled)
        return 0;
    FlowTrace *t = findActive(ctx);
    if (t == nullptr) {
        dropSpans(1);
        return 0;
    }
    if (t->spans.size() >= maxSpans) {
        ++t->droppedSpans;
        dropSpans(1);
        return 0;
    }
    Span s;
    s.id = t->nextSpanId++;
    s.parent = ctx.parentSpan;
    s.comp = comp;
    s.start = start;
    s.end = start;  // closed by closeSpan()
    s.hop = std::string(hop);
    t->spans.push_back(std::move(s));
    return t->spans.back().id;
}

void
FlightRecorder::closeSpan(const TraceContext &ctx, std::uint32_t span_id,
                          sim::TimePs end)
{
    if (!ctx.sampled || span_id == 0)
        return;
    FlowTrace *t = findActive(ctx);
    if (t == nullptr)
        return;
    // Open spans are close to the tail in practice; search backwards.
    for (auto it = t->spans.rbegin(); it != t->spans.rend(); ++it) {
        if (it->id == span_id) {
            if (end > it->start)
                it->end = end;
            return;
        }
    }
}

void
FlightRecorder::endFlow(const TraceContext &ctx, sim::TimePs end)
{
    if (!ctx.sampled)
        return;
    auto it = active.find(ctx.traceId);
    if (it == active.end())
        return;
    FlowTrace t = std::move(it->second);
    active.erase(it);
    t.end = end < t.start ? t.start : end;
    ++completedCount;
    keep(std::move(t));
}

void
FlightRecorder::abandonFlow(const TraceContext &ctx)
{
    if (!ctx.sampled)
        return;
    auto it = active.find(ctx.traceId);
    if (it == active.end())
        return;
    dropSpans(it->second.spans.size());
    active.erase(it);
}

void
FlightRecorder::keep(FlowTrace &&t)
{
    if (tailCap == 0) {
        dropSpans(t.spans.size());
        return;
    }
    if (kept.size() < tailCap) {
        kept.push_back(std::move(t));
        return;
    }
    // Tail bias: replace the least-bad exemplar only if strictly worse.
    std::size_t min_i = 0;
    for (std::size_t i = 1; i < kept.size(); ++i) {
        if (kept[i].latency() < kept[min_i].latency() ||
            (kept[i].latency() == kept[min_i].latency() &&
             kept[i].traceId > kept[min_i].traceId))
            min_i = i;
    }
    if (t.latency() > kept[min_i].latency()) {
        dropSpans(kept[min_i].spans.size());
        kept[min_i] = std::move(t);
    } else {
        dropSpans(t.spans.size());
    }
}

void
FlightRecorder::newWindow()
{
    kept.clear();
}

std::vector<const FlowTrace *>
FlightRecorder::worstFirst() const
{
    std::vector<const FlowTrace *> out;
    out.reserve(kept.size());
    for (const auto &t : kept)
        out.push_back(&t);
    std::sort(out.begin(), out.end(),
              [](const FlowTrace *a, const FlowTrace *b) {
                  if (a->latency() != b->latency())
                      return a->latency() > b->latency();
                  return a->traceId < b->traceId;
              });
    return out;
}

void
FlightRecorder::writeSpanDump(std::ostream &os) const
{
    std::vector<const FlowTrace *> byId;
    byId.reserve(kept.size());
    for (const auto &t : kept)
        byId.push_back(&t);
    std::sort(byId.begin(), byId.end(),
              [](const FlowTrace *a, const FlowTrace *b) {
                  return a->traceId < b->traceId;
              });
    os << "{\"flows\":[";
    bool first_flow = true;
    for (const FlowTrace *t : byId) {
        if (!first_flow)
            os << ",";
        first_flow = false;
        os << "{\"id\":";
        intTo(os, static_cast<std::int64_t>(t->traceId));
        os << ",\"flow\":\"";
        escapeTo(os, t->flow);
        os << "\",\"start_ps\":";
        intTo(os, t->start);
        os << ",\"end_ps\":";
        intTo(os, t->end);
        os << ",\"total_ps\":";
        intTo(os, t->latency());
        const LatencyAttribution a = attributeLatency(*t);
        os << ",\"attribution\":{";
        for (int c = 0; c < kNumComponents; ++c) {
            if (c > 0)
                os << ",";
            os << "\"" << componentName(static_cast<Component>(c))
               << "_ps\":";
            intTo(os, a.byComponent[c]);
        }
        os << ",\"sum_ps\":";
        intTo(os, a.sum());
        os << ",\"consistent\":" << (a.consistent() ? "true" : "false");
        os << "},\"dropped_spans\":";
        intTo(os, t->droppedSpans);
        os << ",\"spans\":[";
        bool first_span = true;
        for (const Span &s : t->spans) {
            if (!first_span)
                os << ",";
            first_span = false;
            os << "{\"id\":";
            intTo(os, s.id);
            os << ",\"parent\":";
            intTo(os, s.parent);
            os << ",\"component\":\"" << componentName(s.comp)
               << "\",\"hop\":\"";
            escapeTo(os, s.hop);
            os << "\",\"start_ps\":";
            intTo(os, s.start);
            os << ",\"end_ps\":";
            intTo(os, s.end);
            os << "}";
        }
        os << "]}";
    }
    os << "],\"flows_started\":";
    intTo(os, static_cast<std::int64_t>(started));
    os << ",\"flows_sampled\":";
    intTo(os, static_cast<std::int64_t>(sampledCount));
    os << ",\"flows_completed\":";
    intTo(os, static_cast<std::int64_t>(completedCount));
    os << ",\"spans_dropped\":";
    intTo(os, static_cast<std::int64_t>(droppedCount));
    os << "}";
}

std::string
FlightRecorder::spanDumpJson() const
{
    std::ostringstream oss;
    writeSpanDump(oss);
    return oss.str();
}

bool
FlightRecorder::writeSpanDumpFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeSpanDump(f);
    return static_cast<bool>(f);
}

void
FlightRecorder::exportChromeTrace(TraceWriter &tw) const
{
    std::vector<const FlowTrace *> byId;
    byId.reserve(kept.size());
    for (const auto &t : kept)
        byId.push_back(&t);
    std::sort(byId.begin(), byId.end(),
              [](const FlowTrace *a, const FlowTrace *b) {
                  return a->traceId < b->traceId;
              });
    for (const FlowTrace *t : byId) {
        for (std::size_t i = 0; i < t->spans.size(); ++i) {
            const Span &s = t->spans[i];
            const int tid = tw.track("flow:" + s.hop);
            tw.complete(tid, "flow", componentName(s.comp), s.start,
                        s.end - s.start);
            // Chain the spans with Chrome flow arrows carrying the id.
            const char phase = i == 0 ? 's'
                               : i + 1 == t->spans.size() ? 'f'
                                                          : 't';
            tw.flowPoint(phase, tid, "flow", t->flow, s.start, t->traceId);
        }
    }
}

std::string
FlightRecorder::envPath()
{
    const char *p = std::getenv("CCSIM_SPANS");
    return p ? std::string(p) : std::string();
}

}  // namespace ccsim::obs
