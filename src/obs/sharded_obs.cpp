#include "obs/sharded_obs.hpp"

#include <sstream>

#include "sim/logging.hpp"
#include "sim/sharded_queue.hpp"

namespace ccsim::obs {

ShardedObservability::ShardedObservability(int shards)
{
    if (shards < 1)
        sim::panicf("ShardedObservability: shards must be >= 1, got ",
                    shards);
    hubs.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
        auto hub = std::make_unique<Observability>();
        // Disjoint flow-id regions keep merged span dumps collision-free
        // (and shard-stable: ids depend on the shard index, not on the
        // interleaving of flows across shards).
        hub->flows.setTraceIdStart(
            (static_cast<std::uint64_t>(i) << 48) | 1u);
        hubs.push_back(std::move(hub));
    }
}

Observability &
ShardedObservability::shard(int i)
{
    if (i < 0 || i >= shardCount())
        sim::panicf("ShardedObservability::shard: index ", i,
                    " out of range [0, ", shardCount(), ")");
    return *hubs[static_cast<std::size_t>(i)];
}

const Observability &
ShardedObservability::shard(int i) const
{
    if (i < 0 || i >= shardCount())
        sim::panicf("ShardedObservability::shard: index ", i,
                    " out of range [0, ", shardCount(), ")");
    return *hubs[static_cast<std::size_t>(i)];
}

void
ShardedObservability::writeMergedSnapshot(std::ostream &os) const
{
    std::vector<const MetricsRegistry *> regs;
    regs.reserve(hubs.size());
    for (const auto &hub : hubs)
        regs.push_back(&hub->registry);
    MetricsRegistry::writeMergedSnapshot(os, regs);
}

std::string
ShardedObservability::mergedSnapshotJson() const
{
    std::ostringstream oss;
    writeMergedSnapshot(oss);
    return oss.str();
}

void
ShardedObservability::writeMergedSpanDump(std::ostream &os) const
{
    os << "{";
    for (std::size_t i = 0; i < hubs.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\"" << i << "\":";
        hubs[i]->flows.writeSpanDump(os);
    }
    os << "}";
}

std::string
ShardedObservability::mergedSpanDumpJson() const
{
    std::ostringstream oss;
    writeMergedSpanDump(oss);
    return oss.str();
}

void
ShardedObservability::startSampling(sim::ShardedEventQueue &sq,
                                    sim::TimePs period)
{
    if (period <= 0)
        sim::fatal("ShardedObservability::startSampling: period must be > 0");
    const sim::TimePs first = sq.now() + period;
    sq.atBarrier(
        [this, period, due = first](sim::TimePs e) mutable -> sim::TimePs {
            // The hook runs at every barrier; deadlines guarantee one
            // lands exactly on each sampling instant.
            if (e == due) {
                for (const auto &hub : hubs)
                    hub->registry.sampleAt(e);
                due += period;
            }
            return due;
        },
        first);
}

void
registerShardProbes(MetricsRegistry &registry,
                    const sim::ShardedEventQueue &sq)
{
    const sim::ShardedEventQueue *q = &sq;
    // No thread-count probe: worker threads are an execution parameter,
    // not a property of the simulation, and snapshots must stay
    // byte-identical across thread counts (the same reason
    // sim.queue.events_per_sec is per simulated second, not wall time).
    registry.registerProbe("sim.shard.partitions", [q] {
        return static_cast<double>(q->partitionCount());
    });
    registry.registerProbe("sim.shard.windows", [q] {
        return static_cast<double>(q->windowsRun());
    });
    registry.registerProbe("sim.shard.cross_messages", [q] {
        return static_cast<double>(q->crossMessages());
    });
    registry.registerProbe("sim.shard.events", [q] {
        return static_cast<double>(q->eventsExecuted());
    });
    for (int p = 0; p < sq.partitionCount(); ++p) {
        registry.registerProbe(
            "sim.shard.partition" + std::to_string(p) + ".events",
            [q, p] {
                return static_cast<double>(q->partition(p).eventsExecuted());
            });
    }
}

}  // namespace ccsim::obs
