/**
 * @file
 * Observability for partitioned simulations: one hub per shard, merged
 * deterministic exports, probe sampling at barrier sync points.
 *
 * A sharded simulation cannot share one MetricsRegistry across worker
 * threads — registry maps are not thread-safe, and locking the metrics
 * hot path would serialize the very loop the partitioning parallelizes.
 * Instead each partition gets its *own* full Observability hub
 * (registry + trace writer + flight recorder), mutated only by the
 * worker that owns the partition, Envoy-thread-local-store style. The
 * "flush" is lock-free by construction: the barrier that ends a window
 * already publishes every shard's writes to the coordinator, which then
 * reads the registries (sampling, snapshots) between windows only.
 *
 * Exports stay deterministic and byte-identical across thread counts:
 * merged snapshots are sorted path merges of per-shard registries
 * (duplicate paths panic — components must shard disjointly), and each
 * shard's flight recorder allocates flow ids in a disjoint region
 * (shard index << 48) so merged span dumps never collide.
 */
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace ccsim::sim {
class ShardedEventQueue;
}

namespace ccsim::obs {

/** Per-shard Observability hubs with merged deterministic exports. */
class ShardedObservability
{
  public:
    /** Create @p shards independent hubs (one per partition). */
    explicit ShardedObservability(int shards);

    int shardCount() const { return static_cast<int>(hubs.size()); }

    /** The hub components of shard @p i attach their metrics to. */
    Observability &shard(int i);
    const Observability &shard(int i) const;

    /**
     * One snapshot spanning every shard, in MetricsRegistry snapshot
     * format, deterministic (sorted merged paths). Call between runs or
     * after a barrier, never while a window is executing.
     */
    void writeMergedSnapshot(std::ostream &os) const;
    std::string mergedSnapshotJson() const;

    /**
     * Every shard's kept flow exemplars as one deterministic JSON span
     * dump: a JSON object mapping shard index ("0", "1", ...) to that
     * shard's FlightRecorder::writeSpanDump() output.
     */
    void writeMergedSpanDump(std::ostream &os) const;
    std::string mergedSpanDumpJson() const;

    /**
     * Sample every shard's probes every @p period of simulated time, at
     * barrier sync points: registers a barrier hook on @p sq whose
     * deadlines force a window boundary at each multiple of the period
     * (first tick one period after now, mirroring
     * MetricsRegistry::startSampling). Probes are therefore read at
     * deterministic simulated times with no window in flight, not
     * mid-execution from another thread.
     */
    void startSampling(sim::ShardedEventQueue &sq, sim::TimePs period);

  private:
    std::vector<std::unique_ptr<Observability>> hubs;
};

/**
 * Export parallel-kernel health probes for @p sq under `sim.shard.*`
 * (the partitioned counterpart of registerEventQueueProbes):
 *
 *  - `sim.shard.partitions` — logical processes (no thread-count probe:
 *    worker threads are an execution parameter, and snapshots must be
 *    byte-identical across thread counts);
 *  - `sim.shard.windows` — conservative sync windows executed;
 *  - `sim.shard.cross_messages` — cross-partition messages delivered;
 *  - `sim.shard.events` — events executed, summed over partitions;
 *  - `sim.shard.partition<p>.events` — per-partition event counts
 *    (the load-balance view).
 *
 * Register into exactly one shard's registry (by convention shard 0) so
 * merged snapshots carry the paths once. @p sq must outlive @p registry.
 */
void registerShardProbes(MetricsRegistry &registry,
                         const sim::ShardedEventQueue &sq);

}  // namespace ccsim::obs
