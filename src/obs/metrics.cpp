#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <string_view>

#include "obs/json_util.hpp"
#include "sim/logging.hpp"

namespace ccsim::obs {

MetricsRegistry::~MetricsRegistry()
{
    // Safe as long as the EventQueue outlives the registry (declare the
    // queue first; see Observability usage in the benches/tests).
    stopSampling();
}

void
MetricsRegistry::checkNewPath(const std::string &path, const char *kind) const
{
    if (path.empty())
        sim::panic("MetricsRegistry: empty metric path");
    const bool taken =
        (counters.count(path) && std::string_view(kind) != "counter") ||
        (gauges.count(path) && std::string_view(kind) != "gauge") ||
        (histograms.count(path) && std::string_view(kind) != "histogram") ||
        (probes.count(path) && std::string_view(kind) != "probe");
    if (taken)
        sim::panicf("MetricsRegistry: path '", path,
                    "' already registered as a different metric kind");
}

sim::Counter &
MetricsRegistry::counter(const std::string &path)
{
    auto it = counters.find(path);
    if (it == counters.end()) {
        checkNewPath(path, "counter");
        it = counters.try_emplace(path, path).first;
        ++mutations;
    }
    return it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &path)
{
    auto it = gauges.find(path);
    if (it == gauges.end()) {
        checkNewPath(path, "gauge");
        it = gauges.try_emplace(path).first;
        ++mutations;
    }
    return it->second;
}

sim::LogHistogram &
MetricsRegistry::histogram(const std::string &path, double min_value,
                           int bins_per_octave)
{
    auto it = histograms.find(path);
    if (it == histograms.end()) {
        checkNewPath(path, "histogram");
        it = histograms.try_emplace(path, min_value, bins_per_octave).first;
        ++mutations;
    }
    return it->second;
}

void
MetricsRegistry::registerProbe(const std::string &path,
                               std::function<double()> fn)
{
    if (!fn)
        sim::panicf("MetricsRegistry: null probe for '", path, "'");
    checkNewPath(path, "probe");
    probes[path].fn = std::move(fn);
    ++mutations;
}

const sim::Counter *
MetricsRegistry::findCounter(const std::string &path) const
{
    auto it = counters.find(path);
    return it == counters.end() ? nullptr : &it->second;
}

const Gauge *
MetricsRegistry::findGauge(const std::string &path) const
{
    auto it = gauges.find(path);
    return it == gauges.end() ? nullptr : &it->second;
}

const sim::LogHistogram *
MetricsRegistry::findHistogram(const std::string &path) const
{
    auto it = histograms.find(path);
    return it == histograms.end() ? nullptr : &it->second;
}

bool
MetricsRegistry::hasProbe(const std::string &path) const
{
    return probes.count(path) != 0;
}

double
MetricsRegistry::probeValue(const std::string &path) const
{
    auto it = probes.find(path);
    if (it == probes.end())
        sim::panicf("MetricsRegistry: no probe at '", path, "'");
    return it->second.fn();
}

double
MetricsRegistry::probeTimeAverage(const std::string &path) const
{
    auto it = probes.find(path);
    if (it == probes.end())
        sim::panicf("MetricsRegistry: no probe at '", path, "'");
    return it->second.tw.average();
}

std::vector<std::string>
MetricsRegistry::paths() const
{
    std::vector<std::string> all;
    all.reserve(counters.size() + gauges.size() + histograms.size() +
                probes.size());
    for (const auto &[p, _] : counters)
        all.push_back(p);
    for (const auto &[p, _] : gauges)
        all.push_back(p);
    for (const auto &[p, _] : histograms)
        all.push_back(p);
    for (const auto &[p, _] : probes)
        all.push_back(p);
    std::sort(all.begin(), all.end());
    return all;
}

std::vector<std::string>
MetricsRegistry::children(const std::string &prefix) const
{
    const std::string want = prefix.empty() ? "" : prefix + ".";
    std::vector<std::string> kids;
    for (const auto &path : paths()) {
        if (path.size() <= want.size() ||
            path.compare(0, want.size(), want) != 0)
            continue;
        const auto rest = path.substr(want.size());
        kids.push_back(rest.substr(0, rest.find('.')));
    }
    std::sort(kids.begin(), kids.end());
    kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
    return kids;
}

void
MetricsRegistry::writeSnapshot(std::ostream &os) const
{
    writeMergedSnapshot(os, {this});
}

namespace {

/**
 * Merge the @p kind maps of several registries into one sorted view,
 * panicking on a duplicate path (components must shard disjointly).
 */
template <typename Map>
std::map<std::string, const typename Map::mapped_type *>
mergeMaps(const std::vector<const Map *> &maps, const char *kind)
{
    std::map<std::string, const typename Map::mapped_type *> merged;
    for (const Map *m : maps) {
        for (const auto &[path, v] : *m) {
            if (!merged.emplace(path, &v).second)
                sim::panicf("MetricsRegistry: ", kind, " path '", path,
                            "' registered in more than one shard");
        }
    }
    return merged;
}

}  // namespace

void
MetricsRegistry::writeMergedSnapshot(
    std::ostream &os, const std::vector<const MetricsRegistry *> &regs)
{
    using detail::jsonEscape;
    using detail::jsonNumber;

    auto key = [&os](const std::string &path, bool &first) {
        if (!first)
            os << ",";
        first = false;
        os << "\"";
        jsonEscape(os, path);
        os << "\":";
    };

    std::vector<const std::map<std::string, sim::Counter> *> cmaps;
    std::vector<const std::map<std::string, Gauge> *> gmaps;
    std::vector<const std::map<std::string, sim::LogHistogram> *> hmaps;
    std::vector<const std::map<std::string, Probe> *> pmaps;
    for (const MetricsRegistry *r : regs) {
        cmaps.push_back(&r->counters);
        gmaps.push_back(&r->gauges);
        hmaps.push_back(&r->histograms);
        pmaps.push_back(&r->probes);
    }

    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[path, c] : mergeMaps(cmaps, "counter")) {
        key(path, first);
        os << c->get();
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[path, g] : mergeMaps(gmaps, "gauge")) {
        key(path, first);
        os << "{\"value\":";
        jsonNumber(os, g->value());
        os << ",\"avg\":";
        jsonNumber(os, g->timeAverage());
        os << ",\"peak\":";
        jsonNumber(os, g->peak());
        os << "}";
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[path, h] : mergeMaps(hmaps, "histogram")) {
        key(path, first);
        os << "{\"count\":" << h->count();
        if (h->count() > 0) {
            os << ",\"mean\":";
            jsonNumber(os, h->mean());
            os << ",\"min\":";
            jsonNumber(os, h->min());
            os << ",\"max\":";
            jsonNumber(os, h->max());
            for (auto [label, p] :
                 {std::pair<const char *, double>{"p50", 50.0},
                  {"p90", 90.0},
                  {"p99", 99.0},
                  {"p999", 99.9}}) {
                os << ",\"" << label << "\":";
                jsonNumber(os, h->percentile(p));
            }
        }
        os << "}";
    }
    os << "},\"probes\":{";
    first = true;
    for (const auto &[path, pr] : mergeMaps(pmaps, "probe")) {
        key(path, first);
        os << "{\"value\":";
        jsonNumber(os, pr->fn());
        os << ",\"avg\":";
        jsonNumber(os, pr->tw.average());
        os << "}";
    }
    os << "}}";
}

std::string
MetricsRegistry::mergedSnapshotJson(
    const std::vector<const MetricsRegistry *> &regs)
{
    std::ostringstream oss;
    writeMergedSnapshot(oss, regs);
    return oss.str();
}

std::string
MetricsRegistry::snapshotJson() const
{
    std::ostringstream oss;
    writeSnapshot(oss);
    return oss.str();
}

void
MetricsRegistry::startSampling(sim::EventQueue &eq, sim::TimePs period,
                               TraceWriter *trace)
{
    if (period <= 0)
        sim::fatal("MetricsRegistry::startSampling: period must be > 0");
    stopSampling();
    samplerQueue = &eq;
    samplerPeriod = period;
    samplerTrace = trace;
    scheduleTick();
}

void
MetricsRegistry::stopSampling()
{
    if (samplerEvent != sim::kNoEvent) {
        samplerQueue->cancel(samplerEvent);
        samplerEvent = sim::kNoEvent;
    }
    samplerQueue = nullptr;
}

void
MetricsRegistry::scheduleTick()
{
    samplerEvent = samplerQueue->scheduleAfter(samplerPeriod, [this] {
        samplerEvent = sim::kNoEvent;
        sampleTick();
        scheduleTick();
    });
}

void
MetricsRegistry::sampleTick()
{
    sampleAt(samplerQueue->now());
}

void
MetricsRegistry::sampleAt(sim::TimePs now)
{
    ++samplerTicks;
    const bool tracing = samplerTrace != nullptr && samplerTrace->enabled();
    for (auto &[path, probe] : probes) {
        const double v = probe.fn();
        probe.tw.update(now, v);
        if (tracing && (!probe.everEmitted || v != probe.lastEmitted)) {
            // Category = first dotted segment (component family).
            const auto dot = path.find('.');
            samplerTrace->counter(
                std::string_view(path).substr(0, dot), path, now, v);
            probe.everEmitted = true;
            probe.lastEmitted = v;
        }
    }
}

void
registerEventQueueProbes(MetricsRegistry &registry, const sim::EventQueue &eq)
{
    const sim::EventQueue *q = &eq;
    registry.registerProbe("sim.queue.events_per_sec", [q] {
        // Rate over *simulated* time, so same-seed runs snapshot
        // byte-identically regardless of host speed.
        if (q->now() <= 0)
            return 0.0;
        return static_cast<double>(q->eventsExecuted()) /
               (static_cast<double>(q->now()) * 1e-12);
    });
    registry.registerProbe("sim.queue.live", [q] {
        return static_cast<double>(q->size());
    });
    registry.registerProbe("sim.queue.cancelled", [q] {
        return static_cast<double>(q->eventsCancelled());
    });
    registry.registerProbe("sim.queue.wheel_overflow", [q] {
        return static_cast<double>(q->wheelOverflows());
    });
}

}  // namespace ccsim::obs
