/**
 * @file
 * Causal flow tracing and tail-latency attribution (the "flight
 * recorder").
 *
 * A TraceContext is a compact causal tag carried end-to-end through the
 * simulation's data-plane objects (net::Packet, ltl::LtlHeader,
 * router::ErMessage). Components on the path record *spans* — time
 * intervals labelled with a hop name and a latency component — against
 * the flow the context identifies. Spans land in the FlightRecorder, a
 * bounded per-window store that keeps exemplar traces biased toward the
 * tail (the worst-N completed flows by latency), exportable as a
 * deterministic JSON span dump or as Chrome-trace flows via TraceWriter.
 *
 * On top of the raw spans, attributeLatency() decomposes a flow's
 * end-to-end latency into serialization / propagation / queueing /
 * PFC-pause / retransmit / congestion-window / compute components. The
 * decomposition is a timeline sweep: every instant of [start, end) is
 * attributed to exactly one component (the highest-priority span active
 * at that instant; instants covered by no span count as queueing), so
 * the components sum to the measured end-to-end latency *exactly*, in
 * integer picoseconds — a checked invariant (`consistent()`).
 *
 * Sampling is branch-cheap: instrumentation sites gate on the context's
 * `sampled` bit — a single well-predicted branch per site when tracing
 * is off — so enabling the subsystem without sampling costs nothing
 * measurable, and same-seed runs stay byte-identical (recording only
 * reads simulation state).
 */
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ccsim::obs {

class MetricsRegistry;
class TraceWriter;

/**
 * Latency components a flow's end-to-end time decomposes into. The
 * enumerator order is also the attribution priority (lower ordinal wins
 * when spans overlap): retransmission windows outrank everything so a
 * NACK'd frame's wait shows up as `retransmit`, never as inflated
 * `queueing`; un-covered gaps always fall to `kQueueing`.
 */
enum class Component : std::uint8_t {
    kRetransmit = 0,    ///< loss detected -> retransmission handed to wire
    kPfcPause = 1,      ///< transmit blocked by an 802.1Qbb pause
    kCompute = 2,       ///< pipeline/role/switch-forwarding occupancy
    kSerialization = 3, ///< bits flowing onto a wire at line rate
    kPropagation = 4,   ///< light (well, electrons) in the cable
    kCongestionWindow = 5, ///< held by pacing / DC-QCN / send window
    kQueueing = 6,      ///< waiting in a queue (also: unattributed time)
};

inline constexpr int kNumComponents = 7;

/** Snake-case name of a component (as used in JSON dumps and tables). */
const char *componentName(Component c);

/**
 * The causal context carried by in-flight objects. 16 bytes, trivially
 * copyable. `sampled == false` (the default) is the fast path: every
 * instrumentation site tests it first and does no further work.
 */
struct TraceContext {
    std::uint64_t traceId = 0;   ///< flow id; 0 = untraced
    std::uint32_t parentSpan = 0; ///< enclosing span id, or 0 for root
    bool sampled = false;        ///< gate: one predicted branch when clear
};

/** One recorded interval of a flow's life. */
struct Span {
    std::uint32_t id = 0;       ///< per-flow span id (1-based)
    std::uint32_t parent = 0;   ///< enclosing span id, or 0
    Component comp = Component::kCompute;
    sim::TimePs start = 0;
    sim::TimePs end = 0;
    std::string hop;            ///< stage boundary, e.g. "ltl.node0.tx"
};

/** A complete (or in-flight) sampled flow. */
struct FlowTrace {
    std::uint64_t traceId = 0;
    std::string flow;           ///< flow family, e.g. "ltl.node0.msg"
    sim::TimePs start = 0;
    sim::TimePs end = 0;
    std::vector<Span> spans;
    std::uint32_t nextSpanId = 1;  ///< recorder-internal id allocator
    std::uint32_t droppedSpans = 0; ///< spans lost to the per-flow cap

    sim::TimePs latency() const { return end - start; }
};

/** Exact per-component decomposition of one flow's latency. */
struct LatencyAttribution {
    sim::TimePs total = 0;
    std::array<sim::TimePs, kNumComponents> byComponent{};

    sim::TimePs sum() const
    {
        sim::TimePs s = 0;
        for (auto v : byComponent)
            s += v;
        return s;
    }
    /** The checked invariant: components sum to the measured total. */
    bool consistent() const { return sum() == total; }

    sim::TimePs of(Component c) const
    {
        return byComponent[static_cast<int>(c)];
    }
};

/** One row of a per-hop attribution table. */
struct HopAttribution {
    std::string hop;  ///< "(unattributed)" for time covered by no span
    std::array<sim::TimePs, kNumComponents> byComponent{};

    sim::TimePs total() const
    {
        sim::TimePs s = 0;
        for (auto v : byComponent)
            s += v;
        return s;
    }
};

/**
 * Decompose @p t's end-to-end latency by component. Every instant of
 * [t.start, t.end) is attributed to the highest-priority span covering
 * it (Component order; ties broken by lowest span id), or to kQueueing
 * when no span covers it. By construction the result is consistent().
 */
LatencyAttribution attributeLatency(const FlowTrace &t);

/**
 * The same sweep, additionally split by hop. Rows appear in order of
 * first attribution (i.e. roughly time order along the flow's path); the
 * per-hop totals also sum to t.latency() exactly.
 */
std::vector<HopAttribution> attributeByHop(const FlowTrace &t);

/** Render a per-hop attribution table (fig10-style) for one flow. */
std::string formatAttributionTable(const FlowTrace &t);

/**
 * The flight recorder: allocates flow ids, collects spans, and keeps the
 * worst-N completed flows per window as exemplars.
 *
 * Like the rest of ccsim::obs the recorder is strictly read-only with
 * respect to simulation state. Flow ids come from a per-recorder counter
 * (not a process-wide one) so same-seed runs dump byte-identical spans.
 */
class FlightRecorder
{
  public:
    /** Master switch; while off, beginFlow() returns unsampled contexts. */
    void setEnabled(bool enabled) { on = enabled; }
    bool enabled() const { return on; }

    /** Sample one flow in @p n (default 1 = every flow). */
    void setSampleEvery(std::uint32_t n) { every = n == 0 ? 1 : n; }

    /** Keep the worst @p n completed flows per window (default 64). */
    void setTailCapacity(std::size_t n);

    /** Cap spans recorded per flow (overflow counted, default 512). */
    void setMaxSpansPerTrace(std::size_t n) { maxSpans = n; }

    /**
     * Start allocating flow ids at @p first (default 1; 0 is reserved
     * for "untraced"). A sharded simulation gives each partition's
     * recorder a disjoint id region (e.g. shard index << 48) so ids in
     * merged span dumps never collide across shards.
     */
    void setTraceIdStart(std::uint64_t first)
    {
        nextTraceId = first == 0 ? 1 : first;
    }

    /**
     * Create the `trace.sampled_flows` / `trace.dropped_spans` counter
     * pair in @p reg and keep them updated. @p reg must outlive this
     * recorder (or a re-bind).
     */
    void bindMetrics(MetricsRegistry &reg);

    // --- recording (hot path) ------------------------------------------

    /**
     * Start a flow at @p now. Returns a sampled context for 1-in-N calls
     * while enabled, an all-zero context otherwise. Callers gate their
     * span sites on `ctx.sampled`.
     */
    TraceContext beginFlow(std::string_view flow, sim::TimePs now);

    /** Record a completed span [start, end) against @p ctx's flow. */
    void recordSpan(const TraceContext &ctx, std::string_view hop,
                    Component comp, sim::TimePs start, sim::TimePs end);

    /** Open a span at @p start; returns its id (0 if not recorded). */
    std::uint32_t openSpan(const TraceContext &ctx, std::string_view hop,
                           Component comp, sim::TimePs start);

    /** Close a span opened with openSpan(). */
    void closeSpan(const TraceContext &ctx, std::uint32_t span_id,
                   sim::TimePs end);

    /** Complete a flow; it becomes an exemplar if it makes the worst-N. */
    void endFlow(const TraceContext &ctx, sim::TimePs end);

    /** Drop an in-flight flow without keeping it (e.g. conn failure). */
    void abandonFlow(const TraceContext &ctx);

    /** Discard the kept exemplars, starting a fresh window. */
    void newWindow();

    // --- introspection -------------------------------------------------

    std::uint64_t flowsStarted() const { return started; }
    std::uint64_t flowsSampled() const { return sampledCount; }
    std::uint64_t flowsCompleted() const { return completedCount; }
    /** Spans lost to per-flow caps, late arrival, or reservoir eviction. */
    std::uint64_t droppedSpans() const { return droppedCount; }
    std::size_t activeFlows() const { return active.size(); }

    /** Kept exemplars (completed flows), unordered. */
    const std::vector<FlowTrace> &exemplars() const { return kept; }

    /** Kept exemplars sorted worst-latency-first (ties: lower id first). */
    std::vector<const FlowTrace *> worstFirst() const;

    // --- export --------------------------------------------------------

    /**
     * Deterministic JSON span dump of the kept exemplars (sorted by flow
     * id, integer picosecond timestamps, per-flow attribution included).
     * Byte-identical across same-seed runs.
     */
    void writeSpanDump(std::ostream &os) const;
    std::string spanDumpJson() const;
    bool writeSpanDumpFile(const std::string &path) const;

    /**
     * Export kept exemplars into @p tw: one 'X' span per recorded span on
     * a per-hop track, chained with Chrome flow arrows (s/t/f events
     * carrying the flow id).
     */
    void exportChromeTrace(TraceWriter &tw) const;

    /**
     * Span-dump path requested via the CCSIM_SPANS environment variable,
     * or "" if unset (mirrors TraceWriter::envPath()).
     */
    static std::string envPath();

  private:
    bool on = false;
    std::uint32_t every = 1;
    std::uint32_t decimator = 0;
    std::uint64_t nextTraceId = 1;
    std::size_t tailCap = 64;
    std::size_t maxSpans = 512;

    std::unordered_map<std::uint64_t, FlowTrace> active;
    std::vector<FlowTrace> kept;

    std::uint64_t started = 0;
    std::uint64_t sampledCount = 0;
    std::uint64_t completedCount = 0;
    std::uint64_t droppedCount = 0;

    sim::Counter *mSampled = nullptr;  ///< registry-owned
    sim::Counter *mDropped = nullptr;  ///< registry-owned

    FlowTrace *findActive(const TraceContext &ctx);
    void keep(FlowTrace &&t);
    void dropSpans(std::uint64_t n);
};

}  // namespace ccsim::obs
