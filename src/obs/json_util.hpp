/**
 * @file
 * Shared JSON emission helpers for the observability exporters. Both the
 * snapshot and trace writers must be byte-deterministic, so all number
 * formatting funnels through one fixed format.
 */
#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>

namespace ccsim::obs::detail {

/** Minimal JSON string escaping (metric paths/names are ASCII). */
inline void
jsonEscape(std::ostream &os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

/**
 * Deterministic round-trippable double formatting: shortest
 * representation that parses back to the same bits. Non-finite values
 * (empty-histogram min/max) are mapped to null, which JSON can carry.
 * std::to_chars is an order of magnitude faster than snprintf %.17g,
 * which matters to the per-window export hot path.
 */
inline void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof buf, v);
    os << std::string_view(buf, static_cast<std::size_t>(r.ptr - buf));
}

}  // namespace ccsim::obs::detail
