#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ccsim::obs {

namespace {

/** Minimal JSON string escaping (paths/names are ASCII identifiers). */
void
escapeTo(std::ostream &os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

/** Deterministic shortest-roundtrip double formatting. */
void
numberTo(std::ostream &os, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

/** Simulated picoseconds -> trace microseconds. */
double
toTraceUs(sim::TimePs ps)
{
    return static_cast<double>(ps) / 1e6;
}

/**
 * Auto-flush registry. A function-local static constructed *before* the
 * std::atexit handler is registered (see autoFlushOnExit), so the
 * handler — which runs in LIFO order relative to static destruction —
 * always sees a live vector.
 */
std::vector<TraceWriter *> &
flushRegistry()
{
    static std::vector<TraceWriter *> reg;
    return reg;
}

}  // namespace

void
traceWriterFlushAllAtExit()
{
    for (TraceWriter *w : flushRegistry())
        w->flushIfDirty();
}

TraceWriter::~TraceWriter()
{
    flushIfDirty();
    auto &reg = flushRegistry();
    reg.erase(std::remove(reg.begin(), reg.end(), this), reg.end());
}

void
TraceWriter::autoFlushOnExit(const std::string &path)
{
    auto &reg = flushRegistry();  // construct the registry static first
    static const bool installed = [] {
        std::atexit(traceWriterFlushAllAtExit);
        return true;
    }();
    (void)installed;
    flushPath = path;
    if (std::find(reg.begin(), reg.end(), this) == reg.end())
        reg.push_back(this);
}

void
TraceWriter::cancelAutoFlush()
{
    flushPath.clear();
    auto &reg = flushRegistry();
    reg.erase(std::remove(reg.begin(), reg.end(), this), reg.end());
}

void
TraceWriter::flushIfDirty()
{
    if (!flushPath.empty() && hasUnwritten)
        writeFile(flushPath);
}

int
TraceWriter::track(const std::string &name)
{
    auto [it, inserted] = tracks.try_emplace(name, nextTid);
    if (inserted)
        ++nextTid;
    return it->second;
}

void
TraceWriter::complete(int tid, std::string_view cat, std::string_view name,
                      sim::TimePs start, sim::TimePs duration)
{
    if (!recording)
        return;
    TraceEvent e;
    e.phase = 'X';
    e.tid = tid;
    e.ts = start;
    e.dur = duration;
    e.cat = std::string(cat);
    e.name = std::string(name);
    events.push_back(std::move(e));
    hasUnwritten = true;
}

void
TraceWriter::instant(int tid, std::string_view cat, std::string_view name,
                     sim::TimePs ts)
{
    if (!recording)
        return;
    TraceEvent e;
    e.phase = 'i';
    e.tid = tid;
    e.ts = ts;
    e.cat = std::string(cat);
    e.name = std::string(name);
    events.push_back(std::move(e));
    hasUnwritten = true;
}

void
TraceWriter::counter(std::string_view cat, std::string_view name,
                     sim::TimePs ts, double value)
{
    if (!recording)
        return;
    TraceEvent e;
    e.phase = 'C';
    e.ts = ts;
    e.value = value;
    e.cat = std::string(cat);
    e.name = std::string(name);
    events.push_back(std::move(e));
    hasUnwritten = true;
}

void
TraceWriter::counterMulti(std::string_view cat, std::string_view name,
                          sim::TimePs ts,
                          std::vector<std::pair<std::string, double>> values)
{
    if (!recording)
        return;
    TraceEvent e;
    e.phase = 'C';
    e.ts = ts;
    e.cat = std::string(cat);
    e.name = std::string(name);
    e.multi = std::move(values);
    events.push_back(std::move(e));
    hasUnwritten = true;
}

void
TraceWriter::flowPoint(char phase, int tid, std::string_view cat,
                       std::string_view name, sim::TimePs ts,
                       std::uint64_t flow_id)
{
    if (!recording)
        return;
    TraceEvent e;
    e.phase = phase;
    e.tid = tid;
    e.ts = ts;
    e.flowId = flow_id;
    e.cat = std::string(cat);
    e.name = std::string(name);
    events.push_back(std::move(e));
    hasUnwritten = true;
}

std::vector<std::string>
TraceWriter::categories() const
{
    std::vector<std::string> cats;
    for (const auto &e : events)
        cats.push_back(e.cat);
    std::sort(cats.begin(), cats.end());
    cats.erase(std::unique(cats.begin(), cats.end()), cats.end());
    return cats;
}

void
TraceWriter::write(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid
           << ",\"ts\":";
        numberTo(os, toTraceUs(e.ts));
        if (e.phase == 'X') {
            os << ",\"dur\":";
            numberTo(os, toTraceUs(e.dur));
        }
        os << ",\"cat\":\"";
        escapeTo(os, e.cat);
        os << "\",\"name\":\"";
        escapeTo(os, e.name);
        os << "\"";
        if (e.phase == 'i') {
            os << ",\"s\":\"t\"";
        } else if (e.phase == 'C') {
            os << ",\"args\":{";
            if (e.multi.empty()) {
                os << "\"value\":";
                numberTo(os, e.value);
            } else {
                bool firstArg = true;
                for (const auto &[k, v] : e.multi) {
                    if (!firstArg)
                        os << ",";
                    firstArg = false;
                    os << "\"";
                    escapeTo(os, k);
                    os << "\":";
                    numberTo(os, v);
                }
            }
            os << "}";
        } else if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
            os << ",\"id\":" << e.flowId;
            if (e.phase == 'f')
                os << ",\"bp\":\"e\"";
        }
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ns\"}";
    hasUnwritten = false;
}

std::string
TraceWriter::json() const
{
    std::ostringstream oss;
    write(oss);
    return oss.str();
}

bool
TraceWriter::writeFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    write(f);
    return static_cast<bool>(f);
}

std::string
TraceWriter::envPath()
{
    const char *p = std::getenv("CCSIM_TRACE");
    return p ? std::string(p) : std::string();
}

}  // namespace ccsim::obs
