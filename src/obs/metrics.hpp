/**
 * @file
 * Hierarchical metrics registry.
 *
 * Components register named metrics under dotted paths
 * (`ltl.node3.retransmits`, `switch.tor.0.0.q3.depth`). Four metric
 * kinds are supported:
 *
 *  - **counters**   — monotonically increasing event counts;
 *  - **histograms** — memory-bounded log-binned sample distributions;
 *  - **gauges**     — time-weighted piecewise-constant signals set
 *                     explicitly by the component;
 *  - **probes**     — callback gauges that *read* a live component value
 *                     on demand (snapshot or periodic sampling), so
 *                     existing component statistics can be exported
 *                     without duplicating bookkeeping in hot paths.
 *
 * The registry offers a deterministic JSON snapshot (paths emitted in
 * sorted order, fixed number formatting) and a periodic sampling hook
 * driven by the simulation EventQueue: every period the sampler reads
 * all probes, folds the values into time-weighted averages, and (when a
 * TraceWriter is attached) emits Chrome counter events — on the first
 * tick for every probe, afterwards only for probes whose value changed.
 *
 * Observability is strictly read-only with respect to simulation state:
 * attaching a registry, sampling, or exporting never changes component
 * behaviour, so instrumented and bare runs are bit-identical.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/flow_trace.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace ccsim::obs {

/**
 * A time-weighted gauge: set(t, v) records that the signal holds value
 * @p v from simulated time @p t onward.
 */
class Gauge
{
  public:
    void set(sim::TimePs t_ps, double v)
    {
        tw.update(t_ps, v);
        current = v;
    }

    /** Most recently set value. */
    double value() const { return current; }
    /** Time-weighted mean over the updates seen so far. */
    double timeAverage() const { return tw.average(); }
    /** Peak value seen. */
    double peak() const { return tw.peak(); }

  private:
    sim::TimeWeighted tw;
    double current = 0.0;
};

/** Defaults for registry histograms (sub-1% relative quantile error). */
inline constexpr double kDefaultHistMinValue = 0.5;
inline constexpr int kDefaultHistBinsPerOctave = 96;

/**
 * The hierarchical metrics registry. Not thread-safe (one registry per
 * simulation, like the EventQueue).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;
    ~MetricsRegistry();

    // --- registration / lookup (get-or-create; references are stable) ---

    /** The counter at @p path, created on first use. */
    sim::Counter &counter(const std::string &path);

    /** The gauge at @p path, created on first use. */
    Gauge &gauge(const std::string &path);

    /**
     * The histogram at @p path, created on first use with the given
     * binning. Later calls for an existing path ignore the binning
     * arguments and return the original instance.
     */
    sim::LogHistogram &
    histogram(const std::string &path,
              double min_value = kDefaultHistMinValue,
              int bins_per_octave = kDefaultHistBinsPerOctave);

    /**
     * Register a callback gauge: @p fn is invoked at snapshot time and on
     * every sampling tick. Re-registering a path replaces the callback
     * (components attached to a fresh prefix never collide; replacement
     * supports re-attachment).
     */
    void registerProbe(const std::string &path, std::function<double()> fn);

    // --- lookup without creation ---

    const sim::Counter *findCounter(const std::string &path) const;
    const Gauge *findGauge(const std::string &path) const;
    const sim::LogHistogram *findHistogram(const std::string &path) const;
    bool hasProbe(const std::string &path) const;

    /** Invoke the probe at @p path now. Panics if no such probe. */
    double probeValue(const std::string &path) const;

    /**
     * Time-weighted average of a probe as accumulated by the periodic
     * sampler (0 before the first tick).
     */
    double probeTimeAverage(const std::string &path) const;

    // --- hierarchy ---

    /** Every registered path across all kinds, sorted. */
    std::vector<std::string> paths() const;

    /**
     * Mutation counter, bumped whenever a new metric is registered.
     * Watchers (the time-series hub) cache it to skip path re-discovery
     * on every window when the registry hasn't changed.
     */
    std::uint64_t version() const { return mutations; }

    /**
     * Direct child segments under a dotted prefix ("" for the roots),
     * sorted and deduplicated: with `ltl.node0.rtt` and `ltl.node1.rtt`
     * registered, children("ltl") is {"node0", "node1"}.
     */
    std::vector<std::string> children(const std::string &prefix) const;

    // --- snapshot export ---

    /**
     * Serialize every metric as JSON, deterministically (sorted paths,
     * fixed formatting): byte-identical runs produce byte-identical
     * snapshots.
     */
    void writeSnapshot(std::ostream &os) const;

    /** writeSnapshot() to a string. */
    std::string snapshotJson() const;

    /**
     * Serialize several registries as one combined snapshot, in exactly
     * writeSnapshot()'s format (a single-element list is byte-identical
     * to that registry's own snapshot). Paths must be disjoint across
     * the registries — in a sharded simulation every component registers
     * under its own shard, so a duplicate path is a partitioning bug and
     * panics.
     */
    static void
    writeMergedSnapshot(std::ostream &os,
                        const std::vector<const MetricsRegistry *> &regs);

    /** writeMergedSnapshot() to a string. */
    static std::string
    mergedSnapshotJson(const std::vector<const MetricsRegistry *> &regs);

    // --- periodic sampling -------------------------------------------------

    /**
     * Start sampling all probes every @p period of simulated time, with
     * the first tick one period from now. When @p trace is non-null,
     * each tick emits Chrome counter events (first tick: all probes;
     * later ticks: probes whose value changed). Restarting replaces the
     * previous schedule.
     */
    void startSampling(sim::EventQueue &eq, sim::TimePs period,
                       TraceWriter *trace = nullptr);

    /**
     * Cancel the sampling schedule. Must be called before draining the
     * queue with runAll(), since the sampler perpetually reschedules.
     */
    void stopSampling();

    bool samplingActive() const { return samplerEvent != sim::kNoEvent; }

    /** Number of sampling ticks executed. */
    std::uint64_t samplesTaken() const { return samplerTicks; }

    /**
     * Take one sampling tick at simulated time @p now without an event
     * schedule: reads every probe and folds it into the time-weighted
     * averages (and the Chrome trace, when one was attached via
     * startSampling). The periodic sampler calls this from its event;
     * a sharded simulation calls it from a barrier hook so probes are
     * read at deterministic sync points rather than mid-window.
     */
    void sampleAt(sim::TimePs now);

  private:
    struct Probe {
        std::function<double()> fn;
        sim::TimeWeighted tw;
        double lastEmitted = 0.0;
        bool everEmitted = false;
    };

    std::map<std::string, sim::Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, sim::LogHistogram> histograms;
    std::map<std::string, Probe> probes;
    std::uint64_t mutations = 0;

    sim::EventQueue *samplerQueue = nullptr;
    sim::EventId samplerEvent = sim::kNoEvent;
    sim::TimePs samplerPeriod = 0;
    TraceWriter *samplerTrace = nullptr;
    std::uint64_t samplerTicks = 0;

    void checkNewPath(const std::string &path, const char *kind) const;
    void scheduleTick();
    void sampleTick();
};

/**
 * The observability bundle handed to components: one registry plus one
 * trace writer per simulation. Components take it by pointer; null means
 * "not observed" and costs nothing.
 */
struct Observability {
    MetricsRegistry registry;
    TraceWriter trace;
    FlightRecorder flows;
};

/**
 * Export DES-kernel health probes for @p eq under `sim.queue.*`:
 *
 *  - `sim.queue.events_per_sec` — events executed per *simulated* second
 *    (wall-clock rates would differ run to run and break byte-identical
 *    same-seed snapshots);
 *  - `sim.queue.live` — currently scheduled, uncancelled events;
 *  - `sim.queue.cancelled` — total cancellations;
 *  - `sim.queue.wheel_overflow` — events parked in the far-future
 *    overflow heap (0 on the reference binary-heap backend).
 *
 * @p eq must outlive @p registry (or probe re-registration).
 */
void registerEventQueueProbes(MetricsRegistry &registry,
                              const sim::EventQueue &eq);

}  // namespace ccsim::obs
