#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/json_util.hpp"
#include "sim/logging.hpp"
#include "sim/sharded_queue.hpp"

namespace ccsim::obs {

// ---------------------------------------------------------------------
// HistogramSketch
// ---------------------------------------------------------------------

HistogramSketch
HistogramSketch::diff(sim::LogHistogram::Binning binning,
                      const std::vector<std::uint64_t> &cur_bins,
                      const std::vector<std::uint64_t> &prev_bins,
                      double sum_delta)
{
    HistogramSketch s(binning.minValue, binning.binsPerOctave);
    s.bins.resize(cur_bins.size(), 0);
    for (std::size_t i = 0; i < cur_bins.size(); ++i) {
        const std::uint64_t before = i < prev_bins.size() ? prev_bins[i] : 0;
        if (cur_bins[i] < before)
            sim::panic("HistogramSketch::diff: bin count decreased "
                       "(histogram was cleared mid-window?)");
        s.bins[i] = cur_bins[i] - before;
        s.total += s.bins[i];
    }
    s.sumVal = sum_delta;
    return s;
}

HistogramSketch
HistogramSketch::since(const sim::LogHistogram &cur,
                       const std::vector<std::uint64_t> &prev_bins,
                       double prev_sum)
{
    return diff(cur.binning(), cur.binCounts(), prev_bins,
                cur.sum() - prev_sum);
}

void
HistogramSketch::merge(const HistogramSketch &other)
{
    if (minVal != other.minVal || octave != other.octave)
        sim::panic("HistogramSketch::merge: binning parameters differ");
    if (other.bins.size() > bins.size())
        bins.resize(other.bins.size(), 0);
    for (std::size_t i = 0; i < other.bins.size(); ++i)
        bins[i] += other.bins[i];
    total += other.total;
    sumVal += other.sumVal;
}

double
HistogramSketch::binLowerEdge(std::size_t idx) const
{
    if (idx == 0)
        return 0.0;
    return minVal * std::exp2(static_cast<double>(idx - 1) / octave);
}

double
HistogramSketch::percentile(double p) const
{
    if (total == 0)
        return 0.0;
    if (p < 0.0 || p > 100.0)
        sim::panicf("HistogramSketch::percentile: p=", p, " out of [0,100]");
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        cum += bins[i];
        if (cum >= target && bins[i] > 0) {
            // Same geometric-midpoint rule as LogHistogram::percentile;
            // a delta sketch cannot clamp to the window's exact
            // min/max, so the bin width bounds the error instead.
            const double lo = binLowerEdge(i);
            const double hi = binLowerEdge(i + 1);
            return lo > 0.0 ? std::sqrt(lo * hi) : hi * 0.5;
        }
    }
    return binLowerEdge(bins.size());
}

void
HistogramSketch::clear()
{
    bins.clear();
    total = 0;
    sumVal = 0.0;
}

// ---------------------------------------------------------------------
// TimeSeriesHub
// ---------------------------------------------------------------------

namespace {

/** Seconds spanned by @p n base windows of width @p w. */
double
spanSeconds(int n, sim::TimePs w)
{
    return static_cast<double>(n) * static_cast<double>(w) / 1e12;
}

/** Same glob semantics as metric_names.hpp (`*` matches >= 1 chars). */
bool
globMatch(std::string_view pattern, std::string_view path)
{
    std::size_t p = 0, s = 0;
    std::size_t starP = std::string_view::npos, starS = 0;
    while (s < path.size()) {
        if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starS = s + 1;
            ++s;
        } else if (p < pattern.size() && pattern[p] == path[s]) {
            ++p;
            ++s;
        } else if (starP != std::string_view::npos) {
            p = starP + 1;
            s = ++starS;
        } else {
            return false;
        }
    }
    return p == pattern.size();
}

}  // namespace

void
TimeSeriesHub::Ring::push(const TsPoint &p)
{
    if (buf.size() < cap) {
        buf.push_back(p);
        head = buf.size() % cap;
        used = buf.size();
        return;
    }
    buf[head] = p;
    head = (head + 1) % cap;
    used = cap;
}

TimeSeriesHub::TimeSeriesHub(TimeSeriesConfig c) : cfg(std::move(c))
{
    if (cfg.window <= 0)
        sim::fatal("TimeSeriesHub: window must be > 0");
    if (cfg.levels.empty())
        sim::fatal("TimeSeriesHub: at least one retention level required");
    if (cfg.levels.front().stride != 1)
        sim::fatal("TimeSeriesHub: first level must have stride 1");
    int prev = 0;
    for (const auto &lv : cfg.levels) {
        if (lv.stride <= prev)
            sim::fatal("TimeSeriesHub: level strides must be strictly "
                       "increasing");
        if (lv.capacity < 2)
            sim::fatal("TimeSeriesHub: level capacity must be >= 2");
        prev = lv.stride;
    }
    for (const auto &g : cfg.include) {
        if (g.empty())
            sim::fatal("TimeSeriesHub: empty include pattern");
    }
}

void
TimeSeriesHub::watchRegistry(const MetricsRegistry *reg)
{
    if (reg == nullptr)
        sim::fatal("TimeSeriesHub::watchRegistry: null registry");
    if (std::find(regs.begin(), regs.end(), reg) != regs.end())
        sim::fatal("TimeSeriesHub::watchRegistry: registry already watched");
    regs.push_back(reg);
    // ~0 forces a first discover() even on a registry that is still empty.
    regVersions.push_back(~std::uint64_t{0});
}

void
TimeSeriesHub::defineAggregate(const std::string &name,
                               const std::string &pattern)
{
    if (name.empty() || pattern.empty())
        sim::fatal("TimeSeriesHub::defineAggregate: empty name or pattern");
    if (aggregates.count(name))
        sim::fatal("TimeSeriesHub::defineAggregate: duplicate aggregate");
    Aggregate agg;
    agg.pattern = pattern;
    agg.levels.resize(cfg.levels.size());
    for (std::size_t i = 0; i < cfg.levels.size(); ++i)
        agg.levels[i].ring.cap = cfg.levels[i].capacity;
    aggregates.emplace(name, std::move(agg));
}

void
TimeSeriesHub::exportTo(std::ostream *os)
{
    out = os;
    if (out == nullptr)
        return;
    std::ostringstream meta;
    meta << "{\"type\":\"meta\",\"window_us\":";
    detail::jsonNumber(meta, static_cast<double>(cfg.window) / 1e6);
    meta << ",\"levels\":[";
    for (std::size_t i = 0; i < cfg.levels.size(); ++i) {
        if (i)
            meta << ",";
        meta << "{\"stride\":" << cfg.levels[i].stride
             << ",\"capacity\":" << cfg.levels[i].capacity << "}";
    }
    meta << "]}";
    exportLine(meta.str());
}

void
TimeSeriesHub::registerSelfProbes(MetricsRegistry &reg)
{
    reg.registerProbe("ts.windows", [this] {
        return static_cast<double>(windowSeq);
    });
    reg.registerProbe("ts.series", [this] {
        return static_cast<double>(seriesCount());
    });
    reg.registerProbe("ts.points", [this] {
        return static_cast<double>(pointsRetained());
    });
    reg.registerProbe("ts.exported_lines", [this] {
        return static_cast<double>(linesOut);
    });
}

void
TimeSeriesHub::addWindowObserver(WindowObserver fn)
{
    if (!fn)
        sim::fatal("TimeSeriesHub::addWindowObserver: empty observer");
    observers.push_back(std::move(fn));
}

bool
TimeSeriesHub::includes(const std::string &path) const
{
    if (cfg.include.empty())
        return true;
    for (const auto &g : cfg.include) {
        if (globMatch(g, path))
            return true;
    }
    return false;
}

void
TimeSeriesHub::announceSeries(const std::string &name, SeriesKind kind)
{
    if (out == nullptr)
        return;
    std::ostringstream line;
    line << "{\"type\":\"series\",\"name\":\"";
    detail::jsonEscape(line, name);
    line << "\",\"kind\":\"" << kindName(kind) << "\"}";
    exportLine(line.str());
}

void
TimeSeriesHub::discover()
{
    for (std::size_t ri = 0; ri < regs.size(); ++ri) {
        const MetricsRegistry *reg = regs[ri];
        // Path discovery walks every registered metric; skip it on the
        // (overwhelmingly common) windows where nothing new appeared.
        if (regVersions[ri] == reg->version())
            continue;
        regVersions[ri] = reg->version();
        for (const std::string &path : reg->paths()) {
            if (series.count(path) || !includes(path))
                continue;
            if (aggregates.count(path))
                sim::panicf("TimeSeriesHub: registry path ", path,
                            " collides with an aggregate series");
            Series s;
            s.reg = reg;
            if (const sim::Counter *c = reg->findCounter(path)) {
                s.kind = SeriesKind::kCounter;
                s.counter = c;
            } else if (const Gauge *g = reg->findGauge(path)) {
                s.kind = SeriesKind::kGauge;
                s.gauge = g;
            } else if (const sim::LogHistogram *h = reg->findHistogram(path)) {
                s.kind = SeriesKind::kHistogram;
                s.hist = h;
            } else if (reg->hasProbe(path)) {
                s.kind = SeriesKind::kProbe;
            } else {
                continue;  // unknown kind (future registry extension)
            }
            s.levels.resize(cfg.levels.size());
            for (std::size_t i = 0; i < cfg.levels.size(); ++i)
                s.levels[i].ring.cap = cfg.levels[i].capacity;
            announceSeries(path, s.kind);
            series.emplace(path, std::move(s));
        }
    }
}

void
TimeSeriesHub::refreshAggregate(const std::string &name, Aggregate &agg)
{
    if (agg.seenSeries == series.size())
        return;
    agg.seenSeries = series.size();
    agg.members.clear();
    agg.memberNames.clear();
    for (const auto &[path, s] : series) {
        if (!globMatch(agg.pattern, path))
            continue;
        if (agg.members.empty()) {
            agg.kind = s.kind;
        } else if (s.kind != agg.kind) {
            sim::panicf("TimeSeriesHub: aggregate ", name,
                        " mixes metric kinds (", kindName(agg.kind), " vs ",
                        kindName(s.kind), " at ", path, ")");
        }
        if (s.kind == SeriesKind::kHistogram && !agg.members.empty()) {
            const auto a = agg.members.front()->hist->binning();
            const auto b = s.hist->binning();
            if (a.minValue != b.minValue ||
                a.binsPerOctave != b.binsPerOctave)
                sim::panicf("TimeSeriesHub: aggregate ", name,
                            " mixes histogram binnings at ", path);
        }
        agg.members.push_back(&s);
        agg.memberNames.push_back(path);
    }
    if (!agg.members.empty() && !agg.announced) {
        announceSeries(name, agg.kind);
        agg.announced = true;
    }
}

namespace {

/** True when a cumulative histogram shrank — the component was cleared. */
bool
binsDecreased(const std::vector<std::uint64_t> &cur,
              const std::vector<std::uint64_t> &prev)
{
    if (cur.size() < prev.size())
        return true;
    for (std::size_t i = 0; i < prev.size(); ++i)
        if (cur[i] < prev[i])
            return true;
    return false;
}

}  // namespace

TsPoint
TimeSeriesHub::scalarPoint(sim::TimePs now, double cur, LevelState &lv) const
{
    TsPoint p;
    p.t = now;
    p.value = cur;
    p.delta = cur - lv.prevValue;
    lv.prevValue = cur;
    return p;
}

void
TimeSeriesHub::rollSeries(const std::string &name, Series &s, sim::TimePs now)
{
    for (std::size_t i = 0; i < cfg.levels.size(); ++i) {
        const int stride = cfg.levels[i].stride;
        if (windowSeq % static_cast<std::uint64_t>(stride) != 0)
            continue;
        LevelState &lv = s.levels[i];
        const double span = spanSeconds(stride, cfg.window);
        TsPoint p;
        switch (s.kind) {
        case SeriesKind::kCounter:
            p = scalarPoint(now, static_cast<double>(s.counter->get()), lv);
            // Counter-reset rule: a monotonic count that decreased means
            // the component restarted; the window's delta is everything
            // accumulated since the reset.
            if (p.delta < 0.0)
                p.delta = p.value;
            p.rate = p.delta / span;
            break;
        case SeriesKind::kGauge:
            p = scalarPoint(now, s.gauge->value(), lv);
            break;
        case SeriesKind::kProbe:
            p = scalarPoint(now, s.reg->probeValue(name), lv);
            p.rate = p.delta / span;
            break;
        case SeriesKind::kHistogram: {
            std::vector<std::uint64_t> cur = s.hist->binCounts();
            // Same reset rule for histograms: a component clearing its
            // stats mid-run (fig08 does per-load-step clearStats) must
            // restart the window delta from zero, not panic.
            if (binsDecreased(cur, lv.prevBins)) {
                lv.prevBins.clear();
                lv.prevSum = 0.0;
            }
            const HistogramSketch sk = HistogramSketch::diff(
                s.hist->binning(), cur, lv.prevBins,
                s.hist->sum() - lv.prevSum);
            lv.prevBins = std::move(cur);
            lv.prevSum = s.hist->sum();
            p.t = now;
            p.value = static_cast<double>(s.hist->count());
            p.count = sk.count();
            p.delta = static_cast<double>(sk.count());
            p.rate = p.delta / span;
            p.mean = sk.mean();
            p.p50 = sk.percentile(50.0);
            p.p90 = sk.percentile(90.0);
            p.p99 = sk.percentile(99.0);
            p.p999 = sk.percentile(99.9);
            break;
        }
        }
        lv.ring.push(p);
    }
}

void
TimeSeriesHub::rollAggregate(const std::string &name, Aggregate &agg,
                             sim::TimePs now)
{
    (void)name;
    if (agg.members.empty())
        return;
    for (std::size_t i = 0; i < cfg.levels.size(); ++i) {
        const int stride = cfg.levels[i].stride;
        if (windowSeq % static_cast<std::uint64_t>(stride) != 0)
            continue;
        LevelState &lv = agg.levels[i];
        const double span = spanSeconds(stride, cfg.window);
        TsPoint p;
        if (agg.kind == SeriesKind::kHistogram) {
            // Merged cumulative bins across members; the diff against the
            // aggregate's own previous snapshot is exactly the sum of the
            // members' windowed sketches (bin counts are integers).
            std::vector<std::uint64_t> bins;
            std::uint64_t cum = 0;
            double sum = 0.0;
            for (const Series *m : agg.members) {
                const auto &mb = m->hist->binCounts();
                if (mb.size() > bins.size())
                    bins.resize(mb.size(), 0);
                for (std::size_t b = 0; b < mb.size(); ++b)
                    bins[b] += mb[b];
                cum += m->hist->count();
                sum += m->hist->sum();
            }
            if (binsDecreased(bins, lv.prevBins)) {
                lv.prevBins.clear();  // member reset: restart the delta
                lv.prevSum = 0.0;
            }
            HistogramSketch sk = HistogramSketch::diff(
                agg.members.front()->hist->binning(), bins, lv.prevBins,
                sum - lv.prevSum);
            lv.prevBins = std::move(bins);
            lv.prevSum = sum;
            p.t = now;
            p.value = static_cast<double>(cum);
            p.count = sk.count();
            p.delta = static_cast<double>(sk.count());
            p.rate = p.delta / span;
            p.mean = sk.mean();
            p.p50 = sk.percentile(50.0);
            p.p90 = sk.percentile(90.0);
            p.p99 = sk.percentile(99.0);
            p.p999 = sk.percentile(99.9);
        } else {
            double cur = 0.0;
            for (std::size_t m = 0; m < agg.members.size(); ++m) {
                const Series *s = agg.members[m];
                switch (agg.kind) {
                case SeriesKind::kCounter:
                    cur += static_cast<double>(s->counter->get());
                    break;
                case SeriesKind::kGauge:
                    cur += s->gauge->value();
                    break;
                case SeriesKind::kProbe:
                    cur += s->reg->probeValue(agg.memberNames[m]);
                    break;
                case SeriesKind::kHistogram:
                    break;  // handled above
                }
            }
            p = scalarPoint(now, cur, lv);
            if (agg.kind == SeriesKind::kCounter && p.delta < 0.0)
                p.delta = p.value;  // member reset (see rollSeries)
            if (agg.kind != SeriesKind::kGauge)
                p.rate = p.delta / span;
        }
        lv.ring.push(p);
    }
}

void
TimeSeriesHub::rollAt(sim::TimePs now)
{
    ++windowSeq;
    discover();
    for (auto &[name, agg] : aggregates)
        refreshAggregate(name, agg);
    for (auto &[name, s] : series)
        rollSeries(name, s, now);
    for (auto &[name, agg] : aggregates)
        rollAggregate(name, agg, now);
    exportWindow(now);
    traceWindow(now);
    for (const auto &fn : observers)
        fn(now, windowSeq);
    if (out != nullptr)
        out->flush();
}

namespace {

/** Serialize one base-window point according to the series kind. */
void
pointTo(std::ostream &os, SeriesKind kind, const TsPoint &p)
{
    using detail::jsonNumber;
    os << "{";
    if (kind == SeriesKind::kHistogram) {
        os << "\"n\":" << p.count << ",\"v\":";
        jsonNumber(os, p.value);
        os << ",\"r\":";
        jsonNumber(os, p.rate);
        os << ",\"mean\":";
        jsonNumber(os, p.mean);
        os << ",\"p50\":";
        jsonNumber(os, p.p50);
        os << ",\"p90\":";
        jsonNumber(os, p.p90);
        os << ",\"p99\":";
        jsonNumber(os, p.p99);
        os << ",\"p999\":";
        jsonNumber(os, p.p999);
    } else {
        os << "\"v\":";
        jsonNumber(os, p.value);
        os << ",\"d\":";
        jsonNumber(os, p.delta);
        if (kind != SeriesKind::kGauge) {
            os << ",\"r\":";
            jsonNumber(os, p.rate);
        }
    }
    os << "}";
}

}  // namespace

void
TimeSeriesHub::exportWindow(sim::TimePs now)
{
    if (out == nullptr)
        return;
    std::ostringstream line;
    line << "{\"type\":\"window\",\"seq\":" << windowSeq << ",\"t_us\":";
    detail::jsonNumber(line, static_cast<double>(now) / 1e6);
    line << ",\"series\":{";
    bool first = true;
    // Two-pointer merge over the sorted concrete and aggregate maps so
    // series appear in one global sorted order.
    auto si = series.cbegin();
    auto ai = aggregates.cbegin();
    auto emit = [&](const std::string &name, SeriesKind kind,
                    const LevelState &lv) {
        const TsPoint *p = lv.ring.latestPoint();
        if (p == nullptr || p->t != now)
            return;
        if (!first)
            line << ",";
        first = false;
        line << "\"";
        detail::jsonEscape(line, name);
        line << "\":";
        pointTo(line, kind, *p);
    };
    while (si != series.cend() || ai != aggregates.cend()) {
        if (ai == aggregates.cend() ||
            (si != series.cend() && si->first < ai->first)) {
            emit(si->first, si->second.kind, si->second.levels.front());
            ++si;
        } else {
            if (!ai->second.members.empty())
                emit(ai->first, ai->second.kind, ai->second.levels.front());
            ++ai;
        }
    }
    line << "}}";
    exportLine(line.str());
}

void
TimeSeriesHub::traceWindow(sim::TimePs now)
{
    if (trace == nullptr || !trace->enabled())
        return;
    auto emit = [&](const std::string &name, SeriesKind kind,
                    const LevelState &lv) {
        const TsPoint *lp = lv.ring.latestPoint();
        if (lp == nullptr || lp->t != now)
            return;
        const TsPoint p = *lp;
        switch (kind) {
        case SeriesKind::kGauge:
            trace->counter("ts", "ts." + name, now, p.value);
            break;
        case SeriesKind::kCounter:
        case SeriesKind::kProbe:
            trace->counter("ts", "ts." + name, now, p.rate);
            break;
        case SeriesKind::kHistogram:
            trace->counterMulti("ts", "ts." + name, now,
                                {{"p50", p.p50}, {"p99", p.p99}});
            break;
        }
    };
    for (const auto &[name, s] : series)
        emit(name, s.kind, s.levels.front());
    for (const auto &[name, agg] : aggregates) {
        if (!agg.members.empty())
            emit(name, agg.kind, agg.levels.front());
    }
}

void
TimeSeriesHub::startSampling(sim::EventQueue &eq)
{
    stopSampling();
    samplerQueue = &eq;
    scheduleTick();
}

void
TimeSeriesHub::scheduleTick()
{
    samplerEvent = samplerQueue->scheduleAfter(cfg.window, [this] {
        samplerEvent = sim::kNoEvent;
        rollAt(samplerQueue->now());
        scheduleTick();
    });
}

void
TimeSeriesHub::stopSampling()
{
    if (samplerEvent != sim::kNoEvent) {
        samplerQueue->cancel(samplerEvent);
        samplerEvent = sim::kNoEvent;
    }
    samplerQueue = nullptr;
}

void
TimeSeriesHub::startSampling(sim::ShardedEventQueue &sq)
{
    const sim::TimePs first = sq.now() + cfg.window;
    sq.atBarrier(
        [this, w = cfg.window, due = first](sim::TimePs e) mutable
        -> sim::TimePs {
            // Deadlines guarantee a barrier lands exactly on each
            // window end (the ShardedObservability mechanism).
            if (e == due) {
                rollAt(e);
                due += w;
            }
            return due;
        },
        first);
}

std::size_t
TimeSeriesHub::seriesCount() const
{
    std::size_t n = series.size();
    for (const auto &[name, agg] : aggregates) {
        if (!agg.members.empty())
            ++n;
    }
    return n;
}

std::vector<std::string>
TimeSeriesHub::seriesNames() const
{
    std::vector<std::string> names;
    names.reserve(seriesCount());
    for (const auto &[name, s] : series)
        names.push_back(name);
    for (const auto &[name, agg] : aggregates) {
        if (!agg.members.empty())
            names.push_back(name);
    }
    return names;
}

SeriesKind
TimeSeriesHub::kindOf(const std::string &name) const
{
    if (auto it = series.find(name); it != series.end())
        return it->second.kind;
    if (auto it = aggregates.find(name);
        it != aggregates.end() && !it->second.members.empty())
        return it->second.kind;
    sim::panicf("TimeSeriesHub::kindOf: unknown series ", name);
}

const TsPoint *
TimeSeriesHub::latest(const std::string &name) const
{
    const LevelState *lv = nullptr;
    if (auto it = series.find(name); it != series.end())
        lv = &it->second.levels.front();
    else if (auto ia = aggregates.find(name); ia != aggregates.end())
        lv = &ia->second.levels.front();
    return lv == nullptr ? nullptr : lv->ring.latestPoint();
}

std::vector<TsPoint>
TimeSeriesHub::history(const std::string &name, int level) const
{
    if (level < 0 || static_cast<std::size_t>(level) >= cfg.levels.size())
        sim::panicf("TimeSeriesHub::history: level ", level, " out of range");
    const std::vector<LevelState> *levels = nullptr;
    if (auto it = series.find(name); it != series.end())
        levels = &it->second.levels;
    else if (auto ia = aggregates.find(name); ia != aggregates.end())
        levels = &ia->second.levels;
    else
        sim::panicf("TimeSeriesHub::history: unknown series ", name);
    const Ring &r = (*levels)[static_cast<std::size_t>(level)].ring;
    std::vector<TsPoint> outv;
    outv.reserve(r.used);
    const std::size_t start = r.used < r.cap ? 0 : r.head;
    for (std::size_t i = 0; i < r.used; ++i)
        outv.push_back(r.buf[(start + i) % r.buf.size()]);
    return outv;
}

std::uint64_t
TimeSeriesHub::pointsRetained() const
{
    std::uint64_t n = 0;
    for (const auto &[name, s] : series) {
        for (const auto &lv : s.levels)
            n += lv.ring.used;
    }
    for (const auto &[name, agg] : aggregates) {
        for (const auto &lv : agg.levels)
            n += lv.ring.used;
    }
    return n;
}

void
TimeSeriesHub::exportLine(const std::string &json)
{
    if (out == nullptr)
        return;
    *out << json << '\n';
    ++linesOut;
}

std::string
TimeSeriesHub::envPath()
{
    const char *p = std::getenv("CCSIM_TS");
    return p ? std::string(p) : std::string();
}

const char *
TimeSeriesHub::kindName(SeriesKind k)
{
    switch (k) {
    case SeriesKind::kCounter:
        return "counter";
    case SeriesKind::kGauge:
        return "gauge";
    case SeriesKind::kProbe:
        return "probe";
    case SeriesKind::kHistogram:
        return "histogram";
    }
    return "?";
}

}  // namespace ccsim::obs
