/**
 * @file
 * The Shell: the common I/O and board-specific logic in every FPGA image
 * (Figure 4). It wires together the two 40G MACs, the NIC<->TOR bridge
 * and tap, the Elastic Router, the LTL protocol engine, the PCIe DMA
 * engines, and the DDR3 controller, and hosts one or more Roles.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fpga/area_model.hpp"
#include "fpga/board.hpp"
#include "fpga/bridge.hpp"
#include "fpga/dram.hpp"
#include "fpga/pcie.hpp"
#include "fpga/role.hpp"
#include "ltl/ltl_engine.hpp"
#include "ltl/packet_switch.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "router/elastic_router.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::fpga {

/** Fixed Elastic Router port assignments in the single-role shell. */
inline constexpr int kErPortPcie = 0;
inline constexpr int kErPortDram = 1;
inline constexpr int kErPortLtl = 2;
inline constexpr int kErPortRole0 = 3;

/** VC used for request traffic; VC 1 carries responses. */
inline constexpr int kVcRequest = 0;
inline constexpr int kVcResponse = 1;

/** Payload of an ER message asking the LTL endpoint to transmit. */
struct LtlSendRequest {
    std::uint16_t conn = 0;
    std::uint32_t bytes = 0;
    std::uint8_t vc = 0;
    std::shared_ptr<void> appPayload;
    obs::TraceContext trace;  ///< flow context to continue on the wire
};

/** Payload of an ER message delivering a received LTL message to a role. */
struct LtlDelivery {
    std::uint16_t conn = 0;
    std::uint64_t msgId = 0;
    std::uint32_t bytes = 0;
    std::shared_ptr<void> appPayload;
    sim::TimePs sentAt = 0;
    obs::TraceContext trace;  ///< sender's flow context
};

/** Payload of an ER message requesting a DRAM access. */
struct DramRequest {
    std::uint32_t bytes = 0;
    bool isWrite = false;
    int replyPort = -1;
    std::uint64_t cookie = 0;
};

/** Payload of the DRAM completion message. */
struct DramReply {
    std::uint64_t cookie = 0;
};

/** Shell configuration. */
struct ShellConfig {
    std::string name = "shell";
    net::Ipv4Addr ip;
    int roleSlots = 1;
    /** Deploy the LTL block (shell versions without it free 7% area). */
    bool enableLtl = true;
    BridgeConfig bridge;
    router::ErConfig er;
    ltl::LtlConfig ltl;
    ltl::PacketSwitchConfig packetSwitch;
    PcieConfig pcie;
    DramConfig dram;
    BoardSpec board;
};

/**
 * One FPGA shell instance (one per server).
 */
class Shell
{
  public:
    /** Handler for role->host messages surfacing through PCIe DMA. */
    using HostRxFn =
        std::function<void(int role_port, const router::ErMessagePtr &)>;

    Shell(sim::EventQueue &eq, ShellConfig cfg);
    ~Shell();

    Shell(const Shell &) = delete;
    Shell &operator=(const Shell &) = delete;

    // --- wiring to the outside world -------------------------------------

    /** Sink for the TOR-side 40G interface (attach to the host link). */
    net::PacketSink *torSideSink() { return bridgeUnit.torSideSink(); }
    /** Channel the shell transmits into toward the TOR. */
    void setTorTx(net::Channel *tx) { bridgeUnit.setTorTx(tx); }
    /** Sink for the NIC-side 40G interface (attach to the NIC link). */
    net::PacketSink *nicSideSink() { return bridgeUnit.nicSideSink(); }
    /** Channel the shell transmits into toward the NIC. */
    void setNicTx(net::Channel *tx) { bridgeUnit.setNicTx(tx); }

    // --- roles ------------------------------------------------------------

    /**
     * Place a role into the next free slot.
     *
     * @return The ER port assigned, or -1 if no slot / no area remains.
     */
    int addRole(Role *role);

    /**
     * Evict the role at @p role_port: its slot and area are freed for
     * the next configuration (messages still in the ER are dropped and
     * counted as inactive drops). No-op if the slot is already empty.
     */
    void removeRole(int role_port);

    /** Role tap on the bridge (network acceleration, e.g. crypto). */
    void setRoleTap(Bridge::TapFn fn) { roleTap = std::move(fn); }

    // --- host interface (PCIe) --------------------------------------------

    /** Host software sends @p bytes to a role over PCIe DMA + ER. */
    void sendFromHost(int role_port, std::uint32_t bytes,
                      std::shared_ptr<void> payload, int vc = kVcRequest);

    /** Handler for messages a role sends to the host (ER port 0). */
    void setHostRxHandler(HostRxFn fn) { hostRx = std::move(fn); }

    /**
     * Route host-bound messages from the role at @p role_port to @p fn,
     * overriding the global handler for that port only. Lets several
     * host-side clients share one shell, each listening to its own
     * role (e.g. a forwarder pool). Pass nullptr to remove.
     */
    void setHostRxHandler(int role_port, HostRxFn fn);

    // --- remote acceleration (LTL) ------------------------------------------

    /** The LTL protocol engine (null if the shell was built without it). */
    ltl::LtlEngine *ltlEngine() { return ltlUnit.get(); }

    /**
     * Deliver messages arriving on LTL receive connection @p conn to the
     * role at @p er_port (via the ER, as on real hardware).
     */
    void bindReceiveConnection(std::uint16_t conn, int er_port);

    /**
     * Inject a role-generated raw network packet toward the TOR. It
     * passes through the LTL Packet Switch: classified onto the role
     * traffic class and bandwidth-limited by random early drop so the
     * FPGA cannot starve its host's traffic.
     *
     * @return false if policed away or the bridge is down.
     */
    bool injectRolePacket(const net::PacketPtr &pkt);

    /** The LTL packet switch (classification/policing statistics). */
    ltl::LtlPacketSwitch &packetSwitch() { return *pktSwitch; }

    // --- reconfiguration and reliability ------------------------------------

    /**
     * Full reconfiguration: the bridge goes down for the configured time
     * (most applications tolerate the brief outage).
     */
    void reconfigureFull(std::function<void()> done = {});

    /**
     * Graceful full reconfiguration: quiesce the LTL engine first (stop
     * admitting sends, drain in-flight frames, reject late arrivals),
     * then reconfigure, then reopen LTL admission. @p done fires when
     * the node is back up. Peers whose frames are rejected mid-window
     * fail over immediately instead of silently losing traffic. Without
     * an LTL block this degrades to reconfigureFull().
     */
    void reconfigureFullQuiesced(std::function<void()> done = {});

    /**
     * Flash and load an application image (full reconfiguration). If the
     * image is buggy, network traffic to the server stays cut off until
     * powerCycleViaManagementPath() reloads the known-good golden image
     * (the recovery story of Section II).
     */
    void loadApplicationImage(const FpgaImage &image,
                              std::function<void()> done = {});

    /**
     * Power-cycle the server through the side-channel management path:
     * the golden bypass image loads from flash and the server becomes
     * reachable again. Roles stay inactive until an application image
     * is reloaded.
     */
    void powerCycleViaManagementPath();

    /**
     * Partial reconfiguration of a role slot: packets keep passing
     * through; the role drops messages while being reconfigured.
     */
    void reconfigureRolePartial(int role_port,
                                std::function<void()> done = {});

    /**
     * Start periodic configuration-state scrubbing (default every 30 s).
     * Detects injected SEUs; a hang recovers via partial reconfiguration.
     */
    void startScrubbing(sim::TimePs interval = 30 * sim::kSecond);

    /** Inject a configuration-bit upset (for reliability experiments). */
    void injectSeu(bool causes_role_hang);

    // --- observability ------------------------------------------------------

    /**
     * Export this shell's statistics under `fpga.<node>.*` (PCIe/DRAM
     * byte counts and utilization probes) and cascade to the Elastic
     * Router (`router.<node>.*`) and LTL engine (`ltl.<node>.*`). Pass
     * nullptr to detach.
     */
    void attachObservability(obs::Observability *o, const std::string &node);

    // --- introspection ------------------------------------------------------

    router::ElasticRouter &elasticRouter() { return *er; }
    router::ErEndpoint &roleEndpoint(int role_port);
    Bridge &bridge() { return bridgeUnit; }
    PcieDma &pcie() { return pcieUnit; }
    DramChannel &dram() { return dramUnit; }
    FpgaBoard &board() { return fpgaBoard; }
    const AreaModel &areaModel() const { return area; }
    const ShellConfig &config() const { return cfg; }
    net::Ipv4Addr ip() const { return cfg.ip; }

    std::uint64_t seusDetected() const { return statSeusDetected; }
    std::uint64_t roleHangsRecovered() const { return statHangRecoveries; }
    std::uint64_t messagesToInactiveRole() const { return statInactiveDrops; }

  private:
    sim::EventQueue &queue;
    ShellConfig cfg;
    FpgaBoard fpgaBoard;
    Bridge bridgeUnit;
    PcieDma pcieUnit;
    DramChannel dramUnit;
    std::unique_ptr<router::ElasticRouter> er;
    std::unique_ptr<ltl::LtlEngine> ltlUnit;
    std::unique_ptr<ltl::LtlPacketSwitch> pktSwitch;
    AreaModel area;

    std::unique_ptr<router::ErEndpoint> pcieEndpoint;
    std::unique_ptr<router::ErEndpoint> dramEndpoint;
    std::unique_ptr<router::ErEndpoint> ltlEndpoint;
    std::vector<std::unique_ptr<router::ErEndpoint>> roleEndpoints;
    std::vector<Role *> roles;
    std::vector<bool> roleActive;

    Bridge::TapFn roleTap;
    HostRxFn hostRx;
    std::map<int, HostRxFn> hostRxByPort;  // per-port overrides
    std::vector<int> connToPort;  // LTL receive conn -> ER port

    // Reliability state.
    int pendingSeus = 0;
    bool pendingHang = false;
    std::uint64_t statSeusDetected = 0;
    std::uint64_t statHangRecoveries = 0;
    std::uint64_t statInactiveDrops = 0;
    sim::EventId scrubEvent = sim::kNoEvent;

    TapResult onTap(Direction dir, const net::PacketPtr &pkt);
    void onLtlDelivery(const ltl::LtlMessage &msg);
    void onPcieMessage(const router::ErMessagePtr &msg);
    void onDramMessage(const router::ErMessagePtr &msg);
    void onLtlEndpointMessage(const router::ErMessagePtr &msg);
    void dispatchToRole(int slot, const router::ErMessagePtr &msg);
    AreaModel buildShellArea() const;
};

}  // namespace ccsim::fpga
