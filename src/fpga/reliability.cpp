#include "fpga/reliability.hpp"

namespace ccsim::fpga {

DeploymentReport
simulateDeployment(const DeploymentConfig &cfg)
{
    sim::Rng rng(cfg.seed);
    DeploymentReport report;
    report.servers = cfg.servers;
    report.days = cfg.days;
    report.machineDays =
        static_cast<std::uint64_t>(cfg.servers) * cfg.days;

    for (int machine = 0; machine < cfg.servers; ++machine) {
        // Bring-up failures (independent of the deployment window).
        if (rng.bernoulli(cfg.pcieTrainingFailureProb))
            ++report.pcieTrainingFailures;
        if (rng.bernoulli(cfg.dramCalibFailureProb))
            ++report.dramCalibFailures;

        // Poisson counts over the window.
        const double window_days = cfg.days;
        const std::uint64_t seus =
            rng.poisson(cfg.seuPerMachineDay * window_days);
        report.seuEvents += seus;
        for (std::uint64_t s = 0; s < seus; ++s) {
            if (rng.bernoulli(cfg.roleHangPerSeu))
                ++report.roleHangs;
            else
                ++report.seuCaughtByScrub;
        }
        report.hardFailures +=
            rng.poisson(cfg.hardFailurePerMachineDay * window_days);
        report.cableFailures +=
            rng.poisson(cfg.cableFailurePerMachineMonth *
                        (window_days / 30.0));
    }
    return report;
}

}  // namespace ccsim::fpga
