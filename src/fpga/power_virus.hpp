/**
 * @file
 * The power virus and burn-in workload (Section II): "To measure the
 * power consumption limits of the entire FPGA card ... we developed a
 * power virus that exercises nearly all of the FPGA's interfaces, logic,
 * and DSP blocks — while running the card in a thermal chamber operating
 * in worst-case conditions. Under these conditions, the card consumes
 * 29.2 W of power, which is well within the 32 W TDP limits ... and
 * below the max electrical power draw limit of 35 W."
 *
 * The simulated virus saturates every shell datapath (DDR3, both PCIe
 * directions, the ER crossbar) for a configurable duration, then reports
 * achieved utilizations and the modeled worst-case power, exactly the
 * qualification every server passed before production (Section II-B).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "fpga/shell.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::fpga {

/** Thermal-chamber conditions for the qualification run. */
struct BurnInConditions {
    double ambientTempC = 70.0;   ///< peak inlet air temperature
    double airflowLfm = 160.0;    ///< minimum airflow (one failed fan)
    bool highCpuLoad = true;
};

/** Result of one burn-in run. */
struct BurnInReport {
    double dramUtilization = 0.0;
    double pcieUtilization = 0.0;
    double erUtilization = 0.0;
    /** Modeled worst-case card power under the virus. */
    double powerWatts = 0.0;
    bool withinTdp = false;
    bool withinElectricalLimit = false;
    bool thermalConditionsMet = false;

    bool passed() const
    {
        return withinTdp && withinElectricalLimit && thermalConditionsMet;
    }
};

/**
 * Drives a shell's datapaths at saturation for the qualification
 * duration and evaluates the power/thermal envelope.
 */
class PowerVirus
{
  public:
    explicit PowerVirus(sim::EventQueue &eq) : queue(eq) {}

    /**
     * Run the virus against @p shell for @p duration of simulated time,
     * then invoke @p done with the report. The shell remains usable
     * afterwards (this is a read-side stress, as on real hardware).
     */
    void run(Shell &shell, sim::TimePs duration,
             BurnInConditions conditions,
             std::function<void(const BurnInReport &)> done);

  private:
    sim::EventQueue &queue;

    using Counter = std::shared_ptr<std::uint64_t>;
    void pumpDram(Shell &shell, sim::TimePs until, Counter bytes);
    void pumpPcie(Shell &shell, sim::TimePs until, Counter bytes);
};

}  // namespace ccsim::fpga
