/**
 * @file
 * Area and clock-frequency accounting for the Stratix V D5 shell image
 * (reproduces Figure 5 of the paper).
 *
 * The production-deployed image dedicates 44% of the FPGA to shell
 * functions (MACs, bridge, LTL, ER, DDR3 controller, PCIe DMA) and leaves
 * the rest for roles; the Bing ranking role uses 32%, for 76% total.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim::fpga {

/** Total programmable logic on the Altera Stratix V D5. */
inline constexpr std::uint32_t kStratixVD5Alms = 172600;

/** One IP block in the FPGA image. */
struct ShellComponent {
    std::string name;
    std::uint32_t alms = 0;
    /** Achieved clock in MHz; 0 renders as "-" (no single clock). */
    double freqMhz = 0.0;
    /** True for shell infrastructure, false for role logic. */
    bool isShell = true;
};

/** Area accounting for one FPGA image. */
class AreaModel
{
  public:
    /** Start from an empty device of @p total_alms ALMs. */
    explicit AreaModel(std::uint32_t total_alms = kStratixVD5Alms)
        : totalAlms(total_alms)
    {
    }

    /**
     * The production-deployed image with remote acceleration support
     * (LTL + ER + ranking role), exactly as tabulated in Figure 5.
     */
    static AreaModel productionImage();

    /** Add a component. Returns false (and does not add) if it won't fit. */
    bool addComponent(ShellComponent c);

    /** Remove all role (non-shell) components, e.g. on reconfiguration. */
    void clearRoles();

    /**
     * Remove the first component named @p name (role eviction frees its
     * area for the next configuration). Returns false if not present.
     */
    bool removeComponent(const std::string &name);

    const std::vector<ShellComponent> &components() const { return parts; }

    std::uint32_t totalAvailable() const { return totalAlms; }
    std::uint32_t totalUsed() const;
    std::uint32_t shellUsed() const;
    std::uint32_t roleUsed() const;
    std::uint32_t freeAlms() const { return totalAlms - totalUsed(); }

    /** Utilization of the whole device, in percent. */
    double utilizationPercent() const
    {
        return 100.0 * totalUsed() / totalAlms;
    }

    /** Percent of the device used by one component count of ALMs. */
    double percentOf(std::uint32_t alms) const
    {
        return 100.0 * alms / totalAlms;
    }

  private:
    std::uint32_t totalAlms;
    std::vector<ShellComponent> parts;
};

}  // namespace ccsim::fpga
