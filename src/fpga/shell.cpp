#include "fpga/shell.hpp"

#include "sim/logging.hpp"

namespace ccsim::fpga {

Shell::Shell(sim::EventQueue &eq, ShellConfig config)
    : queue(eq), cfg(std::move(config)), fpgaBoard(cfg.board),
      bridgeUnit(eq, cfg.bridge), pcieUnit(eq, cfg.pcie),
      dramUnit(eq, cfg.dram), area(cfg.board.totalAlms)
{
    // Size the ER: PCIe + DRAM + LTL + role slots.
    router::ErConfig er_cfg = cfg.er;
    er_cfg.numPorts = kErPortRole0 + cfg.roleSlots;
    er_cfg.name = cfg.name + ".er";
    er = std::make_unique<router::ElasticRouter>(queue, er_cfg);

    pcieEndpoint = std::make_unique<router::ErEndpoint>(queue, *er,
                                                        kErPortPcie,
                                                        kErPortPcie);
    er->setOutputSink(kErPortPcie, pcieEndpoint.get());
    pcieEndpoint->setMessageHandler(
        [this](const router::ErMessagePtr &m) { onPcieMessage(m); });

    dramEndpoint = std::make_unique<router::ErEndpoint>(queue, *er,
                                                        kErPortDram,
                                                        kErPortDram);
    er->setOutputSink(kErPortDram, dramEndpoint.get());
    dramEndpoint->setMessageHandler(
        [this](const router::ErMessagePtr &m) { onDramMessage(m); });

    pktSwitch = std::make_unique<ltl::LtlPacketSwitch>(
        queue, cfg.packetSwitch, [this](const net::PacketPtr &pkt) {
            return bridgeUnit.injectToTor(pkt);
        });

    if (cfg.enableLtl) {
        ltl::LtlConfig ltl_cfg = cfg.ltl;
        ltl_cfg.localIp = cfg.ip;
        ltlUnit = std::make_unique<ltl::LtlEngine>(
            queue, ltl_cfg,
            [this](const net::PacketPtr &pkt) {
                pktSwitch->sendLtl(pkt);
            });
        ltlUnit->setDeliveryHandler(
            [this](const ltl::LtlMessage &m) { onLtlDelivery(m); });
        ltlEndpoint = std::make_unique<router::ErEndpoint>(queue, *er,
                                                           kErPortLtl,
                                                           kErPortLtl);
        er->setOutputSink(kErPortLtl, ltlEndpoint.get());
        ltlEndpoint->setMessageHandler(
            [this](const router::ErMessagePtr &m) {
                onLtlEndpointMessage(m);
            });
    }

    roleEndpoints.resize(cfg.roleSlots);
    roles.resize(cfg.roleSlots, nullptr);
    roleActive.resize(cfg.roleSlots, false);

    bridgeUnit.setTap([this](Direction d, const net::PacketPtr &p) {
        return onTap(d, p);
    });

    area = buildShellArea();
    fpgaBoard.powerOn();
    fpgaBoard.flashApplicationImage(
        FpgaImage{cfg.name + ".app", false, 0, false});
    fpgaBoard.loadApplicationImage();
}

Shell::~Shell()
{
    if (scrubEvent != sim::kNoEvent)
        queue.cancel(scrubEvent);
}

void
Shell::attachObservability(obs::Observability *o, const std::string &node)
{
    er->attachObservability(o, node);
    if (ltlUnit)
        ltlUnit->attachObservability(o, node);
    if (!o)
        return;
    const std::string prefix = "fpga." + node;
    auto &reg = o->registry;
    reg.registerProbe(prefix + ".pcie_bytes",
                      [this] { return double(pcieUnit.bytesTransferred()); });
    reg.registerProbe(prefix + ".pcie_transfers",
                      [this] { return double(pcieUnit.transfers()); });
    reg.registerProbe(prefix + ".pcie_util", [this] {
        // Two independent directions: full duplex counts as 2.0 here.
        const sim::TimePs now = queue.now();
        return now > 0 ? double(pcieUnit.busyTime()) / double(now) : 0.0;
    });
    reg.registerProbe(prefix + ".dram_bytes",
                      [this] { return double(dramUnit.bytesAccessed()); });
    reg.registerProbe(prefix + ".dram_reads",
                      [this] { return double(dramUnit.reads()); });
    reg.registerProbe(prefix + ".dram_writes",
                      [this] { return double(dramUnit.writes()); });
    reg.registerProbe(prefix + ".dram_util", [this] {
        const sim::TimePs now = queue.now();
        return now > 0 ? double(dramUnit.busyTime()) / double(now) : 0.0;
    });
}

AreaModel
Shell::buildShellArea() const
{
    AreaModel m(cfg.board.totalAlms);
    m.addComponent({"40G MAC/PHY (TOR)", 9785, 313.0, true});
    m.addComponent({"40G MAC/PHY (NIC)", 13122, 313.0, true});
    m.addComponent({"Network Bridge / Bypass", 4685, 313.0, true});
    m.addComponent({"DDR3 Memory Controller", 13225, 200.0, true});
    m.addComponent({"Elastic Router", 3449, 156.0, true});
    if (cfg.enableLtl) {
        m.addComponent({"LTL Protocol Engine", 11839, 156.0, true});
        m.addComponent({"LTL Packet Switch", 4815, 313.0, true});
    }
    m.addComponent({"PCIe Gen 3 DMA x 2", 6817, 250.0, true});
    m.addComponent({"Other", 8273, 0.0, true});
    return m;
}

int
Shell::addRole(Role *role)
{
    for (int slot = 0; slot < cfg.roleSlots; ++slot) {
        if (roles[slot] != nullptr)
            continue;
        if (!area.addComponent({"Role: " + role->name(), role->areaAlms(),
                                role->clockMhz(), false})) {
            CCSIM_LOG(sim::LogLevel::kWarn, cfg.name, queue.now(),
                      "role ", role->name(), " does not fit (",
                      role->areaAlms(), " ALMs, ", area.freeAlms(),
                      " free)");
            return -1;
        }
        const int port = kErPortRole0 + slot;
        roles[slot] = role;
        roleActive[slot] = true;
        roleEndpoints[slot] = std::make_unique<router::ErEndpoint>(
            queue, *er, port, port);
        er->setOutputSink(port, roleEndpoints[slot].get());
        roleEndpoints[slot]->setMessageHandler(
            [this, slot](const router::ErMessagePtr &m) {
                dispatchToRole(slot, m);
            });
        role->attach(*this, port);
        return port;
    }
    CCSIM_LOG(sim::LogLevel::kWarn, cfg.name, queue.now(),
              "no free role slot for ", role->name());
    return -1;
}

void
Shell::removeRole(int role_port)
{
    const int slot = role_port - kErPortRole0;
    if (slot < 0 || slot >= cfg.roleSlots || roles[slot] == nullptr)
        return;
    area.removeComponent("Role: " + roles[slot]->name());
    roles[slot] = nullptr;
    roleActive[slot] = false;
}

router::ErEndpoint &
Shell::roleEndpoint(int role_port)
{
    const int slot = role_port - kErPortRole0;
    if (slot < 0 || slot >= cfg.roleSlots || !roleEndpoints[slot])
        sim::panicf(cfg.name, ": bad role port ", role_port);
    return *roleEndpoints[slot];
}

void
Shell::dispatchToRole(int slot, const router::ErMessagePtr &msg)
{
    if (!roleActive[slot] || roles[slot] == nullptr) {
        ++statInactiveDrops;
        return;
    }
    roles[slot]->onMessage(msg);
}

TapResult
Shell::onTap(Direction dir, const net::PacketPtr &pkt)
{
    // LTL frames addressed to this FPGA are consumed out of the stream.
    if (dir == Direction::kFromTor && ltlUnit &&
        pkt->etherType == net::EtherType::kIpv4 &&
        pkt->ipProto == net::IpProto::kUdp &&
        pkt->dstPort == cfg.ltl.udpPort && pkt->ipDst == cfg.ip &&
        pkt->meta != nullptr) {
        ltlUnit->onNetworkPacket(pkt);
        return TapResult{TapResult::Action::kConsume, 0};
    }
    if (roleTap)
        return roleTap(dir, pkt);
    return TapResult{};
}

void
Shell::sendFromHost(int role_port, std::uint32_t bytes,
                    std::shared_ptr<void> payload, int vc)
{
    pcieUnit.hostToFpga(bytes, [this, role_port, bytes, vc,
                                payload = std::move(payload)]() mutable {
        pcieEndpoint->sendMessage(role_port, vc, bytes, std::move(payload));
    });
}

void
Shell::setHostRxHandler(int role_port, HostRxFn fn)
{
    if (fn)
        hostRxByPort[role_port] = std::move(fn);
    else
        hostRxByPort.erase(role_port);
}

void
Shell::onPcieMessage(const router::ErMessagePtr &msg)
{
    // A role pushed data toward the host: DMA it up, then notify.
    pcieUnit.fpgaToHost(msg->sizeBytes, [this, msg] {
        auto it = hostRxByPort.find(msg->srcEndpoint);
        if (it != hostRxByPort.end()) {
            it->second(msg->srcEndpoint, msg);
            return;
        }
        if (hostRx)
            hostRx(msg->srcEndpoint, msg);
    });
}

void
Shell::onDramMessage(const router::ErMessagePtr &msg)
{
    auto req = std::static_pointer_cast<DramRequest>(msg->payload);
    if (!req) {
        CCSIM_LOG(sim::LogLevel::kWarn, cfg.name, queue.now(),
                  "DRAM message without DramRequest payload");
        return;
    }
    auto finish = [this, req] {
        if (req->replyPort >= 0) {
            auto reply = std::make_shared<DramReply>();
            reply->cookie = req->cookie;
            dramEndpoint->sendMessage(req->replyPort, kVcResponse,
                                      64, std::move(reply));
        }
    };
    if (req->isWrite)
        dramUnit.write(req->bytes, std::move(finish));
    else
        dramUnit.read(req->bytes, std::move(finish));
}

void
Shell::onLtlEndpointMessage(const router::ErMessagePtr &msg)
{
    auto req = std::static_pointer_cast<LtlSendRequest>(msg->payload);
    if (!req || !ltlUnit) {
        CCSIM_LOG(sim::LogLevel::kWarn, cfg.name, queue.now(),
                  "LTL endpoint message without LtlSendRequest payload");
        return;
    }
    ltlUnit->sendMessage(req->conn, req->bytes, req->appPayload, req->vc,
                         req->trace);
}

void
Shell::bindReceiveConnection(std::uint16_t conn, int er_port)
{
    if (connToPort.size() <= conn)
        connToPort.resize(conn + 1, -1);
    connToPort[conn] = er_port;
}

void
Shell::onLtlDelivery(const ltl::LtlMessage &msg)
{
    int port = -1;
    if (msg.conn < connToPort.size())
        port = connToPort[msg.conn];
    if (port < 0) {
        CCSIM_LOG(sim::LogLevel::kDebug, cfg.name, queue.now(),
                  "LTL delivery on unbound connection ", msg.conn);
        return;
    }
    auto delivery = std::make_shared<LtlDelivery>();
    delivery->conn = msg.conn;
    delivery->msgId = msg.msgId;
    delivery->bytes = msg.bytes;
    delivery->appPayload = msg.payload;
    delivery->sentAt = msg.sentAt;
    delivery->trace = msg.trace;
    ltlEndpoint->sendMessage(port, msg.vc, msg.bytes, std::move(delivery),
                             msg.trace);
}

bool
Shell::injectRolePacket(const net::PacketPtr &pkt)
{
    if (pkt->ipSrc.value == 0)
        pkt->ipSrc = cfg.ip;
    if (pkt->createdAt == 0)
        pkt->createdAt = queue.now();
    return pktSwitch->sendRole(pkt);
}

void
Shell::loadApplicationImage(const FpgaImage &image,
                            std::function<void()> done)
{
    fpgaBoard.flashApplicationImage(image);
    bridgeUnit.setDown(true);
    for (int slot = 0; slot < cfg.roleSlots; ++slot)
        roleActive[slot] = false;
    queue.scheduleAfter(cfg.board.fullReconfigTime,
                        [this, done = std::move(done)] {
                            fpgaBoard.loadApplicationImage();
                            const bool buggy =
                                fpgaBoard.loadedImage() &&
                                fpgaBoard.loadedImage()->buggy;
                            if (!buggy) {
                                // Healthy image: restore the bypass and
                                // the roles.
                                bridgeUnit.setDown(false);
                                for (int s = 0; s < cfg.roleSlots; ++s) {
                                    if (roles[s] != nullptr)
                                        roleActive[s] = true;
                                }
                            }
                            // A buggy image leaves the bridge down: the
                            // server is cut off until a power cycle.
                            if (done)
                                done();
                        });
}

void
Shell::powerCycleViaManagementPath()
{
    fpgaBoard.powerCycle();  // golden image loads from flash
    bridgeUnit.setDown(false);
    // The golden image is bypass-only: roles are not configured.
    for (int slot = 0; slot < cfg.roleSlots; ++slot)
        roleActive[slot] = false;
}

void
Shell::reconfigureFull(std::function<void()> done)
{
    bridgeUnit.setDown(true);
    for (int slot = 0; slot < cfg.roleSlots; ++slot)
        roleActive[slot] = roles[slot] != nullptr ? false : roleActive[slot];
    queue.scheduleAfter(cfg.board.fullReconfigTime,
                        [this, done = std::move(done)] {
                            bridgeUnit.setDown(false);
                            for (int s = 0; s < cfg.roleSlots; ++s) {
                                if (roles[s] != nullptr)
                                    roleActive[s] = true;
                            }
                            if (done)
                                done();
                        });
}

void
Shell::reconfigureFullQuiesced(std::function<void()> done)
{
    if (!ltlUnit) {
        reconfigureFull(std::move(done));
        return;
    }
    ltlUnit->beginQuiesce(
        cfg.ltl.quiesceDrainTimeout, [this, done = std::move(done)] {
            reconfigureFull([this, done = std::move(done)] {
                ltlUnit->endQuiesce();
                if (done)
                    done();
            });
        });
}

void
Shell::reconfigureRolePartial(int role_port, std::function<void()> done)
{
    const int slot = role_port - kErPortRole0;
    if (slot < 0 || slot >= cfg.roleSlots)
        sim::panicf(cfg.name, ": bad role port ", role_port);
    roleActive[slot] = false;
    queue.scheduleAfter(cfg.board.partialReconfigTime,
                        [this, slot, done = std::move(done)] {
                            if (roles[slot] != nullptr)
                                roleActive[slot] = true;
                            if (done)
                                done();
                        });
}

void
Shell::startScrubbing(sim::TimePs interval)
{
    if (scrubEvent != sim::kNoEvent)
        return;
    scrubEvent = queue.scheduleAfter(interval, [this, interval] {
        scrubEvent = sim::kNoEvent;
        if (pendingSeus > 0) {
            statSeusDetected += pendingSeus;
            pendingSeus = 0;
        }
        if (pendingHang) {
            pendingHang = false;
            ++statHangRecoveries;
            // Recover the hung role via partial reconfiguration.
            if (!roles.empty() && roles[0] != nullptr)
                reconfigureRolePartial(kErPortRole0);
        }
        startScrubbing(interval);
    });
}

void
Shell::injectSeu(bool causes_role_hang)
{
    ++pendingSeus;
    if (causes_role_hang)
        pendingHang = true;
}

}  // namespace ccsim::fpga
