/**
 * @file
 * The bump-in-the-wire network bridge (Section II / Figure 4, top).
 *
 * The FPGA sits between the server's NIC and the TOR switch: the NIC is
 * cabled to one FPGA port and the other FPGA port to the TOR. The bridge
 * must always pass packets between the two interfaces, and provides a tap
 * for roles (and the LTL engine) to inject, inspect, and alter traffic.
 * Full reconfiguration briefly brings the link down; partial
 * reconfiguration keeps the bypass alive.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/channel.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::fpga {

/** Direction of travel through the bridge. */
enum class Direction {
    kFromNic,  ///< host transmit path (NIC -> TOR)
    kFromTor,  ///< host receive path (TOR -> NIC)
};

/** What the tap decided about a packet. */
struct TapResult {
    enum class Action {
        kForward,  ///< pass through (possibly after mutation by the tap)
        kConsume,  ///< swallowed by the FPGA (e.g. an LTL frame)
    };
    Action action = Action::kForward;
    /** Extra processing latency before forwarding (e.g. crypto). */
    sim::TimePs extraDelay = 0;
};

/** Bridge configuration. */
struct BridgeConfig {
    std::string name = "bridge";
    /** One-way latency through MAC + bypass logic. */
    sim::TimePs traverseLatency = 120 * sim::kNanosecond;
};

/** The NIC<->TOR bypass with a role/LTL tap. */
class Bridge
{
  public:
    /**
     * Tap callback: inspect (and possibly mutate) a packet.
     * Return kConsume to take the packet out of the stream.
     */
    using TapFn = std::function<TapResult(Direction, const net::PacketPtr &)>;

    Bridge(sim::EventQueue &eq, BridgeConfig cfg);

    /** Transmit channel toward the TOR switch. */
    void setTorTx(net::Channel *tx) { torTx = tx; }
    /** Transmit channel toward the NIC. */
    void setNicTx(net::Channel *tx) { nicTx = tx; }

    /** Sink to attach at the NIC-side link (receives host transmissions). */
    net::PacketSink *nicSideSink() { return &nicSide; }
    /** Sink to attach at the TOR-side link (receives network traffic). */
    net::PacketSink *torSideSink() { return &torSide; }

    /** Install the tap (at most one; the shell multiplexes roles). */
    void setTap(TapFn fn) { tap = std::move(fn); }

    /** FPGA-generated packet toward the network (LTL, roles). */
    bool injectToTor(const net::PacketPtr &pkt);
    /** FPGA-generated packet toward the host. */
    bool injectToNic(const net::PacketPtr &pkt);

    /**
     * Take the bridge down (full FPGA reconfiguration) or up. While down,
     * all packets are dropped, modelling the brief network outage.
     */
    void setDown(bool down) { isDown = down; }
    bool down() const { return isDown; }

    std::uint64_t forwardedNicToTor() const { return statNicToTor; }
    std::uint64_t forwardedTorToNic() const { return statTorToNic; }
    std::uint64_t consumedByTap() const { return statConsumed; }
    std::uint64_t injected() const { return statInjected; }
    std::uint64_t droppedWhileDown() const { return statDownDrops; }

  private:
    class Side : public net::PacketSink
    {
      public:
        Side(Bridge *b, Direction d) : parent(b), dir(d) {}
        void acceptPacket(const net::PacketPtr &pkt) override
        {
            parent->handle(dir, pkt);
        }

      private:
        Bridge *parent;
        Direction dir;
    };

    sim::EventQueue &queue;
    BridgeConfig config;
    net::Channel *torTx = nullptr;
    net::Channel *nicTx = nullptr;
    TapFn tap;
    Side nicSide{this, Direction::kFromNic};
    Side torSide{this, Direction::kFromTor};
    bool isDown = false;

    std::uint64_t statNicToTor = 0;
    std::uint64_t statTorToNic = 0;
    std::uint64_t statConsumed = 0;
    std::uint64_t statInjected = 0;
    std::uint64_t statDownDrops = 0;

    void handle(Direction dir, const net::PacketPtr &pkt);
};

}  // namespace ccsim::fpga
