/**
 * @file
 * The accelerator board (Section II, Figures 2 & 3): an Altera Stratix V
 * D5 with one 4 GB DDR3-1600 channel, two PCIe Gen3 x8 connections, two
 * 40 GbE QSFP+ interfaces, and a 256 Mb configuration flash that holds a
 * known-good golden image plus one application image.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fpga/area_model.hpp"
#include "sim/time.hpp"

namespace ccsim::fpga {

/** A configuration bitstream stored in flash or loaded in the fabric. */
struct FpgaImage {
    std::string name;
    /** The golden image is loaded at power-on and rarely overwritten. */
    bool golden = false;
    /** ALMs used by role logic in this image. */
    std::uint32_t roleAlms = 0;
    /** A buggy application image can cut off network traffic when loaded. */
    bool buggy = false;
};

/** Board-level constants and power model. */
struct BoardSpec {
    std::uint32_t totalAlms = kStratixVD5Alms;
    double tdpWatts = 32.0;
    double maxElectricalWatts = 35.0;
    /** Measured with the power virus in worst-case thermal conditions. */
    double powerVirusWatts = 29.2;
    double idleWatts = 12.0;
    /** Full-chip reconfiguration time (network link is down meanwhile). */
    sim::TimePs fullReconfigTime = 2 * sim::kSecond;
    /** Partial reconfiguration of a role region (bypass stays alive). */
    sim::TimePs partialReconfigTime = 250 * sim::kMillisecond;
    double maxInletTempC = 70.0;
    double airflowLfm = 160.0;
};

/** The accelerator board: flash, loaded image, power estimation. */
class FpgaBoard
{
  public:
    explicit FpgaBoard(BoardSpec spec = {});

    const BoardSpec &spec() const { return boardSpec; }

    /** Write the golden image (done once at manufacturing; rare after). */
    void flashGoldenImage(FpgaImage image);
    /** Write the application image slot. */
    void flashApplicationImage(FpgaImage image);

    /** Power-on: loads the golden image from flash. */
    void powerOn();
    /** Power-cycle via the side-channel management path (recovery). */
    void powerCycle() { powerOn(); }

    /** Load the application image (full reconfiguration). */
    bool loadApplicationImage();

    /** The image currently in the fabric, if any. */
    const std::optional<FpgaImage> &loadedImage() const { return loaded; }

    /** True if the currently loaded image is the golden image. */
    bool runningGolden() const { return loaded && loaded->golden; }

    /**
     * Estimated power draw at a given datapath utilization in [0, 1].
     * Linear between idle and the power-virus ceiling; always below the
     * 32 W TDP and the 35 W electrical limit.
     */
    double estimatePowerWatts(double utilization) const;

  private:
    BoardSpec boardSpec;
    std::optional<FpgaImage> goldenSlot;
    std::optional<FpgaImage> appSlot;
    std::optional<FpgaImage> loaded;
};

}  // namespace ccsim::fpga
