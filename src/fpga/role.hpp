/**
 * @file
 * The Role interface: application logic hosted in the shell's role region
 * (the paper's Role/Shell partitioning from Catapult v1, Section II-A).
 */
#pragma once

#include <cstdint>
#include <string>

#include "router/flit.hpp"

namespace ccsim::fpga {

class Shell;

/** Application logic occupying (part of) the FPGA's role region. */
class Role
{
  public:
    virtual ~Role() = default;

    /** Human-readable role name. */
    virtual std::string name() const = 0;

    /** ALMs of role logic (checked against the free area at attach). */
    virtual std::uint32_t areaAlms() const = 0;

    /** Role clock; the production ranking role closes timing at 175 MHz. */
    virtual double clockMhz() const { return 175.0; }

    /**
     * Called when the shell places the role, handing it its Elastic
     * Router port. The role keeps the shell pointer to send messages and
     * to reach the LTL engine / DRAM / PCIe endpoints.
     */
    virtual void attach(Shell &shell, int er_port) = 0;

    /** A message arrived at this role's ER port. */
    virtual void onMessage(const router::ErMessagePtr &msg) = 0;
};

}  // namespace ccsim::fpga
