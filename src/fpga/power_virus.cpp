#include "fpga/power_virus.hpp"

#include <memory>

namespace ccsim::fpga {

namespace {

/** Chunk size per issued access: large enough to keep pipes saturated. */
constexpr std::uint32_t kChunkBytes = 64 * 1024;

}  // namespace

void
PowerVirus::pumpDram(Shell &shell, sim::TimePs until, Counter bytes)
{
    if (queue.now() >= until)
        return;
    // The counter is captured by shared_ptr: completion events may fire
    // after the report has been delivered and must not dangle.
    shell.dram().read(kChunkBytes, [this, &shell, until, bytes] {
        *bytes += kChunkBytes;
        pumpDram(shell, until, bytes);
    });
}

void
PowerVirus::pumpPcie(Shell &shell, sim::TimePs until, Counter bytes)
{
    if (queue.now() >= until)
        return;
    shell.pcie().hostToFpga(kChunkBytes, [this, &shell, until, bytes] {
        *bytes += kChunkBytes;
        pumpPcie(shell, until, bytes);
    });
    shell.pcie().fpgaToHost(kChunkBytes, [bytes] {
        *bytes += kChunkBytes;
    });
}

void
PowerVirus::run(Shell &shell, sim::TimePs duration,
                BurnInConditions conditions,
                std::function<void(const BurnInReport &)> done)
{
    const sim::TimePs start = queue.now();
    const sim::TimePs until = start + duration;

    auto dram_bytes = std::make_shared<std::uint64_t>(0);
    auto pcie_bytes = std::make_shared<std::uint64_t>(0);
    pumpDram(shell, until, dram_bytes);
    pumpPcie(shell, until, pcie_bytes);

    // Keep the ER crossbar busy with self-traffic between the DRAM and
    // PCIe endpoints (U-turns permitted, Section V-B).
    const std::uint64_t er_flits_before =
        shell.elasticRouter().flitsRouted();
    // Drive traffic from the PCIe endpoint toward DRAM via the host
    // path, which crosses the crossbar: one DRAM read every 2 us for the
    // whole window.
    for (sim::TimePs t = 0; t < duration; t += 2 * sim::kMicrosecond) {
        queue.scheduleAfter(t, [&shell] {
            shell.sendFromHost(kErPortDram, 4096,
                               std::make_shared<DramRequest>(DramRequest{
                                   4096, false, -1, 0}));
        });
    }

    queue.schedule(until, [this, &shell, start, duration, conditions,
                           dram_bytes, pcie_bytes, er_flits_before,
                           done = std::move(done)] {
        BurnInReport report;
        const double secs = sim::toSeconds(duration);
        const auto &dram_cfg = DramConfig{};
        const double dram_peak =
            dram_cfg.peakGbytesPerSec * dram_cfg.efficiency * 1e9;
        report.dramUtilization =
            static_cast<double>(*dram_bytes) / secs / dram_peak;
        const double pcie_peak = 2.0 * 16.0 * 1e9;  // both directions
        report.pcieUtilization =
            static_cast<double>(*pcie_bytes) / secs / pcie_peak;
        const std::uint64_t er_flits =
            shell.elasticRouter().flitsRouted() - er_flits_before;
        const double er_peak_flits =
            secs * shell.elasticRouter().config().clockMhz * 1e6;
        report.erUtilization =
            static_cast<double>(er_flits) / er_peak_flits;

        // Worst case: every datapath treated as fully toggling.
        report.powerWatts = shell.board().estimatePowerWatts(1.0);
        const BoardSpec &spec = shell.board().spec();
        report.withinTdp = report.powerWatts <= spec.tdpWatts;
        report.withinElectricalLimit =
            report.powerWatts <= spec.maxElectricalWatts;
        report.thermalConditionsMet =
            conditions.ambientTempC <= spec.maxInletTempC &&
            conditions.airflowLfm >= spec.airflowLfm;
        if (done)
            done(report);
        (void)start;
    });
}

}  // namespace ccsim::fpga
