#include "fpga/bridge.hpp"

#include "sim/logging.hpp"

namespace ccsim::fpga {

Bridge::Bridge(sim::EventQueue &eq, BridgeConfig cfg)
    : queue(eq), config(std::move(cfg))
{
}

bool
Bridge::injectToTor(const net::PacketPtr &pkt)
{
    if (isDown) {
        ++statDownDrops;
        return false;
    }
    if (torTx == nullptr)
        return false;
    ++statInjected;
    return torTx->send(pkt);
}

bool
Bridge::injectToNic(const net::PacketPtr &pkt)
{
    if (isDown) {
        ++statDownDrops;
        return false;
    }
    if (nicTx == nullptr)
        return false;
    ++statInjected;
    return nicTx->send(pkt);
}

void
Bridge::handle(Direction dir, const net::PacketPtr &pkt)
{
    if (isDown) {
        ++statDownDrops;
        return;
    }
    TapResult result;
    if (tap)
        result = tap(dir, pkt);
    if (result.action == TapResult::Action::kConsume) {
        ++statConsumed;
        return;
    }
    const sim::TimePs delay = config.traverseLatency + result.extraDelay;
    queue.scheduleAfter(delay, [this, dir, pkt] {
        if (isDown) {
            ++statDownDrops;
            return;
        }
        if (dir == Direction::kFromNic) {
            if (torTx && torTx->send(pkt))
                ++statNicToTor;
        } else {
            if (nicTx && nicTx->send(pkt))
                ++statTorToNic;
        }
    });
}

}  // namespace ccsim::fpga
