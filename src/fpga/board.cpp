#include "fpga/board.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace ccsim::fpga {

FpgaBoard::FpgaBoard(BoardSpec spec) : boardSpec(spec)
{
    // Every manufactured board ships with a minimal golden image: bridge
    // bypass only, so a power cycle always restores reachability.
    goldenSlot = FpgaImage{"golden-bypass", true, 0, false};
}

void
FpgaBoard::flashGoldenImage(FpgaImage image)
{
    image.golden = true;
    goldenSlot = std::move(image);
}

void
FpgaBoard::flashApplicationImage(FpgaImage image)
{
    image.golden = false;
    appSlot = std::move(image);
}

void
FpgaBoard::powerOn()
{
    if (!goldenSlot)
        sim::panic("FpgaBoard: no golden image in flash");
    loaded = goldenSlot;
}

bool
FpgaBoard::loadApplicationImage()
{
    if (!appSlot)
        return false;
    loaded = appSlot;
    return true;
}

double
FpgaBoard::estimatePowerWatts(double utilization) const
{
    const double u = std::clamp(utilization, 0.0, 1.0);
    return boardSpec.idleWatts +
           u * (boardSpec.powerVirusWatts - boardSpec.idleWatts);
}

}  // namespace ccsim::fpga
