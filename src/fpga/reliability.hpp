/**
 * @file
 * Deployment reliability model (Section II-B).
 *
 * The paper stress-tested and deployed 5,760 servers, mirrored live
 * traffic for one month, and reported: two FPGA hard failures, one bad
 * network cable, five PCIe Gen3 training failures, eight DRAM calibration
 * failures (traced to a logic bug), an average of one configuration
 * bit-flip per 1025 machine-days, ~30 s scrub cycles, and at least one
 * role hang likely attributable to an SEU.
 *
 * This module Monte-Carlo simulates those failure processes so the
 * sec2_deployment bench can regenerate the reliability table.
 */
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ccsim::fpga {

/** Failure-process parameters, fitted to the paper's observed counts. */
struct DeploymentConfig {
    int servers = 5760;
    int days = 30;
    std::uint64_t seed = 2016;

    /** Configuration-logic SEU rate: one flip per 1025 machine-days. */
    double seuPerMachineDay = 1.0 / 1025.0;
    /** Fraction of SEUs that hang the role before scrubbing catches them. */
    double roleHangPerSeu = 0.006;
    /** Scrub interval (affects exposure window per SEU). */
    sim::TimePs scrubInterval = 30 * sim::kSecond;

    /** FPGA hard-failure rate (2 in 172,800 machine-days observed). */
    double hardFailurePerMachineDay = 2.0 / (5760.0 * 30.0);
    /** Network cable failures (1 observed; per machine-month). */
    double cableFailurePerMachineMonth = 1.0 / 5760.0;
    /** PCIe Gen3 x8 training failure at bring-up (5 / 5760 machines). */
    double pcieTrainingFailureProb = 5.0 / 5760.0;
    /** DRAM calibration failure at bring-up (8 / 5760 machines). */
    double dramCalibFailureProb = 8.0 / 5760.0;
};

/** Aggregate results of one simulated deployment. */
struct DeploymentReport {
    int servers = 0;
    int days = 0;
    std::uint64_t machineDays = 0;

    std::uint64_t seuEvents = 0;
    std::uint64_t seuCaughtByScrub = 0;
    std::uint64_t roleHangs = 0;
    std::uint64_t hardFailures = 0;
    std::uint64_t cableFailures = 0;
    std::uint64_t pcieTrainingFailures = 0;
    std::uint64_t dramCalibFailures = 0;

    /** Observed machine-days per SEU (compare to the paper's 1025). */
    double machineDaysPerSeu() const
    {
        return seuEvents == 0
                   ? 0.0
                   : static_cast<double>(machineDays) /
                         static_cast<double>(seuEvents);
    }
};

/**
 * Run the Monte-Carlo deployment: per machine, bring-up failures are
 * Bernoulli; SEUs, hard failures, and cable failures are Poisson over the
 * deployment window.
 */
DeploymentReport simulateDeployment(const DeploymentConfig &cfg);

}  // namespace ccsim::fpga
