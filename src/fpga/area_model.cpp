#include "fpga/area_model.hpp"

namespace ccsim::fpga {

AreaModel
AreaModel::productionImage()
{
    AreaModel m(kStratixVD5Alms);
    // Figure 5: area and frequency of the production-deployed image with
    // remote acceleration support.
    m.addComponent({"40G MAC/PHY (TOR)", 9785, 313.0, true});
    m.addComponent({"40G MAC/PHY (NIC)", 13122, 313.0, true});
    m.addComponent({"Network Bridge / Bypass", 4685, 313.0, true});
    m.addComponent({"DDR3 Memory Controller", 13225, 200.0, true});
    m.addComponent({"Elastic Router", 3449, 156.0, true});
    m.addComponent({"LTL Protocol Engine", 11839, 156.0, true});
    m.addComponent({"LTL Packet Switch", 4815, 313.0, true});
    m.addComponent({"PCIe Gen 3 DMA x 2", 6817, 250.0, true});
    m.addComponent({"Other", 8273, 0.0, true});
    m.addComponent({"Role (search ranking FFU+DPF)", 55340, 175.0, false});
    return m;
}

bool
AreaModel::addComponent(ShellComponent c)
{
    if (totalUsed() + c.alms > totalAlms)
        return false;
    parts.push_back(std::move(c));
    return true;
}

void
AreaModel::clearRoles()
{
    std::erase_if(parts, [](const ShellComponent &c) { return !c.isShell; });
}

bool
AreaModel::removeComponent(const std::string &name)
{
    for (auto it = parts.begin(); it != parts.end(); ++it) {
        if (it->name == name) {
            parts.erase(it);
            return true;
        }
    }
    return false;
}

std::uint32_t
AreaModel::totalUsed() const
{
    std::uint32_t total = 0;
    for (const auto &c : parts)
        total += c.alms;
    return total;
}

std::uint32_t
AreaModel::shellUsed() const
{
    std::uint32_t total = 0;
    for (const auto &c : parts) {
        if (c.isShell)
            total += c.alms;
    }
    return total;
}

std::uint32_t
AreaModel::roleUsed() const
{
    return totalUsed() - shellUsed();
}

}  // namespace ccsim::fpga
