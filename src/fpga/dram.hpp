/**
 * @file
 * Model of the board's single 4 GB DDR3-1600 channel (72-bit with ECC).
 *
 * DDR3-1600 on a 64-bit data bus delivers a 12.8 GB/s peak; the model
 * serializes accesses at a derated sustained bandwidth with a fixed
 * closed-page access latency, which is sufficient for the role workloads
 * (feature extraction tables, crypto key storage).
 */
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ccsim::fpga {

/** DDR3 channel configuration. */
struct DramConfig {
    double peakGbytesPerSec = 12.8;
    /** Sustained efficiency factor (bank conflicts, refresh). */
    double efficiency = 0.75;
    sim::TimePs accessLatency = 150 * sim::kNanosecond;
    std::uint64_t capacityBytes = 4ull << 30;
};

/** A single DDR3 channel with bandwidth serialization. */
class DramChannel
{
  public:
    DramChannel(sim::EventQueue &eq, DramConfig cfg = {})
        : queue(eq), config(cfg)
    {
    }

    /** Read @p bytes; @p done fires when data is available. */
    void read(std::uint32_t bytes, std::function<void()> done)
    {
        access(bytes, std::move(done));
        statReads++;
    }

    /** Write @p bytes; @p done fires when the write has been accepted. */
    void write(std::uint32_t bytes, std::function<void()> done)
    {
        access(bytes, std::move(done));
        statWrites++;
    }

    std::uint64_t capacity() const { return config.capacityBytes; }
    std::uint64_t reads() const { return statReads; }
    std::uint64_t writes() const { return statWrites; }
    std::uint64_t bytesAccessed() const { return statBytes; }
    /** Cumulative channel-busy (data transfer) time. */
    sim::TimePs busyTime() const { return busyAccum; }

  private:
    sim::EventQueue &queue;
    DramConfig config;
    sim::TimePs busyUntil = 0;
    sim::TimePs busyAccum = 0;
    std::uint64_t statReads = 0;
    std::uint64_t statWrites = 0;
    std::uint64_t statBytes = 0;

    void access(std::uint32_t bytes, std::function<void()> done)
    {
        const double bw = config.peakGbytesPerSec * config.efficiency;
        const double ns = static_cast<double>(bytes) / (bw * 1e9) * 1e9;
        const sim::TimePs start = std::max(queue.now(), busyUntil);
        busyUntil = start + sim::fromNanos(ns);
        busyAccum += busyUntil - start;
        statBytes += bytes;
        queue.schedule(busyUntil + config.accessLatency,
                       [d = std::move(done)] {
                           if (d)
                               d();
                       });
    }
};

}  // namespace ccsim::fpga
