/**
 * @file
 * PCIe Gen3 x8 DMA engine model.
 *
 * The board exposes two independent PCIe Gen3 x8 connections for an
 * aggregate of 16 GB/s each direction between CPU and FPGA. Transfers are
 * serialized per direction at the aggregate bandwidth with a fixed DMA
 * round-trip setup latency.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ccsim::fpga {

/** PCIe DMA configuration. */
struct PcieConfig {
    /** Aggregate bandwidth per direction (two Gen3 x8 links). */
    double gbytesPerSec = 16.0;
    /** Fixed DMA latency (doorbell, descriptor fetch, completion). */
    sim::TimePs baseLatency = 900 * sim::kNanosecond;
};

/** A two-direction DMA engine with per-direction serialization. */
class PcieDma
{
  public:
    PcieDma(sim::EventQueue &eq, PcieConfig cfg = {})
        : queue(eq), config(cfg)
    {
    }

    /** DMA @p bytes from host memory into the FPGA; @p done fires at end. */
    void hostToFpga(std::uint32_t bytes, std::function<void()> done)
    {
        transfer(h2fBusyUntil, bytes, std::move(done));
    }

    /** DMA @p bytes from the FPGA into host memory. */
    void fpgaToHost(std::uint32_t bytes, std::function<void()> done)
    {
        transfer(f2hBusyUntil, bytes, std::move(done));
    }

    std::uint64_t bytesTransferred() const { return statBytes; }
    std::uint64_t transfers() const { return statTransfers; }
    /** Cumulative link-busy time summed over both directions. */
    sim::TimePs busyTime() const { return busyAccum; }

  private:
    sim::EventQueue &queue;
    PcieConfig config;
    sim::TimePs h2fBusyUntil = 0;
    sim::TimePs f2hBusyUntil = 0;
    sim::TimePs busyAccum = 0;
    std::uint64_t statBytes = 0;
    std::uint64_t statTransfers = 0;

    void transfer(sim::TimePs &busy_until, std::uint32_t bytes,
                  std::function<void()> done)
    {
        const sim::TimePs now = queue.now();
        const double ns =
            static_cast<double>(bytes) / (config.gbytesPerSec * 1e9) * 1e9;
        const sim::TimePs start = std::max(now, busy_until);
        busy_until = start + sim::fromNanos(ns);
        busyAccum += busy_until - start;
        statBytes += bytes;
        ++statTransfers;
        queue.schedule(busy_until + config.baseLatency,
                       [d = std::move(done)] {
                           if (d)
                               d();
                       });
    }
};

}  // namespace ccsim::fpga
