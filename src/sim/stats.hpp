/**
 * @file
 * Measurement primitives: exact sample sets with percentile queries,
 * memory-bounded log-binned histograms, counters, and time-weighted
 * averages. These back every figure reproduction in the benches.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ccsim::sim {

/**
 * Exact sample statistics.
 *
 * Stores every sample; percentile queries sort lazily. Suitable for up to
 * tens of millions of samples (the largest experiment records ~2M query
 * latencies).
 */
class SampleStats
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Number of samples. */
    std::size_t count() const { return samples.size(); }
    /** True if no samples have been recorded. */
    bool empty() const { return samples.empty(); }
    /** NaN inputs passed to add(); they are counted but not recorded. */
    std::size_t nanCount() const { return nanSamples; }

    /** Arithmetic mean (0 if empty). */
    double mean() const;
    /** Minimum sample (+inf if empty). */
    double min() const { return minVal; }
    /** Maximum sample (-inf if empty). */
    double max() const { return maxVal; }
    /** Sum of all samples. */
    double sum() const { return total; }
    /** Population standard deviation (0 if fewer than 2 samples). */
    double stddev() const;

    /**
     * The p-th percentile using nearest-rank interpolation.
     *
     * @param p Percentile in [0, 100]; NaN panics. A single-sample set
     *          returns that sample for every p, including 0 and 100.
     */
    double percentile(double p) const;

    /** Shorthand: percentile(50). */
    double median() const { return percentile(50.0); }

    /** Drop all samples. */
    void clear();

    /** Read-only access to the raw samples (unsorted). */
    const std::vector<double> &raw() const { return samples; }

  private:
    mutable std::vector<double> samples;
    mutable bool sorted = false;
    double total = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
    std::size_t nanSamples = 0;
};

/**
 * Log-binned histogram: constant memory regardless of sample count.
 *
 * Bins are geometric with a configurable number of sub-bins per octave
 * (HdrHistogram-style). Relative quantile error is bounded by the bin
 * width (~1.5% at 48 bins/octave).
 */
class LogHistogram
{
  public:
    /**
     * @param min_value    Values at or below this land in the first bin.
     * @param bins_per_octave Resolution (sub-bins per doubling).
     */
    explicit LogHistogram(double min_value = 1.0, int bins_per_octave = 48);

    /** Record one sample. */
    void add(double x) { addN(x, 1); }

    /** Record @p n identical samples. NaN values are counted but not binned. */
    void addN(double x, std::uint64_t n);

    /** Number of samples recorded. */
    std::uint64_t count() const { return totalCount; }

    /** NaN inputs passed to add()/addN() (skipped, not binned). */
    std::uint64_t nanCount() const { return nanSamples; }

    /**
     * Fold another histogram into this one. Both must share the same
     * min_value and bins_per_octave (panics otherwise).
     */
    void merge(const LogHistogram &other);

    /** Approximate p-th percentile (p in [0,100]). */
    double percentile(double p) const;

    /** Exact mean of recorded samples. */
    double mean() const { return totalCount ? totalSum / totalCount : 0.0; }

    /** Exact max of recorded samples. */
    double max() const { return maxVal; }

    /** Exact min of recorded samples. */
    double min() const { return minVal; }

    /** Exact sum of recorded samples. */
    double sum() const { return totalSum; }

    /** Binning parameters (two histograms merge iff these are equal). */
    struct Binning {
        double minValue;
        int binsPerOctave;
    };
    Binning binning() const
    {
        return {minValue, static_cast<int>(binsPerOctave)};
    }

    /**
     * Cumulative per-bin counts (index 0 is the <= min_value underflow
     * bin). Bin counts only ever grow, which is what lets an observer
     * diff two snapshots of the same histogram into an exact windowed
     * sub-histogram (obs::HistogramSketch).
     */
    const std::vector<std::uint64_t> &binCounts() const { return bins; }

    /** Lower edge of bin @p idx (0 for the underflow bin). */
    double binEdge(std::size_t idx) const { return binLowerEdge(idx); }

    /** Drop all samples. */
    void clear();

  private:
    double minValue;
    double binsPerOctave;
    std::vector<std::uint64_t> bins;
    std::uint64_t totalCount = 0;
    std::uint64_t nanSamples = 0;
    double totalSum = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();

    std::size_t binIndex(double x) const;
    double binLowerEdge(std::size_t idx) const;
};

/** A simple monotonically increasing counter with a name. */
class Counter
{
  public:
    explicit Counter(std::string name = "") : label(std::move(name)) {}

    void inc(std::uint64_t n = 1) { value += n; }
    std::uint64_t get() const { return value; }
    const std::string &name() const { return label; }
    void reset() { value = 0; }

  private:
    std::string label;
    std::uint64_t value = 0;
};

/**
 * Time-weighted average of a piecewise-constant signal (e.g. queue depth).
 *
 * Call update(t, v) whenever the signal changes; the value v is assumed to
 * hold from t until the next update.
 */
class TimeWeighted
{
  public:
    /** Record that the signal takes value @p v from time @p t_ps onward. */
    void update(std::int64_t t_ps, double v);

    /** Time-weighted mean over [first update, last update). */
    double average() const;

    /** Peak value seen. */
    double peak() const { return peakVal; }

  private:
    bool started = false;
    std::int64_t lastTime = 0;
    double lastValue = 0.0;
    double weightedSum = 0.0;
    std::int64_t elapsed = 0;
    double peakVal = 0.0;
};

}  // namespace ccsim::sim
