/**
 * @file
 * Freelist-backed pooling allocator for high-churn simulation objects.
 *
 * The NIC→switch→LTL datapath creates and destroys one `shared_ptr<Packet>`
 * per hop-lifetime; with `std::make_shared` that is one malloc/free pair per
 * packet. `PoolAllocator` is a std-compatible allocator whose single-object
 * allocations come from a thread-local freelist keyed by (size, alignment),
 * so `std::allocate_shared<Packet>(PoolAllocator<Packet>{})` recycles the
 * combined control-block+payload allocation across packets.
 *
 * The freelist is thread-local because a simulation runs on one thread
 * (see EventQueue); experiments fanning out across threads each get their
 * own arena with zero synchronization. NOTE: pool occupancy is therefore
 * process-global per thread, not per simulation — it is deliberately NOT
 * exported as an observability probe, since two same-seed simulations run
 * back-to-back in one process would observe different arena states and
 * break snapshot determinism. Use poolStats() for tests and diagnostics.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace ccsim::sim {

/** Aggregate freelist statistics for the calling thread's arenas. */
struct PoolStats {
    std::uint64_t freshAllocs = 0;  ///< blocks obtained from the heap
    std::uint64_t reusedAllocs = 0; ///< blocks served from a freelist
    std::size_t freeBlocks = 0;     ///< blocks currently parked in freelists
};

namespace detail {

struct ArenaBase {
    std::vector<void *> blocks;
    std::uint64_t fresh = 0;
    std::uint64_t reused = 0;
    ArenaBase *nextArena = nullptr;
};

inline thread_local ArenaBase *arenaHead = nullptr;

template <std::size_t Size, std::size_t Align>
struct Arena : ArenaBase {
    static_assert(Align <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "over-aligned types are not pooled");

    Arena()
    {
        nextArena = arenaHead;
        arenaHead = this;
    }

    ~Arena()
    {
        for (void *b : blocks)
            ::operator delete(b);
        for (ArenaBase **p = &arenaHead; *p != nullptr;
             p = &(*p)->nextArena) {
            if (*p == this) {
                *p = nextArena;
                break;
            }
        }
    }

    static Arena &instance()
    {
        static thread_local Arena arena;
        return arena;
    }

    void *get()
    {
        if (!blocks.empty()) {
            void *p = blocks.back();
            blocks.pop_back();
            ++reused;
            return p;
        }
        ++fresh;
        return ::operator new(Size);
    }

    void put(void *p) noexcept { blocks.push_back(p); }
};

}  // namespace detail

/** Freelist stats summed over every pooled type on this thread. */
inline PoolStats
poolStats()
{
    PoolStats s;
    for (const detail::ArenaBase *a = detail::arenaHead; a != nullptr;
         a = a->nextArena) {
        s.freshAllocs += a->fresh;
        s.reusedAllocs += a->reused;
        s.freeBlocks += a->blocks.size();
    }
    return s;
}

/**
 * std-compatible allocator serving single objects from a thread-local
 * freelist. Array allocations (n != 1) fall through to the heap.
 */
template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    PoolAllocator() noexcept = default;
    template <typename U>
    PoolAllocator(const PoolAllocator<U> &) noexcept
    {
    }

    T *allocate(std::size_t n)
    {
        if (n == 1)
            return static_cast<T *>(
                detail::Arena<sizeof(T), alignof(T)>::instance().get());
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void deallocate(T *p, std::size_t n) noexcept
    {
        if (n == 1) {
            detail::Arena<sizeof(T), alignof(T)>::instance().put(p);
            return;
        }
        ::operator delete(p);
    }

    template <typename U>
    bool operator==(const PoolAllocator<U> &) const noexcept
    {
        return true;
    }
    template <typename U>
    bool operator!=(const PoolAllocator<U> &) const noexcept
    {
        return false;
    }
};

}  // namespace ccsim::sim
