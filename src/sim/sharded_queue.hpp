/**
 * @file
 * Conservative parallel discrete-event kernel: per-partition EventQueues
 * advanced in lockstep barrier windows.
 *
 * ## Model
 *
 * A `ShardedEventQueue` owns P *partitions* (logical processes), each a
 * full sequential `EventQueue`. The partition structure is fixed by the
 * *topology* (in ccsim, one partition per pod plus one for the spine),
 * while the number of *worker threads* T is an independent execution
 * parameter: partition p always runs on worker p mod T, and every
 * partition's event stream is executed strictly sequentially. All
 * nondeterminism from thread scheduling is therefore confined to *which
 * wall-clock instant* a partition's window executes — never to the order
 * of events inside a partition, and never to the order cross-partition
 * messages are delivered (see below). The same master seed produces
 * byte-identical results at T = 1, 2, 4, 8, ...
 *
 * ## Conservative synchronization
 *
 * Partitions may interact only through cross-partition *channels*
 * registered up front via registerCrossEdge(src, dst, minLatency). The
 * *lookahead* W is the minimum registered latency (propagation +
 * serialization of the slowest-case first bit), or an explicit
 * Config::window no larger than every edge's latency. Each round the
 * coordinator computes
 *
 *     t0 = min over partitions of next-event-time
 *     E  = min(limit, t0 + W - 1, next barrier-hook deadline)
 *
 * and lets every partition run runUntil(E) in parallel. Any message a
 * partition emits while executing the window carries a timestamp
 * >= send-time + W >= t0 + W > E, so it cannot affect the window being
 * computed — the classic conservative-PDES invariant (cf. CCSS's
 * combinational-compute / sequential-sync split: partitions advance
 * freely between synchronization points whose spacing is derived from
 * physical signal-propagation delay).
 *
 * Cross messages are buffered in per-(src, dst) outboxes during the
 * window and flushed at the barrier, sorted by (when, src partition,
 * per-src sequence) — a total order independent of thread count — then
 * scheduled into the destination queue in that order so the queue's FIFO
 * tie-break preserves it. The flush panics if any message's timestamp
 * is at or below the window just executed (causality violation), and
 * registerCrossEdge rejects any edge whose latency is below the
 * configured window (sub-lookahead links are a configuration error).
 *
 * ## Barrier hooks
 *
 * Observability sampling must happen at deterministic simulated times,
 * not at thread-dependent moments; atBarrier() registers a hook that is
 * invoked at every barrier with the window end E, and whose returned
 * "next deadline" bounds future windows so the hook fires exactly at
 * its requested times. Metrics flush is lock-free in the sense that the
 * parallel phase takes no locks: each partition mutates only its own
 * registry shard, and the barrier (a mutex/condvar handshake) publishes
 * those writes to the coordinator before hooks read them.
 */
#pragma once

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ccsim::sim {

/**
 * A set of sequential EventQueues advanced in conservative barrier
 * windows by a pool of worker threads. See file doc for the model.
 *
 * Thread contract: construction, configuration (registerCrossEdge,
 * atBarrier), run*(), and partition() access happen on the owning
 * ("coordinator") thread. postCross() may be called from partition
 * event handlers while a window is executing (each source partition's
 * outbox row is owned by the worker running that partition).
 */
class ShardedEventQueue
{
  public:
    struct Config {
        /** Number of logical processes (fixed by topology). */
        int partitions = 1;
        /**
         * Worker threads. 1 = run every partition inline on the
         * coordinator thread (no threads spawned, no synchronization).
         * Clamped to `partitions`.
         */
        int threads = 1;
        /**
         * Synchronization window (lookahead) in ps. 0 = derive
         * automatically as the minimum latency over registered cross
         * edges (unbounded if none, i.e. fully independent partitions).
         * An explicit value must be <= every registered edge latency.
         */
        TimePs window = 0;
    };

    explicit ShardedEventQueue(Config cfg);
    ShardedEventQueue(const ShardedEventQueue &) = delete;
    ShardedEventQueue &operator=(const ShardedEventQueue &) = delete;
    ~ShardedEventQueue();

    /** Number of partitions (logical processes). */
    int partitionCount() const { return static_cast<int>(parts.size()); }
    /** Number of worker threads (after clamping). */
    int threadCount() const { return nThreads; }

    /**
     * The resolved synchronization window, or kTimeNever if unbounded
     * (no cross edges). Before the first run this reflects the explicit
     * Config::window only; the automatic derivation happens at first
     * run.
     */
    TimePs window() const { return resolvedWindow; }

    /** Barrier time: every partition has executed all events <= now(). */
    TimePs now() const { return floorTime < 0 ? 0 : floorTime; }

    /** Direct access to partition @p p's sequential queue. */
    EventQueue &partition(int p);

    /** Read-only partition access (for observability probes). */
    const EventQueue &partition(int p) const;

    /**
     * Declare that partition @p src may post cross events to partition
     * @p dst with delivery latency >= @p minLatency. Must be called
     * before the first run; panics if @p minLatency is below an
     * explicit Config::window (sub-lookahead link).
     */
    void registerCrossEdge(int src, int dst, TimePs minLatency);

    /**
     * Post a cross-partition event: run @p fn on partition @p dst's
     * queue at absolute time @p when. Requires a registered (src, dst)
     * edge. Callable from @p src's event handlers during a window;
     * delivery happens at the next barrier. Panics on a causality
     * violation (@p when not strictly after the current window).
     */
    void postCross(int src, int dst, TimePs when, EventFn fn);

    /**
     * A barrier hook: called at every barrier with the window end E
     * (all partitions have executed exactly the events with time <= E).
     * Returns the next simulated time at which it must observe a
     * barrier, or kTimeNever for "no deadline". Window ends are bounded
     * by hook deadlines, so a hook returning t is next invoked with
     * E == t (unless the run limit intervenes first).
     */
    using BarrierHook = std::function<TimePs(TimePs)>;

    /** Register @p hook with its first deadline (kTimeNever = none). */
    void atBarrier(BarrierHook hook, TimePs firstDeadline = kTimeNever);

    /**
     * Request a one-shot extra barrier at simulated time @p t: some
     * runUntil() window will end exactly at @p t (clamped to now() + 1 if
     * already past), at which point every registered barrier hook fires
     * with E == t. This is how barrier-scheduled actions (fault
     * injection, chaos phases) land at exact simulated times on any
     * worker count. Like hook deadlines, ignored by runAll(). Callable
     * from barrier hooks and between runs on the coordinator thread.
     */
    void requestBarrier(TimePs t);

    /**
     * Run windows until every partition has executed all events with
     * time <= @p limit; afterwards now() == limit. Deterministic for a
     * given (partition contents, edges, hooks, limit) regardless of
     * thread count.
     */
    void runUntil(TimePs limit);

    /** Run windows for @p duration of simulated time from now(). */
    void runFor(TimePs duration) { runUntil(now() + duration); }

    /**
     * Run windows until every partition drains. Hook deadlines do not
     * bound windows here (a forever-rescheduling sampler would prevent
     * termination); hooks still fire at each barrier.
     */
    void runAll();

    // --- kernel accounting (exported as sim.shard.* probes) ---

    /** Barrier windows executed so far. */
    std::uint64_t windowsRun() const { return windowsRunCount; }
    /** Cross-partition messages delivered so far. */
    std::uint64_t crossMessages() const { return crossMessageCount; }
    /** Events executed, summed over partitions. */
    std::uint64_t eventsExecuted() const;

  private:
    struct CrossMsg {
        TimePs when;
        std::uint64_t seq;  ///< per-source post order; tie-break key
        EventFn fn;
    };

    /**
     * One logical process. The queue and outbox row are written only by
     * the worker that owns this partition during a window, and only by
     * the coordinator between windows.
     */
    struct Partition {
        EventQueue eq;
        std::vector<std::vector<CrossMsg>> outbox;  ///< indexed by dst
        std::uint64_t crossSeq = 0;
    };

    std::vector<std::unique_ptr<Partition>> parts;
    std::vector<std::vector<TimePs>> edgeLatency;  ///< [src][dst], 0 = none
    Config config;
    int nThreads = 1;
    TimePs resolvedWindow = kTimeNever;
    TimePs floorTime = -1;  ///< all partitions have executed times <= this
    bool started = false;

    struct Hook {
        BarrierHook fn;
        TimePs deadline;
    };
    std::vector<Hook> hooks;

    /** One-shot extra barrier deadlines (requestBarrier), a min-heap. */
    std::priority_queue<TimePs, std::vector<TimePs>, std::greater<TimePs>>
        extraDeadlines;

    std::uint64_t windowsRunCount = 0;
    std::uint64_t crossMessageCount = 0;

    // --- worker pool (empty when nThreads == 1) ---
    std::vector<std::thread> workers;
    std::mutex mu;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    std::uint64_t phaseEpoch = 0;
    int phasePending = 0;
    TimePs phaseEnd = 0;
    bool phaseDrain = false;  ///< runAll() phase: drain instead of runUntil
    bool shutdown = false;

    void start();
    void workerLoop(int workerIdx);
    void runPartitionShare(int workerIdx);
    /** Run every partition to @p e (or drain if @p drain) and barrier. */
    void runWindow(TimePs e, bool drain);
    /** Min next-event time across partitions (kTimeNever if all empty). */
    TimePs minNextEventTime();
    /** Window end from t0, saturating (kTimeNever if unbounded). */
    TimePs windowEndFor(TimePs t0) const;
    /** Deliver all outbox messages; panic if any violates causality. */
    void flushOutboxes();
    void fireHooks(TimePs e);
};

}  // namespace ccsim::sim
