#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>

namespace ccsim::sim {

namespace {

/** Rotate-right that tolerates r == 0. */
inline std::uint64_t
ror64(std::uint64_t b, unsigned r)
{
    return r == 0 ? b : (b >> r) | (b << (64u - r));
}

}  // namespace

// ---------------------------------------------------------------------------
// TimerWheelQueue
// ---------------------------------------------------------------------------

TimerWheelQueue::TimerWheelQueue()
{
    pool.reserve(256);
    freeList.reserve(256);
    due.reserve(64);
}

TimerWheelQueue::~TimerWheelQueue() = default;

std::uint32_t
TimerWheelQueue::allocRecord(TimePs when, EventFn &&fn)
{
    std::uint32_t idx;
    if (!freeList.empty()) {
        idx = freeList.back();
        freeList.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(pool.size());
        pool.emplace_back();
    }
    Record &r = pool[idx];
    r.when = when;
    r.seq = nextSeq++;
    r.state = SlotState::kLive;
    r.fn = std::move(fn);
    return idx;
}

void
TimerWheelQueue::freeRecord(std::uint32_t idx)
{
    Record &r = pool[idx];
    r.fn.reset();
    r.state = SlotState::kFree;
    ++r.gen;
    freeList.push_back(idx);
}

bool
TimerWheelQueue::placeInWheel(std::uint32_t idx, TimePs when)
{
    for (int level = 0; level < kLevels; ++level) {
        const int sh = shiftOf(level);
        if (occupied[level] == 0) {
            // Empty level: a stale cursor can only shrink the usable
            // window, so pull it up to the current time for free.
            const std::int64_t nowSlot = currentTime >> sh;
            if (cursor[level] < nowSlot)
                cursor[level] = nowSlot;
        }
        const std::int64_t slot = when >> sh;
        const std::int64_t d = slot - cursor[level];
        if (d >= 0 && d < kSlots) {
            cells[level][slot & (kSlots - 1)].push_back(idx);
            occupied[level] |= std::uint64_t{1} << (slot & (kSlots - 1));
            return true;
        }
    }
    return false;
}

void
TimerWheelQueue::place(std::uint32_t idx, TimePs when)
{
    if (placeInWheel(idx, when))
        return;
    overflow.push_back(FarEvent{when, pool[idx].seq, idx});
    std::push_heap(overflow.begin(), overflow.end(), FarLater{});
    ++overflowCount;
}

std::int64_t
TimerWheelQueue::nextOccupiedSlot(int level)
{
    const std::uint64_t rot =
        ror64(occupied[level],
              static_cast<unsigned>(cursor[level] & (kSlots - 1)));
    return cursor[level] + std::countr_zero(rot);
}

void
TimerWheelQueue::cascade(int level, std::int64_t slotAbs)
{
    auto &cell = cells[level][slotAbs & (kSlots - 1)];
    std::vector<std::uint32_t> moved;
    moved.swap(cell);
    occupied[level] &= ~(std::uint64_t{1} << (slotAbs & (kSlots - 1)));

    const TimePs slotStart = static_cast<TimePs>(slotAbs)
                             << shiftOf(level);
    // S is the global minimum slot start across all levels, so no
    // occupied cell below `level` starts before it: raising empty-level
    // cursors to it cannot orphan anything and guarantees the moved
    // events fit a lower level on the common path.
    for (int l = 0; l < level; ++l) {
        if (occupied[l] == 0) {
            const std::int64_t base =
                std::max(slotStart, currentTime) >> shiftOf(l);
            if (cursor[l] < base)
                cursor[l] = base;
        }
    }
    for (std::uint32_t idx : moved) {
        Record &r = pool[idx];
        if (r.state == SlotState::kDead) {
            freeRecord(idx);
            --deadParked;
            continue;
        }
        // Re-park strictly below `level` (re-parking at the same level
        // would loop). A stale-cursor miss falls through to the
        // overflow heap, which the take path orders correctly.
        bool placed = false;
        for (int l = 0; l < level; ++l) {
            const int sh = shiftOf(l);
            if (occupied[l] == 0) {
                const std::int64_t nowSlot = currentTime >> sh;
                if (cursor[l] < nowSlot)
                    cursor[l] = nowSlot;
            }
            const std::int64_t slot = r.when >> sh;
            const std::int64_t d = slot - cursor[l];
            if (d >= 0 && d < kSlots) {
                cells[l][slot & (kSlots - 1)].push_back(idx);
                occupied[l] |= std::uint64_t{1} << (slot & (kSlots - 1));
                placed = true;
                break;
            }
        }
        if (!placed) {
            overflow.push_back(FarEvent{r.when, r.seq, idx});
            std::push_heap(overflow.begin(), overflow.end(), FarLater{});
            ++overflowCount;
        }
    }
}

void
TimerWheelQueue::drainSlot(std::int64_t slotAbs)
{
    auto &cell = cells[0][slotAbs & (kSlots - 1)];
    due.clear();
    duePos = 0;
    bool sorted = true;
    for (std::uint32_t idx : cell) {
        const Record &r = pool[idx];
        if (r.state == SlotState::kDead) {
            freeRecord(idx);
            --deadParked;
            continue;
        }
        if (!due.empty()) {
            const DueEntry &prev = due.back();
            if (r.when < prev.when ||
                (r.when == prev.when && r.seq < prev.seq))
                sorted = false;
        }
        due.push_back(DueEntry{r.when, r.seq, idx});
    }
    cell.clear();
    occupied[0] &= ~(std::uint64_t{1} << (slotAbs & (kSlots - 1)));
    // Advancing to the first occupied slot never orphans cells, and it
    // lets same-slot arrivals during the drain land back in this cell.
    if (cursor[0] < slotAbs)
        cursor[0] = slotAbs;
    dueSlotAbs = slotAbs;
    // Slots fill in schedule order, which for the common in-time-order
    // workload is already (when, seq) sorted: skip the sort then.
    if (!sorted)
        std::sort(due.begin(), due.end(),
                  [](const DueEntry &a, const DueEntry &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      return a.seq < b.seq;
                  });
}

void
TimerWheelQueue::mergeDueArrivals()
{
    auto &cell = cells[0][dueSlotAbs & (kSlots - 1)];
    if (cell.empty())
        return;
    due.erase(due.begin(), due.begin() + static_cast<std::ptrdiff_t>(duePos));
    duePos = 0;
    for (std::uint32_t idx : cell) {
        const Record &r = pool[idx];
        if (r.state == SlotState::kDead) {
            freeRecord(idx);
            --deadParked;
        } else {
            due.push_back(DueEntry{r.when, r.seq, idx});
        }
    }
    cell.clear();
    occupied[0] &= ~(std::uint64_t{1} << (dueSlotAbs & (kSlots - 1)));
    std::sort(due.begin(), due.end(),
              [](const DueEntry &a, const DueEntry &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  return a.seq < b.seq;
              });
}

bool
TimerWheelQueue::dueFrontLive()
{
    while (duePos < due.size()) {
        const std::uint32_t idx = due[duePos].idx;
        if (pool[idx].state != SlotState::kDead)
            return true;
        freeRecord(idx);
        --deadParked;
        ++duePos;
    }
    due.clear();
    duePos = 0;
    dueSlotAbs = -1;
    return false;
}

TimerWheelQueue::Next
TimerWheelQueue::ensureNext()
{
    while (true) {
        // Fast path: the committed slot's due buffer holds the global
        // minimum (cascades ran before it was drained; later arrivals
        // for the same slot merge in; anything else is strictly later),
        // except for events parked in the far-future overflow heap.
        if (dueSlotAbs >= 0) {
            mergeDueArrivals();
            if (dueFrontLive()) {
                while (!overflow.empty() &&
                       pool[overflow.front().idx].state == SlotState::kDead) {
                    const std::uint32_t dead = overflow.front().idx;
                    std::pop_heap(overflow.begin(), overflow.end(),
                                  FarLater{});
                    overflow.pop_back();
                    freeRecord(dead);
                    --deadParked;
                }
                if (!overflow.empty()) {
                    const DueEntry &front = due[duePos];
                    const FarEvent &top = overflow.front();
                    if (top.when < front.when ||
                        (top.when == front.when && top.seq < front.seq))
                        return Next::kOverflow;
                }
                return Next::kDue;
            }
        }

        // Prune cancelled overflow tops so the comparisons below see a
        // live candidate.
        while (!overflow.empty() &&
               pool[overflow.front().idx].state == SlotState::kDead) {
            const std::uint32_t dead = overflow.front().idx;
            std::pop_heap(overflow.begin(), overflow.end(), FarLater{});
            overflow.pop_back();
            freeRecord(dead);
            --deadParked;
        }

        // Find the earliest occupied slot across all wheel levels.
        int minLevel = -1;
        std::int64_t minSlot = 0;
        TimePs minStart = 0;
        for (int level = 0; level < kLevels; ++level) {
            if (occupied[level] == 0)
                continue;
            const std::int64_t slot = nextOccupiedSlot(level);
            const TimePs start = static_cast<TimePs>(slot)
                                 << shiftOf(level);
            // On equal starts prefer the higher level so its slot is
            // cascaded before the finer slot is drained (it may hold
            // earlier events within the shared start).
            if (minLevel < 0 || start <= minStart) {
                minLevel = level;
                minSlot = slot;
                minStart = start;
            }
        }

        if (minLevel < 0) {
            // Wheel empty: the overflow heap alone orders what is left.
            return overflow.empty() ? Next::kNone : Next::kOverflow;
        }
        if (!overflow.empty() && overflow.front().when < minStart)
            return Next::kOverflow;

        if (minLevel == 0)
            drainSlot(minSlot);
        else
            cascade(minLevel, minSlot);
    }
}

std::uint32_t
TimerWheelQueue::takeNext()
{
    const Next src = ensureNext();
    if (src == Next::kNone)
        return kInvalidRecord;
    if (src == Next::kOverflow) {
        const std::uint32_t idx = overflow.front().idx;
        std::pop_heap(overflow.begin(), overflow.end(), FarLater{});
        overflow.pop_back();
        return idx;
    }
    return due[duePos++].idx;
}

void
TimerWheelQueue::unloadDue()
{
    if (dueSlotAbs < 0)
        return;
    for (std::size_t i = duePos; i < due.size(); ++i) {
        const std::uint32_t idx = due[i].idx;
        if (pool[idx].state == SlotState::kDead) {
            freeRecord(idx);
            --deadParked;
        } else {
            place(idx, pool[idx].when);
        }
    }
    due.clear();
    duePos = 0;
    dueSlotAbs = -1;
}

TimePs
TimerWheelQueue::nextEventTime()
{
    const Next src = ensureNext();
    TimePs when = kTimeNever;
    if (src == Next::kDue)
        when = due[duePos].when;
    else if (src == Next::kOverflow)
        when = overflow.front().when;
    // Release the committed due slot: holding it across subsequent
    // schedule() calls could let later-slot events hide behind it.
    unloadDue();
    return when;
}

EventId
TimerWheelQueue::schedule(TimePs when, EventFn fn)
{
    if (when < currentTime)
        panicf("EventQueue::schedule: time ", when, " is in the past (now ",
               currentTime, ")");
    const std::uint32_t idx = allocRecord(when, std::move(fn));
    ++liveCount;
    if (liveCount > peakLive)
        peakLive = liveCount;
    place(idx, when);
    return (static_cast<EventId>(pool[idx].gen) << 32) |
           static_cast<EventId>(idx + 1);
}

void
TimerWheelQueue::cancel(EventId id)
{
    const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    if (slot == 0 || slot > pool.size())
        return;
    Record &r = pool[slot - 1];
    if (r.state != SlotState::kLive ||
        r.gen != static_cast<std::uint32_t>(id >> 32))
        return;
    // Destroy the closure NOW: anything it captured (packets, channel
    // state) is released at cancel time, not when the tombstone is
    // lazily reached.
    r.fn.reset();
    r.state = SlotState::kDead;
    --liveCount;
    ++cancelledCount;
    ++deadParked;
    maybeSweep();
}

void
TimerWheelQueue::maybeSweep()
{
    if (deadParked <= 1024 || deadParked <= 2 * liveCount)
        return;
    const auto isDead = [this](std::uint32_t idx) {
        if (pool[idx].state != SlotState::kDead)
            return false;
        freeRecord(idx);
        return true;
    };
    for (int level = 0; level < kLevels; ++level) {
        for (int s = 0; s < kSlots; ++s) {
            auto &cell = cells[level][s];
            if (cell.empty())
                continue;
            cell.erase(std::remove_if(cell.begin(), cell.end(), isDead),
                       cell.end());
            if (cell.empty())
                occupied[level] &= ~(std::uint64_t{1} << s);
        }
    }
    if (dueSlotAbs >= 0) {
        auto keep = due.begin() + static_cast<std::ptrdiff_t>(duePos);
        auto last = std::remove_if(keep, due.end(), [&](const DueEntry &e) {
            return isDead(e.idx);
        });
        due.erase(last, due.end());
        if (duePos >= due.size())
            dueFrontLive();  // resets the buffer if fully consumed
    }
    auto last = std::remove_if(overflow.begin(), overflow.end(),
                               [&](const FarEvent &e) {
                                   return isDead(e.idx);
                               });
    overflow.erase(last, overflow.end());
    std::make_heap(overflow.begin(), overflow.end(), FarLater{});
    deadParked = 0;
}

bool
TimerWheelQueue::step()
{
    const std::uint32_t idx = takeNext();
    if (idx == kInvalidRecord)
        return false;
    Record &r = pool[idx];
    const TimePs when = r.when;
    EventFn fn = std::move(r.fn);
    --liveCount;
    freeRecord(idx);
    currentTime = when;
    ++executedCount;
    fn();
    return true;
}

void
TimerWheelQueue::runUntil(TimePs limit)
{
    while (true) {
        const std::uint32_t idx = takeNext();
        if (idx == kInvalidRecord)
            break;
        if (pool[idx].when > limit) {
            // Put it back (keeping its sequence number, so FIFO order
            // is unaffected) and return the rest of the due buffer to
            // the wheel: the buffer must never outlive the run that
            // committed to its slot, or later schedules could slip in
            // ahead of it unseen.
            place(idx, pool[idx].when);
            unloadDue();
            break;
        }
        Record &r = pool[idx];
        const TimePs when = r.when;
        EventFn fn = std::move(r.fn);
        --liveCount;
        freeRecord(idx);
        currentTime = when;
        ++executedCount;
        fn();
    }
    if (currentTime < limit)
        currentTime = limit;
}

void
TimerWheelQueue::runAll()
{
    while (step()) {
    }
}

// ---------------------------------------------------------------------------
// BinaryHeapQueue (reference oracle)
// ---------------------------------------------------------------------------

EventId
BinaryHeapQueue::schedule(TimePs when, EventFn fn)
{
    if (when < currentTime)
        panicf("EventQueue::schedule: time ", when, " is in the past (now ",
               currentTime, ")");
    const EventId id = nextId++;
    heap.push(Entry{when, id, std::move(fn)});
    liveIds.insert(id);
    if (liveIds.size() > peakLive)
        peakLive = liveIds.size();
    return id;
}

void
BinaryHeapQueue::cancel(EventId id)
{
    // Cancelling an already-fired or unknown event is a harmless no-op;
    // only ids still in the heap are tombstoned.
    if (liveIds.erase(id) != 0)
        ++cancelledCount;
}

bool
BinaryHeapQueue::popLive(Entry &out)
{
    while (!heap.empty()) {
        // priority_queue::top() is const; we must move the closure out.
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        auto it = liveIds.find(e.id);
        if (it == liveIds.end())
            continue;  // tombstoned by cancel()
        liveIds.erase(it);
        out = std::move(e);
        return true;
    }
    return false;
}

bool
BinaryHeapQueue::step()
{
    Entry e;
    if (!popLive(e))
        return false;
    currentTime = e.when;
    ++executedCount;
    e.fn();
    return true;
}

void
BinaryHeapQueue::runUntil(TimePs limit)
{
    while (true) {
        Entry e;
        if (!popLive(e))
            break;
        if (e.when > limit) {
            // Put it back (and mark live again); cheaper than peeking
            // because priority_queue lacks a non-destructive move-out API.
            liveIds.insert(e.id);
            heap.push(std::move(e));
            break;
        }
        currentTime = e.when;
        ++executedCount;
        e.fn();
    }
    if (currentTime < limit)
        currentTime = limit;
}

void
BinaryHeapQueue::runAll()
{
    while (step()) {
    }
}

TimePs
BinaryHeapQueue::nextEventTime()
{
    while (!heap.empty() && liveIds.count(heap.top().id) == 0)
        heap.pop();  // tombstoned by cancel(); drop lazily as popLive does
    return heap.empty() ? kTimeNever : heap.top().when;
}

}  // namespace ccsim::sim
