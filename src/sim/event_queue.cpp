#include "sim/event_queue.hpp"

namespace ccsim::sim {

EventId
EventQueue::schedule(TimePs when, std::function<void()> fn)
{
    if (when < currentTime)
        panicf("EventQueue::schedule: time ", when, " is in the past (now ",
               currentTime, ")");
    const EventId id = nextId++;
    heap.push(Entry{when, id, std::move(fn)});
    liveIds.insert(id);
    return id;
}

void
EventQueue::cancel(EventId id)
{
    // Cancelling an already-fired or unknown event is a harmless no-op;
    // only ids still in the heap are tombstoned.
    liveIds.erase(id);
}

bool
EventQueue::popLive(Entry &out)
{
    while (!heap.empty()) {
        // priority_queue::top() is const; we must move the closure out.
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        auto it = liveIds.find(e.id);
        if (it == liveIds.end())
            continue;  // tombstoned by cancel()
        liveIds.erase(it);
        out = std::move(e);
        return true;
    }
    return false;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popLive(e))
        return false;
    currentTime = e.when;
    ++executedCount;
    e.fn();
    return true;
}

void
EventQueue::runUntil(TimePs limit)
{
    while (true) {
        Entry e;
        if (!popLive(e))
            break;
        if (e.when > limit) {
            // Put it back (and mark live again); cheaper than peeking
            // because priority_queue lacks a non-destructive move-out API.
            liveIds.insert(e.id);
            heap.push(std::move(e));
            break;
        }
        currentTime = e.when;
        ++executedCount;
        e.fn();
    }
    if (currentTime < limit)
        currentTime = limit;
}

void
EventQueue::runAll()
{
    while (step()) {
    }
}

}  // namespace ccsim::sim
