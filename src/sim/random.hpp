/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * We implement xoshiro256** (Blackman & Vigna) seeded via SplitMix64 so that
 * every experiment is exactly reproducible from a single 64-bit seed, across
 * standard libraries and platforms (std::mt19937 distributions are not
 * portable across implementations).
 */
#pragma once

#include <cmath>
#include <cstdint>

namespace ccsim::sim {

/**
 * xoshiro256** PRNG.
 *
 * Satisfies the UniformRandomBitGenerator concept, so it can also be
 * plugged into <random> distributions when portability does not matter.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

    /** Re-seed the generator. */
    void reseed(std::uint64_t seed);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return UINT64_MAX; }

    /** Next raw 64-bit value. */
    result_type operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Exponential variate with mean @p mean. */
    double exponential(double mean);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double sigma) { return mean + sigma * normal(); }

    /**
     * Lognormal variate parameterized by the mean and coefficient of
     * variation of the *resulting* distribution (more convenient for
     * service-time modelling than mu/sigma of the underlying normal).
     */
    double lognormalMeanCv(double mean, double cv);

    /** Lognormal variate with underlying normal parameters mu, sigma. */
    double lognormal(double mu, double sigma);

    /** Pareto variate with scale xm and shape alpha. */
    double pareto(double xm, double alpha);

    /** Poisson variate with rate lambda (Knuth for small, PTRS for large). */
    std::uint64_t poisson(double lambda);

    /** Geometric: number of failures before first success, prob p. */
    std::uint64_t geometric(double p);

    /** Split off an independent child stream (for per-component RNGs). */
    Rng split();

    /**
     * Derive the @p stream-th child stream of a master seed.
     *
     * Counter-based (unlike split(), which advances the parent): the
     * child depends only on the (master, stream) pair, never on how many
     * sibling streams exist or the order they are created. A partitioned
     * simulation seeds partition p with forStream(masterSeed, p), so the
     * same master seed yields the same per-partition sequences whether
     * the run uses 1 worker thread or 8 — per-seed determinism survives
     * resharding.
     */
    static Rng forStream(std::uint64_t master, std::uint64_t stream);

  private:
    std::uint64_t s[4];
    bool hasCachedNormal = false;
    double cachedNormal = 0.0;
};

}  // namespace ccsim::sim
