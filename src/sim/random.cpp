#include "sim/random.hpp"

#include "sim/logging.hpp"

namespace ccsim::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
    hasCachedNormal = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt: n must be > 0");
    // Lemire-style rejection-free-enough bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        std::uint64_t threshold = -n % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (hi < lo)
        panic("Rng::uniformInt: hi < lo");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    hasCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(mu + sigma * normal());
}

double
Rng::lognormalMeanCv(double mean, double cv)
{
    // mean = exp(mu + sigma^2/2); cv^2 = exp(sigma^2) - 1.
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return lognormal(mu, std::sqrt(sigma2));
}

double
Rng::pareto(double xm, double alpha)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t
Rng::poisson(double lambda)
{
    if (lambda <= 0)
        return 0;
    if (lambda < 30.0) {
        // Knuth's product method.
        const double limit = std::exp(-lambda);
        double prod = uniform();
        std::uint64_t n = 0;
        while (prod > limit) {
            prod *= uniform();
            ++n;
        }
        return n;
    }
    // Normal approximation with continuity correction; fine for
    // workload-generation purposes at large lambda.
    const double x = normal(lambda, std::sqrt(lambda));
    return x < 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic("Rng::geometric: p out of (0,1]");
    if (p == 1.0)
        return 0;
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xD1B54A32D192ED03ull);
}

Rng
Rng::forStream(std::uint64_t master, std::uint64_t stream)
{
    // Diffuse the stream counter through one SplitMix64 finalization so
    // consecutive ids (0, 1, 2, ...) select unrelated child seeds, then
    // fold it into a master-derived value. The xor constant decouples
    // stream 0 from the plain Rng(master) seeding path. The combined
    // seed feeds the normal reseed() expansion (4 further SplitMix64
    // steps into xoshiro256** state).
    std::uint64_t c = stream;
    const std::uint64_t mixedStream = splitmix64(c);
    std::uint64_t m = master ^ 0xA3EC647659359ACDull;
    const std::uint64_t mixedMaster = splitmix64(m);
    return Rng(mixedMaster ^ mixedStream);
}

}  // namespace ccsim::sim
