/**
 * @file
 * Small-buffer-optimized, move-only event closure for the DES kernel.
 *
 * `std::function` forced every scheduled closure whose captures exceeded
 * the library's small-object buffer (typically 16 bytes) onto the heap,
 * and required copyability. EventFn gives the kernel a 64-byte inline
 * buffer — sized so that every hot-path lambda in the simulator (channel
 * transmit completions carrying a PacketPtr plus a completion callback,
 * LTL retransmit timers, switch forwarding hops, elastic-router pipeline
 * stages, DRAM/PCIe completions) is stored inline and never touches the
 * allocator — and accepts move-only callables (e.g. captures holding a
 * `std::unique_ptr`). Oversized or over-aligned callables fall back to a
 * single heap allocation.
 */
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ccsim::sim {

/** A move-only `void()` callable with a large inline buffer. */
class EventFn
{
  public:
    /**
     * Inline storage size in bytes. Chosen to cover the largest common
     * capture in the codebase: `Channel::tryTransmit`'s completion
     * lambda carries a TxEntry (PacketPtr + std::function) plus `this`,
     * 56 bytes on a 64-bit libstdc++.
     */
    static constexpr std::size_t kInlineSize = 64;
    /** Maximum alignment served by the inline buffer. */
    static constexpr std::size_t kInlineAlign = 16;

    EventFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_v<std::decay_t<F> &>>>
    EventFn(F &&f)  // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            invoke = &inlineInvoke<Fn>;
            manage = &inlineManage<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf) = new Fn(std::forward<F>(f));
            invoke = &heapInvoke<Fn>;
            manage = &heapManage<Fn>;
        }
    }

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** Destroy the stored callable (and release what it captured). */
    void reset() noexcept
    {
        if (invoke != nullptr) {
            manage(Op::kDestroy, buf, nullptr);
            invoke = nullptr;
            manage = nullptr;
        }
    }

    explicit operator bool() const noexcept { return invoke != nullptr; }

    /** Whether @p F would be stored inline (exposed for tests/docs). */
    template <typename F>
    static constexpr bool fitsInline()
    {
        return sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
               std::is_nothrow_move_constructible_v<F>;
    }

    void operator()() { invoke(buf); }

  private:
    enum class Op { kDestroy, kRelocate };

    using InvokeFn = void (*)(void *);
    using ManageFn = void (*)(Op, void *, void *);

    template <typename Fn>
    static void inlineInvoke(void *p)
    {
        (*static_cast<Fn *>(p))();
    }
    template <typename Fn>
    static void inlineManage(Op op, void *self, void *dst)
    {
        Fn *f = static_cast<Fn *>(self);
        if (op == Op::kRelocate)
            ::new (dst) Fn(std::move(*f));
        f->~Fn();
    }

    template <typename Fn>
    static void heapInvoke(void *p)
    {
        (**static_cast<Fn **>(p))();
    }
    template <typename Fn>
    static void heapManage(Op op, void *self, void *dst)
    {
        Fn **pp = static_cast<Fn **>(self);
        if (op == Op::kRelocate)
            *reinterpret_cast<Fn **>(dst) = *pp;
        else
            delete *pp;
    }

    void moveFrom(EventFn &o) noexcept
    {
        invoke = o.invoke;
        manage = o.manage;
        if (invoke != nullptr) {
            o.manage(Op::kRelocate, o.buf, buf);
            o.invoke = nullptr;
            o.manage = nullptr;
        }
    }

    InvokeFn invoke = nullptr;
    ManageFn manage = nullptr;
    alignas(kInlineAlign) unsigned char buf[kInlineSize];
};

}  // namespace ccsim::sim
