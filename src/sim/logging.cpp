#include "sim/logging.hpp"

#include <cstdio>

namespace ccsim::sim {

namespace {

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kNone: return "NONE";
    }
    return "?";
}

}  // namespace

void
Logger::log(LogLevel lvl, std::string_view comp, TimePs now,
            std::string_view msg)
{
    std::ostringstream line;
    line << '[' << levelName(lvl) << "] ";
    if (now >= 0)
        line << '@' << toMicros(now) << "us ";
    line << comp << ": " << msg << '\n';
    std::cerr << line.str();
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

}  // namespace ccsim::sim
