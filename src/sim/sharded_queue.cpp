#include "sim/sharded_queue.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace ccsim::sim {

ShardedEventQueue::ShardedEventQueue(Config cfg) : config(cfg)
{
    if (cfg.partitions < 1)
        panicf("ShardedEventQueue: partitions must be >= 1, got ",
               cfg.partitions);
    if (cfg.threads < 1)
        panicf("ShardedEventQueue: threads must be >= 1, got ", cfg.threads);
    if (cfg.window < 0)
        panicf("ShardedEventQueue: window must be >= 0, got ", cfg.window);
    nThreads = std::min(cfg.threads, cfg.partitions);
    parts.reserve(static_cast<std::size_t>(cfg.partitions));
    for (int p = 0; p < cfg.partitions; ++p) {
        auto part = std::make_unique<Partition>();
        part->outbox.resize(static_cast<std::size_t>(cfg.partitions));
        parts.push_back(std::move(part));
    }
    edgeLatency.assign(static_cast<std::size_t>(cfg.partitions),
                       std::vector<TimePs>(
                           static_cast<std::size_t>(cfg.partitions), 0));
}

ShardedEventQueue::~ShardedEventQueue()
{
    if (!workers.empty()) {
        {
            std::lock_guard<std::mutex> lk(mu);
            shutdown = true;
        }
        cvStart.notify_all();
        for (std::thread &t : workers)
            t.join();
    }
}

EventQueue &
ShardedEventQueue::partition(int p)
{
    if (p < 0 || p >= partitionCount())
        panicf("ShardedEventQueue::partition: index ", p, " out of range [0, ",
               partitionCount(), ")");
    return parts[static_cast<std::size_t>(p)]->eq;
}

const EventQueue &
ShardedEventQueue::partition(int p) const
{
    if (p < 0 || p >= partitionCount())
        panicf("ShardedEventQueue::partition: index ", p, " out of range [0, ",
               partitionCount(), ")");
    return parts[static_cast<std::size_t>(p)]->eq;
}

void
ShardedEventQueue::registerCrossEdge(int src, int dst, TimePs minLatency)
{
    if (started)
        panic("ShardedEventQueue::registerCrossEdge: cannot register edges "
              "after the first run");
    if (src < 0 || src >= partitionCount() || dst < 0 ||
        dst >= partitionCount())
        panicf("ShardedEventQueue::registerCrossEdge: bad edge (", src, " -> ",
               dst, ") for ", partitionCount(), " partitions");
    if (src == dst)
        panicf("ShardedEventQueue::registerCrossEdge: self-edge on partition ",
               src, " (schedule directly instead)");
    if (minLatency < 1)
        panicf("ShardedEventQueue::registerCrossEdge: edge (", src, " -> ",
               dst, ") needs positive lookahead, got ", minLatency);
    if (config.window > 0 && minLatency < config.window)
        panicf("ShardedEventQueue: sub-lookahead link: edge (", src, " -> ",
               dst, ") latency ", minLatency,
               " ps is below the configured sync window ", config.window,
               " ps; a message could arrive inside the window it was sent "
               "in. Shorten the window or slow the link.");
    TimePs &cell =
        edgeLatency[static_cast<std::size_t>(src)][static_cast<std::size_t>(
            dst)];
    cell = cell == 0 ? minLatency : std::min(cell, minLatency);
}

void
ShardedEventQueue::postCross(int src, int dst, TimePs when, EventFn fn)
{
    if (src < 0 || src >= partitionCount() || dst < 0 ||
        dst >= partitionCount() || src == dst)
        panicf("ShardedEventQueue::postCross: bad route (", src, " -> ", dst,
               ")");
    if (edgeLatency[static_cast<std::size_t>(src)][static_cast<std::size_t>(
            dst)] == 0)
        panicf("ShardedEventQueue::postCross: no registered cross edge (",
               src, " -> ", dst,
               "); cross-partition interaction must flow through registered "
               "channels");
    // Early floor check; the barrier flush re-checks against the window
    // that actually executed (the authoritative causality assertion).
    if (when <= floorTime)
        panicf("ShardedEventQueue::postCross: causality violation: event at ",
               when, " ps is at or below the window floor ", floorTime,
               " ps (edge ", src, " -> ", dst, ")");
    Partition &sp = *parts[static_cast<std::size_t>(src)];
    sp.outbox[static_cast<std::size_t>(dst)].push_back(
        CrossMsg{when, sp.crossSeq++, std::move(fn)});
}

void
ShardedEventQueue::atBarrier(BarrierHook hook, TimePs firstDeadline)
{
    const TimePs deadline = firstDeadline == kTimeNever
                                ? kTimeNever
                                : std::max(firstDeadline, floorTime + 1);
    hooks.push_back(Hook{std::move(hook), deadline});
}

void
ShardedEventQueue::requestBarrier(TimePs t)
{
    extraDeadlines.push(std::max(t, floorTime + 1));
}

std::uint64_t
ShardedEventQueue::eventsExecuted() const
{
    std::uint64_t total = 0;
    for (const auto &p : parts)
        total += p->eq.eventsExecuted();
    return total;
}

void
ShardedEventQueue::start()
{
    if (started)
        return;
    started = true;
    if (config.window > 0) {
        resolvedWindow = config.window;
    } else {
        resolvedWindow = kTimeNever;
        for (const auto &row : edgeLatency)
            for (const TimePs lat : row)
                if (lat > 0)
                    resolvedWindow = std::min(resolvedWindow, lat);
    }
    if (nThreads > 1)
        for (int w = 1; w < nThreads; ++w)
            workers.emplace_back(&ShardedEventQueue::workerLoop, this, w);
}

void
ShardedEventQueue::runPartitionShare(int workerIdx)
{
    // Phase state is stable while the phase runs: the coordinator wrote
    // it under `mu` before waking the workers and does not touch it
    // again until every worker has checked in.
    for (int p = workerIdx; p < partitionCount(); p += nThreads) {
        EventQueue &eq = parts[static_cast<std::size_t>(p)]->eq;
        if (phaseDrain)
            eq.runAll();
        else
            eq.runUntil(phaseEnd);
    }
}

void
ShardedEventQueue::workerLoop(int workerIdx)
{
    std::uint64_t seenEpoch = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(mu);
            cvStart.wait(lk, [&] {
                return shutdown || phaseEpoch != seenEpoch;
            });
            if (shutdown)
                return;
            seenEpoch = phaseEpoch;
        }
        runPartitionShare(workerIdx);
        {
            std::lock_guard<std::mutex> lk(mu);
            --phasePending;
        }
        cvDone.notify_one();
    }
}

void
ShardedEventQueue::runWindow(TimePs e, bool drain)
{
    phaseEnd = e;
    phaseDrain = drain;
    if (nThreads == 1) {
        runPartitionShare(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu);
        phasePending = nThreads - 1;
        ++phaseEpoch;
    }
    cvStart.notify_all();
    runPartitionShare(0);
    std::unique_lock<std::mutex> lk(mu);
    cvDone.wait(lk, [&] { return phasePending == 0; });
}

TimePs
ShardedEventQueue::minNextEventTime()
{
    TimePs t0 = kTimeNever;
    for (auto &p : parts)
        t0 = std::min(t0, p->eq.nextEventTime());
    return t0;
}

TimePs
ShardedEventQueue::windowEndFor(TimePs t0) const
{
    if (resolvedWindow == kTimeNever)
        return kTimeNever;
    if (t0 >= kTimeNever - (resolvedWindow - 1))
        return kTimeNever;  // saturate
    return t0 + resolvedWindow - 1;
}

void
ShardedEventQueue::flushOutboxes()
{
    const int P = partitionCount();
    struct Item {
        TimePs when;
        int src;
        std::uint64_t seq;
        EventFn *fn;
    };
    std::vector<Item> items;
    for (int dst = 0; dst < P; ++dst) {
        items.clear();
        for (int src = 0; src < P; ++src) {
            for (CrossMsg &m :
                 parts[static_cast<std::size_t>(src)]
                     ->outbox[static_cast<std::size_t>(dst)])
                items.push_back(Item{m.when, src, m.seq, &m.fn});
        }
        if (items.empty())
            continue;
        // (when, src partition, per-src post order): a total order that
        // does not depend on thread count or barrier wall-clock timing.
        std::sort(items.begin(), items.end(),
                  [](const Item &a, const Item &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
        EventQueue &deq = parts[static_cast<std::size_t>(dst)]->eq;
        for (Item &it : items) {
            if (it.when <= floorTime)
                panicf("ShardedEventQueue: causality violation at barrier: "
                       "cross event from partition ",
                       it.src, " to partition ", dst, " at ", it.when,
                       " ps is at or below the window floor ", floorTime,
                       " ps (lookahead too small for the sending link?)");
            deq.schedule(it.when, std::move(*it.fn));
            ++crossMessageCount;
        }
        for (int src = 0; src < P; ++src)
            parts[static_cast<std::size_t>(src)]
                ->outbox[static_cast<std::size_t>(dst)]
                .clear();
    }
}

void
ShardedEventQueue::fireHooks(TimePs e)
{
    for (Hook &h : hooks) {
        const TimePs next = h.fn(e);
        h.deadline = next == kTimeNever ? kTimeNever : std::max(next, e + 1);
    }
}

void
ShardedEventQueue::runUntil(TimePs limit)
{
    start();
    flushOutboxes();  // deliver build-time posts
    while (floorTime < limit) {
        TimePs e = limit;
        const TimePs t0 = minNextEventTime();
        if (t0 != kTimeNever) {
            const TimePs we = windowEndFor(t0);
            if (we != kTimeNever && we < e)
                e = we;
        }
        for (const Hook &h : hooks)
            if (h.deadline != kTimeNever && h.deadline < e)
                e = h.deadline;
        while (!extraDeadlines.empty() && extraDeadlines.top() <= floorTime)
            extraDeadlines.pop();
        if (!extraDeadlines.empty() && extraDeadlines.top() < e)
            e = extraDeadlines.top();
        if (e <= floorTime)
            e = floorTime + 1;  // defensive: deadlines are clamped > floor
        runWindow(e, /*drain=*/false);
        floorTime = e;
        flushOutboxes();
        fireHooks(e);
        ++windowsRunCount;
    }
}

void
ShardedEventQueue::runAll()
{
    start();
    flushOutboxes();
    while (true) {
        const TimePs t0 = minNextEventTime();
        if (t0 == kTimeNever)
            break;
        const TimePs e = windowEndFor(t0);
        if (e == kTimeNever) {
            // Unbounded window: partitions are fully independent (no
            // cross edges), so each can drain in one phase.
            runWindow(0, /*drain=*/true);
            for (const auto &p : parts)
                floorTime = std::max(floorTime, p->eq.now());
        } else {
            runWindow(e, /*drain=*/false);
            floorTime = e;
        }
        flushOutboxes();
        fireHooks(floorTime);
        ++windowsRunCount;
    }
}

}  // namespace ccsim::sim
