/**
 * @file
 * Simulated-time primitives for the ccsim discrete-event kernel.
 *
 * All simulated time is kept as a signed 64-bit count of picoseconds.
 * At picosecond resolution a signed 64-bit value covers ~106 days of
 * simulated time, far beyond any experiment in the Configurable Cloud
 * reproduction (the longest run is the 5-day production trace, which
 * is windowed).
 */
#pragma once

#include <cstdint>

namespace ccsim::sim {

/** Simulated time in picoseconds. */
using TimePs = std::int64_t;

/** One picosecond. */
inline constexpr TimePs kPicosecond = 1;
/** One nanosecond. */
inline constexpr TimePs kNanosecond = 1000;
/** One microsecond. */
inline constexpr TimePs kMicrosecond = 1000 * kNanosecond;
/** One millisecond. */
inline constexpr TimePs kMillisecond = 1000 * kMicrosecond;
/** One second. */
inline constexpr TimePs kSecond = 1000 * kMillisecond;

/** Sentinel for "never" / unscheduled deadlines. */
inline constexpr TimePs kTimeNever = INT64_MAX;

/** Convert picoseconds to (double) nanoseconds. */
constexpr double toNanos(TimePs t) { return static_cast<double>(t) / kNanosecond; }
/** Convert picoseconds to (double) microseconds. */
constexpr double toMicros(TimePs t) { return static_cast<double>(t) / kMicrosecond; }
/** Convert picoseconds to (double) milliseconds. */
constexpr double toMillis(TimePs t) { return static_cast<double>(t) / kMillisecond; }
/** Convert picoseconds to (double) seconds. */
constexpr double toSeconds(TimePs t) { return static_cast<double>(t) / kSecond; }

/** Convert (double) nanoseconds to picoseconds, rounding to nearest. */
constexpr TimePs fromNanos(double ns)
{
    return static_cast<TimePs>(ns * kNanosecond + (ns >= 0 ? 0.5 : -0.5));
}
/** Convert (double) microseconds to picoseconds, rounding to nearest. */
constexpr TimePs fromMicros(double us)
{
    return fromNanos(us * 1e3);
}
/** Convert (double) milliseconds to picoseconds, rounding to nearest. */
constexpr TimePs fromMillis(double ms)
{
    return fromNanos(ms * 1e6);
}
/** Convert (double) seconds to picoseconds, rounding to nearest. */
constexpr TimePs fromSeconds(double s)
{
    return fromNanos(s * 1e9);
}

/**
 * Time to serialize @p bytes onto a link of @p gbps gigabits per second.
 *
 * @param bytes Number of bytes on the wire.
 * @param gbps  Link rate in Gb/s (e.g. 40.0 for 40 GbE).
 * @return Serialization delay in picoseconds.
 */
constexpr TimePs serializationDelay(std::uint64_t bytes, double gbps)
{
    // bits / (Gb/s) = nanoseconds; convert to picoseconds.
    return static_cast<TimePs>(static_cast<double>(bytes) * 8.0 / gbps * kNanosecond);
}

/**
 * Propagation delay through @p meters of cable/fiber.
 *
 * Uses ~5 ns/m (2/3 c), the usual datacenter rule of thumb for both
 * copper DAC and multimode fiber.
 */
constexpr TimePs propagationDelay(double meters)
{
    return fromNanos(meters * 5.0);
}

/** Picoseconds per cycle for a clock of @p mhz megahertz. */
constexpr TimePs cyclePeriod(double mhz)
{
    return static_cast<TimePs>(1e6 / mhz);  // 1e12 ps/s / (mhz * 1e6)
}

}  // namespace ccsim::sim
