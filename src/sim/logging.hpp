/**
 * @file
 * Minimal levelled logging plus gem5-style panic()/fatal() helpers.
 *
 * panic() is for internal invariant violations (simulator bugs); it aborts.
 * fatal() is for user/configuration errors; it exits cleanly with an error.
 */
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace ccsim::sim {

/** Log severity levels, in increasing order of importance. */
enum class LogLevel : int {
    kTrace = 0,
    kDebug = 1,
    kInfo = 2,
    kWarn = 3,
    kError = 4,
    kNone = 5,
};

/** Global log configuration (process-wide). */
class Logger
{
  public:
    /** The process-wide minimum level that will be emitted. */
    static LogLevel level() { return globalLevel; }
    /** Set the process-wide minimum level. */
    static void setLevel(LogLevel lvl) { globalLevel = lvl; }

    /**
     * Emit one log line.
     *
     * @param lvl   Severity.
     * @param comp  Component name (e.g. "ltl", "switch.tor0").
     * @param now   Simulated time, or -1 if not inside a simulation.
     * @param msg   Message body.
     */
    static void log(LogLevel lvl, std::string_view comp, TimePs now,
                    std::string_view msg);

  private:
    static inline LogLevel globalLevel = LogLevel::kWarn;
};

/**
 * Report an internal simulator bug and abort.
 *
 * Use for conditions that should be impossible regardless of configuration.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const std::string &msg);

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

}  // namespace detail

/** Streaming panic: panicf("bad state ", x, " at ", y). */
template <typename... Args>
[[noreturn]] void
panicf(Args &&...args)
{
    panic(detail::concat(std::forward<Args>(args)...));
}

/** Streaming fatal. */
template <typename... Args>
[[noreturn]] void
fatalf(Args &&...args)
{
    fatal(detail::concat(std::forward<Args>(args)...));
}

}  // namespace ccsim::sim

/** Convenience macro: log at a level with lazy message formatting. */
#define CCSIM_LOG(lvl, comp, now, ...)                                        \
    do {                                                                      \
        if (static_cast<int>(lvl) >=                                          \
            static_cast<int>(::ccsim::sim::Logger::level())) {                \
            ::ccsim::sim::Logger::log(                                        \
                (lvl), (comp), (now),                                         \
                ::ccsim::sim::detail::concat(__VA_ARGS__));                   \
        }                                                                     \
    } while (0)
