#include "sim/stats.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace ccsim::sim {

void
SampleStats::add(double x)
{
    if (std::isnan(x)) {
        // A NaN sample would poison the mean and break the strict weak
        // ordering percentile sorting relies on; count it and move on.
        ++nanSamples;
        return;
    }
    samples.push_back(x);
    sorted = false;
    total += x;
    minVal = std::min(minVal, x);
    maxVal = std::max(maxVal, x);
}

double
SampleStats::mean() const
{
    return samples.empty() ? 0.0 : total / static_cast<double>(samples.size());
}

double
SampleStats::stddev() const
{
    if (samples.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : samples)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples.size()));
}

double
SampleStats::percentile(double p) const
{
    if (std::isnan(p))
        panic("SampleStats::percentile: p is NaN");
    if (p < 0.0 || p > 100.0)
        panicf("SampleStats::percentile: p=", p, " out of [0,100]");
    if (samples.empty())
        return 0.0;
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    // Linear interpolation between closest ranks (type-7 / numpy default).
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

void
SampleStats::clear()
{
    samples.clear();
    sorted = false;
    total = 0.0;
    minVal = std::numeric_limits<double>::infinity();
    maxVal = -std::numeric_limits<double>::infinity();
    nanSamples = 0;
}

LogHistogram::LogHistogram(double min_value, int bins_per_octave)
    : minValue(min_value), binsPerOctave(bins_per_octave)
{
    if (min_value <= 0.0)
        panic("LogHistogram: min_value must be positive");
    if (bins_per_octave < 1)
        panic("LogHistogram: bins_per_octave must be >= 1");
}

std::size_t
LogHistogram::binIndex(double x) const
{
    if (x <= minValue)
        return 0;
    const double octaves = std::log2(x / minValue);
    return 1 + static_cast<std::size_t>(octaves * binsPerOctave);
}

double
LogHistogram::binLowerEdge(std::size_t idx) const
{
    if (idx == 0)
        return 0.0;
    return minValue * std::exp2(static_cast<double>(idx - 1) / binsPerOctave);
}

void
LogHistogram::addN(double x, std::uint64_t n)
{
    if (n == 0)
        return;
    if (std::isnan(x)) {
        // log2(NaN) would produce a garbage bin index; count and skip.
        nanSamples += n;
        return;
    }
    const std::size_t idx = binIndex(x);
    if (idx >= bins.size())
        bins.resize(idx + 1, 0);
    bins[idx] += n;
    totalCount += n;
    totalSum += x * static_cast<double>(n);
    minVal = std::min(minVal, x);
    maxVal = std::max(maxVal, x);
}

double
LogHistogram::percentile(double p) const
{
    if (totalCount == 0)
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panicf("LogHistogram::percentile: p=", p, " out of [0,100]");
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(totalCount)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        cum += bins[i];
        if (cum >= target && bins[i] > 0) {
            // Midpoint of the bin (geometric), clamped to observed range.
            const double lo = binLowerEdge(i);
            const double hi = binLowerEdge(i + 1);
            const double mid = lo > 0.0 ? std::sqrt(lo * hi) : hi * 0.5;
            return std::min(std::max(mid, minVal), maxVal);
        }
    }
    return maxVal;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (minValue != other.minValue || binsPerOctave != other.binsPerOctave)
        panic("LogHistogram::merge: binning parameters differ");
    if (other.bins.size() > bins.size())
        bins.resize(other.bins.size(), 0);
    for (std::size_t i = 0; i < other.bins.size(); ++i)
        bins[i] += other.bins[i];
    totalCount += other.totalCount;
    totalSum += other.totalSum;
    nanSamples += other.nanSamples;
    minVal = std::min(minVal, other.minVal);
    maxVal = std::max(maxVal, other.maxVal);
}

void
LogHistogram::clear()
{
    bins.clear();
    totalCount = 0;
    nanSamples = 0;
    totalSum = 0.0;
    minVal = std::numeric_limits<double>::infinity();
    maxVal = -std::numeric_limits<double>::infinity();
}

void
TimeWeighted::update(std::int64_t t_ps, double v)
{
    if (started && t_ps >= lastTime) {
        const auto dt = t_ps - lastTime;
        weightedSum += lastValue * static_cast<double>(dt);
        elapsed += dt;
    }
    started = true;
    lastTime = t_ps;
    lastValue = v;
    peakVal = std::max(peakVal, v);
}

double
TimeWeighted::average() const
{
    return elapsed > 0 ? weightedSum / static_cast<double>(elapsed) : lastValue;
}

}  // namespace ccsim::sim
