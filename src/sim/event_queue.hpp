/**
 * @file
 * The discrete-event scheduler at the heart of ccsim.
 *
 * Events are closures scheduled at absolute simulated times. Ties are broken
 * by scheduling order (FIFO among same-time events), which makes simulations
 * fully deterministic.
 *
 * Two interchangeable backends implement the same contract:
 *
 *  - **TimerWheelQueue** (the default `EventQueue`) — a hierarchical
 *    timing wheel tuned for ccsim's bimodal delay distribution (sub-ns
 *    flit/link hops vs. multi-µs LTL retransmit timers): 8 levels of 64
 *    slots with 4.096 ns level-0 slots, a far-future overflow heap,
 *    freelist-pooled event records, inline small-buffer closures
 *    (sim::EventFn), and generation-counted handles giving O(1)
 *    cancel() that destroys the closure — and releases everything it
 *    captured — immediately.
 *
 *  - **BinaryHeapQueue** — the original binary-heap implementation, kept
 *    as the behavioural oracle for property tests and A/B determinism
 *    checks. Building with -DCCSIM_REFERENCE_QUEUE=1 aliases
 *    `EventQueue` to it so any experiment can be replayed on the
 *    reference kernel.
 *
 * Both backends execute events in exactly the same order ((time,
 * schedule-order) ascending) and report identical now()/size()
 * trajectories for identical schedule/cancel/run call sequences.
 */
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/logging.hpp"
#include "sim/time.hpp"

namespace ccsim::sim {

/** Opaque handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel EventId meaning "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * A deterministic discrete-event queue backed by a hierarchical timing
 * wheel.
 *
 * Not thread-safe; a simulation runs on one thread (experiments fan out by
 * running independent simulations in separate processes or threads with
 * separate EventQueues).
 *
 * ## Microarchitecture
 *
 * Scheduled events live in a freelist-backed pool of fixed records
 * (absolute time, monotone sequence number for FIFO tie-break, a
 * generation counter, and the inline-SBO closure). The wheel itself
 * stores only 32-bit pool indices:
 *
 *  - 8 levels × 64 slots; level L slots are 2^(12+6L) ps wide, so level
 *    0 resolves 4.096 ns (sub-slot order is restored by sorting a slot
 *    on drain, which is cheap because slots are short at this width)
 *    and the wheel horizon is 64·2^54 ps ≈ 13 days of simulated time.
 *  - one 64-bit occupancy bitmap per level makes "next non-empty slot"
 *    a find-first-set, so sparse regions of simulated time are skipped
 *    in O(1) instead of slot-by-slot ticking.
 *  - events beyond the horizon (e.g. kTimeNever-style sentinels) go to
 *    a far-future overflow heap ordered by (time, seq) and migrate into
 *    the wheel when the horizon reaches them.
 *
 * cancel() checks the handle's generation against the pool record and,
 * when live, destroys the closure in place: O(1), no heap walk, and any
 * captured PacketPtr / connection state is released at cancel time
 * rather than when the tombstone is lazily popped. Dead records whose
 * index is still parked in a slot are reclaimed when the slot drains,
 * or by a bulk sweep when tombstones outnumber live events.
 */
class TimerWheelQueue
{
  public:
    TimerWheelQueue();
    TimerWheelQueue(const TimerWheelQueue &) = delete;
    TimerWheelQueue &operator=(const TimerWheelQueue &) = delete;
    ~TimerWheelQueue();

    /** Current simulated time. */
    TimePs now() const { return currentTime; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now() (events cannot be scheduled in the past).
     * @return A handle usable with cancel().
     */
    EventId schedule(TimePs when, EventFn fn);

    /** Schedule @p fn to run @p delay after the current time. */
    EventId scheduleAfter(TimePs delay, EventFn fn)
    {
        return schedule(currentTime + delay, std::move(fn));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * O(1). The closure (and everything it captured) is destroyed
     * immediately. Cancelling an already-fired or already-cancelled
     * event is a no-op.
     */
    void cancel(EventId id);

    /** True if no live events remain. */
    bool empty() const { return liveCount == 0; }

    /** Number of live (scheduled, uncancelled, unfired) events. */
    std::size_t size() const { return liveCount; }

    /**
     * Run the single next event.
     *
     * @return false if the queue was empty (time does not advance).
     */
    bool step();

    /**
     * Run events until simulated time exceeds @p limit or the queue drains.
     *
     * Events scheduled exactly at @p limit are executed. After returning,
     * now() == min(limit, time of last event) unless the queue drained
     * early, and is clamped up to @p limit so subsequent scheduling is
     * relative to the horizon.
     */
    void runUntil(TimePs limit);

    /** Run events for @p duration of simulated time from now(). */
    void runFor(TimePs duration) { runUntil(currentTime + duration); }

    /** Run until the queue is completely drained. */
    void runAll();

    /**
     * Timestamp of the next live event without executing it, or
     * kTimeNever if the queue is empty.
     *
     * Used by ShardedEventQueue to compute conservative sync windows.
     * Not const: positioning the wheel may cascade slots and reclaim
     * tombstones, but the observable (time, seq) order is unchanged.
     */
    TimePs nextEventTime();

    // --- kernel-health accounting (exported as sim.queue.* probes) ---

    /** Total number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executedCount; }
    /** Total number of events cancelled so far. */
    std::uint64_t eventsCancelled() const { return cancelledCount; }
    /** Events that were routed to the far-future overflow heap. */
    std::uint64_t wheelOverflows() const { return overflowCount; }
    /** Highest number of simultaneously live events seen. */
    std::size_t peakLiveEvents() const { return peakLive; }

  private:
    // Wheel geometry. Level L slots are 2^(kSlotShift0 + 6L) ps wide.
    static constexpr int kLevels = 8;
    static constexpr int kSlotBits = 6;
    static constexpr int kSlots = 1 << kSlotBits;           // 64
    static constexpr int kSlotShift0 = 12;                  // 4.096 ns
    static constexpr int shiftOf(int level)
    {
        return kSlotShift0 + kSlotBits * level;
    }

    enum class SlotState : std::uint8_t { kFree, kLive, kDead };

    /** A pooled event record; wheel cells hold 32-bit indices into it. */
    struct Record {
        TimePs when = 0;
        std::uint64_t seq = 0;   ///< schedule order, FIFO tie-break
        std::uint32_t gen = 0;   ///< bumped on reuse; validates handles
        SlotState state = SlotState::kFree;
        EventFn fn;
    };

    /** Overflow-heap key; kept tiny so sift operations stay cheap. */
    struct FarEvent {
        TimePs when;
        std::uint64_t seq;
        std::uint32_t idx;
    };
    struct FarLater {
        bool operator()(const FarEvent &a, const FarEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Record> pool;
    std::vector<std::uint32_t> freeList;
    std::vector<std::uint32_t> cells[kLevels][kSlots];
    std::uint64_t occupied[kLevels] = {};  ///< bit s: cells[L][s] non-empty
    std::int64_t cursor[kLevels] = {};     ///< absolute slot number per level
    std::vector<FarEvent> overflow;        ///< min-heap by (when, seq)

    /**
     * The slot currently being drained, as packed (when, seq, idx)
     * entries sorted by (when, seq). Packing the sort key next to the
     * index keeps the drain sort cache-local instead of chasing pool
     * records, and lets the common already-in-order slot skip the sort.
     */
    struct DueEntry {
        TimePs when;
        std::uint64_t seq;
        std::uint32_t idx;
    };
    std::vector<DueEntry> due;
    std::size_t duePos = 0;
    std::int64_t dueSlotAbs = -1;  ///< absolute level-0 slot of `due`, or -1

    TimePs currentTime = 0;
    std::uint64_t nextSeq = 1;
    std::size_t liveCount = 0;
    std::size_t peakLive = 0;
    std::size_t deadParked = 0;  ///< cancelled records still parked in cells
    std::uint64_t executedCount = 0;
    std::uint64_t cancelledCount = 0;
    std::uint64_t overflowCount = 0;

    static constexpr std::uint32_t kInvalidRecord = 0xffffffffu;

    std::uint32_t allocRecord(TimePs when, EventFn &&fn);
    void freeRecord(std::uint32_t idx);
    /** Park @p idx in the wheel, or return false if beyond the horizon. */
    bool placeInWheel(std::uint32_t idx, TimePs when);
    void place(std::uint32_t idx, TimePs when);
    /** First occupied absolute slot at @p level. @pre level non-empty. */
    std::int64_t nextOccupiedSlot(int level);
    /** Move one higher-level slot's events down. */
    void cascade(int level, std::int64_t slotAbs);
    /** Move level-0 slot @p slotAbs into the due buffer. */
    void drainSlot(std::int64_t slotAbs);
    /** Append new same-slot arrivals to `due` and restore sort order. */
    void mergeDueArrivals();
    /** Drop executed/dead prefix; true if a live due event is ready. */
    bool dueFrontLive();
    enum class Next { kNone, kDue, kOverflow };
    /** Position the structures so the globally next event is readable. */
    Next ensureNext();
    /** Detach and return the next event's record, or kInvalidRecord. */
    std::uint32_t takeNext();
    /** Return unconsumed due-buffer events to the wheel (for runUntil). */
    void unloadDue();
    void maybeSweep();
};

/**
 * The original binary-heap + tombstone-set event queue, kept as the
 * reference oracle. Closures stay resident until lazily reclaimed at pop
 * time (the retention the wheel backend fixes); ordering and time
 * semantics are the contract both backends share.
 */
class BinaryHeapQueue
{
  public:
    BinaryHeapQueue() = default;
    BinaryHeapQueue(const BinaryHeapQueue &) = delete;
    BinaryHeapQueue &operator=(const BinaryHeapQueue &) = delete;

    /** Current simulated time. */
    TimePs now() const { return currentTime; }

    /** Schedule @p fn to run at absolute time @p when. */
    EventId schedule(TimePs when, EventFn fn);

    /** Schedule @p fn to run @p delay after the current time. */
    EventId scheduleAfter(TimePs delay, EventFn fn)
    {
        return schedule(currentTime + delay, std::move(fn));
    }

    /** Cancel a previously scheduled event (tombstone; lazy reclaim). */
    void cancel(EventId id);

    /** True if no live events remain. */
    bool empty() const { return liveIds.empty(); }

    /** Number of live (scheduled, uncancelled, unfired) events. */
    std::size_t size() const { return liveIds.size(); }

    /** Run the single next event; false if the queue was empty. */
    bool step();

    /** Run events until simulated time exceeds @p limit (see wheel doc). */
    void runUntil(TimePs limit);

    /** Run events for @p duration of simulated time from now(). */
    void runFor(TimePs duration) { runUntil(currentTime + duration); }

    /** Run until the queue is completely drained. */
    void runAll();

    /** Next live event's timestamp, or kTimeNever (see wheel doc). */
    TimePs nextEventTime();

    /** Total number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executedCount; }
    /** Total number of events cancelled so far. */
    std::uint64_t eventsCancelled() const { return cancelledCount; }
    /** Always 0: the reference backend has no wheel. */
    std::uint64_t wheelOverflows() const { return 0; }
    /** Highest number of simultaneously live events seen. */
    std::size_t peakLiveEvents() const { return peakLive; }

  private:
    struct Entry {
        TimePs when;
        EventId id;
        EventFn fn;
    };
    struct Later {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;  // FIFO among equal-time events
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::unordered_set<EventId> liveIds;
    TimePs currentTime = 0;
    EventId nextId = 1;
    std::uint64_t executedCount = 0;
    std::uint64_t cancelledCount = 0;
    std::size_t peakLive = 0;

    /** Pop the next live entry, skipping tombstones. Returns false if empty. */
    bool popLive(Entry &out);
};

#ifdef CCSIM_REFERENCE_QUEUE
using EventQueue = BinaryHeapQueue;
#else
using EventQueue = TimerWheelQueue;
#endif

}  // namespace ccsim::sim
