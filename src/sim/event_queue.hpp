/**
 * @file
 * The discrete-event scheduler at the heart of ccsim.
 *
 * Events are closures scheduled at absolute simulated times. Ties are broken
 * by scheduling order (FIFO among same-time events), which makes simulations
 * fully deterministic. Events may be cancelled; cancellation is O(1) via
 * tombstoning and lazily reclaimed at pop time.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/logging.hpp"
#include "sim/time.hpp"

namespace ccsim::sim {

/** Opaque handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel EventId meaning "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * A deterministic discrete-event queue.
 *
 * Not thread-safe; a simulation runs on one thread (experiments fan out by
 * running independent simulations in separate processes or threads with
 * separate EventQueues).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    TimePs now() const { return currentTime; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now() (events cannot be scheduled in the past).
     * @return A handle usable with cancel().
     */
    EventId schedule(TimePs when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay after the current time. */
    EventId scheduleAfter(TimePs delay, std::function<void()> fn)
    {
        return schedule(currentTime + delay, std::move(fn));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an already-fired or already-cancelled event is a no-op.
     */
    void cancel(EventId id);

    /** True if no live events remain. */
    bool empty() const { return liveIds.empty(); }

    /** Number of live (scheduled, uncancelled, unfired) events. */
    std::size_t size() const { return liveIds.size(); }

    /**
     * Run the single next event.
     *
     * @return false if the queue was empty (time does not advance).
     */
    bool step();

    /**
     * Run events until simulated time exceeds @p limit or the queue drains.
     *
     * Events scheduled exactly at @p limit are executed. After returning,
     * now() == min(limit, time of last event) unless the queue drained
     * early, and is clamped up to @p limit so subsequent scheduling is
     * relative to the horizon.
     */
    void runUntil(TimePs limit);

    /** Run events for @p duration of simulated time from now(). */
    void runFor(TimePs duration) { runUntil(currentTime + duration); }

    /** Run until the queue is completely drained. */
    void runAll();

    /** Total number of events executed so far (for perf accounting). */
    std::uint64_t eventsExecuted() const { return executedCount; }

  private:
    struct Entry {
        TimePs when;
        EventId id;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;  // FIFO among equal-time events
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::unordered_set<EventId> liveIds;
    TimePs currentTime = 0;
    EventId nextId = 1;
    std::uint64_t executedCount = 0;

    /** Pop the next live entry, skipping tombstones. Returns false if empty. */
    bool popLive(Entry &out);
};

}  // namespace ccsim::sim
