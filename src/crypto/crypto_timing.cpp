#include "crypto/crypto_timing.hpp"

#include <algorithm>
#include <cmath>

namespace ccsim::crypto {

double
CpuCryptoModel::coresForLineRate(Suite suite, double gbps) const
{
    // Full duplex: gbps of encryption plus gbps of decryption.
    const double bytes_per_sec = gbps * 1e9 / 8.0;
    const double cycles_per_sec =
        2.0 * bytes_per_sec * cyclesPerByte(suite);
    return cycles_per_sec / (clockGhz * 1e9);
}

sim::TimePs
CpuCryptoModel::packetLatency(Suite suite, std::uint32_t bytes) const
{
    const double cpb = suite == Suite::kAesCbc128Sha1
                           ? cbcSha1SerialCyclesPerByte
                           : cyclesPerByte(suite);
    const double ns = bytes * cpb / clockGhz;
    return sim::fromNanos(ns) + perPacketOverhead;
}

sim::TimePs
FpgaCryptoModel::packetLatency(Suite suite, std::uint32_t bytes) const
{
    const sim::TimePs cycle = sim::cyclePeriod(clockMhz);
    const std::uint32_t blocks = (bytes + 15) / 16;
    if (suite == Suite::kAesCbc128Sha1) {
        // One 128 b block accepted every `cbcInterleave` cycles, then the
        // SHA-1 tail drains before the first authenticated flit exits.
        const std::int64_t cycles =
            static_cast<std::int64_t>(blocks) * cbcInterleave +
            sha1TailCycles;
        return cycles * cycle + fixedOverhead;
    }
    // GCM: one block per cycle after pipeline fill.
    const std::int64_t cycles =
        static_cast<std::int64_t>(blocks) + gcmPipelineDepth;
    return cycles * cycle + fixedOverhead;
}

double
FpgaCryptoModel::throughputGbps(Suite suite, double line_rate_gbps) const
{
    // The datapath is sized for line rate in both modes: GCM trivially
    // (1 block/cycle = 38.4 Gb/s/engine at 300 MHz, two engines), CBC via
    // the 33-packet interleave which also accepts one block per cycle in
    // aggregate across packets.
    (void)suite;
    const double engine_gbps = clockMhz * 1e6 * 128.0 / 1e9;
    return std::min(line_rate_gbps, 2.0 * engine_gbps);
}

}  // namespace ccsim::crypto
