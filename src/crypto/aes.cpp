#include "crypto/aes.hpp"

#include <cstring>

namespace ccsim::crypto {

namespace {

// FIPS-197 S-box.
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

}  // namespace

Aes128::Aes128(const Key128 &key)
{
    std::memcpy(roundKeys[0].data(), key.data(), 16);
    for (int round = 1; round <= kRounds; ++round) {
        const auto &prev = roundKeys[round - 1];
        auto &rk = roundKeys[round];
        // RotWord + SubWord + Rcon on the last word of the previous key.
        std::uint8_t t[4] = {kSbox[prev[13]], kSbox[prev[14]],
                             kSbox[prev[15]], kSbox[prev[12]]};
        t[0] ^= kRcon[round];
        for (int i = 0; i < 4; ++i)
            rk[i] = prev[i] ^ t[i];
        for (int i = 4; i < 16; ++i)
            rk[i] = prev[i] ^ rk[i - 4];
    }
}

void
Aes128::encryptBlock(Block &b) const
{
    auto add_round_key = [&](int round) {
        for (int i = 0; i < 16; ++i)
            b[i] ^= roundKeys[round][i];
    };
    auto sub_bytes = [&] {
        for (auto &x : b)
            x = kSbox[x];
    };
    auto shift_rows = [&] {
        // Row r rotates left by r (column-major state layout).
        std::uint8_t t = b[1];
        b[1] = b[5]; b[5] = b[9]; b[9] = b[13]; b[13] = t;
        std::swap(b[2], b[10]);
        std::swap(b[6], b[14]);
        t = b[15];
        b[15] = b[11]; b[11] = b[7]; b[7] = b[3]; b[3] = t;
    };
    auto mix_columns = [&] {
        for (int c = 0; c < 4; ++c) {
            std::uint8_t *col = &b[4 * c];
            const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                               a3 = col[3];
            col[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^
                                               a2 ^ a3);
            col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^
                                               a2 ^ a3);
            col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^
                                               xtime(a3) ^ a3);
            col[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^
                                               xtime(a3));
        }
    };

    add_round_key(0);
    for (int round = 1; round < kRounds; ++round) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(kRounds);
}

void
Aes128::decryptBlock(Block &b) const
{
    auto add_round_key = [&](int round) {
        for (int i = 0; i < 16; ++i)
            b[i] ^= roundKeys[round][i];
    };
    auto inv_sub_bytes = [&] {
        for (auto &x : b)
            x = kInvSbox[x];
    };
    auto inv_shift_rows = [&] {
        std::uint8_t t = b[13];
        b[13] = b[9]; b[9] = b[5]; b[5] = b[1]; b[1] = t;
        std::swap(b[2], b[10]);
        std::swap(b[6], b[14]);
        t = b[3];
        b[3] = b[7]; b[7] = b[11]; b[11] = b[15]; b[15] = t;
    };
    auto inv_mix_columns = [&] {
        for (int c = 0; c < 4; ++c) {
            std::uint8_t *col = &b[4 * c];
            const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                               a3 = col[3];
            col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                               gmul(a2, 13) ^ gmul(a3, 9));
            col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                               gmul(a2, 11) ^ gmul(a3, 13));
            col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                               gmul(a2, 14) ^ gmul(a3, 11));
            col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                               gmul(a2, 9) ^ gmul(a3, 14));
        }
    };

    add_round_key(kRounds);
    for (int round = kRounds - 1; round >= 1; --round) {
        inv_shift_rows();
        inv_sub_bytes();
        add_round_key(round);
        inv_mix_columns();
    }
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(0);
}

void
AesCbc::encrypt(std::uint8_t *data, std::size_t len) const
{
    Block chain = ivBlock;
    for (std::size_t off = 0; off + 16 <= len; off += 16) {
        for (int i = 0; i < 16; ++i)
            chain[i] ^= data[off + i];
        aes.encryptBlock(chain);
        std::memcpy(data + off, chain.data(), 16);
    }
}

void
AesCbc::decrypt(std::uint8_t *data, std::size_t len) const
{
    Block chain = ivBlock;
    for (std::size_t off = 0; off + 16 <= len; off += 16) {
        Block ct;
        std::memcpy(ct.data(), data + off, 16);
        Block pt = ct;
        aes.decryptBlock(pt);
        for (int i = 0; i < 16; ++i)
            data[off + i] = pt[i] ^ chain[i];
        chain = ct;
    }
}

std::vector<std::uint8_t>
pkcs7Pad(const std::uint8_t *data, std::size_t len)
{
    const std::size_t pad = 16 - (len % 16);
    std::vector<std::uint8_t> out(len + pad);
    if (len > 0)
        std::memcpy(out.data(), data, len);
    for (std::size_t i = 0; i < pad; ++i)
        out[len + i] = static_cast<std::uint8_t>(pad);
    return out;
}

std::size_t
pkcs7Unpad(const std::uint8_t *data, std::size_t len)
{
    if (len == 0 || len % 16 != 0)
        return SIZE_MAX;
    const std::uint8_t pad = data[len - 1];
    if (pad == 0 || pad > 16 || pad > len)
        return SIZE_MAX;
    for (std::size_t i = len - pad; i < len; ++i) {
        if (data[i] != pad)
            return SIZE_MAX;
    }
    return len - pad;
}

void
AesCtr::incrementCounter(Block &ctr)
{
    for (int i = 15; i >= 0; --i) {
        if (++ctr[i] != 0)
            break;
    }
}

void
AesCtr::crypt(std::uint8_t *data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        Block keystream = counter;
        aes.encryptBlock(keystream);
        const std::size_t n = std::min<std::size_t>(16, len - off);
        for (std::size_t i = 0; i < n; ++i)
            data[off + i] ^= keystream[i];
        incrementCounter(counter);
        off += n;
    }
}

AesGcm::AesGcm(const Key128 &key) : aes(key)
{
    hashKey.fill(0);
    aes.encryptBlock(hashKey);
}

Block
AesGcm::gfMult(const Block &x, const Block &y)
{
    // Right-shift GF(2^128) multiplication per SP 800-38D, bit by bit.
    Block z{};
    Block v = y;
    for (int i = 0; i < 128; ++i) {
        const int byte = i / 8;
        const int bit = 7 - (i % 8);
        if ((x[byte] >> bit) & 1) {
            for (int j = 0; j < 16; ++j)
                z[j] ^= v[j];
        }
        const bool lsb = v[15] & 1;
        // v >>= 1 (big-endian bit order).
        for (int j = 15; j > 0; --j)
            v[j] = static_cast<std::uint8_t>((v[j] >> 1) | (v[j - 1] << 7));
        v[0] >>= 1;
        if (lsb)
            v[0] ^= 0xe1;
    }
    return z;
}

Block
AesGcm::ghash(const std::uint8_t *aad, std::size_t aad_len,
              const std::uint8_t *ct, std::size_t ct_len) const
{
    Block y{};
    auto absorb = [&](const std::uint8_t *data, std::size_t len) {
        for (std::size_t off = 0; off < len; off += 16) {
            const std::size_t n = std::min<std::size_t>(16, len - off);
            for (std::size_t i = 0; i < n; ++i)
                y[i] ^= data[off + i];
            y = gfMult(y, hashKey);
        }
    };
    absorb(aad, aad_len);
    absorb(ct, ct_len);
    // Length block: 64-bit bit-lengths of AAD and ciphertext.
    Block lens{};
    const std::uint64_t aad_bits = static_cast<std::uint64_t>(aad_len) * 8;
    const std::uint64_t ct_bits = static_cast<std::uint64_t>(ct_len) * 8;
    for (int i = 0; i < 8; ++i) {
        lens[7 - i] = static_cast<std::uint8_t>(aad_bits >> (8 * i));
        lens[15 - i] = static_cast<std::uint8_t>(ct_bits >> (8 * i));
    }
    for (int i = 0; i < 16; ++i)
        y[i] ^= lens[i];
    return gfMult(y, hashKey);
}

void
AesGcm::encrypt(const std::uint8_t iv[12], const std::uint8_t *aad,
                std::size_t aad_len, std::uint8_t *data, std::size_t len,
                Block &tag_out)
{
    // J0 = IV || 0^31 || 1 for 96-bit IVs.
    Block j0{};
    std::memcpy(j0.data(), iv, 12);
    j0[15] = 1;

    // CTR encryption starting at inc(J0).
    Block counter = j0;
    AesCtr::incrementCounter(counter);
    std::size_t off = 0;
    while (off < len) {
        Block keystream = counter;
        aes.encryptBlock(keystream);
        const std::size_t n = std::min<std::size_t>(16, len - off);
        for (std::size_t i = 0; i < n; ++i)
            data[off + i] ^= keystream[i];
        AesCtr::incrementCounter(counter);
        off += n;
    }

    // Tag = GHASH(AAD, CT) xor AES_K(J0).
    Block s = ghash(aad, aad_len, data, len);
    Block ek_j0 = j0;
    aes.encryptBlock(ek_j0);
    for (int i = 0; i < 16; ++i)
        tag_out[i] = s[i] ^ ek_j0[i];
}

bool
AesGcm::decrypt(const std::uint8_t iv[12], const std::uint8_t *aad,
                std::size_t aad_len, std::uint8_t *data, std::size_t len,
                const Block &tag)
{
    // Authenticate the ciphertext before decrypting.
    Block s = ghash(aad, aad_len, data, len);
    Block j0{};
    std::memcpy(j0.data(), iv, 12);
    j0[15] = 1;
    Block ek_j0 = j0;
    aes.encryptBlock(ek_j0);
    std::uint8_t diff = 0;
    for (int i = 0; i < 16; ++i)
        diff |= static_cast<std::uint8_t>((s[i] ^ ek_j0[i]) ^ tag[i]);

    // Decrypt (CTR starting at inc(J0)).
    Block counter = j0;
    AesCtr::incrementCounter(counter);
    std::size_t off = 0;
    while (off < len) {
        Block keystream = counter;
        aes.encryptBlock(keystream);
        const std::size_t n = std::min<std::size_t>(16, len - off);
        for (std::size_t i = 0; i < n; ++i)
            data[off + i] ^= keystream[i];
        AesCtr::incrementCounter(counter);
        off += n;
    }
    return diff == 0;
}

}  // namespace ccsim::crypto
