/**
 * @file
 * Timing models for Section IV of the paper: per-packet crypto latency
 * and aggregate CPU-core cost for FPGA and software implementations.
 *
 * The paper's published constants:
 *  - Intel Haswell AES-GCM-128: 1.26 cycles/byte for encrypt and for
 *    decrypt, at 2.4 GHz => ~5 cores for 40 Gb/s full duplex.
 *  - AES-CBC-128-SHA1 in software: >= 15 cores for 40 Gb/s full duplex.
 *  - FPGA AES-CBC-128-SHA1 worst-case half-duplex latency: 11 us for a
 *    1500 B packet, first flit to first flit (CBC forces 33-packet
 *    interleaving: one 128 b block per packet every 33 cycles).
 *  - FPGA GCM: perfectly pipelined, far lower latency.
 *  - Software CBC-SHA1 1500 B packet latency: ~4 us (Intel's best case).
 */
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace ccsim::crypto {

/** Crypto suite selector. */
enum class Suite {
    kAesGcm128,
    kAesCbc128Sha1,
};

/** Model of software (CPU) crypto performance, from the paper/Intel. */
struct CpuCryptoModel {
    double clockGhz = 2.4;
    /** Cycles per byte, each direction. */
    double gcmCyclesPerByte = 1.26;
    /**
     * Effective AES-CBC-128-SHA1 cycles/byte per direction. CBC encrypt is
     * serial (~4.4 c/B even with AES-NI) and SHA1 adds ~2.8 c/B; we fold
     * both into 3.6 c/B *average* across encrypt+decrypt so that the
     * paper's ">= 15 cores at 40 Gb/s full duplex" holds.
     */
    double cbcSha1CyclesPerByte = 3.6;
    /**
     * Single-packet CBC-SHA1 *latency* cycles/byte: encryption of one
     * packet is serial block-to-block (no AES-NI pipelining across
     * blocks), so per-packet latency is worse than the throughput
     * figure. 5.9 c/B reproduces the paper's ~4 us for 1500 B.
     */
    double cbcSha1SerialCyclesPerByte = 5.9;
    /** Fixed per-packet software overhead (syscall/driver-free best case). */
    sim::TimePs perPacketOverhead = 350 * sim::kNanosecond;

    /** Cycles per byte for @p suite. */
    double cyclesPerByte(Suite suite) const
    {
        return suite == Suite::kAesGcm128 ? gcmCyclesPerByte
                                          : cbcSha1CyclesPerByte;
    }

    /**
     * CPU cores required to sustain @p gbps full duplex (encrypt+decrypt).
     */
    double coresForLineRate(Suite suite, double gbps) const;

    /** Latency to process one packet of @p bytes in one direction. */
    sim::TimePs packetLatency(Suite suite, std::uint32_t bytes) const;
};

/** Model of the FPGA crypto role's datapath timing. */
struct FpgaCryptoModel {
    /** Crypto core clock (the shell runs the role region at ~175-300 MHz). */
    double clockMhz = 300.0;
    /**
     * CBC dependency interleave factor: the engine cycles through 33
     * packets, consuming one 16 B block of a given packet every 33 cycles.
     */
    int cbcInterleave = 33;
    /** Pipeline fill depth for the (fully pipelined) GCM datapath. */
    int gcmPipelineDepth = 64;
    /** SHA-1 adds a fixed pipeline tail after the last CBC block. */
    int sha1TailCycles = 120;
    /** Fixed datapath overhead: classification, key fetch, header re-emit. */
    sim::TimePs fixedOverhead = 250 * sim::kNanosecond;

    /**
     * First-flit-to-first-flit latency for one packet of @p bytes.
     *
     * For CBC-SHA1 this models the 33-cycle-per-block round-robin: a
     * 1500 B packet (94 blocks) costs 94 * 33 cycles plus the SHA tail.
     */
    sim::TimePs packetLatency(Suite suite, std::uint32_t bytes) const;

    /** Sustained throughput in Gb/s (line rate for both suites). */
    double throughputGbps(Suite suite, double line_rate_gbps) const;
};

}  // namespace ccsim::crypto
