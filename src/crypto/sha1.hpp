/**
 * @file
 * SHA-1 and HMAC-SHA1 (RFC 3174 / RFC 2104).
 *
 * AES-CBC-128-SHA1 is the backward-compatibility cipher suite the paper's
 * crypto role must support; the role authenticates real packet payloads
 * with HMAC-SHA1.
 */
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace ccsim::crypto {

/** A 20-byte SHA-1 digest. */
using Sha1Digest = std::array<std::uint8_t, 20>;

/** Streaming SHA-1. */
class Sha1
{
  public:
    Sha1() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, std::size_t len);

    /** Finalize and return the digest; the object must be reset() to reuse. */
    Sha1Digest finish();

    /** One-shot convenience. */
    static Sha1Digest hash(const std::uint8_t *data, std::size_t len);

    /** One-shot over a string (for tests). */
    static Sha1Digest hash(const std::string &s)
    {
        return hash(reinterpret_cast<const std::uint8_t *>(s.data()),
                    s.size());
    }

  private:
    std::uint32_t h[5];
    std::uint8_t buffer[64];
    std::size_t bufferLen;
    std::uint64_t totalBytes;

    void processBlock(const std::uint8_t block[64]);
};

/** HMAC-SHA1 (RFC 2104). */
Sha1Digest hmacSha1(const std::uint8_t *key, std::size_t key_len,
                    const std::uint8_t *data, std::size_t len);

/** Render a digest as lowercase hex (for tests and tracing). */
std::string toHex(const Sha1Digest &d);

}  // namespace ccsim::crypto
