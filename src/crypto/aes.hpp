/**
 * @file
 * From-scratch AES-128 with CBC, CTR, and GCM modes.
 *
 * The network-acceleration role (Section IV of the paper) encrypts real
 * packet payloads, so this is a real, test-vector-verified implementation,
 * not a stand-in. Performance is adequate for simulation; the paper's
 * hardware/software *timing* claims are modelled separately in
 * crypto_timing.hpp.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ccsim::crypto {

/** A 16-byte AES block. */
using Block = std::array<std::uint8_t, 16>;

/** A 16-byte AES-128 key. */
using Key128 = std::array<std::uint8_t, 16>;

/** AES-128 block cipher (FIPS-197). */
class Aes128
{
  public:
    /** Expand @p key into the round-key schedule. */
    explicit Aes128(const Key128 &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(Block &block) const;

    /** Decrypt one 16-byte block in place. */
    void decryptBlock(Block &block) const;

  private:
    static constexpr int kRounds = 10;
    std::array<std::array<std::uint8_t, 16>, kRounds + 1> roundKeys;
};

/**
 * AES-128-CBC.
 *
 * Operates on whole blocks; callers pad to a 16-byte multiple (the crypto
 * role pads packets with PKCS#7). Note the hardware-relevant property the
 * paper discusses: CBC encryption is serially dependent block to block,
 * which is why the FPGA implementation interleaves 33 packets.
 */
class AesCbc
{
  public:
    AesCbc(const Key128 &key, const Block &iv) : aes(key), ivBlock(iv) {}

    /** Encrypt @p data (length must be a multiple of 16) in place. */
    void encrypt(std::uint8_t *data, std::size_t len) const;

    /** Decrypt @p data (length must be a multiple of 16) in place. */
    void decrypt(std::uint8_t *data, std::size_t len) const;

  private:
    Aes128 aes;
    Block ivBlock;
};

/** PKCS#7 padding helpers used by the crypto role. */
std::vector<std::uint8_t> pkcs7Pad(const std::uint8_t *data, std::size_t len);
/** @return padded-length minus pad, or SIZE_MAX if the padding is invalid. */
std::size_t pkcs7Unpad(const std::uint8_t *data, std::size_t len);

/** AES-128-CTR keystream cipher (used as the GCM core). */
class AesCtr
{
  public:
    AesCtr(const Key128 &key, const Block &initial_counter)
        : aes(key), counter(initial_counter)
    {
    }

    /** XOR the keystream into @p data; advances the counter. */
    void crypt(std::uint8_t *data, std::size_t len);

  private:
    Aes128 aes;
    Block counter;

    static void incrementCounter(Block &ctr);
    friend class AesGcm;
};

/**
 * AES-128-GCM authenticated encryption (NIST SP 800-38D).
 *
 * Unlike CBC, every block is independent, which is why (per the paper) the
 * FPGA can perfectly pipeline GCM.
 */
class AesGcm
{
  public:
    explicit AesGcm(const Key128 &key);

    /**
     * Encrypt and authenticate.
     *
     * @param iv      96-bit IV (12 bytes), the standard fast path.
     * @param aad     Additional authenticated data (may be empty).
     * @param data    Plaintext in, ciphertext out (in place).
     * @param len     Data length in bytes (any length).
     * @param tag_out 16-byte authentication tag.
     */
    void encrypt(const std::uint8_t iv[12], const std::uint8_t *aad,
                 std::size_t aad_len, std::uint8_t *data, std::size_t len,
                 Block &tag_out);

    /**
     * Decrypt and verify.
     *
     * @return true if the tag verified; on false, data contents are the
     *         (untrusted) decryption and must be discarded.
     */
    bool decrypt(const std::uint8_t iv[12], const std::uint8_t *aad,
                 std::size_t aad_len, std::uint8_t *data, std::size_t len,
                 const Block &tag);

  private:
    Aes128 aes;
    Block hashKey;  ///< H = AES_K(0^128)

    Block ghash(const std::uint8_t *aad, std::size_t aad_len,
                const std::uint8_t *ct, std::size_t ct_len) const;
    static Block gfMult(const Block &x, const Block &y);
};

}  // namespace ccsim::crypto
