#include "crypto/sha1.hpp"

#include <cstring>

namespace ccsim::crypto {

namespace {

std::uint32_t
rotl32(std::uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

}  // namespace

void
Sha1::reset()
{
    h[0] = 0x67452301;
    h[1] = 0xEFCDAB89;
    h[2] = 0x98BADCFE;
    h[3] = 0x10325476;
    h[4] = 0xC3D2E1F0;
    bufferLen = 0;
    totalBytes = 0;
}

void
Sha1::processBlock(const std::uint8_t block[64])
{
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
               static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
               static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
               static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDC;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6;
        }
        const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
}

void
Sha1::update(const std::uint8_t *data, std::size_t len)
{
    totalBytes += len;
    while (len > 0) {
        const std::size_t n = std::min<std::size_t>(64 - bufferLen, len);
        std::memcpy(buffer + bufferLen, data, n);
        bufferLen += n;
        data += n;
        len -= n;
        if (bufferLen == 64) {
            processBlock(buffer);
            bufferLen = 0;
        }
    }
}

Sha1Digest
Sha1::finish()
{
    const std::uint64_t bit_len = totalBytes * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0;
    while (bufferLen != 56)
        update(&zero, 1);
    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i)
        len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
    // update() counts these into totalBytes, but we already captured bit_len.
    update(len_bytes, 8);

    Sha1Digest digest;
    for (int i = 0; i < 5; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(h[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(h[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(h[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(h[i]);
    }
    return digest;
}

Sha1Digest
Sha1::hash(const std::uint8_t *data, std::size_t len)
{
    Sha1 s;
    s.update(data, len);
    return s.finish();
}

Sha1Digest
hmacSha1(const std::uint8_t *key, std::size_t key_len,
         const std::uint8_t *data, std::size_t len)
{
    std::uint8_t k[64] = {};
    if (key_len > 64) {
        const Sha1Digest kd = Sha1::hash(key, key_len);
        std::memcpy(k, kd.data(), kd.size());
    } else {
        std::memcpy(k, key, key_len);
    }
    std::uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; ++i) {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }
    Sha1 inner;
    inner.update(ipad, 64);
    inner.update(data, len);
    const Sha1Digest inner_digest = inner.finish();

    Sha1 outer;
    outer.update(opad, 64);
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finish();
}

std::string
toHex(const Sha1Digest &d)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(40);
    for (std::uint8_t byte : d) {
        out.push_back(hex[byte >> 4]);
        out.push_back(hex[byte & 0xF]);
    }
    return out;
}

}  // namespace ccsim::crypto
