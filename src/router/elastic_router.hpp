/**
 * @file
 * The Elastic Router (ER): an on-chip, input-buffered crossbar switch with
 * virtual channels and credit-based flow control (Section V-B).
 *
 * Faithful properties from the paper:
 *  - input-buffered crossbar, multiple VCs virtualizing each physical link;
 *  - credit-based flow control, one credit per flit;
 *  - the *elastic* buffer policy: instead of a static number of flits per
 *    VC, a pool of credits is shared among VCs (with a small per-VC
 *    reservation to avoid starvation), reducing aggregate buffering;
 *  - U-turns supported (any port may route to any port including itself);
 *  - fully parameterizable in ports, VCs, flit size, buffer capacities;
 *  - composable into larger on-chip topologies (ring, mesh) by connecting
 *    router ports with credit-tracked inter-router links.
 */
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "router/flit.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ccsim::router {

/** Buffer management policy (the paper's design choice vs the baseline). */
enum class CreditPolicy {
    kElastic,  ///< small per-VC reservation + shared pool (the ER design)
    kStatic,   ///< fixed flits per VC (conventional router baseline)
};

/** Static configuration of one Elastic Router. */
struct ErConfig {
    std::string name = "er";
    int numPorts = 4;
    int numVcs = 2;
    /** Flit (phit) size in bytes; 32 B = 256 b datapath. */
    std::uint32_t flitBytes = 32;
    /** Router clock; the production shell runs the ER at 175 MHz. */
    double clockMhz = 175.0;
    /** Crossbar pipeline latency in cycles (input deq to output handoff). */
    int pipelineCycles = 2;

    CreditPolicy policy = CreditPolicy::kElastic;
    /** Elastic policy: guaranteed flits per VC. */
    int perVcReservedFlits = 4;
    /** Elastic policy: extra flits shared across VCs of one input port. */
    int sharedPoolFlits = 56;
    /** Static policy: fixed flits per VC. */
    int staticPerVcFlits = 32;
};

/**
 * An Elastic Router instance.
 *
 * Endpoints inject flits through injectFlit() after checking canAccept()
 * (the zero-latency stand-in for the RTL credit wires) and may register a
 * credit-return callback to be woken when space frees up.
 */
class ElasticRouter
{
  public:
    ElasticRouter(sim::EventQueue &eq, ErConfig cfg);

    /**
     * Set the routing function: maps a destination endpoint id to the
     * output port of *this* router. Defaults to identity (endpoint id ==
     * local port), which is correct for a single-router shell.
     */
    void setRouteFn(std::function<int(int dst_endpoint)> fn)
    {
        routeFn = std::move(fn);
    }

    /** Attach the consumer of output port @p port. */
    void setOutputSink(int port, FlitSink *sink);

    /**
     * Limit the rate at which output @p port drains (flits/cycle <= 1 is
     * implicit; this adds extra cycles between flits, modelling a slower
     * endpoint such as the DRAM controller).
     */
    void setOutputCyclesPerFlit(int port, int cycles);

    /** True if input @p port / @p vc has a credit for one more flit. */
    bool canAccept(int port, int vc) const;

    /**
     * Inject a flit into input @p port.
     *
     * @pre canAccept(port, flit.vc). Violations panic: the endpoint did
     *      not respect credit flow control.
     */
    void injectFlit(int port, const Flit &flit);

    /**
     * Register a callback fired whenever a credit frees at @p port
     * (endpoint uses it to resume a stalled injection queue).
     */
    void setCreditReturnFn(int port, std::function<void(int vc)> fn);

    const ErConfig &config() const { return cfg; }

    /**
     * Export statistics under `router.<node>.*`: probes for the aggregate
     * stats plus per-port counters `router.<node>.port<p>.flits_in`,
     * `.flits_out` and `.credit_stalls`. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o, const std::string &node);

    /**
     * Record that an endpoint on @p port had flits queued but no credit
     * (called by ErEndpoint::pump; a no-op unless observability is
     * attached).
     */
    void noteCreditStall(int port);

    // --- statistics ---
    std::uint64_t flitsRouted() const { return statFlitsRouted; }
    std::uint64_t messagesRouted() const { return statTails; }
    /** Cycles during which the router had buffered flits (activity). */
    std::uint64_t busyCycles() const { return statBusyCycles; }
    /** Peak total buffered flits across all inputs (sizing metric). */
    int peakBufferedFlits() const { return statPeakBuffered; }

  private:
    struct InputVc {
        std::deque<Flit> fifo;
        /** Output port locked by the in-flight message, or -1. */
        int lockedOutput = -1;
    };
    struct InputPort {
        std::vector<InputVc> vcs;
        int sharedUsed = 0;  ///< flits drawn from the shared pool
        std::function<void(int)> creditReturn;
    };
    struct OutputPort {
        FlitSink *sink = nullptr;
        int cyclesPerFlit = 1;
        sim::TimePs nextFree = 0;  ///< earliest next flit departure time
        /** Which input owns each VC of this output (wormhole), or -1. */
        std::vector<int> vcOwner;
        int rrPointer = 0;  ///< round-robin arbitration state
    };

    sim::EventQueue &queue;
    ErConfig cfg;
    sim::TimePs cyclePs;
    std::function<int(int)> routeFn;
    std::vector<InputPort> inputs;
    std::vector<OutputPort> outputs;
    bool tickScheduled = false;

    /** Registry-owned per-port counters (null when not attached). */
    std::vector<sim::Counter *> obsFlitsIn;
    std::vector<sim::Counter *> obsFlitsOut;
    std::vector<sim::Counter *> obsCreditStalls;
    obs::FlightRecorder *flowRec = nullptr;
    std::string obsHop;  ///< "router.<node>"

    std::uint64_t statFlitsRouted = 0;
    std::uint64_t statTails = 0;
    std::uint64_t statBusyCycles = 0;
    int statPeakBuffered = 0;
    int totalBuffered = 0;

    void scheduleTick();
    void tick();
    bool anyWork() const;
    void releaseCredit(int port, int vc);
    int routeOf(const Flit &flit) const;
};

/**
 * Helper modelling one endpoint attached to an ER port: segments messages
 * into flits, respects credits (queueing when stalled), reassembles
 * arriving messages, and hands them to a handler.
 */
class ErEndpoint : public FlitSink
{
  public:
    /**
     * @param eq        Event queue.
     * @param router    The ER this endpoint attaches to.
     * @param port      Port index on @p router.
     * @param endpoint_id Global endpoint id used for routing.
     */
    ErEndpoint(sim::EventQueue &eq, ElasticRouter &router, int port,
               int endpoint_id);

    /** Handler invoked when a complete message arrives. */
    void setMessageHandler(std::function<void(const ErMessagePtr &)> h)
    {
        handler = std::move(h);
    }

    /**
     * Send a message (asynchronously segmented and injected under credit
     * flow control). @p trace tags the message with an existing flow
     * context for span recording across the crossbar.
     */
    void sendMessage(int dst_endpoint, int vc, std::uint32_t size_bytes,
                     std::shared_ptr<void> payload = nullptr,
                     obs::TraceContext trace = {});

    /** Send a pre-built message. */
    void sendMessage(const ErMessagePtr &msg);

    void acceptFlit(const Flit &flit) override;

    int endpointId() const { return id; }
    int portIndex() const { return port; }

    std::uint64_t messagesSent() const { return txMessages; }
    std::uint64_t messagesReceived() const { return rxMessages; }
    /** Flits waiting for credits across all VCs. */
    std::size_t backlogFlits() const;

  private:
    sim::EventQueue &queue;
    ElasticRouter &er;
    int port;
    int id;
    std::function<void(const ErMessagePtr &)> handler;

    /** Pending (already segmented) flits awaiting credits, FIFO per VC. */
    std::vector<std::deque<Flit>> pending;
    std::uint64_t txMessages = 0;
    std::uint64_t rxMessages = 0;
    std::uint64_t nextMsgId = 1;

    void pump(int vc);
    void segment(const ErMessagePtr &msg);
};

}  // namespace ccsim::router
