/**
 * @file
 * Flit-level data types for the Elastic Router.
 *
 * Messages between on-FPGA endpoints (PCIe DMA, Roles, DRAM, LTL) are
 * segmented into flits. A head flit carries routing state; the tail flit
 * closes the wormhole and triggers delivery of the reassembled message.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "obs/flow_trace.hpp"

namespace ccsim::router {

/** A message travelling through one or more Elastic Routers. */
struct ErMessage {
    /** Global destination endpoint id (routed via each ER's table). */
    int dstEndpoint = 0;
    /** Global source endpoint id (informational). */
    int srcEndpoint = 0;
    /** Virtual channel the message travels on. */
    int vc = 0;
    /** Message payload size in bytes (determines flit count). */
    std::uint32_t sizeBytes = 0;
    /** Typed payload; receivers know what to expect per VC/endpoint. */
    std::shared_ptr<void> payload;
    /** Unique id for tracing. */
    std::uint64_t id = 0;
    /** Creation time (ps) for latency accounting. */
    std::int64_t createdAt = 0;
    /** Causal flow context carried across the crossbar. */
    obs::TraceContext trace;
};

using ErMessagePtr = std::shared_ptr<ErMessage>;

/** Flit kinds. */
enum class FlitKind : std::uint8_t {
    kHead,
    kBody,
    kTail,
    kHeadTail,  ///< single-flit message
};

/** One flit. */
struct Flit {
    FlitKind kind = FlitKind::kHeadTail;
    int vc = 0;
    /** Final destination endpoint (copied from the message). */
    int dstEndpoint = 0;
    /** Bytes of payload this flit carries. */
    std::uint32_t bytes = 0;
    /** The parent message (delivered to the endpoint at the tail flit). */
    ErMessagePtr msg;

    bool isHead() const
    {
        return kind == FlitKind::kHead || kind == FlitKind::kHeadTail;
    }
    bool isTail() const
    {
        return kind == FlitKind::kTail || kind == FlitKind::kHeadTail;
    }
};

/** Anything that can accept flits from an ER output port. */
class FlitSink
{
  public:
    virtual ~FlitSink() = default;
    virtual void acceptFlit(const Flit &flit) = 0;
};

}  // namespace ccsim::router
