/**
 * @file
 * Composition of multiple Elastic Routers into larger on-chip topologies
 * (Section V-B: "multiple ERs can be composed to form a larger on-chip
 * network topology, e.g., a ring or a 2-D mesh").
 *
 * Inter-router links carry their own credit loop: a link forwards a flit
 * into the downstream router only when that input port has a credit,
 * buffering (bounded by the upstream output's wormhole) otherwise — the
 * same one-credit-per-flit discipline the paper's ER uses.
 */
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "router/elastic_router.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::router {

/**
 * A credit-respecting unidirectional connection from one router's output
 * port into another router's input port.
 */
class ErLink : public FlitSink
{
  public:
    ErLink(sim::EventQueue &eq, ElasticRouter &downstream, int in_port)
        : queue(eq), er(downstream), inPort(in_port)
    {
        er.setCreditReturnFn(inPort, [this](int) { pump(); });
    }

    void acceptFlit(const Flit &flit) override
    {
        pending.push_back(flit);
        pump();
    }

    std::size_t backlog() const { return pending.size(); }

  private:
    sim::EventQueue &queue;
    ElasticRouter &er;
    int inPort;
    std::deque<Flit> pending;
    bool retryArmed = false;

    void pump()
    {
        while (!pending.empty() && er.canAccept(inPort, pending.front().vc))
        {
            er.injectFlit(inPort, pending.front());
            pending.pop_front();
        }
        if (!pending.empty() && !retryArmed) {
            // Poll at the router clock until credits free (stands in
            // for the RTL credit wire edge).
            retryArmed = true;
            queue.scheduleAfter(sim::cyclePeriod(er.config().clockMhz),
                                [this] {
                                    retryArmed = false;
                                    pump();
                                });
        }
    }
};

/**
 * A network of Elastic Routers with endpoint attachment and automatic
 * routing-table construction.
 *
 * Endpoint ids are global and dense: router r exposes endpoint slots
 * [r * endpointsPerRouter, (r+1) * endpointsPerRouter).
 */
class ErNetwork
{
  public:
    /**
     * Build a ring of @p routers routers, each with
     * @p endpoints_per_router local endpoint ports. Flits travel the
     * shorter direction around the ring.
     */
    static std::unique_ptr<ErNetwork> ring(sim::EventQueue &eq,
                                           int routers,
                                           int endpoints_per_router,
                                           ErConfig base = ErConfig{});

    /**
     * Build a @p width x @p height 2-D mesh (no wraparound) with
     * dimension-order (X then Y) routing.
     */
    static std::unique_ptr<ErNetwork> mesh(sim::EventQueue &eq, int width,
                                           int height,
                                           int endpoints_per_router,
                                           ErConfig base = ErConfig{});

    int numRouters() const { return static_cast<int>(routers.size()); }
    int numEndpoints() const
    {
        return numRouters() * endpointsPerRouter;
    }

    /** The endpoint object for a global endpoint id. */
    ErEndpoint &endpoint(int global_id)
    {
        return *endpoints.at(global_id);
    }

    ElasticRouter &router(int index) { return *routers.at(index); }

    /** Total flits currently buffered in inter-router links. */
    std::size_t linkBacklog() const;

  private:
    int endpointsPerRouter = 0;
    std::vector<std::unique_ptr<ElasticRouter>> routers;
    std::vector<std::unique_ptr<ErEndpoint>> endpoints;
    std::vector<std::unique_ptr<ErLink>> links;

    ErNetwork() = default;

    /** Wire a unidirectional link: src router port -> dst router port. */
    void connect(sim::EventQueue &eq, int src_router, int src_port,
                 int dst_router, int dst_port);
    void attachEndpoints(sim::EventQueue &eq, int endpoints_per_router);
};

}  // namespace ccsim::router
