#include "router/elastic_router.hpp"

#include "sim/logging.hpp"

namespace ccsim::router {

ElasticRouter::ElasticRouter(sim::EventQueue &eq, ErConfig config)
    : queue(eq), cfg(std::move(config))
{
    if (cfg.numPorts < 1 || cfg.numVcs < 1 || cfg.flitBytes == 0)
        sim::fatal("ElasticRouter: invalid configuration");
    cyclePs = sim::cyclePeriod(cfg.clockMhz);
    routeFn = [](int dst) { return dst; };
    inputs.resize(cfg.numPorts);
    outputs.resize(cfg.numPorts);
    for (auto &in : inputs)
        in.vcs.resize(cfg.numVcs);
    for (auto &out : outputs)
        out.vcOwner.assign(cfg.numVcs, -1);
}

void
ElasticRouter::setOutputSink(int port, FlitSink *sink)
{
    outputs.at(port).sink = sink;
}

void
ElasticRouter::setOutputCyclesPerFlit(int port, int cycles)
{
    if (cycles < 1)
        sim::fatal("ElasticRouter: cyclesPerFlit must be >= 1");
    outputs.at(port).cyclesPerFlit = cycles;
}

bool
ElasticRouter::canAccept(int port, int vc) const
{
    const InputPort &in = inputs.at(port);
    const int occupancy = static_cast<int>(in.vcs.at(vc).fifo.size());
    if (cfg.policy == CreditPolicy::kStatic)
        return occupancy < cfg.staticPerVcFlits;
    if (occupancy < cfg.perVcReservedFlits)
        return true;
    return in.sharedUsed < cfg.sharedPoolFlits;
}

void
ElasticRouter::injectFlit(int port, const Flit &flit)
{
    if (!canAccept(port, flit.vc))
        sim::panicf(cfg.name, ": injectFlit without credit (port ", port,
                    " vc ", flit.vc, ")");
    InputPort &in = inputs[port];
    InputVc &ivc = in.vcs[flit.vc];
    if (cfg.policy == CreditPolicy::kElastic &&
        static_cast<int>(ivc.fifo.size()) >= cfg.perVcReservedFlits) {
        ++in.sharedUsed;
    }
    ivc.fifo.push_back(flit);
    ++totalBuffered;
    statPeakBuffered = std::max(statPeakBuffered, totalBuffered);
    if (port < static_cast<int>(obsFlitsIn.size()) && obsFlitsIn[port])
        obsFlitsIn[port]->inc();
    scheduleTick();
}

void
ElasticRouter::setCreditReturnFn(int port, std::function<void(int)> fn)
{
    inputs.at(port).creditReturn = std::move(fn);
}

void
ElasticRouter::attachObservability(obs::Observability *o,
                                   const std::string &node)
{
    obsFlitsIn.assign(cfg.numPorts, nullptr);
    obsFlitsOut.assign(cfg.numPorts, nullptr);
    obsCreditStalls.assign(cfg.numPorts, nullptr);
    flowRec = o ? &o->flows : nullptr;
    obsHop = "router." + node;
    if (!o)
        return;
    const std::string prefix = "router." + node;
    auto &reg = o->registry;
    reg.registerProbe(prefix + ".flits_routed",
                      [this] { return double(statFlitsRouted); });
    reg.registerProbe(prefix + ".messages_routed",
                      [this] { return double(statTails); });
    reg.registerProbe(prefix + ".busy_cycles",
                      [this] { return double(statBusyCycles); });
    reg.registerProbe(prefix + ".buffered_flits",
                      [this] { return double(totalBuffered); });
    reg.registerProbe(prefix + ".peak_buffered_flits",
                      [this] { return double(statPeakBuffered); });
    for (int p = 0; p < cfg.numPorts; ++p) {
        const std::string pp = prefix + ".port" + std::to_string(p);
        obsFlitsIn[p] = &reg.counter(pp + ".flits_in");
        obsFlitsOut[p] = &reg.counter(pp + ".flits_out");
        obsCreditStalls[p] = &reg.counter(pp + ".credit_stalls");
    }
}

void
ElasticRouter::noteCreditStall(int port)
{
    if (port < static_cast<int>(obsCreditStalls.size()) &&
        obsCreditStalls[port])
        obsCreditStalls[port]->inc();
}

int
ElasticRouter::routeOf(const Flit &flit) const
{
    const int out = routeFn(flit.dstEndpoint);
    if (out < 0 || out >= cfg.numPorts)
        sim::panicf(cfg.name, ": route function returned bad port ", out,
                    " for endpoint ", flit.dstEndpoint);
    return out;
}

bool
ElasticRouter::anyWork() const
{
    for (const auto &in : inputs) {
        for (const auto &ivc : in.vcs) {
            if (!ivc.fifo.empty())
                return true;
        }
    }
    return false;
}

void
ElasticRouter::scheduleTick()
{
    if (tickScheduled)
        return;
    tickScheduled = true;
    // Align to the next cycle boundary for a clocked-crossbar feel.
    const sim::TimePs now = queue.now();
    const sim::TimePs next = ((now / cyclePs) + 1) * cyclePs;
    queue.schedule(next, [this] {
        tickScheduled = false;
        tick();
    });
}

void
ElasticRouter::releaseCredit(int port, int vc)
{
    InputPort &in = inputs[port];
    InputVc &ivc = in.vcs[vc];
    if (cfg.policy == CreditPolicy::kElastic &&
        static_cast<int>(ivc.fifo.size()) >= cfg.perVcReservedFlits &&
        in.sharedUsed > 0) {
        // The departing flit frees a shared-pool credit (occupancy was
        // above the reservation before this dequeue completed).
        --in.sharedUsed;
    }
    if (in.creditReturn)
        in.creditReturn(vc);
}

void
ElasticRouter::tick()
{
    const sim::TimePs now = queue.now();
    // Per-cycle separable allocation: each output grants at most one
    // input; each input sends at most one flit.
    std::vector<bool> inputUsed(cfg.numPorts, false);

    for (int out_idx = 0; out_idx < cfg.numPorts; ++out_idx) {
        OutputPort &out = outputs[out_idx];
        if (out.sink == nullptr || out.nextFree > now)
            continue;
        // Round-robin over (input, vc) pairs starting at the pointer.
        const int slots = cfg.numPorts * cfg.numVcs;
        for (int k = 0; k < slots; ++k) {
            const int slot = (out.rrPointer + k) % slots;
            const int in_idx = slot / cfg.numVcs;
            const int vc = slot % cfg.numVcs;
            if (inputUsed[in_idx])
                continue;
            InputVc &ivc = inputs[in_idx].vcs[vc];
            if (ivc.fifo.empty())
                continue;
            Flit &head = ivc.fifo.front();
            // Route the head flit; body/tail follow the locked output.
            int target;
            if (head.isHead()) {
                target = routeOf(head);
            } else {
                target = ivc.lockedOutput;
            }
            if (target != out_idx)
                continue;
            // Wormhole VC ownership on the output.
            int &owner = out.vcOwner[vc];
            if (head.isHead()) {
                if (owner != -1 && owner != in_idx)
                    continue;  // VC busy with another message
                owner = in_idx;
                ivc.lockedOutput = out_idx;
            } else if (owner != in_idx) {
                sim::panicf(cfg.name, ": wormhole corruption on output ",
                            out_idx, " vc ", vc);
            }

            // Grant: move the flit.
            Flit flit = std::move(ivc.fifo.front());
            ivc.fifo.pop_front();
            --totalBuffered;
            inputUsed[in_idx] = true;
            out.rrPointer = (slot + 1) % slots;
            out.nextFree = now + out.cyclesPerFlit * cyclePs;
            ++statFlitsRouted;
            if (out_idx < static_cast<int>(obsFlitsOut.size()) &&
                obsFlitsOut[out_idx])
                obsFlitsOut[out_idx]->inc();
            if (flit.isTail()) {
                ++statTails;
                owner = -1;
                ivc.lockedOutput = -1;
                if (flit.msg->trace.sampled && flowRec) {
                    // Whole crossbar traversal: injection through the
                    // pipeline to the output sink handoff.
                    flowRec->recordSpan(flit.msg->trace, obsHop,
                                        obs::Component::kCompute,
                                        flit.msg->createdAt,
                                        now + cfg.pipelineCycles * cyclePs);
                }
            }
            releaseCredit(in_idx, vc);
            FlitSink *sink = out.sink;
            queue.scheduleAfter(cfg.pipelineCycles * cyclePs,
                                [sink, flit] { sink->acceptFlit(flit); });
            break;  // this output granted for this cycle
        }
    }

    if (anyWork()) {
        ++statBusyCycles;
        scheduleTick();
    }
}

ErEndpoint::ErEndpoint(sim::EventQueue &eq, ElasticRouter &router, int p,
                       int endpoint_id)
    : queue(eq), er(router), port(p), id(endpoint_id)
{
    pending.resize(er.config().numVcs);
    er.setCreditReturnFn(port, [this](int vc) { pump(vc); });
}

std::size_t
ErEndpoint::backlogFlits() const
{
    std::size_t n = 0;
    for (const auto &q : pending)
        n += q.size();
    return n;
}

void
ErEndpoint::sendMessage(int dst_endpoint, int vc, std::uint32_t size_bytes,
                        std::shared_ptr<void> payload,
                        obs::TraceContext trace)
{
    auto msg = std::make_shared<ErMessage>();
    msg->dstEndpoint = dst_endpoint;
    msg->srcEndpoint = id;
    msg->vc = vc;
    msg->sizeBytes = size_bytes;
    msg->payload = std::move(payload);
    msg->createdAt = queue.now();
    msg->trace = trace;
    sendMessage(msg);
}

void
ErEndpoint::sendMessage(const ErMessagePtr &msg)
{
    if (msg->vc < 0 || msg->vc >= er.config().numVcs)
        sim::fatal("ErEndpoint: bad VC");
    if (msg->id == 0)
        msg->id = (static_cast<std::uint64_t>(id) << 40) | nextMsgId++;
    ++txMessages;
    segment(msg);
    pump(msg->vc);
}

void
ErEndpoint::segment(const ErMessagePtr &msg)
{
    const std::uint32_t flit_bytes = er.config().flitBytes;
    const std::uint32_t size = msg->sizeBytes == 0 ? 1 : msg->sizeBytes;
    const std::uint32_t nflits = (size + flit_bytes - 1) / flit_bytes;
    for (std::uint32_t i = 0; i < nflits; ++i) {
        Flit flit;
        flit.vc = msg->vc;
        flit.dstEndpoint = msg->dstEndpoint;
        flit.msg = msg;
        flit.bytes = std::min(flit_bytes, size - i * flit_bytes);
        if (nflits == 1) {
            flit.kind = FlitKind::kHeadTail;
        } else if (i == 0) {
            flit.kind = FlitKind::kHead;
        } else if (i == nflits - 1) {
            flit.kind = FlitKind::kTail;
        } else {
            flit.kind = FlitKind::kBody;
        }
        pending[msg->vc].push_back(std::move(flit));
    }
}

void
ErEndpoint::pump(int vc)
{
    auto &q = pending[vc];
    while (!q.empty() && er.canAccept(port, vc)) {
        er.injectFlit(port, q.front());
        q.pop_front();
    }
    if (!q.empty())
        er.noteCreditStall(port);
}

void
ErEndpoint::acceptFlit(const Flit &flit)
{
    if (flit.isTail()) {
        ++rxMessages;
        if (handler)
            handler(flit.msg);
    }
}

}  // namespace ccsim::router
