#include "router/er_network.hpp"

#include "sim/logging.hpp"

namespace ccsim::router {

void
ErNetwork::connect(sim::EventQueue &eq, int src_router, int src_port,
                   int dst_router, int dst_port)
{
    links.push_back(std::make_unique<ErLink>(eq, *routers[dst_router],
                                             dst_port));
    routers[src_router]->setOutputSink(src_port, links.back().get());
}

void
ErNetwork::attachEndpoints(sim::EventQueue &eq, int endpoints_per_router)
{
    endpointsPerRouter = endpoints_per_router;
    for (int r = 0; r < numRouters(); ++r) {
        for (int e = 0; e < endpoints_per_router; ++e) {
            const int id = r * endpoints_per_router + e;
            endpoints.push_back(
                std::make_unique<ErEndpoint>(eq, *routers[r], e, id));
            routers[r]->setOutputSink(e, endpoints.back().get());
        }
    }
}

std::unique_ptr<ErNetwork>
ErNetwork::ring(sim::EventQueue &eq, int n_routers,
                int endpoints_per_router, ErConfig base)
{
    if (n_routers < 2)
        sim::fatal("ErNetwork::ring: need at least 2 routers");
    auto net = std::unique_ptr<ErNetwork>(new ErNetwork());
    const int port_cw = endpoints_per_router;       // to (r+1) % n
    const int port_ccw = endpoints_per_router + 1;  // to (r-1+n) % n
    for (int r = 0; r < n_routers; ++r) {
        ErConfig cfg = base;
        cfg.name = base.name + ".ring" + std::to_string(r);
        cfg.numPorts = endpoints_per_router + 2;
        net->routers.push_back(
            std::make_unique<ElasticRouter>(eq, cfg));
    }
    for (int r = 0; r < n_routers; ++r) {
        const int epr = endpoints_per_router;
        net->routers[r]->setRouteFn(
            [r, n_routers, epr, port_cw, port_ccw](int dst) {
                const int dst_router = dst / epr;
                if (dst_router == r)
                    return dst % epr;
                const int fwd = (dst_router - r + n_routers) % n_routers;
                return fwd <= n_routers - fwd ? port_cw : port_ccw;
            });
        net->connect(eq, r, port_cw, (r + 1) % n_routers, port_ccw);
        net->connect(eq, r, port_ccw, (r - 1 + n_routers) % n_routers,
                     port_cw);
    }
    net->attachEndpoints(eq, endpoints_per_router);
    return net;
}

std::unique_ptr<ErNetwork>
ErNetwork::mesh(sim::EventQueue &eq, int width, int height,
                int endpoints_per_router, ErConfig base)
{
    if (width < 1 || height < 1 || width * height < 2)
        sim::fatal("ErNetwork::mesh: need at least 2 routers");
    auto net = std::unique_ptr<ErNetwork>(new ErNetwork());
    const int epr = endpoints_per_router;
    const int port_px = epr;      // +X
    const int port_nx = epr + 1;  // -X
    const int port_py = epr + 2;  // +Y
    const int port_ny = epr + 3;  // -Y
    auto index = [width](int x, int y) { return y * width + x; };

    for (int r = 0; r < width * height; ++r) {
        ErConfig cfg = base;
        cfg.name = base.name + ".mesh" + std::to_string(r);
        cfg.numPorts = epr + 4;
        net->routers.push_back(
            std::make_unique<ElasticRouter>(eq, cfg));
    }
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int r = index(x, y);
            // Dimension-order routing: correct X first, then Y (the
            // standard deadlock-free discipline for meshes).
            net->routers[r]->setRouteFn([x, y, width, epr, port_px,
                                         port_nx, port_py,
                                         port_ny](int dst) {
                const int dst_router = dst / epr;
                const int dx = dst_router % width;
                const int dy = dst_router / width;
                if (dx == x && dy == y)
                    return dst % epr;
                if (dx != x)
                    return dx > x ? port_px : port_nx;
                return dy > y ? port_py : port_ny;
            });
            if (x + 1 < width) {
                net->connect(eq, r, port_px, index(x + 1, y), port_nx);
                net->connect(eq, index(x + 1, y), port_nx, r, port_px);
            }
            if (y + 1 < height) {
                net->connect(eq, r, port_py, index(x, y + 1), port_ny);
                net->connect(eq, index(x, y + 1), port_ny, r, port_py);
            }
        }
    }
    net->attachEndpoints(eq, endpoints_per_router);
    return net;
}

std::size_t
ErNetwork::linkBacklog() const
{
    std::size_t total = 0;
    for (const auto &link : links)
        total += link->backlog();
    return total;
}

}  // namespace ccsim::router
