/**
 * @file
 * The Hardware-as-a-Service (HaaS) platform (Section V-F, Figure 13).
 *
 * A logically centralized Resource Manager (RM) tracks FPGA resources
 * throughout the datacenter and hands them to Service Managers (SM)
 * through a lease-based model. Each Component is an instance of a
 * hardware service made of one or more FPGAs plus constraints (locality
 * etc.). SMs handle service-level tasks — load balancing, connectivity,
 * failure handling — by requesting and releasing leases. An FPGA Manager
 * (FM) runs per node for configuration and status monitoring.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fpga/role.hpp"
#include "fpga/shell.hpp"
#include "obs/metrics.hpp"
#include "serving/balancer.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::haas {

/** Per-node FPGA Manager: configuration and status monitoring. */
class FpgaManager
{
  public:
    /** Health/configuration snapshot reported to RM/SM. */
    struct Status {
        bool healthy = true;
        bool hasRole = false;
        std::string roleName;
    };

    FpgaManager(sim::EventQueue &eq, fpga::Shell *shell, int host_index)
        : queue(eq), shellPtr(shell), hostIndex(host_index)
    {
    }

    /**
     * Configure @p role into the node's shell (partial reconfiguration;
     * the role becomes reachable after the reconfiguration delay).
     *
     * @return The role's ER port, or -1 on failure.
     */
    int configureRole(fpga::Role *role);

    /**
     * Wipe the role region (full reconfiguration back to the golden
     * image). The RM calls this when a board is repaired or its lease
     * is released, so a reused board always starts blank.
     */
    void clearRole();

    /** Report status. */
    Status status() const;

    /** Mark this node unhealthy (monitoring detected a failure). */
    void markUnhealthy() { healthy = false; }
    /** Repair (e.g. after a power cycle reloads the golden image). */
    void markHealthy() { healthy = true; }

    fpga::Shell *shell() { return shellPtr; }
    int host() const { return hostIndex; }

  private:
    sim::EventQueue &queue;
    fpga::Shell *shellPtr;
    int hostIndex;
    bool healthy = true;
    std::string configuredRole;
    int configuredPort = -1;
};

/** Placement constraints for a component lease. */
struct LeaseConstraints {
    /** Require all FPGAs of the component in this pod (-1 = anywhere). */
    int requirePod = -1;
    /**
     * Failure-domain anti-affinity: cap how many FPGAs of the *service*
     * (across all its leases) may share one rack / one pod
     * (-1 = unlimited). A service spread with maxPerRack=k keeps any
     * single TOR death from taking more than k instances, so domain
     * conviction plus failover never amputates the whole service.
     */
    int maxPerRack = -1;
    int maxPerPod = -1;

    // --- fluent setters ---

    LeaseConstraints &withPod(int pod)
    {
        requirePod = pod;
        return *this;
    }
    LeaseConstraints &withAntiAffinity(int max_per_rack, int max_per_pod = -1)
    {
        maxPerRack = max_per_rack;
        maxPerPod = max_per_pod;
        return *this;
    }
};

/** A granted component lease. */
struct Lease {
    std::uint64_t id = 0;
    std::string service;
    std::vector<int> hosts;
};

/** The logically centralized Resource Manager. */
class ResourceManager
{
  public:
    /** Callback type for lease-affecting failures: (host, leaseId). */
    using FailureFn = std::function<void(int host, std::uint64_t lease)>;
    /** Callback type for repairs (a node rejoined the free pool). */
    using RepairFn = std::function<void(int host)>;

    explicit ResourceManager(sim::EventQueue &eq) : queue(eq) {}

    /**
     * Register a node's FPGA into the datacenter-wide pool. @p rack is
     * the node's global failure-domain id (the rack behind one TOR);
     * anti-affinity constraints count against it.
     */
    void registerNode(int host_index, FpgaManager *fm, int pod = 0,
                      int rack = 0);

    /**
     * Acquire a component of @p count FPGAs for @p service.
     *
     * @return The lease, or nullopt if the pool cannot satisfy it.
     */
    std::optional<Lease> acquire(const std::string &service, int count,
                                 LeaseConstraints constraints = {});

    /** Release a lease, returning its healthy FPGAs to the pool. */
    void release(std::uint64_t lease_id);

    /**
     * Report a node failure: removes it from the pool; if leased, the
     * owning SM is notified through the failure subscription.
     *
     * Idempotent: the failure detectors (LTL timeouts, FM health checks,
     * the fault injector) can all report the same dead node, but only the
     * first report changes state or fires the callback.
     */
    void reportFailure(int host_index);

    /**
     * Report one correlated failure taking out every node of a failure
     * domain at once (a rack behind a dead TOR). Two-phase: the whole
     * domain is removed from the pool first, and only then are the
     * failure subscriptions notified (in @p host_indices order) — so a
     * Service Manager's immediate failover can never be granted a
     * sibling of the same convicted domain that merely had not been
     * marked yet. Per-host idempotence matches reportFailure().
     */
    void reportDomainFailure(const std::vector<int> &host_indices);

    /**
     * Return a repaired node to the pool and notify the repair
     * subscription. Only failed nodes are repairable; repairing a healthy
     * or leased node is a no-op.
     */
    void repair(int host_index);

    /**
     * Subscribe to failures of leased nodes. Multiple subscribers are
     * supported (e.g. one Service Manager per service plus a health
     * monitor); callbacks fire in subscription order, and a node's
     * subscribers are notified in host-index order when several nodes
     * fail at one instant, so same-seed runs stay byte-identical.
     */
    void subscribeFailures(FailureFn fn)
    {
        onFailure.push_back(std::move(fn));
    }

    /** Subscribe to repairs (nodes rejoining the pool); same ordering
     * guarantees as subscribeFailures(). */
    void subscribeRepairs(RepairFn fn)
    {
        onRepair.push_back(std::move(fn));
    }

    /**
     * The node's FPGA Manager. In a flyweight cloud a node can be
     * registered before its server objects exist (fm == nullptr); the
     * first manager() lookup then invokes the materialization resolver
     * (setManagerResolver) so a lease touch — an SM deploying a role,
     * a failure handler reconfiguring — deterministically materializes
     * the server instead of failing.
     */
    FpgaManager *manager(int host_index);

    /**
     * Install the lazy-materialization hook: called from manager() for
     * nodes registered without an FpgaManager; must create the node's
     * server state and return its manager (cached via setNodeManager).
     */
    void setManagerResolver(std::function<FpgaManager *(int host)> fn)
    {
        resolver = std::move(fn);
    }

    /**
     * Late-bind a stub node's manager (lazy materialization). A node
     * that failed while still a stub gets its manager born unhealthy,
     * matching the state an eager build would have reached.
     */
    void setNodeManager(int host_index, FpgaManager *fm);

    /** All registered host indices, ascending. */
    std::vector<int> hostIndices() const;

    int freeCount() const;
    int allocatedCount() const;
    int failedCount() const;
    int totalCount() const { return static_cast<int>(nodes.size()); }

    /** A registered node's failure-domain (rack) id; -1 if unknown. */
    int nodeRack(int host_index) const;
    /** FPGAs of @p service currently allocated in @p rack. */
    int serviceRackCount(const std::string &service, int rack) const;
    /** FPGAs of @p service currently allocated in @p pod. */
    int servicePodCount(const std::string &service, int pod) const;

    /** Cumulative distinct failures reported. */
    std::uint64_t failuresReported() const { return statFailures; }
    /** Cumulative repairs applied. */
    std::uint64_t repairsApplied() const { return statRepairs; }
    /** Free candidates passed over to honor anti-affinity caps. */
    std::uint64_t affinitySkips() const { return statAffinitySkips; }

    /**
     * Export pool statistics under `haas.*`: probes for the free /
     * allocated / failed node counts plus cumulative failure and repair
     * counters. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o);

  private:
    enum class NodeState { kUnallocated, kAllocated, kFailed };
    struct Node {
        FpgaManager *fm = nullptr;
        int pod = 0;
        int rack = 0;  ///< global failure-domain id
        NodeState state = NodeState::kUnallocated;
        std::uint64_t leaseId = 0;
    };

    sim::EventQueue &queue;
    std::map<int, Node> nodes;
    std::map<std::uint64_t, Lease> leases;
    std::uint64_t nextLeaseId = 1;
    std::vector<FailureFn> onFailure;
    std::vector<RepairFn> onRepair;
    std::function<FpgaManager *(int host)> resolver;
    /** service -> rack/pod -> FPGAs allocated (anti-affinity ledger). */
    std::map<std::string, std::map<int, int>> svcRackCount;
    std::map<std::string, std::map<int, int>> svcPodCount;
    std::uint64_t statFailures = 0;
    std::uint64_t statRepairs = 0;
    std::uint64_t statAffinitySkips = 0;

    /** Drop one @p service placement credit from @p node 's domains. */
    void dropPlacement(const std::string &service, const Node &node);
};

/**
 * A Service Manager: deploys a hardware service onto leased FPGAs,
 * load-balances requests across instances, and replaces failed instances
 * from the pool.
 */
class ServiceManager
{
  public:
    /** Builds the role instance configured onto a leased node. */
    using RoleFactory = std::function<fpga::Role *(int host)>;

    ServiceManager(sim::EventQueue &eq, ResourceManager &rm,
                   std::string service_name, RoleFactory factory);

    /**
     * Acquire @p instances FPGAs and configure the service role on each.
     *
     * @return true if fully deployed.
     */
    bool deploy(int instances, LeaseConstraints constraints = {});

    /** Release all instances. */
    void teardown();

    /**
     * Grow or shrink the pool to @p instances ("as demand for a service
     * grows or shrinks, a global manager grows or shrinks the pools
     * correspondingly"). Shrinking releases the most recently acquired
     * instances back to the datacenter pool.
     *
     * @return true if the target size was reached.
     */
    bool scaleTo(int instances, LeaseConstraints constraints = {});

    /**
     * Round-robin load balancing over healthy instances (-1 if none).
     *
     * Legacy path: new code should route through serving::ClusterClient,
     * which layers outlier ejection and pluggable policies on top of the
     * same balancer. This shim delegates to a serving::RoundRobinBalancer
     * and keeps the historical pick sequence bit-for-bit.
     */
    int pickInstance();

    /** Currently serving hosts. */
    const std::vector<int> &instances() const { return hosts; }

    /**
     * Failure handling: called by the RM failure subscription. Requests a
     * replacement lease (honoring @p constraints) and reconfigures the
     * role on the new node.
     *
     * @return true if a replacement was found.
     */
    bool handleFailure(int host, LeaseConstraints constraints = {});

    /**
     * Self-healing: subscribe this SM to the Resource Manager so it
     * (a) fails over automatically when one of its instances is reported
     * failed and (b) re-acquires leases back up to @p target instances
     * when repaired nodes rejoin the pool — @p constraints (requirePod
     * etc.) are honored on every replacement and re-acquisition.
     * Idempotent; a second call just updates the target/constraints.
     */
    void enableAutoHeal(int target, LeaseConstraints constraints = {});

    /**
     * Rate-limit failover re-acquisitions: at most one replacement lease
     * per @p min_gap of simulated time; excess failovers queue and drain
     * in arrival order. This is the mass-migration throttle — a whole
     * rack dying at one instant becomes a paced evacuation instead of a
     * thundering herd of acquire + reconfigure on the same tick.
     *
     * With @p self_pump (legacy kernel) the SM schedules its own drain
     * events. On a sharded cloud pass false and drive pumpMigrations()
     * from a barrier hook (fault::ChaosEngine::manageService does this).
     * min_gap 0 disables the throttle.
     */
    void setMigrationPolicy(sim::TimePs min_gap, bool self_pump = true);

    /**
     * Drain due queued migrations (one per min_gap elapsed).
     *
     * @return When the next queued migration is due, or kTimeNever if
     *         the queue is empty.
     */
    sim::TimePs pumpMigrations();

    /** Failovers waiting behind the migration throttle right now. */
    int migrationQueueDepth() const
    {
        return static_cast<int>(migrationQueue.size());
    }
    /** Cumulative failovers that had to queue behind the throttle. */
    std::uint64_t migrationsQueued() const { return statMigrationsQueued; }
    /** Smallest gap observed between replacement acquisitions
     * (kTimeNever until a second replacement happens). */
    sim::TimePs minMigrationGapObserved() const { return minGapObserved; }

    std::uint64_t failovers() const { return statFailovers; }
    /** Instances re-acquired by auto-heal after repairs. */
    std::uint64_t autoHeals() const { return statAutoHeals; }
    const std::string &name() const { return serviceName; }

    /**
     * Export service statistics under `haas.sm.<name>.*`: probes for the
     * instance count and cumulative failovers. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o);

  private:
    sim::EventQueue &queue;
    ResourceManager &rm;
    std::string serviceName;
    RoleFactory roleFactory;
    std::vector<int> hosts;
    std::vector<std::uint64_t> hostLease;  // parallel to hosts
    /** Legacy pickInstance() shim; serving::ClusterClient supersedes it. */
    serving::RoundRobinBalancer rrBalancer;
    std::uint64_t statFailovers = 0;
    std::uint64_t statAutoHeals = 0;
    bool healSubscribed = false;
    int healTarget = 0;
    LeaseConstraints healConstraints;
    /** Migration throttle (setMigrationPolicy); 0 = unthrottled. */
    sim::TimePs migrationMinGap = 0;
    bool migrationSelfPump = true;
    bool pumpScheduled = false;
    sim::TimePs nextMigrationAllowed = 0;
    sim::TimePs lastMigrationAt = -1;
    sim::TimePs minGapObserved = sim::kTimeNever;
    std::deque<LeaseConstraints> migrationQueue;
    std::uint64_t statMigrationsQueued = 0;

    /** The acquire + configure half of a failover. */
    bool acquireReplacement(const LeaseConstraints &constraints);
    void schedulePump();
};

}  // namespace ccsim::haas
