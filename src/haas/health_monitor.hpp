/**
 * @file
 * Autonomous failure detection for the HaaS layer (Section V-F).
 *
 * The paper's FPGA Managers monitor node health and the Service Managers
 * react to failures; ccsim's fault injector could always *create*
 * failures, but until now something external had to notice them. The
 * HealthMonitor closes that loop with two independent evidence streams:
 *
 *  - **Active heartbeats**: a periodic management-path ping of every
 *    registered node (modeled as a fixed round-trip through the FM side
 *    channel). A node that cannot be reached — bridge dark or host link
 *    administratively down — misses the beat.
 *  - **Passive LTL suspicion**: the transport layer's retransmission
 *    timeout doubles as fast failure detection (Section V-A). Consecutive
 *    timeout streaks observed by any LTL engine toward a node feed the
 *    same per-node suspicion score, so a dead peer is usually suspected
 *    well before the next heartbeat sweep.
 *
 * Evidence accumulates into a per-node suspicion score (a discretized
 * phi-accrual detector); crossing the threshold reports the node to the
 * ResourceManager — Service Managers fail over through their RM
 * subscriptions. Consecutive healthy heartbeats after the node becomes
 * reachable again drive the repair path. All scheduling is host-index
 * ordered, so same-seed runs are byte-identical.
 *
 * **Domain conviction** (correlated failures): when every watched host
 * in one failure domain (a rack behind one TOR) misses entire sweeps
 * together, the monitor files one rack-level conviction — marking all
 * members failed and reporting each to the RM — instead of accumulating
 * N independent per-host detections. One dead TOR is one event, not 24.
 *
 * On a sharded cloud, use startSharded(): sweeps and evaluations run as
 * barrier-hook steps at exact simulated times (send at the sweep
 * barrier, judge each host at the pong barrier one RTT later, in host
 * order), reproducing the legacy pong-time semantics deterministically
 * on any worker count. Passive LTL streak evidence is legacy-only.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "haas/haas.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::sim {
class ShardedEventQueue;
}

namespace ccsim::haas {

/** HealthMonitor tuning. */
struct HealthMonitorConfig {
    /** Heartbeat sweep period (all nodes pinged each sweep). */
    sim::TimePs heartbeatPeriod = 100 * sim::kMicrosecond;
    /** Modeled management-path ping round-trip time. */
    sim::TimePs heartbeatRtt = 10 * sim::kMicrosecond;
    /** Suspicion added per missed heartbeat. */
    double missWeight = 1.0;
    /** Suspicion added per qualifying LTL timeout-streak report. */
    double streakWeight = 1.0;
    /** Minimum consecutive LTL timeouts before a streak adds suspicion. */
    int minLtlStreak = 3;
    /** Suspicion at which the node is declared failed. */
    double suspicionThreshold = 3.0;
    /** Consecutive healthy heartbeats before a failed node is repaired. */
    int rejoinHeartbeats = 2;
    /** Report detected failures to the RM (else observe-only). */
    bool autoReport = true;
    /** Repair rejoined nodes on the RM (else observe-only). */
    bool autoRepair = true;
    /**
     * Convict whole failure domains: when >= domainMinHosts watched
     * hosts sharing a domain all miss domainSweeps consecutive full
     * sweeps, file one domain-level conviction (every member marked
     * failed and reported to the RM) instead of N per-host detections.
     * Convicts before the per-host path whenever
     * domainSweeps * missWeight < suspicionThreshold. Requires
     * setDomainOf() (ConfigurableCloud::attachHealthMonitor wires the
     * rack mapping).
     */
    bool domainConviction = false;
    /** Consecutive all-miss sweeps before a domain is convicted. */
    int domainSweeps = 2;
    /** Minimum watched hosts in a domain for conviction to apply. */
    int domainMinHosts = 2;

    // --- fluent setters ---

    HealthMonitorConfig &withHeartbeat(sim::TimePs period, sim::TimePs rtt)
    {
        heartbeatPeriod = period;
        heartbeatRtt = rtt;
        return *this;
    }
    HealthMonitorConfig &withSuspicion(double threshold, double miss_weight,
                                       double streak_weight)
    {
        suspicionThreshold = threshold;
        missWeight = miss_weight;
        streakWeight = streak_weight;
        return *this;
    }
    HealthMonitorConfig &withMinLtlStreak(int streak)
    {
        minLtlStreak = streak;
        return *this;
    }
    HealthMonitorConfig &withRejoinHeartbeats(int beats)
    {
        rejoinHeartbeats = beats;
        return *this;
    }
    HealthMonitorConfig &withAutoReport(bool report, bool repair)
    {
        autoReport = report;
        autoRepair = repair;
        return *this;
    }
    HealthMonitorConfig &withDomainConviction(int sweeps, int min_hosts)
    {
        domainConviction = true;
        domainSweeps = sweeps;
        domainMinHosts = min_hosts;
        return *this;
    }
};

/**
 * Periodic heartbeat prober + passive-suspicion accumulator driving
 * ResourceManager::reportFailure / repair automatically.
 *
 * The monitor does not know how to reach a node — the owner supplies a
 * reachability probe (ConfigurableCloud::attachHealthMonitor wires the
 * management-path view: bridge up and host link not admin-down). The
 * monitor must outlive start()..stop() and any engine feeding
 * reportTimeoutStreak().
 */
class HealthMonitor
{
  public:
    /** Management-path reachability probe: can the FM reach this node? */
    using ProbeFn = std::function<bool(int host)>;

    HealthMonitor(sim::EventQueue &eq, ResourceManager &rm,
                  HealthMonitorConfig cfg = {});
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /** Install the reachability probe (required before start()). */
    void setProbe(ProbeFn fn) { probe = std::move(fn); }

    /**
     * Begin heartbeat sweeps over every node currently registered with
     * the ResourceManager (or the watchHosts() set, if one was given).
     * Nodes are pinged in host-index order each sweep; the first sweep
     * runs one period after start().
     */
    void start();

    /**
     * Begin barrier-driven sweeps on the parallel kernel: heartbeats go
     * out at a sweep barrier, every host is judged (probe + evaluate,
     * ascending order) at the barrier one RTT later, exactly as the
     * legacy pong-time path would. At paper scale, set a watchHosts()
     * set first — probing all 250k hosts would materialize the fleet.
     */
    void startSharded(sim::ShardedEventQueue &sq);

    /** Cancel the sweep (passive suspicion reports still accumulate). */
    void stop();

    /**
     * Restrict monitoring to @p hosts (ascending duplicates ignored).
     * Call before start()/startSharded(); empty = all registered nodes.
     */
    void watchHosts(const std::vector<int> &hosts);

    /**
     * Map host -> failure-domain id (the rack behind one TOR). Enables
     * domain conviction when cfg.domainConviction is set.
     */
    void setDomainOf(std::function<int(int)> fn)
    {
        domainOf = std::move(fn);
    }

    /**
     * Passive evidence feed: an LTL engine observed @p streak consecutive
     * retransmission timeouts toward @p host. Streaks below
     * minLtlStreak are ignored; qualifying streaks add streakWeight
     * suspicion per timeout beyond the floor's first hit.
     */
    void reportTimeoutStreak(int host, int streak);

    /**
     * Named-source evidence feed (e.g. a serving-layer outlier detector
     * reporting an ejection). Idempotent per (host, source): a source's
     * weight counts once per unhealthy episode, however many times it
     * re-reports, so a detector that keeps re-ejecting a grey node
     * cannot pump the suspicion score by itself. The latch clears when
     * the node answers a heartbeat (proving the management path healthy
     * again), re-arming the source for the next episode. Unregistered
     * hosts are ignored.
     */
    void reportEvidence(int host, const std::string &source, double weight);

    /**
     * reportEvidence bound as a generic (host, source, weight) callback:
     * the shape obs::SloEngine::setEvidenceSink expects, so a burning
     * SLO files suspicion without the obs layer depending on haas. The
     * returned function must not outlive this monitor.
     */
    std::function<void(int, const std::string &, double)> evidenceSink()
    {
        return [this](int host, const std::string &source, double weight) {
            reportEvidence(host, source, weight);
        };
    }

    /**
     * Worst-case time from a node going dark to its failure report,
     * assuming heartbeats alone (passive suspicion only shortens it):
     * the beats needed to accumulate the threshold, plus one period of
     * phase offset, plus the ping round trip.
     */
    sim::TimePs detectionBound() const;

    /**
     * Worst-case time from a whole domain going dark to its conviction:
     * domainSweeps full-miss sweeps, plus one period of phase offset,
     * plus the ping round trip.
     */
    sim::TimePs domainDetectionBound() const;

    // --- introspection ---

    double suspicion(int host) const;
    bool suspected(int host) const;
    std::uint64_t detections() const { return statDetections; }
    /** Domain-level convictions filed (one per dark rack, not per host). */
    std::uint64_t domainConvictions() const { return statDomainConvictions; }
    std::uint64_t rejoins() const { return statRejoins; }
    std::uint64_t heartbeatsSent() const { return statHeartbeats; }
    std::uint64_t heartbeatsMissed() const { return statMisses; }
    std::uint64_t streakReports() const { return statStreakReports; }
    /** reportEvidence calls that credited suspicion (latch misses). */
    std::uint64_t evidenceReports() const { return statEvidenceReports; }
    const HealthMonitorConfig &config() const { return cfg; }

    /**
     * Export detector statistics under `haas.health.*`: sweep/miss/
     * detection/rejoin counters plus a per-node suspicion gauge. Pass
     * nullptr to detach.
     */
    void attachObservability(obs::Observability *o);

  private:
    struct NodeHealth {
        double suspicion = 0.0;
        /** Consecutive reachable heartbeats while marked failed. */
        int healthyStreak = 0;
        /** This monitor has reported the node failed and not yet seen
         * it rejoin. */
        bool reported = false;
        /** Last LTL streak length credited (avoid double counting). */
        int lastStreakCredited = 0;
        /** Sources whose evidence already counted this episode. */
        std::set<std::string> evidenceLatched;
    };

    /** Per-domain conviction state (keyed by domainOf id). */
    struct DomainState {
        /** Consecutive sweeps every watched member missed. */
        int fullMissSweeps = 0;
        bool convicted = false;
    };

    sim::EventQueue &queue;
    ResourceManager &rm;
    HealthMonitorConfig cfg;
    ProbeFn probe;
    std::function<int(int)> domainOf;
    std::map<int, NodeHealth> nodesHealth;
    std::vector<int> watched;
    std::map<int, int> domainMembers;       ///< domain -> watched hosts
    std::map<int, DomainState> domainsHealth;
    std::map<int, int> sweepDomainMisses;   ///< this sweep's misses
    /** Heartbeat results still outstanding this sweep. */
    std::size_t pendingResults = 0;
    sim::EventId sweepEvent = sim::kNoEvent;
    bool running = false;
    sim::ShardedEventQueue *shardQueue = nullptr;
    sim::TimePs nextSweepAt = 0;
    sim::TimePs nextEvalAt = 0;

    obs::Observability *obsHub = nullptr;

    std::uint64_t statHeartbeats = 0;
    std::uint64_t statMisses = 0;
    std::uint64_t statDetections = 0;
    std::uint64_t statDomainConvictions = 0;
    std::uint64_t statRejoins = 0;
    std::uint64_t statStreakReports = 0;
    std::uint64_t statEvidenceReports = 0;

    void populateNodes();
    void sweep();
    void onHeartbeatResult(int host, bool reachable);
    void addSuspicion(int host, double weight);
    /** End-of-sweep domain bookkeeping (conviction / re-arm). */
    void finishSweep();
    void convictDomain(int domain);
    /** Sharded sweep state machine, run at every barrier. */
    sim::TimePs barrierStep(sim::TimePs e);
    /** Judge every watched host at pong time (sharded). */
    void evaluateSweep();
};

}  // namespace ccsim::haas
