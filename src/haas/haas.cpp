#include "haas/haas.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace ccsim::haas {

int
FpgaManager::configureRole(fpga::Role *role)
{
    if (!healthy || shellPtr == nullptr)
        return -1;
    const int port = shellPtr->addRole(role);
    if (port >= 0) {
        configuredRole = role->name();
        configuredPort = port;
    }
    return port;
}

void
FpgaManager::clearRole()
{
    if (shellPtr != nullptr && configuredPort >= 0)
        shellPtr->removeRole(configuredPort);
    configuredRole.clear();
    configuredPort = -1;
}

FpgaManager::Status
FpgaManager::status() const
{
    Status s;
    s.healthy = healthy;
    s.hasRole = !configuredRole.empty();
    s.roleName = configuredRole;
    return s;
}

void
ResourceManager::registerNode(int host_index, FpgaManager *fm, int pod,
                              int rack)
{
    Node node;
    node.fm = fm;
    node.pod = pod;
    node.rack = rack;
    nodes[host_index] = node;
}

std::optional<Lease>
ResourceManager::acquire(const std::string &service, int count,
                         LeaseConstraints constraints)
{
    // First fit ascending, skipping hosts whose rack/pod already holds
    // the service's anti-affinity cap (counting both existing leases and
    // picks made earlier in this very scan).
    std::vector<int> picked;
    std::map<int, int> pickedPerRack;
    std::map<int, int> pickedPerPod;
    const auto rackLedger = svcRackCount.find(service);
    const auto podLedger = svcPodCount.find(service);
    auto ledgerCount = [](const auto &ledger_it, const auto &ledger_end,
                          int domain) {
        if (ledger_it == ledger_end)
            return 0;
        const auto it = ledger_it->second.find(domain);
        return it == ledger_it->second.end() ? 0 : it->second;
    };
    for (auto &[host, node] : nodes) {
        if (node.state != NodeState::kUnallocated)
            continue;
        if (constraints.requirePod >= 0 && node.pod != constraints.requirePod)
            continue;
        if (constraints.maxPerRack >= 0 &&
            ledgerCount(rackLedger, svcRackCount.end(), node.rack) +
                    pickedPerRack[node.rack] >=
                constraints.maxPerRack) {
            ++statAffinitySkips;
            continue;
        }
        if (constraints.maxPerPod >= 0 &&
            ledgerCount(podLedger, svcPodCount.end(), node.pod) +
                    pickedPerPod[node.pod] >=
                constraints.maxPerPod) {
            ++statAffinitySkips;
            continue;
        }
        picked.push_back(host);
        ++pickedPerRack[node.rack];
        ++pickedPerPod[node.pod];
        if (static_cast<int>(picked.size()) == count)
            break;
    }
    if (static_cast<int>(picked.size()) < count)
        return std::nullopt;

    Lease lease;
    lease.id = nextLeaseId++;
    lease.service = service;
    lease.hosts = picked;
    for (int host : picked) {
        nodes[host].state = NodeState::kAllocated;
        nodes[host].leaseId = lease.id;
        ++svcRackCount[service][nodes[host].rack];
        ++svcPodCount[service][nodes[host].pod];
    }
    leases[lease.id] = lease;
    return lease;
}

void
ResourceManager::dropPlacement(const std::string &service, const Node &node)
{
    auto drop = [&](std::map<std::string, std::map<int, int>> &ledger,
                    int domain) {
        auto sit = ledger.find(service);
        if (sit == ledger.end())
            return;
        auto dit = sit->second.find(domain);
        if (dit == sit->second.end())
            return;
        if (--dit->second <= 0)
            sit->second.erase(dit);
        if (sit->second.empty())
            ledger.erase(sit);
    };
    drop(svcRackCount, node.rack);
    drop(svcPodCount, node.pod);
}

void
ResourceManager::release(std::uint64_t lease_id)
{
    auto it = leases.find(lease_id);
    if (it == leases.end())
        return;
    for (int host : it->second.hosts) {
        auto nit = nodes.find(host);
        if (nit == nodes.end())
            continue;
        if (nit->second.state == NodeState::kAllocated &&
            nit->second.leaseId == lease_id) {
            nit->second.state = NodeState::kUnallocated;
            nit->second.leaseId = 0;
            dropPlacement(it->second.service, nit->second);
            // Reclaimed boards are handed back blank.
            if (nit->second.fm)
                nit->second.fm->clearRole();
        }
    }
    leases.erase(it);
}

void
ResourceManager::reportFailure(int host_index)
{
    auto it = nodes.find(host_index);
    if (it == nodes.end())
        return;
    if (it->second.state == NodeState::kFailed)
        return;  // idempotent: duplicate detections of one dead node
    ++statFailures;
    const bool was_leased = it->second.state == NodeState::kAllocated;
    const std::uint64_t lease_id = it->second.leaseId;
    it->second.state = NodeState::kFailed;
    if (it->second.fm)
        it->second.fm->markUnhealthy();
    if (was_leased) {
        // Remove the node from the lease; the SM handles replacement.
        auto lit = leases.find(lease_id);
        if (lit != leases.end()) {
            std::erase(lit->second.hosts, host_index);
            // The dead board no longer counts against its service's
            // anti-affinity caps (the lease release path skips it).
            dropPlacement(lit->second.service, it->second);
        }
        it->second.leaseId = 0;
        // Index loop: a callback may subscribe further callbacks.
        for (std::size_t i = 0; i < onFailure.size(); ++i)
            onFailure[i](host_index, lease_id);
    }
}

void
ResourceManager::reportDomainFailure(const std::vector<int> &host_indices)
{
    // Phase 1: take the whole domain out of the pool. No callback runs
    // until every member is marked, so an SM failing over off this
    // domain cannot be handed a sibling that was about to be convicted.
    std::vector<std::pair<int, std::uint64_t>> notify;
    for (const int host : host_indices) {
        auto it = nodes.find(host);
        if (it == nodes.end() || it->second.state == NodeState::kFailed)
            continue;
        ++statFailures;
        const bool was_leased = it->second.state == NodeState::kAllocated;
        const std::uint64_t lease_id = it->second.leaseId;
        it->second.state = NodeState::kFailed;
        if (it->second.fm)
            it->second.fm->markUnhealthy();
        if (was_leased) {
            auto lit = leases.find(lease_id);
            if (lit != leases.end()) {
                std::erase(lit->second.hosts, host);
                dropPlacement(lit->second.service, it->second);
            }
            it->second.leaseId = 0;
            notify.emplace_back(host, lease_id);
        }
    }
    // Phase 2: notify leased-node subscribers in the given host order.
    for (const auto &[host, lease_id] : notify)
        for (std::size_t i = 0; i < onFailure.size(); ++i)
            onFailure[i](host, lease_id);
}

void
ResourceManager::repair(int host_index)
{
    auto it = nodes.find(host_index);
    if (it == nodes.end())
        return;
    if (it->second.state != NodeState::kFailed)
        return;  // healthy or leased nodes are not "repaired"
    ++statRepairs;
    it->second.state = NodeState::kUnallocated;
    it->second.leaseId = 0;
    if (it->second.fm) {
        it->second.fm->markHealthy();
        // Repair re-images the board: the old role region is gone, so
        // the node can be re-leased and reconfigured from scratch.
        it->second.fm->clearRole();
    }
    for (std::size_t i = 0; i < onRepair.size(); ++i)
        onRepair[i](host_index);
}

int
ResourceManager::nodeRack(int host_index) const
{
    const auto it = nodes.find(host_index);
    return it == nodes.end() ? -1 : it->second.rack;
}

int
ResourceManager::serviceRackCount(const std::string &service, int rack) const
{
    const auto sit = svcRackCount.find(service);
    if (sit == svcRackCount.end())
        return 0;
    const auto it = sit->second.find(rack);
    return it == sit->second.end() ? 0 : it->second;
}

int
ResourceManager::servicePodCount(const std::string &service, int pod) const
{
    const auto sit = svcPodCount.find(service);
    if (sit == svcPodCount.end())
        return 0;
    const auto it = sit->second.find(pod);
    return it == sit->second.end() ? 0 : it->second;
}

std::vector<int>
ResourceManager::hostIndices() const
{
    std::vector<int> out;
    out.reserve(nodes.size());
    for (const auto &[host, node] : nodes)
        out.push_back(host);
    return out;
}

void
ResourceManager::attachObservability(obs::Observability *o)
{
    if (!o)
        return;
    auto &reg = o->registry;
    reg.registerProbe("haas.free", [this] { return double(freeCount()); });
    reg.registerProbe("haas.allocated",
                      [this] { return double(allocatedCount()); });
    reg.registerProbe("haas.failed",
                      [this] { return double(failedCount()); });
    reg.registerProbe("haas.failures",
                      [this] { return double(statFailures); });
    reg.registerProbe("haas.repairs",
                      [this] { return double(statRepairs); });
    reg.registerProbe("haas.placement.affinity_skips",
                      [this] { return double(statAffinitySkips); });
    reg.registerProbe("haas.placement.racks_used", [this] {
        std::size_t n = 0;
        for (const auto &[service, racks] : svcRackCount)
            n += racks.size();
        return double(n);
    });
}

FpgaManager *
ResourceManager::manager(int host_index)
{
    auto it = nodes.find(host_index);
    if (it == nodes.end())
        return nullptr;
    if (it->second.fm == nullptr && resolver) {
        // Flyweight stub: materialize on first touch. The resolver
        // calls back into setNodeManager; re-find in case it mutated
        // the map (registering further nodes is allowed).
        FpgaManager *fm = resolver(host_index);
        it = nodes.find(host_index);
        if (it == nodes.end())
            return fm;
    }
    return it->second.fm;
}

void
ResourceManager::setNodeManager(int host_index, FpgaManager *fm)
{
    auto it = nodes.find(host_index);
    if (it == nodes.end())
        return;
    it->second.fm = fm;
    if (fm != nullptr && it->second.state == NodeState::kFailed)
        fm->markUnhealthy();
}

int
ResourceManager::freeCount() const
{
    return static_cast<int>(std::count_if(
        nodes.begin(), nodes.end(), [](const auto &kv) {
            return kv.second.state == NodeState::kUnallocated;
        }));
}

int
ResourceManager::allocatedCount() const
{
    return static_cast<int>(std::count_if(
        nodes.begin(), nodes.end(), [](const auto &kv) {
            return kv.second.state == NodeState::kAllocated;
        }));
}

int
ResourceManager::failedCount() const
{
    return static_cast<int>(std::count_if(
        nodes.begin(), nodes.end(), [](const auto &kv) {
            return kv.second.state == NodeState::kFailed;
        }));
}

ServiceManager::ServiceManager(sim::EventQueue &eq, ResourceManager &rmgr,
                               std::string service_name, RoleFactory factory)
    : queue(eq), rm(rmgr), serviceName(std::move(service_name)),
      roleFactory(std::move(factory))
{
}

bool
ServiceManager::deploy(int instances, LeaseConstraints constraints)
{
    for (int i = 0; i < instances; ++i) {
        auto lease = rm.acquire(serviceName, 1, constraints);
        if (!lease) {
            CCSIM_LOG(sim::LogLevel::kWarn, "haas.sm." + serviceName,
                      queue.now(), "pool exhausted at ", i, "/",
                      instances, " instances");
            return false;
        }
        const int host = lease->hosts.front();
        FpgaManager *fm = rm.manager(host);
        fpga::Role *role = roleFactory(host);
        if (fm == nullptr || role == nullptr ||
            fm->configureRole(role) < 0) {
            rm.release(lease->id);
            return false;
        }
        hosts.push_back(host);
        hostLease.push_back(lease->id);
    }
    return true;
}

bool
ServiceManager::scaleTo(int instances, LeaseConstraints constraints)
{
    while (static_cast<int>(hosts.size()) > instances) {
        rm.release(hostLease.back());
        hostLease.pop_back();
        hosts.pop_back();
    }
    if (static_cast<int>(hosts.size()) < instances) {
        return deploy(instances - static_cast<int>(hosts.size()),
                      constraints);
    }
    return true;
}

void
ServiceManager::teardown()
{
    for (std::uint64_t lease : hostLease)
        rm.release(lease);
    hosts.clear();
    hostLease.clear();
}

int
ServiceManager::pickInstance()
{
    if (hosts.empty())
        return -1;
    // Thin shim over the serving layer's round-robin balancer. The
    // balancer's free-running counter has exactly the legacy `rrNext`
    // semantics (it survives membership changes), so pick sequences are
    // bit-identical to the pre-serving implementation — pinned by
    // ServiceManager.PickInstanceMatchesLegacySequence.
    rrBalancer.setHosts(hosts);
    return rrBalancer.pick(0, {});
}

void
ServiceManager::attachObservability(obs::Observability *o)
{
    if (!o)
        return;
    auto &reg = o->registry;
    const std::string prefix = "haas.sm." + serviceName;
    reg.registerProbe(prefix + ".instances",
                      [this] { return double(hosts.size()); });
    reg.registerProbe(prefix + ".failovers",
                      [this] { return double(statFailovers); });
    reg.registerProbe(prefix + ".auto_heals",
                      [this] { return double(statAutoHeals); });
    reg.registerProbe(prefix + ".migration_queue",
                      [this] { return double(migrationQueue.size()); });
    reg.registerProbe(prefix + ".migrations_queued",
                      [this] { return double(statMigrationsQueued); });
}

void
ServiceManager::enableAutoHeal(int target, LeaseConstraints constraints)
{
    healTarget = target;
    healConstraints = constraints;
    if (healSubscribed)
        return;
    healSubscribed = true;
    rm.subscribeFailures([this](int host, std::uint64_t) {
        handleFailure(host, healConstraints);
    });
    rm.subscribeRepairs([this](int) {
        const auto before = hosts.size();
        if (static_cast<int>(before) < healTarget)
            scaleTo(healTarget, healConstraints);
        statAutoHeals += hosts.size() - before;
    });
}

bool
ServiceManager::handleFailure(int host, LeaseConstraints constraints)
{
    auto it = std::find(hosts.begin(), hosts.end(), host);
    if (it == hosts.end())
        return false;
    const std::size_t idx = static_cast<std::size_t>(it - hosts.begin());
    rm.release(hostLease[idx]);
    hosts.erase(it);
    hostLease.erase(hostLease.begin() + static_cast<std::ptrdiff_t>(idx));

    if (migrationMinGap > 0 &&
        (!migrationQueue.empty() || queue.now() < nextMigrationAllowed)) {
        // Throttled: a rack death dumps two dozen failovers on this SM
        // at one instant; queue them and evacuate one per min_gap so
        // the re-acquire + reconfigure herd never stampedes the pool.
        migrationQueue.push_back(constraints);
        ++statMigrationsQueued;
        schedulePump();
        return true;
    }
    return acquireReplacement(constraints);
}

bool
ServiceManager::acquireReplacement(const LeaseConstraints &constraints)
{
    const sim::TimePs now = queue.now();
    if (lastMigrationAt >= 0 && now - lastMigrationAt < minGapObserved)
        minGapObserved = now - lastMigrationAt;
    lastMigrationAt = now;
    nextMigrationAllowed = now + migrationMinGap;

    // The pool has an abundance of spares: grab a replacement.
    auto lease = rm.acquire(serviceName, 1, constraints);
    if (!lease)
        return false;
    const int replacement = lease->hosts.front();
    FpgaManager *fm = rm.manager(replacement);
    fpga::Role *role = roleFactory(replacement);
    if (fm == nullptr || role == nullptr || fm->configureRole(role) < 0) {
        rm.release(lease->id);
        return false;
    }
    hosts.push_back(replacement);
    hostLease.push_back(lease->id);
    ++statFailovers;
    return true;
}

void
ServiceManager::setMigrationPolicy(sim::TimePs min_gap, bool self_pump)
{
    if (min_gap < 0)
        sim::fatal("ServiceManager::setMigrationPolicy: min_gap must be "
                   "non-negative");
    migrationMinGap = min_gap;
    migrationSelfPump = self_pump;
}

sim::TimePs
ServiceManager::pumpMigrations()
{
    while (!migrationQueue.empty() && queue.now() >= nextMigrationAllowed) {
        const LeaseConstraints constraints = migrationQueue.front();
        migrationQueue.pop_front();
        // nextMigrationAllowed advances inside, so with a positive gap
        // exactly one migration drains per due pump.
        acquireReplacement(constraints);
    }
    return migrationQueue.empty() ? sim::kTimeNever : nextMigrationAllowed;
}

void
ServiceManager::schedulePump()
{
    if (!migrationSelfPump || pumpScheduled)
        return;
    pumpScheduled = true;
    queue.schedule(std::max(nextMigrationAllowed, queue.now()), [this] {
        pumpScheduled = false;
        pumpMigrations();
        if (!migrationQueue.empty())
            schedulePump();
    });
}

}  // namespace ccsim::haas
