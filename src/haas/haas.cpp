#include "haas/haas.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace ccsim::haas {

int
FpgaManager::configureRole(fpga::Role *role)
{
    if (!healthy || shellPtr == nullptr)
        return -1;
    const int port = shellPtr->addRole(role);
    if (port >= 0) {
        configuredRole = role->name();
        configuredPort = port;
    }
    return port;
}

void
FpgaManager::clearRole()
{
    if (shellPtr != nullptr && configuredPort >= 0)
        shellPtr->removeRole(configuredPort);
    configuredRole.clear();
    configuredPort = -1;
}

FpgaManager::Status
FpgaManager::status() const
{
    Status s;
    s.healthy = healthy;
    s.hasRole = !configuredRole.empty();
    s.roleName = configuredRole;
    return s;
}

void
ResourceManager::registerNode(int host_index, FpgaManager *fm, int pod)
{
    Node node;
    node.fm = fm;
    node.pod = pod;
    nodes[host_index] = node;
}

std::optional<Lease>
ResourceManager::acquire(const std::string &service, int count,
                         LeaseConstraints constraints)
{
    std::vector<int> picked;
    for (auto &[host, node] : nodes) {
        if (node.state != NodeState::kUnallocated)
            continue;
        if (constraints.requirePod >= 0 && node.pod != constraints.requirePod)
            continue;
        picked.push_back(host);
        if (static_cast<int>(picked.size()) == count)
            break;
    }
    if (static_cast<int>(picked.size()) < count)
        return std::nullopt;

    Lease lease;
    lease.id = nextLeaseId++;
    lease.service = service;
    lease.hosts = picked;
    for (int host : picked) {
        nodes[host].state = NodeState::kAllocated;
        nodes[host].leaseId = lease.id;
    }
    leases[lease.id] = lease;
    return lease;
}

void
ResourceManager::release(std::uint64_t lease_id)
{
    auto it = leases.find(lease_id);
    if (it == leases.end())
        return;
    for (int host : it->second.hosts) {
        auto nit = nodes.find(host);
        if (nit == nodes.end())
            continue;
        if (nit->second.state == NodeState::kAllocated &&
            nit->second.leaseId == lease_id) {
            nit->second.state = NodeState::kUnallocated;
            nit->second.leaseId = 0;
            // Reclaimed boards are handed back blank.
            if (nit->second.fm)
                nit->second.fm->clearRole();
        }
    }
    leases.erase(it);
}

void
ResourceManager::reportFailure(int host_index)
{
    auto it = nodes.find(host_index);
    if (it == nodes.end())
        return;
    if (it->second.state == NodeState::kFailed)
        return;  // idempotent: duplicate detections of one dead node
    ++statFailures;
    const bool was_leased = it->second.state == NodeState::kAllocated;
    const std::uint64_t lease_id = it->second.leaseId;
    it->second.state = NodeState::kFailed;
    if (it->second.fm)
        it->second.fm->markUnhealthy();
    if (was_leased) {
        // Remove the node from the lease; the SM handles replacement.
        auto lit = leases.find(lease_id);
        if (lit != leases.end()) {
            std::erase(lit->second.hosts, host_index);
        }
        it->second.leaseId = 0;
        // Index loop: a callback may subscribe further callbacks.
        for (std::size_t i = 0; i < onFailure.size(); ++i)
            onFailure[i](host_index, lease_id);
    }
}

void
ResourceManager::repair(int host_index)
{
    auto it = nodes.find(host_index);
    if (it == nodes.end())
        return;
    if (it->second.state != NodeState::kFailed)
        return;  // healthy or leased nodes are not "repaired"
    ++statRepairs;
    it->second.state = NodeState::kUnallocated;
    it->second.leaseId = 0;
    if (it->second.fm) {
        it->second.fm->markHealthy();
        // Repair re-images the board: the old role region is gone, so
        // the node can be re-leased and reconfigured from scratch.
        it->second.fm->clearRole();
    }
    for (std::size_t i = 0; i < onRepair.size(); ++i)
        onRepair[i](host_index);
}

std::vector<int>
ResourceManager::hostIndices() const
{
    std::vector<int> out;
    out.reserve(nodes.size());
    for (const auto &[host, node] : nodes)
        out.push_back(host);
    return out;
}

void
ResourceManager::attachObservability(obs::Observability *o)
{
    if (!o)
        return;
    auto &reg = o->registry;
    reg.registerProbe("haas.free", [this] { return double(freeCount()); });
    reg.registerProbe("haas.allocated",
                      [this] { return double(allocatedCount()); });
    reg.registerProbe("haas.failed",
                      [this] { return double(failedCount()); });
    reg.registerProbe("haas.failures",
                      [this] { return double(statFailures); });
    reg.registerProbe("haas.repairs",
                      [this] { return double(statRepairs); });
}

FpgaManager *
ResourceManager::manager(int host_index)
{
    auto it = nodes.find(host_index);
    if (it == nodes.end())
        return nullptr;
    if (it->second.fm == nullptr && resolver) {
        // Flyweight stub: materialize on first touch. The resolver
        // calls back into setNodeManager; re-find in case it mutated
        // the map (registering further nodes is allowed).
        FpgaManager *fm = resolver(host_index);
        it = nodes.find(host_index);
        if (it == nodes.end())
            return fm;
    }
    return it->second.fm;
}

void
ResourceManager::setNodeManager(int host_index, FpgaManager *fm)
{
    auto it = nodes.find(host_index);
    if (it == nodes.end())
        return;
    it->second.fm = fm;
    if (fm != nullptr && it->second.state == NodeState::kFailed)
        fm->markUnhealthy();
}

int
ResourceManager::freeCount() const
{
    return static_cast<int>(std::count_if(
        nodes.begin(), nodes.end(), [](const auto &kv) {
            return kv.second.state == NodeState::kUnallocated;
        }));
}

int
ResourceManager::allocatedCount() const
{
    return static_cast<int>(std::count_if(
        nodes.begin(), nodes.end(), [](const auto &kv) {
            return kv.second.state == NodeState::kAllocated;
        }));
}

int
ResourceManager::failedCount() const
{
    return static_cast<int>(std::count_if(
        nodes.begin(), nodes.end(), [](const auto &kv) {
            return kv.second.state == NodeState::kFailed;
        }));
}

ServiceManager::ServiceManager(sim::EventQueue &eq, ResourceManager &rmgr,
                               std::string service_name, RoleFactory factory)
    : queue(eq), rm(rmgr), serviceName(std::move(service_name)),
      roleFactory(std::move(factory))
{
}

bool
ServiceManager::deploy(int instances, LeaseConstraints constraints)
{
    for (int i = 0; i < instances; ++i) {
        auto lease = rm.acquire(serviceName, 1, constraints);
        if (!lease) {
            CCSIM_LOG(sim::LogLevel::kWarn, "haas.sm." + serviceName,
                      queue.now(), "pool exhausted at ", i, "/",
                      instances, " instances");
            return false;
        }
        const int host = lease->hosts.front();
        FpgaManager *fm = rm.manager(host);
        fpga::Role *role = roleFactory(host);
        if (fm == nullptr || role == nullptr ||
            fm->configureRole(role) < 0) {
            rm.release(lease->id);
            return false;
        }
        hosts.push_back(host);
        hostLease.push_back(lease->id);
    }
    return true;
}

bool
ServiceManager::scaleTo(int instances, LeaseConstraints constraints)
{
    while (static_cast<int>(hosts.size()) > instances) {
        rm.release(hostLease.back());
        hostLease.pop_back();
        hosts.pop_back();
    }
    if (static_cast<int>(hosts.size()) < instances) {
        return deploy(instances - static_cast<int>(hosts.size()),
                      constraints);
    }
    return true;
}

void
ServiceManager::teardown()
{
    for (std::uint64_t lease : hostLease)
        rm.release(lease);
    hosts.clear();
    hostLease.clear();
}

int
ServiceManager::pickInstance()
{
    if (hosts.empty())
        return -1;
    // Thin shim over the serving layer's round-robin balancer. The
    // balancer's free-running counter has exactly the legacy `rrNext`
    // semantics (it survives membership changes), so pick sequences are
    // bit-identical to the pre-serving implementation — pinned by
    // ServiceManager.PickInstanceMatchesLegacySequence.
    rrBalancer.setHosts(hosts);
    return rrBalancer.pick(0, {});
}

void
ServiceManager::attachObservability(obs::Observability *o)
{
    if (!o)
        return;
    auto &reg = o->registry;
    const std::string prefix = "haas.sm." + serviceName;
    reg.registerProbe(prefix + ".instances",
                      [this] { return double(hosts.size()); });
    reg.registerProbe(prefix + ".failovers",
                      [this] { return double(statFailovers); });
    reg.registerProbe(prefix + ".auto_heals",
                      [this] { return double(statAutoHeals); });
}

void
ServiceManager::enableAutoHeal(int target, LeaseConstraints constraints)
{
    healTarget = target;
    healConstraints = constraints;
    if (healSubscribed)
        return;
    healSubscribed = true;
    rm.subscribeFailures([this](int host, std::uint64_t) {
        handleFailure(host, healConstraints);
    });
    rm.subscribeRepairs([this](int) {
        const auto before = hosts.size();
        if (static_cast<int>(before) < healTarget)
            scaleTo(healTarget, healConstraints);
        statAutoHeals += hosts.size() - before;
    });
}

bool
ServiceManager::handleFailure(int host, LeaseConstraints constraints)
{
    auto it = std::find(hosts.begin(), hosts.end(), host);
    if (it == hosts.end())
        return false;
    const std::size_t idx = static_cast<std::size_t>(it - hosts.begin());
    rm.release(hostLease[idx]);
    hosts.erase(it);
    hostLease.erase(hostLease.begin() + static_cast<std::ptrdiff_t>(idx));

    // The pool has an abundance of spares: grab a replacement.
    auto lease = rm.acquire(serviceName, 1, constraints);
    if (!lease)
        return false;
    const int replacement = lease->hosts.front();
    FpgaManager *fm = rm.manager(replacement);
    fpga::Role *role = roleFactory(replacement);
    if (fm == nullptr || role == nullptr || fm->configureRole(role) < 0) {
        rm.release(lease->id);
        return false;
    }
    hosts.push_back(replacement);
    hostLease.push_back(lease->id);
    ++statFailovers;
    return true;
}

}  // namespace ccsim::haas
