#include "haas/health_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"
#include "sim/sharded_queue.hpp"

namespace ccsim::haas {

HealthMonitor::HealthMonitor(sim::EventQueue &eq, ResourceManager &rmgr,
                             HealthMonitorConfig config)
    : queue(eq), rm(rmgr), cfg(config)
{
    if (cfg.heartbeatPeriod <= 0)
        sim::fatal("HealthMonitor: heartbeatPeriod must be positive");
    if (cfg.heartbeatRtt < 0)
        sim::fatal("HealthMonitor: heartbeatRtt must be non-negative");
    if (cfg.missWeight <= 0.0 || cfg.suspicionThreshold <= 0.0)
        sim::fatal("HealthMonitor: missWeight and suspicionThreshold "
                   "must be positive");
    if (cfg.rejoinHeartbeats < 1)
        sim::fatal("HealthMonitor: rejoinHeartbeats must be >= 1");
    if (cfg.domainConviction) {
        if (cfg.domainSweeps < 1 || cfg.domainMinHosts < 1)
            sim::fatal("HealthMonitor: domainSweeps and domainMinHosts "
                       "must be >= 1");
        // The end-of-sweep tally assumes sweep N's pongs all land before
        // sweep N+1 sends; overlapping sweeps would interleave results.
        if (cfg.heartbeatRtt >= cfg.heartbeatPeriod)
            sim::fatal("HealthMonitor: domainConviction requires "
                       "heartbeatRtt < heartbeatPeriod");
    }
}

HealthMonitor::~HealthMonitor()
{
    stop();
}

void
HealthMonitor::start()
{
    if (!probe)
        sim::fatal("HealthMonitor::start: no reachability probe installed "
                   "(call setProbe, or wire through "
                   "ConfigurableCloud::attachHealthMonitor)");
    if (running)
        return;
    running = true;
    populateNodes();
    sweepEvent = queue.scheduleAfter(cfg.heartbeatPeriod, [this] {
        sweepEvent = sim::kNoEvent;
        sweep();
    });
}

void
HealthMonitor::startSharded(sim::ShardedEventQueue &sq)
{
    if (!probe)
        sim::fatal("HealthMonitor::startSharded: no reachability probe "
                   "installed (call setProbe, or wire through "
                   "ConfigurableCloud::attachHealthMonitor)");
    if (running)
        return;
    running = true;
    shardQueue = &sq;
    populateNodes();
    nextSweepAt = sq.now() + cfg.heartbeatPeriod;
    nextEvalAt = 0;
    // Barrier hooks run between windows, when every partition is
    // quiescent, so judging hosts (and the RM reports that triggers) is
    // race-free and ordered identically on any worker count.
    sq.atBarrier([this](sim::TimePs e) { return barrierStep(e); },
                 nextSweepAt);
}

void
HealthMonitor::watchHosts(const std::vector<int> &hosts)
{
    watched = hosts;
    std::sort(watched.begin(), watched.end());
    watched.erase(std::unique(watched.begin(), watched.end()),
                  watched.end());
}

void
HealthMonitor::populateNodes()
{
    if (watched.empty()) {
        for (int host : rm.hostIndices())
            nodesHealth.try_emplace(host);
    } else {
        for (int host : watched)
            nodesHealth.try_emplace(host);
    }
    if (!cfg.domainConviction)
        return;
    if (!domainOf)
        sim::fatal("HealthMonitor: domainConviction requires setDomainOf() "
                   "(ConfigurableCloud::attachHealthMonitor wires it)");
    domainMembers.clear();
    for (const auto &[host, nh] : nodesHealth)
        ++domainMembers[domainOf(host)];
}

void
HealthMonitor::stop()
{
    running = false;
    if (sweepEvent != sim::kNoEvent) {
        queue.cancel(sweepEvent);
        sweepEvent = sim::kNoEvent;
    }
}

void
HealthMonitor::sweep()
{
    if (!running)
        return;
    // Ping in host-index order; all responses land at now + rtt, and the
    // queue is FIFO at one timestamp, so results (and any failure or
    // repair reports they trigger) are evaluated in host-index order.
    pendingResults = nodesHealth.size();
    sweepDomainMisses.clear();
    for (auto &[host, nh] : nodesHealth) {
        ++statHeartbeats;
        const int h = host;
        queue.scheduleAfter(cfg.heartbeatRtt, [this, h] {
            // Reachability is evaluated when the pong would arrive, so a
            // node that died (or rejoined) mid-flight is judged by its
            // state at response time.
            onHeartbeatResult(h, probe(h));
        });
    }
    sweepEvent = queue.scheduleAfter(cfg.heartbeatPeriod, [this] {
        sweepEvent = sim::kNoEvent;
        sweep();
    });
}

sim::TimePs
HealthMonitor::barrierStep(sim::TimePs e)
{
    if (!running)
        return sim::kTimeNever;
    if (nextEvalAt != 0 && e >= nextEvalAt) {
        evaluateSweep();
        nextEvalAt = 0;
    }
    if (e >= nextSweepAt) {
        statHeartbeats += nodesHealth.size();
        if (cfg.heartbeatRtt == 0)
            evaluateSweep();
        else
            nextEvalAt = e + cfg.heartbeatRtt;
        nextSweepAt = e + cfg.heartbeatPeriod;
    }
    sim::TimePs next = nextSweepAt;
    if (nextEvalAt != 0 && nextEvalAt < next)
        next = nextEvalAt;
    return next;
}

void
HealthMonitor::evaluateSweep()
{
    // The whole sweep is judged at one barrier (the pong time), host
    // order ascending — exactly what the legacy per-pong events produce.
    pendingResults = nodesHealth.size();
    sweepDomainMisses.clear();
    for (auto &[host, nh] : nodesHealth)
        onHeartbeatResult(host, probe(host));
}

void
HealthMonitor::onHeartbeatResult(int host, bool reachable)
{
    NodeHealth &nh = nodesHealth[host];
    const bool swept = pendingResults > 0;
    if (reachable) {
        nh.suspicion = 0.0;
        nh.lastStreakCredited = 0;
        // A healthy beat ends the episode: every evidence source may
        // count again if the node degrades anew.
        nh.evidenceLatched.clear();
        if (nh.reported) {
            ++nh.healthyStreak;
            if (nh.healthyStreak >= cfg.rejoinHeartbeats) {
                nh.reported = false;
                nh.healthyStreak = 0;
                ++statRejoins;
                CCSIM_LOG(sim::LogLevel::kInfo, "haas.health", queue.now(),
                          "node ", host, " rejoined after ",
                          cfg.rejoinHeartbeats, " healthy heartbeats");
                if (cfg.autoRepair)
                    rm.repair(host);
            }
        }
    } else {
        ++statMisses;
        nh.healthyStreak = 0;
        if (cfg.domainConviction && domainOf)
            ++sweepDomainMisses[domainOf(host)];
        addSuspicion(host, cfg.missWeight);
    }
    if (swept && --pendingResults == 0)
        finishSweep();
}

void
HealthMonitor::finishSweep()
{
    if (!cfg.domainConviction || !domainOf)
        return;
    // Judge each domain on this sweep's full tally: a rack where every
    // watched host missed counts one correlated strike; a single answer
    // ends the episode (per-host rejoin still governs RM repair).
    for (auto &[domain, members] : domainMembers) {
        DomainState &ds = domainsHealth[domain];
        const auto it = sweepDomainMisses.find(domain);
        const int misses = it == sweepDomainMisses.end() ? 0 : it->second;
        if (members >= cfg.domainMinHosts && misses >= members) {
            if (++ds.fullMissSweeps >= cfg.domainSweeps && !ds.convicted)
                convictDomain(domain);
        } else {
            ds.fullMissSweeps = 0;
            ds.convicted = false;
        }
    }
    sweepDomainMisses.clear();
}

void
HealthMonitor::convictDomain(int domain)
{
    DomainState &ds = domainsHealth[domain];
    ds.convicted = true;
    ++statDomainConvictions;
    const sim::TimePs t =
        shardQueue != nullptr ? shardQueue->now() : queue.now();
    CCSIM_LOG(sim::LogLevel::kWarn, "haas.health", t, "domain ", domain,
              " convicted: all ", domainMembers[domain],
              " watched hosts dark (one correlated failure, not ",
              domainMembers[domain], " detections)");
    // One rack-level event: members are marked failed together, without
    // the per-host detection counter, and handed to the RM as a single
    // two-phase domain failure so no failover callback can be granted a
    // sibling of this domain that had not been marked yet.
    std::vector<int> members;
    for (auto &[host, nh] : nodesHealth) {
        if (domainOf(host) != domain || nh.reported)
            continue;
        nh.reported = true;
        nh.healthyStreak = 0;
        nh.suspicion = cfg.suspicionThreshold;
        members.push_back(host);
    }
    if (cfg.autoReport && !members.empty())
        rm.reportDomainFailure(members);
}

void
HealthMonitor::reportTimeoutStreak(int host, int streak)
{
    auto it = nodesHealth.find(host);
    if (it == nodesHealth.end()) {
        if (rm.manager(host) == nullptr)
            return;  // not a registered node
        it = nodesHealth.try_emplace(host).first;
    }
    if (streak < cfg.minLtlStreak)
        return;
    NodeHealth &nh = it->second;
    // One credit per new timeout in the streak: streaks grow by one per
    // report, and parallel connections to the same dead node only count
    // the deepest streak (conservative, and order-independent).
    if (streak <= nh.lastStreakCredited)
        return;
    nh.lastStreakCredited = streak;
    ++statStreakReports;
    addSuspicion(host, cfg.streakWeight);
}

void
HealthMonitor::reportEvidence(int host, const std::string &source,
                              double weight)
{
    auto it = nodesHealth.find(host);
    if (it == nodesHealth.end()) {
        if (rm.manager(host) == nullptr)
            return;  // not a registered node
        it = nodesHealth.try_emplace(host).first;
    }
    // Idempotent per (host, source) and episode: the serving layer's
    // detector re-ejects a still-grey node with doubling durations, and
    // without the latch each re-ejection would add weight until the
    // monitor reported a node whose management path is perfectly
    // healthy on this source's say-so alone.
    if (!it->second.evidenceLatched.insert(source).second)
        return;
    ++statEvidenceReports;
    addSuspicion(host, weight);
}

void
HealthMonitor::addSuspicion(int host, double weight)
{
    NodeHealth &nh = nodesHealth[host];
    if (nh.reported)
        return;  // already declared failed; wait for rejoin
    nh.suspicion += weight;
    if (nh.suspicion < cfg.suspicionThreshold)
        return;
    nh.reported = true;
    nh.healthyStreak = 0;
    ++statDetections;
    CCSIM_LOG(sim::LogLevel::kWarn, "haas.health", queue.now(), "node ",
              host, " declared failed (suspicion ", nh.suspicion, ")");
    if (cfg.autoReport)
        rm.reportFailure(host);
}

sim::TimePs
HealthMonitor::detectionBound() const
{
    const auto beats = static_cast<sim::TimePs>(
        std::ceil(cfg.suspicionThreshold / cfg.missWeight));
    return (beats + 1) * cfg.heartbeatPeriod + cfg.heartbeatRtt;
}

sim::TimePs
HealthMonitor::domainDetectionBound() const
{
    return (static_cast<sim::TimePs>(cfg.domainSweeps) + 1) *
               cfg.heartbeatPeriod +
           cfg.heartbeatRtt;
}

double
HealthMonitor::suspicion(int host) const
{
    auto it = nodesHealth.find(host);
    return it == nodesHealth.end() ? 0.0 : it->second.suspicion;
}

bool
HealthMonitor::suspected(int host) const
{
    auto it = nodesHealth.find(host);
    return it != nodesHealth.end() &&
           (it->second.reported || it->second.suspicion > 0.0);
}

void
HealthMonitor::attachObservability(obs::Observability *o)
{
    obsHub = o;
    if (!o)
        return;
    auto &reg = o->registry;
    reg.registerProbe("haas.health.heartbeats",
                      [this] { return double(statHeartbeats); });
    reg.registerProbe("haas.health.misses",
                      [this] { return double(statMisses); });
    reg.registerProbe("haas.health.detections",
                      [this] { return double(statDetections); });
    reg.registerProbe("haas.health.domain_convictions",
                      [this] { return double(statDomainConvictions); });
    reg.registerProbe("haas.health.domains",
                      [this] { return double(domainMembers.size()); });
    reg.registerProbe("haas.health.rejoins",
                      [this] { return double(statRejoins); });
    reg.registerProbe("haas.health.streak_reports",
                      [this] { return double(statStreakReports); });
    reg.registerProbe("haas.health.evidence_reports",
                      [this] { return double(statEvidenceReports); });
    reg.registerProbe("haas.health.suspected", [this] {
        int n = 0;
        for (const auto &[host, nh] : nodesHealth)
            n += (nh.reported || nh.suspicion > 0.0) ? 1 : 0;
        return double(n);
    });
    reg.registerProbe("haas.health.monitored", [this] {
        return watched.empty() ? double(rm.hostIndices().size())
                               : double(watched.size());
    });
    // Per-node gauges: the watch set when one exists (at paper scale a
    // gauge per registered host would swamp the registry).
    const std::vector<int> &nodes =
        watched.empty() ? rm.hostIndices() : watched;
    for (int host : nodes) {
        reg.registerProbe(
            "haas.health.node" + std::to_string(host) + ".suspicion",
            [this, host] { return suspicion(host); });
    }
}

}  // namespace ccsim::haas
