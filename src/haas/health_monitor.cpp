#include "haas/health_monitor.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace ccsim::haas {

HealthMonitor::HealthMonitor(sim::EventQueue &eq, ResourceManager &rmgr,
                             HealthMonitorConfig config)
    : queue(eq), rm(rmgr), cfg(config)
{
    if (cfg.heartbeatPeriod <= 0)
        sim::fatal("HealthMonitor: heartbeatPeriod must be positive");
    if (cfg.heartbeatRtt < 0)
        sim::fatal("HealthMonitor: heartbeatRtt must be non-negative");
    if (cfg.missWeight <= 0.0 || cfg.suspicionThreshold <= 0.0)
        sim::fatal("HealthMonitor: missWeight and suspicionThreshold "
                   "must be positive");
    if (cfg.rejoinHeartbeats < 1)
        sim::fatal("HealthMonitor: rejoinHeartbeats must be >= 1");
}

HealthMonitor::~HealthMonitor()
{
    stop();
}

void
HealthMonitor::start()
{
    if (!probe)
        sim::fatal("HealthMonitor::start: no reachability probe installed "
                   "(call setProbe, or wire through "
                   "ConfigurableCloud::attachHealthMonitor)");
    if (running)
        return;
    running = true;
    for (int host : rm.hostIndices())
        nodesHealth.try_emplace(host);
    sweepEvent = queue.scheduleAfter(cfg.heartbeatPeriod, [this] {
        sweepEvent = sim::kNoEvent;
        sweep();
    });
}

void
HealthMonitor::stop()
{
    running = false;
    if (sweepEvent != sim::kNoEvent) {
        queue.cancel(sweepEvent);
        sweepEvent = sim::kNoEvent;
    }
}

void
HealthMonitor::sweep()
{
    if (!running)
        return;
    // Ping in host-index order; all responses land at now + rtt, and the
    // queue is FIFO at one timestamp, so results (and any failure or
    // repair reports they trigger) are evaluated in host-index order.
    for (auto &[host, nh] : nodesHealth) {
        ++statHeartbeats;
        const int h = host;
        queue.scheduleAfter(cfg.heartbeatRtt, [this, h] {
            // Reachability is evaluated when the pong would arrive, so a
            // node that died (or rejoined) mid-flight is judged by its
            // state at response time.
            onHeartbeatResult(h, probe(h));
        });
    }
    sweepEvent = queue.scheduleAfter(cfg.heartbeatPeriod, [this] {
        sweepEvent = sim::kNoEvent;
        sweep();
    });
}

void
HealthMonitor::onHeartbeatResult(int host, bool reachable)
{
    NodeHealth &nh = nodesHealth[host];
    if (reachable) {
        nh.suspicion = 0.0;
        nh.lastStreakCredited = 0;
        // A healthy beat ends the episode: every evidence source may
        // count again if the node degrades anew.
        nh.evidenceLatched.clear();
        if (nh.reported) {
            ++nh.healthyStreak;
            if (nh.healthyStreak >= cfg.rejoinHeartbeats) {
                nh.reported = false;
                nh.healthyStreak = 0;
                ++statRejoins;
                CCSIM_LOG(sim::LogLevel::kInfo, "haas.health", queue.now(),
                          "node ", host, " rejoined after ",
                          cfg.rejoinHeartbeats, " healthy heartbeats");
                if (cfg.autoRepair)
                    rm.repair(host);
            }
        }
        return;
    }
    ++statMisses;
    nh.healthyStreak = 0;
    addSuspicion(host, cfg.missWeight);
}

void
HealthMonitor::reportTimeoutStreak(int host, int streak)
{
    auto it = nodesHealth.find(host);
    if (it == nodesHealth.end()) {
        if (rm.manager(host) == nullptr)
            return;  // not a registered node
        it = nodesHealth.try_emplace(host).first;
    }
    if (streak < cfg.minLtlStreak)
        return;
    NodeHealth &nh = it->second;
    // One credit per new timeout in the streak: streaks grow by one per
    // report, and parallel connections to the same dead node only count
    // the deepest streak (conservative, and order-independent).
    if (streak <= nh.lastStreakCredited)
        return;
    nh.lastStreakCredited = streak;
    ++statStreakReports;
    addSuspicion(host, cfg.streakWeight);
}

void
HealthMonitor::reportEvidence(int host, const std::string &source,
                              double weight)
{
    auto it = nodesHealth.find(host);
    if (it == nodesHealth.end()) {
        if (rm.manager(host) == nullptr)
            return;  // not a registered node
        it = nodesHealth.try_emplace(host).first;
    }
    // Idempotent per (host, source) and episode: the serving layer's
    // detector re-ejects a still-grey node with doubling durations, and
    // without the latch each re-ejection would add weight until the
    // monitor reported a node whose management path is perfectly
    // healthy on this source's say-so alone.
    if (!it->second.evidenceLatched.insert(source).second)
        return;
    ++statEvidenceReports;
    addSuspicion(host, weight);
}

void
HealthMonitor::addSuspicion(int host, double weight)
{
    NodeHealth &nh = nodesHealth[host];
    if (nh.reported)
        return;  // already declared failed; wait for rejoin
    nh.suspicion += weight;
    if (nh.suspicion < cfg.suspicionThreshold)
        return;
    nh.reported = true;
    nh.healthyStreak = 0;
    ++statDetections;
    CCSIM_LOG(sim::LogLevel::kWarn, "haas.health", queue.now(), "node ",
              host, " declared failed (suspicion ", nh.suspicion, ")");
    if (cfg.autoReport)
        rm.reportFailure(host);
}

sim::TimePs
HealthMonitor::detectionBound() const
{
    const auto beats = static_cast<sim::TimePs>(
        std::ceil(cfg.suspicionThreshold / cfg.missWeight));
    return (beats + 1) * cfg.heartbeatPeriod + cfg.heartbeatRtt;
}

double
HealthMonitor::suspicion(int host) const
{
    auto it = nodesHealth.find(host);
    return it == nodesHealth.end() ? 0.0 : it->second.suspicion;
}

bool
HealthMonitor::suspected(int host) const
{
    auto it = nodesHealth.find(host);
    return it != nodesHealth.end() &&
           (it->second.reported || it->second.suspicion > 0.0);
}

void
HealthMonitor::attachObservability(obs::Observability *o)
{
    obsHub = o;
    if (!o)
        return;
    auto &reg = o->registry;
    reg.registerProbe("haas.health.heartbeats",
                      [this] { return double(statHeartbeats); });
    reg.registerProbe("haas.health.misses",
                      [this] { return double(statMisses); });
    reg.registerProbe("haas.health.detections",
                      [this] { return double(statDetections); });
    reg.registerProbe("haas.health.rejoins",
                      [this] { return double(statRejoins); });
    reg.registerProbe("haas.health.streak_reports",
                      [this] { return double(statStreakReports); });
    reg.registerProbe("haas.health.evidence_reports",
                      [this] { return double(statEvidenceReports); });
    reg.registerProbe("haas.health.suspected", [this] {
        int n = 0;
        for (const auto &[host, nh] : nodesHealth)
            n += (nh.reported || nh.suspicion > 0.0) ? 1 : 0;
        return double(n);
    });
    reg.registerProbe("haas.health.monitored", [this] {
        return double(rm.hostIndices().size());
    });
    for (int host : rm.hostIndices()) {
        reg.registerProbe(
            "haas.health.node" + std::to_string(host) + ".suspicion",
            [this, host] { return suspicion(host); });
    }
}

}  // namespace ccsim::haas
