#include "serving/cluster_client.hpp"

#include <algorithm>

#include "obs/flow_trace.hpp"
#include "sim/logging.hpp"

namespace ccsim::serving {

void
validateServingConfig(const ServingConfig &cfg)
{
    if (cfg.balancer == BalancerPolicy::kBoundedLoadConsistentHash) {
        if (cfg.chVnodes < 1)
            sim::fatalf("ServingConfig: chVnodes must be >= 1 (got ",
                        cfg.chVnodes, ")");
        if (cfg.chLoadBound <= 1.0)
            sim::fatalf("ServingConfig: chLoadBound must be > 1 (got ",
                        cfg.chLoadBound, ")");
    }
    validateAdmissionConfig(cfg.admission);
    validateEjectionConfig(cfg.ejection);
    validateRequestPolicy(cfg.request);
}

ClusterClient::ClusterClient(sim::EventQueue &eq, std::string name,
                             InstanceSource instances, ServingConfig cfg)
    : queue(eq),
      serviceName(std::move(name)),
      source(std::move(instances)),
      config((validateServingConfig(cfg), cfg)),
      lb(makeBalancer(cfg.balancer, cfg.chVnodes, cfg.chLoadBound)),
      admissionCtl(eq, cfg.admission),
      detector(eq, cfg.ejection),
      rng(sim::Rng::forStream(cfg.seed, 0x5e21u))
{
    if (!source)
        sim::fatal("ClusterClient: instance source must be set");
}

void
ClusterClient::registerEndpoint(int host, host::FeatureAccelerator *endpoint)
{
    if (endpoint == nullptr)
        sim::fatalf("ClusterClient(", serviceName,
                    "): null endpoint for host ", host);
    endpoints[host] = endpoint;
    if (obsHub != nullptr) {
        // Replacement semantics make re-registration after a
        // scale-down/up cycle safe.
        obsHub->registry.registerProbe(
            obsPrefix + ".host." + std::to_string(host) + ".outstanding",
            [this, host] { return double(outstandingOn(host)); });
    }
}

void
ClusterClient::unregisterEndpoint(int host)
{
    endpoints.erase(host);
}

bool
ClusterClient::admit(const std::string &tenant)
{
    return admissionCtl.tryAdmit(tenant);
}

int
ClusterClient::route(std::uint64_t key)
{
    const std::vector<int> instances = source();
    detector.trackHosts(instances);
    candidates.clear();
    for (int host : instances) {
        if (endpoints.count(host) == 0 || detector.ejected(host))
            continue;
        if (avoid && avoid(host)) {
            ++statAvoided;
            continue;
        }
        candidates.push_back(host);
    }
    if (candidates.empty())
        return -1;
    lb->setHosts(candidates);
    if (key == 0)
        key = rng.next();
    const int host = lb->pick(key, [this](int h) {
        return outstandingOn(h);
    });
    if (host >= 0)
        ++statRouted;
    return host;
}

void
ClusterClient::compute(std::uint32_t doc_count, std::function<void()> done)
{
    computeTraced(doc_count, obs::TraceContext{}, std::move(done));
}

void
ClusterClient::computeTraced(std::uint32_t doc_count,
                             const obs::TraceContext &ctx,
                             std::function<void()> done)
{
    const int host = route();
    if (host < 0) {
        // No routable backend: drop rather than fake a completion. The
        // caller's per-attempt deadline fires and it falls back (e.g. to
        // the software feature path), exactly as for a dead accelerator.
        ++statNoBackend;
        return;
    }
    forward(host, doc_count, ctx, std::move(done));
}

void
ClusterClient::forward(int host, std::uint32_t doc_count,
                       const obs::TraceContext &ctx,
                       std::function<void()> done)
{
    const std::uint64_t token = nextToken++;
    PendingRequest &req = pending[token];
    req.host = host;
    req.startedAt = queue.now();
    if (config.ejection.attemptTimeout > 0)
        req.timeoutEvent = queue.scheduleAfter(
            config.ejection.attemptTimeout,
            [this, token] { onTimeout(token); });
    ++outstanding[host];
    if (ctx.sampled && obsHub != nullptr) {
        // Zero-width annotation: names the chosen backend in the span
        // dump without covering any time, so attribution still sums
        // exactly.
        obsHub->flows.recordSpan(
            ctx, obsPrefix + ".host" + std::to_string(host),
            obs::Component::kCompute, queue.now(), queue.now());
    }
    endpoints[host]->computeTraced(
        doc_count, ctx, [this, token, cb = std::move(done)] {
            onResponse(token);
            if (cb)
                cb();
        });
}

void
ClusterClient::onResponse(std::uint64_t token)
{
    auto it = pending.find(token);
    if (it == pending.end())
        return;  // already counted as an error by the attempt timeout
    const PendingRequest req = it->second;
    pending.erase(it);
    if (req.timeoutEvent != sim::kNoEvent)
        queue.cancel(req.timeoutEvent);
    auto out = outstanding.find(req.host);
    if (out != outstanding.end() && out->second > 0)
        --out->second;
    detector.recordSuccess(req.host, queue.now() - req.startedAt);
    if (latencyHist != nullptr)
        latencyHist->add(static_cast<double>(queue.now() - req.startedAt) /
                         static_cast<double>(sim::kMillisecond));
}

void
ClusterClient::onTimeout(std::uint64_t token)
{
    auto it = pending.find(token);
    if (it == pending.end())
        return;
    const int host = it->second.host;
    pending.erase(it);
    auto out = outstanding.find(host);
    if (out != outstanding.end() && out->second > 0)
        --out->second;
    detector.recordError(host);
}

int
ClusterClient::outstandingOn(int host) const
{
    auto it = outstanding.find(host);
    return it == outstanding.end() ? 0 : it->second;
}

int
ClusterClient::outstandingTotal() const
{
    int total = 0;
    for (const auto &[host, n] : outstanding)
        total += n;
    return total;
}

void
ClusterClient::attachObservability(obs::Observability *o)
{
    obsHub = o;
    if (o == nullptr)
        return;
    obsPrefix = "serving." + serviceName;
    auto &reg = o->registry;
    reg.registerProbe(obsPrefix + ".routed",
                      [this] { return double(statRouted); });
    reg.registerProbe(obsPrefix + ".no_backend",
                      [this] { return double(statNoBackend); });
    reg.registerProbe(obsPrefix + ".avoided",
                      [this] { return double(statAvoided); });
    latencyHist = &reg.histogram(obsPrefix + ".latency_ms");
    reg.registerProbe(obsPrefix + ".outstanding",
                      [this] { return double(outstandingTotal()); });
    for (const auto &[host, endpoint] : endpoints)
        reg.registerProbe(
            obsPrefix + ".host." + std::to_string(host) + ".outstanding",
            [this, h = host] { return double(outstandingOn(h)); });
    admissionCtl.attachObservability(o, obsPrefix + ".admission");
    detector.attachObservability(o, obsPrefix + ".outlier");
}

}  // namespace ccsim::serving
