#include "serving/admission.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace ccsim::serving {

void
validateAdmissionConfig(const AdmissionConfig &cfg)
{
    if (cfg.ratePerSec < 0.0)
        sim::fatalf("AdmissionConfig: ratePerSec must be non-negative "
                    "(got ", cfg.ratePerSec, ")");
    if (cfg.ratePerSec > 0.0 && cfg.burst < 1.0)
        sim::fatalf("AdmissionConfig: burst must be >= 1 request (got ",
                    cfg.burst, ")");
    for (const TenantLimit &t : cfg.tenants) {
        if (t.tenant.empty())
            sim::fatal("AdmissionConfig: tenant name must be non-empty");
        if (t.ratePerSec <= 0.0)
            sim::fatalf("AdmissionConfig: tenant '", t.tenant,
                        "' ratePerSec must be positive (got ",
                        t.ratePerSec, ")");
        if (t.burst < 1.0)
            sim::fatalf("AdmissionConfig: tenant '", t.tenant,
                        "' burst must be >= 1 request (got ", t.burst,
                        ")");
    }
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i)
        for (std::size_t j = i + 1; j < cfg.tenants.size(); ++j)
            if (cfg.tenants[i].tenant == cfg.tenants[j].tenant)
                sim::fatalf("AdmissionConfig: duplicate tenant '",
                            cfg.tenants[i].tenant, "'");
}

bool
AdmissionController::Bucket::available(sim::TimePs now)
{
    if (now > lastRefill) {
        tokens = std::min(
            burst, tokens + rate * sim::toSeconds(now - lastRefill));
        lastRefill = now;
    }
    return tokens >= 1.0;
}

AdmissionController::AdmissionController(sim::EventQueue &eq,
                                         AdmissionConfig config)
    : queue(eq), cfg(std::move(config))
{
    validateAdmissionConfig(cfg);
    globalEnabled = cfg.ratePerSec > 0.0;
    global.rate = cfg.ratePerSec;
    global.burst = cfg.burst;
    global.tokens = cfg.burst;  // buckets start full
    global.lastRefill = eq.now();
    for (const TenantLimit &t : cfg.tenants) {
        Bucket b;
        b.rate = t.ratePerSec;
        b.burst = t.burst;
        b.tokens = t.burst;
        b.lastRefill = eq.now();
        tenantBuckets.emplace_back(t.tenant, b);
    }
}

AdmissionController::Bucket *
AdmissionController::bucketFor(const std::string &tenant)
{
    for (auto &[name, bucket] : tenantBuckets)
        if (name == tenant)
            return &bucket;
    return nullptr;
}

bool
AdmissionController::unlimited() const
{
    return !globalEnabled && tenantBuckets.empty();
}

bool
AdmissionController::tryAdmit(const std::string &tenant)
{
    const sim::TimePs now = queue.now();
    Bucket *tb = tenant.empty() ? nullptr : bucketFor(tenant);
    const bool global_ok = !globalEnabled || global.available(now);
    const bool tenant_ok = tb == nullptr || tb->available(now);
    if (global_ok && tenant_ok) {
        if (globalEnabled)
            global.take();
        if (tb != nullptr)
            tb->take();
        ++statAdmitted;
        return true;
    }
    ++statShed;
    // Charge the shed to the binding constraint: the tenant bucket when
    // it refused, else the global one.
    if (tb != nullptr && !tenant_ok)
        ++tb->shed;
    else
        ++global.shed;
    return false;
}

std::uint64_t
AdmissionController::shedFor(const std::string &tenant) const
{
    for (const auto &[name, bucket] : tenantBuckets)
        if (name == tenant)
            return bucket.shed;
    return 0;
}

void
AdmissionController::attachObservability(obs::Observability *o,
                                         const std::string &prefix)
{
    if (!o)
        return;
    auto &reg = o->registry;
    reg.registerProbe(prefix + ".admitted",
                      [this] { return double(statAdmitted); });
    reg.registerProbe(prefix + ".shed",
                      [this] { return double(statShed); });
    for (auto &[name, bucket] : tenantBuckets) {
        const Bucket *b = &bucket;
        reg.registerProbe(prefix + ".tenant." + name + ".shed",
                          [b] { return double(b->shed); });
    }
}

}  // namespace ccsim::serving
