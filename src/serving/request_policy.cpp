#include "serving/request_policy.hpp"

#include "sim/logging.hpp"

namespace ccsim::serving {

void
validateRequestPolicy(const RequestPolicy &p)
{
    if (p.accelDeadline < 0 || p.backoffBase < 0 || p.hedgeDelay < 0 ||
        p.hedgeMinDelay < 0)
        sim::fatal("RequestPolicy: times must be non-negative");
    if (p.maxAttempts < 1)
        sim::fatalf("RequestPolicy: maxAttempts must be >= 1 (got ",
                    p.maxAttempts, ")");
    if (p.backoffJitter < 0.0 || p.backoffJitter > 1.0)
        sim::fatalf("RequestPolicy: backoffJitter must be in [0, 1] "
                    "(got ", p.backoffJitter, ")");
    if (p.hedgeQuantile <= 0.0 || p.hedgeQuantile > 100.0)
        sim::fatalf("RequestPolicy: hedgeQuantile must be in (0, 100] "
                    "(got ", p.hedgeQuantile, ")");
}

}  // namespace ccsim::serving
