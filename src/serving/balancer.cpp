#include "serving/balancer.hpp"

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"

namespace ccsim::serving {

namespace {

/** SplitMix64 finalizer: the stateless mixer used for ring points and
 * request keys (stable across platforms, unlike std::hash). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

}  // namespace

const char *
balancerPolicyName(BalancerPolicy policy)
{
    switch (policy) {
    case BalancerPolicy::kRoundRobin:
        return "round_robin";
    case BalancerPolicy::kLeastOutstanding:
        return "least_outstanding";
    case BalancerPolicy::kBoundedLoadConsistentHash:
        return "bounded_load_ch";
    }
    return "unknown";
}

int
RoundRobinBalancer::pick(std::uint64_t, const OutstandingFn &)
{
    if (set.empty())
        return -1;
    const int host = set[next % set.size()];
    ++next;
    return host;
}

int
LeastOutstandingBalancer::pick(std::uint64_t, const OutstandingFn &outstanding)
{
    if (set.empty())
        return -1;
    if (!outstanding)
        return set.front();
    int best = set.front();
    int bestLoad = outstanding(best);
    for (std::size_t i = 1; i < set.size(); ++i) {
        const int load = outstanding(set[i]);
        if (load < bestLoad) {
            best = set[i];
            bestLoad = load;
        }
    }
    return best;
}

BoundedLoadConsistentHashBalancer::BoundedLoadConsistentHashBalancer(
    int vnodes, double load_bound)
    : vnodesPerHost(vnodes), loadBound(load_bound)
{
    if (vnodes < 1)
        sim::fatalf("BoundedLoadConsistentHashBalancer: vnodes must be "
                    ">= 1 (got ", vnodes, ")");
    if (load_bound <= 1.0)
        sim::fatalf("BoundedLoadConsistentHashBalancer: loadBound must "
                    "be > 1 (got ", load_bound, ")");
}

void
BoundedLoadConsistentHashBalancer::setHosts(const std::vector<int> &hosts)
{
    if (hosts == set)
        return;  // ring rebuilds only on membership change
    set = hosts;
    ring.clear();
    ring.reserve(set.size() * static_cast<std::size_t>(vnodesPerHost));
    for (int host : set) {
        for (int v = 0; v < vnodesPerHost; ++v) {
            const auto h =
                mix64((static_cast<std::uint64_t>(host) << 20) |
                      static_cast<std::uint64_t>(v));
            ring.push_back({h, host});
        }
    }
    std::sort(ring.begin(), ring.end(),
              [](const RingPoint &a, const RingPoint &b) {
                  // Hash collisions across hosts are astronomically
                  // unlikely but must not make the order input-dependent.
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.host < b.host;
              });
}

std::size_t
BoundedLoadConsistentHashBalancer::ringIndexFor(std::uint64_t key) const
{
    const std::uint64_t h = mix64(key);
    const auto it = std::lower_bound(
        ring.begin(), ring.end(), h,
        [](const RingPoint &p, std::uint64_t v) { return p.hash < v; });
    return it == ring.end() ? 0 : static_cast<std::size_t>(it - ring.begin());
}

int
BoundedLoadConsistentHashBalancer::homeOf(std::uint64_t key) const
{
    return ring.empty() ? -1 : ring[ringIndexFor(key)].host;
}

int
BoundedLoadConsistentHashBalancer::pick(std::uint64_t key,
                                        const OutstandingFn &outstanding)
{
    if (ring.empty())
        return -1;
    if (!outstanding)
        return ring[ringIndexFor(key)].host;

    // The bounded-load rule: cap = ceil(c * (total + 1) / n). Since
    // c > 1, at least one host sits strictly below the cap.
    int total = 0;
    for (int host : set)
        total += outstanding(host);
    const double avg = static_cast<double>(total + 1) /
                       static_cast<double>(set.size());
    const int cap = static_cast<int>(std::ceil(loadBound * avg));

    const std::size_t start = ringIndexFor(key);
    int fallback = ring[start].host;
    int fallbackLoad = outstanding(fallback);
    for (std::size_t i = 0; i < ring.size(); ++i) {
        const RingPoint &p = ring[(start + i) % ring.size()];
        const int load = outstanding(p.host);
        if (load + 1 <= cap)
            return p.host;
        if (load < fallbackLoad) {
            fallback = p.host;
            fallbackLoad = load;
        }
    }
    // Unreachable for c > 1; kept so a pathological outstanding()
    // callback still yields the least-loaded host rather than a panic.
    return fallback;
}

std::unique_ptr<LoadBalancer>
makeBalancer(BalancerPolicy policy, int ch_vnodes, double ch_load_bound)
{
    switch (policy) {
    case BalancerPolicy::kRoundRobin:
        return std::make_unique<RoundRobinBalancer>();
    case BalancerPolicy::kLeastOutstanding:
        return std::make_unique<LeastOutstandingBalancer>();
    case BalancerPolicy::kBoundedLoadConsistentHash:
        return std::make_unique<BoundedLoadConsistentHashBalancer>(
            ch_vnodes, ch_load_bound);
    }
    sim::fatal("makeBalancer: unknown policy");
}

}  // namespace ccsim::serving
