/**
 * @file
 * The failure-handling policy applied to each routed request: the
 * tail-at-scale toolkit of per-attempt deadlines, bounded retry with
 * exponential backoff + jitter, and hedged duplicates to a replica.
 *
 * Grown out of the RankingServer-specific QueryRetryPolicy (PR 5) into a
 * serving-layer type shared by every client of the accelerator pool:
 * hosts install it on their request path, and ClusterClient carries the
 * cluster-wide default handed out to attached servers. Defaults leave
 * everything off (a query blocks in the accelerator until someone calls
 * the owner's rescue path).
 */
#pragma once

#include "sim/time.hpp"

namespace ccsim::serving {

/** Per-request failure-handling policy. */
struct RequestPolicy {
    /** Per-attempt accelerator deadline; 0 disables deadlines/retries. */
    sim::TimePs accelDeadline = 0;
    /**
     * Total accelerator attempts per query, counting the first launch
     * and any hedged duplicate. At exhaustion the feature stage falls
     * back to software.
     */
    int maxAttempts = 2;
    /** Backoff before retry k (k = 1, 2, ...): base * 2^(k-1). */
    sim::TimePs backoffBase = 50 * sim::kMicrosecond;
    /** Relative jitter on each backoff, drawn uniformly in [-j, +j]. */
    double backoffJitter = 0.2;
    /** Issue a hedged duplicate to a replica after the hedge delay. */
    bool hedge = false;
    /**
     * Fixed hedge delay; 0 = adaptive — the hedgeQuantile of observed
     * accelerator latency, never below hedgeMinDelay.
     */
    sim::TimePs hedgeDelay = 0;
    double hedgeQuantile = 99.0;
    /** Adaptive floor (also used until enough samples accumulate). */
    sim::TimePs hedgeMinDelay = 200 * sim::kMicrosecond;

    // --- fluent setters ---

    RequestPolicy &withDeadline(sim::TimePs deadline, int max_attempts)
    {
        accelDeadline = deadline;
        maxAttempts = max_attempts;
        return *this;
    }
    RequestPolicy &withBackoff(sim::TimePs base, double jitter)
    {
        backoffBase = base;
        backoffJitter = jitter;
        return *this;
    }
    RequestPolicy &withHedge(sim::TimePs delay = 0)
    {
        hedge = true;
        hedgeDelay = delay;
        return *this;
    }
    RequestPolicy &withHedgeQuantile(double q, sim::TimePs min_delay)
    {
        hedgeQuantile = q;
        hedgeMinDelay = min_delay;
        return *this;
    }
};

/** Fatal on any out-of-range field (shared by every installer). */
void validateRequestPolicy(const RequestPolicy &p);

}  // namespace ccsim::serving
