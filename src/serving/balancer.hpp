/**
 * @file
 * Pluggable load-balancing policies over a set of accelerator instances.
 *
 * The paper's Hardware-as-a-Service plane leaves load balancing to the
 * Service Managers; ccsim's SMs only ever did static round-robin. This
 * interface separates *who owns an instance* (the lease set, still HaaS)
 * from *who routes a request to it* (a balancer policy):
 *
 *  - **round-robin** — the legacy policy, bit-compatible with the old
 *    ServiceManager::pickInstance() sequence (a free-running counter
 *    modulo the live host count);
 *  - **least-outstanding-requests** — full deterministic scan for the
 *    host with the fewest requests in flight (first-seen wins ties), the
 *    right default when backends can degrade unevenly;
 *  - **bounded-load consistent-hash** — a vnode hash ring with the
 *    consistent-hashing-with-bounded-loads rule: a key's home host is
 *    skipped while its load exceeds ceil(c * average), so keyed affinity
 *    survives host churn without hot-spotting.
 *
 * Balancers are deterministic: given the same sequence of setHosts() and
 * pick() calls they produce the same picks, so same-seed runs stay
 * byte-identical. They never allocate on the pick path after warm-up.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace ccsim::serving {

/** The routing policies a ClusterClient can be configured with. */
enum class BalancerPolicy : std::uint8_t {
    kRoundRobin = 0,
    kLeastOutstanding = 1,
    kBoundedLoadConsistentHash = 2,
};

/** Snake-case policy name (metric paths, bench tables). */
const char *balancerPolicyName(BalancerPolicy policy);

/** Live load view handed to pick(): outstanding requests on a host. */
using OutstandingFn = std::function<int(int host)>;

/**
 * A load-balancing policy over the current candidate host set. Hosts
 * already ejected or unhealthy are removed from the set by the caller
 * (ClusterClient) before pick() — balancers only order the candidates.
 */
class LoadBalancer
{
  public:
    virtual ~LoadBalancer() = default;

    virtual const char *name() const = 0;

    /**
     * Replace the candidate host set. Policies with derived state (the
     * hash ring) rebuild only when the set actually changed.
     */
    virtual void setHosts(const std::vector<int> &hosts) = 0;

    /**
     * Pick a host for one request.
     *
     * @param key         Affinity key (consistent-hash); policies
     *                    without keyed state ignore it.
     * @param outstanding Live per-host load (may be empty for policies
     *                    that never read it).
     * @return The picked host, or -1 when the candidate set is empty.
     */
    virtual int pick(std::uint64_t key, const OutstandingFn &outstanding) = 0;
};

/**
 * The legacy policy: hosts[counter % hosts.size()], counter free-running
 * across host-set changes — exactly the sequence the pre-serving
 * ServiceManager::pickInstance() produced (regression-tested).
 */
class RoundRobinBalancer : public LoadBalancer
{
  public:
    const char *name() const override { return "round_robin"; }
    void setHosts(const std::vector<int> &hosts) override { set = hosts; }
    int pick(std::uint64_t key, const OutstandingFn &outstanding) override;

  private:
    std::vector<int> set;
    std::size_t next = 0;
};

/**
 * Deterministic least-outstanding-requests: scan the candidate set in
 * order, strictly-fewer wins, so ties resolve to the first host seen.
 */
class LeastOutstandingBalancer : public LoadBalancer
{
  public:
    const char *name() const override { return "least_outstanding"; }
    void setHosts(const std::vector<int> &hosts) override { set = hosts; }
    int pick(std::uint64_t key, const OutstandingFn &outstanding) override;

  private:
    std::vector<int> set;
};

/**
 * Consistent hashing with bounded loads: @p vnodes ring points per host;
 * a request walks clockwise from hash(key) and takes the first host
 * whose load after the request would not exceed
 * ceil(loadBound * (total_outstanding + 1) / hosts). With loadBound > 1
 * a host under the bound always exists, so the walk terminates.
 */
class BoundedLoadConsistentHashBalancer : public LoadBalancer
{
  public:
    /**
     * @param vnodes     Ring points per host (more = smoother spread).
     * @param load_bound The c in ceil(c * average); must be > 1.
     */
    explicit BoundedLoadConsistentHashBalancer(int vnodes = 64,
                                               double load_bound = 1.25);

    const char *name() const override { return "bounded_load_ch"; }
    void setHosts(const std::vector<int> &hosts) override;
    int pick(std::uint64_t key, const OutstandingFn &outstanding) override;

    /** The host hash(key) lands on ignoring load (test introspection). */
    int homeOf(std::uint64_t key) const;

  private:
    struct RingPoint {
        std::uint64_t hash;
        int host;
    };

    int vnodesPerHost;
    double loadBound;
    std::vector<int> set;
    std::vector<RingPoint> ring;  ///< sorted by hash

    std::size_t ringIndexFor(std::uint64_t key) const;
};

/** Construct the configured policy (CH parameters used only by CH). */
std::unique_ptr<LoadBalancer> makeBalancer(BalancerPolicy policy,
                                           int ch_vnodes = 64,
                                           double ch_load_bound = 1.25);

}  // namespace ccsim::serving
