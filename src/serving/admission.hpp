/**
 * @file
 * Token-bucket admission control with per-tenant rate limits.
 *
 * Overload must degrade by *shedding* rather than collapsing: once the
 * offered load passes the pool's saturation point, every admitted query
 * only lengthens the queue and pushes all queries past their deadline —
 * goodput falls off a cliff. The admission controller caps the admitted
 * rate with a global token bucket plus optional per-tenant buckets, so
 * excess arrivals are refused up front (cheap) and the queries that are
 * admitted still meet their SLO (the goodput plateau asserted by the
 * overload ablation).
 *
 * Buckets refill lazily from simulated time, so admission decisions are
 * a pure function of the arrival timeline — deterministic per seed, and
 * a fixed arrival trace sheds the exact same requests every run.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::serving {

/** One tenant's rate limit. */
struct TenantLimit {
    std::string tenant;
    /** Sustained admitted requests per second of simulated time. */
    double ratePerSec = 0.0;
    /** Bucket capacity (burst tolerance), in requests; >= 1. */
    double burst = 1.0;
};

/** Admission-control configuration. */
struct AdmissionConfig {
    /**
     * Global sustained admitted rate (requests per second of simulated
     * time); 0 disables the global bucket (tenant buckets still apply).
     */
    double ratePerSec = 0.0;
    /** Global bucket capacity, in requests. */
    double burst = 1.0;
    /** Per-tenant limits, checked in addition to the global bucket. */
    std::vector<TenantLimit> tenants;

    // --- fluent setters ---

    AdmissionConfig &withRate(double rate_per_sec, double burst_requests)
    {
        ratePerSec = rate_per_sec;
        burst = burst_requests;
        return *this;
    }
    AdmissionConfig &withTenant(std::string tenant, double rate_per_sec,
                                double burst_requests)
    {
        tenants.push_back(
            {std::move(tenant), rate_per_sec, burst_requests});
        return *this;
    }
};

/** Fatal on any out-of-range field. */
void validateAdmissionConfig(const AdmissionConfig &cfg);

/**
 * The token-bucket gate. One instance per ClusterClient; hosts consult
 * it at query submission, before any queue is entered.
 */
class AdmissionController
{
  public:
    AdmissionController(sim::EventQueue &eq, AdmissionConfig cfg);

    /**
     * Try to admit one request for @p tenant (empty = untagged traffic,
     * global bucket only). A request is admitted only when the global
     * bucket *and* the tenant's bucket (if one is configured) both hold
     * a token; both are debited together, so a shed never consumes
     * tokens. Unknown tenants face only the global bucket.
     */
    bool tryAdmit(const std::string &tenant = {});

    /** True when neither a global nor any tenant limit is configured. */
    bool unlimited() const;

    std::uint64_t admitted() const { return statAdmitted; }
    std::uint64_t shed() const { return statShed; }
    /** Sheds charged to one tenant (0 for unknown tenants). */
    std::uint64_t shedFor(const std::string &tenant) const;

    const AdmissionConfig &config() const { return cfg; }

    /**
     * Export counters under `<prefix>.admitted`, `<prefix>.shed`, and
     * `<prefix>.tenant.<name>.shed`. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o,
                             const std::string &prefix);

  private:
    struct Bucket {
        double rate = 0.0;    ///< tokens per second
        double burst = 1.0;   ///< capacity
        double tokens = 0.0;  ///< current fill
        sim::TimePs lastRefill = 0;
        std::uint64_t shed = 0;

        /** Refill from elapsed simulated time, then peek for one token. */
        bool available(sim::TimePs now);
        void take() { tokens -= 1.0; }
    };

    sim::EventQueue &queue;
    AdmissionConfig cfg;
    Bucket global;
    bool globalEnabled = false;
    /** Tenant buckets in configuration order (deterministic export). */
    std::vector<std::pair<std::string, Bucket>> tenantBuckets;
    std::uint64_t statAdmitted = 0;
    std::uint64_t statShed = 0;

    Bucket *bucketFor(const std::string &tenant);
};

}  // namespace ccsim::serving
