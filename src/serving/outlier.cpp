#include "serving/outlier.hpp"

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"

namespace ccsim::serving {

namespace {

/** Latency evaluations are amortized: one per this many successes. */
constexpr int kEvalEvery = 16;

}  // namespace

void
validateEjectionConfig(const EjectionConfig &cfg)
{
    if (cfg.consecutiveErrors < 0)
        sim::fatalf("EjectionConfig: consecutiveErrors must be >= 0 "
                    "(got ", cfg.consecutiveErrors, ")");
    if (cfg.attemptTimeout < 0)
        sim::fatal("EjectionConfig: attemptTimeout must be non-negative");
    if (cfg.baseEjectionTime <= 0)
        sim::fatal("EjectionConfig: baseEjectionTime must be positive");
    if (cfg.maxEjectionMultiplier < 1)
        sim::fatalf("EjectionConfig: maxEjectionMultiplier must be >= 1 "
                    "(got ", cfg.maxEjectionMultiplier, ")");
    if (cfg.latencyFactor < 0.0)
        sim::fatal("EjectionConfig: latencyFactor must be non-negative");
    if (cfg.latencyPercentile <= 0.0 || cfg.latencyPercentile > 100.0)
        sim::fatalf("EjectionConfig: latencyPercentile must be in "
                    "(0, 100] (got ", cfg.latencyPercentile, ")");
    if (cfg.minLatencySamples < 2)
        sim::fatalf("EjectionConfig: minLatencySamples must be >= 2 "
                    "(got ", cfg.minLatencySamples, ")");
    if (cfg.latencyWindow < cfg.minLatencySamples)
        sim::fatalf("EjectionConfig: latencyWindow (", cfg.latencyWindow,
                    ") must be >= minLatencySamples (",
                    cfg.minLatencySamples, ")");
    if (cfg.maxEjectedFraction < 0.0 || cfg.maxEjectedFraction > 1.0)
        sim::fatalf("EjectionConfig: maxEjectedFraction must be in "
                    "[0, 1] (got ", cfg.maxEjectedFraction, ")");
    if (cfg.evidenceWeight < 0.0)
        sim::fatal("EjectionConfig: evidenceWeight must be non-negative");
}

OutlierDetector::OutlierDetector(sim::EventQueue &eq, EjectionConfig config)
    : queue(eq), cfg(config)
{
    validateEjectionConfig(cfg);
}

void
OutlierDetector::trackHosts(const std::vector<int> &hosts)
{
    for (int host : hosts)
        hostsState.try_emplace(host);
    for (auto it = hostsState.begin(); it != hostsState.end();) {
        if (std::find(hosts.begin(), hosts.end(), it->first) == hosts.end())
            it = hostsState.erase(it);
        else
            ++it;
    }
}

bool
OutlierDetector::ejected(int host) const
{
    auto it = hostsState.find(host);
    return it != hostsState.end() && it->second.ejectedUntil > queue.now();
}

int
OutlierDetector::ejectedCount() const
{
    int n = 0;
    for (const auto &[host, hs] : hostsState)
        n += hs.ejectedUntil > queue.now() ? 1 : 0;
    return n;
}

sim::TimePs
OutlierDetector::lastEjectedAt(int host) const
{
    auto it = hostsState.find(host);
    return it == hostsState.end() ? -1 : it->second.lastEjection;
}

sim::TimePs
OutlierDetector::windowPercentile(const std::vector<sim::TimePs> &w,
                                  double pct)
{
    if (w.empty())
        return 0;
    std::vector<sim::TimePs> sorted(w);
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(std::max(
        0.0,
        pct / 100.0 * static_cast<double>(sorted.size()) - 1.0));
    return sorted[std::min(idx, sorted.size() - 1)];
}

bool
OutlierDetector::latencyOutlier(const HostState &hs) const
{
    if (cfg.latencyFactor <= 0.0 ||
        static_cast<int>(hs.window.size()) < cfg.minLatencySamples)
        return false;
    // Cluster reference: the same percentile over every tracked host's
    // window (the degraded host's own samples included — conservative).
    std::vector<sim::TimePs> all;
    for (const auto &[host, other] : hostsState)
        all.insert(all.end(), other.window.begin(), other.window.end());
    const sim::TimePs cluster =
        windowPercentile(all, cfg.latencyPercentile);
    if (cluster <= 0)
        return false;
    const sim::TimePs mine =
        windowPercentile(hs.window, cfg.latencyPercentile);
    return static_cast<double>(mine) >
           cfg.latencyFactor * static_cast<double>(cluster);
}

void
OutlierDetector::recordSuccess(int host, sim::TimePs latency)
{
    auto it = hostsState.find(host);
    if (it == hostsState.end())
        return;
    HostState &hs = it->second;
    hs.consecutiveErrors = 0;
    if (static_cast<int>(hs.window.size()) < cfg.latencyWindow) {
        hs.window.push_back(latency);
    } else {
        hs.window[hs.windowNext] = latency;
        hs.windowNext = (hs.windowNext + 1) %
                        static_cast<std::size_t>(cfg.latencyWindow);
    }
    if (++hs.sinceEval < kEvalEvery)
        return;
    hs.sinceEval = 0;
    if (hs.ejectedUntil > queue.now())
        return;  // already out; late completions change nothing
    if (latencyOutlier(hs))
        eject(host, hs, EjectionReason::kLatencyPercentile);
}

void
OutlierDetector::recordError(int host)
{
    auto it = hostsState.find(host);
    if (it == hostsState.end())
        return;
    ++statErrors;
    HostState &hs = it->second;
    ++hs.consecutiveErrors;
    if (hs.ejectedUntil > queue.now())
        return;
    if (cfg.consecutiveErrors > 0 &&
        hs.consecutiveErrors >= cfg.consecutiveErrors)
        eject(host, hs, EjectionReason::kConsecutiveErrors);
}

void
OutlierDetector::eject(int host, HostState &hs, EjectionReason reason)
{
    // Never eject the whole pool: a cluster-wide slowdown (or a bad
    // threshold) must leave at least one routable instance.
    const int limit = std::max(
        1, static_cast<int>(std::floor(
               cfg.maxEjectedFraction *
               static_cast<double>(hostsState.size()))));
    if (ejectedCount() + 1 > limit) {
        ++statSuppressed;
        return;
    }
    const int mult = std::min(hs.ejectionCount, cfg.maxEjectionMultiplier - 1);
    const auto duration = static_cast<sim::TimePs>(
        static_cast<double>(cfg.baseEjectionTime) * std::ldexp(1.0, mult));
    hs.ejectedUntil = queue.now() + duration;
    hs.lastEjection = queue.now();
    ++hs.ejectionCount;
    // Readmit with a clean slate: stale pre-ejection samples must not
    // immediately re-eject a recovered host.
    hs.consecutiveErrors = 0;
    hs.window.clear();
    hs.windowNext = 0;
    hs.sinceEval = 0;
    ++statEjections;
    if (reason == EjectionReason::kConsecutiveErrors)
        ++statByErrors;
    else
        ++statByLatency;
    CCSIM_LOG(sim::LogLevel::kWarn, "serving.outlier", queue.now(),
              "host ", host, " ejected for ", sim::toMicros(duration),
              " us (",
              reason == EjectionReason::kConsecutiveErrors
                  ? "consecutive errors"
                  : "latency percentile",
              ")");
    if (evidence)
        evidence(host, cfg.evidenceWeight);
}

void
OutlierDetector::attachObservability(obs::Observability *o,
                                     const std::string &prefix)
{
    if (!o)
        return;
    auto &reg = o->registry;
    reg.registerProbe(prefix + ".ejections",
                      [this] { return double(statEjections); });
    reg.registerProbe(prefix + ".ejections_errors",
                      [this] { return double(statByErrors); });
    reg.registerProbe(prefix + ".ejections_latency",
                      [this] { return double(statByLatency); });
    reg.registerProbe(prefix + ".ejections_suppressed",
                      [this] { return double(statSuppressed); });
    reg.registerProbe(prefix + ".errors",
                      [this] { return double(statErrors); });
    reg.registerProbe(prefix + ".ejected",
                      [this] { return double(ejectedCount()); });
}

}  // namespace ccsim::serving
