/**
 * @file
 * Passive outlier detection: ejects misbehaving instances from the
 * routable set on evidence the data plane already produces.
 *
 * The HealthMonitor (PR 5) catches *dark* nodes: a dead board misses
 * heartbeats and times out LTL frames. It is blind to *grey* failures —
 * a board that still answers the management path and still ACKs frames,
 * but serves requests an order of magnitude slower (clock-throttled
 * shell, thermal brown-out, a role stuck in a degraded state). The
 * serving layer sees those directly: every routed request reports back
 * success latency or an error. Two signals drive ejection:
 *
 *  - **consecutive errors** — N routed requests in a row failed (the
 *    caller's per-attempt response deadline expired, or the endpoint
 *    reported failure);
 *  - **latency percentile** — the host's recent pXX exceeds
 *    latencyFactor x the cluster-wide pXX (computed over a sliding
 *    window of per-host samples, so a long healthy history cannot mask
 *    a fresh degradation).
 *
 * Ejection is temporary (baseEjectionTime, doubling per repeat, capped)
 * and bounded (never below maxEjectedFraction of the set, so a
 * cluster-wide slowdown cannot eject everything). Each ejection feeds
 * the HealthMonitor's evidence score through the evidence sink — the
 * monitor stays the single place failure evidence accumulates, and its
 * per-source idempotence keeps repeated ejections from double-counting.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ccsim::serving {

/** Outlier-ejection tuning. */
struct EjectionConfig {
    /** Consecutive routed-request errors before ejection; 0 disables. */
    int consecutiveErrors = 5;
    /**
     * Per-request response deadline counted as an error by the caller
     * (ClusterClient); 0 disables the timeout signal.
     */
    sim::TimePs attemptTimeout = 0;
    /** First ejection duration; doubles per repeat ejection of a host. */
    sim::TimePs baseEjectionTime = 30 * sim::kMillisecond;
    /** Cap on the ejection-time doubling (base * 2^(mult-1) max). */
    int maxEjectionMultiplier = 6;
    /**
     * Latency signal: eject when the host's windowed percentile exceeds
     * latencyFactor x the cluster percentile; 0 disables.
     */
    double latencyFactor = 3.0;
    /** Percentile compared on both sides (50 = median). */
    double latencyPercentile = 50.0;
    /** Per-host success samples needed before the latency signal fires. */
    int minLatencySamples = 32;
    /** Sliding window of per-host latency samples kept (power of two). */
    int latencyWindow = 128;
    /** Never eject past this fraction of the tracked set (>= 1 host
     * always survives). */
    double maxEjectedFraction = 0.5;
    /** Suspicion weight fed to the evidence sink per ejection. */
    double evidenceWeight = 1.0;

    // --- fluent setters ---

    EjectionConfig &withConsecutiveErrors(int errors)
    {
        consecutiveErrors = errors;
        return *this;
    }
    EjectionConfig &withAttemptTimeout(sim::TimePs timeout)
    {
        attemptTimeout = timeout;
        return *this;
    }
    EjectionConfig &withEjectionTime(sim::TimePs base, int max_multiplier)
    {
        baseEjectionTime = base;
        maxEjectionMultiplier = max_multiplier;
        return *this;
    }
    EjectionConfig &withLatencySignal(double factor, double percentile,
                                      int min_samples)
    {
        latencyFactor = factor;
        latencyPercentile = percentile;
        minLatencySamples = min_samples;
        return *this;
    }
    EjectionConfig &withMaxEjectedFraction(double fraction)
    {
        maxEjectedFraction = fraction;
        return *this;
    }
    EjectionConfig &withEvidenceWeight(double weight)
    {
        evidenceWeight = weight;
        return *this;
    }
};

/** Fatal on any out-of-range field. */
void validateEjectionConfig(const EjectionConfig &cfg);

/** Why a host was ejected (stats + logs). */
enum class EjectionReason : std::uint8_t {
    kConsecutiveErrors,
    kLatencyPercentile,
};

/**
 * The passive detector. One instance per ClusterClient; fed by the
 * routing path, read on every route() to filter the candidate set.
 */
class OutlierDetector
{
  public:
    /** Evidence feed toward the health layer: (host, suspicion weight). */
    using EvidenceFn = std::function<void(int host, double weight)>;

    OutlierDetector(sim::EventQueue &eq, EjectionConfig cfg);

    /** Install the evidence sink (e.g. HealthMonitor::reportEvidence). */
    void setEvidenceSink(EvidenceFn fn) { evidence = std::move(fn); }

    /**
     * Reconcile the tracked set with the current instance set: new hosts
     * start clean, departed hosts (lease lost) drop all state.
     */
    void trackHosts(const std::vector<int> &hosts);

    /** A routed request to @p host completed OK in @p latency. */
    void recordSuccess(int host, sim::TimePs latency);

    /** A routed request to @p host failed (timeout or endpoint error). */
    void recordError(int host);

    /** True while @p host is ejected (expiry is evaluated lazily). */
    bool ejected(int host) const;

    /** Tracked hosts currently ejected. */
    int ejectedCount() const;

    /** When @p host was last ejected (-1 = never). */
    sim::TimePs lastEjectedAt(int host) const;

    std::uint64_t ejections() const { return statEjections; }
    std::uint64_t ejectionsByErrors() const { return statByErrors; }
    std::uint64_t ejectionsByLatency() const { return statByLatency; }
    /** Ejections suppressed by the maxEjectedFraction guard. */
    std::uint64_t ejectionsSuppressed() const { return statSuppressed; }
    std::uint64_t errorsRecorded() const { return statErrors; }

    const EjectionConfig &config() const { return cfg; }

    /**
     * Export detector statistics under `<prefix>.*`: ejection counters
     * plus the live ejected-host count. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o,
                             const std::string &prefix);

  private:
    struct HostState {
        int consecutiveErrors = 0;
        /** Sliding window of success latencies (ring buffer). */
        std::vector<sim::TimePs> window;
        std::size_t windowNext = 0;
        /** Ejected until this instant (0 = not ejected). */
        sim::TimePs ejectedUntil = 0;
        sim::TimePs lastEjection = -1;
        /** Repeat-ejection count, drives the duration multiplier. */
        int ejectionCount = 0;
        /** Successes since the last latency evaluation. */
        int sinceEval = 0;
    };

    sim::EventQueue &queue;
    EjectionConfig cfg;
    EvidenceFn evidence;
    std::map<int, HostState> hostsState;
    std::uint64_t statEjections = 0;
    std::uint64_t statByErrors = 0;
    std::uint64_t statByLatency = 0;
    std::uint64_t statSuppressed = 0;
    std::uint64_t statErrors = 0;

    void eject(int host, HostState &hs, EjectionReason reason);
    bool latencyOutlier(const HostState &hs) const;
    /** Windowed percentile of one host (sorted copy; windows are small). */
    static sim::TimePs windowPercentile(const std::vector<sim::TimePs> &w,
                                        double pct);
};

}  // namespace ccsim::serving
