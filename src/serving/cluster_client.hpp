/**
 * @file
 * ClusterClient: the serving-mesh facade in front of a pool of leased
 * accelerators.
 *
 * The paper's service managers "handle load balancing, connectivity, and
 * failure handling" for a hardware service; RC3E-style provisioning
 * splits *owning* a board (the HaaS lease set) from *routing* a request
 * to it. ClusterClient is the routing half: it watches an instance
 * source (typically ServiceManager::instances()), filters it through a
 * passive OutlierDetector, orders it with a pluggable LoadBalancer, and
 * gates the submission edge with a token-bucket AdmissionController.
 * It implements host::FeatureAccelerator, so any host component that
 * could talk to one accelerator can talk to the whole pool unchanged —
 * ranking today; crypto, NF chains, and DNN clients the same way
 * tomorrow.
 *
 * Request lifecycle: admit (token buckets, at the host's submission
 * edge) -> route (balancer over healthy, non-ejected endpoints) ->
 * forward (the endpoint's compute), with per-request outstanding
 * accounting, an optional response deadline whose expiry feeds the
 * outlier detector's consecutive-error signal, success latencies feeding
 * its percentile signal, and the query's TraceContext carried through so
 * flow-trace attribution still sums exactly (the routed hop is recorded
 * as a zero-width annotation span naming the serving backend).
 *
 * Deterministic per seed: routing keys for unkeyed requests come from a
 * per-client sim::Rng stream, all bookkeeping is keyed on host index,
 * and nothing reads wall-clock state.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "host/feature_accelerator.hpp"
#include "obs/metrics.hpp"
#include "serving/admission.hpp"
#include "serving/balancer.hpp"
#include "serving/outlier.hpp"
#include "serving/request_policy.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace ccsim::serving {

/**
 * Cluster-serving configuration: balancer policy, admission limits,
 * ejection thresholds, and the request policy handed to attached
 * clients. Validated like FaultConfig — construction of a ClusterClient
 * (or of a ConfigurableCloud carrying one via withServing) fatals on an
 * invalid config.
 */
struct ServingConfig {
    BalancerPolicy balancer = BalancerPolicy::kRoundRobin;
    /** Ring points per host (consistent-hash policy only). */
    int chVnodes = 64;
    /** Bounded-load factor c (> 1; consistent-hash policy only). */
    double chLoadBound = 1.25;
    AdmissionConfig admission;
    EjectionConfig ejection;
    /** Default failure-handling policy for attached clients. */
    RequestPolicy request;
    /** Seed of the client's private Rng stream (routing keys). */
    std::uint64_t seed = 0x5e21;

    // --- fluent setters ---

    ServingConfig &withBalancer(BalancerPolicy policy)
    {
        balancer = policy;
        return *this;
    }
    ServingConfig &withConsistentHash(int vnodes, double load_bound)
    {
        balancer = BalancerPolicy::kBoundedLoadConsistentHash;
        chVnodes = vnodes;
        chLoadBound = load_bound;
        return *this;
    }
    ServingConfig &withAdmission(AdmissionConfig a)
    {
        admission = std::move(a);
        return *this;
    }
    ServingConfig &withEjection(EjectionConfig e)
    {
        ejection = e;
        return *this;
    }
    ServingConfig &withRequestPolicy(RequestPolicy p)
    {
        request = p;
        return *this;
    }
    ServingConfig &withSeed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }
};

/** Fatal on any out-of-range field (balancer, admission, ejection,
 * request policy). */
void validateServingConfig(const ServingConfig &cfg);

/** The serving facade over one hardware service's lease set. */
class ClusterClient : public host::FeatureAccelerator
{
  public:
    /** Supplier of the current instance set (the lease view). */
    using InstanceSource = std::function<std::vector<int>()>;

    /**
     * @param eq        Event queue (also the detector's clock).
     * @param name      Service name; metric paths use `serving.<name>`.
     * @param instances Lease view, polled on every route (e.g.
     *                  `[&sm] { return sm.instances(); }`).
     * @param cfg       Validated at construction; fatal on errors.
     */
    ClusterClient(sim::EventQueue &eq, std::string name,
                  InstanceSource instances, ServingConfig cfg = {});

    ClusterClient(const ClusterClient &) = delete;
    ClusterClient &operator=(const ClusterClient &) = delete;

    /**
     * Attach the data-plane endpoint reaching @p host (a
     * RemoteRankingClient, a local accelerator, ...). Instances without
     * an endpoint are not routable; endpoints must outlive the client
     * or be unregistered first.
     */
    void registerEndpoint(int host, host::FeatureAccelerator *endpoint);

    /** Detach @p host's endpoint (in-flight requests still complete). */
    void unregisterEndpoint(int host);

    /**
     * Admission gate for one request of @p tenant (empty = untagged).
     * Hosts call this at their submission edge, before queueing.
     */
    bool admit(const std::string &tenant = {});

    /**
     * Route one request: healthy instances = lease view, minus ejected,
     * minus endpoint-less, minus avoided (setAvoidPredicate); the
     * balancer orders the survivors.
     *
     * @param key Affinity key; 0 = draw one from the client's stream.
     * @return The picked host, or -1 when nothing is routable.
     */
    int route(std::uint64_t key = 0);

    /**
     * Failure-domain steering: hosts for which @p fn returns true are
     * excluded from routing (but stay in the lease and keep their
     * outlier state). Wire a convicted-domain check here so traffic
     * leaves a dying rack the moment the HealthMonitor convicts it,
     * ahead of the rate-limited lease evacuation. Pass nullptr to clear.
     */
    void setAvoidPredicate(std::function<bool(int host)> fn)
    {
        avoid = std::move(fn);
    }

    /** Routing candidates skipped by the avoid predicate. */
    std::uint64_t avoided() const { return statAvoided; }

    // --- host::FeatureAccelerator (the submit-through path) ---

    void compute(std::uint32_t doc_count,
                 std::function<void()> done) override;
    void computeTraced(std::uint32_t doc_count,
                       const obs::TraceContext &ctx,
                       std::function<void()> done) override;

    // --- subsystem access ---

    AdmissionController &admission() { return admissionCtl; }
    OutlierDetector &outliers() { return detector; }
    LoadBalancer &balancer() { return *lb; }
    const RequestPolicy &requestPolicy() const { return config.request; }
    const std::string &name() const { return serviceName; }

    /** Requests currently in flight toward @p host. */
    int outstandingOn(int host) const;
    /** Requests in flight across the pool. */
    int outstandingTotal() const;

    std::uint64_t routed() const { return statRouted; }
    /** compute() calls that found no routable backend (the request is
     * dropped; the caller's own deadline machinery handles recovery). */
    std::uint64_t noBackend() const { return statNoBackend; }

    /**
     * Export serving statistics under `serving.<name>.*`: routing and
     * admission counters, ejection statistics, per-host outstanding
     * probes, and (with flow tracing) per-flow backend annotations.
     * Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o);

  private:
    struct PendingRequest {
        int host = -1;
        sim::TimePs startedAt = 0;
        sim::EventId timeoutEvent = sim::kNoEvent;
    };

    sim::EventQueue &queue;
    std::string serviceName;
    InstanceSource source;
    ServingConfig config;
    std::unique_ptr<LoadBalancer> lb;
    AdmissionController admissionCtl;
    OutlierDetector detector;
    sim::Rng rng;
    std::function<bool(int host)> avoid;
    std::map<int, host::FeatureAccelerator *> endpoints;
    std::map<int, int> outstanding;
    std::map<std::uint64_t, PendingRequest> pending;
    std::uint64_t nextToken = 1;
    /** Scratch candidate buffer (avoids per-route allocation churn). */
    std::vector<int> candidates;
    obs::Observability *obsHub = nullptr;
    std::string obsPrefix;
    /** `serving.<name>.latency_ms`: per-response sojourn histogram, the
     * series cluster-level SLOs are written against (null = unobserved). */
    sim::LogHistogram *latencyHist = nullptr;
    std::uint64_t statRouted = 0;
    std::uint64_t statNoBackend = 0;
    std::uint64_t statAvoided = 0;

    void forward(int host, std::uint32_t doc_count,
                 const obs::TraceContext &ctx, std::function<void()> done);
    void onResponse(std::uint64_t token);
    void onTimeout(std::uint64_t token);
};

}  // namespace ccsim::serving
