#include "fault/failure_domain.hpp"

#include "sim/logging.hpp"

namespace ccsim::fault {

const char *
domainLevelName(DomainLevel level)
{
    switch (level) {
    case DomainLevel::kHost: return "host";
    case DomainLevel::kRack: return "rack";
    case DomainLevel::kPod: return "pod";
    case DomainLevel::kSpine: return "spine";
    }
    return "unknown";
}

FailureDomainMap::FailureDomainMap(int hosts_per_rack, int racks_per_pod,
                                   int pods)
    : perRack(hosts_per_rack), perPod(racks_per_pod), podCount(pods)
{
    if (hosts_per_rack < 1 || racks_per_pod < 1 || pods < 1)
        sim::fatalf("FailureDomainMap: every dimension must be >= 1 "
                    "(hostsPerRack=", hosts_per_rack, ", racksPerPod=",
                    racks_per_pod, ", pods=", pods, ")");
    rackCount = perPod * podCount;
    hostCount = perRack * rackCount;
}

void
FailureDomainMap::checkHost(int host) const
{
    if (host < 0 || host >= hostCount)
        sim::fatalf("FailureDomainMap: host ", host, " out of range [0, ",
                    hostCount, ")");
}

void
FailureDomainMap::checkRack(int rack) const
{
    if (rack < 0 || rack >= rackCount)
        sim::fatalf("FailureDomainMap: rack ", rack, " out of range [0, ",
                    rackCount, ")");
}

void
FailureDomainMap::checkPod(int pod) const
{
    if (pod < 0 || pod >= podCount)
        sim::fatalf("FailureDomainMap: pod ", pod, " out of range [0, ",
                    podCount, ")");
}

int
FailureDomainMap::rackOf(int host) const
{
    checkHost(host);
    return host / perRack;
}

int
FailureDomainMap::podOf(int host) const
{
    checkHost(host);
    return host / (perRack * perPod);
}

int
FailureDomainMap::podOfRack(int rack) const
{
    checkRack(rack);
    return rack / perPod;
}

int
FailureDomainMap::rackIndexInPod(int rack) const
{
    checkRack(rack);
    return rack % perPod;
}

int
FailureDomainMap::rackId(int pod, int rack_in_pod) const
{
    checkPod(pod);
    if (rack_in_pod < 0 || rack_in_pod >= perPod)
        sim::fatalf("FailureDomainMap: rack-in-pod ", rack_in_pod,
                    " out of range [0, ", perPod, ")");
    return pod * perPod + rack_in_pod;
}

std::vector<int>
FailureDomainMap::rackHosts(int rack) const
{
    checkRack(rack);
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(perRack));
    const int base = rack * perRack;
    for (int i = 0; i < perRack; ++i)
        out.push_back(base + i);
    return out;
}

std::vector<int>
FailureDomainMap::podHosts(int pod) const
{
    checkPod(pod);
    std::vector<int> out;
    const int span = perRack * perPod;
    out.reserve(static_cast<std::size_t>(span));
    const int base = pod * span;
    for (int i = 0; i < span; ++i)
        out.push_back(base + i);
    return out;
}

}  // namespace ccsim::fault
