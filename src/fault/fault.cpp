#include "fault/fault.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace ccsim::fault {

namespace {

/** Bounds-check a host index against the cloud. */
void
checkHost(core::ConfigurableCloud &cloud, int host, const char *what)
{
    if (host < 0 || host >= cloud.numServers())
        sim::fatalf("FaultInjector: ", what, " targets host ", host,
                    " but the cloud has ", cloud.numServers(), " servers");
}

}  // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kHostLinkFlap: return "host_link_flap";
    case FaultKind::kNicLinkFlap: return "nic_link_flap";
    case FaultKind::kTrunkLinkFlap: return "trunk_link_flap";
    case FaultKind::kCorruptionBurst: return "corruption_burst";
    case FaultKind::kFpgaHardFail: return "fpga_hard_fail";
    case FaultKind::kReconfigPause: return "reconfig_pause";
    case FaultKind::kSwitchBrownout: return "switch_brownout";
    case FaultKind::kGracefulReconfig: return "graceful_reconfig";
    }
    return "unknown";
}

FaultInjector::FaultInjector(sim::EventQueue &eq,
                             core::ConfigurableCloud &c, FaultConfig config)
    : queue(eq), cloud(c), cfg(std::move(config)), rng(cfg.seed)
{
    validate();
    cloud.attachFaultInjector(this);
    attachObservability();
}

FaultInjector::~FaultInjector()
{
    cloud.detachFaultInjector(this);
}

void
FaultInjector::validate() const
{
    if (cfg.randomFlapsPerSec < 0.0)
        sim::fatalf("FaultConfig: randomFlapsPerSec must be non-negative "
                    "(got ", cfg.randomFlapsPerSec, ")");
    if (cfg.randomBurstsPerSec < 0.0)
        sim::fatalf("FaultConfig: randomBurstsPerSec must be non-negative "
                    "(got ", cfg.randomBurstsPerSec, ")");
    if (cfg.randomFlapsPerSec > 0.0 && cfg.randomFlapDuration <= 0)
        sim::fatal("FaultConfig: random flaps need a positive "
                   "randomFlapDuration");
    if (cfg.randomBurstsPerSec > 0.0 &&
        (cfg.randomBurstRate <= 0.0 || cfg.randomBurstRate > 1.0))
        sim::fatalf("FaultConfig: randomBurstRate must be in (0, 1] "
                    "(got ", cfg.randomBurstRate, ")");
    if (cfg.randomBurstsPerSec > 0.0 && cfg.randomBurstDuration <= 0)
        sim::fatal("FaultConfig: random bursts need a positive "
                   "randomBurstDuration");
    if (cfg.randomHorizon < 0)
        sim::fatal("FaultConfig: randomHorizon must be non-negative");
    if ((cfg.randomFlapsPerSec > 0.0 || cfg.randomBurstsPerSec > 0.0) &&
        cfg.randomHorizon <= 0)
        sim::fatal("FaultConfig: random faults configured but "
                   "randomHorizon is zero; call withRandomHorizon()");
    for (const FaultEvent &e : cfg.schedule)
        validateEvent(e);
}

void
FaultInjector::validateEvent(const FaultEvent &e) const
{
    const char *name = faultKindName(e.kind);
    if (e.at < 0)
        sim::fatalf("FaultConfig: ", name, " scheduled at negative time ",
                    e.at);
    switch (e.kind) {
    case FaultKind::kHostLinkFlap:
    case FaultKind::kNicLinkFlap:
    case FaultKind::kReconfigPause:
    case FaultKind::kGracefulReconfig:
        checkHost(cloud, e.host, name);
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        break;
    case FaultKind::kFpgaHardFail:
        checkHost(cloud, e.host, name);
        break;
    case FaultKind::kTrunkLinkFlap:
        if (e.trunkIndex < 0 ||
            e.trunkIndex >= cloud.topology().numTrunkLinks())
            sim::fatalf("FaultConfig: trunk_link_flap targets trunk ",
                        e.trunkIndex, " but the fabric has ",
                        cloud.topology().numTrunkLinks(), " trunk cables");
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        break;
    case FaultKind::kCorruptionBurst:
        checkHost(cloud, e.host, name);
        if (e.rate <= 0.0 || e.rate > 1.0)
            sim::fatalf("FaultConfig: corruption_burst rate must be in "
                        "(0, 1] (got ", e.rate, ")");
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        break;
    case FaultKind::kSwitchBrownout:
        if (e.pod < 0 || e.pod >= cloud.topology().numPods() ||
            e.rack < 0 || e.rack >= cloud.topology().racksPerPod())
            sim::fatalf("FaultConfig: switch_brownout targets TOR (pod ",
                        e.pod, ", rack ", e.rack, ") outside the fabric");
        if (e.rate < 0.0 || e.rate > 1.0)
            sim::fatalf("FaultConfig: switch_brownout drop rate must be "
                        "in [0, 1] (got ", e.rate, ")");
        if (e.rate == 0.0 && !e.ecnStorm)
            sim::fatal("FaultConfig: switch_brownout with zero drop rate "
                       "and no ECN storm would do nothing");
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        break;
    }
}

void
FaultInjector::arm()
{
    if (armed)
        sim::fatal("FaultInjector::arm: already armed (arm() is one-shot; "
                   "use the imperative API for extra faults)");
    armed = true;
    for (const FaultEvent &e : cfg.schedule) {
        const sim::TimePs when = std::max(e.at, queue.now());
        queue.schedule(when, [this, e] { execute(e); });
    }
    scheduleRandom();
}

void
FaultInjector::execute(const FaultEvent &e)
{
    switch (e.kind) {
    case FaultKind::kHostLinkFlap:
        flapHostLink(e.host, e.duration);
        break;
    case FaultKind::kNicLinkFlap:
        flapNicLink(e.host, e.duration);
        break;
    case FaultKind::kTrunkLinkFlap:
        flapTrunkLink(e.trunkIndex, e.duration);
        break;
    case FaultKind::kCorruptionBurst:
        corruptionBurst(e.host, e.rate, e.duration);
        break;
    case FaultKind::kFpgaHardFail:
        failFpga(e.host);
        break;
    case FaultKind::kReconfigPause:
        reconfigPause(e.host, e.duration);
        break;
    case FaultKind::kGracefulReconfig:
        gracefulReconfig(e.host, e.duration);
        break;
    case FaultKind::kSwitchBrownout:
        switchBrownout(e.pod, e.rack, e.rate, e.ecnStorm, e.duration);
        break;
    }
}

void
FaultInjector::scheduleRandom()
{
    // All draws happen here, in a fixed order, so the whole random
    // schedule is a pure function of the seed.
    const sim::TimePs limit = queue.now() + cfg.randomHorizon;
    if (cfg.randomFlapsPerSec > 0.0) {
        const double gap = 1e12 / cfg.randomFlapsPerSec;  // ps
        sim::TimePs t = queue.now();
        for (;;) {
            t += static_cast<sim::TimePs>(rng.exponential(gap));
            if (t >= limit)
                break;
            const int host = rng.uniformInt(cloud.numServers());
            queue.schedule(t, [this, host] {
                flapHostLink(host, cfg.randomFlapDuration);
            });
        }
    }
    if (cfg.randomBurstsPerSec > 0.0) {
        const double gap = 1e12 / cfg.randomBurstsPerSec;
        sim::TimePs t = queue.now();
        for (;;) {
            t += static_cast<sim::TimePs>(rng.exponential(gap));
            if (t >= limit)
                break;
            const int host = rng.uniformInt(cloud.numServers());
            queue.schedule(t, [this, host] {
                corruptionBurst(host, cfg.randomBurstRate,
                                cfg.randomBurstDuration);
            });
        }
    }
}

void
FaultInjector::flapHostLink(int host, sim::TimePs down_for)
{
    checkHost(cloud, host, "flapHostLink");
    if (down_for <= 0)
        sim::fatal("FaultInjector::flapHostLink: duration must be positive");
    ++statInjected;
    ++statLinkFlaps;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", queue.now(), "host link ",
              host, " down for ", down_for, " ps");
    traceInstant("link_down.node" + std::to_string(host));
    holdHostLink(host);
    queue.scheduleAfter(down_for, [this, host] {
        releaseHostLink(host);
        ++statRecovered;
        CCSIM_LOG(sim::LogLevel::kInfo, "fault", queue.now(), "host link ",
                  host, " restored");
        traceInstant("link_up.node" + std::to_string(host));
    });
}

void
FaultInjector::flapNicLink(int host, sim::TimePs down_for)
{
    checkHost(cloud, host, "flapNicLink");
    if (down_for <= 0)
        sim::fatal("FaultInjector::flapNicLink: duration must be positive");
    if (cloud.nicLink(host) == nullptr)
        sim::fatal("FaultInjector::flapNicLink: the cloud was built "
                   "without NICs (createNics=false)");
    ++statInjected;
    ++statLinkFlaps;
    traceInstant("nic_down.node" + std::to_string(host));
    if (nicDepth[host]++ == 0)
        cloud.setNicLinkDown(host, true);
    queue.scheduleAfter(down_for, [this, host] {
        if (--nicDepth[host] == 0)
            cloud.setNicLinkDown(host, false);
        ++statRecovered;
        traceInstant("nic_up.node" + std::to_string(host));
    });
}

void
FaultInjector::flapTrunkLink(int index, sim::TimePs down_for)
{
    if (index < 0 || index >= cloud.topology().numTrunkLinks())
        sim::fatalf("FaultInjector::flapTrunkLink: trunk ", index,
                    " out of range (fabric has ",
                    cloud.topology().numTrunkLinks(), " trunk cables)");
    if (down_for <= 0)
        sim::fatal("FaultInjector::flapTrunkLink: duration must be "
                   "positive");
    ++statInjected;
    ++statLinkFlaps;
    traceInstant("trunk_down." + std::to_string(index));
    if (trunkDepth[index]++ == 0)
        cloud.topology().trunkLink(index).setAdminDown(true);
    queue.scheduleAfter(down_for, [this, index] {
        if (--trunkDepth[index] == 0)
            cloud.topology().trunkLink(index).setAdminDown(false);
        ++statRecovered;
        traceInstant("trunk_up." + std::to_string(index));
    });
}

void
FaultInjector::corruptionBurst(int host, double drop_prob,
                               sim::TimePs duration)
{
    checkHost(cloud, host, "corruptionBurst");
    if (drop_prob <= 0.0 || drop_prob > 1.0)
        sim::fatalf("FaultInjector::corruptionBurst: drop probability "
                    "must be in (0, 1] (got ", drop_prob, ")");
    if (duration <= 0)
        sim::fatal("FaultInjector::corruptionBurst: duration must be "
                   "positive");
    ++statInjected;
    ++statBursts;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", queue.now(),
              "corruption burst on host link ", host, " p=", drop_prob,
              " for ", duration, " ps");
    traceInstant("corruption_on.node" + std::to_string(host));
    // Overlapping bursts on one link are last-writer-wins: the newest
    // burst's probability applies, and only its expiry clears the hook.
    const std::uint64_t gen = ++burstGen[host];
    net::Link &link = cloud.topology().hostLink(host);
    auto hook = [this, drop_prob](const net::PacketPtr &) {
        return rng.bernoulli(drop_prob);
    };
    link.aToB().setFaultHook(hook);
    link.bToA().setFaultHook(hook);
    queue.scheduleAfter(duration, [this, host, gen] {
        if (burstGen[host] != gen)
            return;  // superseded by a newer burst
        net::Link &l = cloud.topology().hostLink(host);
        l.aToB().setFaultHook({});
        l.bToA().setFaultHook({});
        ++statRecovered;
        traceInstant("corruption_off.node" + std::to_string(host));
    });
}

void
FaultInjector::failFpga(int host)
{
    checkHost(cloud, host, "failFpga");
    if (hardFailed[host])
        return;  // idempotent
    hardFailed[host] = true;
    ++statInjected;
    ++statHardFails;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", queue.now(), "FPGA ", host,
              " hard failure");
    traceInstant("fpga_fail.node" + std::to_string(host));
    holdHostLink(host);
    cloud.shell(host).bridge().setDown(true);
    if (cfg.selfReport)
        cloud.resourceManager().reportFailure(host);
}

void
FaultInjector::repairFpga(int host)
{
    checkHost(cloud, host, "repairFpga");
    if (!hardFailed[host])
        return;
    hardFailed[host] = false;
    cloud.shell(host).bridge().setDown(false);
    releaseHostLink(host);
    if (cfg.selfReport)
        cloud.resourceManager().repair(host);
    ++statRecovered;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", queue.now(), "FPGA ", host,
              " repaired");
    traceInstant("fpga_repair.node" + std::to_string(host));
}

void
FaultInjector::reconfigPause(int host, sim::TimePs window)
{
    checkHost(cloud, host, "reconfigPause");
    if (window <= 0)
        sim::fatal("FaultInjector::reconfigPause: window must be positive");
    ++statInjected;
    ++statReconfigs;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", queue.now(), "node ", host,
              " reconfiguration pause for ", window, " ps");
    traceInstant("reconfig_start.node" + std::to_string(host));
    holdHostLink(host);
    cloud.shell(host).bridge().setDown(true);
    if (cfg.selfReport)
        cloud.resourceManager().reportFailure(host);
    queue.scheduleAfter(window, [this, host] {
        releaseHostLink(host);
        // A hard failure that landed during the window sticks: the node
        // only rejoins if it is merely paused.
        if (!hardFailed[host]) {
            cloud.shell(host).bridge().setDown(false);
            if (cfg.selfReport)
                cloud.resourceManager().repair(host);
        }
        ++statRecovered;
        traceInstant("reconfig_end.node" + std::to_string(host));
    });
}

void
FaultInjector::gracefulReconfig(int host, sim::TimePs window)
{
    checkHost(cloud, host, "gracefulReconfig");
    if (window <= 0)
        sim::fatal("FaultInjector::gracefulReconfig: window must be "
                   "positive");
    ++statInjected;
    ++statGraceful;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", queue.now(), "node ", host,
              " graceful reconfiguration (quiesce first) for ", window,
              " ps");
    traceInstant("graceful_quiesce.node" + std::to_string(host));
    auto cut = [this, host, window] {
        traceInstant("graceful_dark.node" + std::to_string(host));
        holdHostLink(host);
        cloud.shell(host).bridge().setDown(true);
        if (cfg.selfReport)
            cloud.resourceManager().reportFailure(host);
        queue.scheduleAfter(window, [this, host] {
            releaseHostLink(host);
            // As with reconfigPause, a hard failure during the window
            // sticks; the engine then stays quiesced (rejecting).
            if (!hardFailed[host]) {
                cloud.shell(host).bridge().setDown(false);
                if (auto *eng = cloud.shell(host).ltlEngine())
                    eng->endQuiesce();
                if (cfg.selfReport)
                    cloud.resourceManager().repair(host);
            }
            ++statRecovered;
            traceInstant("graceful_end.node" + std::to_string(host));
        });
    };
    ltl::LtlEngine *eng = cloud.shell(host).ltlEngine();
    if (eng)
        eng->beginQuiesce(eng->config().quiesceDrainTimeout,
                          std::move(cut));
    else
        cut();
}

void
FaultInjector::switchBrownout(int pod, int rack, double drop_prob,
                              bool ecn_storm, sim::TimePs duration)
{
    if (pod < 0 || pod >= cloud.topology().numPods() || rack < 0 ||
        rack >= cloud.topology().racksPerPod())
        sim::fatalf("FaultInjector::switchBrownout: TOR (pod ", pod,
                    ", rack ", rack, ") outside the fabric");
    if (drop_prob < 0.0 || drop_prob > 1.0)
        sim::fatalf("FaultInjector::switchBrownout: drop probability must "
                    "be in [0, 1] (got ", drop_prob, ")");
    if (drop_prob == 0.0 && !ecn_storm)
        sim::fatal("FaultInjector::switchBrownout: zero drop rate and no "
                   "ECN storm would do nothing");
    if (duration <= 0)
        sim::fatal("FaultInjector::switchBrownout: duration must be "
                   "positive");
    ++statInjected;
    ++statBrownouts;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", queue.now(), "TOR (", pod,
              ",", rack, ") brownout p=", drop_prob,
              ecn_storm ? " +ecn" : "", " for ", duration, " ps");
    traceInstant("brownout_on.tor" + std::to_string(pod) + "." +
                 std::to_string(rack));
    cloud.topology().tor(pod, rack).setBrownout(drop_prob, ecn_storm);
    queue.scheduleAfter(duration, [this, pod, rack] {
        cloud.topology().tor(pod, rack).clearBrownout();
        ++statRecovered;
        traceInstant("brownout_off.tor" + std::to_string(pod) + "." +
                     std::to_string(rack));
    });
}

bool
FaultInjector::nodeDown(int host) const
{
    auto it = darkDepth.find(host);
    return it != darkDepth.end() && it->second > 0;
}

sim::TimePs
FaultInjector::downtime(int host) const
{
    sim::TimePs total = 0;
    if (auto it = downAccum.find(host); it != downAccum.end())
        total = it->second;
    if (nodeDown(host)) {
        auto it = downSince.find(host);
        if (it != downSince.end())
            total += queue.now() - it->second;
    }
    return total;
}

void
FaultInjector::holdHostLink(int host)
{
    if (darkDepth[host]++ == 0) {
        downSince[host] = queue.now();
        cloud.setHostLinkDown(host, true);
    }
}

void
FaultInjector::releaseHostLink(int host)
{
    if (--darkDepth[host] == 0) {
        downAccum[host] += queue.now() - downSince[host];
        cloud.setHostLinkDown(host, false);
    }
}

void
FaultInjector::attachObservability()
{
    obsHub = cloud.observability();
    if (!obsHub)
        return;
    obsTrack = obsHub->trace.track("fault");
    auto &reg = obsHub->registry;
    reg.registerProbe("fault.injected",
                      [this] { return double(statInjected); });
    reg.registerProbe("fault.recovered",
                      [this] { return double(statRecovered); });
    reg.registerProbe("fault.link_flaps",
                      [this] { return double(statLinkFlaps); });
    reg.registerProbe("fault.corruption_bursts",
                      [this] { return double(statBursts); });
    reg.registerProbe("fault.fpga_failures",
                      [this] { return double(statHardFails); });
    reg.registerProbe("fault.reconfig_pauses",
                      [this] { return double(statReconfigs); });
    reg.registerProbe("fault.graceful_reconfigs",
                      [this] { return double(statGraceful); });
    reg.registerProbe("fault.brownouts",
                      [this] { return double(statBrownouts); });
    reg.registerProbe("fault.nodes_down", [this] {
        int n = 0;
        for (const auto &[host, depth] : darkDepth)
            n += depth > 0 ? 1 : 0;
        return double(n);
    });
    for (int host = 0; host < cloud.numServers(); ++host) {
        const std::string node = "fault.node" + std::to_string(host);
        reg.registerProbe(node + ".down", [this, host] {
            return nodeDown(host) ? 1.0 : 0.0;
        });
        reg.registerProbe(node + ".downtime_us", [this, host] {
            return double(downtime(host)) /
                   double(sim::kMicrosecond);
        });
    }
}

void
FaultInjector::traceInstant(const std::string &name)
{
    if (obsHub && obsHub->trace.enabled())
        obsHub->trace.instant(obsTrack, "fault", name, queue.now());
}

}  // namespace ccsim::fault
