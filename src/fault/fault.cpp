#include "fault/fault.hpp"

#include <algorithm>
#include <memory>

#include "obs/sharded_obs.hpp"
#include "sim/logging.hpp"
#include "sim/sharded_queue.hpp"

namespace ccsim::fault {

namespace {

/** Bounds-check a host index against the cloud. */
void
checkHost(core::ConfigurableCloud &cloud, int host, const char *what)
{
    if (host < 0 || host >= cloud.numServers())
        sim::fatalf("FaultInjector: ", what, " targets host ", host,
                    " but the cloud has ", cloud.numServers(), " servers");
}

}  // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kHostLinkFlap: return "host_link_flap";
    case FaultKind::kNicLinkFlap: return "nic_link_flap";
    case FaultKind::kTrunkLinkFlap: return "trunk_link_flap";
    case FaultKind::kCorruptionBurst: return "corruption_burst";
    case FaultKind::kFpgaHardFail: return "fpga_hard_fail";
    case FaultKind::kReconfigPause: return "reconfig_pause";
    case FaultKind::kSwitchBrownout: return "switch_brownout";
    case FaultKind::kGracefulReconfig: return "graceful_reconfig";
    case FaultKind::kTorFail: return "tor_fail";
    case FaultKind::kPodPowerEvent: return "pod_power_event";
    case FaultKind::kGraySpineDegrade: return "gray_spine";
    case FaultKind::kRollingMaintenance: return "rolling_maintenance";
    }
    return "unknown";
}

FaultInjector::FaultInjector(sim::EventQueue &eq,
                             core::ConfigurableCloud &c, FaultConfig config)
    : queue(eq), cloud(c), cfg(std::move(config)), rng(cfg.seed),
      domainMap(c.topology().hostsPerRack(), c.topology().racksPerPod(),
                c.topology().numPods())
{
    validate();
    cloud.attachFaultInjector(this);
    attachObservability();
}

FaultInjector::FaultInjector(sim::ShardedEventQueue &sq_,
                             core::ConfigurableCloud &c, FaultConfig config)
    : queue(sq_.partition(c.topology().numPods())), cloud(c),
      cfg(std::move(config)), rng(cfg.seed), sq(&sq_),
      domainMap(c.topology().hostsPerRack(), c.topology().racksPerPod(),
                c.topology().numPods())
{
    validate();
    cloud.attachFaultInjector(this);
    attachObservability();
    // Every injection/recovery drains here, at a barrier whose window
    // end requestBarrier() pinned to the action's exact time.
    sq->atBarrier([this](sim::TimePs e) { return drainPending(e); });
}

FaultInjector::~FaultInjector()
{
    cloud.detachFaultInjector(this);
}

void
FaultInjector::validate() const
{
    if (cfg.randomFlapsPerSec < 0.0)
        sim::fatalf("FaultConfig: randomFlapsPerSec must be non-negative "
                    "(got ", cfg.randomFlapsPerSec, ")");
    if (cfg.randomBurstsPerSec < 0.0)
        sim::fatalf("FaultConfig: randomBurstsPerSec must be non-negative "
                    "(got ", cfg.randomBurstsPerSec, ")");
    if (cfg.randomFlapsPerSec > 0.0 && cfg.randomFlapDuration <= 0)
        sim::fatal("FaultConfig: random flaps need a positive "
                   "randomFlapDuration");
    if (cfg.randomBurstsPerSec > 0.0 &&
        (cfg.randomBurstRate <= 0.0 || cfg.randomBurstRate > 1.0))
        sim::fatalf("FaultConfig: randomBurstRate must be in (0, 1] "
                    "(got ", cfg.randomBurstRate, ")");
    if (cfg.randomBurstsPerSec > 0.0 && cfg.randomBurstDuration <= 0)
        sim::fatal("FaultConfig: random bursts need a positive "
                   "randomBurstDuration");
    if (cfg.randomHorizon < 0)
        sim::fatal("FaultConfig: randomHorizon must be non-negative");
    if ((cfg.randomFlapsPerSec > 0.0 || cfg.randomBurstsPerSec > 0.0) &&
        cfg.randomHorizon <= 0)
        sim::fatal("FaultConfig: random faults configured but "
                   "randomHorizon is zero; call withRandomHorizon()");
    if (sq != nullptr && cfg.randomBurstsPerSec > 0.0)
        sim::fatal("FaultConfig: random corruption bursts are not "
                   "supported on a sharded cloud (the shared-RNG fault "
                   "hooks would race across partitions)");
    for (const FaultEvent &e : cfg.schedule)
        validateEvent(e);
}

void
FaultInjector::validateEvent(const FaultEvent &e) const
{
    const char *name = faultKindName(e.kind);
    if (e.at < 0)
        sim::fatalf("FaultConfig: ", name, " scheduled at negative time ",
                    e.at);
    switch (e.kind) {
    case FaultKind::kHostLinkFlap:
    case FaultKind::kNicLinkFlap:
    case FaultKind::kReconfigPause:
    case FaultKind::kGracefulReconfig:
        checkHost(cloud, e.host, name);
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        break;
    case FaultKind::kFpgaHardFail:
        checkHost(cloud, e.host, name);
        break;
    case FaultKind::kTrunkLinkFlap:
        if (e.trunkIndex < 0 ||
            e.trunkIndex >= cloud.topology().numTrunkLinks())
            sim::fatalf("FaultConfig: trunk_link_flap targets trunk ",
                        e.trunkIndex, " but the fabric has ",
                        cloud.topology().numTrunkLinks(), " trunk cables");
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        break;
    case FaultKind::kCorruptionBurst:
        checkHost(cloud, e.host, name);
        if (e.rate <= 0.0 || e.rate > 1.0)
            sim::fatalf("FaultConfig: corruption_burst rate must be in "
                        "(0, 1] (got ", e.rate, ")");
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        break;
    case FaultKind::kSwitchBrownout:
        if (e.pod < 0 || e.pod >= cloud.topology().numPods() ||
            e.rack < 0 || e.rack >= cloud.topology().racksPerPod())
            sim::fatalf("FaultConfig: switch_brownout targets TOR (pod ",
                        e.pod, ", rack ", e.rack, ") outside the fabric");
        if (e.rate < 0.0 || e.rate > 1.0)
            sim::fatalf("FaultConfig: switch_brownout drop rate must be "
                        "in [0, 1] (got ", e.rate, ")");
        if (e.rate == 0.0 && !e.ecnStorm)
            sim::fatal("FaultConfig: switch_brownout with zero drop rate "
                       "and no ECN storm would do nothing");
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        break;
    case FaultKind::kTorFail:
        if (e.pod < 0 || e.pod >= cloud.topology().numPods() ||
            e.rack < 0 || e.rack >= cloud.topology().racksPerPod())
            sim::fatalf("FaultConfig: tor_fail targets TOR (pod ", e.pod,
                        ", rack ", e.rack, ") outside the fabric");
        if (e.duration < 0)
            sim::fatalf("FaultConfig: ", name,
                        " duration must be non-negative (0 = permanent)");
        break;
    case FaultKind::kPodPowerEvent:
        if (e.pod < 0 || e.pod >= cloud.topology().numPods())
            sim::fatalf("FaultConfig: pod_power_event targets pod ", e.pod,
                        " outside the fabric");
        if (e.stagger < 0)
            sim::fatalf("FaultConfig: ", name,
                        " stagger must be non-negative");
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        break;
    case FaultKind::kGraySpineDegrade:
        if (e.l2Index < 0 || e.l2Index >= cloud.topology().numL2())
            sim::fatalf("FaultConfig: gray_spine targets L2 switch ",
                        e.l2Index, " but the fabric has ",
                        cloud.topology().numL2(), " spines");
        if (e.rate < 0.0 || e.rate > 1.0)
            sim::fatalf("FaultConfig: gray_spine drop rate must be in "
                        "[0, 1] (got ", e.rate, ")");
        if (e.extraLatency < 0)
            sim::fatalf("FaultConfig: ", name,
                        " extraLatency must be non-negative");
        if (e.rate == 0.0 && e.extraLatency == 0)
            sim::fatal("FaultConfig: gray_spine with zero drop rate and "
                       "zero extra latency would do nothing");
        if (e.duration < 0)
            sim::fatalf("FaultConfig: ", name,
                        " duration must be non-negative (0 = until clear)");
        break;
    case FaultKind::kRollingMaintenance:
        if (e.pod < 0 || e.pod >= cloud.topology().numPods())
            sim::fatalf("FaultConfig: rolling_maintenance targets pod ",
                        e.pod, " outside the fabric");
        if (e.duration <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive duration");
        if (e.stagger <= 0)
            sim::fatalf("FaultConfig: ", name, " needs a positive stagger");
        break;
    }
    if (sq != nullptr && (e.kind == FaultKind::kCorruptionBurst ||
                          e.kind == FaultKind::kGracefulReconfig))
        sim::fatalf("FaultConfig: ", name, " is not supported on a "
                    "sharded cloud (cross-partition RNG / quiesce "
                    "callbacks would break determinism)");
}

void
FaultInjector::arm()
{
    if (armed)
        sim::fatal("FaultInjector::arm: already armed (arm() is one-shot; "
                   "use the imperative API for extra faults)");
    armed = true;
    for (const FaultEvent &e : cfg.schedule)
        scheduleAction(std::max(e.at, nowPs()), [this, e] { execute(e); });
    scheduleRandom();
}

sim::TimePs
FaultInjector::nowPs() const
{
    return sq != nullptr ? sq->now() : queue.now();
}

void
FaultInjector::scheduleAction(sim::TimePs when, std::function<void()> fn)
{
    if (sq == nullptr) {
        queue.schedule(std::max(when, queue.now()), std::move(fn));
        return;
    }
    // During a barrier hook now() is the window end itself, so an
    // action for "now" lands one picosecond later — still exact on any
    // worker count, never inside an already-executed window.
    const sim::TimePs t = std::max(when, sq->now() + 1);
    pending.emplace(t, std::move(fn));
    sq->requestBarrier(t);
}

sim::TimePs
FaultInjector::drainPending(sim::TimePs e)
{
    while (!pending.empty() && pending.begin()->first <= e) {
        auto fn = std::move(pending.begin()->second);
        pending.erase(pending.begin());
        fn();
    }
    return pending.empty() ? sim::kTimeNever : pending.begin()->first;
}

void
FaultInjector::requireLegacy(const char *what) const
{
    if (sq != nullptr)
        sim::fatalf("FaultInjector::", what, ": not supported on a "
                    "sharded cloud (cross-partition RNG / quiesce "
                    "callbacks would break determinism)");
}

void
FaultInjector::execute(const FaultEvent &e)
{
    switch (e.kind) {
    case FaultKind::kHostLinkFlap:
        flapHostLink(e.host, e.duration);
        break;
    case FaultKind::kNicLinkFlap:
        flapNicLink(e.host, e.duration);
        break;
    case FaultKind::kTrunkLinkFlap:
        flapTrunkLink(e.trunkIndex, e.duration);
        break;
    case FaultKind::kCorruptionBurst:
        corruptionBurst(e.host, e.rate, e.duration);
        break;
    case FaultKind::kFpgaHardFail:
        failFpga(e.host);
        break;
    case FaultKind::kReconfigPause:
        reconfigPause(e.host, e.duration);
        break;
    case FaultKind::kGracefulReconfig:
        gracefulReconfig(e.host, e.duration);
        break;
    case FaultKind::kSwitchBrownout:
        switchBrownout(e.pod, e.rack, e.rate, e.ecnStorm, e.duration);
        break;
    case FaultKind::kTorFail:
        failTor(e.pod, e.rack);
        if (e.duration > 0) {
            scheduleAction(nowPs() + e.duration,
                           [this, p = e.pod, r = e.rack] {
                               repairTor(p, r);
                           });
        }
        break;
    case FaultKind::kPodPowerEvent:
        podPowerEvent(e.pod, e.stagger, e.duration);
        break;
    case FaultKind::kGraySpineDegrade:
        graySpineDegrade(e.l2Index, e.rate, e.extraLatency);
        if (e.duration > 0) {
            scheduleAction(nowPs() + e.duration, [this, l2 = e.l2Index] {
                graySpineClear(l2);
            });
        }
        break;
    case FaultKind::kRollingMaintenance:
        rollingMaintenance(e.pod, e.duration, e.stagger);
        break;
    }
}

void
FaultInjector::scheduleRandom()
{
    // All draws happen here, in a fixed order, so the whole random
    // schedule is a pure function of the seed.
    const sim::TimePs limit = nowPs() + cfg.randomHorizon;
    if (cfg.randomFlapsPerSec > 0.0) {
        const double gap = 1e12 / cfg.randomFlapsPerSec;  // ps
        sim::TimePs t = nowPs();
        for (;;) {
            t += static_cast<sim::TimePs>(rng.exponential(gap));
            if (t >= limit)
                break;
            const int host = rng.uniformInt(cloud.numServers());
            scheduleAction(t, [this, host] {
                flapHostLink(host, cfg.randomFlapDuration);
            });
        }
    }
    if (cfg.randomBurstsPerSec > 0.0) {
        const double gap = 1e12 / cfg.randomBurstsPerSec;
        sim::TimePs t = nowPs();
        for (;;) {
            t += static_cast<sim::TimePs>(rng.exponential(gap));
            if (t >= limit)
                break;
            const int host = rng.uniformInt(cloud.numServers());
            scheduleAction(t, [this, host] {
                corruptionBurst(host, cfg.randomBurstRate,
                                cfg.randomBurstDuration);
            });
        }
    }
}

void
FaultInjector::flapHostLink(int host, sim::TimePs down_for)
{
    checkHost(cloud, host, "flapHostLink");
    if (down_for <= 0)
        sim::fatal("FaultInjector::flapHostLink: duration must be positive");
    ++statInjected;
    ++statLinkFlaps;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "host link ",
              host, " down for ", down_for, " ps");
    traceInstant("link_down.node" + std::to_string(host));
    holdHostLink(host);
    scheduleAction(nowPs() + down_for, [this, host] {
        releaseHostLink(host);
        ++statRecovered;
        CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "host link ",
                  host, " restored");
        traceInstant("link_up.node" + std::to_string(host));
    });
}

void
FaultInjector::flapNicLink(int host, sim::TimePs down_for)
{
    checkHost(cloud, host, "flapNicLink");
    if (down_for <= 0)
        sim::fatal("FaultInjector::flapNicLink: duration must be positive");
    if (cloud.nicLink(host) == nullptr)
        sim::fatal("FaultInjector::flapNicLink: the cloud was built "
                   "without NICs (createNics=false)");
    ++statInjected;
    ++statLinkFlaps;
    traceInstant("nic_down.node" + std::to_string(host));
    if (nicDepth[host]++ == 0)
        cloud.setNicLinkDown(host, true);
    scheduleAction(nowPs() + down_for, [this, host] {
        if (--nicDepth[host] == 0)
            cloud.setNicLinkDown(host, false);
        ++statRecovered;
        traceInstant("nic_up.node" + std::to_string(host));
    });
}

void
FaultInjector::flapTrunkLink(int index, sim::TimePs down_for)
{
    if (index < 0 || index >= cloud.topology().numTrunkLinks())
        sim::fatalf("FaultInjector::flapTrunkLink: trunk ", index,
                    " out of range (fabric has ",
                    cloud.topology().numTrunkLinks(), " trunk cables)");
    if (down_for <= 0)
        sim::fatal("FaultInjector::flapTrunkLink: duration must be "
                   "positive");
    ++statInjected;
    ++statLinkFlaps;
    traceInstant("trunk_down." + std::to_string(index));
    if (trunkDepth[index]++ == 0)
        cloud.topology().trunkLink(index).setAdminDown(true);
    scheduleAction(nowPs() + down_for, [this, index] {
        if (--trunkDepth[index] == 0)
            cloud.topology().trunkLink(index).setAdminDown(false);
        ++statRecovered;
        traceInstant("trunk_up." + std::to_string(index));
    });
}

void
FaultInjector::corruptionBurst(int host, double drop_prob,
                               sim::TimePs duration)
{
    requireLegacy("corruptionBurst");
    checkHost(cloud, host, "corruptionBurst");
    if (drop_prob <= 0.0 || drop_prob > 1.0)
        sim::fatalf("FaultInjector::corruptionBurst: drop probability "
                    "must be in (0, 1] (got ", drop_prob, ")");
    if (duration <= 0)
        sim::fatal("FaultInjector::corruptionBurst: duration must be "
                   "positive");
    ++statInjected;
    ++statBursts;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(),
              "corruption burst on host link ", host, " p=", drop_prob,
              " for ", duration, " ps");
    traceInstant("corruption_on.node" + std::to_string(host));
    // Overlapping bursts on one link are last-writer-wins: the newest
    // burst's probability applies, and only its expiry clears the hook.
    const std::uint64_t gen = ++burstGen[host];
    net::Link &link = cloud.topology().hostLink(host);
    auto hook = [this, drop_prob](const net::PacketPtr &) {
        return rng.bernoulli(drop_prob);
    };
    link.aToB().setFaultHook(hook);
    link.bToA().setFaultHook(hook);
    queue.scheduleAfter(duration, [this, host, gen] {
        if (burstGen[host] != gen)
            return;  // superseded by a newer burst
        net::Link &l = cloud.topology().hostLink(host);
        l.aToB().setFaultHook({});
        l.bToA().setFaultHook({});
        ++statRecovered;
        traceInstant("corruption_off.node" + std::to_string(host));
    });
}

void
FaultInjector::failFpga(int host)
{
    checkHost(cloud, host, "failFpga");
    if (hardFailed[host])
        return;  // idempotent
    hardFailed[host] = true;
    ++statInjected;
    ++statHardFails;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "FPGA ", host,
              " hard failure");
    traceInstant("fpga_fail.node" + std::to_string(host));
    holdHostLink(host);
    cloud.shell(host).bridge().setDown(true);
    if (cfg.selfReport)
        cloud.resourceManager().reportFailure(host);
}

void
FaultInjector::repairFpga(int host)
{
    checkHost(cloud, host, "repairFpga");
    if (!hardFailed[host])
        return;
    hardFailed[host] = false;
    cloud.shell(host).bridge().setDown(false);
    releaseHostLink(host);
    if (cfg.selfReport)
        cloud.resourceManager().repair(host);
    ++statRecovered;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "FPGA ", host,
              " repaired");
    traceInstant("fpga_repair.node" + std::to_string(host));
}

void
FaultInjector::reconfigPause(int host, sim::TimePs window)
{
    checkHost(cloud, host, "reconfigPause");
    if (window <= 0)
        sim::fatal("FaultInjector::reconfigPause: window must be positive");
    ++statInjected;
    ++statReconfigs;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "node ", host,
              " reconfiguration pause for ", window, " ps");
    traceInstant("reconfig_start.node" + std::to_string(host));
    holdHostLink(host);
    cloud.shell(host).bridge().setDown(true);
    if (cfg.selfReport)
        cloud.resourceManager().reportFailure(host);
    scheduleAction(nowPs() + window, [this, host] {
        releaseHostLink(host);
        // A hard failure that landed during the window sticks: the node
        // only rejoins if it is merely paused.
        if (!hardFailed[host]) {
            cloud.shell(host).bridge().setDown(false);
            if (cfg.selfReport)
                cloud.resourceManager().repair(host);
        }
        ++statRecovered;
        traceInstant("reconfig_end.node" + std::to_string(host));
    });
}

void
FaultInjector::gracefulReconfig(int host, sim::TimePs window)
{
    requireLegacy("gracefulReconfig");
    checkHost(cloud, host, "gracefulReconfig");
    if (window <= 0)
        sim::fatal("FaultInjector::gracefulReconfig: window must be "
                   "positive");
    ++statInjected;
    ++statGraceful;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "node ", host,
              " graceful reconfiguration (quiesce first) for ", window,
              " ps");
    traceInstant("graceful_quiesce.node" + std::to_string(host));
    auto cut = [this, host, window] {
        traceInstant("graceful_dark.node" + std::to_string(host));
        holdHostLink(host);
        cloud.shell(host).bridge().setDown(true);
        if (cfg.selfReport)
            cloud.resourceManager().reportFailure(host);
        queue.scheduleAfter(window, [this, host] {
            releaseHostLink(host);
            // As with reconfigPause, a hard failure during the window
            // sticks; the engine then stays quiesced (rejecting).
            if (!hardFailed[host]) {
                cloud.shell(host).bridge().setDown(false);
                if (auto *eng = cloud.shell(host).ltlEngine())
                    eng->endQuiesce();
                if (cfg.selfReport)
                    cloud.resourceManager().repair(host);
            }
            ++statRecovered;
            traceInstant("graceful_end.node" + std::to_string(host));
        });
    };
    ltl::LtlEngine *eng = cloud.shell(host).ltlEngine();
    if (eng)
        eng->beginQuiesce(eng->config().quiesceDrainTimeout,
                          std::move(cut));
    else
        cut();
}

void
FaultInjector::switchBrownout(int pod, int rack, double drop_prob,
                              bool ecn_storm, sim::TimePs duration)
{
    if (pod < 0 || pod >= cloud.topology().numPods() || rack < 0 ||
        rack >= cloud.topology().racksPerPod())
        sim::fatalf("FaultInjector::switchBrownout: TOR (pod ", pod,
                    ", rack ", rack, ") outside the fabric");
    if (drop_prob < 0.0 || drop_prob > 1.0)
        sim::fatalf("FaultInjector::switchBrownout: drop probability must "
                    "be in [0, 1] (got ", drop_prob, ")");
    if (drop_prob == 0.0 && !ecn_storm)
        sim::fatal("FaultInjector::switchBrownout: zero drop rate and no "
                   "ECN storm would do nothing");
    if (duration <= 0)
        sim::fatal("FaultInjector::switchBrownout: duration must be "
                   "positive");
    ++statInjected;
    ++statBrownouts;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "TOR (", pod,
              ",", rack, ") brownout p=", drop_prob,
              ecn_storm ? " +ecn" : "", " for ", duration, " ps");
    traceInstant("brownout_on.tor" + std::to_string(pod) + "." +
                 std::to_string(rack));
    cloud.topology().tor(pod, rack).setBrownout(drop_prob, ecn_storm);
    scheduleAction(nowPs() + duration, [this, pod, rack] {
        cloud.topology().tor(pod, rack).clearBrownout();
        ++statRecovered;
        traceInstant("brownout_off.tor" + std::to_string(pod) + "." +
                     std::to_string(rack));
    });
}

void
FaultInjector::failTor(int pod, int rack)
{
    const int rack_id = domainMap.rackId(pod, rack);
    if (torDead[rack_id])
        return;  // idempotent
    torDead[rack_id] = true;
    ++statInjected;
    ++statTorFails;
    ++statDomainFaults;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "TOR (", pod, ",",
              rack, ") hard failure: rack ", rack_id, " dark");
    traceInstant("tor_fail.rack" + std::to_string(rack_id));
    // Hosts first, in ascending order: each hold materializes a lazy
    // stub before its cable is cut — the same order every run.
    const std::vector<int> hosts = domainMap.rackHosts(rack_id);
    for (int host : hosts)
        holdHostLink(host);
    net::Topology &topo = cloud.topology();
    for (int l1 = 0; l1 < topo.l1PerPod(); ++l1)
        topo.torToL1Link(pod, rack, l1).setAdminDown(true);
    if (cfg.selfReport) {
        for (int host : hosts)
            cloud.resourceManager().reportFailure(host);
    }
}

void
FaultInjector::repairTor(int pod, int rack)
{
    const int rack_id = domainMap.rackId(pod, rack);
    if (!torDead[rack_id])
        return;
    torDead[rack_id] = false;
    net::Topology &topo = cloud.topology();
    for (int l1 = 0; l1 < topo.l1PerPod(); ++l1)
        topo.torToL1Link(pod, rack, l1).setAdminDown(false);
    const std::vector<int> hosts = domainMap.rackHosts(rack_id);
    for (int host : hosts)
        releaseHostLink(host);
    if (cfg.selfReport) {
        for (int host : hosts) {
            if (!hardFailed[host])
                cloud.resourceManager().repair(host);
        }
    }
    ++statRecovered;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "TOR (", pod, ",",
              rack, ") repaired: rack ", rack_id, " rejoining");
    traceInstant("tor_repair.rack" + std::to_string(rack_id));
}

bool
FaultInjector::torFailed(int pod, int rack) const
{
    auto it = torDead.find(domainMap.rackId(pod, rack));
    return it != torDead.end() && it->second;
}

void
FaultInjector::podPowerEvent(int pod, sim::TimePs stagger,
                             sim::TimePs outage)
{
    if (pod < 0 || pod >= cloud.topology().numPods())
        sim::fatalf("FaultInjector::podPowerEvent: pod ", pod,
                    " outside the fabric");
    if (stagger < 0)
        sim::fatal("FaultInjector::podPowerEvent: stagger must be "
                   "non-negative");
    if (outage <= 0)
        sim::fatal("FaultInjector::podPowerEvent: outage must be positive");
    ++statInjected;
    ++statPodEvents;
    ++statDomainFaults;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "pod ", pod,
              " power event: hosts dying ", stagger, " ps apart, out for ",
              outage, " ps");
    traceInstant("pod_power.pod" + std::to_string(pod));
    const std::vector<int> hosts = domainMap.podHosts(pod);
    const sim::TimePs base = nowPs();
    for (std::size_t i = 0; i < hosts.size(); ++i) {
        const int host = hosts[i];
        const sim::TimePs at =
            base + stagger * static_cast<sim::TimePs>(i);
        scheduleAction(at, [this, host, outage] {
            holdHostLink(host);
            cloud.shell(host).bridge().setDown(true);
            if (cfg.selfReport)
                cloud.resourceManager().reportFailure(host);
            scheduleAction(nowPs() + outage, [this, host] {
                // A hard failure that landed during the outage sticks.
                if (!hardFailed[host]) {
                    cloud.shell(host).bridge().setDown(false);
                    if (cfg.selfReport)
                        cloud.resourceManager().repair(host);
                }
                releaseHostLink(host);
            });
        });
    }
    const sim::TimePs lastDeath =
        base + stagger * static_cast<sim::TimePs>(hosts.size() - 1);
    scheduleAction(lastDeath + outage, [this] { ++statRecovered; });
}

void
FaultInjector::applyGray(net::Channel &ch, double drop_prob,
                         std::uint64_t seed, sim::TimePs extra)
{
    ch.setExtraLatency(extra);
    if (drop_prob > 0.0) {
        // A dedicated RNG per channel: draws stay partition-local, so
        // the loss pattern is deterministic on any worker count.
        auto r = std::make_shared<sim::Rng>(seed);
        ch.setFaultHook([r, drop_prob](const net::PacketPtr &) {
            return r->bernoulli(drop_prob);
        });
    } else {
        ch.setFaultHook({});
    }
}

void
FaultInjector::graySpineDegrade(int l2_index, double drop_prob,
                                sim::TimePs extra_latency)
{
    net::Topology &topo = cloud.topology();
    if (l2_index < 0 || l2_index >= topo.numL2())
        sim::fatalf("FaultInjector::graySpineDegrade: L2 switch ",
                    l2_index, " outside the fabric");
    if (drop_prob < 0.0 || drop_prob > 1.0)
        sim::fatalf("FaultInjector::graySpineDegrade: drop probability "
                    "must be in [0, 1] (got ", drop_prob, ")");
    if (extra_latency < 0)
        sim::fatal("FaultInjector::graySpineDegrade: extra latency must "
                   "be non-negative");
    if (drop_prob == 0.0 && extra_latency == 0)
        sim::fatal("FaultInjector::graySpineDegrade: zero drop rate and "
                   "zero extra latency would do nothing");
    ++statInjected;
    ++statGrayFaults;
    ++statDomainFaults;
    grayActive[l2_index] = true;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "L2 spine ",
              l2_index, " gray: p=", drop_prob, " +", extra_latency,
              " ps per trunk hop");
    traceInstant("gray_on.l2_" + std::to_string(l2_index));
    for (int pod = 0; pod < topo.numPods(); ++pod) {
        for (int l1 = 0; l1 < topo.l1PerPod(); ++l1) {
            net::Link &link = topo.l1ToL2Link(pod, l1, l2_index);
            const std::uint64_t base =
                cfg.seed ^ (0x9e3779b97f4a7c15ull *
                            static_cast<std::uint64_t>(
                                ((l2_index * 4096 + pod) * 64 + l1) * 2 + 1));
            applyGray(link.aToB(), drop_prob, base, extra_latency);
            applyGray(link.bToA(), drop_prob, base + 1, extra_latency);
        }
    }
}

void
FaultInjector::graySpineClear(int l2_index)
{
    net::Topology &topo = cloud.topology();
    if (l2_index < 0 || l2_index >= topo.numL2())
        sim::fatalf("FaultInjector::graySpineClear: L2 switch ", l2_index,
                    " outside the fabric");
    if (!grayActive[l2_index])
        return;
    grayActive[l2_index] = false;
    for (int pod = 0; pod < topo.numPods(); ++pod) {
        for (int l1 = 0; l1 < topo.l1PerPod(); ++l1) {
            net::Link &link = topo.l1ToL2Link(pod, l1, l2_index);
            applyGray(link.aToB(), 0.0, 0, 0);
            applyGray(link.bToA(), 0.0, 0, 0);
        }
    }
    ++statRecovered;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "L2 spine ",
              l2_index, " gray degradation cleared");
    traceInstant("gray_off.l2_" + std::to_string(l2_index));
}

void
FaultInjector::rollingMaintenance(int pod, sim::TimePs window,
                                  sim::TimePs stagger)
{
    if (pod < 0 || pod >= cloud.topology().numPods())
        sim::fatalf("FaultInjector::rollingMaintenance: pod ", pod,
                    " outside the fabric");
    if (window <= 0)
        sim::fatal("FaultInjector::rollingMaintenance: window must be "
                   "positive");
    if (stagger <= 0)
        sim::fatal("FaultInjector::rollingMaintenance: stagger must be "
                   "positive");
    ++statInjected;
    ++statMaintenance;
    ++statDomainFaults;
    CCSIM_LOG(sim::LogLevel::kInfo, "fault", nowPs(), "pod ", pod,
              " rolling maintenance: racks drain ", window,
              " ps each, starts ", stagger, " ps apart");
    traceInstant("maintenance.pod" + std::to_string(pod));
    const sim::TimePs base = nowPs();
    for (int r = 0; r < domainMap.racksPerPod(); ++r) {
        const int rack_id = domainMap.rackId(pod, r);
        const sim::TimePs at =
            base + stagger * static_cast<sim::TimePs>(r);
        scheduleAction(at, [this, rack_id, window] {
            traceInstant("drain_start.rack" + std::to_string(rack_id));
            for (int host : domainMap.rackHosts(rack_id)) {
                holdHostLink(host);
                cloud.shell(host).bridge().setDown(true);
                if (cfg.selfReport)
                    cloud.resourceManager().reportFailure(host);
            }
            scheduleAction(nowPs() + window, [this, rack_id] {
                for (int host : domainMap.rackHosts(rack_id)) {
                    if (!hardFailed[host]) {
                        cloud.shell(host).bridge().setDown(false);
                        if (cfg.selfReport)
                            cloud.resourceManager().repair(host);
                    }
                    releaseHostLink(host);
                }
                ++statRecovered;
                traceInstant("drain_end.rack" + std::to_string(rack_id));
            });
        });
    }
}

bool
FaultInjector::nodeDown(int host) const
{
    auto it = darkDepth.find(host);
    return it != darkDepth.end() && it->second > 0;
}

sim::TimePs
FaultInjector::downtime(int host) const
{
    sim::TimePs total = 0;
    if (auto it = downAccum.find(host); it != downAccum.end())
        total = it->second;
    if (nodeDown(host)) {
        auto it = downSince.find(host);
        if (it != downSince.end())
            total += nowPs() - it->second;
    }
    return total;
}

void
FaultInjector::holdHostLink(int host)
{
    if (darkDepth[host]++ == 0) {
        downSince[host] = nowPs();
        cloud.setHostLinkDown(host, true);
    }
}

void
FaultInjector::releaseHostLink(int host)
{
    if (--darkDepth[host] == 0) {
        downAccum[host] += nowPs() - downSince[host];
        cloud.setHostLinkDown(host, false);
    }
}

void
FaultInjector::attachObservability()
{
    obsHub = cloud.observability();
    // On a sharded cloud the aggregate probes live on shard 0's hub;
    // they are read only at barriers, from the coordinator thread.
    if (obsHub == nullptr && cloud.shardedObservability() != nullptr)
        obsHub = &cloud.shardedObservability()->shard(0);
    if (!obsHub)
        return;
    obsTrack = obsHub->trace.track("fault");
    auto &reg = obsHub->registry;
    reg.registerProbe("fault.injected",
                      [this] { return double(statInjected); });
    reg.registerProbe("fault.recovered",
                      [this] { return double(statRecovered); });
    reg.registerProbe("fault.link_flaps",
                      [this] { return double(statLinkFlaps); });
    reg.registerProbe("fault.corruption_bursts",
                      [this] { return double(statBursts); });
    reg.registerProbe("fault.fpga_failures",
                      [this] { return double(statHardFails); });
    reg.registerProbe("fault.reconfig_pauses",
                      [this] { return double(statReconfigs); });
    reg.registerProbe("fault.graceful_reconfigs",
                      [this] { return double(statGraceful); });
    reg.registerProbe("fault.brownouts",
                      [this] { return double(statBrownouts); });
    reg.registerProbe("fault.nodes_down", [this] {
        int n = 0;
        for (const auto &[host, depth] : darkDepth)
            n += depth > 0 ? 1 : 0;
        return double(n);
    });
    reg.registerProbe("fault.domain.tor_fails",
                      [this] { return double(statTorFails); });
    reg.registerProbe("fault.domain.pod_events",
                      [this] { return double(statPodEvents); });
    reg.registerProbe("fault.domain.gray_faults",
                      [this] { return double(statGrayFaults); });
    reg.registerProbe("fault.domain.maintenance",
                      [this] { return double(statMaintenance); });
    reg.registerProbe("fault.domain.injected",
                      [this] { return double(statDomainFaults); });
    reg.registerProbe("fault.domain.tors_dead", [this] {
        int n = 0;
        for (const auto &[rack, dead] : torDead)
            n += dead ? 1 : 0;
        return double(n);
    });
    // Per-node probes stay legacy-only: a paper-scale sharded attach
    // would register half a million of them.
    if (sq != nullptr)
        return;
    for (int host = 0; host < cloud.numServers(); ++host) {
        const std::string node = "fault.node" + std::to_string(host);
        reg.registerProbe(node + ".down", [this, host] {
            return nodeDown(host) ? 1.0 : 0.0;
        });
        reg.registerProbe(node + ".downtime_us", [this, host] {
            return double(downtime(host)) /
                   double(sim::kMicrosecond);
        });
    }
}

void
FaultInjector::traceInstant(const std::string &name)
{
    if (obsHub && obsHub->trace.enabled())
        obsHub->trace.instant(obsTrack, "fault", name, nowPs());
}

}  // namespace ccsim::fault
