/**
 * @file
 * The physical failure-domain hierarchy of the fabric.
 *
 * Faults in a real datacenter are correlated by shared hardware: the 24
 * hosts behind one TOR go dark together when the switch dies, a pod's
 * worth of machines stagger-crash when a power feed browns out, and a
 * sick L2 spine degrades every pod at once. The FailureDomainMap gives
 * every layer that reasons about blast radius — the fault injector's
 * correlated injectors, the HealthMonitor's domain-level conviction,
 * HaaS anti-affinity placement — one shared, purely arithmetic view of
 * the hierarchy:
 *
 *     host  <  rack (one TOR)  <  pod  <  L2 spine (whole fabric)
 *
 * derived from the same geometry numbers net::TopologyConfig uses, so
 * the map never disagrees with the built fabric and costs no memory
 * proportional to fleet size.
 */
#pragma once

#include <vector>

namespace ccsim::fault {

/** Hierarchy levels, smallest blast radius first. */
enum class DomainLevel { kHost, kRack, kPod, kSpine };

/** Human-readable level name (for timelines and logs). */
const char *domainLevelName(DomainLevel level);

/**
 * Pure-arithmetic mapping between global host indices and their
 * enclosing failure domains. Rack ids are global
 * (pod * racksPerPod + rack-in-pod), matching host-index order.
 */
class FailureDomainMap
{
  public:
    FailureDomainMap() = default;

    /** From raw geometry; every dimension must be >= 1. */
    FailureDomainMap(int hosts_per_rack, int racks_per_pod, int pods);

    int hosts() const { return hostCount; }
    int racks() const { return rackCount; }
    int pods() const { return podCount; }
    int hostsPerRack() const { return perRack; }
    int racksPerPod() const { return perPod; }

    /** Global rack id of a host. */
    int rackOf(int host) const;

    /** Pod of a host. */
    int podOf(int host) const;

    /** Pod containing a global rack id. */
    int podOfRack(int rack) const;

    /** A rack's index within its pod. */
    int rackIndexInPod(int rack) const;

    /** Global rack id from (pod, rack-in-pod). */
    int rackId(int pod, int rack_in_pod) const;

    /** Host indices of one rack, ascending. */
    std::vector<int> rackHosts(int rack) const;

    /** Host indices of one pod, ascending. */
    std::vector<int> podHosts(int pod) const;

  private:
    int perRack = 0;
    int perPod = 0;
    int podCount = 0;
    int rackCount = 0;
    int hostCount = 0;

    void checkHost(int host) const;
    void checkRack(int rack) const;
    void checkPod(int pod) const;
};

}  // namespace ccsim::fault
