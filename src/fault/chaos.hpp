/**
 * @file
 * Deterministic chaos-campaign engine for correlated-failure drills.
 *
 * A chaos scenario is a declarative script of named phases: timed
 * phases fire at fixed simulated times ("at t=2ms, kill rack 3 of
 * pod 7"), triggered phases fire once a condition holds ("when the SLO
 * burn alert fires, drain the pod"). The ChaosEngine executes the
 * script on either kernel:
 *
 *  - legacy EventQueue: phases are plain events; triggered conditions
 *    are polled on a fixed period, so evaluation times — and therefore
 *    the whole campaign — are deterministic for a given seed.
 *  - ShardedEventQueue: the engine runs as a barrier hook. Phases fire
 *    between windows, when every partition is quiescent, so injections
 *    (which may touch any pod, materialize flyweight stubs, or fold the
 *    fluid model) are race-free and byte-identical on any worker count.
 *
 * The engine is also the campaign's conductor: it pumps rate-limited
 * lease migrations for managed ServiceManagers (whose own
 * event-scheduling self-pump is legacy-only), folds the fluid traffic
 * model before each injection so flow integrals split exactly at the
 * fault boundary, and emits `{"type":"chaos",...}` JSONL markers into a
 * TimeSeriesHub — injected-phase and detected-conviction markers land
 * in the same stream as the SLO alerts, so ccsim_report can overlay
 * fault-injection against detection on one timeline.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace ccsim::sim {
class ShardedEventQueue;
}
namespace ccsim::obs {
class TimeSeriesHub;
class Observability;
}
namespace ccsim::haas {
class ServiceManager;
class HealthMonitor;
}
namespace ccsim::net {
class FluidTrafficModel;
}

namespace ccsim::fault {

/** One scripted step of a chaos campaign. */
struct ChaosPhase {
    std::string name;
    /** Fire time (timed) or earliest evaluation time (triggered). */
    sim::TimePs at = 0;
    /** Trigger predicate; null means a plain timed phase. */
    std::function<bool()> when;
    std::function<void()> action;
    bool fired = false;
};

/** Declarative campaign script (ordered list of phases). */
class ChaosScenario
{
  public:
    /** Fire @p action at exactly @p at. */
    ChaosScenario &withPhase(std::string name, sim::TimePs at,
                             std::function<void()> action)
    {
        ChaosPhase p;
        p.name = std::move(name);
        p.at = at;
        p.action = std::move(action);
        list.push_back(std::move(p));
        return *this;
    }

    /**
     * Fire @p action at the first evaluation point (poll tick / barrier)
     * at or after @p earliest_at where @p when returns true.
     */
    ChaosScenario &withTriggeredPhase(std::string name,
                                      sim::TimePs earliest_at,
                                      std::function<bool()> when,
                                      std::function<void()> action)
    {
        ChaosPhase p;
        p.name = std::move(name);
        p.at = earliest_at;
        p.when = std::move(when);
        p.action = std::move(action);
        list.push_back(std::move(p));
        return *this;
    }

    const std::vector<ChaosPhase> &phases() const { return list; }

  private:
    std::vector<ChaosPhase> list;
};

/** Executes a ChaosScenario deterministically on either kernel. */
class ChaosEngine
{
  public:
    /** Legacy kernel: phases and polls are ordinary events. */
    ChaosEngine(sim::EventQueue &eq, ChaosScenario scenario);
    /** Parallel kernel: the engine runs as a barrier hook. */
    ChaosEngine(sim::ShardedEventQueue &sq, ChaosScenario scenario);

    ChaosEngine(const ChaosEngine &) = delete;
    ChaosEngine &operator=(const ChaosEngine &) = delete;

    /** Emit chaos markers into @p hub 's JSONL stream (may be null). */
    void setMarkerHub(obs::TimeSeriesHub *hub) { markerHub = hub; }

    /**
     * Fold @p fm before every phase fires, so fluid integrals split
     * exactly at the injection boundary (may be null).
     */
    void setFluidModel(net::FluidTrafficModel *fm) { fluid = fm; }

    /** Evaluation period for triggered phases (and conviction markers). */
    void setPollPeriod(sim::TimePs p);

    /**
     * Pump @p sm 's rate-limited migration queue at every evaluation
     * point; its next-due time bounds the engine's deadline. Required on
     * the sharded kernel (pair with setMigrationPolicy(gap, false)).
     */
    void manageService(haas::ServiceManager *sm);

    /**
     * Watch @p hm for new domain convictions and emit a "detected"
     * chaos marker for each (at poll granularity).
     */
    void watchHealth(haas::HealthMonitor *hm);

    /** Arm the campaign (call once, after wiring). */
    void start();

    // --- introspection ---

    std::uint64_t phasesFired() const { return statFired; }
    bool done() const { return statFired == phases.size(); }
    /** Names of fired phases, in firing order. */
    const std::vector<std::string> &firedPhases() const
    {
        return firedNames;
    }

    /**
     * Export campaign progress under `chaos.*`: scripted/fired phase
     * counts. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o);

  private:
    sim::EventQueue *queue = nullptr;
    sim::ShardedEventQueue *sq = nullptr;
    std::vector<ChaosPhase> phases;
    sim::TimePs pollPeriod = 100 * sim::kMicrosecond;
    obs::TimeSeriesHub *markerHub = nullptr;
    net::FluidTrafficModel *fluid = nullptr;
    std::vector<haas::ServiceManager *> managed;
    std::vector<haas::HealthMonitor *> watchedHealth;
    std::vector<std::uint64_t> lastConvictions;  // parallel to above
    std::vector<std::string> firedNames;
    bool started = false;
    bool tickScheduled = false;
    std::uint64_t statFired = 0;

    sim::TimePs tnow() const;
    /** One evaluation: fire due phases, pump, mark; returns next due. */
    sim::TimePs step(sim::TimePs e);
    void firePhase(ChaosPhase &p);
    void checkConvictions();
    void emitMarker(const std::string &phase, const char *kind);
    void scheduleTick(sim::TimePs at);
};

}  // namespace ccsim::fault
