#include "fault/chaos.hpp"

#include <algorithm>
#include <sstream>

#include "haas/haas.hpp"
#include "haas/health_monitor.hpp"
#include "net/fluid.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "sim/logging.hpp"
#include "sim/sharded_queue.hpp"

namespace ccsim::fault {

ChaosEngine::ChaosEngine(sim::EventQueue &eq, ChaosScenario scenario)
    : queue(&eq), phases(scenario.phases().begin(), scenario.phases().end())
{
}

ChaosEngine::ChaosEngine(sim::ShardedEventQueue &squeue,
                         ChaosScenario scenario)
    : sq(&squeue),
      phases(scenario.phases().begin(), scenario.phases().end())
{
}

void
ChaosEngine::setPollPeriod(sim::TimePs p)
{
    if (p <= 0)
        sim::fatal("ChaosEngine::setPollPeriod: period must be positive");
    pollPeriod = p;
}

void
ChaosEngine::manageService(haas::ServiceManager *sm)
{
    if (sm != nullptr)
        managed.push_back(sm);
}

void
ChaosEngine::watchHealth(haas::HealthMonitor *hm)
{
    if (hm == nullptr)
        return;
    watchedHealth.push_back(hm);
    lastConvictions.push_back(hm->domainConvictions());
}

sim::TimePs
ChaosEngine::tnow() const
{
    return sq != nullptr ? sq->now() : queue->now();
}

void
ChaosEngine::start()
{
    if (started)
        return;
    started = true;
    if (phases.empty() && managed.empty() && watchedHealth.empty())
        return;
    sim::TimePs first = sim::kTimeNever;
    for (const ChaosPhase &p : phases)
        first = std::min(first, p.at);
    if (!watchedHealth.empty() || !managed.empty())
        first = std::min(first, tnow() + pollPeriod);
    if (sq != nullptr) {
        sq->atBarrier([this](sim::TimePs e) { return step(e); }, first);
        return;
    }
    if (first != sim::kTimeNever)
        scheduleTick(first);
}

void
ChaosEngine::scheduleTick(sim::TimePs at)
{
    if (tickScheduled)
        return;
    tickScheduled = true;
    queue->schedule(std::max(at, queue->now()), [this] {
        tickScheduled = false;
        const sim::TimePs next = step(queue->now());
        if (next != sim::kTimeNever)
            scheduleTick(next);
    });
}

sim::TimePs
ChaosEngine::step(sim::TimePs e)
{
    // Fire due phases in declaration order: timed phases whose time has
    // come, triggered phases whose predicate holds at this evaluation.
    for (ChaosPhase &p : phases) {
        if (p.fired || e < p.at)
            continue;
        if (p.when && !p.when())
            continue;
        firePhase(p);
    }
    checkConvictions();

    sim::TimePs next = sim::kTimeNever;
    for (const ChaosPhase &p : phases) {
        if (p.fired)
            continue;
        // A pending trigger is re-evaluated every pollPeriod once its
        // earliest time has passed; a timed phase is exact.
        if (p.when)
            next = std::min(next, p.at > e ? p.at : e + pollPeriod);
        else
            next = std::min(next, p.at);
    }
    for (haas::ServiceManager *sm : managed)
        next = std::min(next, sm->pumpMigrations());
    // Conviction markers (and trigger predicates watching detections)
    // need a heartbeat while detectors are still working.
    if (!watchedHealth.empty() && !done())
        next = std::min(next, e + pollPeriod);
    return next;
}

void
ChaosEngine::firePhase(ChaosPhase &p)
{
    // Settle fluid integrals first so every flow's accrual splits
    // exactly at the injection boundary (stall detection is poll-based).
    if (fluid != nullptr)
        fluid->foldAll();
    p.fired = true;
    ++statFired;
    firedNames.push_back(p.name);
    CCSIM_LOG(sim::LogLevel::kWarn, "fault.chaos", tnow(), "phase \"",
              p.name, "\" firing (", statFired, "/", phases.size(), ")");
    emitMarker(p.name, "injected");
    if (p.action)
        p.action();
}

void
ChaosEngine::checkConvictions()
{
    for (std::size_t i = 0; i < watchedHealth.size(); ++i) {
        const std::uint64_t now = watchedHealth[i]->domainConvictions();
        for (std::uint64_t c = lastConvictions[i]; c < now; ++c)
            emitMarker("domain-conviction", "detected");
        lastConvictions[i] = now;
    }
}

void
ChaosEngine::attachObservability(obs::Observability *o)
{
    if (o == nullptr)
        return;
    auto &reg = o->registry;
    reg.registerProbe("chaos.phases",
                      [this] { return double(phases.size()); });
    reg.registerProbe("chaos.phases_fired",
                      [this] { return double(statFired); });
}

void
ChaosEngine::emitMarker(const std::string &phase, const char *kind)
{
    if (markerHub == nullptr)
        return;
    std::ostringstream line;
    line << "{\"type\":\"chaos\",\"t_us\":";
    obs::detail::jsonNumber(line, sim::toMicros(tnow()));
    line << ",\"phase\":\"";
    obs::detail::jsonEscape(line, phase);
    line << "\",\"kind\":\"" << kind << "\"}";
    markerHub->exportLine(line.str());
}

}  // namespace ccsim::fault
