/**
 * @file
 * Live fault injection for a running ConfigurableCloud (Section VII).
 *
 * The paper's production story (5,760 servers x 30 days) is a story
 * about failures: hard FPGA deaths, bad cables, rolling reconfigurations
 * — and the architecture's claim is that HaaS + LTL retransmission make
 * all of them locally survivable. The FaultInjector executes scripted or
 * seeded-random fault schedules against a live simulation so that claim
 * can be demonstrated end to end:
 *
 *  - link down/up flaps (NIC<->FPGA, FPGA<->TOR, inter-switch trunks);
 *  - bursty packet corruption (CRC drops -> LTL NACK/retransmit);
 *  - FPGA hard failures (node dark + haas::ResourceManager::reportFailure,
 *    so Service Managers fail over live);
 *  - reconfiguration pauses (node dark for a window, then repaired and
 *    rejoining the pool);
 *  - switch brown-outs (drop and/or ECN storms);
 *  - correlated domain faults (see fault/failure_domain.hpp): TOR hard
 *    deaths darkening a whole rack at once, pod power events with
 *    staggered host deaths, gray L2-spine degradation (sub-percent
 *    frame loss and latency inflation that still answers heartbeats),
 *    and rolling per-rack maintenance drains.
 *
 * Every fault and recovery is observable under `fault.*` in the cloud's
 * obs::Observability hub, and — all randomness coming from one seeded
 * sim::Rng — schedules are deterministic per seed: same seed, byte-
 * identical metric snapshots.
 *
 * On a sharded cloud the injector is constructed with the
 * ShardedEventQueue: every injection and recovery is then executed at a
 * conservative-sync barrier (requestBarrier() pins a window end to the
 * exact injection time), so sharded runs stay byte-identical across
 * worker counts. The only modes that stay legacy-only are corruption
 * bursts and graceful reconfigs, whose shared-RNG fault hooks /
 * quiesce callbacks would race across partitions.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "fault/failure_domain.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace ccsim::sim {
class ShardedEventQueue;
}

namespace ccsim::fault {

/** The kinds of fault the injector can apply. */
enum class FaultKind {
    kHostLinkFlap,     ///< FPGA<->TOR cable down for `duration`
    kNicLinkFlap,      ///< NIC<->FPGA cable down for `duration`
    kTrunkLinkFlap,    ///< inter-switch trunk cable down for `duration`
    kCorruptionBurst,  ///< host-link CRC drops with prob `rate`
    kFpgaHardFail,     ///< permanent: node dark + RM failure report
    kReconfigPause,    ///< node dark for `duration`, then repair + rejoin
    kSwitchBrownout,   ///< TOR drop/ECN storm for `duration`
    /**
     * Planned reconfiguration done right: the node's LTL engine is
     * quiesced (drain, then reject) before the node goes dark for
     * `duration`, and LTL admission reopens on rejoin. Contrast with
     * kReconfigPause, which yanks the node mid-traffic.
     */
    kGracefulReconfig,
    /**
     * TOR switch hard death: every host link in the rack goes dark
     * simultaneously and the rack's uplink trunks are cut. `duration`
     * 0 = permanent (until repairTor()).
     */
    kTorFail,
    /** Pod power event: hosts die `stagger` apart, out for `duration`. */
    kPodPowerEvent,
    /**
     * Gray L2-spine degradation: every trunk through spine `l2Index`
     * drops frames with probability `rate` and/or inflates latency by
     * `extraLatency` — while the hosts behind it still answer
     * heartbeats. `duration` 0 = until graySpineClear().
     */
    kGraySpineDegrade,
    /**
     * Rolling maintenance: the pod's racks are drained one after
     * another, each dark for `duration`, starts `stagger` apart.
     */
    kRollingMaintenance,
};

/** Human-readable kind name (for timelines and logs). */
const char *faultKindName(FaultKind kind);

/** One scripted fault. */
struct FaultEvent {
    FaultKind kind = FaultKind::kHostLinkFlap;
    /** Absolute injection time. */
    sim::TimePs at = 0;
    /** Outage window (ignored for kFpgaHardFail). */
    sim::TimePs duration = 0;
    /** Target host (all kinds except trunk flaps / brownouts). */
    int host = -1;
    /** Target trunk cable (kTrunkLinkFlap). */
    int trunkIndex = -1;
    /** Target TOR (kSwitchBrownout, kTorFail) / pod (pod-level kinds). */
    int pod = 0;
    int rack = 0;
    /** Target L2 spine switch (kGraySpineDegrade). */
    int l2Index = 0;
    /** Corruption / brownout / gray-spine drop probability. */
    double rate = 0.0;
    /** Mark every ECN-capable packet during a brownout. */
    bool ecnStorm = false;
    /** Per-host / per-rack start offset (kPodPowerEvent, kRolling...). */
    sim::TimePs stagger = 0;
    /** Gray-spine latency inflation per trunk hop. */
    sim::TimePs extraLatency = 0;
};

/**
 * Fault-schedule configuration: a scripted event list, plus an optional
 * seeded-random background of host-link flaps and corruption bursts.
 * Fields can be set directly or through the fluent with*() setters; the
 * FaultInjector validates the result at construction.
 */
struct FaultConfig {
    /** Seed for the injector's RNG (random schedules + corruption). */
    std::uint64_t seed = 1;

    /** Scripted faults, executed at their absolute times. */
    std::vector<FaultEvent> schedule;

    /** Random host-link flaps: mean arrivals per simulated second. */
    double randomFlapsPerSec = 0.0;
    /** Outage window of each random flap. */
    sim::TimePs randomFlapDuration = 200 * sim::kMicrosecond;

    /** Random corruption bursts: mean arrivals per simulated second. */
    double randomBurstsPerSec = 0.0;
    /** Per-packet drop probability during a random burst. */
    double randomBurstRate = 0.01;
    /** Length of each random burst. */
    sim::TimePs randomBurstDuration = 500 * sim::kMicrosecond;

    /** Horizon up to which random faults are generated at arm() time. */
    sim::TimePs randomHorizon = 0;

    /**
     * Report failures/repairs to the Resource Manager from inside the
     * injector (the pre-health-monitor behaviour, and the default).
     * Set false when a haas::HealthMonitor is attached: the injector
     * then only manipulates the hardware state, and detection/repair
     * must come from the monitor — the configuration every
     * detection-latency experiment wants.
     */
    bool selfReport = true;

    // --- fluent setters ---

    FaultConfig &withSeed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }
    FaultConfig &withEvent(FaultEvent e)
    {
        schedule.push_back(e);
        return *this;
    }
    FaultConfig &withHostLinkFlap(sim::TimePs at, int host,
                                  sim::TimePs down_for)
    {
        FaultEvent e;
        e.kind = FaultKind::kHostLinkFlap;
        e.at = at;
        e.host = host;
        e.duration = down_for;
        return withEvent(e);
    }
    FaultConfig &withNicLinkFlap(sim::TimePs at, int host,
                                 sim::TimePs down_for)
    {
        FaultEvent e;
        e.kind = FaultKind::kNicLinkFlap;
        e.at = at;
        e.host = host;
        e.duration = down_for;
        return withEvent(e);
    }
    FaultConfig &withTrunkLinkFlap(sim::TimePs at, int trunk,
                                   sim::TimePs down_for)
    {
        FaultEvent e;
        e.kind = FaultKind::kTrunkLinkFlap;
        e.at = at;
        e.trunkIndex = trunk;
        e.duration = down_for;
        return withEvent(e);
    }
    FaultConfig &withCorruptionBurst(sim::TimePs at, int host, double prob,
                                     sim::TimePs duration)
    {
        FaultEvent e;
        e.kind = FaultKind::kCorruptionBurst;
        e.at = at;
        e.host = host;
        e.rate = prob;
        e.duration = duration;
        return withEvent(e);
    }
    FaultConfig &withFpgaHardFail(sim::TimePs at, int host)
    {
        FaultEvent e;
        e.kind = FaultKind::kFpgaHardFail;
        e.at = at;
        e.host = host;
        return withEvent(e);
    }
    FaultConfig &withReconfigPause(sim::TimePs at, int host,
                                   sim::TimePs window)
    {
        FaultEvent e;
        e.kind = FaultKind::kReconfigPause;
        e.at = at;
        e.host = host;
        e.duration = window;
        return withEvent(e);
    }
    FaultConfig &withGracefulReconfig(sim::TimePs at, int host,
                                      sim::TimePs window)
    {
        FaultEvent e;
        e.kind = FaultKind::kGracefulReconfig;
        e.at = at;
        e.host = host;
        e.duration = window;
        return withEvent(e);
    }
    FaultConfig &withSelfReport(bool report)
    {
        selfReport = report;
        return *this;
    }
    FaultConfig &withSwitchBrownout(sim::TimePs at, int pod, int rack,
                                    double drop_prob, bool ecn_storm,
                                    sim::TimePs duration)
    {
        FaultEvent e;
        e.kind = FaultKind::kSwitchBrownout;
        e.at = at;
        e.pod = pod;
        e.rack = rack;
        e.rate = drop_prob;
        e.ecnStorm = ecn_storm;
        e.duration = duration;
        return withEvent(e);
    }
    FaultConfig &withTorFail(sim::TimePs at, int pod, int rack,
                             sim::TimePs duration = 0)
    {
        FaultEvent e;
        e.kind = FaultKind::kTorFail;
        e.at = at;
        e.pod = pod;
        e.rack = rack;
        e.duration = duration;
        return withEvent(e);
    }
    FaultConfig &withPodPowerEvent(sim::TimePs at, int pod,
                                   sim::TimePs stagger, sim::TimePs outage)
    {
        FaultEvent e;
        e.kind = FaultKind::kPodPowerEvent;
        e.at = at;
        e.pod = pod;
        e.stagger = stagger;
        e.duration = outage;
        return withEvent(e);
    }
    FaultConfig &withGraySpine(sim::TimePs at, int l2_index,
                               double drop_prob, sim::TimePs extra_latency,
                               sim::TimePs duration = 0)
    {
        FaultEvent e;
        e.kind = FaultKind::kGraySpineDegrade;
        e.at = at;
        e.l2Index = l2_index;
        e.rate = drop_prob;
        e.extraLatency = extra_latency;
        e.duration = duration;
        return withEvent(e);
    }
    FaultConfig &withRollingMaintenance(sim::TimePs at, int pod,
                                        sim::TimePs window,
                                        sim::TimePs stagger)
    {
        FaultEvent e;
        e.kind = FaultKind::kRollingMaintenance;
        e.at = at;
        e.pod = pod;
        e.duration = window;
        e.stagger = stagger;
        return withEvent(e);
    }
    FaultConfig &withRandomFlaps(double per_sec, sim::TimePs down_for)
    {
        randomFlapsPerSec = per_sec;
        randomFlapDuration = down_for;
        return *this;
    }
    FaultConfig &withRandomBursts(double per_sec, double prob,
                                  sim::TimePs duration)
    {
        randomBurstsPerSec = per_sec;
        randomBurstRate = prob;
        randomBurstDuration = duration;
        return *this;
    }
    FaultConfig &withRandomHorizon(sim::TimePs horizon)
    {
        randomHorizon = horizon;
        return *this;
    }
};

/**
 * Executes a FaultConfig against a running ConfigurableCloud via the
 * EventQueue. One injector per cloud (enforced through the cloud's
 * fault-injector slot); destroy the injector to free the slot.
 *
 * The imperative API (flapHostLink() etc.) can also be called directly —
 * scripted schedules go through exactly these entry points.
 *
 * The injector must outlive the simulation run: scheduled faults and
 * their recovery actions capture it.
 */
class FaultInjector
{
  public:
    FaultInjector(sim::EventQueue &eq, core::ConfigurableCloud &cloud,
                  FaultConfig cfg = {});
    /**
     * Sharded-cloud injector: injections and recoveries execute at
     * conservative-sync barriers (the kernel is asked for a window end
     * at each exact injection time via requestBarrier()), keeping runs
     * byte-identical across worker counts. Corruption bursts and
     * graceful reconfigs are rejected in this mode.
     */
    FaultInjector(sim::ShardedEventQueue &sq, core::ConfigurableCloud &cloud,
                  FaultConfig cfg = {});
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Schedule the scripted events, plus the seeded-random background up
     * to randomHorizon. Call once; the events then fire as simulated
     * time passes.
     */
    void arm();

    // --- imperative fault API ---

    /** Cut the host's FPGA<->TOR cable for @p down_for. */
    void flapHostLink(int host, sim::TimePs down_for);
    /** Cut the host's NIC<->FPGA cable for @p down_for. */
    void flapNicLink(int host, sim::TimePs down_for);
    /** Cut an inter-switch trunk cable for @p down_for. */
    void flapTrunkLink(int index, sim::TimePs down_for);
    /**
     * Corrupt packets on the host's FPGA<->TOR cable (both directions)
     * with probability @p drop_prob for @p duration. Corrupted frames
     * fail CRC at the receiving MAC; LTL recovers via NACK/retransmit.
     */
    void corruptionBurst(int host, double drop_prob, sim::TimePs duration);
    /**
     * Hard-fail a node: bridge and host link go dark permanently and the
     * failure is reported to the Resource Manager (Service Managers fail
     * over through their subscription). Idempotent per node.
     */
    void failFpga(int host);
    /** Repair a hard-failed node: links restored, RM repair (rejoin). */
    void repairFpga(int host);
    /**
     * Reconfiguration pause: the node goes dark (and is reported failed)
     * for @p window, then is repaired and rejoins the pool.
     */
    void reconfigPause(int host, sim::TimePs window);
    /**
     * Graceful reconfiguration: quiesce the node's LTL engine (drain,
     * then administratively reject stragglers), then dark for @p window,
     * then restore links + LTL admission. With selfReport the RM is
     * told at cut and rejoin; without, detection is the health
     * monitor's job.
     */
    void gracefulReconfig(int host, sim::TimePs window);
    /** Drop/ECN storm on a TOR for @p duration. */
    void switchBrownout(int pod, int rack, double drop_prob, bool ecn_storm,
                        sim::TimePs duration);

    // --- correlated domain faults ---

    /**
     * TOR switch hard death: every host in rack (pod, rack) goes dark
     * at once — host links held in ascending host order, materializing
     * lazy stubs first — and the rack's TOR<->L1 uplinks are cut, so
     * fluid flows through the rack stall. Idempotent per rack; the
     * injector owns the rack's uplinks until repairTor().
     */
    void failTor(int pod, int rack);
    /** Repair a dead TOR: uplinks restored, hosts released/rejoined. */
    void repairTor(int pod, int rack);
    /**
     * Pod power event: the pod's hosts die in ascending order,
     * @p stagger apart, each out (dark + bridge down) for @p outage.
     */
    void podPowerEvent(int pod, sim::TimePs stagger, sim::TimePs outage);
    /**
     * Gray degradation of L2 spine @p l2_index: every L1<->L2 trunk
     * through it drops frames with probability @p drop_prob and adds
     * @p extra_latency of propagation — but no link goes admin-down, so
     * the hosts behind it still answer heartbeats. Loss draws come from
     * a dedicated per-channel RNG (seeded from cfg.seed and the trunk
     * coordinates), so sharded runs stay deterministic. Lasts until
     * graySpineClear().
     */
    void graySpineDegrade(int l2_index, double drop_prob,
                          sim::TimePs extra_latency);
    /** Clear a gray spine: hooks and latency inflation removed. */
    void graySpineClear(int l2_index);
    /**
     * Rolling maintenance over a pod: racks drain one at a time in
     * ascending order, each dark for @p window, starts @p stagger
     * apart (stagger >= window means at most one rack down at once).
     */
    void rollingMaintenance(int pod, sim::TimePs window, sim::TimePs stagger);

    // --- introspection ---

    /** Faults injected so far (scripted + random + imperative). */
    std::uint64_t injected() const { return statInjected; }
    /** Recovery actions completed (links restored, nodes repaired). */
    std::uint64_t recovered() const { return statRecovered; }
    /** True while @p host is dark due to at least one active fault. */
    bool nodeDown(int host) const;
    /** Cumulative dark time of @p host (including any ongoing outage). */
    sim::TimePs downtime(int host) const;

    /** The fabric's failure-domain hierarchy. */
    const FailureDomainMap &domains() const { return domainMap; }
    /** True while the TOR of rack (pod, rack) is hard-failed. */
    bool torFailed(int pod, int rack) const;
    std::uint64_t torFails() const { return statTorFails; }
    std::uint64_t podPowerEvents() const { return statPodEvents; }
    std::uint64_t grayFaults() const { return statGrayFaults; }
    std::uint64_t maintenanceDrains() const { return statMaintenance; }
    /** Correlated domain-level faults injected (all four kinds). */
    std::uint64_t domainFaults() const { return statDomainFaults; }

    /** Barrier time on a sharded cloud, event time on a legacy one. */
    sim::TimePs nowPs() const;

    const FaultConfig &config() const { return cfg; }

  private:
    sim::EventQueue &queue;
    core::ConfigurableCloud &cloud;
    FaultConfig cfg;
    sim::Rng rng;
    sim::ShardedEventQueue *sq = nullptr;
    FailureDomainMap domainMap;
    bool armed = false;

    /** Nesting depth of active host-link outages per host. */
    std::map<int, int> darkDepth;
    std::map<int, sim::TimePs> downSince;
    std::map<int, sim::TimePs> downAccum;
    std::map<int, bool> hardFailed;
    std::map<int, int> nicDepth;
    std::map<int, int> trunkDepth;
    /** Generation counter per host so nested bursts end last-wins. */
    std::map<int, std::uint64_t> burstGen;
    /** Racks (global id) whose TOR is currently hard-failed. */
    std::map<int, bool> torDead;
    /** L2 spines currently gray-degraded. */
    std::map<int, bool> grayActive;
    /**
     * Barrier-scheduled actions (sharded mode): drained at each barrier
     * in (time, insertion) order — a total order independent of worker
     * count. Every insert also pins a window end at the action's time.
     */
    std::multimap<sim::TimePs, std::function<void()>> pending;

    obs::Observability *obsHub = nullptr;
    int obsTrack = 0;

    std::uint64_t statInjected = 0;
    std::uint64_t statRecovered = 0;
    std::uint64_t statLinkFlaps = 0;
    std::uint64_t statBursts = 0;
    std::uint64_t statHardFails = 0;
    std::uint64_t statReconfigs = 0;
    std::uint64_t statGraceful = 0;
    std::uint64_t statBrownouts = 0;
    std::uint64_t statTorFails = 0;
    std::uint64_t statPodEvents = 0;
    std::uint64_t statGrayFaults = 0;
    std::uint64_t statMaintenance = 0;
    std::uint64_t statDomainFaults = 0;

    void validate() const;
    void validateEvent(const FaultEvent &e) const;
    void execute(const FaultEvent &e);
    void scheduleRandom();
    /**
     * Run @p fn at @p when: directly on the event queue (legacy), or at
     * the conservative-sync barrier whose window ends at @p when
     * (sharded; clamped to the next picosecond if already past).
     */
    void scheduleAction(sim::TimePs when, std::function<void()> fn);
    /** Barrier hook: execute due actions, return the next due time. */
    sim::TimePs drainPending(sim::TimePs e);
    /** Fatal if this injector drives a sharded cloud. */
    void requireLegacy(const char *what) const;
    void holdHostLink(int host);
    void releaseHostLink(int host);
    /** Install/remove gray degradation on one trunk channel. */
    void applyGray(net::Channel &ch, double drop_prob, std::uint64_t seed,
                   sim::TimePs extra);
    void attachObservability();
    void traceInstant(const std::string &name);
};

}  // namespace ccsim::fault
