/**
 * @file
 * The latency-sensitive DNN accelerator role used in the oversubscription
 * study (Section V-E, Figure 12), including a real (small) MLP so the
 * accelerator computes genuine inferences when inputs are supplied.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fpga/role.hpp"
#include "fpga/shell.hpp"
#include "sim/random.hpp"

namespace ccsim::roles {

/** A dense multi-layer perceptron with ReLU hidden activations. */
class Mlp
{
  public:
    /**
     * @param layer_sizes e.g. {64, 128, 64, 10}.
     * @param seed        Weight initialization seed.
     */
    explicit Mlp(std::vector<int> layer_sizes = {64, 128, 64, 10},
                 std::uint64_t seed = 31);

    /** Run inference. @pre input.size() == inputSize(). */
    std::vector<float> infer(const std::vector<float> &input) const;

    int inputSize() const { return sizes.front(); }
    int outputSize() const { return sizes.back(); }
    /** Multiply-accumulate count per inference (for throughput checks). */
    std::uint64_t macsPerInference() const;

  private:
    std::vector<int> sizes;
    /** weights[l] is a (sizes[l+1] x sizes[l]) row-major matrix. */
    std::vector<std::vector<float>> weights;
    std::vector<std::vector<float>> biases;
};

/** A DNN inference request. */
struct DnnRequest {
    std::uint64_t requestId = 0;
    int clientId = 0;
    /** Reply over LTL using this send connection on the serving shell,
     *  or over PCIe when replyViaPcie is set. */
    bool replyViaPcie = false;
    std::uint16_t replyConn = 0;
    /** Optional real input; when set, the role computes a real inference. */
    std::shared_ptr<std::vector<float>> input;
};

/** The response. */
struct DnnResponse {
    std::uint64_t requestId = 0;
    int clientId = 0;
    std::shared_ptr<std::vector<float>> output;
};

/** Role parameters. */
struct DnnRoleParams {
    /**
     * Deterministic service time per inference. With synthetic clients
     * driving 7.5x the expected production per-client rate, a 444 us
     * service time yields saturation at 3.0 clients/FPGA as in Figure 12
     * (equivalently: 22.5 clients at production rates).
     */
    sim::TimePs serviceTime = 444 * sim::kMicrosecond;
    std::uint32_t responseBytes = 128;
    std::uint32_t alms = 65000;
};

/** The DNN accelerator role. */
class DnnRole : public fpga::Role
{
  public:
    explicit DnnRole(sim::EventQueue &eq, DnnRoleParams p = {});

    std::string name() const override { return "dnn-accelerator"; }
    std::uint32_t areaAlms() const override { return params.alms; }
    void attach(fpga::Shell &shell, int er_port) override;
    void onMessage(const router::ErMessagePtr &msg) override;

    std::uint64_t requestsServed() const { return statServed; }
    /** Requests currently queued or in service. */
    std::uint64_t queueDepth() const { return inService; }
    const Mlp &network() const { return mlp; }

  private:
    sim::EventQueue &queue;
    DnnRoleParams params;
    fpga::Shell *shell = nullptr;
    int erPort = -1;
    sim::TimePs busyUntil = 0;
    std::uint64_t statServed = 0;
    std::uint64_t inService = 0;
    Mlp mlp;
};

}  // namespace ccsim::roles
