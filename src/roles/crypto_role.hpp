/**
 * @file
 * Host-to-host line-rate flow encryption in the bump-in-the-wire tap
 * (Section IV).
 *
 * Software sets up per-flow keys; afterwards, every matching packet is
 * transparently encrypted on its way from the NIC to the TOR and
 * decrypted on the way in — software sees plaintext at both endpoints and
 * spends zero CPU cycles on crypto. When packets carry real payload
 * bytes, this role performs the actual AES-CBC-128 + HMAC-SHA1 or
 * AES-GCM-128 transformation (verified by tests); the added datapath
 * latency comes from the FpgaCryptoModel (e.g. the 33-packet CBC
 * interleave that makes a 1500 B packet cost 11 us).
 */
#pragma once

#include <cstdint>
#include <unordered_map>

#include "crypto/aes.hpp"
#include "crypto/crypto_timing.hpp"
#include "crypto/sha1.hpp"
#include "fpga/role.hpp"
#include "fpga/shell.hpp"
#include "net/packet.hpp"

namespace ccsim::roles {

/** 5-tuple identifying an encrypted flow. */
struct FlowKey {
    net::Ipv4Addr src;
    net::Ipv4Addr dst;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint8_t proto = 17;

    bool operator==(const FlowKey &) const = default;
};

struct FlowKeyHash {
    std::size_t operator()(const FlowKey &k) const noexcept
    {
        std::uint64_t h = static_cast<std::uint64_t>(k.src.value) << 32 |
                          k.dst.value;
        h ^= (static_cast<std::uint64_t>(k.srcPort) << 24) ^
             (static_cast<std::uint64_t>(k.dstPort) << 8) ^ k.proto;
        h *= 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h ^ (h >> 32));
    }
};

/** Where a flow's key material lives (paper: FPGA SRAM or board DRAM). */
enum class KeyStore {
    kSram,  ///< on-chip: zero extra fetch latency
    kDram,  ///< board DRAM: adds one access latency per packet
};

/** Crypto role parameters. */
struct CryptoRoleParams {
    crypto::Suite suite = crypto::Suite::kAesCbc128Sha1;
    KeyStore keyStore = KeyStore::kSram;
    crypto::FpgaCryptoModel timing;
    std::uint32_t alms = 32000;
};

/** The network-encryption role. */
class CryptoRole : public fpga::Role
{
  public:
    explicit CryptoRole(sim::EventQueue &eq, CryptoRoleParams p = {});

    std::string name() const override { return "flow-crypto"; }
    std::uint32_t areaAlms() const override { return params.alms; }
    void attach(fpga::Shell &shell, int er_port) override;
    void onMessage(const router::ErMessagePtr &msg) override;

    /**
     * Software control plane: encrypt packets of @p flow leaving this
     * host (NIC -> TOR direction) with @p key.
     */
    void addEncryptFlow(const FlowKey &flow, const crypto::Key128 &key);

    /** Decrypt packets of @p flow arriving from the network. */
    void addDecryptFlow(const FlowKey &flow, const crypto::Key128 &key);

    /** Tear down a flow in either table. */
    void removeFlow(const FlowKey &flow);

    std::uint64_t packetsEncrypted() const { return statEncrypted; }
    std::uint64_t packetsDecrypted() const { return statDecrypted; }
    std::uint64_t bytesProcessed() const { return statBytes; }
    std::uint64_t authFailures() const { return statAuthFailures; }

    /** Per-packet datapath latency for @p bytes under the current suite. */
    sim::TimePs packetLatency(std::uint32_t bytes) const
    {
        sim::TimePs lat = params.timing.packetLatency(params.suite, bytes);
        if (params.keyStore == KeyStore::kDram)
            lat += 200 * sim::kNanosecond;
        return lat;
    }

  private:
    struct FlowState {
        crypto::Key128 key;
        std::uint64_t packetCounter = 0;
    };

    sim::EventQueue &queue;
    CryptoRoleParams params;
    fpga::Shell *shell = nullptr;
    std::unordered_map<FlowKey, FlowState, FlowKeyHash> encryptFlows;
    std::unordered_map<FlowKey, FlowState, FlowKeyHash> decryptFlows;

    std::uint64_t statEncrypted = 0;
    std::uint64_t statDecrypted = 0;
    std::uint64_t statBytes = 0;
    std::uint64_t statAuthFailures = 0;

    fpga::TapResult onTap(fpga::Direction dir, const net::PacketPtr &pkt);
    bool encryptPacket(FlowState &flow, net::Packet &pkt);
    bool decryptPacket(FlowState &flow, net::Packet &pkt);
    static FlowKey flowOf(const net::Packet &pkt);
};

/** Control message: host software configures a flow over PCIe. */
struct CryptoFlowConfig {
    bool add = true;
    bool encrypt = true;  ///< false: decrypt direction
    FlowKey flow;
    crypto::Key128 key{};
};

}  // namespace ccsim::roles
