#include "roles/crypto_role.hpp"

#include <cstring>

#include "sim/logging.hpp"

namespace ccsim::roles {

namespace {

/** Deterministic per-packet IV from the flow counter (CBC needs 16 B). */
crypto::Block
counterIv(std::uint64_t counter)
{
    crypto::Block iv{};
    for (int i = 0; i < 8; ++i)
        iv[i] = static_cast<std::uint8_t>(counter >> (8 * i));
    // Spread the counter into the upper half too (simple expansion).
    for (int i = 8; i < 16; ++i)
        iv[i] = static_cast<std::uint8_t>((counter * 0x9E3779B9u) >> (8 * (i - 8)));
    return iv;
}

}  // namespace

CryptoRole::CryptoRole(sim::EventQueue &eq, CryptoRoleParams p)
    : queue(eq), params(p)
{
}

void
CryptoRole::attach(fpga::Shell &sh, int)
{
    shell = &sh;
    shell->setRoleTap([this](fpga::Direction d, const net::PacketPtr &pkt) {
        return onTap(d, pkt);
    });
}

void
CryptoRole::onMessage(const router::ErMessagePtr &msg)
{
    // Control plane: host software configures flows via PCIe messages.
    auto config = std::static_pointer_cast<CryptoFlowConfig>(msg->payload);
    if (!config) {
        CCSIM_LOG(sim::LogLevel::kWarn, name(), queue.now(),
                  "message without CryptoFlowConfig payload");
        return;
    }
    if (!config->add) {
        removeFlow(config->flow);
        return;
    }
    if (config->encrypt)
        addEncryptFlow(config->flow, config->key);
    else
        addDecryptFlow(config->flow, config->key);
}

void
CryptoRole::addEncryptFlow(const FlowKey &flow, const crypto::Key128 &key)
{
    encryptFlows[flow] = FlowState{key, 0};
}

void
CryptoRole::addDecryptFlow(const FlowKey &flow, const crypto::Key128 &key)
{
    decryptFlows[flow] = FlowState{key, 0};
}

void
CryptoRole::removeFlow(const FlowKey &flow)
{
    encryptFlows.erase(flow);
    decryptFlows.erase(flow);
}

FlowKey
CryptoRole::flowOf(const net::Packet &pkt)
{
    return FlowKey{pkt.ipSrc, pkt.ipDst, pkt.srcPort, pkt.dstPort,
                   static_cast<std::uint8_t>(pkt.ipProto)};
}

fpga::TapResult
CryptoRole::onTap(fpga::Direction dir, const net::PacketPtr &pkt)
{
    if (pkt->etherType != net::EtherType::kIpv4)
        return {};
    const FlowKey flow = flowOf(*pkt);
    if (dir == fpga::Direction::kFromNic) {
        auto it = encryptFlows.find(flow);
        if (it == encryptFlows.end())
            return {};
        const std::uint32_t before = pkt->payloadBytes;
        if (encryptPacket(it->second, *pkt)) {
            ++statEncrypted;
            statBytes += before;
            return fpga::TapResult{fpga::TapResult::Action::kForward,
                                   packetLatency(before)};
        }
        return {};
    }
    auto it = decryptFlows.find(flow);
    if (it == decryptFlows.end())
        return {};
    const std::uint32_t before = pkt->payloadBytes;
    if (decryptPacket(it->second, *pkt)) {
        ++statDecrypted;
        statBytes += before;
        return fpga::TapResult{fpga::TapResult::Action::kForward,
                               packetLatency(before)};
    }
    // Authentication failed: drop the packet rather than hand garbage up.
    ++statAuthFailures;
    return fpga::TapResult{fpga::TapResult::Action::kConsume, 0};
}

bool
CryptoRole::encryptPacket(FlowState &flow, net::Packet &pkt)
{
    const std::uint64_t counter = flow.packetCounter++;
    if (pkt.data.empty()) {
        // Modeled payload only: account for the on-wire expansion.
        if (params.suite == crypto::Suite::kAesCbc128Sha1) {
            const std::uint32_t padded = (pkt.payloadBytes / 16 + 1) * 16;
            pkt.payloadBytes = 16 + padded + 20;  // IV + ct + HMAC tag
        } else {
            pkt.payloadBytes += 12 + 16;  // IV + GCM tag
        }
        return true;
    }

    if (params.suite == crypto::Suite::kAesCbc128Sha1) {
        // Encrypt-then-MAC: IV || CBC(pad(data)) || HMAC-SHA1 tag.
        auto padded = crypto::pkcs7Pad(pkt.data.data(), pkt.data.size());
        const crypto::Block iv = counterIv(counter);
        crypto::AesCbc cbc(flow.key, iv);
        cbc.encrypt(padded.data(), padded.size());
        std::vector<std::uint8_t> out;
        out.reserve(16 + padded.size() + 20);
        out.insert(out.end(), iv.begin(), iv.end());
        out.insert(out.end(), padded.begin(), padded.end());
        const crypto::Sha1Digest tag = crypto::hmacSha1(
            flow.key.data(), flow.key.size(), out.data(), out.size());
        out.insert(out.end(), tag.begin(), tag.end());
        pkt.data = std::move(out);
    } else {
        // AES-GCM-128: IV(12) || ct || tag(16).
        std::uint8_t iv[12];
        for (int i = 0; i < 8; ++i)
            iv[i] = static_cast<std::uint8_t>(counter >> (8 * i));
        iv[8] = iv[9] = iv[10] = iv[11] = 0xA5;
        crypto::AesGcm gcm(flow.key);
        std::vector<std::uint8_t> ct = pkt.data;
        crypto::Block tag;
        gcm.encrypt(iv, nullptr, 0, ct.data(), ct.size(), tag);
        std::vector<std::uint8_t> out;
        out.reserve(12 + ct.size() + 16);
        out.insert(out.end(), iv, iv + 12);
        out.insert(out.end(), ct.begin(), ct.end());
        out.insert(out.end(), tag.begin(), tag.end());
        pkt.data = std::move(out);
    }
    pkt.payloadBytes = static_cast<std::uint32_t>(pkt.data.size());
    return true;
}

bool
CryptoRole::decryptPacket(FlowState &flow, net::Packet &pkt)
{
    ++flow.packetCounter;
    if (pkt.data.empty()) {
        // Modeled payload: undo the expansion (approximately).
        if (params.suite == crypto::Suite::kAesCbc128Sha1) {
            if (pkt.payloadBytes < 16 + 16 + 20)
                return false;
            pkt.payloadBytes -= 16 + 20 + 8;  // IV + tag + expected pad
        } else {
            if (pkt.payloadBytes < 12 + 16)
                return false;
            pkt.payloadBytes -= 12 + 16;
        }
        return true;
    }

    if (params.suite == crypto::Suite::kAesCbc128Sha1) {
        if (pkt.data.size() < 16 + 16 + 20)
            return false;
        const std::size_t body_len = pkt.data.size() - 20;
        const crypto::Sha1Digest expect = crypto::hmacSha1(
            flow.key.data(), flow.key.size(), pkt.data.data(), body_len);
        if (std::memcmp(expect.data(), pkt.data.data() + body_len, 20) != 0)
            return false;
        crypto::Block iv;
        std::memcpy(iv.data(), pkt.data.data(), 16);
        std::vector<std::uint8_t> ct(pkt.data.begin() + 16,
                                     pkt.data.begin() + body_len);
        crypto::AesCbc cbc(flow.key, iv);
        cbc.decrypt(ct.data(), ct.size());
        const std::size_t plain_len = crypto::pkcs7Unpad(ct.data(), ct.size());
        if (plain_len == SIZE_MAX)
            return false;
        ct.resize(plain_len);
        pkt.data = std::move(ct);
    } else {
        if (pkt.data.size() < 12 + 16)
            return false;
        std::uint8_t iv[12];
        std::memcpy(iv, pkt.data.data(), 12);
        crypto::Block tag;
        std::memcpy(tag.data(), pkt.data.data() + pkt.data.size() - 16, 16);
        std::vector<std::uint8_t> ct(pkt.data.begin() + 12,
                                     pkt.data.end() - 16);
        crypto::AesGcm gcm(flow.key);
        if (!gcm.decrypt(iv, nullptr, 0, ct.data(), ct.size(), tag))
            return false;
        pkt.data = std::move(ct);
    }
    pkt.payloadBytes = static_cast<std::uint32_t>(pkt.data.size());
    return true;
}

}  // namespace ccsim::roles
