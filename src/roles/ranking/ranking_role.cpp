#include "roles/ranking/ranking_role.hpp"

#include "sim/logging.hpp"

namespace ccsim::roles {

RankingRole::RankingRole(sim::EventQueue &eq, RankingRoleParams p)
    : queue(eq), params(p)
{
}

void
RankingRole::attach(fpga::Shell &sh, int er_port)
{
    shell = &sh;
    erPort = er_port;
}

void
RankingRole::onMessage(const router::ErMessagePtr &msg)
{
    // Requests arrive either raw (PCIe path) or wrapped in an LtlDelivery
    // (remote path).
    std::shared_ptr<RankingRequest> req;
    if (msg->srcEndpoint == fpga::kErPortLtl) {
        auto delivery =
            std::static_pointer_cast<fpga::LtlDelivery>(msg->payload);
        if (delivery && delivery->appPayload)
            req = std::static_pointer_cast<RankingRequest>(
                delivery->appPayload);
    } else {
        req = std::static_pointer_cast<RankingRequest>(msg->payload);
    }
    if (!req) {
        CCSIM_LOG(sim::LogLevel::kWarn, name(), queue.now(),
                  "message without RankingRequest payload");
        return;
    }
    serve(req);
}

void
RankingRole::serve(const std::shared_ptr<RankingRequest> &req)
{
    const sim::TimePs now = queue.now();
    const std::uint32_t docs = std::max<std::uint32_t>(req->docCount, 1);
    const sim::TimePs occupancy = params.occupancyPerDoc * docs;
    const sim::TimePs start = std::max(now, busyUntil);
    busyUntil = start + occupancy;
    busyAccum += occupancy;

    auto resp = std::make_shared<RankingResponse>();
    resp->requestId = req->requestId;
    resp->docCount = req->docCount;
    if (req->query && req->docs && !req->docs->empty()) {
        // Real feature computation: the same FFU/DPF code the software
        // reference uses (this is what the hardware datapath implements).
        const auto ranked = rankDocuments(*req->query, *req->docs, model);
        resp->topDocId = ranked.front().docId;
        resp->topScore = ranked.front().score;
    }

    queue.schedule(busyUntil + params.fixedLatency,
                   [this, req, resp = std::move(resp)]() mutable {
                       respond(req, std::move(resp));
                   });
}

void
RankingRole::respond(const std::shared_ptr<RankingRequest> &req,
                     std::shared_ptr<RankingResponse> resp)
{
    ++statServed;
    auto &endpoint = shell->roleEndpoint(erPort);
    if (req->replyVia == ReplyVia::kPcie) {
        endpoint.sendMessage(fpga::kErPortPcie, fpga::kVcResponse,
                             params.responseBytes, std::move(resp));
        return;
    }
    // Remote request: reply over LTL via the shell's LTL endpoint.
    auto ltl_req = std::make_shared<fpga::LtlSendRequest>();
    ltl_req->conn = req->replyConn;
    ltl_req->bytes = params.responseBytes;
    ltl_req->vc = fpga::kVcResponse;
    ltl_req->appPayload = std::move(resp);
    endpoint.sendMessage(fpga::kErPortLtl, fpga::kVcResponse,
                         params.responseBytes, std::move(ltl_req));
}

void
ForwarderRole::attach(fpga::Shell &sh, int er_port)
{
    shell = &sh;
    erPort = er_port;
}

void
ForwarderRole::onMessage(const router::ErMessagePtr &msg)
{
    auto &endpoint = shell->roleEndpoint(erPort);
    if (msg->srcEndpoint == fpga::kErPortLtl) {
        // Remote response arriving over LTL: hand it up to the host.
        endpoint.sendMessage(fpga::kErPortPcie, fpga::kVcResponse,
                             msg->sizeBytes, msg->payload);
        return;
    }
    // Host request to ship over LTL.
    auto fwd = std::static_pointer_cast<ForwardRequest>(msg->payload);
    if (!fwd) {
        CCSIM_LOG(sim::LogLevel::kWarn, name(), -1,
                  "message without ForwardRequest payload");
        return;
    }
    auto ltl_req = std::make_shared<fpga::LtlSendRequest>();
    ltl_req->conn = fwd->sendConn;
    ltl_req->bytes = fwd->bytes;
    ltl_req->vc = fwd->vc;
    ltl_req->appPayload = fwd->inner;
    endpoint.sendMessage(fpga::kErPortLtl, fwd->vc, fwd->bytes,
                         std::move(ltl_req));
}

RemoteRankingClient::RemoteRankingClient(sim::EventQueue &eq,
                                         fpga::Shell &sh,
                                         ForwarderRole &fw,
                                         std::uint16_t send_conn,
                                         std::uint16_t reply_conn,
                                         std::uint32_t request_bytes_per_doc)
    : queue(eq), shell(sh), forwarder(fw), sendConn(send_conn),
      replyConn(reply_conn), bytesPerDoc(request_bytes_per_doc)
{
    // Per-port registration: several clients (one per forwarder) can
    // share the shell without clobbering each other's receive path.
    shell.setHostRxHandler(
        forwarder.port(),
        [this](int role_port, const router::ErMessagePtr &msg) {
            onHostRx(role_port, msg);
        });
}

RemoteRankingClient::~RemoteRankingClient()
{
    shell.setHostRxHandler(forwarder.port(), nullptr);
}

void
RemoteRankingClient::compute(std::uint32_t doc_count,
                             std::function<void()> done)
{
    auto req = std::make_shared<RankingRequest>();
    req->requestId = nextRequestId++;
    req->docCount = doc_count;
    req->replyVia = ReplyVia::kLtl;
    req->replyConn = replyConn;
    outstanding[req->requestId] = std::move(done);

    auto fwd = std::make_shared<ForwarderRole::ForwardRequest>();
    fwd->sendConn = sendConn;
    fwd->bytes = std::max<std::uint32_t>(64, doc_count * bytesPerDoc);
    fwd->vc = fpga::kVcRequest;
    fwd->inner = std::move(req);
    const std::uint32_t bytes = fwd->bytes;
    shell.sendFromHost(forwarder.port(), bytes, std::move(fwd));
}

void
RemoteRankingClient::onHostRx(int role_port, const router::ErMessagePtr &msg)
{
    if (role_port != forwarder.port())
        return;
    std::shared_ptr<RankingResponse> resp;
    if (auto delivery =
            std::static_pointer_cast<fpga::LtlDelivery>(msg->payload);
        delivery && delivery->appPayload) {
        resp = std::static_pointer_cast<RankingResponse>(
            delivery->appPayload);
    }
    if (!resp)
        return;
    auto it = outstanding.find(resp->requestId);
    if (it == outstanding.end())
        return;
    auto done = std::move(it->second);
    outstanding.erase(it);
    ++statResponses;
    if (done)
        done();
}

}  // namespace ccsim::roles
