#include "roles/ranking/features.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/random.hpp"

namespace ccsim::roles {

int
FfuProgram::classify(host::TermId t) const
{
    for (int k = 0; k < numTerms; ++k) {
        if (terms[k] == t)
            return k + 1;
    }
    return 0;
}

FfuProgram
FfuProgram::compile(const host::Query &query)
{
    FfuProgram p;
    p.numTerms = static_cast<int>(
        std::min<std::size_t>(query.terms.size(), kMaxQueryTerms));
    p.terms.assign(query.terms.begin(), query.terms.begin() + p.numTerms);

    const int symbols = kMaxQueryTerms + 1;

    // Term-occurrence counters: one single-state machine per query term k
    // that counts every time symbol k+1 appears.
    for (int k = 0; k < p.numTerms; ++k) {
        FsmMachine m;
        m.transition.resize(1);
        m.countOn.resize(1);
        for (int s = 0; s < symbols; ++s) {
            m.transition[0][s] = 0;
            m.countOn[0][s] = (s == k + 1) ? 1 : 0;
        }
        p.machines.push_back(std::move(m));
        p.machineFeature.push_back(kFeatTermCount0 + k);
    }

    // Adjacency machines: for each adjacent query-term pair (k, k+1),
    // a two-state machine: state 1 means "just saw term k"; seeing term
    // k+1 in state 1 counts an adjacency.
    for (int k = 0; k + 1 < p.numTerms; ++k) {
        FsmMachine m;
        m.transition.resize(2);
        m.countOn.resize(2);
        for (int st = 0; st < 2; ++st) {
            for (int s = 0; s < symbols; ++s) {
                // Default: fall back to state 0 unless we see term k.
                m.transition[st][s] = (s == k + 1) ? 1 : 0;
                m.countOn[st][s] = 0;
            }
        }
        m.countOn[1][k + 2] = 1;  // saw k then k+1
        p.machines.push_back(std::move(m));
        p.machineFeature.push_back(kFeatAdjacency0 + k);
    }
    return p;
}

void
FfuProgram::run(const host::Document &doc, FeatureVector &out) const
{
    std::vector<int> counters(machines.size(), 0);
    std::vector<std::uint8_t> states(machines.size(), 0);

    int streak = 0;
    int max_streak = 0;
    std::uint32_t coverage = 0;
    int first_pos = -1;

    for (std::size_t pos = 0; pos < doc.terms.size(); ++pos) {
        const int sym = classify(doc.terms[pos]);
        for (std::size_t i = 0; i < machines.size(); ++i) {
            const FsmMachine &m = machines[i];
            const std::uint8_t st = states[i];
            counters[i] += m.countOn[st][sym];
            states[i] = m.transition[st][sym];
        }
        // Scanline features.
        if (sym > 0) {
            ++streak;
            max_streak = std::max(max_streak, streak);
            coverage |= 1u << (sym - 1);
            if (first_pos < 0)
                first_pos = static_cast<int>(pos);
        } else {
            streak = 0;
        }
    }

    const double len = std::max<std::size_t>(doc.terms.size(), 1);
    for (std::size_t i = 0; i < machines.size(); ++i)
        out[machineFeature[i]] =
            static_cast<float>(counters[i] / std::sqrt(len));
    out[kFeatMaxStreak] = static_cast<float>(max_streak);
    out[kFeatUniqueCoverage] =
        numTerms > 0
            ? static_cast<float>(std::popcount(coverage)) / numTerms
            : 0.0f;
    out[kFeatFirstPosNorm] =
        first_pos < 0 ? 1.0f : static_cast<float>(first_pos / len);
    out[kFeatDocLenNorm] = static_cast<float>(std::log1p(len) / 10.0);
}

DpfEngine::DpfEngine(const host::Query &query)
{
    const std::size_t n =
        std::min<std::size_t>(query.terms.size(), kMaxQueryTerms);
    terms.assign(query.terms.begin(), query.terms.begin() + n);
}

int
DpfEngine::alignmentScore(const std::vector<host::TermId> &q,
                          const std::vector<host::TermId> &d)
{
    if (q.empty() || d.empty())
        return 0;
    constexpr int kMatch = 2;
    constexpr int kMismatch = -1;
    constexpr int kGap = -1;
    const std::size_t m = q.size();
    std::vector<int> prev(m + 1, 0), cur(m + 1, 0);
    int best = 0;
    for (std::size_t i = 1; i <= d.size(); ++i) {
        cur[0] = 0;
        for (std::size_t j = 1; j <= m; ++j) {
            const int diag =
                prev[j - 1] + (d[i - 1] == q[j - 1] ? kMatch : kMismatch);
            const int up = prev[j] + kGap;
            const int left = cur[j - 1] + kGap;
            cur[j] = std::max({0, diag, up, left});
            best = std::max(best, cur[j]);
        }
        std::swap(prev, cur);
    }
    return best;
}

int
DpfEngine::minCoverWindow(const std::vector<host::TermId> &q,
                          const std::vector<host::TermId> &d)
{
    if (q.empty())
        return 0;
    std::vector<host::TermId> distinct(q);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    auto index_of = [&](host::TermId t) -> int {
        const auto it =
            std::lower_bound(distinct.begin(), distinct.end(), t);
        if (it == distinct.end() || *it != t)
            return -1;
        return static_cast<int>(it - distinct.begin());
    };
    std::vector<int> have(distinct.size(), 0);
    std::size_t satisfied = 0;
    std::size_t left = 0;
    int best = 0;
    for (std::size_t right = 0; right < d.size(); ++right) {
        const int k = index_of(d[right]);
        if (k >= 0 && have[k]++ == 0)
            ++satisfied;
        while (satisfied == distinct.size()) {
            const int window = static_cast<int>(right - left + 1);
            best = best == 0 ? window : std::min(best, window);
            const int lk = index_of(d[left]);
            if (lk >= 0 && --have[lk] == 0)
                --satisfied;
            ++left;
        }
    }
    return best;
}

int
DpfEngine::phraseCount(const std::vector<host::TermId> &q,
                       const std::vector<host::TermId> &d)
{
    if (q.empty() || d.size() < q.size())
        return 0;
    int count = 0;
    for (std::size_t i = 0; i + q.size() <= d.size(); ++i) {
        if (std::equal(q.begin(), q.end(), d.begin() + i))
            ++count;
    }
    return count;
}

void
DpfEngine::run(const host::Document &doc, FeatureVector &out) const
{
    const double norm = std::max<std::size_t>(terms.size(), 1) * 2.0;
    out[kFeatDpfAlignment] =
        static_cast<float>(alignmentScore(terms, doc.terms) / norm);
    const int window = minCoverWindow(terms, doc.terms);
    out[kFeatDpfMinWindow] =
        window == 0
            ? 0.0f
            : static_cast<float>(static_cast<double>(terms.size()) / window);
    out[kFeatDpfPhraseCount] =
        static_cast<float>(phraseCount(terms, doc.terms));
}

RankingModel::RankingModel(std::uint64_t seed)
{
    // Fixed pseudo-random positive-leaning weights: more matching signal
    // scores higher, long windows score lower (negative weight).
    sim::Rng rng(seed);
    for (auto &x : w)
        x = 0.2 + rng.uniform() * 0.8;
    w[kFeatFirstPosNorm] = -0.5;   // later first match is worse
    w[kFeatDocLenNorm] = -0.2;     // length prior
    bias = -2.0;
}

double
RankingModel::score(const FeatureVector &f) const
{
    double z = bias;
    for (int i = 0; i < kNumFeatures; ++i)
        z += w[i] * f[i];
    return 1.0 / (1.0 + std::exp(-z));
}

FeatureVector
computeFeatures(const host::Query &query, const host::Document &doc)
{
    FeatureVector f{};
    FfuProgram::compile(query).run(doc, f);
    DpfEngine(query).run(doc, f);
    return f;
}

std::vector<ScoredDocument>
rankDocuments(const host::Query &query,
              const std::vector<host::Document> &candidates,
              const RankingModel &model)
{
    const FfuProgram ffu = FfuProgram::compile(query);
    const DpfEngine dpf(query);
    std::vector<ScoredDocument> results;
    results.reserve(candidates.size());
    for (const auto &doc : candidates) {
        FeatureVector f{};
        ffu.run(doc, f);
        dpf.run(doc, f);
        results.push_back({doc.id, model.score(f)});
    }
    std::sort(results.begin(), results.end(),
              [](const ScoredDocument &a, const ScoredDocument &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.docId < b.docId;
              });
    return results;
}

}  // namespace ccsim::roles
