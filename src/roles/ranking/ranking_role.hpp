/**
 * @file
 * The search-ranking accelerator role (FFU + DPF) hosted in the shell's
 * role region, plus the request/response message types shared with host
 * software and the RemoteRankingClient.
 *
 * Requests arrive either from the local host (PCIe DMA -> ER) or from a
 * remote server over LTL (Section V-D). The datapath is pipelined: it
 * accepts a new document every engine cycle, so per-query occupancy is
 * proportional to the candidate-document count while latency is the
 * pipeline fill plus occupancy.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "fpga/role.hpp"
#include "fpga/shell.hpp"
#include "host/ranking_server.hpp"
#include "host/workload.hpp"
#include "roles/ranking/features.hpp"
#include "sim/stats.hpp"

namespace ccsim::roles {

/** How a served request's response travels back. */
enum class ReplyVia : std::uint8_t {
    kPcie,  ///< to the local host over PCIe DMA
    kLtl,   ///< to a remote server over LTL
};

/** A feature-computation request for one query. */
struct RankingRequest {
    std::uint64_t requestId = 0;
    std::uint32_t docCount = 0;
    ReplyVia replyVia = ReplyVia::kPcie;
    /** LTL send connection (on the serving shell) for the reply. */
    std::uint16_t replyConn = 0;
    /** Optional real data: when present the role computes real features. */
    std::shared_ptr<const host::Query> query;
    std::shared_ptr<const std::vector<host::Document>> docs;
};

/** The response. */
struct RankingResponse {
    std::uint64_t requestId = 0;
    std::uint32_t docCount = 0;
    /** Highest-scoring document (only when real data was supplied). */
    std::uint32_t topDocId = 0;
    double topScore = 0.0;
};

/** Role timing/area parameters. */
struct RankingRoleParams {
    /** Pipelined initiation: engine occupancy per candidate document. */
    sim::TimePs occupancyPerDoc = 350 * sim::kNanosecond;
    /** Pipeline fill + scoring latency per query. */
    sim::TimePs fixedLatency = 40 * sim::kMicrosecond;
    /** Response message size on the wire. */
    std::uint32_t responseBytes = 256;
    /** ALMs, from Figure 5 (FFU + DPF role region). */
    std::uint32_t alms = 55340;
};

/** The FFU + DPF ranking role. */
class RankingRole : public fpga::Role
{
  public:
    explicit RankingRole(sim::EventQueue &eq, RankingRoleParams p = {});

    std::string name() const override { return "ranking-ffu-dpf"; }
    std::uint32_t areaAlms() const override { return params.alms; }
    void attach(fpga::Shell &shell, int er_port) override;
    void onMessage(const router::ErMessagePtr &msg) override;

    std::uint64_t requestsServed() const { return statServed; }
    /** Datapath utilization over @p elapsed simulated time. */
    double utilization(sim::TimePs elapsed) const
    {
        return elapsed > 0 ? static_cast<double>(busyAccum) / elapsed : 0.0;
    }

  private:
    sim::EventQueue &queue;
    RankingRoleParams params;
    fpga::Shell *shell = nullptr;
    int erPort = -1;
    sim::TimePs busyUntil = 0;
    sim::TimePs busyAccum = 0;
    std::uint64_t statServed = 0;
    RankingModel model;

    void serve(const std::shared_ptr<RankingRequest> &req);
    void respond(const std::shared_ptr<RankingRequest> &req,
                 std::shared_ptr<RankingResponse> resp);
};

/**
 * A pass-through role that lets host software reach remote accelerators:
 * host -> PCIe -> forwarder -> LTL, and LTL -> forwarder -> PCIe -> host.
 */
class ForwarderRole : public fpga::Role
{
  public:
    /** Host-to-forwarder payload: ship @p inner over LTL connection. */
    struct ForwardRequest {
        std::uint16_t sendConn = 0;
        std::uint32_t bytes = 0;
        std::uint8_t vc = 0;
        std::shared_ptr<void> inner;
    };

    explicit ForwarderRole(std::uint32_t alms = 2000) : almCount(alms) {}

    std::string name() const override { return "ltl-forwarder"; }
    std::uint32_t areaAlms() const override { return almCount; }
    void attach(fpga::Shell &shell, int er_port) override;
    void onMessage(const router::ErMessagePtr &msg) override;

    int port() const { return erPort; }

  private:
    std::uint32_t almCount;
    fpga::Shell *shell = nullptr;
    int erPort = -1;
};

/**
 * Host-side client that runs the feature stage on a *remote* FPGA via the
 * local shell's forwarder role and real LTL transport. Implements the
 * RankingServer's FeatureAccelerator interface, so Figure 11's remote
 * curve exercises PCIe + ER + LTL + the datacenter network end to end.
 */
class RemoteRankingClient : public host::FeatureAccelerator
{
  public:
    /**
     * @param shell      The local (requesting) server's shell.
     * @param forwarder  The forwarder role placed on @p shell.
     * @param send_conn  LTL send connection (local shell -> remote shell).
     * @param reply_conn LTL send connection on the REMOTE shell that
     *                   reaches back to the local shell's forwarder.
     * @param request_bytes_per_doc Wire bytes per candidate document
     *        (compact document references plus the query terms).
     */
    RemoteRankingClient(sim::EventQueue &eq, fpga::Shell &shell,
                        ForwarderRole &forwarder, std::uint16_t send_conn,
                        std::uint16_t reply_conn,
                        std::uint32_t request_bytes_per_doc = 16);
    ~RemoteRankingClient();

    void compute(std::uint32_t doc_count,
                 std::function<void()> done) override;

    std::uint64_t responsesReceived() const { return statResponses; }

  private:
    sim::EventQueue &queue;
    fpga::Shell &shell;
    ForwarderRole &forwarder;
    std::uint16_t sendConn;
    std::uint16_t replyConn;
    std::uint32_t bytesPerDoc;
    std::uint64_t nextRequestId = 1;
    std::unordered_map<std::uint64_t, std::function<void()>> outstanding;
    std::uint64_t statResponses = 0;

    void onHostRx(int role_port, const router::ErMessagePtr &msg);
};

}  // namespace ccsim::roles
