#include "roles/dnn_role.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace ccsim::roles {

Mlp::Mlp(std::vector<int> layer_sizes, std::uint64_t seed)
    : sizes(std::move(layer_sizes))
{
    if (sizes.size() < 2)
        sim::fatal("Mlp: need at least input and output layers");
    sim::Rng rng(seed);
    for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
        const int rows = sizes[l + 1];
        const int cols = sizes[l];
        std::vector<float> w(static_cast<std::size_t>(rows) * cols);
        const double scale = std::sqrt(2.0 / cols);  // He init
        for (auto &x : w)
            x = static_cast<float>(rng.normal(0.0, scale));
        weights.push_back(std::move(w));
        std::vector<float> b(rows, 0.0f);
        biases.push_back(std::move(b));
    }
}

std::vector<float>
Mlp::infer(const std::vector<float> &input) const
{
    if (static_cast<int>(input.size()) != sizes.front())
        sim::fatal("Mlp::infer: wrong input size");
    std::vector<float> act = input;
    for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
        const int rows = sizes[l + 1];
        const int cols = sizes[l];
        std::vector<float> next(rows);
        const bool last = l + 2 == sizes.size();
        for (int r = 0; r < rows; ++r) {
            float acc = biases[l][r];
            const float *w = &weights[l][static_cast<std::size_t>(r) * cols];
            for (int c = 0; c < cols; ++c)
                acc += w[c] * act[c];
            next[r] = last ? acc : std::max(0.0f, acc);  // ReLU hidden
        }
        act = std::move(next);
    }
    return act;
}

std::uint64_t
Mlp::macsPerInference() const
{
    std::uint64_t macs = 0;
    for (std::size_t l = 0; l + 1 < sizes.size(); ++l)
        macs += static_cast<std::uint64_t>(sizes[l]) * sizes[l + 1];
    return macs;
}

DnnRole::DnnRole(sim::EventQueue &eq, DnnRoleParams p)
    : queue(eq), params(p)
{
}

void
DnnRole::attach(fpga::Shell &sh, int er_port)
{
    shell = &sh;
    erPort = er_port;
}

void
DnnRole::onMessage(const router::ErMessagePtr &msg)
{
    std::shared_ptr<DnnRequest> req;
    if (msg->srcEndpoint == fpga::kErPortLtl) {
        auto delivery =
            std::static_pointer_cast<fpga::LtlDelivery>(msg->payload);
        if (delivery && delivery->appPayload)
            req = std::static_pointer_cast<DnnRequest>(delivery->appPayload);
    } else {
        req = std::static_pointer_cast<DnnRequest>(msg->payload);
    }
    if (!req) {
        CCSIM_LOG(sim::LogLevel::kWarn, name(), queue.now(),
                  "message without DnnRequest payload");
        return;
    }

    auto resp = std::make_shared<DnnResponse>();
    resp->requestId = req->requestId;
    resp->clientId = req->clientId;
    if (req->input)
        resp->output =
            std::make_shared<std::vector<float>>(mlp.infer(*req->input));

    // Single deterministic-service engine: FIFO, non-preemptive.
    const sim::TimePs start = std::max(queue.now(), busyUntil);
    busyUntil = start + params.serviceTime;
    ++inService;
    queue.schedule(busyUntil, [this, req, resp = std::move(resp)]() mutable {
        --inService;
        ++statServed;
        auto &endpoint = shell->roleEndpoint(erPort);
        if (req->replyViaPcie) {
            endpoint.sendMessage(fpga::kErPortPcie, fpga::kVcResponse,
                                 params.responseBytes, std::move(resp));
            return;
        }
        auto ltl_req = std::make_shared<fpga::LtlSendRequest>();
        ltl_req->conn = req->replyConn;
        ltl_req->bytes = params.responseBytes;
        ltl_req->vc = fpga::kVcResponse;
        ltl_req->appPayload = std::move(resp);
        endpoint.sendMessage(fpga::kErPortLtl, fpga::kVcResponse,
                             params.responseBytes, std::move(ltl_req));
    });
}

}  // namespace ccsim::roles
