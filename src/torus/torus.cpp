#include "torus/torus.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "sim/logging.hpp"

namespace ccsim::torus {

TorusNetwork::TorusNetwork(TorusParams params) : cfg(params)
{
    if (cfg.width < 2 || cfg.height < 2)
        sim::fatal("TorusNetwork: dimensions must be >= 2");
}

TorusCoord
TorusNetwork::wrap(TorusCoord c) const
{
    c.x = ((c.x % cfg.width) + cfg.width) % cfg.width;
    c.y = ((c.y % cfg.height) + cfg.height) % cfg.height;
    return c;
}

void
TorusNetwork::failNode(TorusCoord node)
{
    failed.insert(wrap(node));
}

void
TorusNetwork::repairNode(TorusCoord node)
{
    failed.erase(wrap(node));
}

bool
TorusNetwork::isFailed(TorusCoord node) const
{
    return failed.count(wrap(node)) > 0;
}

std::vector<TorusCoord>
TorusNetwork::neighbors(TorusCoord c) const
{
    return {wrap({c.x + 1, c.y}), wrap({c.x - 1, c.y}),
            wrap({c.x, c.y + 1}), wrap({c.x, c.y - 1})};
}

namespace {

/** Signed step of +/-1 toward the target along one wrapped dimension. */
int
stepToward(int from, int to, int size)
{
    if (from == to)
        return 0;
    const int fwd = ((to - from) % size + size) % size;
    const int bwd = size - fwd;
    return fwd <= bwd ? 1 : -1;
}

}  // namespace

std::optional<std::vector<TorusCoord>>
TorusNetwork::route(TorusCoord src, TorusCoord dst) const
{
    src = wrap(src);
    dst = wrap(dst);
    if (isFailed(src) || isFailed(dst))
        return std::nullopt;

    // Dimension-order (X then Y) path, the deterministic default.
    std::vector<TorusCoord> path;
    TorusCoord cur = src;
    bool blocked = false;
    while (cur.x != dst.x) {
        cur = wrap({cur.x + stepToward(cur.x, dst.x, cfg.width), cur.y});
        if (isFailed(cur)) {
            blocked = true;
            break;
        }
        path.push_back(cur);
    }
    if (!blocked) {
        while (cur.y != dst.y) {
            cur = wrap(
                {cur.x, cur.y + stepToward(cur.y, dst.y, cfg.height)});
            if (isFailed(cur)) {
                blocked = true;
                break;
            }
            path.push_back(cur);
        }
    }
    if (!blocked)
        return path;

    // A failed node blocks the DOR path: re-route (BFS detour), the
    // costly recovery the paper calls out as a torus weakness.
    return bfsPath(src, dst);
}

std::optional<std::vector<TorusCoord>>
TorusNetwork::bfsPath(TorusCoord src, TorusCoord dst) const
{
    std::map<TorusCoord, TorusCoord> parent;
    std::queue<TorusCoord> frontier;
    frontier.push(src);
    parent[src] = src;
    while (!frontier.empty()) {
        const TorusCoord cur = frontier.front();
        frontier.pop();
        if (cur == dst)
            break;
        for (const TorusCoord &next : neighbors(cur)) {
            if (isFailed(next) || parent.count(next))
                continue;
            parent[next] = cur;
            frontier.push(next);
        }
    }
    if (!parent.count(dst))
        return std::nullopt;
    std::vector<TorusCoord> path;
    for (TorusCoord cur = dst; !(cur == src); cur = parent[cur])
        path.push_back(cur);
    std::reverse(path.begin(), path.end());
    return path;
}

std::optional<int>
TorusNetwork::hopCount(TorusCoord src, TorusCoord dst) const
{
    auto path = route(src, dst);
    if (!path)
        return std::nullopt;
    return static_cast<int>(path->size());
}

std::optional<sim::TimePs>
TorusNetwork::oneWayLatency(TorusCoord src, TorusCoord dst) const
{
    auto hops = hopCount(src, dst);
    if (!hops)
        return std::nullopt;
    return *hops * cfg.hopLatency + cfg.endpointLatency;
}

std::optional<sim::TimePs>
TorusNetwork::roundTripLatency(TorusCoord src, TorusCoord dst) const
{
    auto there = oneWayLatency(src, dst);
    auto back = oneWayLatency(dst, src);
    if (!there || !back)
        return std::nullopt;
    return *there + *back;
}

int
TorusNetwork::reachableNodes(TorusCoord src) const
{
    src = wrap(src);
    if (isFailed(src))
        return 0;
    std::set<TorusCoord> seen{src};
    std::queue<TorusCoord> frontier;
    frontier.push(src);
    while (!frontier.empty()) {
        const TorusCoord cur = frontier.front();
        frontier.pop();
        for (const TorusCoord &next : neighbors(cur)) {
            if (isFailed(next) || seen.count(next))
                continue;
            seen.insert(next);
            frontier.push(next);
        }
    }
    return static_cast<int>(seen.size());
}

int
TorusNetwork::eccentricity(TorusCoord src) const
{
    int worst = 0;
    for (int x = 0; x < cfg.width; ++x) {
        for (int y = 0; y < cfg.height; ++y) {
            const TorusCoord dst{x, y};
            if (dst == wrap(src) || isFailed(dst))
                continue;
            if (auto hops = hopCount(src, dst))
                worst = std::max(worst, *hops);
        }
    }
    return worst;
}

}  // namespace ccsim::torus
