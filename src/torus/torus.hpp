/**
 * @file
 * The Catapult v1 baseline: a rack-scale 6x8 torus of 48 FPGAs connected
 * by a dedicated secondary network (SL3 links), reproduced as the
 * comparison series in Figure 10.
 *
 * Key properties from the papers:
 *  - nearest-neighbour (1-hop) round-trip latency ~1 us;
 *  - worst-case round-trip ~7 us (the longest dimension-order path in a
 *    6x8 torus is 3+4 = 7 hops);
 *  - communication is limited to the 48 FPGAs of one rack;
 *  - failures require re-routing around the faulty node, costing extra
 *    hops and latency, and some failure patterns isolate nodes.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ccsim::torus {

/** Coordinates of a node in the torus. */
struct TorusCoord {
    int x = 0;
    int y = 0;
    bool operator==(const TorusCoord &) const = default;
    bool operator<(const TorusCoord &o) const
    {
        return x != o.x ? x < o.x : y < o.y;
    }
};

/** Timing parameters for the secondary SL3 network. */
struct TorusParams {
    int width = 6;
    int height = 8;
    /** One-way per-hop latency (SL3 serialization + pass-through router). */
    sim::TimePs hopLatency = 470 * sim::kNanosecond;
    /** Endpoint injection + ejection cost per traversal. */
    sim::TimePs endpointLatency = 160 * sim::kNanosecond;
};

/** A rack-scale torus with failure-aware routing. */
class TorusNetwork
{
  public:
    explicit TorusNetwork(TorusParams params = {});

    int width() const { return cfg.width; }
    int height() const { return cfg.height; }
    int numNodes() const { return cfg.width * cfg.height; }

    /** Mark a node failed (its four links become unusable). */
    void failNode(TorusCoord node);
    /** Repair a node. */
    void repairNode(TorusCoord node);
    bool isFailed(TorusCoord node) const;

    /**
     * Route from @p src to @p dst: dimension-order (X then Y) with greedy
     * detours around failed nodes.
     *
     * @return The hop-by-hop path (excluding @p src), or nullopt if the
     *         destination is unreachable under the current failures.
     */
    std::optional<std::vector<TorusCoord>> route(TorusCoord src,
                                                 TorusCoord dst) const;

    /** Hop count of the routed path, or nullopt if unreachable. */
    std::optional<int> hopCount(TorusCoord src, TorusCoord dst) const;

    /**
     * One-way latency along the routed path (endpoint costs included
     * once at injection; add ejection at the caller if needed).
     */
    std::optional<sim::TimePs> oneWayLatency(TorusCoord src,
                                             TorusCoord dst) const;

    /** Round-trip latency src -> dst -> src. */
    std::optional<sim::TimePs> roundTripLatency(TorusCoord src,
                                                TorusCoord dst) const;

    /** Number of nodes reachable from @p src (counting itself). */
    int reachableNodes(TorusCoord src) const;

    /** The longest shortest-path hop count from @p src (failures aware). */
    int eccentricity(TorusCoord src) const;

    const TorusParams &params() const { return cfg; }

  private:
    TorusParams cfg;
    std::set<TorusCoord> failed;

    TorusCoord wrap(TorusCoord c) const;
    std::vector<TorusCoord> neighbors(TorusCoord c) const;
    /** BFS shortest path used both for detours and reachability. */
    std::optional<std::vector<TorusCoord>> bfsPath(TorusCoord src,
                                                   TorusCoord dst) const;
};

}  // namespace ccsim::torus
