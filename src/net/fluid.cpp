#include "net/fluid.hpp"

#include "sim/logging.hpp"
#include "sim/sharded_queue.hpp"

namespace ccsim::net {

namespace {

/** bit·ps per byte: 8 bits × 1e12 ps/s. */
constexpr unsigned __int128 kBitPsPerByte =
    static_cast<unsigned __int128>(8) * 1000000000000ull;

}  // namespace

FluidTrafficModel::FluidTrafficModel(sim::EventQueue &eq_, Topology &t)
    : topo(t), eq(&eq_)
{
}

FluidTrafficModel::FluidTrafficModel(sim::ShardedEventQueue &sq_,
                                     Topology &t)
    : topo(t), sq(&sq_)
{
}

FluidTrafficModel::~FluidTrafficModel()
{
    // Unload whatever is still flowing so the channels a longer-lived
    // topology keeps serving are not left slowed forever. Stalled flows
    // already carry no rate on the hops.
    for (auto &[id, f] : flows) {
        if (!f->promoted && !f->stalled)
            unloadPath(*f);
    }
}

sim::TimePs
FluidTrafficModel::now() const
{
    return sq != nullptr ? sq->now() : eq->now();
}

FluidFlow &
FluidTrafficModel::get(std::uint64_t id)
{
    auto it = flows.find(id);
    if (it == flows.end())
        sim::fatalf("FluidTrafficModel: unknown flow id ", id);
    return *it->second;
}

void
FluidTrafficModel::loadPath(FluidFlow &f)
{
    for (Channel *c : f.path)
        c->addFluidBps(f.rateBps);
}

void
FluidTrafficModel::unloadPath(FluidFlow &f)
{
    for (Channel *c : f.path)
        c->removeFluidBps(f.rateBps);
}

bool
FluidTrafficModel::pathDead(const FluidFlow &f) const
{
    for (const Channel *c : f.path) {
        if (c->isAdminDown())
            return true;
    }
    return false;
}

void
FluidTrafficModel::refreshStall(FluidFlow &f)
{
    const bool dead = pathDead(f);
    if (dead == f.stalled)
        return;
    if (dead) {
        // Zero the aggregate: nothing crosses a cut hop, so the rate
        // stops slowing the surviving hops and the sub-byte remainder
        // is written off (those bits never arrived).
        unloadPath(f);
        f.residualBitPs = 0;
        ++statStalls;
    } else {
        loadPath(f);
    }
    f.stalled = dead;
}

void
FluidTrafficModel::fold(FluidFlow &f)
{
    const sim::TimePs t = now();
    if (f.promoted) {
        f.lastFold = t;
        return;
    }
    // Path health is polled at fold granularity: the interval in which
    // the state flipped is written off entirely — no bytes accrue into
    // (or out of) a dead hop, and conservation stays exact because the
    // per-flow integral and the channel credits skip together. Chaos
    // scenarios fold the model immediately before injecting, making the
    // boundary exact.
    const bool wasStalled = f.stalled;
    refreshStall(f);
    const sim::TimePs dt = t - f.lastFold;
    f.lastFold = t;
    if (f.stalled || wasStalled || dt <= 0 || f.rateBps == 0)
        return;
    // Exact integral in bit·ps; the remainder is carried so byte totals
    // are independent of the fold schedule.
    unsigned __int128 acc =
        f.residualBitPs + static_cast<unsigned __int128>(f.rateBps) *
                              static_cast<unsigned __int128>(dt);
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(acc / kBitPsPerByte);
    f.residualBitPs = acc % kBitPsPerByte;
    if (bytes == 0)
        return;
    f.fluidBytes += bytes;
    for (Channel *c : f.path)
        c->creditFluidBytes(bytes);
    expectedCredits += bytes * f.path.size();
}

std::uint64_t
FluidTrafficModel::addFlow(int src_host, int dst_host,
                           std::uint64_t rate_bps)
{
    auto f = std::allocate_shared<FluidFlow>(
        sim::PoolAllocator<FluidFlow>{});
    f->id = nextId++;
    f->srcHost = src_host;
    f->dstHost = dst_host;
    f->rateBps = rate_bps;
    f->lastFold = now();
    f->path = topo.fluidPath(src_host, dst_host);
    for (Channel *c : f->path)
        touched.insert(c);
    f->stalled = pathDead(*f);
    if (f->stalled)
        ++statStalls;
    else
        loadPath(*f);
    const std::uint64_t id = f->id;
    flows.emplace(id, std::move(f));
    return id;
}

void
FluidTrafficModel::setRate(std::uint64_t id, std::uint64_t rate_bps)
{
    FluidFlow &f = get(id);
    fold(f);
    if (!f.promoted && !f.stalled)
        unloadPath(f);
    f.rateBps = rate_bps;
    if (!f.promoted && !f.stalled)
        loadPath(f);
}

void
FluidTrafficModel::removeFlow(std::uint64_t id)
{
    auto it = flows.find(id);
    if (it == flows.end())
        sim::fatalf("FluidTrafficModel: unknown flow id ", id);
    FluidFlow &f = *it->second;
    fold(f);
    if (!f.promoted && !f.stalled)
        unloadPath(f);
    retiredFluidBytes += f.fluidBytes;
    retiredPacketBytes += f.packetBytes;
    ++retiredFlows;
    flows.erase(it);
}

void
FluidTrafficModel::promote(std::uint64_t id)
{
    FluidFlow &f = get(id);
    if (f.promoted)
        return;
    fold(f);
    if (!f.stalled)
        unloadPath(f);
    // The packet regime owns loss now; stall bookkeeping restarts clean
    // at the next demote.
    f.stalled = false;
    f.promoted = true;
}

void
FluidTrafficModel::creditPacketBytes(std::uint64_t id, std::uint64_t bytes)
{
    FluidFlow &f = get(id);
    if (!f.promoted)
        sim::fatalf("FluidTrafficModel: packet credit on fluid flow ", id,
                    " (bytes would be double-counted)");
    f.packetBytes += bytes;
}

void
FluidTrafficModel::demote(std::uint64_t id, std::uint64_t rate_bps)
{
    FluidFlow &f = get(id);
    if (!f.promoted)
        return;
    f.promoted = false;
    f.lastFold = now();
    f.rateBps = rate_bps;
    f.stalled = pathDead(f);
    if (f.stalled)
        ++statStalls;
    else
        loadPath(f);
}

void
FluidTrafficModel::setMonitored(const Channel *c, bool is_monitored)
{
    if (is_monitored)
        monitored.insert(c);
    else
        monitored.erase(c);
}

bool
FluidTrafficModel::crossesMonitored(std::uint64_t id) const
{
    auto it = flows.find(id);
    if (it == flows.end())
        return false;
    for (const Channel *c : it->second->path) {
        if (monitored.count(c) > 0)
            return true;
    }
    return false;
}

std::vector<std::uint64_t>
FluidTrafficModel::flowsCrossingMonitored() const
{
    std::vector<std::uint64_t> ids;
    for (const auto &[id, f] : flows) {
        if (!f->promoted && crossesMonitored(id))
            ids.push_back(id);
    }
    return ids;
}

void
FluidTrafficModel::foldAll()
{
    for (auto &[id, f] : flows)
        fold(*f);
}

FluidConservation
FluidTrafficModel::verify() const
{
    FluidConservation c;
    c.flows = retiredFlows + flows.size();
    c.fluidBytes = retiredFluidBytes;
    c.packetBytes = retiredPacketBytes;
    for (const auto &[id, f] : flows) {
        c.fluidBytes += f->fluidBytes;
        c.packetBytes += f->packetBytes;
    }
    for (Channel *ch : touched)
        c.channelCredits += ch->fluidBytesDelivered();
    c.expectedChannelCredits = expectedCredits;
    c.ok = c.channelCredits == c.expectedChannelCredits;
    return c;
}

std::size_t
FluidTrafficModel::stalledFlows() const
{
    std::size_t n = 0;
    for (const auto &[id, f] : flows)
        n += (!f->promoted && f->stalled) ? 1 : 0;
    return n;
}

const FluidFlow *
FluidTrafficModel::flow(std::uint64_t id) const
{
    auto it = flows.find(id);
    return it == flows.end() ? nullptr : it->second.get();
}

}  // namespace ccsim::net
