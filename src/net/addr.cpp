#include "net/addr.hpp"

#include <cstdio>

namespace ccsim::net {

std::string
MacAddr::str() const
{
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                  static_cast<unsigned>((value >> 40) & 0xFF),
                  static_cast<unsigned>((value >> 32) & 0xFF),
                  static_cast<unsigned>((value >> 24) & 0xFF),
                  static_cast<unsigned>((value >> 16) & 0xFF),
                  static_cast<unsigned>((value >> 8) & 0xFF),
                  static_cast<unsigned>(value & 0xFF));
    return buf;
}

std::string
Ipv4Addr::str() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF,
                  (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
    return buf;
}

}  // namespace ccsim::net
