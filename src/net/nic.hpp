/**
 * @file
 * A conventional server NIC.
 *
 * In the Configurable Cloud the NIC keeps all of its hardened offload and
 * transport functionality; the FPGA sits between the NIC and the TOR. The
 * model therefore only needs send/receive with a host-side handler — all
 * protocol processing above it is done by host software models.
 */
#pragma once

#include <functional>
#include <string>

#include "net/channel.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::net {

/** A simple NIC endpoint. */
class Nic : public PacketSink
{
  public:
    Nic(sim::EventQueue &eq, std::string name, MacAddr mac, Ipv4Addr ip)
        : queue(eq), label(std::move(name)), macAddr(mac), ipAddr(ip)
    {
    }

    /** Channel the NIC transmits into (toward the FPGA/TOR). */
    void setTxChannel(Channel *tx) { txChannel = tx; }

    /** Callback invoked for every packet delivered to the host. */
    void setReceiveHandler(std::function<void(const PacketPtr &)> h)
    {
        handler = std::move(h);
    }

    /**
     * Transmit a packet. Unset L2/L3 source fields are stamped with this
     * NIC's addresses.
     *
     * @return false if the NIC had no attached channel or the transmit
     *         queue overflowed.
     */
    bool sendPacket(const PacketPtr &pkt);

    void acceptPacket(const PacketPtr &pkt) override;

    MacAddr mac() const { return macAddr; }
    Ipv4Addr ip() const { return ipAddr; }

    std::uint64_t packetsReceived() const { return rxPackets; }
    std::uint64_t packetsSent() const { return txPackets; }

    /** Export rx/tx packet counts under `nic.<node>.*`. */
    void attachObservability(obs::Observability *o, const std::string &node)
    {
        if (!o)
            return;
        o->registry.registerProbe("nic." + node + ".rx_packets",
                                  [this] { return double(rxPackets); });
        o->registry.registerProbe("nic." + node + ".tx_packets",
                                  [this] { return double(txPackets); });
    }

  private:
    sim::EventQueue &queue;
    std::string label;
    MacAddr macAddr;
    Ipv4Addr ipAddr;
    Channel *txChannel = nullptr;
    std::function<void(const PacketPtr &)> handler;
    std::uint64_t rxPackets = 0;
    std::uint64_t txPackets = 0;
};

}  // namespace ccsim::net
