#include "net/switch.hpp"

#include "sim/logging.hpp"

namespace ccsim::net {

Switch::Switch(sim::EventQueue &eq, SwitchConfig cfg)
    : queue(eq), config(std::move(cfg)), rng(config.seed)
{
    if (config.pfcXonBytes > config.pfcXoffBytes)
        sim::fatal("Switch: PFC X-ON threshold must not exceed X-OFF");
}

int
Switch::addPort(Channel *tx)
{
    auto port = std::make_unique<Port>();
    port->tx = tx;
    const int index = static_cast<int>(ports.size());
    port->sink = std::make_unique<PortSink>(this, index);
    ports.push_back(std::move(port));
    return index;
}

PacketSink *
Switch::portSink(int port)
{
    return ports.at(port)->sink.get();
}

void
Switch::addRoute(Ipv4Addr dst, int prefix_len, int port)
{
    if (prefix_len < 0 || prefix_len > 32)
        sim::fatal("Switch::addRoute: bad prefix length");
    if (prefix_len == 32) {
        addHostRoute(dst, port);
        return;
    }
    const std::uint32_t mask =
        prefix_len == 0 ? 0 : ~0u << (32 - prefix_len);
    for (auto &r : prefixRoutes) {
        if (r.mask == mask && r.prefix == (dst.value & mask)) {
            r.ports.push_back(port);
            return;
        }
    }
    prefixRoutes.push_back(PrefixRoute{dst.value & mask, mask, prefix_len,
                                       {port}});
    // Longest prefix first.
    std::sort(prefixRoutes.begin(), prefixRoutes.end(),
              [](const PrefixRoute &a, const PrefixRoute &b) {
                  return a.len > b.len;
              });
}

void
Switch::addHostRoute(Ipv4Addr dst, int port)
{
    hostRoutes[dst].push_back(port);
}

void
Switch::setDefaultRoutes(std::vector<int> out_ports)
{
    defaultRoutes = std::move(out_ports);
}

void
Switch::attachObservability(obs::Observability *o)
{
    obsHub = o;
    if (!o)
        return;
    obsPrefix = "switch." + config.name;
    obsTrack = o->trace.track(obsPrefix);
    auto &reg = o->registry;
    reg.registerProbe(obsPrefix + ".forwarded",
                      [this] { return double(forwarded); });
    reg.registerProbe(obsPrefix + ".dropped",
                      [this] { return double(dropped); });
    reg.registerProbe(obsPrefix + ".ecn_marked",
                      [this] { return double(ecnMarked); });
    reg.registerProbe(obsPrefix + ".pfc_frames",
                      [this] { return double(pfcSent); });
    reg.registerProbe(obsPrefix + ".route_misses",
                      [this] { return double(noRoute); });
    reg.registerProbe(obsPrefix + ".brownout_drops",
                      [this] { return double(brownoutDropped); });
    for (std::uint8_t prio = 0; prio < kNumTrafficClasses; ++prio) {
        reg.registerProbe(
            obsPrefix + ".q" + std::to_string(prio) + ".depth",
            [this, prio] {
                // Aggregate egress occupancy of this class (bytes).
                std::uint64_t bytes = 0;
                for (const auto &port : ports)
                    if (port->tx)
                        bytes += port->tx->queuedBytes(prio);
                return double(bytes);
            });
    }
}

void
Switch::setBrownout(double drop_prob, bool force_ecn)
{
    if (drop_prob < 0.0 || drop_prob > 1.0)
        sim::fatal("Switch::setBrownout: drop probability must be in "
                   "[0, 1]");
    brownoutDropProb = drop_prob;
    brownoutForceEcn = force_ecn;
}

int
Switch::lookupRoute(const PacketPtr &pkt) const
{
    auto pick = [&](const std::vector<int> &candidates) {
        if (candidates.size() == 1)
            return candidates[0];
        return candidates[pkt->flowHash() % candidates.size()];
    };
    if (auto it = hostRoutes.find(pkt->ipDst); it != hostRoutes.end())
        return pick(it->second);
    for (const auto &r : prefixRoutes) {
        if ((pkt->ipDst.value & r.mask) == r.prefix)
            return pick(r.ports);
    }
    if (!defaultRoutes.empty())
        return pick(defaultRoutes);
    return -1;
}

void
Switch::handlePacket(int in_port, const PacketPtr &pkt)
{
    // Brown-out: the frame dies at the ingress MAC, before any
    // accounting — indistinguishable from wire corruption. The RNG is
    // only consulted while a brown-out is active so that fault-free runs
    // stay bit-identical to runs built without the injector.
    if (brownoutDropProb > 0.0 && rng.bernoulli(brownoutDropProb)) {
        ++dropped;
        ++brownoutDropped;
        return;
    }
    const int out_port = lookupRoute(pkt);
    if (out_port < 0) {
        ++noRoute;
        ++dropped;
        CCSIM_LOG(sim::LogLevel::kDebug, config.name, queue.now(),
                  "no route for ", pkt->ipDst.str());
        return;
    }
    const std::uint8_t prio = pkt->priority;
    if (isLossless(prio)) {
        accountIngress(in_port, prio,
                       static_cast<std::int64_t>(pkt->wireBytes()));
        maybeSendXoff(in_port, prio);
    }
    sim::TimePs delay = config.forwardingLatency;
    if (config.jitter)
        delay += config.jitter->sample(rng);
    // Clamp so jitter cannot reorder packets of one ingress stream.
    Port &port = *ports[in_port];
    sim::TimePs when = queue.now() + delay;
    if (when < port.lastForwardAt)
        when = port.lastForwardAt;
    port.lastForwardAt = when;
    if (pkt->trace.sampled && obsHub) {
        // Pipeline occupancy from ingress to the egress-queue handoff.
        obsHub->flows.recordSpan(pkt->trace, obsPrefix,
                                 obs::Component::kCompute, queue.now(),
                                 when);
    }
    queue.schedule(when, [this, in_port, out_port, pkt] {
        forward(in_port, out_port, pkt);
    });
}

void
Switch::forward(int in_port, int out_port, const PacketPtr &pkt)
{
    Channel *tx = ports[out_port]->tx;
    if (tx == nullptr) {
        ++dropped;
        return;
    }
    const std::uint8_t prio = pkt->priority;

    // ECN: mark ECT packets when the egress queue has built up (or
    // unconditionally during an injected ECN storm).
    if (pkt->ecnCapable && !pkt->ecnMarked &&
        (brownoutForceEcn ||
         tx->queuedBytes(prio) > config.ecnThresholdBytes)) {
        pkt->ecnMarked = true;
        ++ecnMarked;
        if (obsHub && obsHub->trace.enabled())
            obsHub->trace.instant(obsTrack, "switch",
                                  obsPrefix + ".ecn_mark", queue.now());
    }

    std::function<void()> on_done;
    if (isLossless(prio)) {
        const std::int64_t wire = pkt->wireBytes();
        on_done = [this, in_port, prio, wire] {
            accountIngress(in_port, prio, -wire);
        };
    }
    const bool ok = tx->send(pkt, std::move(on_done));
    if (!ok) {
        ++dropped;
        if (isLossless(prio)) {
            // A lossless-class drop indicates mis-tuned PFC thresholds;
            // release the ingress accounting so we do not wedge.
            accountIngress(in_port, prio,
                           -static_cast<std::int64_t>(pkt->wireBytes()));
            CCSIM_LOG(sim::LogLevel::kWarn, config.name, queue.now(),
                      "lossless-class drop (PFC thresholds too lax?)");
        }
    } else {
        ++forwarded;
    }
}

void
Switch::accountIngress(int in_port, std::uint8_t prio, std::int64_t delta)
{
    auto &bytes = ports[in_port]->ingressBytes[prio];
    const std::int64_t updated = static_cast<std::int64_t>(bytes) + delta;
    bytes = updated < 0 ? 0 : static_cast<std::uint32_t>(updated);
    if (ports[in_port]->xoffSent[prio] && bytes <= config.pfcXonBytes) {
        // Resume the upstream transmitter promptly (X-ON).
        ports[in_port]->xoffSent[prio] = false;
        if (ports[in_port]->tx) {
            ports[in_port]->tx->send(makePfcPause(prio, 0));
            ++pfcSent;
            if (obsHub && obsHub->trace.enabled())
                obsHub->trace.instant(obsTrack, "switch",
                                      obsPrefix + ".pfc_xon", queue.now());
        }
    }
}

void
Switch::maybeSendXoff(int in_port, std::uint8_t prio)
{
    Port &port = *ports[in_port];
    if (port.xoffSent[prio] || port.ingressBytes[prio] < config.pfcXoffBytes)
        return;
    if (!port.tx)
        return;
    port.xoffSent[prio] = true;
    port.tx->send(makePfcPause(prio, config.pfcPauseTime));
    ++pfcSent;
    if (obsHub && obsHub->trace.enabled())
        obsHub->trace.instant(obsTrack, "switch", obsPrefix + ".pfc_xoff",
                              queue.now());
    refreshPfc(in_port, prio);
}

void
Switch::refreshPfc(int in_port, std::uint8_t prio)
{
    // Re-issue the pause before it expires while congestion persists.
    const sim::TimePs refresh = config.pfcPauseTime * 3 / 4;
    queue.scheduleAfter(refresh, [this, in_port, prio] {
        Port &port = *ports[in_port];
        if (!port.xoffSent[prio])
            return;  // already resumed via X-ON
        if (port.ingressBytes[prio] > config.pfcXonBytes) {
            port.tx->send(makePfcPause(prio, config.pfcPauseTime));
            ++pfcSent;
            refreshPfc(in_port, prio);
        } else {
            port.xoffSent[prio] = false;
            port.tx->send(makePfcPause(prio, 0));
            ++pfcSent;
        }
    });
}

}  // namespace ccsim::net
