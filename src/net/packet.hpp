/**
 * @file
 * The simulation packet model.
 *
 * A Packet carries parsed Ethernet/IPv4/UDP header fields, an optional
 * real byte payload (used by the crypto role, which encrypts actual data),
 * a declared wire length, and an optional typed metadata blob (used by LTL
 * to attach its frame header without serializing it).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/addr.hpp"
#include "obs/flow_trace.hpp"
#include "sim/time.hpp"

namespace ccsim::net {

/** IP protocol numbers we model. */
enum class IpProto : std::uint8_t {
    kTcp = 6,
    kUdp = 17,
};

/** EtherType values we model. */
enum class EtherType : std::uint16_t {
    kIpv4 = 0x0800,
    kMacControl = 0x8808,  ///< PFC pause frames (802.1Qbb)
};

/** Number of 802.1p priorities / traffic classes. */
inline constexpr int kNumTrafficClasses = 8;

/** Priority used for ordinary (lossy, TCP-dominated) datacenter traffic. */
inline constexpr std::uint8_t kTcLossy = 0;
/** Lossless priority provisioned for RDMA/FCoE-style traffic; LTL uses it. */
inline constexpr std::uint8_t kTcLossless = 3;

/** Fixed protocol overheads, bytes. */
inline constexpr std::uint32_t kEthOverhead = 14 + 4 + 8 + 12;  // hdr+FCS+preamble+IFG
inline constexpr std::uint32_t kIpv4HeaderBytes = 20;
inline constexpr std::uint32_t kUdpHeaderBytes = 8;
/** Standard Ethernet MTU (L3 payload). */
inline constexpr std::uint32_t kMtuBytes = 1500;

/** Payload of an 802.1Qbb Priority Flow Control frame. */
struct PfcFrame {
    /** Bit i set => this frame carries a pause time for priority i. */
    std::uint8_t priorityMask = 0;
    /**
     * Pause durations per priority, in simulated time (already converted
     * from pause quanta). Zero means resume (X-ON).
     */
    sim::TimePs pauseTime[kNumTrafficClasses] = {};
};

/** A network packet (shared, immutable-by-convention after send). */
struct Packet {
    // --- L2 ---
    MacAddr ethSrc;
    MacAddr ethDst;
    EtherType etherType = EtherType::kIpv4;
    std::uint8_t priority = kTcLossy;  ///< 802.1p PCP

    // --- L3 ---
    Ipv4Addr ipSrc;
    Ipv4Addr ipDst;
    IpProto ipProto = IpProto::kUdp;
    bool ecnCapable = false;  ///< ECT codepoint set by sender
    bool ecnMarked = false;   ///< CE mark applied by a congested switch

    // --- L4 (UDP) ---
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;

    // --- payload ---
    /** Declared L4 payload length in bytes (always set). */
    std::uint32_t payloadBytes = 0;
    /** Optional real payload bytes (crypto role); empty for modeled data. */
    std::vector<std::uint8_t> data;
    /** Optional typed metadata (e.g. ltl::Frame, PfcFrame). */
    std::shared_ptr<void> meta;

    // --- bookkeeping ---
    std::uint64_t id = 0;             ///< unique per simulation, for tracing
    sim::TimePs createdAt = 0;        ///< time the packet was created
    /** Causal flow context; `trace.sampled` gates all span recording. */
    obs::TraceContext trace;

    /** Total bytes this packet occupies on the wire (incl. L1 overheads). */
    std::uint32_t wireBytes() const
    {
        if (etherType == EtherType::kMacControl)
            return 64 + 8 + 12;  // minimum frame + preamble + IFG
        std::uint32_t l3 = kIpv4HeaderBytes + kUdpHeaderBytes + payloadBytes;
        std::uint32_t frame = kEthOverhead + l3;
        return frame < (64 + 8 + 12) ? (64 + 8 + 12) : frame;
    }

    /** Deterministic 5-tuple hash used for ECMP path selection. */
    std::uint64_t flowHash() const;

    /** True if this is a PFC pause frame. */
    bool isPfc() const { return etherType == EtherType::kMacControl; }

    /** Convenience accessor for the PFC payload. @pre isPfc(). */
    const PfcFrame &pfc() const { return *static_cast<PfcFrame *>(meta.get()); }
};

using PacketPtr = std::shared_ptr<Packet>;

/** Allocate a packet with a fresh trace id. */
PacketPtr makePacket();

/** Build a PFC pause frame for the given priority. */
PacketPtr makePfcPause(std::uint8_t priority, sim::TimePs pause_time);

/** Counters exported by the packet pool (see sim/pool.hpp). */
struct PacketPoolStats {
    std::uint64_t freshAllocs = 0;  ///< packet blocks taken from the heap
    std::uint64_t reusedAllocs = 0; ///< packet blocks served from the pool
    std::size_t freeBlocks = 0;     ///< blocks currently parked in the pool
};

/**
 * Thread-local pool statistics for diagnostics and tests. Deliberately
 * not an observability probe: the pool outlives individual simulations,
 * so exposing it in snapshots would break same-seed determinism for
 * back-to-back runs in one process.
 */
PacketPoolStats packetPoolStats();

/**
 * Interface for anything that can accept a delivered packet: switch ports,
 * NICs, FPGA MACs.
 */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;

    /** Deliver @p pkt to this sink at the current simulated time. */
    virtual void acceptPacket(const PacketPtr &pkt) = 0;
};

}  // namespace ccsim::net
