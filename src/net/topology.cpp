#include "net/topology.hpp"

#include "obs/sharded_obs.hpp"
#include "sim/logging.hpp"
#include "sim/sharded_queue.hpp"

namespace ccsim::net {

Topology::Topology(sim::EventQueue &eq, TopologyConfig cfg)
    : queue(eq), config(std::move(cfg))
{
    validateConfig();
    build();
}

Topology::Topology(sim::ShardedEventQueue &sq, TopologyConfig cfg)
    // The spine partition doubles as the "default" queue reference.
    : queue(sq.partition(cfg.pods)), config(std::move(cfg)), shards(&sq)
{
    validateConfig();
    build();
}

void
Topology::validateConfig() const
{
    if (config.hostsPerRack < 1 || config.hostsPerRack > 254)
        sim::fatal("Topology: hostsPerRack must be in [1, 254]");
    if (config.racksPerPod < 1 || config.racksPerPod > 255)
        sim::fatal("Topology: racksPerPod must be in [1, 255]");
    if (config.pods < 1 || config.pods > 510)
        sim::fatal("Topology: pods must be in [1, 510]");
    if (config.l1PerPod < 1 || config.l2Count < 1)
        sim::fatal("Topology: need at least one switch per fabric tier");
}

sim::EventQueue &
Topology::podQueue(int pod)
{
    return shards ? shards->partition(pod) : queue;
}

std::shared_ptr<DelayModel>
Topology::makeJitter(const TierParams &p)
{
    if (p.jitterMean <= 0)
        return nullptr;
    auto base = std::make_unique<LognormalDelay>(p.jitterMean, p.jitterCv,
                                                 p.jitterCap);
    if (p.tailProb <= 0.0)
        return std::shared_ptr<DelayModel>(std::move(base));
    auto tail = std::make_unique<LognormalDelay>(p.tailMean, p.tailCv,
                                                 p.tailCap);
    return std::make_shared<MixtureDelay>(p.tailProb, std::move(base),
                                          std::move(tail));
}

SwitchConfig
Topology::makeSwitchConfig(const std::string &name, const TierParams &p,
                           std::uint64_t seed)
{
    SwitchConfig sc;
    sc.name = name;
    sc.forwardingLatency = p.forwardingLatency;
    sc.jitter = makeJitter(p);
    sc.seed = seed;
    return sc;
}

int
Topology::hostIndex(int pod, int rack, int idx) const
{
    return (pod * config.racksPerPod + rack) * config.hostsPerRack + idx;
}

Switch &
Topology::tor(int pod, int rack)
{
    return *tors.at(pod * config.racksPerPod + rack);
}

Switch &
Topology::l1(int pod, int idx)
{
    return *l1Switches.at(pod * config.l1PerPod + idx);
}

Switch &
Topology::l2(int idx)
{
    return *l2Switches.at(idx);
}

void
Topology::attachHostDevice(int global_index, PacketSink *device)
{
    materializeHost(global_index);
    hosts.at(global_index).link->attachA(device);
}

Channel &
Topology::hostTx(int global_index)
{
    materializeHost(global_index);
    return hosts.at(global_index).link->aToB();
}

Link &
Topology::hostLink(int global_index)
{
    materializeHost(global_index);
    return *hosts.at(global_index).link;
}

void
Topology::materializeHost(int global_index)
{
    HostPort &hp = hosts.at(global_index);
    if (hp.link != nullptr)
        return;
    Switch &torsw = tor(hp.pod, hp.rack);
    auto link = std::make_unique<Link>(
        podQueue(hp.pod),
        "tor." + std::to_string(hp.pod) + "." + std::to_string(hp.rack) +
            ".host" + std::to_string(hp.indexInRack),
        config.linkGbps, config.hostCableMeters);
    const int down = torsw.addPort(&link->bToA());
    link->attachB(torsw.portSink(down));
    torsw.addHostRoute(hp.addr, down);
    if (legacyObs != nullptr) {
        link->setFlowRecorder(&legacyObs->flows);
    } else if (shardObs != nullptr) {
        link->setFlowRecorder(&shardObs->shard(hp.pod).flows);
    }
    hp.link = link.get();
    linkEndPartitions.emplace_back(podPartition(hp.pod),
                                   podPartition(hp.pod));
    links.push_back(std::move(link));
    ++materialized;
}

void
Topology::build()
{
    std::uint64_t seed = config.seed;
    auto next_seed = [&seed] { return ++seed; };

    // --- L2 spine (the spine partition in sharded mode) ---
    for (int i = 0; i < config.l2Count; ++i) {
        l2Switches.push_back(std::make_unique<Switch>(
            queue, makeSwitchConfig("l2." + std::to_string(i),
                                    config.l2Params, next_seed())));
    }

    // --- pods: L1 switches and TORs ---
    // Per-switch seeds advance in construction order, which is the same
    // whether or not the build is sharded: partitioning never changes a
    // switch's jitter stream.
    for (int pod = 0; pod < config.pods; ++pod) {
        for (int i = 0; i < config.l1PerPod; ++i) {
            auto name = "l1." + std::to_string(pod) + "." + std::to_string(i);
            l1Switches.push_back(std::make_unique<Switch>(
                podQueue(pod),
                makeSwitchConfig(name, config.l1Params, next_seed())));
            Switch &l1sw = *l1Switches.back();

            // Uplinks: this L1 to every L2. These are the only cables
            // that cross a partition boundary in sharded mode: the
            // A end (L1 transmitter) lives on the pod's queue, the B
            // end (L2 transmitter) on the spine's, and the cable's
            // propagation delay becomes the registered lookahead.
            std::vector<int> uplinks;
            for (int j = 0; j < config.l2Count; ++j) {
                auto link = std::make_unique<Link>(
                    podQueue(pod), queue, name + "-l2." + std::to_string(j),
                    config.linkGbps, config.l1ToL2Meters);
                if (shards)
                    link->setCrossShard(*shards, podPartition(pod),
                                        spinePartition());
                const int up = l1sw.addPort(&link->aToB());
                link->attachB(l2Switches[j]->portSink(
                    l2Switches[j]->addPort(&link->bToA())));
                link->attachA(l1sw.portSink(up));
                // L2 routes this pod's /16 down through this L1 (the
                // first two octets jointly encode the pod, so this
                // holds past 256 pods — see hostAddr).
                l2Switches[j]->addRoute(
                    Ipv4Addr::of(static_cast<std::uint8_t>(10 + (pod >> 8)),
                                 static_cast<std::uint8_t>(pod & 0xff), 0, 0),
                    16, l2Switches[j]->numPorts() - 1);
                uplinks.push_back(up);
                trunks.push_back(link.get());
                linkEndPartitions.emplace_back(podPartition(pod),
                                               spinePartition());
                links.push_back(std::move(link));
            }
            l1sw.setDefaultRoutes(uplinks);
        }

        for (int rack = 0; rack < config.racksPerPod; ++rack) {
            auto tor_name =
                "tor." + std::to_string(pod) + "." + std::to_string(rack);
            tors.push_back(std::make_unique<Switch>(
                podQueue(pod),
                makeSwitchConfig(tor_name, config.torParams, next_seed())));
            Switch &torsw = *tors.back();

            // Uplinks: this TOR to every L1 in the pod.
            std::vector<int> uplinks;
            for (int i = 0; i < config.l1PerPod; ++i) {
                Switch &l1sw = *l1Switches[pod * config.l1PerPod + i];
                auto link = std::make_unique<Link>(
                    podQueue(pod), tor_name + "-l1", config.linkGbps,
                    config.torToL1Meters);
                const int up = torsw.addPort(&link->aToB());
                const int down = l1sw.addPort(&link->bToA());
                link->attachA(torsw.portSink(up));
                link->attachB(l1sw.portSink(down));
                // L1 routes this rack's /24 down through this port.
                l1sw.addRoute(
                    Ipv4Addr::of(static_cast<std::uint8_t>(10 + (pod >> 8)),
                                 static_cast<std::uint8_t>(pod & 0xff),
                                 static_cast<std::uint8_t>(rack), 0),
                    24, down);
                uplinks.push_back(up);
                trunks.push_back(link.get());
                linkEndPartitions.emplace_back(podPartition(pod),
                                               podPartition(pod));
                links.push_back(std::move(link));
            }
            torsw.setDefaultRoutes(uplinks);

            // Hosts in this rack: always a stub (address + coordinates);
            // the access cable follows immediately in an eager build and
            // on first touch in a lazy one.
            for (int h = 0; h < config.hostsPerRack; ++h) {
                const Ipv4Addr addr = hostAddr(pod, rack, h);
                HostPort hp;
                hp.pod = pod;
                hp.rack = rack;
                hp.indexInRack = h;
                hp.addr = addr;
                hp.mac = MacAddr{0x020000000000ull |
                                 static_cast<std::uint64_t>(addr.value)};
                hosts.push_back(hp);
                if (!config.lazyHosts)
                    materializeHost(static_cast<int>(hosts.size()) - 1);
            }
        }
    }
}

Link &
Topology::l1ToL2Link(int pod, int l1_idx, int l2_idx)
{
    const int i = pod * trunksPerPod() + l1_idx * config.l2Count + l2_idx;
    return *trunks.at(i);
}

Link &
Topology::torToL1Link(int pod, int rack, int l1_idx)
{
    const int i = pod * trunksPerPod() + config.l1PerPod * config.l2Count +
                  rack * config.l1PerPod + l1_idx;
    return *trunks.at(i);
}

std::vector<Channel *>
Topology::fluidPath(int src, int dst)
{
    std::vector<Channel *> path;
    if (src == dst)
        return path;
    const HostPort &s = hosts.at(src);
    const HostPort &d = hosts.at(dst);
    if (s.link != nullptr)
        path.push_back(&s.link->aToB());
    if (s.pod != d.pod || s.rack != d.rack) {
        // One deterministic ECMP-style choice per (src, dst) pair:
        // splitmix64 over the endpoint indices and the topology seed.
        std::uint64_t h = (static_cast<std::uint64_t>(src) << 32) |
                          static_cast<std::uint32_t>(dst);
        h += config.seed + 0x9e3779b97f4a7c15ull;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
        h ^= h >> 31;
        const int l1_up = static_cast<int>(h % config.l1PerPod);
        path.push_back(&torToL1Link(s.pod, s.rack, l1_up).aToB());
        if (s.pod != d.pod) {
            const int l2 = static_cast<int>((h >> 16) % config.l2Count);
            const int l1_down =
                static_cast<int>((h >> 32) % config.l1PerPod);
            path.push_back(&l1ToL2Link(s.pod, l1_up, l2).aToB());
            path.push_back(&l1ToL2Link(d.pod, l1_down, l2).bToA());
            path.push_back(&torToL1Link(d.pod, d.rack, l1_down).bToA());
        } else {
            path.push_back(&torToL1Link(d.pod, d.rack, l1_up).bToA());
        }
    }
    if (d.link != nullptr)
        path.push_back(&d.link->bToA());
    return path;
}

std::uint64_t
Topology::totalSwitchDrops() const
{
    std::uint64_t total = 0;
    for (const auto &sw : tors)
        total += sw->packetsDropped();
    for (const auto &sw : l1Switches)
        total += sw->packetsDropped();
    for (const auto &sw : l2Switches)
        total += sw->packetsDropped();
    return total;
}

void
Topology::attachObservability(obs::Observability *o)
{
    legacyObs = o;
    shardObs = nullptr;
    for (const auto &sw : tors)
        sw->attachObservability(o);
    for (const auto &sw : l1Switches)
        sw->attachObservability(o);
    for (const auto &sw : l2Switches)
        sw->attachObservability(o);
    for (const auto &l : links)
        l->setFlowRecorder(o ? &o->flows : nullptr);
}

void
Topology::attachObservability(obs::ShardedObservability *so)
{
    if (so && so->shardCount() < config.pods + 1)
        sim::fatalf("Topology::attachObservability: need ", config.pods + 1,
                    " shards (pods + spine), got ", so->shardCount());
    shardObs = so;
    legacyObs = nullptr;
    for (std::size_t t = 0; t < tors.size(); ++t) {
        const int pod = static_cast<int>(t) / config.racksPerPod;
        tors[t]->attachObservability(so ? &so->shard(pod) : nullptr);
    }
    for (std::size_t i = 0; i < l1Switches.size(); ++i) {
        const int pod = static_cast<int>(i) / config.l1PerPod;
        l1Switches[i]->attachObservability(so ? &so->shard(pod) : nullptr);
    }
    for (const auto &sw : l2Switches)
        sw->attachObservability(so ? &so->shard(spinePartition()) : nullptr);
    // Flow spans are recorded transmit-side (Channel queues, serializes,
    // and traces on its own partition), so each direction of a
    // partition-crossing trunk gets its own end's recorder.
    for (std::size_t i = 0; i < links.size(); ++i) {
        const auto [pa, pb] = linkEndPartitions[i];
        links[i]->aToB().setFlowRecorder(so ? &so->shard(pa).flows : nullptr);
        links[i]->bToA().setFlowRecorder(so ? &so->shard(pb).flows : nullptr);
    }
}

}  // namespace ccsim::net
