/**
 * @file
 * Pluggable per-packet delay models.
 *
 * Large shared switches (L1/L2 in the paper's three-tier network) carry
 * background traffic from hundreds of thousands of hosts that we cannot
 * afford to simulate packet-by-packet. Instead, a DelayModel injects the
 * queueing-delay distribution such traffic would produce; Figure 10's
 * latency bands (tight L0/L1, spread-out L2 with a 99.9th-percentile tail)
 * come directly from these distributions.
 */
#pragma once

#include <memory>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ccsim::net {

/** Interface: sample an additional per-packet delay. */
class DelayModel
{
  public:
    virtual ~DelayModel() = default;

    /** Draw one delay sample. */
    virtual sim::TimePs sample(sim::Rng &rng) = 0;
};

/** Always returns the same delay (possibly zero). */
class FixedDelay : public DelayModel
{
  public:
    explicit FixedDelay(sim::TimePs d) : delay(d) {}
    sim::TimePs sample(sim::Rng &) override { return delay; }

  private:
    sim::TimePs delay;
};

/**
 * Lognormal queueing jitter, capped.
 *
 * Parameterized by mean and coefficient of variation of the resulting
 * distribution, with a hard cap modelling the switch's finite buffer
 * (beyond which PFC/drops bound the delay).
 */
class LognormalDelay : public DelayModel
{
  public:
    LognormalDelay(sim::TimePs mean, double cv, sim::TimePs cap)
        : meanPs(mean), coeffVar(cv), capPs(cap)
    {
    }

    sim::TimePs sample(sim::Rng &rng) override
    {
        if (meanPs <= 0)
            return 0;
        auto d = static_cast<sim::TimePs>(
            rng.lognormalMeanCv(static_cast<double>(meanPs), coeffVar));
        return d > capPs ? capPs : d;
    }

  private:
    sim::TimePs meanPs;
    double coeffVar;
    sim::TimePs capPs;
};

/**
 * Mixture: with probability p, add a "collision" delay drawn from one
 * model, otherwise a baseline delay from another. Models the paper's L1
 * observation of a tight majority plus a small tail of packets stuck
 * behind other traffic.
 */
class MixtureDelay : public DelayModel
{
  public:
    MixtureDelay(double tail_prob, std::unique_ptr<DelayModel> base,
                 std::unique_ptr<DelayModel> tail)
        : tailProb(tail_prob), baseModel(std::move(base)),
          tailModel(std::move(tail))
    {
    }

    sim::TimePs sample(sim::Rng &rng) override
    {
        if (rng.bernoulli(tailProb))
            return baseModel->sample(rng) + tailModel->sample(rng);
        return baseModel->sample(rng);
    }

  private:
    double tailProb;
    std::unique_ptr<DelayModel> baseModel;
    std::unique_ptr<DelayModel> tailModel;
};

}  // namespace ccsim::net
