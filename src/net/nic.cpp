#include "net/nic.hpp"

namespace ccsim::net {

bool
Nic::sendPacket(const PacketPtr &pkt)
{
    if (txChannel == nullptr)
        return false;
    if (pkt->ethSrc.value == 0)
        pkt->ethSrc = macAddr;
    if (pkt->ipSrc.value == 0)
        pkt->ipSrc = ipAddr;
    if (pkt->createdAt == 0)
        pkt->createdAt = queue.now();
    ++txPackets;
    return txChannel->send(pkt);
}

void
Nic::acceptPacket(const PacketPtr &pkt)
{
    ++rxPackets;
    if (handler)
        handler(pkt);
}

}  // namespace ccsim::net
