#include "net/packet.hpp"

#include <atomic>

#include "sim/pool.hpp"

namespace ccsim::net {

namespace {

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

std::atomic<std::uint64_t> nextPacketId{1};

}  // namespace

std::uint64_t
Packet::flowHash() const
{
    std::uint64_t h = static_cast<std::uint64_t>(ipSrc.value) << 32 |
                      ipDst.value;
    h = mix64(h);
    h ^= static_cast<std::uint64_t>(srcPort) << 32 |
         static_cast<std::uint64_t>(dstPort) << 16 |
         static_cast<std::uint64_t>(ipProto) << 8 | priority;
    return mix64(h);
}

PacketPtr
makePacket()
{
    // allocate_shared + PoolAllocator recycles the combined control-block
    // and Packet allocation through a thread-local freelist: the steady
    // state of a busy simulation does zero allocator traffic per packet.
    auto pkt = std::allocate_shared<Packet>(sim::PoolAllocator<Packet>{});
    pkt->id = nextPacketId.fetch_add(1, std::memory_order_relaxed);
    return pkt;
}

PacketPtr
makePfcPause(std::uint8_t priority, sim::TimePs pause_time)
{
    auto pkt = makePacket();
    pkt->etherType = EtherType::kMacControl;
    auto pfc = std::allocate_shared<PfcFrame>(sim::PoolAllocator<PfcFrame>{});
    pfc->priorityMask = static_cast<std::uint8_t>(1u << priority);
    pfc->pauseTime[priority] = pause_time;
    pkt->meta = pfc;
    return pkt;
}

PacketPoolStats
packetPoolStats()
{
    const sim::PoolStats s = sim::poolStats();
    return PacketPoolStats{s.freshAllocs, s.reusedAllocs, s.freeBlocks};
}

}  // namespace ccsim::net
