#include "net/packet.hpp"

#include <atomic>

namespace ccsim::net {

namespace {

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

std::atomic<std::uint64_t> nextPacketId{1};

}  // namespace

std::uint64_t
Packet::flowHash() const
{
    std::uint64_t h = static_cast<std::uint64_t>(ipSrc.value) << 32 |
                      ipDst.value;
    h = mix64(h);
    h ^= static_cast<std::uint64_t>(srcPort) << 32 |
         static_cast<std::uint64_t>(dstPort) << 16 |
         static_cast<std::uint64_t>(ipProto) << 8 | priority;
    return mix64(h);
}

PacketPtr
makePacket()
{
    auto pkt = std::make_shared<Packet>();
    pkt->id = nextPacketId.fetch_add(1, std::memory_order_relaxed);
    return pkt;
}

PacketPtr
makePfcPause(std::uint8_t priority, sim::TimePs pause_time)
{
    auto pkt = makePacket();
    pkt->etherType = EtherType::kMacControl;
    auto pfc = std::make_shared<PfcFrame>();
    pfc->priorityMask = static_cast<std::uint8_t>(1u << priority);
    pfc->pauseTime[priority] = pause_time;
    pkt->meta = pfc;
    return pkt;
}

}  // namespace ccsim::net
