/**
 * @file
 * Builder for the paper's three-tier datacenter network.
 *
 * Tier L0: top-of-rack (TOR) switches, 24 hosts each in production.
 * Tier L1: pod switches; a pod of 40 racks = 960 machines.
 * Tier L2: datacenter spine connecting pods, reaching >250,000 machines.
 *
 * Each tier adds oversubscription, longer cable runs, and (at L1/L2)
 * background-traffic queueing jitter. The builder wires switches, links,
 * addresses, and routing tables; host endpoints are left free so the FPGA
 * layer can splice its bump-in-the-wire shell between the NIC and the TOR.
 */
#pragma once

#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/switch.hpp"
#include "sim/event_queue.hpp"

namespace ccsim::sim {
class ShardedEventQueue;
}
namespace ccsim::obs {
class ShardedObservability;
}

namespace ccsim::net {

/** Per-tier switch parameters. */
struct TierParams {
    sim::TimePs forwardingLatency;
    /** Mean/cv/cap of lognormal background jitter; mean 0 disables it. */
    sim::TimePs jitterMean = 0;
    double jitterCv = 1.0;
    sim::TimePs jitterCap = 0;
    /** Probability a packet hits an additional congestion tail event. */
    double tailProb = 0.0;
    sim::TimePs tailMean = 0;
    double tailCv = 1.0;
    sim::TimePs tailCap = 0;
};

/** Configuration for a datacenter instance. */
struct TopologyConfig {
    int hostsPerRack = 24;
    int racksPerPod = 2;
    int l1PerPod = 2;
    int pods = 1;
    int l2Count = 2;

    double linkGbps = 40.0;

    double hostCableMeters = 5.0;
    double torToL1Meters = 50.0;
    double l1ToL2Meters = 300.0;

    /**
     * Calibrated to reproduce Figure 10's L0/L1/L2 latency bands
     * (L0 2.88 us avg / 2.9 p99.9; L1 7.72 / 8.24 with a small outlier
     * tail; L2 18.71 / 22.38 with max < 23.5).
     */
    TierParams torParams{450 * sim::kNanosecond,
                         5 * sim::kNanosecond,
                         1.0,
                         50 * sim::kNanosecond,
                         0.0,
                         0,
                         1.0,
                         0};
    TierParams l1Params{1340 * sim::kNanosecond,
                        60 * sim::kNanosecond,
                        0.8,
                        300 * sim::kNanosecond,
                        0.02,
                        200 * sim::kNanosecond,
                        0.6,
                        600 * sim::kNanosecond};
    TierParams l2Params{750 * sim::kNanosecond,
                        180 * sim::kNanosecond,
                        1.0,
                        1100 * sim::kNanosecond,
                        0.08,
                        1300 * sim::kNanosecond,
                        0.7,
                        2100 * sim::kNanosecond};

    std::uint64_t seed = 42;

    /**
     * Flyweight hosts: build() creates switches, trunks, routes, and
     * per-host HostPort stubs (address, MAC, pod/rack coordinates —
     * tens of bytes), but defers each host's access cable and TOR port
     * until the host is first touched (attachHostDevice / hostTx /
     * hostLink / materializeHost). Materialization is deterministic: it
     * depends only on the touch itself, never on wall-clock or
     * allocation state, and a fully-materialized lazy fabric routes
     * identically to an eager one.
     */
    bool lazyHosts = false;
};

/** A built datacenter network. */
class Topology
{
  public:
    /** One host attachment point (the free end of the host<->TOR cable). */
    struct HostPort {
        int pod = 0;
        int rack = 0;
        int indexInRack = 0;
        Ipv4Addr addr;
        MacAddr mac;
        Link *link = nullptr;  ///< host side is end A; TOR side is end B
    };

    Topology(sim::EventQueue &eq, TopologyConfig cfg);

    /**
     * Partitioned construction: pod p's switches, links, and hosts live
     * on @p sq.partition(p); the L2 spine lives on partition `pods`
     * (so @p sq needs pods + 1 partitions). The only partition-crossing
     * cables are the L1<->L2 trunks; they are registered as cross edges
     * with lookahead = their propagation delay (l1ToL2Meters), which
     * becomes the kernel's conservative sync window.
     */
    Topology(sim::ShardedEventQueue &sq, TopologyConfig cfg);

    int numHosts() const { return static_cast<int>(hosts.size()); }
    int numPods() const { return config.pods; }
    int racksPerPod() const { return config.racksPerPod; }
    int hostsPerRack() const { return config.hostsPerRack; }
    int l1PerPod() const { return config.l1PerPod; }
    int numL2() const { return config.l2Count; }

    /** Host attachment point by global index. */
    HostPort &host(int global_index) { return hosts.at(global_index); }

    /** Global host index from (pod, rack, index-in-rack). */
    int hostIndex(int pod, int rack, int idx) const;

    /**
     * Attach a device to a host port: it will receive traffic from the TOR
     * and may transmit into hostTx().
     */
    void attachHostDevice(int global_index, PacketSink *device);

    /** Channel a host-side device transmits into (toward its TOR). */
    Channel &hostTx(int global_index);

    /**
     * IP address assigned to a host. Pods 0-255 map to 10.pod.rack.idx
     * exactly as before; pods 256-509 spill into the 11.x second octet
     * (the first two octets together encode the pod, so the /16
     * pod-prefix routes at L2 still work at paper scale — ~260 pods).
     */
    static Ipv4Addr hostAddr(int pod, int rack, int idx)
    {
        return Ipv4Addr::of(static_cast<std::uint8_t>(10 + (pod >> 8)),
                            static_cast<std::uint8_t>(pod & 0xff),
                            static_cast<std::uint8_t>(rack),
                            static_cast<std::uint8_t>(idx + 1));
    }

    /** Access switches for instrumentation. */
    Switch &tor(int pod, int rack);
    Switch &l1(int pod, int idx);
    Switch &l2(int idx);

    /** The host<->TOR cable of a host (for fault injection). Touching
     * it materializes the host in a lazy build. */
    Link &hostLink(int global_index);

    // --- flyweight hosts (lazyHosts) ---

    /**
     * Create a host's access cable and TOR port now (idempotent; no-op
     * in an eager build where every host is born materialized). Cable
     * name, rate, length, and routing are identical to the eager build;
     * only the TOR port number can differ, and nothing observable
     * depends on it (routing is by address, switch metrics aggregate
     * over ports).
     */
    void materializeHost(int global_index);

    /** True once a host's access cable exists. */
    bool hostMaterialized(int global_index) const
    {
        return hosts.at(global_index).link != nullptr;
    }

    /** Hosts whose access cable exists (== numHosts() when eager). */
    int materializedHosts() const { return materialized; }

    /** True if this topology defers host materialization. */
    bool lazyHosts() const { return config.lazyHosts; }

    // --- fluid background traffic (ccsim::net::FluidTrafficModel) ---

    /** Trunk cable from L1 switch (pod, l1_idx) up to L2 spine l2_idx
     * (end A = L1, end B = L2). */
    Link &l1ToL2Link(int pod, int l1_idx, int l2_idx);

    /** Trunk cable from TOR (pod, rack) up to L1 l1_idx
     * (end A = TOR, end B = L1). */
    Link &torToL1Link(int pod, int rack, int l1_idx);

    /**
     * The trunk channels a src→dst flow occupies, in transmit order,
     * with one deterministic ECMP-style path per (src, dst) pair (a
     * seeded hash of the endpoint indices — the fluid model cannot
     * consult per-packet ECMP). Host access cables are included only if
     * materialized at call time; stub endpoints contribute no channel.
     * Same-host pairs return an empty path.
     */
    std::vector<Channel *> fluidPath(int src, int dst);

    /** Number of inter-switch (TOR<->L1, L1<->L2) trunk cables. */
    int numTrunkLinks() const { return static_cast<int>(trunks.size()); }

    /** An inter-switch trunk cable by index (for fault injection). */
    Link &trunkLink(int index) { return *trunks.at(index); }

    /** Aggregate drop count across all switches (excluding channels). */
    std::uint64_t totalSwitchDrops() const;

    /**
     * Attach every switch in the fabric to @p o (each exports under
     * `switch.<its config name>.*`). Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o);

    /**
     * Partition-aware attach: every component registers with the hub of
     * the shard it executes on (pod switches with shard(pod), the spine
     * with shard(pods)), and each trunk channel records flow spans into
     * its *transmit-side* shard's recorder, so no hub is ever touched by
     * two worker threads. Pass nullptr to detach.
     */
    void attachObservability(obs::ShardedObservability *so);

    /** The partition a pod's components run on (== the pod index). */
    int podPartition(int pod) const { return pod; }
    /** The partition the L2 spine runs on. */
    int spinePartition() const { return config.pods; }

  private:
    sim::EventQueue &queue;  ///< sharded mode: the spine partition
    TopologyConfig config;
    sim::ShardedEventQueue *shards = nullptr;

    std::vector<std::unique_ptr<Switch>> tors;       // pod*racksPerPod+rack
    std::vector<std::unique_ptr<Switch>> l1Switches; // pod*l1PerPod+idx
    std::vector<std::unique_ptr<Switch>> l2Switches;
    std::vector<std::unique_ptr<Link>> links;
    /** (end A, end B) partitions of each link, aligned with `links`. */
    std::vector<std::pair<int, int>> linkEndPartitions;
    std::vector<Link *> trunks;  ///< inter-switch subset of `links`
    std::vector<HostPort> hosts;
    /** TOR-port index of each host link's device side channel. */
    std::vector<Channel *> hostTxChannels;
    int materialized = 0;
    /** Remembered attach state so lazily-created cables get recorders. */
    obs::Observability *legacyObs = nullptr;
    obs::ShardedObservability *shardObs = nullptr;

    static std::shared_ptr<DelayModel> makeJitter(const TierParams &p);
    SwitchConfig makeSwitchConfig(const std::string &name,
                                  const TierParams &p, std::uint64_t seed);
    sim::EventQueue &podQueue(int pod);
    void build();
    void validateConfig() const;
    /** Per-pod stride in the `trunks` vector. */
    int trunksPerPod() const
    {
        return config.l1PerPod * config.l2Count +
               config.racksPerPod * config.l1PerPod;
    }
};

}  // namespace ccsim::net
