/**
 * @file
 * Serialized point-to-point channels and full-duplex links.
 *
 * A Channel is one direction of a cable: it serializes packets at the link
 * rate, applies propagation delay, keeps per-priority transmit queues, and
 * honors 802.1Qbb PFC pause per priority. A Link bundles two channels and
 * transparently intercepts PFC frames: a pause frame received at one end
 * throttles that end's transmitter, exactly as a MAC would.
 */
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace ccsim::sim {
class ShardedEventQueue;
}

namespace ccsim::net {

/** One direction of a link. */
class Channel
{
  public:
    /**
     * @param eq          Event queue driving this channel.
     * @param name        Trace name.
     * @param gbps        Line rate in Gb/s.
     * @param prop_delay  One-way propagation delay.
     * @param queue_cap_bytes Per-priority transmit queue capacity.
     */
    Channel(sim::EventQueue &eq, std::string name, double gbps,
            sim::TimePs prop_delay, std::uint32_t queue_cap_bytes);

    /** Set the receiving device at the far end. */
    void setSink(PacketSink *s) { sink = s; }

    /**
     * Enqueue a packet for transmission.
     *
     * Lossy-priority packets are dropped (and counted) when the transmit
     * queue for their priority is full; callers using lossless priorities
     * are expected to respect PFC back-pressure via queuedBytes().
     *
     * @param pkt            The packet.
     * @param on_transmitted Optional callback invoked when the last bit has
     *                       been serialized onto the wire (used by switches
     *                       for ingress buffer accounting).
     * @return true if the packet was enqueued, false if dropped.
     */
    bool send(const PacketPtr &pkt,
              std::function<void()> on_transmitted = {});

    /**
     * Pause transmission of @p priority for @p duration from now.
     * Duration zero resumes immediately (X-ON).
     */
    void pausePriority(std::uint8_t priority, sim::TimePs duration);

    /** Bytes currently queued at @p priority (for sender back-pressure). */
    std::uint32_t queuedBytes(std::uint8_t priority) const
    {
        return queueBytes[priority];
    }

    /** Total bytes queued across all priorities. */
    std::uint32_t totalQueuedBytes() const;

    /** True if @p priority is currently paused by PFC. */
    bool isPaused(std::uint8_t priority) const;

    /** Line rate in Gb/s. */
    double rateGbps() const { return gbps; }

    // --- fluid background load (ccsim::net::FluidTrafficModel) ---

    /**
     * Fold an aggregate background-flow rate into this channel. Fluid
     * flows are not simulated packet by packet; their only effect on the
     * packet path is that serialization proceeds at the residual rate
     * (line rate minus the fluid aggregate, floored at 5% of line rate
     * so a mis-modeled overload degrades instead of wedging). Rates are
     * integer bits/s so add/remove pairs cancel exactly: a channel whose
     * fluid load returns to zero is bit-for-bit the channel that never
     * saw any.
     */
    void addFluidBps(std::uint64_t bps) { fluidRateBps += bps; }

    /** Remove @p bps of fluid load (must match a previous add). */
    void removeFluidBps(std::uint64_t bps);

    /** Current aggregate fluid rate in bits/s. */
    std::uint64_t fluidBps() const { return fluidRateBps; }

    /** Fraction of the line rate consumed by fluid background load. */
    double fluidUtilization() const
    {
        return static_cast<double>(fluidRateBps) / (gbps * 1e9);
    }

    /**
     * Account bytes advanced by the fluid model for flows traversing
     * this channel (the fluid analogue of bytesSent()). Called by
     * FluidTrafficModel at fold points; the conservation tests compare
     * these credits against per-flow integrals.
     */
    void creditFluidBytes(std::uint64_t bytes) { fluidBytes += bytes; }

    /** Cumulative fluid bytes advanced across this channel. */
    std::uint64_t fluidBytesDelivered() const { return fluidBytes; }

    // --- partitioned execution (ccsim::sim::ShardedEventQueue) ---

    /**
     * Route deliveries across a partition boundary. The transmit side
     * (queueing, PFC, serialization, fault check, tracing) stays on this
     * channel's own queue — partition @p src_lp — and only the final
     * propagation hop is handed to partition @p dst_lp as a cross-shard
     * message. The channel's propagation delay is the edge's lookahead
     * contribution, so it must be >= the kernel's sync window (enforced
     * by ShardedEventQueue::registerCrossEdge, which the caller — in
     * practice Link::setCrossShard / the topology builder — invokes).
     */
    void setCrossShardDelivery(sim::ShardedEventQueue *sq, int src_lp,
                               int dst_lp);

    /** One-way propagation delay (the lookahead this channel provides). */
    sim::TimePs propagationDelay() const { return propDelay; }

    // --- fault injection hooks (ccsim::fault) ---

    /**
     * Administratively cut this direction of the cable. While down, frames
     * still serialize (the transmitter cannot see the cut) but every bit
     * is lost on the wire: nothing reaches the sink. Counted in
     * faultDrops(). Raising the channel back up does not resurrect frames
     * lost while it was down — recovery is the transport's job (LTL).
     */
    void setAdminDown(bool down) { adminDown = down; }

    /** True if the channel is administratively down. */
    bool isAdminDown() const { return adminDown; }

    /**
     * Install a delivery-time fault hook, called once per non-PFC packet
     * as it would reach the far end; return true to drop it (models CRC
     * corruption on the wire). Pass an empty function to remove. The hook
     * must be deterministic for reproducible runs (draw randomness from a
     * seeded sim::Rng only).
     */
    void setFaultHook(std::function<bool(const PacketPtr &)> hook)
    {
        faultHook = std::move(hook);
    }

    /** Packets lost to admin-down or the fault hook. */
    std::uint64_t faultDrops() const { return faultDropped; }

    /**
     * Inflate delivery latency by @p extra on top of the propagation
     * delay (the gray-fault model: a degraded optic or overheating
     * switch that still forwards every frame, slower). Applies to
     * packets whose propagation hop starts after the call; zero restores
     * nominal latency. Safe on sharded runs: latency only ever increases
     * above the registered cross-edge minimum, so the conservative
     * lookahead still holds.
     */
    void setExtraLatency(sim::TimePs extra) { extraDelay = extra; }

    /** Current gray-fault latency inflation (0 = nominal). */
    sim::TimePs extraLatency() const { return extraDelay; }

    // --- flow tracing (ccsim::obs) ---

    /**
     * Attach (or detach, with nullptr) a flight recorder. Sampled packets
     * then get queueing / PFC-pause / serialization / propagation spans
     * recorded against their flow; unsampled packets pay one predicted
     * branch per stage.
     */
    void setFlowRecorder(obs::FlightRecorder *r) { flowRec = r; }

    // --- statistics ---
    std::uint64_t packetsSent() const { return txPackets; }
    std::uint64_t bytesSent() const { return txBytes; }
    std::uint64_t packetsDropped() const { return drops; }
    std::uint64_t pausesReceived() const { return pauses; }

  private:
    sim::EventQueue &queue;
    std::string label;
    double gbps;
    sim::TimePs propDelay;
    std::uint32_t queueCapBytes;
    PacketSink *sink = nullptr;

    struct TxEntry {
        PacketPtr pkt;
        std::function<void()> onTransmitted;
        sim::TimePs enqueuedAt = 0;  ///< sampled packets only
        sim::TimePs pauseBase = 0;   ///< pausedTimeNow() at enqueue
    };
    /**
     * Cumulative PFC pause-time clock for one priority. Folding happens
     * in pausePriority(); pausedTimeNow() reads the running total. The
     * difference between two reads is exactly the pause time the channel
     * saw in between, which splits a sampled packet's queue wait into
     * true queueing vs. PFC pause.
     */
    struct PauseClock {
        sim::TimePs accum = 0;
        sim::TimePs curStart = 0;
        sim::TimePs curEnd = 0;
    };
    std::array<std::deque<TxEntry>, kNumTrafficClasses> txQueues;
    std::array<std::uint32_t, kNumTrafficClasses> queueBytes{};
    std::array<sim::TimePs, kNumTrafficClasses> pausedUntil{};
    std::array<PauseClock, kNumTrafficClasses> pauseClock{};
    obs::FlightRecorder *flowRec = nullptr;
    bool transmitting = false;
    sim::EventId resumeEvent = sim::kNoEvent;
    bool adminDown = false;
    sim::TimePs extraDelay = 0;
    std::function<bool(const PacketPtr &)> faultHook;
    sim::ShardedEventQueue *crossShard = nullptr;
    int crossSrc = 0;
    int crossDst = 0;
    std::uint64_t fluidRateBps = 0;
    std::uint64_t fluidBytes = 0;

    std::uint64_t txPackets = 0;
    std::uint64_t txBytes = 0;
    std::uint64_t drops = 0;
    std::uint64_t pauses = 0;
    std::uint64_t faultDropped = 0;

    void tryTransmit();
    void finishTransmit(TxEntry entry);
    double effectiveGbps() const;
    int pickQueue() const;
    sim::TimePs earliestUnpause() const;
    sim::TimePs pausedTimeNow(std::uint8_t priority) const;
};

/** A full-duplex cable between two devices, with MAC-level PFC handling. */
class Link
{
  public:
    /**
     * @param eq              Event queue.
     * @param name            Trace name; channels get name+".ab"/".ba".
     * @param gbps            Line rate each direction.
     * @param length_meters   Cable length (propagation at ~5 ns/m).
     * @param queue_cap_bytes Per-priority transmit queue capacity.
     */
    Link(sim::EventQueue &eq, std::string name, double gbps,
         double length_meters,
         std::uint32_t queue_cap_bytes = 1024 * 1024);

    /**
     * Partition-spanning link: end A (and the A-to-B transmitter) lives
     * on @p eq_a, end B (and the B-to-A transmitter) on @p eq_b. Wire
     * up delivery with setCrossShard() when the two queues are
     * partitions of a ShardedEventQueue.
     */
    Link(sim::EventQueue &eq_a, sim::EventQueue &eq_b, std::string name,
         double gbps, double length_meters,
         std::uint32_t queue_cap_bytes = 1024 * 1024);

    /**
     * Register this link as the (lp_a <-> lp_b) partition crossing:
     * registers both cross edges with lookahead = propagation delay and
     * routes both directions' deliveries through @p sq. Requires the
     * two-queue constructor with eq_a == sq.partition(lp_a) and
     * eq_b == sq.partition(lp_b).
     */
    void setCrossShard(sim::ShardedEventQueue &sq, int lp_a, int lp_b);

    /** The A-to-B direction (device A transmits here). */
    Channel &aToB() { return *ab; }
    /** The B-to-A direction. */
    Channel &bToA() { return *ba; }

    /** Attach the device at end A (receives B-to-A traffic). */
    void attachA(PacketSink *a);
    /** Attach the device at end B (receives A-to-B traffic). */
    void attachB(PacketSink *b);

    /** Cut (or restore) both directions of the cable at once. */
    void setAdminDown(bool down)
    {
        ab->setAdminDown(down);
        ba->setAdminDown(down);
    }

    /** True if either direction is administratively down. */
    bool isAdminDown() const
    {
        return ab->isAdminDown() || ba->isAdminDown();
    }

    /** Attach a flight recorder to both directions (nullptr detaches). */
    void setFlowRecorder(obs::FlightRecorder *r)
    {
        ab->setFlowRecorder(r);
        ba->setFlowRecorder(r);
    }

  private:
    /** Shim that consumes PFC frames and forwards the rest. */
    class PfcShim : public PacketSink
    {
      public:
        PfcShim(Channel *reverse_tx) : reverseTx(reverse_tx) {}
        void setInner(PacketSink *s) { inner = s; }
        void acceptPacket(const PacketPtr &pkt) override;

      private:
        Channel *reverseTx;
        PacketSink *inner = nullptr;
    };

    std::unique_ptr<Channel> ab;
    std::unique_ptr<Channel> ba;
    std::unique_ptr<PfcShim> shimA;  ///< sits in front of device A
    std::unique_ptr<PfcShim> shimB;  ///< sits in front of device B
};

}  // namespace ccsim::net
