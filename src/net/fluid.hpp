/**
 * @file
 * Hybrid fluid/packet background traffic for paper-scale fabrics.
 *
 * Simulating every background flow packet-by-packet across a 250k-host
 * L2 fabric is intractable; simulating none of them under-reports the
 * queueing that shapes tail latency on monitored paths. The middle
 * ground used here (standard in large-scale network simulation) is a
 * fluid approximation: a background flow is a rate aggregate folded
 * into each channel along one deterministic ECMP-style path, slowing
 * packet serialization by the residual-rate effect, while its byte
 * progress advances analytically. Flows that cross a *monitored*
 * channel (a fig10 probe path, a sampled-trace link, a fault site) can
 * be promoted to packet fidelity at a conservation-checked boundary:
 * the fluid integral is folded to the instant of promotion, the rate
 * is removed from the path, and from then on real packets account the
 * bytes — no byte is ever counted in both regimes, and the sub-byte
 * remainder survives promote/demote round trips.
 *
 * All accounting is exact integer arithmetic in bit·picoseconds
 * (1 byte = 8e12 bit·ps), so a flow's byte total depends only on its
 * rate schedule — never on when the model happened to be folded.
 * That "fold-schedule independence" is the byte-stability invariant
 * the property tests pin down.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/pool.hpp"

namespace ccsim::sim {
class ShardedEventQueue;
}

namespace ccsim::net {

/** One background flow: a compact, pooled record. */
struct FluidFlow {
    std::uint64_t id = 0;
    int srcHost = 0;
    int dstHost = 0;
    /** Nominal rate while fluid, bits/s. */
    std::uint64_t rateBps = 0;
    /** True while the flow runs at packet fidelity. */
    bool promoted = false;
    /**
     * True while some hop of the path is administratively down (a cut
     * cable or a dead switch's trunk): the aggregate is zeroed — the
     * flow delivers nothing, accrues nothing, and stops slowing the
     * surviving hops — until a fold finds the path whole again. Stall
     * state is polled at fold points, so it is a pure function of
     * simulated state (deterministic on any worker count).
     */
    bool stalled = false;
    /** Simulation time the fluid integral was last folded to. */
    sim::TimePs lastFold = 0;
    /** Sub-byte remainder in bit·ps, carried across folds/promotions. */
    unsigned __int128 residualBitPs = 0;
    /** Bytes advanced analytically (fluid regime). */
    std::uint64_t fluidBytes = 0;
    /** Bytes credited by the packet regime while promoted. */
    std::uint64_t packetBytes = 0;
    /** Trunk channels the flow's rate is folded into, transmit order. */
    std::vector<Channel *> path;
};

/** Totals for the fluid/packet conservation invariant (see verify()). */
struct FluidConservation {
    std::uint64_t flows = 0;        ///< flows ever added (live + removed)
    std::uint64_t fluidBytes = 0;   ///< Σ per-flow fluid-regime bytes
    std::uint64_t packetBytes = 0;  ///< Σ per-flow packet-regime bytes
    /** Σ creditFluidBytes over every channel this model ever loaded. */
    std::uint64_t channelCredits = 0;
    /** What the per-flow integrals say that sum must be (bytes × hops). */
    std::uint64_t expectedChannelCredits = 0;
    bool ok = false;  ///< channelCredits == expectedChannelCredits
};

/**
 * Owner of all fluid background flows over one Topology. Single-writer:
 * fold/promote/demote/setRate must be called from the coordinator
 * thread while the kernel is quiescent (between runs, or from a barrier
 * hook in sharded mode) — the model touches channels on many
 * partitions.
 */
class FluidTrafficModel
{
  public:
    FluidTrafficModel(sim::EventQueue &eq, Topology &topo);
    /** Sharded kernel: "now" is the barrier time sq.now(). */
    FluidTrafficModel(sim::ShardedEventQueue &sq, Topology &topo);

    FluidTrafficModel(const FluidTrafficModel &) = delete;
    FluidTrafficModel &operator=(const FluidTrafficModel &) = delete;
    ~FluidTrafficModel();

    /**
     * Start a background flow src→dst at @p rate_bps. The path is
     * captured now (stub endpoints contribute no access cable) and the
     * rate folded into each hop. Returns the flow id.
     */
    std::uint64_t addFlow(int src_host, int dst_host,
                          std::uint64_t rate_bps);

    /** Fold the integral to now, then change the flow's rate. */
    void setRate(std::uint64_t id, std::uint64_t rate_bps);

    /** Fold, unload the path, and retire the flow (totals are kept). */
    void removeFlow(std::uint64_t id);

    // --- the fluid <-> packet fidelity boundary ---

    /**
     * Promote a flow to packet fidelity: the fluid integral is folded
     * to this instant (sub-byte remainder retained on the record), the
     * rate is removed from every hop, and the caller takes over driving
     * real packets, reporting their bytes via creditPacketBytes().
     * Idempotent.
     */
    void promote(std::uint64_t id);

    /** Account bytes the packet regime delivered for a promoted flow. */
    void creditPacketBytes(std::uint64_t id, std::uint64_t bytes);

    /**
     * Return a promoted flow to the fluid regime at @p rate_bps; the
     * carried remainder resumes exactly where promotion left it.
     */
    void demote(std::uint64_t id, std::uint64_t rate_bps);

    // --- monitored paths (promotion triggers) ---

    /** Mark / unmark a channel as monitored (probe path, fault site). */
    void setMonitored(const Channel *c, bool monitored);

    /** True if any hop of the flow's path is monitored. */
    bool crossesMonitored(std::uint64_t id) const;

    /** Ids of live, unpromoted flows crossing a monitored channel. */
    std::vector<std::uint64_t> flowsCrossingMonitored() const;

    // --- accounting ---

    /** Advance every live fluid flow's integral to now. */
    void foldAll();

    /** Check the conservation invariant over everything ever flowed. */
    FluidConservation verify() const;

    std::size_t liveFlows() const { return flows.size(); }
    std::uint64_t flowsAdded() const { return nextId - 1; }

    /** Live fluid flows currently stalled on a dead hop. */
    std::size_t stalledFlows() const;

    /** Transitions into the stalled state (fault-interplay telemetry). */
    std::uint64_t stallTransitions() const { return statStalls; }

    /** A live flow's record (nullptr if removed/unknown). */
    const FluidFlow *flow(std::uint64_t id) const;

  private:
    using FlowPtr = std::shared_ptr<FluidFlow>;
    using FlowMap =
        std::map<std::uint64_t, FlowPtr, std::less<std::uint64_t>,
                 sim::PoolAllocator<std::pair<const std::uint64_t, FlowPtr>>>;

    Topology &topo;
    sim::EventQueue *eq = nullptr;
    sim::ShardedEventQueue *sq = nullptr;
    FlowMap flows;
    std::set<const Channel *> monitored;
    /** Every channel a flow was ever folded into (for verify()). */
    std::set<Channel *> touched;
    std::uint64_t nextId = 1;
    std::uint64_t retiredFluidBytes = 0;
    std::uint64_t retiredPacketBytes = 0;
    std::uint64_t retiredFlows = 0;
    std::uint64_t expectedCredits = 0;  ///< Σ folded bytes × hops
    std::uint64_t statStalls = 0;

    sim::TimePs now() const;
    FluidFlow &get(std::uint64_t id);
    /** Advance one flow's integral to now and credit its hops. */
    void fold(FluidFlow &f);
    void loadPath(FluidFlow &f);
    void unloadPath(FluidFlow &f);
    /** True if any hop of the path is administratively down. */
    bool pathDead(const FluidFlow &f) const;
    /** Re-poll path health, moving the rate on/off the hops on change. */
    void refreshStall(FluidFlow &f);
};

}  // namespace ccsim::net
