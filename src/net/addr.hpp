/**
 * @file
 * Network addressing primitives: MAC and IPv4 addresses.
 *
 * The Configurable Cloud routes LTL frames with ordinary IPv4/UDP headers
 * over the datacenter Ethernet fabric, so the simulator models real
 * addresses rather than abstract node ids.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ccsim::net {

/** A 48-bit Ethernet MAC address stored in the low bits of a uint64. */
struct MacAddr {
    std::uint64_t value = 0;

    constexpr bool operator==(const MacAddr &) const = default;
    constexpr bool operator<(const MacAddr &o) const { return value < o.value; }

    /** Render as aa:bb:cc:dd:ee:ff. */
    std::string str() const;

    /** The broadcast address ff:ff:ff:ff:ff:ff. */
    static constexpr MacAddr broadcast() { return {0xFFFFFFFFFFFFull}; }
};

/** An IPv4 address in host byte order. */
struct Ipv4Addr {
    std::uint32_t value = 0;

    constexpr bool operator==(const Ipv4Addr &) const = default;
    constexpr bool operator<(const Ipv4Addr &o) const { return value < o.value; }

    /** Render as dotted quad. */
    std::string str() const;

    /** Build from four octets. */
    static constexpr Ipv4Addr
    of(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
    {
        return {static_cast<std::uint32_t>(a) << 24 |
                static_cast<std::uint32_t>(b) << 16 |
                static_cast<std::uint32_t>(c) << 8 | d};
    }
};

}  // namespace ccsim::net

template <>
struct std::hash<ccsim::net::MacAddr> {
    std::size_t operator()(const ccsim::net::MacAddr &a) const noexcept
    {
        return std::hash<std::uint64_t>{}(a.value);
    }
};

template <>
struct std::hash<ccsim::net::Ipv4Addr> {
    std::size_t operator()(const ccsim::net::Ipv4Addr &a) const noexcept
    {
        return std::hash<std::uint32_t>{}(a.value);
    }
};
