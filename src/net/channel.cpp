#include "net/channel.hpp"

#include <algorithm>

#include "sim/logging.hpp"
#include "sim/sharded_queue.hpp"

namespace ccsim::net {

Channel::Channel(sim::EventQueue &eq, std::string name, double rate_gbps,
                 sim::TimePs prop_delay, std::uint32_t queue_cap_bytes)
    : queue(eq), label(std::move(name)), gbps(rate_gbps),
      propDelay(prop_delay), queueCapBytes(queue_cap_bytes)
{
    if (gbps <= 0.0)
        sim::panic("Channel: rate must be positive");
}

void
Channel::removeFluidBps(std::uint64_t bps)
{
    if (bps > fluidRateBps)
        sim::panic("Channel: fluid rate underflow (remove without add)");
    fluidRateBps -= bps;
}

double
Channel::effectiveGbps() const
{
    // Residual line rate after the fluid aggregate, floored at 5% so an
    // over-subscribed channel slows packets down rather than stalling.
    const double line_bps = gbps * 1e9;
    const double residual = line_bps - static_cast<double>(fluidRateBps);
    return std::max(residual, 0.05 * line_bps) / 1e9;
}

std::uint32_t
Channel::totalQueuedBytes() const
{
    std::uint32_t total = 0;
    for (auto b : queueBytes)
        total += b;
    return total;
}

bool
Channel::isPaused(std::uint8_t priority) const
{
    return pausedUntil[priority] > queue.now();
}

bool
Channel::send(const PacketPtr &pkt, std::function<void()> on_transmitted)
{
    const std::uint8_t prio = pkt->isPfc() ? 7 : pkt->priority;
    const std::uint32_t wire = pkt->wireBytes();
    // PFC control frames are never dropped and jump to the control queue
    // (priority 7 is reserved for control in our configuration).
    if (!pkt->isPfc() && queueBytes[prio] + wire > queueCapBytes) {
        ++drops;
        CCSIM_LOG(sim::LogLevel::kDebug, label, queue.now(),
                  "tx queue full, dropping packet ", pkt->id, " prio ",
                  int(prio));
        return false;
    }
    TxEntry entry{pkt, std::move(on_transmitted)};
    if (pkt->trace.sampled && flowRec) {
        entry.enqueuedAt = queue.now();
        entry.pauseBase = pausedTimeNow(prio);
    }
    txQueues[prio].push_back(std::move(entry));
    queueBytes[prio] += wire;
    tryTransmit();
    return true;
}

sim::TimePs
Channel::pausedTimeNow(std::uint8_t priority) const
{
    const PauseClock &pc = pauseClock[priority];
    const sim::TimePs now = queue.now();
    const sim::TimePs cur = std::min(pc.curEnd, now) - pc.curStart;
    return pc.accum + (cur > 0 ? cur : 0);
}

void
Channel::pausePriority(std::uint8_t priority, sim::TimePs duration)
{
    ++pauses;
    const sim::TimePs now = queue.now();
    // Fold the elapsed part of any current pause into the clock, then
    // start the new interval (zero duration = X-ON, closes it).
    PauseClock &pc = pauseClock[priority];
    const sim::TimePs cur = std::min(pc.curEnd, now) - pc.curStart;
    pc.accum += cur > 0 ? cur : 0;
    pc.curStart = now;
    pc.curEnd = duration > 0 ? now + duration : now;
    pausedUntil[priority] = duration > 0 ? now + duration : 0;
    if (duration == 0) {
        tryTransmit();
    }
}

int
Channel::pickQueue() const
{
    // Strict priority, highest first; PFC control traffic (7) always wins.
    const sim::TimePs now = queue.now();
    for (int prio = kNumTrafficClasses - 1; prio >= 0; --prio) {
        if (txQueues[prio].empty())
            continue;
        const bool is_ctrl = txQueues[prio].front().pkt->isPfc();
        if (!is_ctrl && pausedUntil[prio] > now)
            continue;
        return prio;
    }
    return -1;
}

sim::TimePs
Channel::earliestUnpause() const
{
    sim::TimePs t = sim::kTimeNever;
    const sim::TimePs now = queue.now();
    for (int prio = 0; prio < kNumTrafficClasses; ++prio) {
        if (!txQueues[prio].empty() && pausedUntil[prio] > now)
            t = std::min(t, pausedUntil[prio]);
    }
    return t;
}

void
Channel::tryTransmit()
{
    if (transmitting)
        return;
    const int prio = pickQueue();
    if (prio < 0) {
        // Everything pending is paused; re-arm at the earliest unpause.
        const sim::TimePs when = earliestUnpause();
        if (when != sim::kTimeNever && resumeEvent == sim::kNoEvent) {
            resumeEvent = queue.schedule(when, [this] {
                resumeEvent = sim::kNoEvent;
                tryTransmit();
            });
        }
        return;
    }
    TxEntry entry = std::move(txQueues[prio].front());
    txQueues[prio].pop_front();
    queueBytes[prio] -= entry.pkt->wireBytes();
    transmitting = true;
    // With no fluid load the serialization rate is the configured gbps
    // *by the same expression as always*, keeping legacy runs
    // byte-identical; fluid load shifts it to the residual rate.
    const sim::TimePs ser = sim::serializationDelay(
        entry.pkt->wireBytes(),
        fluidRateBps == 0 ? gbps : effectiveGbps());
    if (entry.pkt->trace.sampled && flowRec) {
        // Split the queue wait into true queueing and PFC pause (the
        // pause-clock delta, clamped to the wait, placed at its end),
        // then the serialization occupancy.
        const sim::TimePs now = queue.now();
        const sim::TimePs wait = now - entry.enqueuedAt;
        sim::TimePs pause =
            pausedTimeNow(static_cast<std::uint8_t>(prio)) - entry.pauseBase;
        pause = pause < 0 ? 0 : (pause > wait ? wait : pause);
        const sim::TimePs queued = wait - pause;
        if (queued > 0)
            flowRec->recordSpan(entry.pkt->trace, label + ".q",
                                obs::Component::kQueueing, entry.enqueuedAt,
                                entry.enqueuedAt + queued);
        if (pause > 0)
            flowRec->recordSpan(entry.pkt->trace, label + ".pfc",
                                obs::Component::kPfcPause,
                                entry.enqueuedAt + queued, now);
        flowRec->recordSpan(entry.pkt->trace, label,
                            obs::Component::kSerialization, now, now + ser);
    }
    queue.scheduleAfter(ser, [this, e = std::move(entry)]() mutable {
        finishTransmit(std::move(e));
    });
}

void
Channel::finishTransmit(TxEntry entry)
{
    ++txPackets;
    txBytes += entry.pkt->wireBytes();
    transmitting = false;
    // Fault model: a cut cable or corrupted-on-the-wire frame fails CRC
    // at the receiving MAC and is dropped there. The transmitter never
    // learns — ingress accounting (onTransmitted) proceeds as normal.
    const bool lost =
        adminDown ||
        (faultHook && !entry.pkt->isPfc() && faultHook(entry.pkt));
    if (lost) {
        ++faultDropped;
        CCSIM_LOG(sim::LogLevel::kDebug, label, queue.now(),
                  "fault drop of packet ", entry.pkt->id,
                  adminDown ? " (link down)" : " (corrupted)");
    } else if (sink) {
        // Gray-fault latency inflation rides on top of propagation; it
        // only ever adds, so cross-shard lookahead is unaffected.
        const sim::TimePs prop = propDelay + extraDelay;
        if (entry.pkt->trace.sampled && flowRec && prop > 0)
            flowRec->recordSpan(entry.pkt->trace, label,
                                obs::Component::kPropagation, queue.now(),
                                queue.now() + prop);
        if (crossShard) {
            // Partition boundary: everything up to here ran on the
            // sender's partition; only the in-flight hop crosses, and
            // its delay >= the sync window keeps the delivery outside
            // the current barrier window (conservative lookahead).
            crossShard->postCross(crossSrc, crossDst, queue.now() + prop,
                                  [this, pkt = entry.pkt] {
                                      sink->acceptPacket(pkt);
                                  });
        } else {
            queue.scheduleAfter(prop, [this, pkt = entry.pkt] {
                sink->acceptPacket(pkt);
            });
        }
    }
    if (entry.onTransmitted)
        entry.onTransmitted();
    tryTransmit();
}

void
Channel::setCrossShardDelivery(sim::ShardedEventQueue *sq, int src_lp,
                               int dst_lp)
{
    crossShard = sq;
    crossSrc = src_lp;
    crossDst = dst_lp;
}

Link::Link(sim::EventQueue &eq, std::string name, double gbps,
           double length_meters, std::uint32_t queue_cap_bytes)
    : Link(eq, eq, std::move(name), gbps, length_meters, queue_cap_bytes)
{
}

Link::Link(sim::EventQueue &eq_a, sim::EventQueue &eq_b, std::string name,
           double gbps, double length_meters, std::uint32_t queue_cap_bytes)
{
    const sim::TimePs prop = sim::propagationDelay(length_meters);
    ab = std::make_unique<Channel>(eq_a, name + ".ab", gbps, prop,
                                   queue_cap_bytes);
    ba = std::make_unique<Channel>(eq_b, name + ".ba", gbps, prop,
                                   queue_cap_bytes);
    // PFC received at end A throttles A's transmitter (the ab channel).
    // Both shims live on their own end's queue: shimA runs inside
    // B-to-A delivery events (A's partition) and touches only ab.
    shimA = std::make_unique<PfcShim>(ab.get());
    shimB = std::make_unique<PfcShim>(ba.get());
    ba->setSink(shimA.get());  // traffic toward A passes through A's shim
    ab->setSink(shimB.get());
}

void
Link::setCrossShard(sim::ShardedEventQueue &sq, int lp_a, int lp_b)
{
    sq.registerCrossEdge(lp_a, lp_b, ab->propagationDelay());
    sq.registerCrossEdge(lp_b, lp_a, ba->propagationDelay());
    ab->setCrossShardDelivery(&sq, lp_a, lp_b);
    ba->setCrossShardDelivery(&sq, lp_b, lp_a);
}

void
Link::attachA(PacketSink *a)
{
    shimA->setInner(a);
}

void
Link::attachB(PacketSink *b)
{
    shimB->setInner(b);
}

void
Link::PfcShim::acceptPacket(const PacketPtr &pkt)
{
    if (pkt->isPfc()) {
        const PfcFrame &pfc = pkt->pfc();
        for (int prio = 0; prio < kNumTrafficClasses; ++prio) {
            if (pfc.priorityMask & (1u << prio))
                reverseTx->pausePriority(static_cast<std::uint8_t>(prio),
                                         pfc.pauseTime[prio]);
        }
        return;  // PFC is consumed at the MAC; not delivered upward
    }
    if (inner)
        inner->acceptPacket(pkt);
}

}  // namespace ccsim::net
