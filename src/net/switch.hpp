/**
 * @file
 * A cut-through datacenter Ethernet switch with per-traffic-class
 * buffering, ECN marking, and 802.1Qbb PFC generation.
 *
 * The paper's LTL relies on datacenter switches providing (a) "lossless"
 * traffic classes provisioned for RDMA/FCoE-style traffic and (b) ECN
 * marking for DC-QCN end-to-end congestion control; both are modelled here.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/channel.hpp"
#include "net/delay_model.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace ccsim::net {

/** Static configuration for a Switch. */
struct SwitchConfig {
    std::string name = "switch";
    /** Cut-through forwarding latency (first bit in to first bit out). */
    sim::TimePs forwardingLatency = 450 * sim::kNanosecond;
    /** Optional extra per-packet delay modelling background traffic. */
    std::shared_ptr<DelayModel> jitter;
    /** Mark ECN (on ECT packets) when egress queue exceeds this. */
    std::uint32_t ecnThresholdBytes = 80 * 1024;
    /** Bitmask of priorities treated as lossless (PFC-protected). */
    std::uint32_t losslessMask = 1u << kTcLossless;
    /**
     * Per-ingress-priority occupancy that triggers PFC X-OFF. Sized so
     * that ~30 simultaneously paused ingress ports still fit in the
     * egress channel buffering (1 MB per priority by default).
     */
    std::uint32_t pfcXoffBytes = 32 * 1024;
    /** Occupancy below which PFC X-ON (resume) is sent. */
    std::uint32_t pfcXonBytes = 16 * 1024;
    /** Pause duration carried in each PFC frame. */
    sim::TimePs pfcPauseTime = 20 * sim::kMicrosecond;
    /** RNG seed for the jitter model. */
    std::uint64_t seed = 1;
};

/**
 * An output-queued (per-channel) switch with ingress-based PFC accounting.
 */
class Switch
{
  public:
    Switch(sim::EventQueue &eq, SwitchConfig cfg);

    /**
     * Add a port transmitting into @p tx.
     *
     * @return The port index; pass portSink(index) to Link::attachA/B so
     *         the reverse direction delivers into this switch.
     */
    int addPort(Channel *tx);

    /** The packet sink for a port's receive side. */
    PacketSink *portSink(int port);

    /** Route: packets to dst/prefix_len leave via @p port (ECMP if repeated). */
    void addRoute(Ipv4Addr dst, int prefix_len, int port);

    /** Exact host route (fast path). */
    void addHostRoute(Ipv4Addr dst, int port);

    /** Default route(s); multiple ports ECMP-balance on the flow hash. */
    void setDefaultRoutes(std::vector<int> ports);

    /** Number of ports. */
    int numPorts() const { return static_cast<int>(ports.size()); }

    const std::string &name() const { return config.name; }

    /**
     * Export statistics under `switch.<name>.*`: probes for the packet
     * counters plus per-class aggregate egress depth
     * `switch.<name>.q<prio>.depth` (bytes queued across all ports), and
     * trace instants for PFC X-OFF/X-ON and ECN marks. Call after all
     * ports have been added. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o);

    // --- fault injection hooks (ccsim::fault) ---

    /**
     * Enter a brown-out: arriving packets are dropped with probability
     * @p drop_prob (drawn from the switch's own seeded RNG), and — when
     * @p force_ecn — every ECN-capable packet is marked on egress
     * regardless of queue depth (an ECN storm). Drops bypass ingress PFC
     * accounting, exactly like a corrupted frame at the ingress MAC.
     */
    void setBrownout(double drop_prob, bool force_ecn);

    /** Leave the brown-out. */
    void clearBrownout() { setBrownout(0.0, false); }

    /** True while a brown-out is active. */
    bool inBrownout() const
    {
        return brownoutDropProb > 0.0 || brownoutForceEcn;
    }

    /** Packets lost to brown-out drops. */
    std::uint64_t brownoutDrops() const { return brownoutDropped; }

    // --- statistics ---
    std::uint64_t packetsForwarded() const { return forwarded; }
    std::uint64_t packetsDropped() const { return dropped; }
    std::uint64_t packetsEcnMarked() const { return ecnMarked; }
    std::uint64_t pfcFramesSent() const { return pfcSent; }
    std::uint64_t routeMisses() const { return noRoute; }

  private:
    class PortSink : public PacketSink
    {
      public:
        PortSink(Switch *sw, int port) : parent(sw), portIndex(port) {}
        void acceptPacket(const PacketPtr &pkt) override
        {
            parent->handlePacket(portIndex, pkt);
        }

      private:
        Switch *parent;
        int portIndex;
    };

    struct Port {
        Channel *tx = nullptr;
        std::unique_ptr<PortSink> sink;
        /** Buffered bytes attributable to this ingress port, per priority. */
        std::uint32_t ingressBytes[kNumTrafficClasses] = {};
        /** True while an X-OFF is outstanding for a priority. */
        bool xoffSent[kNumTrafficClasses] = {};
        /**
         * Latest scheduled forward time for traffic that entered via
         * this port: jitter must never reorder packets within one
         * ingress stream (real switch queues are FIFO per class).
         */
        sim::TimePs lastForwardAt = 0;
    };

    struct PrefixRoute {
        std::uint32_t prefix;
        std::uint32_t mask;
        int len;
        std::vector<int> ports;
    };

    sim::EventQueue &queue;
    SwitchConfig config;
    sim::Rng rng;
    obs::Observability *obsHub = nullptr;
    std::string obsPrefix;  ///< "switch.<name>"
    int obsTrack = 0;
    std::vector<std::unique_ptr<Port>> ports;
    std::unordered_map<Ipv4Addr, std::vector<int>> hostRoutes;
    std::vector<PrefixRoute> prefixRoutes;
    std::vector<int> defaultRoutes;

    double brownoutDropProb = 0.0;
    bool brownoutForceEcn = false;

    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t ecnMarked = 0;
    std::uint64_t pfcSent = 0;
    std::uint64_t noRoute = 0;
    std::uint64_t brownoutDropped = 0;

    void handlePacket(int in_port, const PacketPtr &pkt);
    void forward(int in_port, int out_port, const PacketPtr &pkt);
    int lookupRoute(const PacketPtr &pkt) const;
    bool isLossless(std::uint8_t prio) const
    {
        return (config.losslessMask >> prio) & 1u;
    }
    void accountIngress(int in_port, std::uint8_t prio, std::int64_t delta);
    void maybeSendXoff(int in_port, std::uint8_t prio);
    void refreshPfc(int in_port, std::uint8_t prio);
};

}  // namespace ccsim::net
