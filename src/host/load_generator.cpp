#include "host/load_generator.hpp"

#include <cmath>

#include "sim/logging.hpp"
#include "sim/time.hpp"

namespace ccsim::host {

PoissonLoadGenerator::PoissonLoadGenerator(sim::EventQueue &eq, double rate,
                                           std::function<void()> fire,
                                           std::uint64_t seed)
    : queue(eq), ratePerSec(rate), onArrival(std::move(fire)), rng(seed)
{
    if (!onArrival)
        sim::fatal("PoissonLoadGenerator: arrival callback required");
}

PoissonLoadGenerator::~PoissonLoadGenerator()
{
    stop();
}

void
PoissonLoadGenerator::start()
{
    if (running)
        return;
    running = true;
    scheduleNext();
}

void
PoissonLoadGenerator::stop()
{
    running = false;
    if (pending != sim::kNoEvent) {
        queue.cancel(pending);
        pending = sim::kNoEvent;
    }
}

void
PoissonLoadGenerator::setRate(double rate)
{
    ratePerSec = rate;
}

void
PoissonLoadGenerator::scheduleNext()
{
    if (!running || ratePerSec <= 0.0)
        return;
    const double gap_s = rng.exponential(1.0 / ratePerSec);
    pending = queue.scheduleAfter(sim::fromSeconds(gap_s), [this] {
        pending = sim::kNoEvent;
        if (!running)
            return;
        ++count;
        onArrival();
        scheduleNext();
    });
}

std::vector<double>
makeDiurnalTrace(const DiurnalTraceParams &p)
{
    sim::Rng rng(p.seed);
    std::vector<double> trace;
    trace.reserve(static_cast<std::size_t>(p.days) * p.windowsPerDay);
    for (int day = 0; day < p.days; ++day) {
        // Peak drifts across days; the middle day is the heaviest.
        const double mid = (p.days - 1) / 2.0;
        const double day_peak =
            1.0 + p.dayDrift * (1.0 - std::abs(day - mid) / std::max(mid, 1.0));
        for (int w = 0; w < p.windowsPerDay; ++w) {
            const double phase =
                2.0 * M_PI * (static_cast<double>(w) / p.windowsPerDay);
            // Daily sinusoid peaking mid-day, with a flattened trough.
            double shape = 0.5 * (1.0 - std::cos(phase));
            shape = p.troughFraction + (1.0 - p.troughFraction) * shape;
            double load = day_peak * shape;
            load *= rng.lognormalMeanCv(1.0, p.noiseCv);
            if (rng.bernoulli(p.burstProb))
                load *= p.burstMul;
            trace.push_back(load);
        }
    }
    return trace;
}

}  // namespace ccsim::host
