/**
 * @file
 * Queueing model of one web-search ranking server (Section III-A).
 *
 * A query's service decomposes into a non-offloadable software stage
 * (query understanding, candidate selection, model evaluation — the paper
 * keeps post-processed synthetic features and the ML model in software)
 * and the expensive feature-computation stage (FFU + DPF), which may run
 * in software, on the local FPGA, or on a remote FPGA over LTL.
 *
 * The server is a G/G/k system: k cores serve queries FIFO; a query holds
 * its core through the feature stage (the software thread blocks on the
 * accelerator), which is why offload raises throughput by the ratio of
 * total to non-offloadable CPU time — the paper's 2.25x at the target
 * 99th-percentile latency.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace ccsim::host {

/**
 * Interface to whatever computes the feature stage. Implementations:
 * software (on-core), local FPGA (PCIe + role pipeline), remote FPGA
 * (LTL through the real simulated network).
 */
class FeatureAccelerator
{
  public:
    virtual ~FeatureAccelerator() = default;

    /**
     * Compute features for one query of @p doc_count candidate documents;
     * invoke @p done when the results are back in host memory.
     */
    virtual void compute(std::uint32_t doc_count,
                         std::function<void()> done) = 0;
};

/** Tunable service-time parameters (calibrated in DESIGN.md section 4). */
struct RankingServiceParams {
    int cores = 12;
    /** Mean CPU time before the feature stage (always on-core). */
    sim::TimePs cpuPreMean = 930 * sim::kMicrosecond;
    /** Mean CPU time after the feature stage (always on-core). */
    sim::TimePs cpuPostMean = 620 * sim::kMicrosecond;
    /** CV of the lognormal CPU stage times. */
    double cpuCv = 0.30;
    /** Mean software feature-stage time (the offloadable 57%). */
    sim::TimePs swFeatureMean = 2050 * sim::kMicrosecond;
    double swFeatureCv = 0.45;
    /** Candidate documents per query (drives accelerator occupancy). */
    std::uint32_t docsPerQueryMean = 200;
    double docsPerQueryCv = 0.4;
};

/**
 * A pipelined feature accelerator attached by PCIe: requests are accepted
 * one after another at the engine's initiation interval; results return
 * after the fill latency. Models the local-FPGA FFU+DPF datapath.
 */
struct LocalFpgaParams {
    /** Engine occupancy per candidate document. */
    sim::TimePs occupancyPerDoc = 300 * sim::kNanosecond;
    /** Fixed compute + DMA round-trip latency per query. */
    sim::TimePs fixedLatency = 60 * sim::kMicrosecond;
};

class LocalFpgaAccelerator : public FeatureAccelerator
{
  public:
    explicit LocalFpgaAccelerator(sim::EventQueue &eq,
                                  LocalFpgaParams p = {})
        : queue(eq), params(p)
    {
    }

    void compute(std::uint32_t doc_count, std::function<void()> done) override;

    /** Fraction of wall-clock the engine datapath was occupied. */
    double utilization(sim::TimePs elapsed) const
    {
        return elapsed > 0
                   ? static_cast<double>(busyAccum) / elapsed
                   : 0.0;
    }

    std::uint64_t requests() const { return statRequests; }

  private:
    sim::EventQueue &queue;
    LocalFpgaParams params;
    sim::TimePs busyUntil = 0;
    sim::TimePs busyAccum = 0;
    std::uint64_t statRequests = 0;
};

/** One ranking server. */
class RankingServer
{
  public:
    /**
     * @param accel Feature accelerator, or nullptr for software mode
     *              (features computed on-core).
     */
    RankingServer(sim::EventQueue &eq, RankingServiceParams params,
                  FeatureAccelerator *accel, std::uint64_t seed = 99);

    /**
     * Submit one query; @p done receives the total sojourn time
     * (arrival to completion).
     */
    void submitQuery(std::function<void(sim::TimePs latency)> done = {});

    /**
     * Swap the feature accelerator at runtime (nullptr = software mode).
     * Affects queries dispatched from now on; queries already blocked in
     * the old accelerator keep waiting for it — combine with
     * failPendingToSoftware() when the old accelerator is dead.
     *
     * This is the graceful-degradation path: when an FPGA fails, the
     * service drops to software-mode latency while HaaS replaces the
     * lease, then is re-pointed at the spare.
     */
    void setAccelerator(FeatureAccelerator *accel) { accelerator = accel; }

    /** The currently attached accelerator (nullptr = software mode). */
    FeatureAccelerator *currentAccelerator() const { return accelerator; }

    /**
     * Rescue every query currently blocked in the accelerator: their
     * feature stage is re-run on-core at software-mode cost, as if the
     * thread's offload call timed out and fell back. Late completions
     * from the abandoned accelerator are ignored.
     *
     * @return The number of rescued queries.
     */
    std::uint64_t failPendingToSoftware();

    /** Queries whose feature stage ran in software (incl. rescues). */
    std::uint64_t softwareFeatureQueries() const { return statSwFeature; }

    /** Latencies of completed queries, milliseconds. */
    const sim::SampleStats &latencyMs() const { return statLatency; }

    std::uint64_t completed() const { return statCompleted; }
    std::uint64_t inFlight() const { return activeQueries; }
    /** Queries waiting for a core. */
    std::size_t queueDepth() const { return waiting.size(); }

    /** Drop latency samples (between sweep points). */
    void clearStats()
    {
        statLatency.clear();
        if (obsLatencyHist)
            obsLatencyHist->clear();
    }

    /**
     * Export request-lifecycle statistics under `host.<node>.*`: a
     * registry histogram `host.<node>.latency_ms` (cleared together with
     * clearStats()), probes for completion/occupancy counts, and one
     * trace span per completed query. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o,
                             const std::string &node = "rank");

  private:
    struct PendingQuery {
        sim::TimePs arrivedAt;
        std::function<void(sim::TimePs)> done;
        obs::TraceContext trace;
    };

    sim::EventQueue &queue;
    RankingServiceParams params;
    FeatureAccelerator *accelerator;
    sim::Rng rng;
    int freeCores;
    std::deque<PendingQuery> waiting;
    obs::Observability *obsHub = nullptr;
    std::string obsPrefix;  ///< "host.<node>"
    sim::LogHistogram *obsLatencyHist = nullptr;
    int obsTrack = 0;
    sim::SampleStats statLatency;
    std::uint64_t statCompleted = 0;
    std::uint64_t activeQueries = 0;
    std::uint64_t statSwFeature = 0;
    /** Continuations of queries blocked in the accelerator, by token. */
    std::map<std::uint64_t, std::function<void()>> blockedInAccel;
    std::uint64_t nextBlockedToken = 1;

    void tryDispatch();
    void runQuery(PendingQuery q);
    void finishQuery(const PendingQuery &q);
};

}  // namespace ccsim::host
