/**
 * @file
 * Queueing model of one web-search ranking server (Section III-A).
 *
 * A query's service decomposes into a non-offloadable software stage
 * (query understanding, candidate selection, model evaluation — the paper
 * keeps post-processed synthetic features and the ML model in software)
 * and the expensive feature-computation stage (FFU + DPF), which may run
 * in software, on the local FPGA, or on a remote FPGA over LTL.
 *
 * The server is a G/G/k system: k cores serve queries FIFO; a query holds
 * its core through the feature stage (the software thread blocks on the
 * accelerator), which is why offload raises throughput by the ratio of
 * total to non-offloadable CPU time — the paper's 2.25x at the target
 * 99th-percentile latency.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "host/feature_accelerator.hpp"
#include "obs/metrics.hpp"
#include "serving/request_policy.hpp"
#include "sim/event_queue.hpp"
#include "sim/pool.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace ccsim::serving {
class ClusterClient;
}  // namespace ccsim::serving

namespace ccsim::host {

/** Tunable service-time parameters (calibrated in DESIGN.md section 4). */
struct RankingServiceParams {
    int cores = 12;
    /** Mean CPU time before the feature stage (always on-core). */
    sim::TimePs cpuPreMean = 930 * sim::kMicrosecond;
    /** Mean CPU time after the feature stage (always on-core). */
    sim::TimePs cpuPostMean = 620 * sim::kMicrosecond;
    /** CV of the lognormal CPU stage times. */
    double cpuCv = 0.30;
    /** Mean software feature-stage time (the offloadable 57%). */
    sim::TimePs swFeatureMean = 2050 * sim::kMicrosecond;
    double swFeatureCv = 0.45;
    /** Candidate documents per query (drives accelerator occupancy). */
    std::uint32_t docsPerQueryMean = 200;
    double docsPerQueryCv = 0.4;
};

/**
 * A pipelined feature accelerator attached by PCIe: requests are accepted
 * one after another at the engine's initiation interval; results return
 * after the fill latency. Models the local-FPGA FFU+DPF datapath.
 */
struct LocalFpgaParams {
    /** Engine occupancy per candidate document. */
    sim::TimePs occupancyPerDoc = 300 * sim::kNanosecond;
    /** Fixed compute + DMA round-trip latency per query. */
    sim::TimePs fixedLatency = 60 * sim::kMicrosecond;
};

class LocalFpgaAccelerator : public FeatureAccelerator
{
  public:
    explicit LocalFpgaAccelerator(sim::EventQueue &eq,
                                  LocalFpgaParams p = {})
        : queue(eq), params(p)
    {
    }

    void compute(std::uint32_t doc_count, std::function<void()> done) override;

    /** Fraction of wall-clock the engine datapath was occupied. */
    double utilization(sim::TimePs elapsed) const
    {
        return elapsed > 0
                   ? static_cast<double>(busyAccum) / elapsed
                   : 0.0;
    }

    std::uint64_t requests() const { return statRequests; }

  private:
    sim::EventQueue &queue;
    LocalFpgaParams params;
    sim::TimePs busyUntil = 0;
    sim::TimePs busyAccum = 0;
    std::uint64_t statRequests = 0;
};

/**
 * Failure-handling policy for the accelerated feature stage. Grown into
 * the serving layer (PR 7): the policy type is serving::RequestPolicy so
 * the same tail-at-scale toolkit applies to every client of the pool;
 * this alias keeps existing RankingServer call sites compiling.
 */
using QueryRetryPolicy = serving::RequestPolicy;

/** One ranking server. */
class RankingServer
{
  public:
    /**
     * @param accel Feature accelerator, or nullptr for software mode
     *              (features computed on-core).
     */
    RankingServer(sim::EventQueue &eq, RankingServiceParams params,
                  FeatureAccelerator *accel, std::uint64_t seed = 99);

    /**
     * Submit one query; @p done receives the total sojourn time
     * (arrival to completion).
     *
     * @return false when the admission gate sheds the query: it never
     *         enters the server (no queue slot, no core, @p done never
     *         runs) and the front-end should answer degraded. Always
     *         true when no admission gate is installed.
     */
    bool submitQuery(std::function<void(sim::TimePs latency)> done = {});

    /** submitQuery() with a tenant tag for per-tenant admission. */
    bool submitQuery(const std::string &tenant,
                     std::function<void(sim::TimePs latency)> done);

    /**
     * Install an admission gate consulted at submission, before any
     * queueing (e.g. `[&cc](const std::string &t) { return cc.admit(t); }`).
     * Pass nullptr to remove. Shed queries count in shedQueries().
     */
    void setAdmission(std::function<bool(const std::string &tenant)> fn)
    {
        admitFn = std::move(fn);
    }

    /**
     * Point this server at a serving cluster: the cluster becomes the
     * feature accelerator (routing per attempt) and the admission gate
     * (tagged @p tenant), the cluster's RequestPolicy is installed, and
     * the replica picker is cleared — retries and hedges route through
     * the cluster, which picks a (possibly different) backend per call.
     */
    void attachCluster(serving::ClusterClient &cluster,
                       std::string tenant = {});

    /**
     * Swap the feature accelerator at runtime (nullptr = software mode).
     * Affects queries dispatched from now on; queries already blocked in
     * the old accelerator keep waiting for it — combine with
     * failPendingToSoftware() when the old accelerator is dead.
     *
     * This is the graceful-degradation path: when an FPGA fails, the
     * service drops to software-mode latency while HaaS replaces the
     * lease, then is re-pointed at the spare.
     */
    void setAccelerator(FeatureAccelerator *accel) { accelerator = accel; }

    /** The currently attached accelerator (nullptr = software mode). */
    FeatureAccelerator *currentAccelerator() const { return accelerator; }

    /**
     * Rescue every query currently blocked in the accelerator: their
     * feature stage is re-run on-core at software-mode cost, as if the
     * thread's offload call timed out and fell back. Late completions
     * from the abandoned accelerator are ignored. Any armed deadline,
     * backoff or hedge timers are cancelled.
     *
     * @return The number of rescued queries.
     */
    std::uint64_t failPendingToSoftware();

    /**
     * Install a failure-handling policy for accelerated feature stages
     * (deadlines, bounded retry, hedging). Applies to queries dispatched
     * from now on.
     */
    void setRetryPolicy(QueryRetryPolicy p);

    const QueryRetryPolicy &retryPolicy() const { return policy; }

    /**
     * Supplier of an alternate healthy accelerator for retries and
     * hedged requests (typically another instance of the same HaaS
     * service). May return nullptr when no replica is available; then
     * retries go back to the primary and hedges are skipped.
     */
    void setReplicaPicker(std::function<FeatureAccelerator *()> fn)
    {
        replicaPicker = std::move(fn);
    }

    /**
     * The hedge delay a query dispatched now would use: the fixed
     * policy delay, or the adaptive estimate from observed accelerator
     * latency (recomputed lazily as samples accumulate).
     */
    sim::TimePs currentHedgeDelay() const { return hedgeDelayNow(); }

    /** Queries whose feature stage ran in software (incl. rescues). */
    std::uint64_t softwareFeatureQueries() const { return statSwFeature; }

    /** Queries refused by the admission gate at submission. */
    std::uint64_t shedQueries() const { return statShed; }

    /** Accelerator attempts that outlived their per-attempt deadline. */
    std::uint64_t deadlinesExpired() const { return statDeadlineExpired; }
    /** Retry attempts issued after a deadline expiry. */
    std::uint64_t retriesIssued() const { return statRetries; }
    /** Hedged duplicate requests issued. */
    std::uint64_t hedgesIssued() const { return statHedges; }
    /** Queries completed by the hedged duplicate, not the primary. */
    std::uint64_t hedgeWins() const { return statHedgeWins; }
    /**
     * Queries that started toward an accelerator but finished their
     * feature stage in software (retry exhaustion, no replacement
     * accelerator, or a failPendingToSoftware rescue).
     */
    std::uint64_t softwareFallbacks() const { return statSwFallback; }

    /** Latencies of completed queries, milliseconds. */
    const sim::SampleStats &latencyMs() const { return statLatency; }

    std::uint64_t completed() const { return statCompleted; }
    std::uint64_t inFlight() const { return activeQueries; }
    /** Queries waiting for a core. */
    std::size_t queueDepth() const { return waiting.size(); }

    /** Drop latency samples (between sweep points). */
    void clearStats()
    {
        statLatency.clear();
        if (obsLatencyHist)
            obsLatencyHist->clear();
    }

    /**
     * Export request-lifecycle statistics under `host.<node>.*`: a
     * registry histogram `host.<node>.latency_ms` (cleared together with
     * clearStats()), probes for completion/occupancy counts, and one
     * trace span per completed query. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o,
                             const std::string &node = "rank");

  private:
    struct PendingQuery {
        sim::TimePs arrivedAt;
        std::function<void(sim::TimePs)> done;
        obs::TraceContext trace;
    };

    /** One query's in-flight accelerated feature stage. */
    struct AccelOp {
        std::function<void()> resume;  ///< runs the post-feature stage
        std::uint32_t docs = 0;
        obs::TraceContext ctx;
        sim::TimePs startedAt = 0;
        int attempts = 0;
        /** Attempt id of the hedged duplicate (0 = none issued). */
        std::uint64_t hedgeAttemptId = 0;
        sim::EventId deadlineEvent = sim::kNoEvent;
        sim::EventId hedgeEvent = sim::kNoEvent;
        sim::EventId backoffEvent = sim::kNoEvent;
    };

    sim::EventQueue &queue;
    RankingServiceParams params;
    FeatureAccelerator *accelerator;
    sim::Rng rng;
    int freeCores;
    std::deque<PendingQuery> waiting;
    obs::Observability *obsHub = nullptr;
    std::string obsPrefix;  ///< "host.<node>"
    sim::LogHistogram *obsLatencyHist = nullptr;
    int obsTrack = 0;
    sim::SampleStats statLatency;
    std::uint64_t statCompleted = 0;
    std::uint64_t activeQueries = 0;
    std::uint64_t statSwFeature = 0;
    std::uint64_t statShed = 0;
    std::function<bool(const std::string &)> admitFn;
    /** Tenant tag stamped on untagged submissions (set by attachCluster). */
    std::string defaultTenant;
    QueryRetryPolicy policy;
    std::function<FeatureAccelerator *()> replicaPicker;
    /** In-flight accelerated feature stages, by token. Map nodes come
     * from the thread-local arena (sim::PoolAllocator), so the
     * per-query churn of accelerated stages recycles one compact block
     * instead of hitting the heap — the "pooled query records" half of
     * the paper-scale memory story. */
    std::map<std::uint64_t, AccelOp, std::less<std::uint64_t>,
             sim::PoolAllocator<std::pair<const std::uint64_t, AccelOp>>>
        accelOps;
    std::uint64_t nextAccelToken = 1;
    /** Distinguishes a winning attempt from late losers per query. */
    std::uint64_t nextAttemptId = 1;
    /** Observed accelerator latency, for the adaptive hedge delay. */
    sim::LogHistogram accelLatencyUs{0.5, 8};
    mutable sim::TimePs hedgeCached = 0;
    mutable std::uint64_t hedgeCachedAt = 0;
    std::uint64_t statDeadlineExpired = 0;
    std::uint64_t statRetries = 0;
    std::uint64_t statHedges = 0;
    std::uint64_t statHedgeWins = 0;
    std::uint64_t statSwFallback = 0;

    void tryDispatch();
    void runQuery(PendingQuery q);
    void finishQuery(const PendingQuery &q);
    /**
     * Issue one accelerator attempt (the hedge flag marks it as the
     * hedged duplicate for win accounting). The target's compute() may
     * complete synchronously, erasing the op before this returns.
     */
    void launchAttempt(std::uint64_t token, FeatureAccelerator *target,
                       bool hedged = false);
    void onAttemptDone(std::uint64_t token, std::uint64_t attempt_id);
    void onDeadline(std::uint64_t token);
    void onHedgeTimer(std::uint64_t token);
    /** Re-run a detached op's feature stage on-core. */
    void softwareFeatureRerun(AccelOp op);
    void cancelOpTimers(AccelOp &op);
    sim::TimePs hedgeDelayNow() const;
};

}  // namespace ccsim::host
