#include "host/workload.hpp"

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"

namespace ccsim::host {

CorpusGenerator::CorpusGenerator(std::uint32_t vocab_size, double zipf_s,
                                 std::uint64_t seed)
    : vocab(vocab_size), rng(seed)
{
    if (vocab_size == 0)
        sim::fatal("CorpusGenerator: vocabulary must be non-empty");
    cdf.resize(vocab);
    double total = 0.0;
    for (std::uint32_t i = 0; i < vocab; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
        cdf[i] = total;
    }
    for (auto &x : cdf)
        x /= total;
}

TermId
CorpusGenerator::sampleTerm()
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<TermId>(it - cdf.begin());
}

Document
CorpusGenerator::makeDocument(std::size_t length)
{
    Document doc;
    doc.id = nextDocId++;
    doc.terms.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
        doc.terms.push_back(sampleTerm());
    return doc;
}

Query
CorpusGenerator::makeQuery(std::size_t length)
{
    Query q;
    q.id = nextQueryId++;
    q.terms.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
        q.terms.push_back(sampleTerm());
    return q;
}

Document
CorpusGenerator::makeCandidateDocument(const Query &q, std::size_t length)
{
    Document doc = makeDocument(length);
    if (q.terms.empty() || doc.terms.empty())
        return doc;
    // Plant each query term at a distinct random position (so no plant
    // overwrites another), and occasionally the full query phrase, so
    // phrase/adjacency features fire.
    const std::size_t stride =
        std::max<std::size_t>(1, doc.terms.size() / q.terms.size());
    for (std::size_t k = 0; k < q.terms.size(); ++k) {
        const std::size_t base = k * stride;
        const std::size_t span =
            std::min(stride, doc.terms.size() - base);
        if (base >= doc.terms.size())
            break;
        const std::size_t pos = base + rng.uniformInt(span);
        doc.terms[pos] = q.terms[k];
    }
    if (doc.terms.size() > q.terms.size() && rng.bernoulli(0.3)) {
        const std::size_t start =
            rng.uniformInt(doc.terms.size() - q.terms.size());
        for (std::size_t i = 0; i < q.terms.size(); ++i)
            doc.terms[start + i] = q.terms[i];
    }
    return doc;
}

}  // namespace ccsim::host
