/**
 * @file
 * The accelerator interface host software programs against.
 *
 * Extracted from ranking_server.hpp so the serving layer (which routes
 * requests *to* accelerators) can implement the interface without
 * depending on any concrete host component. Implementations: software
 * (on-core), local FPGA (PCIe + role pipeline), remote FPGA (LTL through
 * the simulated network), and serving::ClusterClient (a routed pool of
 * any of the above).
 */
#pragma once

#include <cstdint>
#include <functional>

#include "obs/flow_trace.hpp"

namespace ccsim::host {

/**
 * Interface to whatever computes the feature stage. The caller's thread
 * blocks on the accelerator, so @p done marks the instant results are
 * back in host memory.
 */
class FeatureAccelerator
{
  public:
    virtual ~FeatureAccelerator() = default;

    /**
     * Compute features for one query of @p doc_count candidate documents;
     * invoke @p done when the results are back in host memory.
     */
    virtual void compute(std::uint32_t doc_count,
                         std::function<void()> done) = 0;

    /**
     * compute() with the submitting query's causal context, so routed
     * paths (serving::ClusterClient) can annotate the flow with the
     * backend that served it. The default forwards to compute(); plain
     * accelerators need not care.
     */
    virtual void computeTraced(std::uint32_t doc_count,
                               const obs::TraceContext & /*ctx*/,
                               std::function<void()> done)
    {
        compute(doc_count, std::move(done));
    }
};

}  // namespace ccsim::host
