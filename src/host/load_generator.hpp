/**
 * @file
 * Open-loop load generation: Poisson arrivals at a controllable rate and
 * the synthetic 5-day diurnal trace used to reproduce the production
 * measurements of Figures 7 and 8.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace ccsim::host {

/** Open-loop Poisson arrival process. */
class PoissonLoadGenerator
{
  public:
    /**
     * @param eq    Event queue.
     * @param rate  Arrivals per second of simulated time.
     * @param fire  Invoked once per arrival.
     */
    PoissonLoadGenerator(sim::EventQueue &eq, double rate,
                         std::function<void()> fire,
                         std::uint64_t seed = 5);
    ~PoissonLoadGenerator();

    PoissonLoadGenerator(const PoissonLoadGenerator &) = delete;
    PoissonLoadGenerator &operator=(const PoissonLoadGenerator &) = delete;

    /** Begin generating arrivals. */
    void start();
    /** Stop (no further arrivals; in-flight event cancelled). */
    void stop();
    /** Change the rate; takes effect from the next arrival. */
    void setRate(double rate);

    std::uint64_t generated() const { return count; }

  private:
    sim::EventQueue &queue;
    double ratePerSec;
    std::function<void()> onArrival;
    sim::Rng rng;
    bool running = false;
    sim::EventId pending = sim::kNoEvent;
    std::uint64_t count = 0;

    void scheduleNext();
};

/** Parameters of the synthetic 5-day production load trace. */
struct DiurnalTraceParams {
    int days = 5;
    /** Windows per day (288 = one per 5 minutes). */
    int windowsPerDay = 288;
    /** Trough load as a fraction of the daily peak. */
    double troughFraction = 0.38;
    /** Multiplicative lognormal noise CV per window. */
    double noiseCv = 0.06;
    /** Probability a window carries a traffic burst. */
    double burstProb = 0.03;
    /** Burst multiplier. */
    double burstMul = 1.25;
    /** Day-to-day peak drift (day 3 is the heaviest in the paper's plot). */
    double dayDrift = 0.08;
    std::uint64_t seed = 20160101;
};

/**
 * Produce the per-window load multipliers (1.0 = nominal daily peak).
 * Length = days * windowsPerDay.
 */
std::vector<double> makeDiurnalTrace(const DiurnalTraceParams &params);

}  // namespace ccsim::host
