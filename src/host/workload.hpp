/**
 * @file
 * Synthetic web-search workload: a Zipf-distributed term corpus with
 * document and query generation.
 *
 * The paper evaluates on live Bing traffic, which is unavailable; this
 * generator produces documents/queries with realistic term-frequency skew
 * so the FFU/DPF feature engines exercise the same code paths (term
 * matches, adjacency, dynamic-programming alignment).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace ccsim::host {

/** Term ids are dense integers into a synthetic vocabulary. */
using TermId = std::uint32_t;

/** A document: an ordered sequence of terms. */
struct Document {
    std::uint32_t id = 0;
    std::vector<TermId> terms;
};

/** A query: a short ordered sequence of terms. */
struct Query {
    std::uint32_t id = 0;
    std::vector<TermId> terms;
};

/** Generator of Zipf-distributed documents and queries. */
class CorpusGenerator
{
  public:
    /**
     * @param vocab_size Vocabulary size.
     * @param zipf_s     Zipf exponent (1.0 ~ natural language).
     * @param seed       Reproducibility seed.
     */
    CorpusGenerator(std::uint32_t vocab_size = 50000, double zipf_s = 1.0,
                    std::uint64_t seed = 1234);

    /** Generate a document of @p length terms. */
    Document makeDocument(std::size_t length);

    /** Generate a query of @p length terms (biased toward frequent terms). */
    Query makeQuery(std::size_t length);

    /**
     * Generate a document guaranteed to contain the query terms at least
     * once (a plausible "candidate document" from the index).
     */
    Document makeCandidateDocument(const Query &q, std::size_t length);

    std::uint32_t vocabSize() const { return vocab; }

  private:
    std::uint32_t vocab;
    sim::Rng rng;
    /** Cumulative Zipf distribution for inverse-transform sampling. */
    std::vector<double> cdf;
    std::uint32_t nextDocId = 1;
    std::uint32_t nextQueryId = 1;

    TermId sampleTerm();
};

}  // namespace ccsim::host
