#include "host/ranking_server.hpp"

#include <algorithm>
#include <cmath>

#include "serving/cluster_client.hpp"
#include "sim/logging.hpp"

namespace ccsim::host {

void
LocalFpgaAccelerator::compute(std::uint32_t doc_count,
                              std::function<void()> done)
{
    ++statRequests;
    const sim::TimePs now = queue.now();
    const sim::TimePs occupancy = params.occupancyPerDoc * doc_count;
    const sim::TimePs start = std::max(now, busyUntil);
    busyUntil = start + occupancy;
    busyAccum += occupancy;
    queue.schedule(busyUntil + params.fixedLatency,
                   [d = std::move(done)] {
                       if (d)
                           d();
                   });
}

RankingServer::RankingServer(sim::EventQueue &eq,
                             RankingServiceParams service_params,
                             FeatureAccelerator *accel, std::uint64_t seed)
    : queue(eq), params(service_params), accelerator(accel), rng(seed),
      freeCores(service_params.cores)
{
}

void
RankingServer::attachObservability(obs::Observability *o,
                                   const std::string &node)
{
    obsHub = o;
    obsLatencyHist = nullptr;
    if (!o)
        return;
    obsPrefix = "host." + node;
    obsTrack = o->trace.track(obsPrefix);
    obsLatencyHist = &o->registry.histogram(obsPrefix + ".latency_ms");
    auto &reg = o->registry;
    reg.registerProbe(obsPrefix + ".completed",
                      [this] { return double(statCompleted); });
    reg.registerProbe(obsPrefix + ".in_flight",
                      [this] { return double(activeQueries); });
    reg.registerProbe(obsPrefix + ".queue_depth",
                      [this] { return double(waiting.size()); });
    reg.registerProbe(obsPrefix + ".sw_feature_queries",
                      [this] { return double(statSwFeature); });
    reg.registerProbe(obsPrefix + ".shed",
                      [this] { return double(statShed); });
    reg.registerProbe(obsPrefix + ".accel_blocked",
                      [this] { return double(accelOps.size()); });
    reg.registerProbe(obsPrefix + ".retry.deadline_expired",
                      [this] { return double(statDeadlineExpired); });
    reg.registerProbe(obsPrefix + ".retry.attempts",
                      [this] { return double(statRetries); });
    reg.registerProbe(obsPrefix + ".retry.hedges",
                      [this] { return double(statHedges); });
    reg.registerProbe(obsPrefix + ".retry.hedge_wins",
                      [this] { return double(statHedgeWins); });
    reg.registerProbe(obsPrefix + ".retry.sw_fallbacks",
                      [this] { return double(statSwFallback); });
    reg.registerProbe(obsPrefix + ".retry.hedge_delay_us", [this] {
        return sim::toMicros(hedgeDelayNow());
    });
}

void
RankingServer::setRetryPolicy(QueryRetryPolicy p)
{
    serving::validateRequestPolicy(p);
    policy = p;
    hedgeCached = 0;
    hedgeCachedAt = 0;
}

void
RankingServer::attachCluster(serving::ClusterClient &cluster,
                             std::string tenant)
{
    accelerator = &cluster;
    defaultTenant = std::move(tenant);
    admitFn = [&cluster](const std::string &t) { return cluster.admit(t); };
    // The cluster routes every attempt itself, so a separate replica
    // picker would only bypass its outlier filtering.
    replicaPicker = nullptr;
    setRetryPolicy(cluster.requestPolicy());
}

bool
RankingServer::submitQuery(std::function<void(sim::TimePs)> done)
{
    return submitQuery(defaultTenant, std::move(done));
}

bool
RankingServer::submitQuery(const std::string &tenant,
                           std::function<void(sim::TimePs)> done)
{
    if (admitFn && !admitFn(tenant)) {
        ++statShed;
        return false;
    }
    ++activeQueries;
    obs::TraceContext ctx;
    if (obsHub && obsHub->flows.enabled())
        ctx = obsHub->flows.beginFlow(obsPrefix + ".query", queue.now());
    waiting.push_back(PendingQuery{queue.now(), std::move(done), ctx});
    tryDispatch();
    return true;
}

void
RankingServer::tryDispatch()
{
    while (freeCores > 0 && !waiting.empty()) {
        --freeCores;
        PendingQuery q = std::move(waiting.front());
        waiting.pop_front();
        runQuery(std::move(q));
    }
}

void
RankingServer::runQuery(PendingQuery q)
{
    const obs::TraceContext ctx = q.trace;
    const sim::TimePs now = queue.now();
    if (ctx.sampled && obsHub && now > q.arrivedAt) {
        // Time spent waiting for a free core.
        obsHub->flows.recordSpan(ctx, obsPrefix + ".queue",
                                 obs::Component::kQueueing, q.arrivedAt,
                                 now);
    }
    const auto pre = static_cast<sim::TimePs>(rng.lognormalMeanCv(
        static_cast<double>(params.cpuPreMean), params.cpuCv));
    const auto post = static_cast<sim::TimePs>(rng.lognormalMeanCv(
        static_cast<double>(params.cpuPostMean), params.cpuCv));
    if (ctx.sampled && obsHub)
        obsHub->flows.recordSpan(ctx, obsPrefix + ".cpu_pre",
                                 obs::Component::kCompute, now, now + pre);

    auto run_post = [this, q = std::move(q), post]() mutable {
        if (q.trace.sampled && obsHub)
            obsHub->flows.recordSpan(q.trace, obsPrefix + ".cpu_post",
                                     obs::Component::kCompute, queue.now(),
                                     queue.now() + post);
        queue.scheduleAfter(post, [this, q = std::move(q)] {
            ++freeCores;
            finishQuery(q);
            tryDispatch();
        });
    };

    if (accelerator == nullptr) {
        // Software mode: the feature stage runs on-core.
        ++statSwFeature;
        const auto features = static_cast<sim::TimePs>(rng.lognormalMeanCv(
            static_cast<double>(params.swFeatureMean), params.swFeatureCv));
        if (ctx.sampled && obsHub)
            obsHub->flows.recordSpan(ctx, obsPrefix + ".sw_features",
                                     obs::Component::kCompute, now + pre,
                                     now + pre + features);
        queue.scheduleAfter(pre + features,
                            [rp = std::move(run_post)]() mutable { rp(); });
        return;
    }

    // Accelerated mode: the core blocks while the FPGA computes. The
    // continuation is parked under a token so failPendingToSoftware()
    // can rescue it if the accelerator dies while the query is inside,
    // and so deadline/retry/hedge timers can reference it.
    const auto docs = static_cast<std::uint32_t>(std::max(
        1.0, rng.lognormalMeanCv(params.docsPerQueryMean,
                                 params.docsPerQueryCv)));
    queue.scheduleAfter(pre, [this, docs, ctx,
                              rp = std::move(run_post)]() mutable {
        const std::uint64_t token = nextAccelToken++;
        AccelOp &op = accelOps[token];
        op.resume = std::move(rp);
        op.docs = docs;
        op.ctx = ctx;
        op.startedAt = queue.now();
        if (accelerator == nullptr) {
            // No accelerator lease at dispatch time (degraded mode):
            // complete the feature stage in software.
            ++statSwFallback;
            AccelOp detached = std::move(op);
            accelOps.erase(token);
            softwareFeatureRerun(std::move(detached));
            return;
        }
        if (policy.hedge) {
            op.hedgeEvent =
                queue.scheduleAfter(hedgeDelayNow(), [this, token] {
                    auto it = accelOps.find(token);
                    if (it == accelOps.end())
                        return;
                    it->second.hedgeEvent = sim::kNoEvent;
                    onHedgeTimer(token);
                });
        }
        launchAttempt(token, accelerator);
    });
}

void
RankingServer::launchAttempt(std::uint64_t token, FeatureAccelerator *target,
                             bool hedged)
{
    AccelOp &op = accelOps.at(token);
    ++op.attempts;
    const std::uint64_t attempt_id = nextAttemptId++;
    if (hedged)
        op.hedgeAttemptId = attempt_id;
    if (policy.accelDeadline > 0) {
        // One deadline per op, re-armed for the newest attempt. Armed
        // before compute(): a synchronous completion erases the op (and
        // cancels this timer) before we return.
        if (op.deadlineEvent != sim::kNoEvent)
            queue.cancel(op.deadlineEvent);
        op.deadlineEvent =
            queue.scheduleAfter(policy.accelDeadline, [this, token] {
                auto it = accelOps.find(token);
                if (it == accelOps.end())
                    return;
                it->second.deadlineEvent = sim::kNoEvent;
                onDeadline(token);
            });
    }
    const std::uint32_t docs = op.docs;
    // computeTraced so a routed pool (ClusterClient) can annotate the
    // query's flow with the backend each attempt landed on.
    target->computeTraced(docs, op.ctx, [this, token, attempt_id] {
        onAttemptDone(token, attempt_id);
    });
}

void
RankingServer::onAttemptDone(std::uint64_t token, std::uint64_t attempt_id)
{
    auto it = accelOps.find(token);
    if (it == accelOps.end())
        return;  // late ack from a rescued query or a losing attempt
    AccelOp op = std::move(it->second);
    accelOps.erase(it);
    cancelOpTimers(op);
    if (op.hedgeAttemptId != 0 && attempt_id == op.hedgeAttemptId)
        ++statHedgeWins;
    const sim::TimePs now = queue.now();
    accelLatencyUs.add(std::max(0.5, sim::toMicros(now - op.startedAt)));
    if (op.ctx.sampled && obsHub) {
        // Wall time inside the accelerator(s), including retries and
        // any serial-pipeline backlog.
        obsHub->flows.recordSpan(op.ctx, obsPrefix + ".accel",
                                 obs::Component::kCompute, op.startedAt,
                                 now);
    }
    op.resume();
}

void
RankingServer::onDeadline(std::uint64_t token)
{
    AccelOp &op = accelOps.at(token);
    ++statDeadlineExpired;
    if (op.attempts >= policy.maxAttempts) {
        // Retry budget exhausted: give up on acceleration entirely.
        ++statSwFallback;
        AccelOp detached = std::move(op);
        accelOps.erase(token);
        cancelOpTimers(detached);
        softwareFeatureRerun(std::move(detached));
        return;
    }
    ++statRetries;
    const int retry_no = op.attempts;  // 1-based count of prior attempts
    auto backoff = static_cast<double>(policy.backoffBase) *
                   std::ldexp(1.0, retry_no - 1);
    backoff *= 1.0 + policy.backoffJitter * (2.0 * rng.uniform() - 1.0);
    const auto delay = std::max<sim::TimePs>(
        1, static_cast<sim::TimePs>(backoff));
    op.backoffEvent = queue.scheduleAfter(delay, [this, token] {
        auto it = accelOps.find(token);
        if (it == accelOps.end())
            return;
        it->second.backoffEvent = sim::kNoEvent;
        FeatureAccelerator *target =
            replicaPicker ? replicaPicker() : nullptr;
        if (target == nullptr)
            target = accelerator;
        if (target == nullptr) {
            // No replica and no primary lease left.
            ++statSwFallback;
            AccelOp detached = std::move(it->second);
            accelOps.erase(it);
            cancelOpTimers(detached);
            softwareFeatureRerun(std::move(detached));
            return;
        }
        launchAttempt(token, target);
    });
}

void
RankingServer::onHedgeTimer(std::uint64_t token)
{
    AccelOp &op = accelOps.at(token);
    if (op.attempts >= policy.maxAttempts)
        return;  // budget already spent on retries
    FeatureAccelerator *replica = replicaPicker ? replicaPicker() : nullptr;
    if (replica == nullptr)
        return;  // nowhere to hedge to
    ++statHedges;
    launchAttempt(token, replica, /*hedged=*/true);
}

void
RankingServer::softwareFeatureRerun(AccelOp op)
{
    ++statSwFeature;
    const auto features = static_cast<sim::TimePs>(rng.lognormalMeanCv(
        static_cast<double>(params.swFeatureMean), params.swFeatureCv));
    if (op.ctx.sampled && obsHub)
        obsHub->flows.recordSpan(op.ctx, obsPrefix + ".sw_features",
                                 obs::Component::kCompute, queue.now(),
                                 queue.now() + features);
    queue.scheduleAfter(features,
                        [r = std::move(op.resume)]() mutable { r(); });
}

void
RankingServer::cancelOpTimers(AccelOp &op)
{
    if (op.deadlineEvent != sim::kNoEvent) {
        queue.cancel(op.deadlineEvent);
        op.deadlineEvent = sim::kNoEvent;
    }
    if (op.hedgeEvent != sim::kNoEvent) {
        queue.cancel(op.hedgeEvent);
        op.hedgeEvent = sim::kNoEvent;
    }
    if (op.backoffEvent != sim::kNoEvent) {
        queue.cancel(op.backoffEvent);
        op.backoffEvent = sim::kNoEvent;
    }
}

sim::TimePs
RankingServer::hedgeDelayNow() const
{
    if (policy.hedgeDelay > 0)
        return policy.hedgeDelay;
    const std::uint64_t n = accelLatencyUs.count();
    if (n < 32)
        return policy.hedgeMinDelay;  // not enough signal yet
    if (hedgeCachedAt == 0 || n >= hedgeCachedAt + 64) {
        // Recompute the tail estimate only as samples accumulate; the
        // histogram percentile is cheap but not free per query.
        hedgeCached = static_cast<sim::TimePs>(
            accelLatencyUs.percentile(policy.hedgeQuantile) *
            sim::kMicrosecond);
        hedgeCachedAt = n;
    }
    return std::max(policy.hedgeMinDelay, hedgeCached);
}

std::uint64_t
RankingServer::failPendingToSoftware()
{
    auto pending = std::move(accelOps);
    accelOps.clear();
    std::uint64_t rescued = 0;
    for (auto &[token, op] : pending) {
        cancelOpTimers(op);
        ++statSwFallback;
        ++rescued;
        softwareFeatureRerun(std::move(op));
    }
    return rescued;
}

void
RankingServer::finishQuery(const PendingQuery &q)
{
    const sim::TimePs latency = queue.now() - q.arrivedAt;
    statLatency.add(sim::toMillis(latency));
    if (obsLatencyHist)
        obsLatencyHist->add(sim::toMillis(latency));
    if (obsHub && obsHub->trace.enabled())
        obsHub->trace.complete(obsTrack, "host", obsPrefix + ".query",
                               q.arrivedAt, latency);
    if (q.trace.sampled && obsHub)
        obsHub->flows.endFlow(q.trace, queue.now());
    ++statCompleted;
    --activeQueries;
    if (q.done)
        q.done(latency);
}

}  // namespace ccsim::host
