#include "host/ranking_server.hpp"

#include <algorithm>

namespace ccsim::host {

void
LocalFpgaAccelerator::compute(std::uint32_t doc_count,
                              std::function<void()> done)
{
    ++statRequests;
    const sim::TimePs now = queue.now();
    const sim::TimePs occupancy = params.occupancyPerDoc * doc_count;
    const sim::TimePs start = std::max(now, busyUntil);
    busyUntil = start + occupancy;
    busyAccum += occupancy;
    queue.schedule(busyUntil + params.fixedLatency,
                   [d = std::move(done)] {
                       if (d)
                           d();
                   });
}

RankingServer::RankingServer(sim::EventQueue &eq,
                             RankingServiceParams service_params,
                             FeatureAccelerator *accel, std::uint64_t seed)
    : queue(eq), params(service_params), accelerator(accel), rng(seed),
      freeCores(service_params.cores)
{
}

void
RankingServer::attachObservability(obs::Observability *o,
                                   const std::string &node)
{
    obsHub = o;
    obsLatencyHist = nullptr;
    if (!o)
        return;
    obsPrefix = "host." + node;
    obsTrack = o->trace.track(obsPrefix);
    obsLatencyHist = &o->registry.histogram(obsPrefix + ".latency_ms");
    auto &reg = o->registry;
    reg.registerProbe(obsPrefix + ".completed",
                      [this] { return double(statCompleted); });
    reg.registerProbe(obsPrefix + ".in_flight",
                      [this] { return double(activeQueries); });
    reg.registerProbe(obsPrefix + ".queue_depth",
                      [this] { return double(waiting.size()); });
}

void
RankingServer::submitQuery(std::function<void(sim::TimePs)> done)
{
    ++activeQueries;
    waiting.push_back(PendingQuery{queue.now(), std::move(done)});
    tryDispatch();
}

void
RankingServer::tryDispatch()
{
    while (freeCores > 0 && !waiting.empty()) {
        --freeCores;
        PendingQuery q = std::move(waiting.front());
        waiting.pop_front();
        runQuery(std::move(q));
    }
}

void
RankingServer::runQuery(PendingQuery q)
{
    const auto pre = static_cast<sim::TimePs>(rng.lognormalMeanCv(
        static_cast<double>(params.cpuPreMean), params.cpuCv));
    const auto post = static_cast<sim::TimePs>(rng.lognormalMeanCv(
        static_cast<double>(params.cpuPostMean), params.cpuCv));

    auto run_post = [this, q = std::move(q), post]() mutable {
        queue.scheduleAfter(post, [this, q = std::move(q)] {
            ++freeCores;
            finishQuery(q);
            tryDispatch();
        });
    };

    if (accelerator == nullptr) {
        // Software mode: the feature stage runs on-core.
        const auto features = static_cast<sim::TimePs>(rng.lognormalMeanCv(
            static_cast<double>(params.swFeatureMean), params.swFeatureCv));
        queue.scheduleAfter(pre + features,
                            [rp = std::move(run_post)]() mutable { rp(); });
        return;
    }

    // Accelerated mode: the core blocks while the FPGA computes.
    const auto docs = static_cast<std::uint32_t>(std::max(
        1.0, rng.lognormalMeanCv(params.docsPerQueryMean,
                                 params.docsPerQueryCv)));
    queue.scheduleAfter(pre, [this, docs,
                              rp = std::move(run_post)]() mutable {
        accelerator->compute(docs,
                             [rp = std::move(rp)]() mutable { rp(); });
    });
}

void
RankingServer::finishQuery(const PendingQuery &q)
{
    const sim::TimePs latency = queue.now() - q.arrivedAt;
    statLatency.add(sim::toMillis(latency));
    if (obsLatencyHist)
        obsLatencyHist->add(sim::toMillis(latency));
    if (obsHub && obsHub->trace.enabled())
        obsHub->trace.complete(obsTrack, "host", obsPrefix + ".query",
                               q.arrivedAt, latency);
    ++statCompleted;
    --activeQueries;
    if (q.done)
        q.done(latency);
}

}  // namespace ccsim::host
