#include "host/ranking_server.hpp"

#include <algorithm>

namespace ccsim::host {

void
LocalFpgaAccelerator::compute(std::uint32_t doc_count,
                              std::function<void()> done)
{
    ++statRequests;
    const sim::TimePs now = queue.now();
    const sim::TimePs occupancy = params.occupancyPerDoc * doc_count;
    const sim::TimePs start = std::max(now, busyUntil);
    busyUntil = start + occupancy;
    busyAccum += occupancy;
    queue.schedule(busyUntil + params.fixedLatency,
                   [d = std::move(done)] {
                       if (d)
                           d();
                   });
}

RankingServer::RankingServer(sim::EventQueue &eq,
                             RankingServiceParams service_params,
                             FeatureAccelerator *accel, std::uint64_t seed)
    : queue(eq), params(service_params), accelerator(accel), rng(seed),
      freeCores(service_params.cores)
{
}

void
RankingServer::attachObservability(obs::Observability *o,
                                   const std::string &node)
{
    obsHub = o;
    obsLatencyHist = nullptr;
    if (!o)
        return;
    obsPrefix = "host." + node;
    obsTrack = o->trace.track(obsPrefix);
    obsLatencyHist = &o->registry.histogram(obsPrefix + ".latency_ms");
    auto &reg = o->registry;
    reg.registerProbe(obsPrefix + ".completed",
                      [this] { return double(statCompleted); });
    reg.registerProbe(obsPrefix + ".in_flight",
                      [this] { return double(activeQueries); });
    reg.registerProbe(obsPrefix + ".queue_depth",
                      [this] { return double(waiting.size()); });
    reg.registerProbe(obsPrefix + ".sw_feature_queries",
                      [this] { return double(statSwFeature); });
    reg.registerProbe(obsPrefix + ".accel_blocked",
                      [this] { return double(blockedInAccel.size()); });
}

void
RankingServer::submitQuery(std::function<void(sim::TimePs)> done)
{
    ++activeQueries;
    obs::TraceContext ctx;
    if (obsHub && obsHub->flows.enabled())
        ctx = obsHub->flows.beginFlow(obsPrefix + ".query", queue.now());
    waiting.push_back(PendingQuery{queue.now(), std::move(done), ctx});
    tryDispatch();
}

void
RankingServer::tryDispatch()
{
    while (freeCores > 0 && !waiting.empty()) {
        --freeCores;
        PendingQuery q = std::move(waiting.front());
        waiting.pop_front();
        runQuery(std::move(q));
    }
}

void
RankingServer::runQuery(PendingQuery q)
{
    const obs::TraceContext ctx = q.trace;
    const sim::TimePs now = queue.now();
    if (ctx.sampled && obsHub && now > q.arrivedAt) {
        // Time spent waiting for a free core.
        obsHub->flows.recordSpan(ctx, obsPrefix + ".queue",
                                 obs::Component::kQueueing, q.arrivedAt,
                                 now);
    }
    const auto pre = static_cast<sim::TimePs>(rng.lognormalMeanCv(
        static_cast<double>(params.cpuPreMean), params.cpuCv));
    const auto post = static_cast<sim::TimePs>(rng.lognormalMeanCv(
        static_cast<double>(params.cpuPostMean), params.cpuCv));
    if (ctx.sampled && obsHub)
        obsHub->flows.recordSpan(ctx, obsPrefix + ".cpu_pre",
                                 obs::Component::kCompute, now, now + pre);

    auto run_post = [this, q = std::move(q), post]() mutable {
        if (q.trace.sampled && obsHub)
            obsHub->flows.recordSpan(q.trace, obsPrefix + ".cpu_post",
                                     obs::Component::kCompute, queue.now(),
                                     queue.now() + post);
        queue.scheduleAfter(post, [this, q = std::move(q)] {
            ++freeCores;
            finishQuery(q);
            tryDispatch();
        });
    };

    if (accelerator == nullptr) {
        // Software mode: the feature stage runs on-core.
        ++statSwFeature;
        const auto features = static_cast<sim::TimePs>(rng.lognormalMeanCv(
            static_cast<double>(params.swFeatureMean), params.swFeatureCv));
        if (ctx.sampled && obsHub)
            obsHub->flows.recordSpan(ctx, obsPrefix + ".sw_features",
                                     obs::Component::kCompute, now + pre,
                                     now + pre + features);
        queue.scheduleAfter(pre + features,
                            [rp = std::move(run_post)]() mutable { rp(); });
        return;
    }

    // Accelerated mode: the core blocks while the FPGA computes. The
    // continuation is parked under a token so failPendingToSoftware()
    // can rescue it if the accelerator dies while the query is inside.
    const auto docs = static_cast<std::uint32_t>(std::max(
        1.0, rng.lognormalMeanCv(params.docsPerQueryMean,
                                 params.docsPerQueryCv)));
    queue.scheduleAfter(pre, [this, docs, ctx,
                              rp = std::move(run_post)]() mutable {
        if (accelerator == nullptr) {
            // The accelerator was detached while this query was in its
            // CPU stage: complete the feature stage in software.
            ++statSwFeature;
            const auto features =
                static_cast<sim::TimePs>(rng.lognormalMeanCv(
                    static_cast<double>(params.swFeatureMean),
                    params.swFeatureCv));
            if (ctx.sampled && obsHub)
                obsHub->flows.recordSpan(ctx, obsPrefix + ".sw_features",
                                         obs::Component::kCompute,
                                         queue.now(),
                                         queue.now() + features);
            queue.scheduleAfter(features,
                                [r = std::move(rp)]() mutable { r(); });
            return;
        }
        const std::uint64_t token = nextBlockedToken++;
        blockedInAccel[token] = std::move(rp);
        const sim::TimePs accel_start = queue.now();
        accelerator->compute(docs, [this, token, ctx, accel_start] {
            if (ctx.sampled && obsHub) {
                // Wall time inside the accelerator, including its own
                // serial-pipeline backlog.
                obsHub->flows.recordSpan(ctx, obsPrefix + ".accel",
                                         obs::Component::kCompute,
                                         accel_start, queue.now());
            }
            auto it = blockedInAccel.find(token);
            if (it == blockedInAccel.end())
                return;  // already rescued to software; drop the late ack
            auto r = std::move(it->second);
            blockedInAccel.erase(it);
            r();
        });
    });
}

std::uint64_t
RankingServer::failPendingToSoftware()
{
    auto pending = std::move(blockedInAccel);
    blockedInAccel.clear();
    std::uint64_t rescued = 0;
    for (auto &[token, rp] : pending) {
        ++statSwFeature;
        ++rescued;
        const auto features = static_cast<sim::TimePs>(rng.lognormalMeanCv(
            static_cast<double>(params.swFeatureMean), params.swFeatureCv));
        queue.scheduleAfter(features,
                            [r = std::move(rp)]() mutable { r(); });
    }
    return rescued;
}

void
RankingServer::finishQuery(const PendingQuery &q)
{
    const sim::TimePs latency = queue.now() - q.arrivedAt;
    statLatency.add(sim::toMillis(latency));
    if (obsLatencyHist)
        obsLatencyHist->add(sim::toMillis(latency));
    if (obsHub && obsHub->trace.enabled())
        obsHub->trace.complete(obsTrack, "host", obsPrefix + ".query",
                               q.arrivedAt, latency);
    if (q.trace.sampled && obsHub)
        obsHub->flows.endFlow(q.trace, queue.now());
    ++statCompleted;
    --activeQueries;
    if (q.done)
        q.done(latency);
}

}  // namespace ccsim::host
