/**
 * @file
 * End-to-end failure detection & recovery: the HealthMonitor (active
 * heartbeats + passive LTL suspicion), the LTL quiesce/drain protocol,
 * the RankingServer's deadline/retry/hedge policy, and the HaaS
 * auto-heal loop, exercised together on real ConfigurableClouds.
 */
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "haas/haas.hpp"
#include "haas/health_monitor.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "obs/metrics.hpp"
#include "roles/ranking/ranking_role.hpp"
#include "sim/event_queue.hpp"

using namespace ccsim;

namespace {

/** An 8-server single-pod cloud. */
core::CloudConfig
smallCloudConfig(fpga::ShellConfig shell = {})
{
    net::TopologyConfig topo;
    topo.hostsPerRack = 4;
    topo.racksPerPod = 2;
    topo.l1PerPod = 2;
    topo.pods = 1;
    topo.l2Count = 1;
    return core::CloudConfig{}.withTopology(topo).withShellTemplate(shell);
}

/**
 * A scriptable feature accelerator: completes after a fixed delay, or
 * (blackhole mode) holds the completion callback forever so the caller's
 * deadline machinery has to act. Held callbacks can be fired later to
 * model a late ack from an abandoned attempt.
 */
struct StubAccel : host::FeatureAccelerator {
    StubAccel(sim::EventQueue &q, sim::TimePs d) : eq(q), delay(d) {}

    void compute(std::uint32_t, std::function<void()> done) override
    {
        ++calls;
        if (blackhole) {
            held.push_back(std::move(done));
            return;
        }
        eq.scheduleAfter(delay, [d = std::move(done)] { d(); });
    }

    sim::EventQueue &eq;
    sim::TimePs delay;
    bool blackhole = false;
    int calls = 0;
    std::vector<std::function<void()>> held;
};

}  // namespace

// ---------------------------------------------------------------------
// HealthMonitor
// ---------------------------------------------------------------------

TEST(HealthMonitor, DetectsDarkNodeWithinBoundAndRepairsOnRejoin)
{
    sim::EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloudConfig());
    auto &rm = cloud.resourceManager();

    haas::HealthMonitor hm(eq, rm);  // defaults: 100us period, threshold 3
    cloud.attachHealthMonitor(hm);
    hm.start();

    eq.runFor(250 * sim::kMicrosecond);
    cloud.setHostLinkDown(3, true);
    const sim::TimePs dark_at = eq.now();

    // The detection bound is the worst case from going dark to the
    // failure report reaching the RM.
    eq.runFor(hm.detectionBound());
    EXPECT_EQ(hm.detections(), 1u);
    EXPECT_TRUE(hm.suspected(3));
    EXPECT_FALSE(rm.manager(3)->status().healthy);
    EXPECT_EQ(rm.failedCount(), 1);
    EXPECT_GE(hm.heartbeatsMissed(), 3u);
    EXPECT_GT(eq.now(), dark_at);

    // Restore the link: consecutive healthy heartbeats drive the repair.
    cloud.setHostLinkDown(3, false);
    eq.runFor(hm.config().heartbeatPeriod *
              (hm.config().rejoinHeartbeats + 2));
    EXPECT_EQ(hm.rejoins(), 1u);
    EXPECT_FALSE(hm.suspected(3));
    EXPECT_TRUE(rm.manager(3)->status().healthy);
    EXPECT_EQ(rm.failedCount(), 0);

    hm.stop();
}

TEST(HealthMonitor, PassiveLtlStreaksDetectWithoutHeartbeats)
{
    sim::EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloudConfig());
    auto &rm = cloud.resourceManager();

    // Heartbeats effectively off: the first sweep is a second away.
    haas::HealthMonitor hm(
        eq, rm,
        haas::HealthMonitorConfig{}.withHeartbeat(sim::kSecond,
                                                  10 * sim::kMicrosecond));
    cloud.attachHealthMonitor(hm);
    hm.start();

    core::LtlChannel ch = cloud.openLtl(0, 1, fpga::kErPortRole0);
    cloud.setHostLinkDown(1, true);
    ch.send(1024);

    // Retransmission-timeout streaks feed suspicion: the dead peer is
    // suspected long before any heartbeat sweep.
    eq.runFor(sim::fromMillis(2));
    EXPECT_GE(hm.streakReports(), 3u);
    EXPECT_EQ(hm.detections(), 1u);
    EXPECT_EQ(hm.heartbeatsSent(), 0u);
    EXPECT_FALSE(rm.manager(1)->status().healthy);

    hm.stop();
}

// ---------------------------------------------------------------------
// LTL quiesce / drain / re-handshake
// ---------------------------------------------------------------------

TEST(Quiesce, DrainRejectAndRehandshake)
{
    sim::EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloudConfig());
    ltl::LtlEngine *e0 = cloud.shell(0).ltlEngine();
    ltl::LtlEngine *e1 = cloud.shell(1).ltlEngine();

    core::LtlChannel to1 = cloud.openLtl(0, 1, fpga::kErPortRole0);
    core::LtlChannel from1 = cloud.openLtl(1, 0, fpga::kErPortRole0);

    to1.send(1024);
    eq.runFor(sim::fromMillis(1));
    EXPECT_EQ(e1->messagesDelivered(), 1u);

    // Quiesce node 1's engine: idle, so it drains immediately.
    bool drained = false;
    e1->beginQuiesce(200 * sim::kMicrosecond, [&] { drained = true; });
    eq.runFor(sim::fromMillis(1));
    EXPECT_TRUE(drained);
    EXPECT_EQ(e1->quiesceState(), ltl::LtlEngine::QuiesceState::kQuiesced);
    EXPECT_EQ(e1->quiesces(), 1u);

    // Sends *from* the quiesced engine are refused at admission.
    from1.send(512);
    EXPECT_EQ(e1->sendsRejected(), 1u);

    // Data *into* the quiesced engine draws a REJECT, which fails the
    // sender's connection immediately — no 16-retry wait.
    to1.send(2048);
    eq.runFor(sim::fromMillis(1));
    EXPECT_GT(e1->rejectsSent(), 0u);
    EXPECT_GT(e0->rejectsReceived(), 0u);
    EXPECT_TRUE(to1.failed());
    EXPECT_EQ(e1->messagesDelivered(), 1u);  // nothing slipped through

    // Reopen admission and re-handshake: traffic flows again.
    e1->endQuiesce();
    EXPECT_EQ(e1->quiesceState(), ltl::LtlEngine::QuiesceState::kActive);
    to1.rehandshake();
    EXPECT_FALSE(to1.failed());
    to1.send(4096);
    eq.runFor(sim::fromMillis(1));
    EXPECT_EQ(e1->messagesDelivered(), 2u);
}

TEST(Quiesce, ReconfigureFullQuiescedRoundTrip)
{
    fpga::ShellConfig shell;
    shell.board.fullReconfigTime = sim::fromMillis(1);
    sim::EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloudConfig(shell));
    ltl::LtlEngine *e1 = cloud.shell(1).ltlEngine();

    bool done = false;
    cloud.shell(1).reconfigureFullQuiesced([&] { done = true; });
    eq.runFor(100 * sim::kMicrosecond);
    EXPECT_FALSE(cloud.nodeReachable(1));  // dark mid-reconfiguration

    eq.runFor(sim::fromMillis(5));
    EXPECT_TRUE(done);
    EXPECT_TRUE(cloud.nodeReachable(1));
    EXPECT_EQ(e1->quiesces(), 1u);
    EXPECT_EQ(e1->quiesceState(), ltl::LtlEngine::QuiesceState::kActive);
}

// ---------------------------------------------------------------------
// Query deadlines, retry, hedging, software fallback
// ---------------------------------------------------------------------

TEST(RetryPolicy, DeadlineRetryCompletesOnReplica)
{
    sim::EventQueue eq;
    StubAccel primary(eq, 0);
    primary.blackhole = true;
    StubAccel replica(eq, 50 * sim::kMicrosecond);

    host::RankingServer server(eq, host::RankingServiceParams{}, &primary,
                               7);
    server.setRetryPolicy(host::QueryRetryPolicy{}
                              .withDeadline(200 * sim::kMicrosecond, 3)
                              .withBackoff(50 * sim::kMicrosecond, 0.0));
    server.setReplicaPicker([&]() -> host::FeatureAccelerator * {
        return &replica;
    });

    int completions = 0;
    server.submitQuery([&](sim::TimePs) { ++completions; });
    eq.runFor(sim::fromMillis(50));

    EXPECT_EQ(completions, 1);
    EXPECT_EQ(server.inFlight(), 0u);
    EXPECT_EQ(primary.calls, 1);
    EXPECT_EQ(replica.calls, 1);
    EXPECT_EQ(server.deadlinesExpired(), 1u);
    EXPECT_EQ(server.retriesIssued(), 1u);
    EXPECT_EQ(server.softwareFallbacks(), 0u);
}

TEST(RetryPolicy, ExhaustionFallsBackToSoftwareAndIgnoresLateAcks)
{
    sim::EventQueue eq;
    StubAccel primary(eq, 0);
    primary.blackhole = true;

    host::RankingServer server(eq, host::RankingServiceParams{}, &primary,
                               7);
    server.setRetryPolicy(host::QueryRetryPolicy{}
                              .withDeadline(100 * sim::kMicrosecond, 2)
                              .withBackoff(50 * sim::kMicrosecond, 0.0));
    // No replica: retries go back to the (dead) primary.

    int completions = 0;
    server.submitQuery([&](sim::TimePs) { ++completions; });
    eq.runFor(sim::fromMillis(50));

    EXPECT_EQ(completions, 1);
    EXPECT_EQ(server.softwareFallbacks(), 1u);
    EXPECT_EQ(server.deadlinesExpired(), 2u);
    EXPECT_EQ(primary.calls, 2);

    // The abandoned attempts ack late: must not double-complete.
    for (auto &ack : primary.held)
        ack();
    eq.runFor(sim::fromMillis(1));
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(server.completed(), 1u);
    EXPECT_EQ(server.inFlight(), 0u);
}

TEST(RetryPolicy, HedgedDuplicateWinsAndIsCounted)
{
    sim::EventQueue eq;
    StubAccel primary(eq, sim::fromMillis(1));  // slow
    StubAccel replica(eq, 50 * sim::kMicrosecond);

    host::RankingServer server(eq, host::RankingServiceParams{}, &primary,
                               7);
    server.setRetryPolicy(
        host::QueryRetryPolicy{}.withHedge(100 * sim::kMicrosecond));
    server.setReplicaPicker([&]() -> host::FeatureAccelerator * {
        return &replica;
    });

    int completions = 0;
    server.submitQuery([&](sim::TimePs) { ++completions; });
    eq.runFor(sim::fromMillis(50));

    EXPECT_EQ(completions, 1);
    EXPECT_EQ(server.hedgesIssued(), 1u);
    EXPECT_EQ(server.hedgeWins(), 1u);
    EXPECT_EQ(primary.calls, 1);
    EXPECT_EQ(replica.calls, 1);
    EXPECT_EQ(server.completed(), 1u);  // the slow primary's late ack
    EXPECT_EQ(server.inFlight(), 0u);   // was dropped, not re-counted
}

TEST(RetryPolicy, FailPendingRescuesDispatchedQueriesExactlyOnce)
{
    sim::EventQueue eq;
    StubAccel primary(eq, 0);
    primary.blackhole = true;

    // No retry policy: the pre-policy behaviour is to block forever.
    host::RankingServer server(eq, host::RankingServiceParams{}, &primary,
                               7);
    int completions = 0;
    server.submitQuery([&](sim::TimePs) { ++completions; });
    eq.runFor(sim::fromMillis(5));  // well past the pre-feature CPU stage
    ASSERT_EQ(primary.calls, 1);
    EXPECT_EQ(server.inFlight(), 1u);

    EXPECT_EQ(server.failPendingToSoftware(), 1u);
    for (auto &ack : primary.held)  // dead accelerator acks late
        ack();
    eq.runFor(sim::fromMillis(50));

    EXPECT_EQ(completions, 1);
    EXPECT_EQ(server.completed(), 1u);
    EXPECT_EQ(server.inFlight(), 0u);
    EXPECT_EQ(server.softwareFallbacks(), 1u);
}

// ---------------------------------------------------------------------
// HaaS auto-heal through the RM subscriptions
// ---------------------------------------------------------------------

TEST(AutoHeal, ReacquiresRepairedBoardAndReconfiguresIt)
{
    sim::EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloudConfig());
    auto &rm = cloud.resourceManager();

    // Fill the pool so only two boards remain for the service.
    auto filler = rm.acquire("filler", 6);
    ASSERT_TRUE(filler.has_value());

    std::vector<std::unique_ptr<roles::RankingRole>> role_pool;
    haas::ServiceManager sm(eq, rm, "rank", [&](int) {
        role_pool.push_back(std::make_unique<roles::RankingRole>(eq));
        return role_pool.back().get();
    });
    sm.enableAutoHeal(2);
    ASSERT_TRUE(sm.deploy(2));
    const int victim = sm.instances()[0];

    // Pool exhausted: the failover cannot find a replacement and the
    // service shrinks below target.
    rm.reportFailure(victim);
    EXPECT_EQ(sm.instances().size(), 1u);
    EXPECT_EQ(sm.failovers(), 0u);
    EXPECT_EQ(rm.freeCount(), 0);

    // Repair returns the board blank; the repair subscription re-leases
    // it and configures a fresh role into the reclaimed region (this
    // used to fail: the dead instance's role still occupied the area).
    rm.repair(victim);
    EXPECT_EQ(sm.instances().size(), 2u);
    EXPECT_EQ(sm.autoHeals(), 1u);
    EXPECT_TRUE(rm.manager(victim)->status().hasRole);
}

TEST(AutoHeal, DeployFailsGracefullyOnExhaustedPool)
{
    sim::EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloudConfig());
    auto &rm = cloud.resourceManager();
    auto filler = rm.acquire("filler", 6);
    ASSERT_TRUE(filler.has_value());

    std::vector<std::unique_ptr<roles::RankingRole>> role_pool;
    haas::ServiceManager sm(eq, rm, "rank", [&](int) {
        role_pool.push_back(std::make_unique<roles::RankingRole>(eq));
        return role_pool.back().get();
    });
    EXPECT_FALSE(sm.deploy(3));  // only 2 boards left
    EXPECT_EQ(sm.instances().size(), 2u);
    EXPECT_EQ(rm.freeCount(), 0);
}

TEST(AutoHeal, SimultaneousFailureCallbacksArriveInHostIndexOrder)
{
    sim::EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloudConfig());
    auto &rm = cloud.resourceManager();

    // Lease every board so failure callbacks fire for each victim.
    auto lease = rm.acquire("svc", 8);
    ASSERT_TRUE(lease.has_value());

    std::vector<int> order;
    rm.subscribeFailures(
        [&](int host, std::uint64_t) { order.push_back(host); });

    haas::HealthMonitor hm(eq, rm);
    cloud.attachHealthMonitor(hm);
    hm.start();

    // Three nodes go dark at the same instant; one sweep crosses the
    // threshold for all of them, in host-index order.
    eq.runFor(150 * sim::kMicrosecond);
    for (int host : {5, 2, 7})
        cloud.setHostLinkDown(host, true);
    eq.runFor(hm.detectionBound());
    hm.stop();

    EXPECT_EQ(order, (std::vector<int>{2, 5, 7}));
    EXPECT_EQ(rm.failedCount(), 3);
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

namespace {

/** A miniature chaos run; returns the full metrics snapshot. */
std::string
miniChaosSnapshot()
{
    sim::EventQueue eq;
    obs::Observability hub;
    core::ConfigurableCloud cloud(
        eq, smallCloudConfig().withObservability(&hub));
    auto &rm = cloud.resourceManager();

    haas::HealthMonitor hm(eq, rm);
    hm.attachObservability(&hub);
    cloud.attachHealthMonitor(hm);
    hm.start();

    StubAccel primary(eq, 150 * sim::kMicrosecond);
    StubAccel replica(eq, 150 * sim::kMicrosecond);
    host::RankingServer server(eq, host::RankingServiceParams{}, &primary,
                               31);
    server.attachObservability(&hub, "rank");
    server.setRetryPolicy(host::QueryRetryPolicy{}
                              .withDeadline(sim::fromMillis(2), 3)
                              .withBackoff(100 * sim::kMicrosecond, 0.2)
                              .withHedge(300 * sim::kMicrosecond));
    server.setReplicaPicker([&]() -> host::FeatureAccelerator * {
        return &replica;
    });

    host::PoissonLoadGenerator gen(
        eq, 2000.0, [&] { server.submitQuery(); }, 37);
    eq.schedule(sim::fromMillis(5),
                [&] { cloud.setHostLinkDown(3, true); });
    eq.schedule(sim::fromMillis(8),
                [&] { cloud.setHostLinkDown(3, false); });

    gen.start();
    eq.runUntil(sim::fromMillis(20));
    gen.stop();
    eq.runFor(sim::fromMillis(50));
    hm.stop();
    eq.runFor(sim::fromMillis(1));
    return hub.registry.snapshotJson();
}

}  // namespace

TEST(Determinism, SameSeedChaosRunsAreByteIdentical)
{
    const std::string a = miniChaosSnapshot();
    const std::string b = miniChaosSnapshot();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}
