/**
 * @file
 * Flyweight-host tests: lazy topology/cloud materialization semantics,
 * byte-identity between lazy and eager builds, management-plane touches
 * (fault injection, health heartbeats, lease deploys) materializing
 * stubs deterministically, widened pod addressing, and the sim.mem.*
 * memory telemetry.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "fault/fault.hpp"
#include "haas/health_monitor.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using sim::EventQueue;
using sim::TimePs;

/** A no-op role so LTL deliveries have a destination. */
struct NullRole : fpga::Role {
    int port = -1;
    std::string name() const override { return "null"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &) override {}
};

core::CloudConfig
podScaleConfig(bool lazy)
{
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 2;
    cfg.topology.l2Count = 2;
    cfg.createNics = true;
    cfg.lazyHosts = lazy;
    return cfg;
}

TEST(LazyFabric, StubsMaterializeOnFirstTouchOnly)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, podScaleConfig(true));
    net::Topology &topo = cloud.topology();

    EXPECT_EQ(cloud.materializedServers(), 0);
    EXPECT_EQ(topo.materializedHosts(), 0);
    EXPECT_TRUE(topo.lazyHosts());
    for (int h = 0; h < cloud.numServers(); ++h) {
        EXPECT_FALSE(cloud.serverMaterialized(h));
        EXPECT_FALSE(topo.hostMaterialized(h));
        // Warm facts live in the stub: address/coords need no touch.
        EXPECT_EQ(topo.host(h).addr, net::Topology::hostAddr(
                                         topo.host(h).pod, topo.host(h).rack,
                                         topo.host(h).indexInRack));
    }

    // An accessor is a touch; it materializes that server and no other.
    cloud.shell(5);
    EXPECT_TRUE(cloud.serverMaterialized(5));
    EXPECT_TRUE(topo.hostMaterialized(5));
    EXPECT_EQ(cloud.materializedServers(), 1);
    EXPECT_FALSE(cloud.serverMaterialized(4));
    EXPECT_FALSE(cloud.serverMaterialized(6));

    // End-to-end traffic between two touched hosts crosses the fabric
    // while every other server is still a stub.
    const int src = 5, dst = cloud.numServers() - 1;
    NullRole sink;
    ASSERT_GE(cloud.shell(dst).addRole(&sink), 0);
    auto ch = cloud.openLtl(src, dst, sink.port);
    auto *engine = cloud.shell(src).ltlEngine();
    for (int i = 0; i < 10; ++i)
        eq.scheduleAfter(i * 20 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 64);
                         });
    eq.runFor(sim::fromMillis(2));
    EXPECT_EQ(engine->rttUs().count(), 10u);
    EXPECT_EQ(cloud.materializedServers(), 2);
}

TEST(LazyFabric, AscendingTouchOrderIsByteIdenticalToEager)
{
    // A lazy build whose hosts are touched in ascending order must be
    // indistinguishable — to the byte, across every metric — from the
    // eager build (same construction sequence, same RNG draws).
    auto run = [](bool lazy) {
        EventQueue eq;
        obs::Observability hub;
        auto cfg = podScaleConfig(lazy);
        cfg.obs = &hub;
        core::ConfigurableCloud cloud(eq, cfg);
        if (lazy)
            for (int h = 0; h < cloud.numServers(); ++h)
                cloud.materializeServer(h);

        NullRole sink;
        const int src = 1, dst = cloud.numServers() - 2;
        EXPECT_GE(cloud.shell(dst).addRole(&sink), 0);
        auto ch = cloud.openLtl(src, dst, sink.port);
        auto *engine = cloud.shell(src).ltlEngine();
        hub.registry.startSampling(eq, 50 * sim::kMicrosecond, &hub.trace);
        for (int i = 0; i < 40; ++i)
            eq.scheduleAfter(i * 10 * sim::kMicrosecond,
                             [engine, conn = ch.sendConn()] {
                                 engine->sendMessage(conn, 64);
                             });
        eq.runFor(sim::fromMillis(2));
        hub.registry.stopSampling();
        return std::pair<std::vector<double>, std::string>(
            engine->rttUs().raw(), hub.registry.snapshotJson());
    };
    const auto eager = run(false);
    const auto lazyRun = run(true);
    EXPECT_EQ(eager.first, lazyRun.first);
    EXPECT_EQ(eager.second, lazyRun.second);
}

TEST(LazyFabric, FaultInjectorMaterializesStubDeterministically)
{
    // Regression: injecting a fault into a not-yet-materialized host
    // must materialize it (deterministically), not crash or no-op.
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, podScaleConfig(true));
    fault::FaultInjector inject(eq, cloud);

    const int victim = 7;
    ASSERT_FALSE(cloud.serverMaterialized(victim));
    inject.flapHostLink(victim, sim::fromMillis(1));
    eq.runFor(sim::fromMillis(0.1));
    EXPECT_TRUE(cloud.serverMaterialized(victim));
    EXPECT_FALSE(cloud.nodeReachable(victim));  // cable is down
    eq.runFor(sim::fromMillis(2));
    EXPECT_TRUE(cloud.nodeReachable(victim));   // flap healed

    // Hard-failing a stub works too, and the RM sees the failure.
    const int dead = 9;
    ASSERT_FALSE(cloud.serverMaterialized(dead));
    inject.failFpga(dead);
    eq.runFor(sim::fromMillis(0.1));
    EXPECT_TRUE(cloud.serverMaterialized(dead));
    EXPECT_FALSE(cloud.nodeReachable(dead));
    EXPECT_FALSE(cloud.fpgaManager(dead).status().healthy);
    EXPECT_EQ(cloud.resourceManager().failedCount(), 1);
    inject.repairFpga(dead);
    eq.runFor(sim::fromMillis(0.1));
    EXPECT_TRUE(cloud.nodeReachable(dead));
    EXPECT_EQ(cloud.resourceManager().failedCount(), 0);
}

TEST(LazyFabric, HealthMonitorHeartbeatIsAMaterializingTouch)
{
    // A heartbeat probe is a management-path touch: one full sweep of a
    // lazy cloud materializes every host (and answers exactly like an
    // eager build would).
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, podScaleConfig(true));
    haas::HealthMonitorConfig hc;
    haas::HealthMonitor hm(eq, cloud.resourceManager(), hc);
    cloud.attachHealthMonitor(hm);
    EXPECT_EQ(cloud.materializedServers(), 0);
    hm.start();
    eq.runFor(2 * hc.heartbeatPeriod);
    EXPECT_EQ(cloud.materializedServers(), cloud.numServers());
    EXPECT_EQ(cloud.resourceManager().failedCount(), 0);
    hm.stop();
}

TEST(LazyFabric, LeaseDeployMaterializesThroughTheResolver)
{
    // The RM registers stubs with a null FpgaManager; manager() resolves
    // through the cloud, materializing the server on lease touch.
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, podScaleConfig(true));
    haas::ResourceManager &rm = cloud.resourceManager();

    std::vector<std::unique_ptr<NullRole>> roles;
    haas::ServiceManager sm(eq, rm, "svc", [&](int) {
        roles.push_back(std::make_unique<NullRole>());
        return roles.back().get();
    });
    ASSERT_EQ(cloud.materializedServers(), 0);
    ASSERT_TRUE(sm.deploy(3));
    EXPECT_EQ(cloud.materializedServers(), 3);
    for (int host : sm.instances())
        EXPECT_TRUE(cloud.serverMaterialized(host));
    EXPECT_EQ(rm.allocatedCount(), 3);
    sm.teardown();
}

TEST(LazyFabric, WidenedPodAddressingIsBackwardCompatible)
{
    // Pods 0-255 keep their historical 10.pod.rack.idx addresses; pods
    // beyond spill into the second octet pair-wise (the two octets
    // jointly encode the pod, preserving /16 pod-prefix routing).
    EXPECT_EQ(net::Topology::hostAddr(0, 1, 2), net::Ipv4Addr::of(10, 0, 1, 3));
    EXPECT_EQ(net::Topology::hostAddr(255, 0, 0),
              net::Ipv4Addr::of(10, 255, 0, 1));
    EXPECT_EQ(net::Topology::hostAddr(256, 0, 0),
              net::Ipv4Addr::of(11, 0, 0, 1));
    EXPECT_EQ(net::Topology::hostAddr(300, 3, 7),
              net::Ipv4Addr::of(11, 44, 3, 8));

    // A paper-scale pod count routes end-to-end across the 255 boundary.
    EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 1;
    cfg.topology.racksPerPod = 1;
    cfg.topology.l1PerPod = 1;
    cfg.topology.pods = 300;
    cfg.topology.l2Count = 1;
    cfg.createNics = false;
    cfg.lazyHosts = true;
    core::ConfigurableCloud cloud(eq, cfg);
    const int src = cloud.topology().hostIndex(0, 0, 0);
    const int dst = cloud.topology().hostIndex(299, 0, 0);
    NullRole sink;
    ASSERT_GE(cloud.shell(dst).addRole(&sink), 0);
    auto ch = cloud.openLtl(src, dst, sink.port);
    auto *engine = cloud.shell(src).ltlEngine();
    eq.scheduleAfter(0, [engine, conn = ch.sendConn()] {
        engine->sendMessage(conn, 64);
    });
    eq.runFor(sim::fromMillis(2));
    EXPECT_EQ(engine->rttUs().count(), 1u);
    EXPECT_EQ(cloud.materializedServers(), 2);
}

TEST(LazyFabric, FabricMemoryStatsAndGaugesTrackMaterialization)
{
    EventQueue eq;
    obs::Observability hub;
    auto cfg = podScaleConfig(true);
    cfg.obs = &hub;
    core::ConfigurableCloud cloud(eq, cfg);

    auto before = cloud.fabricMemoryStats();
    EXPECT_EQ(before.hosts, cloud.numServers());
    EXPECT_EQ(before.materializedHosts, 0);
    EXPECT_GT(before.switches, 0u);
    EXPECT_GT(before.fabricLinks, 0u);
    EXPECT_GT(before.bytesPerServer, 0u);

    cloud.shell(0);
    cloud.shell(1);
    auto after = cloud.fabricMemoryStats();
    EXPECT_EQ(after.materializedHosts, 2);
    // Materialized cables (FPGA<->TOR + NIC<->FPGA) join the link count.
    EXPECT_EQ(after.fabricLinks, before.fabricLinks + 4);
    // A fleet of stubs amortizes far below one server's heavy state.
    EXPECT_LT(after.bytesPerHost, double(after.bytesPerServer));

    // The same numbers back the sim.mem.* gauges.
    hub.registry.startSampling(eq, 50 * sim::kMicrosecond, &hub.trace);
    eq.runFor(sim::fromMillis(1));
    hub.registry.stopSampling();
    const std::string snap = hub.registry.snapshotJson();
    EXPECT_NE(snap.find("sim.mem.hosts"), std::string::npos);
    EXPECT_NE(snap.find("sim.mem.materialized_hosts"), std::string::npos);
    EXPECT_NE(snap.find("sim.mem.switches"), std::string::npos);
    EXPECT_NE(snap.find("sim.mem.fabric_links"), std::string::npos);
    EXPECT_NE(snap.find("sim.mem.bytes_per_host"), std::string::npos);
}

TEST(LazyFabric, EagerBuildIsFullyMaterializedAndIdempotent)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, podScaleConfig(false));
    EXPECT_EQ(cloud.materializedServers(), cloud.numServers());
    cloud.materializeServer(3);  // idempotent no-op
    EXPECT_EQ(cloud.materializedServers(), cloud.numServers());
    auto mem = cloud.fabricMemoryStats();
    EXPECT_EQ(mem.materializedHosts, mem.hosts);
}

}  // namespace
