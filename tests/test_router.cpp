/**
 * @file
 * Elastic Router tests: message delivery, VC separation, credit flow
 * control (elastic vs static), U-turns, wormhole integrity under
 * contention, and multi-router composition (ring).
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "router/elastic_router.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using router::ElasticRouter;
using router::ErConfig;
using router::ErEndpoint;
using router::ErMessagePtr;
using sim::EventQueue;

struct Harness {
    EventQueue eq;
    std::unique_ptr<ElasticRouter> er;
    std::vector<std::unique_ptr<ErEndpoint>> eps;
    std::map<int, std::vector<ErMessagePtr>> received;

    explicit Harness(ErConfig cfg)
    {
        er = std::make_unique<ElasticRouter>(eq, cfg);
        for (int p = 0; p < cfg.numPorts; ++p) {
            eps.push_back(std::make_unique<ErEndpoint>(eq, *er, p, p));
            er->setOutputSink(p, eps.back().get());
            const int port = p;
            eps.back()->setMessageHandler(
                [this, port](const ErMessagePtr &m) {
                    received[port].push_back(m);
                });
        }
    }
};

TEST(ElasticRouter, DeliversSingleFlitMessage)
{
    Harness h(ErConfig{});
    h.eps[0]->sendMessage(2, 0, 16);
    h.eq.runAll();
    ASSERT_EQ(h.received[2].size(), 1u);
    EXPECT_EQ(h.received[2][0]->srcEndpoint, 0);
    EXPECT_EQ(h.received[2][0]->sizeBytes, 16u);
}

TEST(ElasticRouter, DeliversMultiFlitMessage)
{
    Harness h(ErConfig{});
    h.eps[1]->sendMessage(3, 1, 1500);  // ~47 flits at 32 B
    h.eq.runAll();
    ASSERT_EQ(h.received[3].size(), 1u);
    EXPECT_EQ(h.received[3][0]->sizeBytes, 1500u);
    EXPECT_EQ(h.er->messagesRouted(), 1u);
    EXPECT_EQ(h.er->flitsRouted(), (1500u + 31) / 32);
}

TEST(ElasticRouter, SupportsUturn)
{
    Harness h(ErConfig{});
    h.eps[2]->sendMessage(2, 0, 64);  // to itself
    h.eq.runAll();
    ASSERT_EQ(h.received[2].size(), 1u);
}

TEST(ElasticRouter, ManyMessagesAllPortsAllDelivered)
{
    ErConfig cfg;
    cfg.numPorts = 4;
    cfg.numVcs = 2;
    Harness h(cfg);
    const int kPerPair = 20;
    int expected[4] = {0, 0, 0, 0};
    for (int src = 0; src < 4; ++src) {
        for (int dst = 0; dst < 4; ++dst) {
            for (int i = 0; i < kPerPair; ++i) {
                h.eps[src]->sendMessage(dst, (src + i) % 2, 96);
                ++expected[dst];
            }
        }
    }
    h.eq.runAll();
    for (int dst = 0; dst < 4; ++dst)
        EXPECT_EQ(static_cast<int>(h.received[dst].size()), expected[dst]);
}

TEST(ElasticRouter, MessagesOnOneVcArriveInOrder)
{
    Harness h(ErConfig{});
    for (std::uint32_t i = 0; i < 50; ++i) {
        auto msg = std::make_shared<router::ErMessage>();
        msg->dstEndpoint = 1;
        msg->vc = 0;
        msg->sizeBytes = 64 + i;  // distinguishable
        h.eps[0]->sendMessage(msg);
    }
    h.eq.runAll();
    ASSERT_EQ(h.received[1].size(), 50u);
    for (std::uint32_t i = 0; i < 50; ++i)
        EXPECT_EQ(h.received[1][i]->sizeBytes, 64 + i);
}

TEST(ElasticRouter, WormholeNoInterleavingUnderContention)
{
    // Two inputs stream large messages to the same output on the same VC;
    // wormhole locking must keep each message contiguous (delivery order
    // of the two messages is arbitrary but both must arrive intact, which
    // the per-message reassembly asserts by construction: a corrupted
    // interleave would panic in the router).
    ErConfig cfg;
    cfg.numPorts = 3;
    cfg.numVcs = 1;
    Harness h(cfg);
    h.eps[0]->sendMessage(2, 0, 4096);
    h.eps[1]->sendMessage(2, 0, 4096);
    h.eq.runAll();
    EXPECT_EQ(h.received[2].size(), 2u);
}

TEST(ElasticRouter, CreditBackpressureQueuesInEndpoint)
{
    ErConfig cfg;
    cfg.numPorts = 2;
    cfg.numVcs = 1;
    cfg.perVcReservedFlits = 2;
    cfg.sharedPoolFlits = 2;
    Harness h(cfg);
    // Slow consumer: output drains one flit per 16 cycles.
    h.er->setOutputCyclesPerFlit(1, 16);
    h.eps[0]->sendMessage(1, 0, 4096);  // 128 flits >> 4 credits
    // Immediately after sending, most flits wait in the endpoint.
    EXPECT_GT(h.eps[0]->backlogFlits(), 100u);
    h.eq.runAll();
    ASSERT_EQ(h.received[1].size(), 1u);
    EXPECT_EQ(h.eps[0]->backlogFlits(), 0u);
}

TEST(ElasticRouter, InjectWithoutCreditPanics)
{
    ErConfig cfg;
    cfg.numPorts = 2;
    cfg.numVcs = 1;
    cfg.policy = router::CreditPolicy::kStatic;
    cfg.staticPerVcFlits = 1;
    EventQueue eq;
    ElasticRouter er(eq, cfg);
    router::Flit flit;
    flit.vc = 0;
    flit.dstEndpoint = 1;
    er.injectFlit(0, flit);
    EXPECT_DEATH(er.injectFlit(0, flit), "credit");
}

TEST(ElasticRouter, ElasticPolicySharesPoolAcrossVcs)
{
    ErConfig cfg;
    cfg.numPorts = 2;
    cfg.numVcs = 4;
    cfg.policy = router::CreditPolicy::kElastic;
    cfg.perVcReservedFlits = 1;
    cfg.sharedPoolFlits = 8;
    EventQueue eq;
    ElasticRouter er(eq, cfg);
    // One VC can consume its reservation plus the whole shared pool.
    router::Flit flit;
    flit.vc = 0;
    flit.dstEndpoint = 1;
    int accepted = 0;
    while (er.canAccept(0, 0) && accepted < 100) {
        er.injectFlit(0, flit);
        ++accepted;
    }
    EXPECT_EQ(accepted, 1 + 8);
    // Other VCs still have their reservations.
    for (int vc = 1; vc < 4; ++vc)
        EXPECT_TRUE(er.canAccept(0, vc));
}

TEST(ElasticRouter, StaticPolicyIsolatesVcs)
{
    ErConfig cfg;
    cfg.numPorts = 2;
    cfg.numVcs = 2;
    cfg.policy = router::CreditPolicy::kStatic;
    cfg.staticPerVcFlits = 3;
    EventQueue eq;
    ElasticRouter er(eq, cfg);
    router::Flit flit;
    flit.vc = 0;
    flit.dstEndpoint = 1;
    for (int i = 0; i < 3; ++i)
        er.injectFlit(0, flit);
    EXPECT_FALSE(er.canAccept(0, 0));
    EXPECT_TRUE(er.canAccept(0, 1));
}

TEST(ElasticRouter, ElasticNeedsFewerBuffersForSameTraffic)
{
    // The paper's rationale: a shared pool reduces aggregate buffering.
    // Same offered traffic, same total buffer budget per input (12):
    // elastic = 4 VCs x 1 reserved + 8 shared; static = 4 VCs x 3.
    auto run = [](router::CreditPolicy policy) {
        ErConfig cfg;
        cfg.numPorts = 4;
        cfg.numVcs = 4;
        cfg.policy = policy;
        cfg.perVcReservedFlits = 1;
        cfg.sharedPoolFlits = 8;
        cfg.staticPerVcFlits = 3;
        Harness h(cfg);
        // Bursty: all traffic on one VC at a time.
        for (int src = 0; src < 4; ++src)
            h.eps[src]->sendMessage((src + 1) % 4, 0, 2048);
        h.eq.runAll();
        std::size_t delivered = 0;
        for (auto &[port, msgs] : h.received)
            delivered += msgs.size();
        return delivered;
    };
    EXPECT_EQ(run(router::CreditPolicy::kElastic), 4u);
    EXPECT_EQ(run(router::CreditPolicy::kStatic), 4u);
}

TEST(ElasticRouter, RingCompositionRoutesAcrossRouters)
{
    // Two ERs composed: endpoint 0/1 on router A (ports 0,1), endpoints
    // 2/3 on router B (ports 0,1); port 2 of each router connects to the
    // other (credit-respecting shim).
    EventQueue eq;
    ErConfig cfg;
    cfg.numPorts = 3;
    cfg.numVcs = 1;
    ElasticRouter a(eq, cfg), b(eq, cfg);
    a.setRouteFn([](int dst) { return dst <= 1 ? dst : 2; });
    b.setRouteFn([](int dst) { return dst >= 2 ? dst - 2 : 2; });

    /** Forwards flits from one router's output into the other's input. */
    class Bridge : public router::FlitSink
    {
      public:
        Bridge(ElasticRouter &target, int port) : er(target), inPort(port) {}
        void acceptFlit(const router::Flit &flit) override
        {
            // Inter-router links carry their own credit loop; for the
            // test, buffer-free forwarding suffices (credits checked).
            ASSERT_TRUE(er.canAccept(inPort, flit.vc));
            er.injectFlit(inPort, flit);
        }

      private:
        ElasticRouter &er;
        int inPort;
    };

    Bridge a_to_b(b, 2), b_to_a(a, 2);
    a.setOutputSink(2, &a_to_b);
    b.setOutputSink(2, &b_to_a);

    ErEndpoint e0(eq, a, 0, 0), e1(eq, a, 1, 1);
    ErEndpoint e2(eq, b, 0, 2), e3(eq, b, 1, 3);
    a.setOutputSink(0, &e0);
    a.setOutputSink(1, &e1);
    b.setOutputSink(0, &e2);
    b.setOutputSink(1, &e3);

    std::vector<int> arrived;
    e3.setMessageHandler(
        [&](const ErMessagePtr &m) { arrived.push_back(m->srcEndpoint); });
    e0.sendMessage(3, 0, 256);  // crosses both routers
    eq.runAll();
    ASSERT_EQ(arrived.size(), 1u);
    EXPECT_EQ(arrived[0], 0);
}

TEST(ElasticRouter, LatencyScalesWithPipelineAndClock)
{
    // One-flit message latency = (1 cycle arb + pipeline) at the ER clock.
    ErConfig cfg;
    cfg.clockMhz = 175.0;
    cfg.pipelineCycles = 2;
    Harness h(cfg);
    sim::TimePs arrival = -1;
    h.eps[1]->setMessageHandler(
        [&](const ErMessagePtr &) { arrival = h.eq.now(); });
    h.eps[0]->sendMessage(1, 0, 16);
    h.eq.runAll();
    const sim::TimePs cycle = sim::cyclePeriod(175.0);
    EXPECT_GE(arrival, 2 * cycle);
    EXPECT_LE(arrival, 4 * cycle);
}

}  // namespace
