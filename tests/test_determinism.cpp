/**
 * @file
 * Determinism properties: ccsim is a deterministic discrete-event
 * simulator — identical configurations must produce bit-identical
 * traces, independent of wall-clock, across every layer of the stack.
 * This is what makes the figure benches reproducible.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using sim::EventQueue;

TEST(Determinism, EventQueueInterleavingIsStable)
{
    // Two queues fed the same randomized schedule execute identically.
    auto run = [] {
        EventQueue eq;
        sim::Rng rng(777);
        std::vector<int> trace;
        std::function<void(int)> spawn = [&](int depth) {
            if (depth > 3)
                return;
            trace.push_back(depth);
            const int n = 1 + static_cast<int>(rng.uniformInt(
                                  std::uint64_t{3}));
            for (int i = 0; i < n; ++i) {
                eq.scheduleAfter(
                    1 + static_cast<sim::TimePs>(rng.uniformInt(
                            std::uint64_t{1000})),
                    [&spawn, depth] { spawn(depth + 1); });
            }
        };
        eq.schedule(0, [&spawn] { spawn(0); });
        eq.runAll();
        trace.push_back(static_cast<int>(eq.eventsExecuted()));
        return trace;
    };
    EXPECT_EQ(run(), run());
}

TEST(Determinism, LtlRttTraceIsBitIdentical)
{
    auto run = [] {
        EventQueue eq;
        core::CloudConfig cfg;
        cfg.topology.hostsPerRack = 4;
        cfg.topology.racksPerPod = 2;
        cfg.topology.l1PerPod = 2;
        cfg.topology.pods = 1;
        cfg.topology.l2Count = 1;
        cfg.createNics = false;
        cfg.shellTemplate.ltl.maxConnections = 8;
        core::ConfigurableCloud cloud(eq, cfg);

        struct NullRole : fpga::Role {
            int port = -1;
            std::string name() const override { return "null"; }
            std::uint32_t areaAlms() const override { return 100; }
            void attach(fpga::Shell &, int p) override { port = p; }
            void onMessage(const router::ErMessagePtr &) override {}
        } sink;
        cloud.shell(5).addRole(&sink);
        auto ch = cloud.openLtl(0, 5, sink.port);
        auto *engine = cloud.shell(0).ltlEngine();
        for (int i = 0; i < 40; ++i) {
            eq.scheduleAfter(i * 10 * sim::kMicrosecond,
                             [engine, conn = ch.sendConn()] {
                                 engine->sendMessage(conn, 64);
                             });
        }
        eq.runFor(sim::fromMillis(2));
        return engine->rttUs().raw();  // every sample, full precision
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "sample " << i;
}

/**
 * Run the LTL RTT workload from LtlRttTraceIsBitIdentical, optionally
 * instrumented. Returns the raw RTT samples plus — when observed — the
 * registry snapshot JSON and the exported Chrome trace JSON.
 */
struct ObservedRun {
    std::vector<double> rtt;
    std::string snapshot;
    std::string trace;
};

ObservedRun
runLtlWorkload(bool observed, bool traced)
{
    EventQueue eq;  // must outlive the observability hub
    obs::Observability hub;
    hub.trace.setEnabled(traced);

    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    cfg.createNics = false;
    cfg.shellTemplate.ltl.maxConnections = 8;
    if (observed)
        cfg.obs = &hub;
    core::ConfigurableCloud cloud(eq, cfg);

    struct NullRole : fpga::Role {
        int port = -1;
        std::string name() const override { return "null"; }
        std::uint32_t areaAlms() const override { return 100; }
        void attach(fpga::Shell &, int p) override { port = p; }
        void onMessage(const router::ErMessagePtr &) override {}
    } sink;
    cloud.shell(5).addRole(&sink);
    auto ch = cloud.openLtl(0, 5, sink.port);
    auto *engine = cloud.shell(0).ltlEngine();
    if (observed)
        hub.registry.startSampling(eq, 50 * sim::kMicrosecond, &hub.trace);
    for (int i = 0; i < 40; ++i) {
        eq.scheduleAfter(i * 10 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 64);
                         });
    }
    eq.runFor(sim::fromMillis(2));
    hub.registry.stopSampling();

    ObservedRun out;
    out.rtt = engine->rttUs().raw();
    if (observed) {
        out.snapshot = hub.registry.snapshotJson();
        out.trace = hub.trace.json();
    }
    return out;
}

TEST(Determinism, ObservabilityDoesNotPerturbTheSimulation)
{
    // Attaching the full metrics/trace stack must not change a single
    // RTT sample: observability is read-only by construction.
    const auto bare = runLtlWorkload(false, false);
    const auto observed = runLtlWorkload(true, true);
    EXPECT_EQ(bare.rtt, observed.rtt);
}

TEST(Determinism, MetricSnapshotsAreByteIdenticalAcrossRuns)
{
    // Two same-seed instrumented runs: byte-identical registry
    // snapshots and byte-identical exported traces.
    const auto a = runLtlWorkload(true, true);
    const auto b = runLtlWorkload(true, true);
    EXPECT_FALSE(a.snapshot.empty());
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.snapshot, b.snapshot);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.rtt, b.rtt);

    // Tracing off must not change the metrics themselves either.
    const auto untraced = runLtlWorkload(true, false);
    EXPECT_EQ(untraced.snapshot, a.snapshot);
}

TEST(Determinism, RankingServerLatenciesIdenticalAcrossRuns)
{
    auto run = [] {
        EventQueue eq;
        host::RankingServer server(eq, host::RankingServiceParams{},
                                   nullptr, 33);
        host::PoissonLoadGenerator gen(eq, 2500.0,
                                       [&] { server.submitQuery(); }, 34);
        gen.start();
        eq.runUntil(sim::fromSeconds(2.0));
        gen.stop();
        return server.latencyMs().raw();
    };
    EXPECT_EQ(run(), run());
}

TEST(Determinism, SeedChangesChangeTheTrace)
{
    // The flip side: different seeds genuinely decorrelate the runs.
    auto run = [](std::uint64_t seed) {
        EventQueue eq;
        host::RankingServer server(eq, host::RankingServiceParams{},
                                   nullptr, seed);
        host::PoissonLoadGenerator gen(eq, 2500.0,
                                       [&] { server.submitQuery(); },
                                       seed + 1);
        gen.start();
        eq.runUntil(sim::fromSeconds(1.0));
        gen.stop();
        return server.latencyMs().raw();
    };
    EXPECT_NE(run(1), run(2));
}

}  // namespace
