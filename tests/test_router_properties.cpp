/**
 * @file
 * Property-based Elastic Router suites: across the parameterization the
 * paper calls out (ports, VCs, flit sizes, buffer policies), the router
 * must deliver every message, preserve per-(source, VC) order, never
 * exceed its buffer budget, and conserve flits.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "router/elastic_router.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using router::CreditPolicy;
using router::ElasticRouter;
using router::ErConfig;
using router::ErEndpoint;
using router::ErMessagePtr;

class ErConfigMatrix
    : public ::testing::TestWithParam<
          std::tuple<int, int, std::uint32_t, CreditPolicy>>
{
};

TEST_P(ErConfigMatrix, AllMessagesDeliveredInPerSourceVcOrder)
{
    auto [ports, vcs, flit_bytes, policy] = GetParam();
    sim::EventQueue eq;
    ErConfig cfg;
    cfg.numPorts = ports;
    cfg.numVcs = vcs;
    cfg.flitBytes = flit_bytes;
    cfg.policy = policy;
    ElasticRouter er(eq, cfg);

    std::vector<std::unique_ptr<ErEndpoint>> eps;
    // received[dst] = list of (src, vc, seq).
    std::map<int, std::vector<std::tuple<int, int, int>>> received;
    for (int p = 0; p < ports; ++p) {
        eps.push_back(std::make_unique<ErEndpoint>(eq, er, p, p));
        er.setOutputSink(p, eps.back().get());
        const int port = p;
        eps.back()->setMessageHandler(
            [&received, port](const ErMessagePtr &m) {
                received[port].push_back(
                    {m->srcEndpoint, m->vc,
                     *std::static_pointer_cast<int>(m->payload)});
            });
    }

    sim::Rng rng(123);
    std::map<std::tuple<int, int, int>, int> sent_count;  // (src,dst,vc)
    int total = 0;
    for (int round = 0; round < 40; ++round) {
        for (int src = 0; src < ports; ++src) {
            const int dst =
                static_cast<int>(rng.uniformInt(std::uint64_t(ports)));
            const int vc =
                static_cast<int>(rng.uniformInt(std::uint64_t(vcs)));
            const auto bytes = static_cast<std::uint32_t>(
                1 + rng.uniformInt(std::uint64_t{900}));
            auto key = std::make_tuple(src, dst, vc);
            eps[src]->sendMessage(dst, vc, bytes,
                                  std::make_shared<int>(sent_count[key]));
            ++sent_count[key];
            ++total;
        }
    }
    eq.runAll();

    int delivered = 0;
    // Per (src, dst, vc): sequence numbers must arrive monotonically.
    std::map<std::tuple<int, int, int>, int> next_expected;
    for (const auto &[dst, msgs] : received) {
        delivered += static_cast<int>(msgs.size());
        for (const auto &[src, vc, seq] : msgs) {
            auto key = std::make_tuple(src, dst, vc);
            EXPECT_EQ(seq, next_expected[key]++)
                << "src=" << src << " dst=" << dst << " vc=" << vc;
        }
    }
    EXPECT_EQ(delivered, total);
    EXPECT_EQ(er.messagesRouted(), static_cast<std::uint64_t>(total));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ErConfigMatrix,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(16u, 32u, 64u),
                       ::testing::Values(CreditPolicy::kElastic,
                                         CreditPolicy::kStatic)));

class ErBudgetSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ErBudgetSweep, BufferOccupancyNeverExceedsBudget)
{
    const int budget = GetParam();
    sim::EventQueue eq;
    ErConfig cfg;
    cfg.numPorts = 4;
    cfg.numVcs = 4;
    cfg.policy = CreditPolicy::kElastic;
    cfg.perVcReservedFlits = 1;
    cfg.sharedPoolFlits = budget - cfg.numVcs;
    ElasticRouter er(eq, cfg);
    std::vector<std::unique_ptr<ErEndpoint>> eps;
    for (int p = 0; p < 4; ++p) {
        eps.push_back(std::make_unique<ErEndpoint>(eq, er, p, p));
        er.setOutputSink(p, eps.back().get());
    }
    er.setOutputCyclesPerFlit(3, 16);  // a slow hot-spot output

    for (int src = 0; src < 3; ++src) {
        for (int i = 0; i < 8; ++i)
            eps[src]->sendMessage(3, i % 4, 2048);
    }
    eq.runAll();
    // Peak buffered flits across the router can never exceed the sum of
    // per-port budgets (reservations + shared pool).
    const int per_port = cfg.numVcs * cfg.perVcReservedFlits +
                         cfg.sharedPoolFlits;
    EXPECT_LE(er.peakBufferedFlits(), 4 * per_port);
    EXPECT_GT(er.peakBufferedFlits(), 0);
}

INSTANTIATE_TEST_SUITE_P(Budgets, ErBudgetSweep,
                         ::testing::Values(8, 16, 32, 64));

TEST(ErComposition, ThreeRouterChainDelivers)
{
    // Chain A - B - C: endpoints 0..1 on A, 2..3 on C, B is pure transit.
    sim::EventQueue eq;
    ErConfig cfg;
    cfg.numPorts = 3;
    cfg.numVcs = 2;
    ElasticRouter a(eq, cfg), b(eq, cfg), c(eq, cfg);
    a.setRouteFn([](int dst) { return dst <= 1 ? dst : 2; });
    b.setRouteFn([](int dst) { return dst <= 1 ? 0 : 1; });  // 0->A, 1->C
    c.setRouteFn([](int dst) { return dst >= 2 ? dst - 2 : 2; });

    struct Hop : router::FlitSink {
        ElasticRouter *er;
        int port;
        std::deque<router::Flit> pending;
        sim::EventQueue *eq;
        void acceptFlit(const router::Flit &f) override
        {
            pending.push_back(f);
            pump();
        }
        void pump()
        {
            while (!pending.empty() &&
                   er->canAccept(port, pending.front().vc)) {
                er->injectFlit(port, pending.front());
                pending.pop_front();
            }
            if (!pending.empty())
                eq->scheduleAfter(100 * sim::kNanosecond,
                                  [this] { pump(); });
        }
    };

    Hop a_to_b{}, b_to_c{}, c_to_b{}, b_to_a{};
    a_to_b.er = &b; a_to_b.port = 0; a_to_b.eq = &eq;
    b_to_c.er = &c; b_to_c.port = 2; b_to_c.eq = &eq;
    c_to_b.er = &b; c_to_b.port = 1; c_to_b.eq = &eq;
    b_to_a.er = &a; b_to_a.port = 2; b_to_a.eq = &eq;
    a.setOutputSink(2, &a_to_b);
    b.setOutputSink(1, &b_to_c);
    b.setOutputSink(0, &b_to_a);
    c.setOutputSink(2, &c_to_b);

    ErEndpoint e0(eq, a, 0, 0), e1(eq, a, 1, 1);
    ErEndpoint e2(eq, c, 0, 2), e3(eq, c, 1, 3);
    a.setOutputSink(0, &e0);
    a.setOutputSink(1, &e1);
    c.setOutputSink(0, &e2);
    c.setOutputSink(1, &e3);

    int at_e3 = 0, at_e0 = 0;
    e3.setMessageHandler([&](const ErMessagePtr &) { ++at_e3; });
    e0.setMessageHandler([&](const ErMessagePtr &) { ++at_e0; });

    for (int i = 0; i < 10; ++i) {
        e0.sendMessage(3, i % 2, 512);  // A -> C
        e3.sendMessage(0, i % 2, 256);  // C -> A
    }
    eq.runAll();
    EXPECT_EQ(at_e3, 10);
    EXPECT_EQ(at_e0, 10);
}

TEST(ErThroughput, OutputSustainsOneFlitPerCycle)
{
    sim::EventQueue eq;
    ErConfig cfg;
    cfg.numPorts = 2;
    cfg.numVcs = 1;
    cfg.clockMhz = 175.0;
    ElasticRouter er(eq, cfg);
    ErEndpoint src(eq, er, 0, 0), dst(eq, er, 1, 1);
    er.setOutputSink(0, &src);
    er.setOutputSink(1, &dst);
    int done = 0;
    dst.setMessageHandler([&](const ErMessagePtr &) { ++done; });

    const std::uint32_t bytes = 32 * 1024;  // 1024 flits
    src.sendMessage(1, 0, bytes);
    eq.runAll();
    EXPECT_EQ(done, 1);
    // 1024 flits at 1 flit/cycle, 175 MHz: ~5.85 us minimum.
    const double us = sim::toMicros(eq.now());
    EXPECT_GE(us, 5.8);
    EXPECT_LE(us, 7.5);  // small arbitration/pipeline overhead allowed
}

}  // namespace
