/**
 * @file
 * The live telemetry pipeline: windowed time-series rollup
 * (TimeSeriesHub), mergeable histogram sketches, multi-resolution
 * retention, the deterministic JSONL exporter, and the SLO burn-rate
 * engine — including the end-to-end story where an injected fault fires
 * a burn-rate alert that files HealthMonitor evidence well before the
 * heartbeat detector's worst-case bound.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "haas/haas.hpp"
#include "haas/health_monitor.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded_queue.hpp"
#include "sim/stats.hpp"

using namespace ccsim;

namespace {

/** An SloObjective with only the name set (avoids aggregate-init noise). */
obs::SloObjective
objective(const char *name)
{
    obs::SloObjective o;
    o.name = name;
    return o;
}

/** Count lines in @p s starting with the given JSONL record prefix. */
std::size_t
countLines(const std::string &s, const std::string &prefix)
{
    std::size_t n = 0, pos = 0;
    while (pos < s.size()) {
        std::size_t eol = s.find('\n', pos);
        if (eol == std::string::npos)
            eol = s.size();
        if (s.compare(pos, prefix.size(), prefix) == 0)
            ++n;
        pos = eol + 1;
    }
    return n;
}

}  // namespace

// ---------------------------------------------------------------------
// HistogramSketch
// ---------------------------------------------------------------------

TEST(HistogramSketch, SinceIsTheExactWindowDelta)
{
    sim::LogHistogram h(0.5, 96);
    h.add(1.0);
    h.add(2.0);
    h.add(4.0);
    const std::vector<std::uint64_t> snapBins = h.binCounts();
    const double snapSum = h.sum();

    h.add(8.0);
    h.add(16.0);
    const obs::HistogramSketch sk =
        obs::HistogramSketch::since(h, snapBins, snapSum);
    EXPECT_EQ(sk.count(), 2u);
    EXPECT_DOUBLE_EQ(sk.sum(), 24.0);
    EXPECT_DOUBLE_EQ(sk.mean(), 12.0);
    // Both window samples sit well above the pre-snapshot ones.
    EXPECT_GT(sk.percentile(50.0), 4.0);
    EXPECT_GT(sk.percentile(99.0), sk.percentile(50.0));

    // A fresh-histogram sketch covers everything.
    const obs::HistogramSketch all = obs::HistogramSketch::since(h, {}, 0.0);
    EXPECT_EQ(all.count(), 5u);
    EXPECT_DOUBLE_EQ(all.sum(), 31.0);
}

TEST(HistogramSketch, MergeEqualsSketchOfCombinedSamples)
{
    sim::LogHistogram h1(0.5, 96), h2(0.5, 96), both(0.5, 96);
    for (int i = 1; i <= 40; ++i) {
        const double v = 1.0 + 0.37 * i;
        h1.add(v);
        both.add(v);
    }
    for (int i = 1; i <= 60; ++i) {
        const double v = 50.0 + 1.21 * i;
        h2.add(v);
        both.add(v);
    }
    obs::HistogramSketch merged = obs::HistogramSketch::since(h1, {}, 0.0);
    merged.merge(obs::HistogramSketch::since(h2, {}, 0.0));
    const obs::HistogramSketch ref =
        obs::HistogramSketch::since(both, {}, 0.0);

    EXPECT_EQ(merged.count(), ref.count());
    EXPECT_DOUBLE_EQ(merged.sum(), ref.sum());
    // Bin counts are integers, so merged percentiles are *identical* to
    // the single-histogram sketch, not merely close.
    for (double p : {10.0, 50.0, 90.0, 99.0, 99.9})
        EXPECT_DOUBLE_EQ(merged.percentile(p), ref.percentile(p)) << p;
}

TEST(HistogramSketch, MergeRejectsMismatchedBinning)
{
    sim::LogHistogram a(0.5, 96), b(1.0, 48);
    a.add(3.0);
    b.add(3.0);
    obs::HistogramSketch sa = obs::HistogramSketch::since(a, {}, 0.0);
    const obs::HistogramSketch sb = obs::HistogramSketch::since(b, {}, 0.0);
    EXPECT_DEATH(sa.merge(sb), "binning");
}

// ---------------------------------------------------------------------
// TimeSeriesHub rollup
// ---------------------------------------------------------------------

TEST(TimeSeriesHub, RollsCountersGaugesProbesAndHistograms)
{
    obs::MetricsRegistry reg;
    sim::Counter &reqs = reg.counter("svc.reqs");
    obs::Gauge &depth = reg.gauge("svc.depth");
    double live = 2.0;
    reg.registerProbe("svc.live", [&live] { return live; });
    sim::LogHistogram &lat = reg.histogram("svc.lat_ms");

    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(sim::kMillisecond));
    hub.watchRegistry(&reg);

    reqs.inc(5);
    depth.set(0, 3.5);
    lat.add(1.0);
    lat.add(2.0);
    lat.add(1000.0);
    hub.rollAt(sim::kMillisecond);

    EXPECT_EQ(hub.windowsClosed(), 1u);
    EXPECT_EQ(hub.seriesCount(), 4u);
    EXPECT_EQ(hub.kindOf("svc.reqs"), obs::SeriesKind::kCounter);
    EXPECT_EQ(hub.kindOf("svc.depth"), obs::SeriesKind::kGauge);
    EXPECT_EQ(hub.kindOf("svc.live"), obs::SeriesKind::kProbe);
    EXPECT_EQ(hub.kindOf("svc.lat_ms"), obs::SeriesKind::kHistogram);

    const obs::TsPoint *c = hub.latest("svc.reqs");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->value, 5.0);
    EXPECT_DOUBLE_EQ(c->delta, 5.0);
    EXPECT_DOUBLE_EQ(c->rate, 5000.0);  // 5 per 1 ms

    const obs::TsPoint *g = hub.latest("svc.depth");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->value, 3.5);

    const obs::TsPoint *h = hub.latest("svc.lat_ms");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 3u);
    EXPECT_GT(h->p99, h->p50);
    EXPECT_GT(h->p99, 100.0);  // pulled up by the 1000 ms outlier

    // Second window: deltas cover only the new activity.
    reqs.inc(2);
    live = 6.0;
    lat.add(4.0);
    hub.rollAt(2 * sim::kMillisecond);

    c = hub.latest("svc.reqs");
    EXPECT_DOUBLE_EQ(c->value, 7.0);
    EXPECT_DOUBLE_EQ(c->delta, 2.0);
    const obs::TsPoint *pr = hub.latest("svc.live");
    EXPECT_DOUBLE_EQ(pr->value, 6.0);
    EXPECT_DOUBLE_EQ(pr->delta, 4.0);
    h = hub.latest("svc.lat_ms");
    EXPECT_EQ(h->count, 1u);
    EXPECT_DOUBLE_EQ(h->mean, 4.0);
}

TEST(TimeSeriesHub, SurvivesComponentResetMidRun)
{
    // fig08's runDatacenter clears the server's stats between load
    // steps; the hub must apply the counter-reset rule (window delta
    // restarts from zero), not panic on a shrinking histogram.
    obs::MetricsRegistry reg;
    sim::Counter &reqs = reg.counter("svc.reqs");
    sim::LogHistogram &lat = reg.histogram("svc.lat_ms");

    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(sim::kMillisecond));
    hub.defineAggregate("fleet.lat", "svc.lat*");
    hub.watchRegistry(&reg);

    reqs.inc(10);
    lat.add(5.0);
    lat.add(7.0);
    hub.rollAt(sim::kMillisecond);

    lat.clear();
    reqs.reset();
    lat.add(3.0);
    reqs.inc(4);
    hub.rollAt(2 * sim::kMillisecond);

    const obs::TsPoint *h = hub.latest("svc.lat_ms");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1u);  // everything since the reset, no negatives
    EXPECT_DOUBLE_EQ(h->mean, 3.0);

    const obs::TsPoint *a = hub.latest("fleet.lat");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->count, 1u);
    EXPECT_DOUBLE_EQ(a->mean, 3.0);

    const obs::TsPoint *c = hub.latest("svc.reqs");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->value, 4.0);
    EXPECT_DOUBLE_EQ(c->delta, 4.0);  // not 4 - 10 = -6
}

TEST(TimeSeriesHub, IncludeGlobsFilterWatchedPaths)
{
    obs::MetricsRegistry reg;
    reg.counter("keep.a").inc();
    reg.counter("keep.b.c").inc();
    reg.counter("drop.a").inc();

    obs::TimeSeriesHub hub(obs::TimeSeriesConfig{}
                               .withWindow(sim::kMillisecond)
                               .withInclude({"keep.*"}));
    hub.watchRegistry(&reg);
    hub.rollAt(sim::kMillisecond);

    EXPECT_EQ(hub.seriesCount(), 2u);
    EXPECT_NE(hub.latest("keep.a"), nullptr);
    EXPECT_NE(hub.latest("keep.b.c"), nullptr);  // '*' spans dots
    EXPECT_EQ(hub.latest("drop.a"), nullptr);
}

TEST(TimeSeriesHub, MultiResolutionLevelsDownsampleAndStayBounded)
{
    obs::MetricsRegistry reg;
    sim::Counter &c = reg.counter("x.ops");

    obs::TimeSeriesHub hub(obs::TimeSeriesConfig{}
                               .withWindow(sim::kMillisecond)
                               .withLevels({{1, 4}, {4, 8}}));
    hub.watchRegistry(&reg);

    for (int w = 1; w <= 12; ++w) {
        c.inc(1);
        hub.rollAt(w * sim::kMillisecond);
    }

    // Level 0: capacity 4, so only the last 4 windows survive.
    const std::vector<obs::TsPoint> l0 = hub.history("x.ops", 0);
    ASSERT_EQ(l0.size(), 4u);
    EXPECT_EQ(l0.front().t, 9 * sim::kMillisecond);
    EXPECT_EQ(l0.back().t, 12 * sim::kMillisecond);
    EXPECT_DOUBLE_EQ(l0.back().delta, 1.0);

    // Level 1 closes every 4th window and its delta spans 4 windows.
    const std::vector<obs::TsPoint> l1 = hub.history("x.ops", 1);
    ASSERT_EQ(l1.size(), 3u);
    EXPECT_EQ(l1[0].t, 4 * sim::kMillisecond);
    EXPECT_EQ(l1[1].t, 8 * sim::kMillisecond);
    EXPECT_EQ(l1[2].t, 12 * sim::kMillisecond);
    for (const auto &p : l1) {
        EXPECT_DOUBLE_EQ(p.delta, 4.0);
        EXPECT_DOUBLE_EQ(p.rate, 1000.0);  // 4 per 4 ms
    }

    // Retention is bounded by the configured capacities.
    EXPECT_LE(hub.pointsRetained(), 4u + 8u);
}

TEST(TimeSeriesHub, AggregatesMergeHistogramsAndSumScalars)
{
    obs::MetricsRegistry r0, r1;
    sim::LogHistogram &h0 = r0.histogram("n.node0.lat");
    sim::LogHistogram &h1 = r1.histogram("n.node1.lat");
    sim::Counter &c0 = r0.counter("n.node0.ops");
    sim::Counter &c1 = r1.counter("n.node1.ops");

    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(sim::kMillisecond));
    hub.watchRegistry(&r0);
    hub.watchRegistry(&r1);
    hub.defineAggregate("n.lat", "n.*.lat");
    hub.defineAggregate("n.ops", "n.*.ops");

    sim::LogHistogram ref(obs::kDefaultHistMinValue,
                          obs::kDefaultHistBinsPerOctave);
    for (int i = 1; i <= 50; ++i) {
        const double a = 1.0 + 0.13 * i, b = 20.0 + 0.77 * i;
        h0.add(a);
        ref.add(a);
        h1.add(b);
        ref.add(b);
    }
    c0.inc(30);
    c1.inc(12);
    hub.rollAt(sim::kMillisecond);

    EXPECT_EQ(hub.kindOf("n.lat"), obs::SeriesKind::kHistogram);
    const obs::TsPoint *agg = hub.latest("n.lat");
    ASSERT_NE(agg, nullptr);
    EXPECT_EQ(agg->count, 100u);
    // The merged-per-shard sketch reproduces the union percentiles
    // exactly (integer bin addition).
    const obs::HistogramSketch want =
        obs::HistogramSketch::since(ref, {}, 0.0);
    EXPECT_DOUBLE_EQ(agg->p50, want.percentile(50.0));
    EXPECT_DOUBLE_EQ(agg->p99, want.percentile(99.0));
    EXPECT_NEAR(agg->mean, ref.mean(), 1e-9);

    const obs::TsPoint *ops = hub.latest("n.ops");
    ASSERT_NE(ops, nullptr);
    EXPECT_DOUBLE_EQ(ops->value, 42.0);
    EXPECT_DOUBLE_EQ(ops->delta, 42.0);
}

TEST(TimeSeriesHub, ExportsDeterministicJsonl)
{
    const auto run = [](std::string &outStr) {
        obs::MetricsRegistry reg;
        sim::Counter &c = reg.counter("e.ops");
        sim::LogHistogram &h = reg.histogram("e.lat");
        obs::TimeSeriesHub hub(
            obs::TimeSeriesConfig{}.withWindow(sim::kMillisecond));
        hub.watchRegistry(&reg);
        std::ostringstream os;
        hub.exportTo(&os);
        for (int w = 1; w <= 3; ++w) {
            c.inc(static_cast<std::uint64_t>(w));
            h.add(1.5 * w);
            hub.rollAt(w * sim::kMillisecond);
        }
        EXPECT_EQ(hub.exportedLines(), countLines(os.str(), "{"));
        outStr = os.str();
    };

    std::string a, b;
    run(a);
    run(b);
    EXPECT_EQ(a, b);  // byte-identical across identical runs
    EXPECT_EQ(countLines(a, "{\"type\":\"meta\""), 1u);
    EXPECT_EQ(countLines(a, "{\"type\":\"series\""), 2u);
    EXPECT_EQ(countLines(a, "{\"type\":\"window\""), 3u);
    // Series appear sorted inside the window record.
    const std::size_t win = a.find("{\"type\":\"window\"");
    ASSERT_NE(win, std::string::npos);
    const std::size_t lat = a.find("\"e.lat\"", win);
    const std::size_t ops = a.find("\"e.ops\"", win);
    ASSERT_NE(lat, std::string::npos);
    ASSERT_NE(ops, std::string::npos);
    EXPECT_LT(lat, ops);
}

TEST(TimeSeriesHub, LegacyQueueSamplingRollsOnCadence)
{
    sim::EventQueue eq;
    obs::MetricsRegistry reg;
    sim::Counter &c = reg.counter("q.ticks");
    eq.scheduleAfter(50 * sim::kMicrosecond, [&c] { c.inc(); });
    eq.scheduleAfter(150 * sim::kMicrosecond, [&c] { c.inc(); });

    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(100 * sim::kMicrosecond));
    hub.watchRegistry(&reg);
    hub.startSampling(eq);
    eq.runFor(350 * sim::kMicrosecond);
    hub.stopSampling();
    eq.runAll();

    EXPECT_EQ(hub.windowsClosed(), 3u);
    const std::vector<obs::TsPoint> pts = hub.history("q.ticks", 0);
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_DOUBLE_EQ(pts[0].delta, 1.0);
    EXPECT_DOUBLE_EQ(pts[1].delta, 1.0);
    EXPECT_DOUBLE_EQ(pts[2].delta, 0.0);
}

TEST(TimeSeriesHub, SelfProbesAndMetricPatternsAreDocumented)
{
    obs::MetricsRegistry reg;
    obs::TimeSeriesHub hub;
    hub.registerSelfProbes(reg);
    for (const std::string &path : reg.paths()) {
        EXPECT_NE(obs::findMetricPattern(path), nullptr)
            << path << " is not documented in metric_names.hpp";
    }
    // The SLO metric family is documented too.
    for (const char *p :
         {"slo.ranking_p99.alerts", "slo.ranking_p99.resolved",
          "slo.ranking_p99.firing", "slo.ranking_p99.burn_long",
          "slo.ranking_p99.burn_short", "serving.rank.latency_ms"}) {
        EXPECT_NE(obs::findMetricPattern(p), nullptr) << p;
    }
}

TEST(TimeSeriesHubDeathTest, ConfigValidation)
{
    EXPECT_DEATH(
        obs::TimeSeriesHub(obs::TimeSeriesConfig{}.withWindow(0)),
        "window");
    EXPECT_DEATH(
        obs::TimeSeriesHub(obs::TimeSeriesConfig{}.withLevels({})),
        "level");
    EXPECT_DEATH(obs::TimeSeriesHub(
                     obs::TimeSeriesConfig{}.withLevels({{2, 16}})),
                 "stride 1");
    EXPECT_DEATH(obs::TimeSeriesHub(obs::TimeSeriesConfig{}.withLevels(
                     {{1, 16}, {4, 16}, {4, 16}})),
                 "increasing");
    obs::TimeSeriesHub hub;
    EXPECT_DEATH(hub.kindOf("no.such.series"), "unknown series");
}

// ---------------------------------------------------------------------
// Cross-shard determinism (the merge property, end to end)
// ---------------------------------------------------------------------

namespace {

/** Deterministic sample value for partition @p p, event @p k. */
double
sampleValue(int p, int k)
{
    return 1.0 + 0.31 * static_cast<double>(p) +
           0.173 * static_cast<double>(k % 37) +
           (k % 11 == 0 ? 40.0 : 0.0);
}

/**
 * Run the sharded telemetry workload on @p threads workers: 8
 * partitions, each feeding its own registry's histogram and counter on
 * a fixed schedule, with a fleet aggregate over all of them. Returns
 * the JSONL export; @p p99s collects the aggregate's per-window p99.
 */
std::string
runShardedTelemetry(int threads, std::vector<double> *p99s)
{
    constexpr int kParts = 8;
    sim::ShardedEventQueue::Config qc;
    qc.partitions = kParts;
    qc.threads = threads;
    sim::ShardedEventQueue sq(qc);

    std::vector<obs::MetricsRegistry> regs(kParts);
    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(100 * sim::kMicrosecond));
    for (int p = 0; p < kParts; ++p)
        hub.watchRegistry(&regs[p]);
    hub.defineAggregate("fleet.lat", "part.*.lat");
    hub.defineAggregate("fleet.ops", "part.*.ops");

    std::ostringstream os;
    hub.exportTo(&os);
    hub.startSampling(sq);

    for (int p = 0; p < kParts; ++p) {
        const std::string prefix = "part.node" + std::to_string(p);
        sim::LogHistogram &h = regs[p].histogram(prefix + ".lat");
        sim::Counter &c = regs[p].counter(prefix + ".ops");
        for (int k = 1; k <= 150; ++k) {
            sq.partition(p).scheduleAfter(
                k * 7 * sim::kMicrosecond, [&h, &c, p, k] {
                    h.add(sampleValue(p, k));
                    c.inc();
                });
        }
    }
    sq.runFor(1200 * sim::kMicrosecond);

    if (p99s != nullptr) {
        for (const obs::TsPoint &pt : hub.history("fleet.lat", 0))
            p99s->push_back(pt.p99);
    }
    return os.str();
}

}  // namespace

TEST(ShardedTelemetry, ByteIdenticalAcrossWorkerThreadCounts)
{
    std::vector<double> base_p99;
    const std::string base = runShardedTelemetry(1, &base_p99);
    EXPECT_GT(countLines(base, "{\"type\":\"window\""), 0u);
    EXPECT_FALSE(base_p99.empty());
    for (int threads : {2, 4, 8}) {
        std::vector<double> p99;
        EXPECT_EQ(runShardedTelemetry(threads, &p99), base)
            << "JSONL diverged at " << threads << " worker threads";
        EXPECT_EQ(p99, base_p99);
    }
}

TEST(ShardedTelemetry, MergedShardSketchesMatchSingleQueueRun)
{
    // Same workload on one sequential queue with ONE histogram fed the
    // union of every partition's samples.
    sim::EventQueue eq;
    obs::MetricsRegistry reg;
    sim::LogHistogram &h = reg.histogram("all.lat");
    for (int p = 0; p < 8; ++p) {
        for (int k = 1; k <= 150; ++k) {
            eq.scheduleAfter(k * 7 * sim::kMicrosecond,
                             [&h, p, k] { h.add(sampleValue(p, k)); });
        }
    }
    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(100 * sim::kMicrosecond));
    hub.watchRegistry(&reg);
    hub.startSampling(eq);
    eq.runFor(1200 * sim::kMicrosecond);
    hub.stopSampling();
    eq.runAll();

    std::vector<double> single_p99, single_n;
    for (const obs::TsPoint &pt : hub.history("all.lat", 0)) {
        single_p99.push_back(pt.p99);
        single_n.push_back(static_cast<double>(pt.count));
    }

    std::vector<double> sharded_p99;
    const std::string jsonl = runShardedTelemetry(4, &sharded_p99);
    // Window-by-window, the aggregate of 8 per-shard sketches equals
    // the single-queue windowed percentiles exactly.
    ASSERT_EQ(sharded_p99.size(), single_p99.size());
    for (std::size_t i = 0; i < single_p99.size(); ++i)
        EXPECT_DOUBLE_EQ(sharded_p99[i], single_p99[i]) << "window " << i;
}

// ---------------------------------------------------------------------
// SLO burn-rate engine
// ---------------------------------------------------------------------

TEST(SloEngine, FiresAndResolvesOnBurnRate)
{
    obs::MetricsRegistry reg;
    sim::LogHistogram &lat = reg.histogram("svc.lat_ms");
    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(sim::kMillisecond));
    hub.watchRegistry(&reg);

    obs::SloEngine slo(hub);
    slo.addObjective(objective("lat_p99")
                         .on("svc.lat_ms")
                         .where(obs::SloStat::kP99, obs::SloCmp::kLt, 5.0)
                         .withBudget(0.5)
                         .withWindows(4, 2)
                         .withBurnThreshold(1.0));
    slo.attachObservability(reg);

    int w = 0;
    const auto roll = [&](double sample) {
        lat.add(sample);
        hub.rollAt(++w * sim::kMillisecond);
    };

    roll(1.0);
    roll(1.0);
    EXPECT_EQ(slo.alertsFired(), 0u);

    roll(100.0);  // burn_long 1/3 windows bad: below threshold
    EXPECT_EQ(slo.alertsFired(), 0u);
    roll(100.0);  // 2/4 bad = budget burned at 1x long, 2x short
    EXPECT_EQ(slo.alertsFired(), 1u);
    EXPECT_EQ(slo.firingCount(), 1u);
    EXPECT_DOUBLE_EQ(reg.probeValue("slo.lat_p99.firing"), 1.0);
    EXPECT_GE(reg.probeValue("slo.lat_p99.burn_short"), 1.0);

    roll(1.0);  // short window still half bad: keeps firing
    EXPECT_EQ(slo.alertsResolved(), 0u);
    roll(1.0);  // short window clean: resolves
    EXPECT_EQ(slo.alertsResolved(), 1u);
    EXPECT_EQ(slo.firingCount(), 0u);
    EXPECT_DOUBLE_EQ(reg.probeValue("slo.lat_p99.firing"), 0.0);

    ASSERT_EQ(slo.timeline().size(), 1u);
    const obs::SloEngine::Alert &a = slo.timeline().front();
    EXPECT_EQ(a.objective, "lat_p99");
    EXPECT_EQ(a.series, "svc.lat_ms");
    EXPECT_EQ(a.firedAt, 4 * sim::kMillisecond);
    EXPECT_EQ(a.resolvedAt, 6 * sim::kMillisecond);

    const sim::Counter *fired = reg.findCounter("slo.lat_p99.alerts");
    ASSERT_NE(fired, nullptr);
    EXPECT_EQ(fired->get(), 1u);

    // The timeline artifact is deterministic JSON.
    const std::string tj = slo.timelineJson();
    EXPECT_EQ(tj, slo.timelineJson());
    EXPECT_NE(tj.find("\"slo\":\"lat_p99\""), std::string::npos);
    EXPECT_NE(tj.find("\"resolved_us\":"), std::string::npos);
}

TEST(SloEngine, EmptyHistogramWindowsSpendNoErrorBudget)
{
    obs::MetricsRegistry reg;
    reg.histogram("idle.lat_ms");
    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(sim::kMillisecond));
    hub.watchRegistry(&reg);

    obs::SloEngine slo(hub);
    // "p99 must stay ABOVE 1" would read every empty window's p99=0 as
    // bad; the no-data rule counts it as in-budget instead.
    slo.addObjective(objective("floor")
                         .on("idle.lat_ms")
                         .where(obs::SloStat::kP99, obs::SloCmp::kGt, 1.0)
                         .withBudget(0.1)
                         .withWindows(4, 1)
                         .withBurnThreshold(1.0));
    for (int w = 1; w <= 10; ++w)
        hub.rollAt(w * sim::kMillisecond);
    EXPECT_EQ(slo.alertsFired(), 0u);
}

TEST(SloEngine, HostParsingAndValidation)
{
    EXPECT_EQ(obs::SloEngine::hostFromSeries("ltl.node17.retransmits"), 17);
    EXPECT_EQ(obs::SloEngine::hostFromSeries("node3.x"), 3);
    EXPECT_EQ(obs::SloEngine::hostFromSeries("fleet.lat"), -1);
    EXPECT_EQ(obs::SloEngine::hostFromSeries("x.nodeY.z"), -1);

    obs::TimeSeriesHub hub;
    obs::SloEngine slo(hub);
    EXPECT_DEATH(slo.addObjective(objective("a.b").on("x")),
                 "single dotted");
    EXPECT_DEATH(slo.addObjective(
                     objective("ok").on("x").withBudget(0.0)),
                 "errorBudget");
    EXPECT_DEATH(slo.addObjective(
                     objective("ok").on("x").withWindows(2, 5)),
                 "longWindows");
}

// ---------------------------------------------------------------------
// Acceptance: injected fault -> burn-rate alert -> HealthMonitor
// evidence, ahead of the heartbeat detection bound
// ---------------------------------------------------------------------

TEST(SloEngine, FaultFiresAlertAndFilesEvidenceBeforeHeartbeatBound)
{
    net::TopologyConfig topo;
    topo.hostsPerRack = 4;
    topo.racksPerPod = 2;
    topo.l1PerPod = 2;
    topo.pods = 1;
    topo.l2Count = 1;

    obs::Observability obsHub;
    sim::EventQueue eq;
    core::ConfigurableCloud cloud(
        eq, core::CloudConfig{}.withTopology(topo).withObservability(
                &obsHub));
    haas::ResourceManager &rm = cloud.resourceManager();

    // Heartbeats a full second apart: the active detector is effectively
    // blind for this test, and passive LTL streaks are gated out, so
    // only SLO evidence can drive the failure report.
    haas::HealthMonitor hm(
        eq, rm,
        haas::HealthMonitorConfig{}
            .withHeartbeat(sim::kSecond, 10 * sim::kMicrosecond)
            .withMinLtlStreak(1000));
    cloud.attachHealthMonitor(hm);
    hm.start();

    obs::TimeSeriesHub ts(obs::TimeSeriesConfig{}
                              .withWindow(100 * sim::kMicrosecond)
                              .withInclude({"ltl.*"}));
    ts.watchRegistry(&obsHub.registry);
    ts.startSampling(eq);

    obs::SloEngine slo(ts);
    slo.addObjective(
        objective("ltl_retransmits")
            .on("ltl.node0.retransmits")
            // Good = no retransmissions this window.
            .where(obs::SloStat::kDelta, obs::SloCmp::kLt, 0.5)
            .withBudget(0.25)
            .withWindows(8, 2)
            .withBurnThreshold(2.0)
            // One fire crosses the default suspicion threshold (3.0).
            .withEvidence(3.0));
    slo.setEvidenceSink(hm.evidenceSink());

    // Warm-up with healthy traffic, then fail node 0's own link: its
    // un-ACKed frames retransmit every 50 us, turning every subsequent
    // telemetry window bad.
    core::LtlChannel ch = cloud.openLtl(0, 1, fpga::kErPortRole0);
    ch.send(1024);
    eq.runFor(150 * sim::kMicrosecond);
    EXPECT_EQ(slo.alertsFired(), 0u);
    cloud.setHostLinkDown(0, true);
    const sim::TimePs darkAt = eq.now();
    ch.send(1024);
    eq.runFor(2 * sim::kMillisecond);

    // The burn-rate alert fired, named the failing host...
    ASSERT_GE(slo.alertsFired(), 1u);
    const obs::SloEngine::Alert &a = slo.timeline().front();
    EXPECT_EQ(a.host, 0);
    EXPECT_EQ(a.series, "ltl.node0.retransmits");

    // ...and its evidence alone pushed the HealthMonitor over the
    // threshold, long before a heartbeat could have noticed.
    EXPECT_GE(hm.evidenceReports(), 1u);
    EXPECT_EQ(hm.detections(), 1u);
    EXPECT_FALSE(rm.manager(0)->status().healthy);
    EXPECT_EQ(hm.heartbeatsSent(), 0u);
    EXPECT_LT(a.firedAt - darkAt, hm.detectionBound());
    EXPECT_GE(hm.suspicion(0), 3.0);

    hm.stop();
}
