/**
 * @file
 * Unit and property tests for the parallel DES kernel
 * (sim::ShardedEventQueue) and its supporting primitives.
 *
 * The central claim under test is *structural determinism*: partitions
 * (logical processes) are fixed by the workload, worker threads are an
 * execution detail, and the same workload must produce byte-identical
 * results at every thread count. The randomized-workload test replays
 * the same multi-partition trace at T = 1, 2, 4, 8 and compares the
 * full per-partition execution logs, kernel counters, and final RNG
 * states.
 *
 * Also covered: conservative-sync causality enforcement (cross events
 * at or below the window floor panic; sub-lookahead links are rejected
 * at registration), barrier-hook deadline scheduling, the
 * nextEventTime() peek both backends grew for the coordinator, and the
 * counter-based Rng::forStream per-shard stream derivation.
 */
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/sharded_queue.hpp"
#include "sim/time.hpp"

using namespace ccsim;

namespace {

// --- nextEventTime: the coordinator's peek -----------------------------

template <typename Queue>
void
peekSuite()
{
    Queue eq;
    EXPECT_EQ(eq.nextEventTime(), sim::kTimeNever);

    int fired = 0;
    eq.scheduleAfter(500, [&fired] { ++fired; });
    EXPECT_EQ(eq.nextEventTime(), 500);
    EXPECT_EQ(fired, 0) << "peek must not execute";

    // An earlier event scheduled *after* a peek must win the next peek
    // (regression guard: the wheel must not hold a committed due slot
    // across schedule calls).
    eq.scheduleAfter(100, [&fired] { ++fired; });
    EXPECT_EQ(eq.nextEventTime(), 100);

    const auto id = eq.scheduleAfter(50, [&fired] { ++fired; });
    eq.cancel(id);
    EXPECT_EQ(eq.nextEventTime(), 100) << "cancelled events are invisible";

    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.nextEventTime(), sim::kTimeNever);
}

TEST(NextEventTime, TimerWheelBackend) { peekSuite<sim::TimerWheelQueue>(); }
TEST(NextEventTime, BinaryHeapBackend) { peekSuite<sim::BinaryHeapQueue>(); }

TEST(NextEventTime, WheelSeesFarFutureOverflowEvents)
{
    sim::TimerWheelQueue eq;
    const sim::TimePs far = sim::fromSeconds(20.0 * 86400.0);  // > horizon
    eq.schedule(far, [] {});
    EXPECT_EQ(eq.nextEventTime(), far);
}

// --- basic sharded execution -------------------------------------------

TEST(ShardedEventQueue, SinglePartitionBehavesLikeSequential)
{
    sim::ShardedEventQueue::Config qc;
    qc.partitions = 1;
    sim::ShardedEventQueue sq(qc);
    std::vector<int> order;
    sq.partition(0).schedule(200, [&order] { order.push_back(2); });
    sq.partition(0).schedule(100, [&order] { order.push_back(1); });
    sq.runUntil(150);
    EXPECT_EQ(sq.now(), 150);
    EXPECT_EQ(order, (std::vector<int>{1}));
    sq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(sq.eventsExecuted(), 2u);
}

TEST(ShardedEventQueue, ThreadsClampToPartitions)
{
    sim::ShardedEventQueue::Config qc;
    qc.partitions = 2;
    qc.threads = 16;
    sim::ShardedEventQueue sq(qc);
    EXPECT_EQ(sq.threadCount(), 2);
}

TEST(ShardedEventQueue, CrossMessagesDeliverInTotalOrder)
{
    // Three sources post to one destination at the same instant; the
    // merge must order them by (when, src, per-src seq) regardless of
    // outbox fill order.
    sim::ShardedEventQueue::Config qc;
    qc.partitions = 4;
    sim::ShardedEventQueue sq(qc);
    for (int src = 1; src < 4; ++src)
        sq.registerCrossEdge(src, 0, 100);

    std::vector<std::pair<int, int>> arrivals;  // (src, k)
    for (int src : {3, 1, 2}) {  // deliberately not in partition order
        sq.partition(src).schedule(10, [&sq, &arrivals, src] {
            for (int k = 0; k < 2; ++k)
                sq.postCross(src, 0, 200, [&arrivals, src, k] {
                    arrivals.emplace_back(src, k);
                });
        });
    }
    sq.runAll();
    EXPECT_EQ(sq.crossMessages(), 6u);
    EXPECT_EQ(arrivals, (std::vector<std::pair<int, int>>{
                            {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}, {3, 1}}));
}

TEST(ShardedEventQueue, WindowDerivedFromMinimumEdgeLatency)
{
    sim::ShardedEventQueue::Config qc;
    qc.partitions = 3;
    sim::ShardedEventQueue sq(qc);
    sq.registerCrossEdge(0, 1, 5000);
    sq.registerCrossEdge(1, 2, 700);
    sq.registerCrossEdge(2, 0, 9000);
    sq.partition(0).schedule(1, [] {});
    sq.runUntil(1);
    EXPECT_EQ(sq.window(), 700);
}

// --- causality enforcement (satellite: debug assertions + validator) ---

using ShardedQueueDeath = ::testing::Test;

TEST(ShardedQueueDeath, CrossEventBelowWindowFloorPanics)
{
    EXPECT_DEATH(
        {
            sim::ShardedEventQueue::Config qc;
            qc.partitions = 2;
            sim::ShardedEventQueue sq(qc);
            sq.registerCrossEdge(0, 1, 100);
            sq.partition(0).schedule(1, [] {});
            sq.runUntil(1000);
            // now() == 1000: posting into the executed past must die.
            sq.postCross(0, 1, 500, [] {});
        },
        "causality violation");
}

TEST(ShardedQueueDeath, InWindowCrossEventCaughtAtBarrier)
{
    EXPECT_DEATH(
        {
            sim::ShardedEventQueue::Config qc;
            qc.partitions = 2;
            qc.window = 100;
            sim::ShardedEventQueue sq(qc);
            sq.registerCrossEdge(0, 1, 100);
            // The handler lies about its latency: it posts a message
            // *inside* the window being executed. The barrier flush
            // must catch it even though the post-time floor check
            // cannot (the floor only advances at the barrier).
            sq.partition(0).schedule(50, [&sq] {
                sq.postCross(0, 1, 60, [] {});
            });
            sq.runAll();
        },
        "causality violation at barrier");
}

TEST(ShardedQueueDeath, SubLookaheadLinkRejectedAtRegistration)
{
    EXPECT_DEATH(
        {
            sim::ShardedEventQueue::Config qc;
            qc.partitions = 2;
            qc.window = 1000;
            sim::ShardedEventQueue sq(qc);
            sq.registerCrossEdge(0, 1, 999);  // latency < window
        },
        "sub-lookahead link");
}

TEST(ShardedQueueDeath, UnregisteredEdgeRejected)
{
    EXPECT_DEATH(
        {
            sim::ShardedEventQueue::Config qc;
            qc.partitions = 2;
            sim::ShardedEventQueue sq(qc);
            sq.postCross(0, 1, 100, [] {});
        },
        "no registered cross edge");
}

// --- barrier hooks ------------------------------------------------------

TEST(ShardedEventQueue, BarrierHookFiresExactlyAtItsDeadlines)
{
    sim::ShardedEventQueue::Config qc;
    qc.partitions = 2;
    sim::ShardedEventQueue sq(qc);
    sq.registerCrossEdge(0, 1, 50);

    // Busy workload so windows would naturally end elsewhere.
    std::function<void(int)> tick = [&sq, &tick](int p) {
        if (sq.partition(p).now() < 5000)
            sq.partition(p).scheduleAfter(7, [&tick, p] { tick(p); });
    };
    for (int p = 0; p < 2; ++p)
        sq.partition(p).schedule(1, [&tick, p] { tick(p); });

    std::vector<sim::TimePs> sampled;
    sq.atBarrier(
        [&sampled](sim::TimePs e) -> sim::TimePs {
            sim::TimePs due = ((e / 1000) + 1) * 1000;
            if (e % 1000 == 0) {
                sampled.push_back(e);
                due = e + 1000;
            }
            return due;
        },
        1000);
    sq.runUntil(4500);
    EXPECT_EQ(sampled, (std::vector<sim::TimePs>{1000, 2000, 3000, 4000}));
}

TEST(ShardedEventQueue, RunUntilAdvancesNowWithoutEvents)
{
    sim::ShardedEventQueue::Config qc;
    qc.partitions = 2;
    sim::ShardedEventQueue sq(qc);
    sq.runUntil(12345);
    EXPECT_EQ(sq.now(), 12345);
    for (int p = 0; p < 2; ++p)
        EXPECT_EQ(sq.partition(p).now(), 12345);
}

// --- structural determinism across thread counts ------------------------

/** Per-partition execution log entry: (label, simulated time). */
using LogEntry = std::pair<int, sim::TimePs>;

struct ShardTrace {
    std::vector<std::vector<LogEntry>> logs;  ///< indexed by partition
    std::vector<std::uint64_t> rngFinal;      ///< next draw per stream
    std::uint64_t events = 0;
    std::uint64_t cross = 0;
    std::uint64_t windows = 0;
    sim::TimePs finalNow = 0;

    bool operator==(const ShardTrace &o) const
    {
        return logs == o.logs && rngFinal == o.rngFinal &&
               events == o.events && cross == o.cross &&
               windows == o.windows && finalNow == o.finalNow;
    }
};

/**
 * A randomized multi-partition workload on a ring of cross edges. All
 * state a worker touches (its partition's log, RNG stream, label
 * counter) is owned by that partition, so recording is race-free by
 * construction — exactly the discipline the sharded simulator uses.
 */
ShardTrace
runRingWorkload(std::uint64_t seed, int threads)
{
    constexpr int kParts = 4;
    constexpr sim::TimePs kRingLatency = 1000;
    constexpr sim::TimePs kLimit = 400000;

    sim::ShardedEventQueue::Config qc;
    qc.partitions = kParts;
    qc.threads = threads;
    sim::ShardedEventQueue sq(qc);
    for (int p = 0; p < kParts; ++p)
        sq.registerCrossEdge(p, (p + 1) % kParts, kRingLatency);

    ShardTrace res;
    res.logs.resize(kParts);
    std::vector<sim::Rng> rngs;
    std::vector<int> nextLabel(kParts, 0);
    for (int p = 0; p < kParts; ++p)
        rngs.push_back(sim::Rng::forStream(seed, static_cast<unsigned>(p)));

    // fire(p, label) runs on partition p's worker and touches only
    // partition-p state.
    std::function<void(int, int)> fire = [&](int p, int label) {
        auto &eq = sq.partition(p);
        res.logs[p].emplace_back(label, eq.now());
        auto &rng = rngs[static_cast<std::size_t>(p)];
        const auto roll = rng.next() % 100;
        if (roll < 45) {  // local follow-up
            const int child = p * 1000000 + nextLabel[p]++;
            eq.scheduleAfter(
                1 + static_cast<sim::TimePs>(rng.next() % 20000),
                [&fire, p, child] { fire(p, child); });
        }
        if (roll >= 30 && roll < 70) {  // cross message around the ring
            const int dst = (p + 1) % kParts;
            const int child = p * 1000000 + nextLabel[p]++;
            const sim::TimePs when =
                eq.now() + kRingLatency +
                static_cast<sim::TimePs>(rng.next() % 30000);
            sq.postCross(p, dst, when,
                         [&fire, dst, child] { fire(dst, child); });
        }
    };

    for (int p = 0; p < kParts; ++p) {
        for (int i = 0; i < 12; ++i) {
            const int label = p * 1000000 + nextLabel[p]++;
            sq.partition(p).schedule(
                1 + static_cast<sim::TimePs>((seed + 31u * i) % 5000),
                [&fire, p, label] { fire(p, label); });
        }
    }

    sq.runUntil(kLimit);
    for (auto &rng : rngs)
        res.rngFinal.push_back(rng.next());
    res.events = sq.eventsExecuted();
    res.cross = sq.crossMessages();
    res.windows = sq.windowsRun();
    res.finalNow = sq.now();
    return res;
}

TEST(ShardedDeterminism, RingWorkloadIsByteIdenticalAcrossThreadCounts)
{
    for (std::uint64_t seed : {3ull, 17ull, 404ull, 90210ull, 777777ull}) {
        const ShardTrace ref = runRingWorkload(seed, 1);
        ASSERT_GT(ref.events, 100u) << "workload too small to be meaningful";
        ASSERT_GT(ref.cross, 10u) << "workload never crossed partitions";
        for (int threads : {2, 4, 8}) {
            const ShardTrace got = runRingWorkload(seed, threads);
            EXPECT_TRUE(got == ref)
                << "seed " << seed << ": " << threads
                << "-thread run diverged from the single-thread run "
                << "(events " << got.events << " vs " << ref.events
                << ", cross " << got.cross << " vs " << ref.cross << ")";
        }
    }
}

// --- Rng::forStream: per-shard stream derivation ------------------------

TEST(RngForStream, SameMasterAndStreamReproduceExactly)
{
    for (std::uint64_t master : {0ull, 42ull, 0xDEADBEEFull}) {
        for (std::uint64_t stream : {0ull, 1ull, 7ull, 1000ull}) {
            sim::Rng a = sim::Rng::forStream(master, stream);
            sim::Rng b = sim::Rng::forStream(master, stream);
            for (int i = 0; i < 64; ++i)
                ASSERT_EQ(a.next(), b.next())
                    << "master " << master << " stream " << stream;
        }
    }
}

TEST(RngForStream, StreamsAreStableRegardlessOfShardCount)
{
    // The pod-p stream depends only on (master, p) — resharding the same
    // cloud over a different worker count, or instantiating streams in a
    // different order, cannot change any pod's sequence.
    const std::uint64_t master = 20260808;
    std::vector<std::uint64_t> firstOf8;
    for (int p = 0; p < 8; ++p)
        firstOf8.push_back(sim::Rng::forStream(master, static_cast<unsigned>(p)).next());
    // "2-shard" instantiation order: evens then odds.
    for (int p = 6; p >= 0; p -= 2)
        EXPECT_EQ(sim::Rng::forStream(master, static_cast<unsigned>(p)).next(),
                  firstOf8[static_cast<std::size_t>(p)]);
}

TEST(RngForStream, DistinctStreamsAndMastersDiverge)
{
    // Counter-based derivation: neighbouring streams and masters must
    // not collide or overlap in their opening draws.
    const std::uint64_t master = 99;
    std::set<std::uint64_t> seen;
    constexpr int kStreams = 64;
    constexpr int kDraws = 32;
    for (int s = 0; s < kStreams; ++s) {
        sim::Rng rng = sim::Rng::forStream(master, static_cast<unsigned>(s));
        for (int i = 0; i < kDraws; ++i)
            seen.insert(rng.next());
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(kStreams) * kDraws)
        << "overlapping per-stream sequences";
    EXPECT_NE(sim::Rng::forStream(1, 0).next(),
              sim::Rng::forStream(2, 0).next());
}

}  // namespace
