/**
 * @file
 * Full-system integration tests through the ConfigurableCloud public API:
 * LTL messaging between shells across the real simulated network (L0, L1,
 * L2 tiers), bump-in-the-wire crypto between two hosts, remote ranking
 * over LTL, DNN pool with HaaS, and reconfiguration behaviour under
 * traffic.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "roles/crypto_role.hpp"
#include "roles/dnn_role.hpp"
#include "roles/ranking/ranking_role.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using core::CloudConfig;
using core::ConfigurableCloud;
using sim::EventQueue;

CloudConfig
smallCloud(int hosts_per_rack = 3, int racks_per_pod = 2, int pods = 2)
{
    CloudConfig cfg;
    cfg.topology.hostsPerRack = hosts_per_rack;
    cfg.topology.racksPerPod = racks_per_pod;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = pods;
    cfg.topology.l2Count = 2;
    // Deterministic latencies for assertions.
    cfg.topology.l1Params.jitterMean = 0;
    cfg.topology.l2Params.jitterMean = 0;
    cfg.shellTemplate.ltl.maxConnections = 32;
    return cfg;
}

/** A terminal role that records LTL deliveries. */
struct SinkRole : fpga::Role {
    fpga::Shell *shell = nullptr;
    int port = -1;
    std::vector<std::shared_ptr<fpga::LtlDelivery>> deliveries;

    std::string name() const override { return "sink"; }
    std::uint32_t areaAlms() const override { return 500; }
    void attach(fpga::Shell &s, int p) override
    {
        shell = &s;
        port = p;
    }
    void onMessage(const router::ErMessagePtr &msg) override
    {
        if (msg->srcEndpoint == fpga::kErPortLtl)
            deliveries.push_back(
                std::static_pointer_cast<fpga::LtlDelivery>(msg->payload));
    }
};

TEST(Cloud, BuildsAndRegistersAllFpgas)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    EXPECT_EQ(cloud.numServers(), 3 * 2 * 2);
    EXPECT_EQ(cloud.resourceManager().totalCount(), cloud.numServers());
    EXPECT_EQ(cloud.resourceManager().freeCount(), cloud.numServers());
}

TEST(Cloud, NicToNicAcrossRacksThroughBumps)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    const int src = 0, dst = 4;  // different racks
    int received = 0;
    cloud.nic(dst).setReceiveHandler([&](const net::PacketPtr &pkt) {
        EXPECT_EQ(pkt->ipSrc, cloud.addressOf(src));
        ++received;
    });
    auto pkt = net::makePacket();
    pkt->ipDst = cloud.addressOf(dst);
    pkt->payloadBytes = 900;
    cloud.nic(src).sendPacket(pkt);
    eq.runAll();
    EXPECT_EQ(received, 1);
    // The packet traversed both bumps.
    EXPECT_EQ(cloud.shell(src).bridge().forwardedNicToTor(), 1u);
    EXPECT_EQ(cloud.shell(dst).bridge().forwardedTorToNic(), 1u);
}

class LtlTier : public ::testing::TestWithParam<std::tuple<int, int, double>>
{
};

TEST_P(LtlTier, MessageAndRttAcrossTiers)
{
    auto [src, dst, max_rtt_us] = GetParam();
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());

    SinkRole sink;
    ASSERT_GE(cloud.shell(dst).addRole(&sink), 0);
    auto ch = cloud.openLtl(src, dst, sink.port);

    cloud.shell(src).ltlEngine()->sendMessage(ch.sendConn(), 64,
                                              std::make_shared<int>(5));
    eq.runUntil(sim::fromMicros(200));
    ASSERT_EQ(sink.deliveries.size(), 1u);
    EXPECT_EQ(*std::static_pointer_cast<int>(sink.deliveries[0]->appPayload),
              5);
    // The sender measured a data->ACK RTT.
    ASSERT_EQ(cloud.shell(src).ltlEngine()->rttUs().count(), 1u);
    const double rtt = cloud.shell(src).ltlEngine()->rttUs().mean();
    EXPECT_GT(rtt, 1.0);
    EXPECT_LT(rtt, max_rtt_us);
    EXPECT_EQ(cloud.shell(src).ltlEngine()->framesRetransmitted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Tiers, LtlTier,
    ::testing::Values(std::tuple{0, 1, 6.0},    // same TOR (L0)
                      std::tuple{0, 4, 12.0},   // same pod (L1)
                      std::tuple{0, 8, 30.0})); // cross-pod (L2)

TEST(Cloud, LtlBidirectionalChannels)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    SinkRole sink_a, sink_b;
    ASSERT_GE(cloud.shell(0).addRole(&sink_a), 0);
    ASSERT_GE(cloud.shell(1).addRole(&sink_b), 0);
    auto fwd = cloud.openLtl(0, 1, sink_b.port);
    auto rev = cloud.openLtl(1, 0, sink_a.port);

    cloud.shell(0).ltlEngine()->sendMessage(fwd.sendConn(), 100);
    cloud.shell(1).ltlEngine()->sendMessage(rev.sendConn(), 100);
    eq.runUntil(sim::fromMicros(100));
    EXPECT_EQ(sink_a.deliveries.size(), 1u);
    EXPECT_EQ(sink_b.deliveries.size(), 1u);
}

TEST(Cloud, LtlManyMessagesUnderLoadNoLoss)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    SinkRole sink;
    ASSERT_GE(cloud.shell(8).addRole(&sink), 0);  // cross-pod target
    auto ch = cloud.openLtl(0, 8, sink.port);
    const int kMessages = 300;
    for (int i = 0; i < kMessages; ++i)
        cloud.shell(0).ltlEngine()->sendMessage(ch.sendConn(), 1408,
                                                std::make_shared<int>(i));
    eq.runUntil(sim::fromMicros(100000));
    ASSERT_EQ(sink.deliveries.size(), static_cast<std::size_t>(kMessages));
    for (int i = 0; i < kMessages; ++i)
        EXPECT_EQ(*std::static_pointer_cast<int>(
                      sink.deliveries[i]->appPayload),
                  i);
}

TEST(Cloud, PassthroughAndLtlShareTheWire)
{
    // Ranking-style coexistence: NIC traffic flows through the bump while
    // LTL messages use the same TOR link.
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    SinkRole sink;
    ASSERT_GE(cloud.shell(1).addRole(&sink), 0);
    auto ch = cloud.openLtl(0, 1, sink.port);

    int nic_received = 0;
    cloud.nic(2).setReceiveHandler(
        [&](const net::PacketPtr &) { ++nic_received; });
    for (int i = 0; i < 50; ++i) {
        auto pkt = net::makePacket();
        pkt->ipDst = cloud.addressOf(2);
        pkt->payloadBytes = 1400;
        cloud.nic(0).sendPacket(pkt);
        cloud.shell(0).ltlEngine()->sendMessage(ch.sendConn(), 512);
    }
    eq.runUntil(sim::fromMicros(50000));
    EXPECT_EQ(nic_received, 50);
    EXPECT_EQ(sink.deliveries.size(), 50u);
}

TEST(Cloud, CryptoRoleEncryptsHostToHostTransparently)
{
    EventQueue eq;
    auto cfg = smallCloud();
    EventQueue &q = eq;
    ConfigurableCloud cloud(q, cfg);

    const int a = 0, b = 4;  // cross-rack
    roles::CryptoRoleParams params;
    params.suite = crypto::Suite::kAesGcm128;
    roles::CryptoRole crypto_a(eq, params), crypto_b(eq, params);
    ASSERT_GE(cloud.shell(a).addRole(&crypto_a), 0);
    ASSERT_GE(cloud.shell(b).addRole(&crypto_b), 0);

    crypto::Key128 key{};
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(i * 7 + 1);
    roles::FlowKey flow{cloud.addressOf(a), cloud.addressOf(b), 555, 556,
                        17};
    crypto_a.addEncryptFlow(flow, key);
    crypto_b.addDecryptFlow(flow, key);

    const std::vector<std::uint8_t> plaintext = {'s', 'e', 'c', 'r', 'e',
                                                 't', '!', '!'};
    std::vector<std::uint8_t> received_data;
    cloud.nic(b).setReceiveHandler([&](const net::PacketPtr &pkt) {
        received_data = pkt->data;
    });

    auto pkt = net::makePacket();
    pkt->ipDst = cloud.addressOf(b);
    pkt->srcPort = 555;
    pkt->dstPort = 556;
    pkt->data = plaintext;
    pkt->payloadBytes = static_cast<std::uint32_t>(plaintext.size());
    cloud.nic(a).sendPacket(pkt);
    eq.runAll();

    // Software at B sees the original plaintext; both roles did work.
    EXPECT_EQ(received_data, plaintext);
    EXPECT_EQ(crypto_a.packetsEncrypted(), 1u);
    EXPECT_EQ(crypto_b.packetsDecrypted(), 1u);
    EXPECT_EQ(crypto_b.authFailures(), 0u);
}

TEST(Cloud, CryptoRoleDropsTamperedPackets)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    const int a = 0, b = 1;
    roles::CryptoRoleParams params;
    params.suite = crypto::Suite::kAesCbc128Sha1;
    roles::CryptoRole crypto_b(eq, params);
    ASSERT_GE(cloud.shell(b).addRole(&crypto_b), 0);

    crypto::Key128 key{};
    key[0] = 1;
    roles::FlowKey flow{cloud.addressOf(a), cloud.addressOf(b), 10, 20, 17};
    crypto_b.addDecryptFlow(flow, key);

    int received = 0;
    cloud.nic(b).setReceiveHandler(
        [&](const net::PacketPtr &) { ++received; });

    // A sends garbage that claims to be an encrypted flow packet.
    auto pkt = net::makePacket();
    pkt->ipDst = cloud.addressOf(b);
    pkt->srcPort = 10;
    pkt->dstPort = 20;
    pkt->data.assign(64, 0xAB);
    pkt->payloadBytes = 64;
    cloud.nic(a).sendPacket(pkt);
    eq.runAll();
    EXPECT_EQ(received, 0);  // dropped at the bump
    EXPECT_EQ(crypto_b.authFailures(), 1u);
}

TEST(Cloud, RemoteRankingOverLtlEndToEnd)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    const int client = 0, server = 4;

    roles::RankingRole ranking(eq);
    ASSERT_GE(cloud.shell(server).addRole(&ranking), 0);
    roles::ForwarderRole forwarder;
    ASSERT_GE(cloud.shell(client).addRole(&forwarder), 0);

    auto request_ch = cloud.openLtl(client, server, fpga::kErPortRole0);
    auto reply_ch = cloud.openLtl(server, client, forwarder.port());

    roles::RemoteRankingClient remote(eq, cloud.shell(client), forwarder,
                                      request_ch.sendConn(),
                                      reply_ch.sendConn());
    int done_count = 0;
    sim::TimePs done_at = 0;
    for (int i = 0; i < 10; ++i) {
        remote.compute(200, [&] {
            ++done_count;
            done_at = eq.now();
        });
    }
    eq.runUntil(sim::fromMicros(100000));
    EXPECT_EQ(done_count, 10);
    EXPECT_EQ(ranking.requestsServed(), 10u);
    EXPECT_EQ(remote.responsesReceived(), 10u);
    EXPECT_GT(done_at, 0);
}

TEST(Cloud, RemoteRankingComputesRealFeatures)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    const int server = 1;
    roles::RankingRole ranking(eq);
    ASSERT_GE(cloud.shell(server).addRole(&ranking), 0);

    // Build a query + candidates; the top document by the software
    // reference must match what the role returns.
    host::CorpusGenerator corpus(2000, 1.0, 9);
    auto query = std::make_shared<host::Query>(corpus.makeQuery(4));
    auto docs = std::make_shared<std::vector<host::Document>>();
    for (int i = 0; i < 20; ++i)
        docs->push_back(corpus.makeCandidateDocument(*query, 150));

    roles::RankingModel model;
    const auto expected = roles::rankDocuments(*query, *docs, model);

    auto req = std::make_shared<roles::RankingRequest>();
    req->requestId = 1;
    req->docCount = 20;
    req->replyVia = roles::ReplyVia::kPcie;
    req->query = query;
    req->docs = docs;

    std::shared_ptr<roles::RankingResponse> resp;
    cloud.shell(server).setHostRxHandler(
        [&](int, const router::ErMessagePtr &msg) {
            resp = std::static_pointer_cast<roles::RankingResponse>(
                msg->payload);
        });
    cloud.shell(server).sendFromHost(fpga::kErPortRole0, 2048, req);
    eq.runAll();
    ASSERT_NE(resp, nullptr);
    EXPECT_EQ(resp->topDocId, expected.front().docId);
    EXPECT_DOUBLE_EQ(resp->topScore, expected.front().score);
}

TEST(Cloud, DnnPoolServesRemoteClientsViaHaas)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());

    // Deploy a 2-FPGA DNN service through HaaS.
    std::vector<std::unique_ptr<roles::DnnRole>> role_storage;
    haas::ServiceManager sm(eq, cloud.resourceManager(), "dnn",
                            [&](int) -> fpga::Role * {
                                role_storage.push_back(
                                    std::make_unique<roles::DnnRole>(eq));
                                return role_storage.back().get();
                            });
    ASSERT_TRUE(sm.deploy(2));
    EXPECT_EQ(cloud.resourceManager().allocatedCount(), 2);

    // A client on another host sends requests round-robin into the pool.
    const int client_host = 5;
    roles::ForwarderRole forwarder;
    ASSERT_GE(cloud.shell(client_host).addRole(&forwarder), 0);

    struct Target {
        core::LtlChannel req, rep;
    };
    std::vector<Target> targets;
    for (int instance : sm.instances()) {
        Target t;
        t.req = cloud.openLtl(client_host, instance, fpga::kErPortRole0);
        t.rep = cloud.openLtl(instance, client_host, forwarder.port());
        targets.push_back(std::move(t));
    }

    int responses = 0;
    cloud.shell(client_host)
        .setHostRxHandler([&](int, const router::ErMessagePtr &msg) {
            auto delivery =
                std::static_pointer_cast<fpga::LtlDelivery>(msg->payload);
            if (delivery && delivery->appPayload)
                ++responses;
        });

    for (int i = 0; i < 12; ++i) {
        const int pick = i % static_cast<int>(targets.size());
        auto req = std::make_shared<roles::DnnRequest>();
        req->requestId = static_cast<std::uint64_t>(i) + 1;
        req->clientId = 0;
        req->replyConn = targets[pick].rep.sendConn();
        auto fwd = std::make_shared<roles::ForwarderRole::ForwardRequest>();
        fwd->sendConn = targets[pick].req.sendConn();
        fwd->bytes = 512;
        fwd->inner = req;
        cloud.shell(client_host)
            .sendFromHost(forwarder.port(), fwd->bytes, fwd);
    }
    eq.runUntil(sim::fromMicros(200000));
    EXPECT_EQ(responses, 12);
    std::uint64_t served = 0;
    for (auto &r : role_storage)
        served += r->requestsServed();
    EXPECT_EQ(served, 12u);
}

TEST(Cloud, DnnRoleComputesRealInference)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    roles::DnnRole dnn(eq);
    ASSERT_GE(cloud.shell(0).addRole(&dnn), 0);

    auto input = std::make_shared<std::vector<float>>(
        dnn.network().inputSize(), 0.5f);
    const auto expected = dnn.network().infer(*input);

    auto req = std::make_shared<roles::DnnRequest>();
    req->requestId = 1;
    req->replyViaPcie = true;
    req->input = input;

    std::shared_ptr<roles::DnnResponse> resp;
    cloud.shell(0).setHostRxHandler(
        [&](int, const router::ErMessagePtr &msg) {
            resp = std::static_pointer_cast<roles::DnnResponse>(msg->payload);
        });
    cloud.shell(0).sendFromHost(fpga::kErPortRole0, 512, req);
    eq.runAll();
    ASSERT_NE(resp, nullptr);
    ASSERT_NE(resp->output, nullptr);
    EXPECT_EQ(*resp->output, expected);
}

TEST(Cloud, HaasReplacesFailedInstance)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    std::vector<std::unique_ptr<roles::DnnRole>> role_storage;
    haas::ServiceManager sm(eq, cloud.resourceManager(), "dnn",
                            [&](int) -> fpga::Role * {
                                role_storage.push_back(
                                    std::make_unique<roles::DnnRole>(eq));
                                return role_storage.back().get();
                            });
    cloud.resourceManager().subscribeFailures(
        [&](int host, std::uint64_t) { sm.handleFailure(host); });
    ASSERT_TRUE(sm.deploy(3));
    const int victim = sm.instances()[0];
    cloud.resourceManager().reportFailure(victim);
    EXPECT_EQ(sm.instances().size(), 3u);  // replacement acquired
    EXPECT_EQ(sm.failovers(), 1u);
    for (int host : sm.instances())
        EXPECT_NE(host, victim);
    EXPECT_EQ(cloud.resourceManager().failedCount(), 1);
}

TEST(Cloud, FullReconfigurationOutageDropsThenRecovers)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, smallCloud());
    int received = 0;
    cloud.nic(1).setReceiveHandler(
        [&](const net::PacketPtr &) { ++received; });

    cloud.shell(0).reconfigureFull();
    auto pkt = net::makePacket();
    pkt->ipDst = cloud.addressOf(1);
    pkt->payloadBytes = 100;
    cloud.nic(0).sendPacket(pkt);  // lost: bridge down
    eq.runUntil(3 * sim::kSecond);
    EXPECT_EQ(received, 0);

    auto pkt2 = net::makePacket();
    pkt2->ipDst = cloud.addressOf(1);
    pkt2->payloadBytes = 100;
    cloud.nic(0).sendPacket(pkt2);
    eq.runAll();
    EXPECT_EQ(received, 1);
}

}  // namespace
